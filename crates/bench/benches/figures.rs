//! Regenerates every figure of the paper (run via
//! `cargo bench -p decaf-bench --bench figures`).

use decaf_core::figures;

fn main() {
    println!("\n==================================================================");
    println!("Figure 1: The Decaf Drivers architecture (live rendering)");
    println!("==================================================================");
    println!("{}", figures::figure1());

    println!("\n==================================================================");
    println!("Figure 2: Jeannie stub for calling from Java to C (generated)");
    println!("==================================================================");
    println!("{}", figures::figure2());

    println!("\n==================================================================");
    println!("Figure 3: Driver structure and generated XDR input");
    println!("==================================================================");
    let (original, idl) = figures::figure3();
    println!("--- original structure ---\n{original}");
    println!("--- generated XDR specification ---\n{idl}");

    println!("\n==================================================================");
    println!("Figure 4: e1000_open — goto cleanup vs staged Results");
    println!("==================================================================");
    let (c, rust) = figures::figure4();
    println!("--- original (goto-label error handling) ---\n{c}\n");
    println!("--- decaf driver (staged Result cleanup) ---\n{rust}");

    println!("\n==================================================================");
    println!("Figure 5: Error-handling audit of the E1000 source");
    println!("==================================================================");
    let f = figures::figure5();
    println!(
        "ignored error returns found : {:>4}  (paper found 28 in the real driver)",
        f.ignored_returns
    );
    println!(
        "propagation lines removable : {:>4}  (paper deleted 675, ~8% of e1000_hw.c)",
        f.propagation_lines
    );
    println!(
        "fraction of source          : {:>5.1}%",
        f.removable_fraction * 100.0
    );
    println!(
        "goto-cleanup functions      : {:>4}",
        f.goto_cleanup_functions
    );
    println!("example                     : {}", f.example);
}
