//! Criterion microbenchmarks: the mechanisms behind Table 3's costs,
//! plus the ablations DESIGN.md calls out (field-selective vs full
//! marshaling, thread-reuse vs thread-handoff transport, combolock vs
//! always-semaphore).
//!
//! Run via `cargo bench -p decaf-bench --bench micro`.

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, Criterion};
use decaf_core::simkernel::Kernel;
use decaf_core::xdr::graph::{self, NullTracker, ObjHeap};
use decaf_core::xdr::mask::{Access, Direction, FieldMask, MaskSet};
use decaf_core::xdr::{codec, XdrSpec, XdrType, XdrValue};
use decaf_core::xpc::{ChannelConfig, Combolock, Domain, ProcDef, TransportKind, XpcChannel};

fn adapter_spec() -> XdrSpec {
    XdrSpec::parse(
        "struct ring { int count; int next; opaque pad[32]; };\n\
         struct adapter { int msg_enable; int link_up; int speed; hyper stats; \
         opaque mac[6]; struct ring *tx; struct ring *rx; };",
    )
    .unwrap()
}

fn build_heap(spec: &XdrSpec) -> (ObjHeap, u64) {
    let mut heap = ObjHeap::new();
    let tx = heap.alloc_default("ring", spec).unwrap();
    let rx = heap.alloc_default("ring", spec).unwrap();
    let a = heap.alloc_default("adapter", spec).unwrap();
    heap.set_ptr(a, "tx", Some(tx)).unwrap();
    heap.set_ptr(a, "rx", Some(rx)).unwrap();
    heap.set_scalar(a, "stats", XdrValue::Hyper(123_456))
        .unwrap();
    (heap, a)
}

fn bench_xdr_codec(c: &mut Criterion) {
    let spec = adapter_spec();
    let ty = XdrType::Struct("adapter".into());
    let value = graph::default_value(&ty, &spec).unwrap();
    let bytes = codec::encode(&value, &ty, &spec).unwrap();
    c.bench_function("xdr/encode_adapter", |b| {
        b.iter(|| codec::encode(&value, &ty, &spec).unwrap())
    });
    c.bench_function("xdr/decode_adapter", |b| {
        b.iter(|| codec::decode(&bytes, &ty, &spec).unwrap())
    });
}

fn bench_graph_marshal(c: &mut Criterion) {
    let spec = adapter_spec();
    let (heap, a) = build_heap(&spec);
    c.bench_function("xdr/marshal_graph_full", |b| {
        b.iter(|| {
            graph::marshal_graph(&heap, Some(a), &spec, &MaskSet::full(), Direction::In).unwrap()
        })
    });
    // Ablation: field-selective masks vs full-struct copies.
    let mut masks = MaskSet::selective();
    let mut m = FieldMask::new();
    m.record("msg_enable", Access::ReadWrite);
    m.record("link_up", Access::Write);
    masks.insert("adapter", m);
    c.bench_function("xdr/marshal_graph_selective", |b| {
        b.iter(|| graph::marshal_graph(&heap, Some(a), &spec, &masks, Direction::In).unwrap())
    });
    let bytes =
        graph::marshal_graph(&heap, Some(a), &spec, &MaskSet::full(), Direction::In).unwrap();
    c.bench_function("xdr/unmarshal_graph_fresh", |b| {
        b.iter(|| {
            let mut dst = ObjHeap::with_base(0x9000_0000);
            graph::unmarshal_graph(
                &bytes,
                "adapter",
                &mut dst,
                &spec,
                &MaskSet::full(),
                Direction::In,
                &mut NullTracker,
            )
            .unwrap()
        })
    });
}

fn channel(config: ChannelConfig) -> (Kernel, XpcChannel, u64) {
    let kernel = Kernel::new();
    let ch = XpcChannel::new(
        adapter_spec(),
        MaskSet::full(),
        config,
        Domain::Nucleus,
        Domain::Decaf,
    );
    ch.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "touch".into(),
            arg_types: vec!["adapter".into()],
            handler: Rc::new(|_, _, _, _| XdrValue::Int(0)),
        },
    )
    .unwrap();
    let a = {
        let heap = ch.heap(Domain::Nucleus);
        let spec = adapter_spec();
        let mut h = heap.borrow_mut();
        let tx = h.alloc_default("ring", &spec).unwrap();
        let a = h.alloc_default("adapter", &spec).unwrap();
        h.set_ptr(a, "tx", Some(tx)).unwrap();
        a
    };
    (kernel, ch, a)
}

fn bench_xpc_call(c: &mut Criterion) {
    // Ablation: thread-reuse (InProc) vs dedicated-thread handoff.
    let (kernel, ch, a) = channel(ChannelConfig {
        domain_crossing: true,
        cross_language: true,
        transport: TransportKind::InProc,
        delta: false,
        shmring: false,
        ..ChannelConfig::kernel_user()
    });
    c.bench_function("xpc/roundtrip_inproc", |b| {
        b.iter(|| {
            ch.call(&kernel, Domain::Nucleus, "touch", &[Some(a)], &[])
                .unwrap()
        })
    });
    let (kernel, ch, a) = channel(ChannelConfig {
        domain_crossing: true,
        cross_language: true,
        transport: TransportKind::Threaded,
        delta: false,
        shmring: false,
        ..ChannelConfig::kernel_user()
    });
    c.bench_function("xpc/roundtrip_threaded_model", |b| {
        b.iter(|| {
            ch.call(&kernel, Domain::Nucleus, "touch", &[Some(a)], &[])
                .unwrap()
        })
    });
    // Cross-language conversion off: the kernel/user-only path.
    let (kernel, ch, a) = channel(ChannelConfig {
        domain_crossing: true,
        cross_language: false,
        transport: TransportKind::InProc,
        delta: false,
        shmring: false,
        ..ChannelConfig::kernel_user()
    });
    c.bench_function("xpc/roundtrip_no_crosslang", |b| {
        b.iter(|| {
            ch.call(&kernel, Domain::Nucleus, "touch", &[Some(a)], &[])
                .unwrap()
        })
    });
}

fn bench_shmring(c: &mut Criterion) {
    use decaf_core::shmring::{BufPool, Descriptor, ShmRing};
    use decaf_core::simkernel::CpuClass;

    // The raw ring protocol: post + consume, the per-descriptor cost
    // that replaces per-byte marshaling on the data path.
    let kernel = Kernel::new();
    let ring = ShmRing::new("bench", 64);
    let pool = BufPool::with_capacity(2048, 64);
    c.bench_function("shmring/push_pop", |b| {
        b.iter(|| {
            ring.push(
                &kernel,
                CpuClass::Kernel,
                Descriptor {
                    buf: decaf_core::shmring::BufHandle(0),
                    len: 1500,
                    cookie: 0,
                },
            )
            .unwrap();
            ring.pop(&kernel, CpuClass::User).unwrap()
        })
    });
    let payload = vec![0x5au8; 1500];
    c.bench_function("shmring/pool_write_free", |b| {
        b.iter(|| {
            let h = pool.alloc().unwrap();
            pool.write_payload(&kernel, CpuClass::Kernel, h, &payload)
                .unwrap();
            pool.free(h).unwrap();
        })
    });
}

fn bench_datapath_ablation(c: &mut Criterion) {
    // Ablation: copy vs batched-copy vs shmring on the same 20-packet
    // burst — the Table-3-adjacent scale story in microbench form.
    use decaf_core::experiments::DataPathKind;
    for kind in [
        DataPathKind::Copy,
        DataPathKind::BatchedCopy,
        DataPathKind::Shmring,
    ] {
        c.bench_function(&format!("datapath/burst20[{kind:?}]"), |b| {
            b.iter(|| decaf_core::experiments::datapath_run(kind, 20))
        });
    }
}

fn bench_storage_ablation(c: &mut Criterion) {
    // Ablation: the tar write + streaming-read pair under the three
    // user-level hostings of the uhci URB path — wall time tracks the
    // simulated marshal/copy work each hosting removes.
    use decaf_core::experiments::DataPathKind;
    for kind in [
        DataPathKind::Copy,
        DataPathKind::BatchedCopy,
        DataPathKind::Shmring,
    ] {
        c.bench_function(&format!("storage/tar32[{kind:?}]"), |b| {
            b.iter(|| decaf_core::experiments::storage_run(kind))
        });
    }
}

fn bench_frag_ablation(c: &mut Criterion) {
    // Ablation: the allocator modes on one adversarially fragmented
    // pressure point — every iteration re-asserts the zero-copy and
    // conservation invariants inside frag_run; wall time tracks the
    // first-fit scan vs the buddy free-list walk vs SG chaining.
    use decaf_core::shmring::AllocMode;
    for (label, mode) in [
        ("first-fit", AllocMode::FirstFit),
        ("buddy", AllocMode::Buddy),
        ("buddy-sg", AllocMode::BuddySg),
    ] {
        c.bench_function(&format!("frag/pinned50[{label}]"), |b| {
            b.iter(|| decaf_core::experiments::frag_run(mode, 50))
        });
    }
}

fn bench_transport_ablation(c: &mut Criterion) {
    // Ablation: mask-only vs mask+delta vs mask+delta+batch on the
    // repeated-configuration workload (the decaf control-path shape).
    // Each iteration runs the full deterministic sequence, so wall time
    // tracks the simulated marshal + dispatch work each layer removes.
    for (label, config) in decaf_core::experiments::transport_ablation_configs() {
        c.bench_function(&format!("xpc/repeat_config[{label}]"), |b| {
            b.iter(|| decaf_core::experiments::repeated_config_run(config, 10))
        });
    }
}

fn bench_shard_ablation(c: &mut Criterion) {
    // Ablation: the sharded e1000 build at 1/2/4/8 shards on the same
    // short netperf stream — wall time tracks the simulated per-shard
    // steering, posting and doorbell work.
    for shards in decaf_core::experiments::SHARD_COUNTS {
        c.bench_function(&format!("shard/netperf[shards={shards}]"), |b| {
            b.iter(|| decaf_core::experiments::shard_run(shards, 1, 500))
        });
    }
}

fn bench_storage_shard_ablation(c: &mut Criterion) {
    // Ablation: the sharded uhci build at 1/2/4/8 URB queues on the
    // same short multi-LUN tar pair — every iteration also re-asserts
    // the bytes_copied == 0 invariant inside storage_shard_run.
    for shards in decaf_core::experiments::STORAGE_SHARD_COUNTS {
        c.bench_function(&format!("storage-shard/tar[shards={shards}]"), |b| {
            b.iter(|| decaf_core::experiments::storage_shard_run(shards, 1, 8))
        });
    }
}

fn bench_async_transport(c: &mut Criterion) {
    // Ablation: batched (synchronous flush) vs async (completion-token
    // launch + harvest) on the identical paced deferred-call stream —
    // wall time tracks the bookkeeping, virtual time the overlap credit.
    use decaf_core::xpc::ChannelConfig;
    for (label, config) in [
        ("batched", ChannelConfig::kernel_user_batched()),
        ("async", ChannelConfig::kernel_user_async()),
    ] {
        let (kernel, ch, a) = channel(config);
        c.bench_function(&format!("xpc/deferred_flush_harvest[{label}]"), |b| {
            b.iter(|| {
                for _ in 0..8 {
                    ch.call_deferred(&kernel, Domain::Nucleus, "touch", &[Some(a)], &[])
                        .unwrap();
                }
                ch.flush(&kernel).unwrap();
                ch.harvest(&kernel).len()
            })
        });
    }
}

fn bench_rx_mode(c: &mut Criterion) {
    // Ablation: interrupt-driven vs poll-mode receive servicing at one
    // rate either side of the crossover — each iteration re-asserts the
    // zero-copy invariant inside rx_mode_run.
    use decaf_core::drivers::support::RxMode;
    for (label, mode, pps) in [
        ("interrupt@2k", RxMode::Interrupt, 2_000u32),
        ("poll@2k", RxMode::Poll, 2_000),
        ("interrupt@16k", RxMode::Interrupt, 16_000),
        ("poll@16k", RxMode::Poll, 16_000),
    ] {
        c.bench_function(&format!("rx-mode/{label}"), |b| {
            b.iter(|| decaf_core::experiments::rx_mode_run(mode, pps))
        });
    }
}

fn bench_combolock(c: &mut Criterion) {
    // Ablation: combolock (spin when kernel-only) vs forced semaphore.
    let kernel = Kernel::new();
    let lock = Combolock::new("bench");
    c.bench_function("combolock/kernel_only_spin", |b| {
        b.iter(|| drop(lock.acquire(&kernel, Domain::Nucleus)))
    });
    let lock = Combolock::new("bench_user");
    // Holding from user mode once keeps switching costs visible.
    c.bench_function("combolock/user_semaphore", |b| {
        b.iter(|| drop(lock.acquire(&kernel, Domain::Decaf)))
    });
}

fn bench_slicer(c: &mut Criterion) {
    let src = decaf_core::drivers::DriverKind::E1000.minic_source();
    c.bench_function("slicer/slice_e1000", |b| {
        b.iter(|| {
            decaf_core::slicer::slice(src, &decaf_core::slicer::SliceConfig::default()).unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_xdr_codec,
    bench_graph_marshal,
    bench_xpc_call,
    bench_shmring,
    bench_datapath_ablation,
    bench_storage_ablation,
    bench_frag_ablation,
    bench_transport_ablation,
    bench_shard_ablation,
    bench_storage_shard_ablation,
    bench_async_transport,
    bench_rx_mode,
    bench_combolock,
    bench_slicer
);
criterion_main!(benches);
