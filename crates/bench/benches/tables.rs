//! Regenerates every table of the paper's evaluation (run via
//! `cargo bench -p decaf-bench --bench tables`).

use decaf_core::experiments;

fn main() {
    table1();
    table2();
    table3();
    transport_ablation();
    async_sweep();
    datapath_ablation();
    storage_ablation();
    rx_mode_sweep();
    shard_ablation();
    storage_shard_ablation();
    table4();
}

fn table1() {
    println!("\n==================================================================");
    println!("Table 1: Lines of code supporting Decaf Drivers");
    println!("==================================================================");
    println!("{:<58} {:>8} {:>8}", "Component", "paper", "ours");
    let rows = experiments::table1();
    let mut group = "";
    let mut total = 0;
    for row in &rows {
        if row.group != group {
            group = row.group;
            println!("{group}");
        }
        println!(
            "  {:<56} {:>8} {:>8}",
            row.component, row.paper_loc, row.measured_loc
        );
        total += row.measured_loc;
    }
    println!("  {:<56} {:>8} {:>8}", "Total", 23_423, total);
}

fn table2() {
    println!("\n==================================================================");
    println!("Table 2: The drivers converted to the Decaf architecture");
    println!("==================================================================");
    println!(
        "{:<10} {:<8} {:>5} {:>6} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6} | {:>6}",
        "Driver",
        "Type",
        "LoC",
        "Annot",
        "N.fn",
        "N.loc",
        "L.fn",
        "L.loc",
        "D.fn",
        "D.loc",
        "user%"
    );
    for row in experiments::table2() {
        println!(
            "{:<10} {:<8} {:>5} {:>6} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6} | {:>5.0}%",
            row.name,
            row.device_type,
            row.loc,
            row.annotations,
            row.nucleus_funcs,
            row.nucleus_loc,
            row.library_funcs,
            row.library_loc,
            row.decaf_funcs,
            row.decaf_loc,
            row.user_fraction() * 100.0
        );
    }
    println!(
        "(paper: >75% of functions moved to user level in 4 of 5 drivers;\n\
         uhci-hcd converted only 4% to Java — same shape expected above)"
    );
}

fn table3() {
    println!("\n==================================================================");
    println!("Table 3: Performance of Decaf Drivers on common workloads");
    println!("==================================================================");
    println!(
        "{:<10} {:<17} {:>8} | {:>7} {:>7} | {:>9} {:>9} | {:>9} {:>8} {:>7} | {:>6} | {:>5} {:>5} {:>4}",
        "Driver",
        "Workload",
        "RelPerf",
        "CPU n.",
        "CPU d.",
        "Init n.",
        "Init d.",
        "Crossings",
        "InBytes",
        "Batched",
        "Invoc",
        "DBell",
        "D/DB",
        "HWM"
    );
    for row in experiments::table3() {
        println!(
            "{:<10} {:<17} {:>8.3} | {:>6.1}% {:>6.1}% | {:>7.3}ms {:>7.3}ms | {:>9} {:>8} {:>7} | {:>6} | {:>5} {:>5.1} {:>4}",
            row.driver,
            row.workload,
            row.relative_perf,
            row.cpu_native * 100.0,
            row.cpu_decaf * 100.0,
            row.init_native_s * 1e3,
            row.init_decaf_s * 1e3,
            row.init_crossings,
            row.init_bytes_in,
            row.init_batched_calls,
            row.workload_invocations,
            row.doorbells,
            row.descs_per_doorbell,
            row.ring_occupancy_hwm,
        );
    }
    println!(
        "(paper: relative performance 0.99-1.03, CPU within a point or two,\n\
         decaf init several times slower, crossings 24-237 per driver;\n\
         init latencies here are virtual-time and reflect crossing+marshal\n\
         overhead, not JVM start-up — see EXPERIMENTS.md. InBytes/Batched\n\
         show the batched transport + delta marshaling at work during init.\n\
         The netperf-send/shm rows host the data path at user level over\n\
         the shmring subsystem: DBell/D-per-DB/HWM are the doorbell count,\n\
         descriptors amortized per doorbell, and ring occupancy high-water)"
    );
}

fn datapath_ablation() {
    println!("\n==================================================================");
    println!("Data-path ablation: hosting the packet path at user level");
    println!("==================================================================");
    println!(
        "{:<24} {:>5} {:>9} {:>10} | {:>5} {:>5} {:>5} {:>4} | {:>9} {:>10} {:>9}",
        "Configuration",
        "Pkts",
        "Payload",
        "Marshaled",
        "RT",
        "DBell",
        "D/DB",
        "HWM",
        "Copied",
        "Virt. µs",
        "Virt.Mb/s"
    );
    for row in experiments::datapath_ablation() {
        println!(
            "{:<24} {:>5} {:>9} {:>10} | {:>5} {:>5} {:>5.1} {:>4} | {:>9} {:>10.1} {:>9.1}",
            row.label,
            row.packets,
            row.payload_bytes,
            row.marshaled_bytes,
            row.round_trips,
            row.doorbells,
            row.descs_per_doorbell,
            row.ring_occupancy_hwm,
            row.bytes_copied,
            row.virtual_ns as f64 / 1e3,
            row.virtual_mbps(),
        );
    }
    println!(
        "(every configuration copies identical payload bytes — the ablation\n\
         isolates marshaling and crossing costs. Batched-copy removes the\n\
         per-packet round trips; shmring removes the bytes: descriptors +\n\
         coalesced doorbells make the user-level hot path cheaper than the\n\
         by-value paths on both bytes moved and virtual time)"
    );
}

fn storage_ablation() {
    println!("\n==================================================================");
    println!("Storage ablation: hosting the uhci URB path at user level");
    println!("==================================================================");
    println!(
        "{:<24} {:>5} {:>9} {:>10} | {:>5} {:>5} {:>5} | {:>9} {:>10} {:>9}",
        "Configuration",
        "URBs",
        "Payload",
        "Marshaled",
        "RT",
        "DBell",
        "D/DB",
        "Copied",
        "Virt. µs",
        "Virt.Mb/s"
    );
    for row in experiments::storage_ablation() {
        println!(
            "{:<24} {:>5} {:>9} {:>10} | {:>5} {:>5} {:>5.1} | {:>9} {:>10.1} {:>9.1}",
            row.label,
            row.urbs,
            row.payload_bytes,
            row.marshaled_bytes,
            row.round_trips,
            row.doorbells,
            row.descs_per_doorbell,
            row.bytes_copied,
            row.virtual_ns as f64 / 1e3,
            row.virtual_mbps(),
        );
    }
    println!(
        "(the same tar write + streaming-read pair under three hostings of\n\
         the URB path. Batched-copy amortizes crossings but still marshals\n\
         and copies every payload; shmring posts URB descriptors through\n\
         pinned rings, adopts page-granular sector payloads into the shared\n\
         pool, and hands IN data back by ownership — Copied drops to ZERO,\n\
         descriptor traffic only, asserted in decaf-core's\n\
         storage_ablation_shmring_drops_copies_to_descriptor_traffic test)"
    );
}

fn shard_ablation() {
    println!("\n==================================================================");
    println!("Shard ablation: multi-channel XPC + per-shard shmrings (netperf)");
    println!("==================================================================");
    println!(
        "{:>6} {:>6} {:>9} | {:>10} {:>10} {:>10} | {:>5} {:>5} | {:>6} {:>10} | {:>9} {:>9}",
        "Shards",
        "Pkts",
        "Payload",
        "Serial µs",
        "Crit. µs",
        "Eff. µs",
        "DBell",
        "D/DB",
        "Tokens",
        "Overlap µs",
        "Copied",
        "Virt.Mb/s"
    );
    let rows = experiments::shard_ablation();
    for row in &rows {
        println!(
            "{:>6} {:>6} {:>9} | {:>10.1} {:>10.1} {:>10.1} | {:>5} {:>5.1} | {:>6} {:>10.1} | {:>9} {:>9.1}",
            row.shards,
            row.packets,
            row.payload_bytes,
            (row.effective_ns - row.shard_max_ns) as f64 / 1e3,
            row.shard_max_ns as f64 / 1e3,
            row.effective_ns as f64 / 1e3,
            row.doorbells,
            row.descs_per_doorbell,
            row.tokens,
            row.overlap_ns as f64 / 1e3,
            row.bytes_copied,
            row.virtual_mbps(),
        );
    }
    println!(
        "(identical netperf stream at every shard count; Eff = serial work\n\
         + the critical-path shard, the parallel wall-clock model of\n\
         per-CPU channels. Copied must not move: sharding changes flow\n\
         steering, never copy accounting. Tokens/Overlap are the async\n\
         transport's completion ledger: doorbell crossings launch, harvest\n\
         collects later, and the overlapped slice is never charged.\n\
         shards=4 beating shards=1 on Virt.Mb/s is the tentpole\n\
         acceptance claim, asserted in decaf-core's\n\
         shard_ablation_parallelism_wins test)"
    );
}

fn storage_shard_ablation() {
    println!("\n==================================================================");
    println!("Sharded storage ablation: multi-LUN tar over per-shard URB queues");
    println!("==================================================================");
    println!(
        "{:>6} {:>6} {:>6} {:>9} | {:>10} {:>10} {:>10} | {:>5} {:>5} | {:>9} {:>9}",
        "Shards",
        "Used",
        "URBs",
        "Payload",
        "Serial µs",
        "Crit. µs",
        "Eff. µs",
        "DBell",
        "D/DB",
        "Copied",
        "Virt.Mb/s"
    );
    for row in experiments::storage_shard_ablation() {
        println!(
            "{:>6} {:>6} {:>6} {:>9} | {:>10.1} {:>10.1} {:>10.1} | {:>5} {:>5.1} | {:>9} {:>9.1}",
            row.shards,
            row.shards_used,
            row.urbs,
            row.payload_bytes,
            (row.effective_ns - row.shard_max_ns) as f64 / 1e3,
            row.shard_max_ns as f64 / 1e3,
            row.effective_ns as f64 / 1e3,
            row.doorbells,
            row.descs_per_doorbell,
            row.bytes_copied,
            row.virtual_mbps(),
        );
    }
    println!(
        "(identical 4-LUN tar write + streaming-read pair at every shard\n\
         count; each LUN's URBs stay FIFO on one queue while LUNs spread.\n\
         Copied is asserted EXACTLY ZERO at every width inside\n\
         storage_shard_run — sharding changes steering, payload adoption\n\
         stays zero-copy. shards=4 beating shards=1 on Virt.Mb/s is the\n\
         tentpole acceptance claim, asserted in decaf-core's\n\
         storage_shard_ablation_parallelism_wins_and_stays_zero_copy test)"
    );
}

fn transport_ablation() {
    println!("\n==================================================================");
    println!("Transport ablation: the same repeated-configuration sequence");
    println!("==================================================================");
    println!(
        "{:<24} {:>6} {:>6} {:>8} {:>8} | {:>7} {:>7} {:>7} | {:>10}",
        "Configuration", "RT", "1-way", "B.in", "B.out", "Flush", "Batch", "Elided", "Virt. µs"
    );
    for row in experiments::transport_ablation() {
        println!(
            "{:<24} {:>6} {:>6} {:>8} {:>8} | {:>7} {:>7} {:>7} | {:>10.1}",
            row.label,
            row.round_trips,
            row.one_way_crossings,
            row.bytes_in,
            row.bytes_out,
            row.flushes,
            row.batched_calls,
            row.delta_fields_elided,
            row.virtual_ns as f64 / 1e3,
        );
    }
    println!(
        "(each layer stacks on field-selective masks: delta cuts bytes,\n\
         batching cuts crossings — see DESIGN.md's ablation matrix)"
    );
}

fn async_sweep() {
    println!("\n==================================================================");
    println!("Async transport sweep: batched vs completion-token launches");
    println!("==================================================================");
    println!(
        "{:>8} {:>12} {:>12} {:>11} {:>7} {:>8}",
        "Calls/s", "Batched µs", "Async µs", "Overlap µs", "Tokens", "Saved"
    );
    for row in experiments::async_transport_sweep() {
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>11.1} {:>7} {:>7.1}%",
            row.offered_cps,
            row.batched_ns as f64 / 1e3,
            row.async_ns as f64 / 1e3,
            row.overlap_ns as f64 / 1e3,
            row.tokens,
            row.saving() * 100.0,
        );
    }
    println!(
        "(identical paced deferred-call stream on both transports. The\n\
         async transport launches the batch when the doorbell fires and\n\
         harvests the completion later, charging only the uncovered slice\n\
         of each crossing — computation during an in-flight crossing is\n\
         overlap, not wait. Async ≤ batched at EVERY rate is the tentpole\n\
         acceptance claim, asserted per row inside async_transport_sweep)"
    );
}

fn rx_mode_sweep() {
    println!("\n==================================================================");
    println!("RX-mode sweep: interrupt-driven vs poll-mode receive");
    println!("==================================================================");
    println!(
        "{:>8} {:>6} | {:>11} {:>11} | {:>6} {:>6} | {:>9}",
        "Pkts/s", "Pkts", "Intr µs", "Poll µs", "I.DBl", "P.DBl", "Winner"
    );
    let rows = experiments::rx_mode_sweep();
    for row in &rows {
        println!(
            "{:>8} {:>6} | {:>11.1} {:>11.1} | {:>6} {:>6} | {:>9}",
            row.offered_pps,
            row.packets,
            row.interrupt_ns as f64 / 1e3,
            row.poll_ns as f64 / 1e3,
            row.interrupt_doorbells,
            row.poll_doorbells,
            row.winner(),
        );
    }
    match experiments::rx_crossover_pps(&rows) {
        Some(pps) => println!("crossover: poll-mode receive first wins at {pps} pkts/s offered"),
        None => println!("crossover: not reached in this sweep"),
    }
    println!(
        "(one virtual second of paced arrivals through a pool-less shmring\n\
         data path. Interrupt mode pays interrupt entry per frame plus a\n\
         watermark doorbell crossing; poll mode pays a softirq tick plus\n\
         budgeted ring probes and rings NO doorbells. The fixed poll tax\n\
         loses at low rates and wins at high rates; the single flip is\n\
         asserted inside rx_mode_sweep, with zero payload bytes copied)"
    );
}

fn table4() {
    println!("\n==================================================================");
    println!("Table 4: E1000 evolution, 2.6.18.1 -> 2.6.27 (320 patches)");
    println!("==================================================================");
    let study = experiments::table4();
    println!("{:<28} {:>8} {:>8}", "Category", "paper", "ours");
    println!(
        "{:<28} {:>8} {:>8}",
        "Driver nucleus lines", 381, study.total.nucleus_lines
    );
    println!(
        "{:<28} {:>8} {:>8}",
        "Decaf driver lines", 4690, study.total.decaf_lines
    );
    println!(
        "{:<28} {:>8} {:>8}",
        "User/kernel interface", 23, study.total.interface_changes
    );
    println!(
        "(batch 1: {} lines decaf / {} nucleus; batch 2: {} / {})",
        study.batch1.decaf_lines,
        study.batch1.nucleus_lines,
        study.batch2.decaf_lines,
        study.batch2.nucleus_lines
    );
}
