//! Regenerates every table of the paper's evaluation (run via
//! `cargo bench -p decaf-bench --bench tables`).
//!
//! Every table renders through [`Table`] — decaf-trace's one report
//! path — instead of a hand-rolled `format!` string per table, and the
//! ablation tables print the p50/p99/p999 request-latency percentiles
//! their rows now carry.

use decaf_core::experiments::{self, LatencyPercentiles};
use decaf_core::simkernel::decaf_trace::Table;

fn main() {
    table1();
    table2();
    table3();
    transport_ablation();
    async_sweep();
    datapath_ablation();
    storage_ablation();
    frag_ablation();
    rx_mode_sweep();
    shard_ablation();
    storage_shard_ablation();
    overload_knee();
    table4();
}

/// Renders nanoseconds as one-decimal microseconds.
fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e3)
}

/// Headers for the request-latency percentile triple every ablation
/// table appends.
const LAT_HEADERS: [&str; 3] = ["p50 µs", "p99 µs", "p999 µs"];

/// Cells for the percentile triple, rendered by the one shared path.
/// Three decimals: submit-side latencies sit well under a microsecond.
fn lat_cells(lat: &LatencyPercentiles) -> [String; 3] {
    let f = |ns: u64| format!("{:.3}", ns as f64 / 1e3);
    [f(lat.p50_ns), f(lat.p99_ns), f(lat.p999_ns)]
}

/// Headers for the async completion-token ledger pair (shared by the
/// shard ablation and the async sweep — previously two copies of the
/// same column code).
const TOKEN_HEADERS: [&str; 2] = ["Tokens", "Overlap µs"];

/// Cells for the completion-token ledger pair.
fn token_cells(tokens: u64, overlap_ns: u64) -> [String; 2] {
    [tokens.to_string(), us(overlap_ns)]
}

fn banner(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

fn table1() {
    banner("Table 1: Lines of code supporting Decaf Drivers");
    let mut t = Table::new("");
    t.columns(&["Component", "paper", "ours"]);
    let rows = experiments::table1();
    let mut group = "";
    let mut total = 0;
    for row in &rows {
        if row.group != group {
            group = row.group;
            t.row(vec![group.to_string()]);
        }
        t.row(vec![
            format!("  {}", row.component),
            row.paper_loc.to_string(),
            row.measured_loc.to_string(),
        ]);
        total += row.measured_loc;
    }
    t.row(vec![
        "  Total".to_string(),
        23_423.to_string(),
        total.to_string(),
    ]);
    print!("{}", t.render());
}

fn table2() {
    banner("Table 2: The drivers converted to the Decaf architecture");
    let mut t = Table::new("");
    t.columns(&[
        "Driver", "Type", "LoC", "Annot", "N.fn", "N.loc", "L.fn", "L.loc", "D.fn", "D.loc",
        "user%",
    ]);
    for row in experiments::table2() {
        t.row(vec![
            row.name.to_string(),
            row.device_type.to_string(),
            row.loc.to_string(),
            row.annotations.to_string(),
            row.nucleus_funcs.to_string(),
            row.nucleus_loc.to_string(),
            row.library_funcs.to_string(),
            row.library_loc.to_string(),
            row.decaf_funcs.to_string(),
            row.decaf_loc.to_string(),
            format!("{:.0}%", row.user_fraction() * 100.0),
        ]);
    }
    print!("{}", t.render());
    println!(
        "(paper: >75% of functions moved to user level in 4 of 5 drivers;\n\
         uhci-hcd converted only 4% to Java — same shape expected above)"
    );
}

fn table3() {
    banner("Table 3: Performance of Decaf Drivers on common workloads");
    let mut t = Table::new("");
    t.columns(&[
        "Driver",
        "Workload",
        "RelPerf",
        "CPU n.",
        "CPU d.",
        "Init n.",
        "Init d.",
        "Crossings",
        "InBytes",
        "Batched",
        "Invoc",
        "DBell",
        "D/DB",
        "HWM",
    ]);
    for row in experiments::table3() {
        t.row(vec![
            row.driver.to_string(),
            row.workload.to_string(),
            format!("{:.3}", row.relative_perf),
            format!("{:.1}%", row.cpu_native * 100.0),
            format!("{:.1}%", row.cpu_decaf * 100.0),
            format!("{:.3}ms", row.init_native_s * 1e3),
            format!("{:.3}ms", row.init_decaf_s * 1e3),
            row.init_crossings.to_string(),
            row.init_bytes_in.to_string(),
            row.init_batched_calls.to_string(),
            row.workload_invocations.to_string(),
            row.doorbells.to_string(),
            format!("{:.1}", row.descs_per_doorbell),
            row.ring_occupancy_hwm.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "(paper: relative performance 0.99-1.03, CPU within a point or two,\n\
         decaf init several times slower, crossings 24-237 per driver;\n\
         init latencies here are virtual-time and reflect crossing+marshal\n\
         overhead, not JVM start-up — see EXPERIMENTS.md. InBytes/Batched\n\
         show the batched transport + delta marshaling at work during init.\n\
         The netperf-send/shm rows host the data path at user level over\n\
         the shmring subsystem: DBell/D-per-DB/HWM are the doorbell count,\n\
         descriptors amortized per doorbell, and ring occupancy high-water)"
    );
}

fn datapath_ablation() {
    banner("Data-path ablation: hosting the packet path at user level");
    let mut t = Table::new("");
    let mut headers = vec![
        "Configuration",
        "Pkts",
        "Payload",
        "Marshaled",
        "RT",
        "DBell",
        "D/DB",
        "HWM",
        "Copied",
        "Virt. µs",
        "Virt.Mb/s",
    ];
    headers.extend(LAT_HEADERS);
    t.columns(&headers);
    for row in experiments::datapath_ablation() {
        let mut cells = vec![
            row.label.to_string(),
            row.packets.to_string(),
            row.payload_bytes.to_string(),
            row.marshaled_bytes.to_string(),
            row.round_trips.to_string(),
            row.doorbells.to_string(),
            format!("{:.1}", row.descs_per_doorbell),
            row.ring_occupancy_hwm.to_string(),
            row.bytes_copied.to_string(),
            us(row.virtual_ns),
            format!("{:.1}", row.virtual_mbps()),
        ];
        cells.extend(lat_cells(&row.lat));
        t.row(cells);
    }
    print!("{}", t.render());
    println!(
        "(every configuration copies identical payload bytes — the ablation\n\
         isolates marshaling and crossing costs. Batched-copy removes the\n\
         per-packet round trips; shmring removes the bytes: descriptors +\n\
         coalesced doorbells make the user-level hot path cheaper than the\n\
         by-value paths on both bytes moved and virtual time. p50/p99/p999\n\
         are per-packet request latencies from the metrics registry)"
    );
}

fn storage_ablation() {
    banner("Storage ablation: hosting the uhci URB path at user level");
    let mut t = Table::new("");
    let mut headers = vec![
        "Configuration",
        "URBs",
        "Payload",
        "Marshaled",
        "RT",
        "DBell",
        "D/DB",
        "Copied",
        "Virt. µs",
        "Virt.Mb/s",
    ];
    headers.extend(LAT_HEADERS);
    t.columns(&headers);
    for row in experiments::storage_ablation() {
        let mut cells = vec![
            row.label.to_string(),
            row.urbs.to_string(),
            row.payload_bytes.to_string(),
            row.marshaled_bytes.to_string(),
            row.round_trips.to_string(),
            row.doorbells.to_string(),
            format!("{:.1}", row.descs_per_doorbell),
            row.bytes_copied.to_string(),
            us(row.virtual_ns),
            format!("{:.1}", row.virtual_mbps()),
        ];
        cells.extend(lat_cells(&row.lat));
        t.row(cells);
    }
    print!("{}", t.render());
    println!(
        "(the same tar write + streaming-read pair under three hostings of\n\
         the URB path. Batched-copy amortizes crossings but still marshals\n\
         and copies every payload; shmring posts URB descriptors through\n\
         pinned rings, adopts page-granular sector payloads into the shared\n\
         pool, and hands IN data back by ownership — Copied drops to ZERO,\n\
         descriptor traffic only, asserted in decaf-core's\n\
         storage_ablation_shmring_drops_copies_to_descriptor_traffic test.\n\
         p50/p99/p999 are per-URB submit→completion latencies)"
    );
}

fn frag_ablation() {
    banner("Fragmentation ablation: allocator modes under adversarial pool pressure");
    let mut t = Table::new("");
    t.columns(&[
        "Mode",
        "Pinned %",
        "Attempts",
        "Failures",
        "Fail rate",
        "FragRef",
        "Exhausted",
        "Copied",
        "Virt.Mb/s",
    ]);
    for row in experiments::frag_ablation() {
        t.row(vec![
            row.label.to_string(),
            row.pressure.to_string(),
            row.attempts.to_string(),
            row.failures.to_string(),
            format!("{:.2}", row.failure_rate()),
            row.frag_refusals.to_string(),
            row.exhausted.to_string(),
            row.bytes_copied.to_string(),
            format!("{:.1}", row.virtual_mbps()),
        ]);
    }
    print!("{}", t.render());
    println!(
        "(each cell pins Pinned% of the sector pool as scattered singles,\n\
         then fires multi-sector flash writes. FragRef counts refusals\n\
         issued while free bytes sufficed — the contiguity-requiring modes\n\
         saturate it under pressure; buddy+SG chains scattered blocks into\n\
         one URB and holds failures AND FragRef at zero across the sweep\n\
         (asserted inside frag_ablation), with Copied exactly zero in\n\
         every cell)"
    );
}

fn shard_ablation() {
    banner("Shard ablation: multi-channel XPC + per-shard shmrings (netperf)");
    let mut t = Table::new("");
    let mut headers = vec![
        "Shards",
        "Pkts",
        "Payload",
        "Serial µs",
        "Crit. µs",
        "Eff. µs",
        "DBell",
        "D/DB",
    ];
    headers.extend(TOKEN_HEADERS);
    headers.extend(["Copied", "Virt.Mb/s"]);
    headers.extend(LAT_HEADERS);
    t.columns(&headers);
    let rows = experiments::shard_ablation();
    for row in &rows {
        let mut cells = vec![
            row.shards.to_string(),
            row.packets.to_string(),
            row.payload_bytes.to_string(),
            us(row.effective_ns - row.shard_max_ns),
            us(row.shard_max_ns),
            us(row.effective_ns),
            row.doorbells.to_string(),
            format!("{:.1}", row.descs_per_doorbell),
        ];
        cells.extend(token_cells(row.tokens, row.overlap_ns));
        cells.push(row.bytes_copied.to_string());
        cells.push(format!("{:.1}", row.virtual_mbps()));
        cells.extend(lat_cells(&row.lat));
        t.row(cells);
    }
    print!("{}", t.render());
    println!(
        "(identical netperf stream at every shard count; Eff = serial work\n\
         + the critical-path shard, the parallel wall-clock model of\n\
         per-CPU channels. Copied must not move: sharding changes flow\n\
         steering, never copy accounting. Tokens/Overlap are the async\n\
         transport's completion ledger: doorbell crossings launch, harvest\n\
         collects later, and the overlapped slice is never charged.\n\
         shards=4 beating shards=1 on Virt.Mb/s is the tentpole\n\
         acceptance claim, asserted in decaf-core's\n\
         shard_ablation_parallelism_wins test)"
    );
}

fn storage_shard_ablation() {
    banner("Sharded storage ablation: multi-LUN tar over per-shard URB queues");
    let mut t = Table::new("");
    let mut headers = vec![
        "Shards",
        "Used",
        "URBs",
        "Payload",
        "Serial µs",
        "Crit. µs",
        "Eff. µs",
        "DBell",
        "D/DB",
        "Copied",
        "Virt.Mb/s",
    ];
    headers.extend(LAT_HEADERS);
    t.columns(&headers);
    for row in experiments::storage_shard_ablation() {
        let mut cells = vec![
            row.shards.to_string(),
            row.shards_used.to_string(),
            row.urbs.to_string(),
            row.payload_bytes.to_string(),
            us(row.effective_ns - row.shard_max_ns),
            us(row.shard_max_ns),
            us(row.effective_ns),
            row.doorbells.to_string(),
            format!("{:.1}", row.descs_per_doorbell),
            row.bytes_copied.to_string(),
            format!("{:.1}", row.virtual_mbps()),
        ];
        cells.extend(lat_cells(&row.lat));
        t.row(cells);
    }
    print!("{}", t.render());
    println!(
        "(identical 4-LUN tar write + streaming-read pair at every shard\n\
         count; each LUN's URBs stay FIFO on one queue while LUNs spread.\n\
         Copied is asserted EXACTLY ZERO at every width inside\n\
         storage_shard_run — sharding changes steering, payload adoption\n\
         stays zero-copy. shards=4 beating shards=1 on Virt.Mb/s is the\n\
         tentpole acceptance claim, asserted in decaf-core's\n\
         storage_shard_ablation_parallelism_wins_and_stays_zero_copy test)"
    );
}

fn transport_ablation() {
    banner("Transport ablation: the same repeated-configuration sequence");
    let mut t = Table::new("");
    let mut headers = vec![
        "Configuration",
        "RT",
        "1-way",
        "B.in",
        "B.out",
        "Flush",
        "Batch",
        "Elided",
        "Virt. µs",
    ];
    headers.extend(LAT_HEADERS);
    t.columns(&headers);
    for row in experiments::transport_ablation() {
        let mut cells = vec![
            row.label.to_string(),
            row.round_trips.to_string(),
            row.one_way_crossings.to_string(),
            row.bytes_in.to_string(),
            row.bytes_out.to_string(),
            row.flushes.to_string(),
            row.batched_calls.to_string(),
            row.delta_fields_elided.to_string(),
            us(row.virtual_ns),
        ];
        cells.extend(lat_cells(&row.lat));
        t.row(cells);
    }
    print!("{}", t.render());
    println!(
        "(each layer stacks on field-selective masks: delta cuts bytes,\n\
         batching cuts crossings — see DESIGN.md's ablation matrix.\n\
         p50/p99/p999 are per-configuration-cycle latencies)"
    );
}

fn async_sweep() {
    banner("Async transport sweep: batched vs completion-token launches");
    let mut t = Table::new("");
    let mut headers = vec!["Calls/s", "Batched µs", "Async µs"];
    headers.extend(TOKEN_HEADERS);
    headers.push("Saved");
    headers.extend(LAT_HEADERS);
    t.columns(&headers);
    for row in experiments::async_transport_sweep() {
        let mut cells = vec![
            row.offered_cps.to_string(),
            us(row.batched_ns),
            us(row.async_ns),
        ];
        cells.extend(token_cells(row.tokens, row.overlap_ns));
        cells.push(format!("{:.1}%", row.saving() * 100.0));
        cells.extend(lat_cells(&row.lat));
        t.row(cells);
    }
    print!("{}", t.render());
    println!(
        "(identical paced deferred-call stream on both transports. The\n\
         async transport launches the batch when the doorbell fires and\n\
         harvests the completion later, charging only the uncovered slice\n\
         of each crossing — computation during an in-flight crossing is\n\
         overlap, not wait. Async ≤ batched at EVERY rate is the tentpole\n\
         acceptance claim, asserted per row inside async_transport_sweep.\n\
         p50/p99/p999 are per-call submit latencies on the async run)"
    );
}

fn rx_mode_sweep() {
    banner("RX-mode sweep: interrupt-driven vs poll-mode receive");
    let mut t = Table::new("");
    t.columns(&[
        "Pkts/s", "Pkts", "Intr µs", "Poll µs", "I.DBl", "P.DBl", "Winner", "I.p50", "I.p99",
        "P.p50", "P.p99",
    ]);
    let rows = experiments::rx_mode_sweep();
    for row in &rows {
        t.row(vec![
            row.offered_pps.to_string(),
            row.packets.to_string(),
            us(row.interrupt_ns),
            us(row.poll_ns),
            row.interrupt_doorbells.to_string(),
            row.poll_doorbells.to_string(),
            row.winner().to_string(),
            us(row.interrupt_lat.p50_ns),
            us(row.interrupt_lat.p99_ns),
            us(row.poll_lat.p50_ns),
            us(row.poll_lat.p99_ns),
        ]);
    }
    print!("{}", t.render());
    match experiments::rx_crossover_pps(&rows) {
        Some(pps) => println!("crossover: poll-mode receive first wins at {pps} pkts/s offered"),
        None => println!("crossover: not reached in this sweep"),
    }
    println!(
        "(one virtual second of paced arrivals through a pool-less shmring\n\
         data path. Interrupt mode pays interrupt entry per frame plus a\n\
         watermark doorbell crossing; poll mode pays a softirq tick plus\n\
         budgeted ring probes and rings NO doorbells. The fixed poll tax\n\
         loses at low rates and wins at high rates; the single flip is\n\
         asserted inside rx_mode_sweep, with zero payload bytes copied.\n\
         I./P. p50/p99 are per-packet post→reclaim latencies in µs:\n\
         interrupt mode services each frame as it lands, poll mode holds\n\
         frames until the next grid tick — the latency cost of the CPU\n\
         the poll grid saves at high rates)"
    );
}

fn overload_knee() {
    banner("Overload knee: open-loop offered rate vs goodput and tail latency");
    let sat = experiments::overload_saturation_rate();
    let mut t = Table::new("");
    let mut cols = vec![
        "Policy",
        "Rate%",
        "Offered",
        "Admit",
        "Rej",
        "Shed",
        "Goodput/s",
    ];
    cols.extend(LAT_HEADERS);
    t.columns(&cols);
    let rows = experiments::overload_sweep();
    for row in &rows {
        let mut cells = vec![
            row.policy.name().to_string(),
            row.multiplier_pct.to_string(),
            row.offered.to_string(),
            row.admitted.to_string(),
            row.rejected.to_string(),
            row.shed.to_string(),
            row.goodput_per_s.to_string(),
        ];
        cells.extend(lat_cells(&row.lat));
        t.row(cells);
    }
    print!("{}", t.render());
    let v = experiments::knee_verdict(&rows);
    println!(
        "calibrated saturation: {sat} req/s. Unbounded p99 blows up {:.1}×\n\
         past saturation; {} holds p99 within {:.1}× pre-knee at {:.0}% of\n\
         peak goodput (acceptance: ≥10× / ≤3× / ≥80% — {}).",
        v.unbounded_blowup,
        v.bounded_policy.name(),
        v.bounded_ratio,
        v.goodput_fraction * 100.0,
        if v.holds { "holds" } else { "FAILS" }
    );
    println!(
        "(seeded open-loop arrivals — Poisson netperf packets plus bursty\n\
         tar URBs — dispatched by an absolute-deadline kernel timer into\n\
         real shmring data paths. Latency is completion minus *scheduled*\n\
         arrival: when the single CPU falls behind, the wait shows up in\n\
         the tail. Queue-unbounded admits everything and pays in p99;\n\
         reject-at-admission turns arrivals away at the door with per-class\n\
         token buckets; shed-oldest drops the stalest queued request. Every\n\
         cell asserts zero payload bytes copied, URB descriptor/sector\n\
         conservation, a closed admission ledger, and every async doorbell\n\
         token settled)"
    );
}

fn table4() {
    banner("Table 4: E1000 evolution, 2.6.18.1 -> 2.6.27 (320 patches)");
    let study = experiments::table4();
    let mut t = Table::new("");
    t.columns(&["Category", "paper", "ours"]);
    t.row(vec![
        "Driver nucleus lines".to_string(),
        381.to_string(),
        study.total.nucleus_lines.to_string(),
    ]);
    t.row(vec![
        "Decaf driver lines".to_string(),
        4690.to_string(),
        study.total.decaf_lines.to_string(),
    ]);
    t.row(vec![
        "User/kernel interface".to_string(),
        23.to_string(),
        study.total.interface_changes.to_string(),
    ]);
    print!("{}", t.render());
    println!(
        "(batch 1: {} lines decaf / {} nucleus; batch 2: {} / {})",
        study.batch1.decaf_lines,
        study.batch1.nucleus_lines,
        study.batch2.decaf_lines,
        study.batch2.nucleus_lines
    );
}
