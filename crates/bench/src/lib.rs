//! Benchmark support crate.
//!
//! The real content lives in the bench targets:
//!
//! * `benches/tables.rs` — regenerates Tables 1–4 of the paper;
//! * `benches/figures.rs` — regenerates Figures 1–5;
//! * `benches/micro.rs` — criterion microbenches of the XDR codec, graph
//!   marshaler, XPC round trips and combolocks, including the ablations
//!   listed in DESIGN.md.
//!
//! All three run under `cargo bench --workspace`.

#![forbid(unsafe_code)]
