//! Experiment runners for the paper's tables.

use decaf_drivers::{workloads, DriverKind};
use decaf_simkernel::{costs, Kernel};
use decaf_slicer::evolve::{self, NewField, Patch};
use decaf_slicer::{slice, SliceConfig, SlicePlan};
use rand_like::SplitMix;

/// A tiny deterministic generator (SplitMix64) so the Table 4 patch
/// stream is reproducible without threading `rand` state everywhere.
mod rand_like {
    /// SplitMix64: deterministic, seedable, two lines of state.
    pub struct SplitMix {
        state: u64,
    }

    impl SplitMix {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            SplitMix { state: seed }
        }

        /// Next raw value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound.max(1)
        }
    }
}

// ------------------------------------------------ Latency percentiles

use decaf_simkernel::decaf_trace::Tracer;

/// Installs a metrics-only tracer on `kernel` and returns it — the
/// per-run observability hook every ablation runner uses to harvest
/// request-latency percentiles. Metrics-only tracers keep histograms
/// and attribution but drop the event buffer, and tracing never charges
/// virtual time, so instrumented runs stay bit-identical to bare ones.
fn install_metrics(kernel: &Kernel) -> std::rc::Rc<Tracer> {
    let t = Tracer::metrics_only();
    kernel.set_tracer(Some(std::rc::Rc::clone(&t)));
    t
}

/// Request-latency percentiles (ns) for one run, read back from the
/// run's tracer registry. All zeros when the run recorded no request
/// spans under the given key.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyPercentiles {
    /// Median request latency (ns).
    pub p50_ns: u64,
    /// 99th-percentile request latency (ns).
    pub p99_ns: u64,
    /// 99.9th-percentile request latency (ns).
    pub p999_ns: u64,
}

impl LatencyPercentiles {
    /// Reads the percentiles of histogram `key` out of `tracer`.
    pub fn from_tracer(tracer: &Tracer, key: &str) -> Self {
        match tracer.registry().histogram(key) {
            Some(h) => LatencyPercentiles {
                p50_ns: h.p50(),
                p99_ns: h.p99(),
                p999_ns: h.p999(),
            },
            None => LatencyPercentiles::default(),
        }
    }
}

// ---------------------------------------------------------------- Table 1

/// One row of Table 1: a runtime component and its line count.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Component group ("Runtime support" / "DriverSlicer").
    pub group: &'static str,
    /// Component name.
    pub component: &'static str,
    /// Paper's line count for the corresponding component.
    pub paper_loc: usize,
    /// Our measured non-comment, non-blank line count. `0` marks "not
    /// measurable" — the binary ran somewhere the workspace sources are
    /// not present (an installed binary, a stripped container).
    pub measured_loc: usize,
}

/// Finds the workspace root: the ancestor of this crate's manifest dir
/// (falling back to the current directory) that holds both `Cargo.toml`
/// and `crates/`. `None` when the sources are not present at runtime.
fn workspace_root() -> Option<std::path::PathBuf> {
    let candidates = [
        Some(std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))),
        std::env::current_dir().ok(),
    ];
    for start in candidates.into_iter().flatten() {
        let mut dir = start;
        loop {
            if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
                return Some(dir);
            }
            if !dir.pop() {
                break;
            }
        }
    }
    None
}

/// Counts non-comment, non-blank Rust lines under `dir` (relative to the
/// workspace root). Returns 0 — the [`Table1Row::measured_loc`] "not
/// measurable" marker — rather than panicking when the sources are
/// absent.
fn count_loc(dir: &str) -> usize {
    fn walk(path: &std::path::Path, total: &mut usize) {
        let Ok(entries) = std::fs::read_dir(path) else {
            return;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                walk(&p, total);
            } else if p.extension().is_some_and(|e| e == "rs") {
                if let Ok(text) = std::fs::read_to_string(&p) {
                    *total += text
                        .lines()
                        .map(str::trim)
                        .filter(|l| {
                            !l.is_empty()
                                && !l.starts_with("//")
                                && !l.starts_with("/*")
                                && !l.starts_with('*')
                        })
                        .count();
                }
            }
        }
    }
    let Some(root) = workspace_root() else {
        return 0;
    };
    let mut total = 0;
    walk(&root.join(dir), &mut total);
    total
}

/// Regenerates Table 1: the size of the Decaf runtime components.
///
/// The paper reports 9,310 lines of runtime support and 14,113 lines of
/// DriverSlicer; we report our crate sizes grouped the same way.
pub fn table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            group: "Runtime support",
            component: "cross-language helpers (xdr crate; paper: Jeannie helpers)",
            paper_loc: 1976,
            measured_loc: count_loc("crates/xdr/src"),
        },
        Table1Row {
            group: "Runtime support",
            component: "XPC runtime, user+kernel (xpc crate)",
            paper_loc: 2673 + 4661,
            measured_loc: count_loc("crates/xpc/src"),
        },
        Table1Row {
            group: "Runtime support",
            component: "shared-memory ring subsystem (shmring crate; this repo only)",
            paper_loc: 0,
            measured_loc: count_loc("crates/shmring/src"),
        },
        Table1Row {
            group: "DriverSlicer",
            component: "slicer front end + analyses (paper: CIL OCaml + Python)",
            paper_loc: 12_465 + 1276,
            measured_loc: count_loc("crates/slicer/src"),
        },
        Table1Row {
            group: "Substrate (this repo only)",
            component: "simulated kernel",
            paper_loc: 0,
            measured_loc: count_loc("crates/simkernel/src"),
        },
        Table1Row {
            group: "Substrate (this repo only)",
            component: "device models",
            paper_loc: 0,
            measured_loc: count_loc("crates/simdev/src"),
        },
        Table1Row {
            group: "Drivers",
            component: "five drivers, native + decaf + mini-C",
            paper_loc: 0,
            measured_loc: count_loc("crates/drivers/src"),
        },
    ]
}

// ---------------------------------------------------------------- Table 2

/// One row of Table 2: a driver sliced into its components.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Driver name.
    pub name: &'static str,
    /// Device type.
    pub device_type: &'static str,
    /// Lines of mini-C source.
    pub loc: usize,
    /// DriverSlicer annotations.
    pub annotations: usize,
    /// Functions in the driver nucleus.
    pub nucleus_funcs: usize,
    /// Lines in the driver nucleus.
    pub nucleus_loc: usize,
    /// Functions in the driver library.
    pub library_funcs: usize,
    /// Lines in the driver library.
    pub library_loc: usize,
    /// Functions in the decaf driver.
    pub decaf_funcs: usize,
    /// Lines in the decaf driver.
    pub decaf_loc: usize,
}

impl Table2Row {
    /// Fraction of functions that moved out of the kernel.
    pub fn user_fraction(&self) -> f64 {
        let total = self.nucleus_funcs + self.library_funcs + self.decaf_funcs;
        if total == 0 {
            return 0.0;
        }
        (self.library_funcs + self.decaf_funcs) as f64 / total as f64
    }
}

/// Regenerates Table 2 by running DriverSlicer over all five drivers.
pub fn table2() -> Vec<Table2Row> {
    DriverKind::all()
        .into_iter()
        .map(|kind| {
            let plan = slice(kind.minic_source(), &SliceConfig::default())
                .expect("driver sources must slice");
            Table2Row {
                name: kind.name(),
                device_type: kind.device_type(),
                loc: plan.loc.total,
                annotations: plan.annotations,
                nucleus_funcs: plan.kernel_fns.len(),
                nucleus_loc: plan.loc.kernel,
                library_funcs: plan.library_fns.len(),
                library_loc: plan.loc.library,
                decaf_funcs: plan.decaf_fns.len(),
                decaf_loc: plan.loc.decaf,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Table 3

/// One row of Table 3: a workload on one driver, native vs decaf.
#[derive(Debug, Clone, Default)]
pub struct Table3Row {
    /// Driver name.
    pub driver: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Decaf throughput / native throughput (1.00 = parity).
    pub relative_perf: f64,
    /// Native CPU utilization.
    pub cpu_native: f64,
    /// Decaf CPU utilization.
    pub cpu_decaf: f64,
    /// Native `insmod` latency (virtual seconds).
    pub init_native_s: f64,
    /// Decaf `insmod` latency (virtual seconds).
    pub init_decaf_s: f64,
    /// User/kernel round trips during initialization (decaf build).
    pub init_crossings: u64,
    /// Marshaled bytes into the decaf driver during initialization —
    /// with delta marshaling these undercut the seed's per-call
    /// re-marshaling.
    pub init_bytes_in: u64,
    /// Deferred calls the batched transport carried across during
    /// initialization (each flush of many calls cost one round trip).
    pub init_batched_calls: u64,
    /// Decaf-driver invocations during the workload.
    pub workload_invocations: u64,
    /// Data-path doorbells rung during the workload (shmring rows only).
    pub doorbells: u64,
    /// Average descriptors carried per doorbell (shmring rows only).
    pub descs_per_doorbell: f64,
    /// Data-path ring occupancy high-water mark (shmring rows only).
    pub ring_occupancy_hwm: u64,
}

fn ns_to_s(ns: u64) -> f64 {
    ns as f64 / 1e9
}

/// Workload scale: virtual seconds per run (the paper runs 600 s; the
/// shape is identical at this scale and the suite stays fast).
pub const NET_SECONDS: u32 = 2;
/// Packets per second offered to the gigabit driver.
pub const E1000_PPS: u32 = 4_000;
/// Packets per second offered to the fast-ethernet driver.
pub const RTL_PPS: u32 = 2_000;

/// Regenerates the Table 3 rows for every driver and workload.
pub fn table3() -> Vec<Table3Row> {
    let mut rows = Vec::new();

    // ---------------- 8139too: netperf send / recv.
    {
        let kn = Kernel::new();
        let native = decaf_drivers::rtl8139::install_native(&kn, "eth0").unwrap();
        kn.netdev_open("eth0").unwrap();
        let n_send = workloads::netperf_send(&kn, "eth0", NET_SECONDS, RTL_PPS, 1500).unwrap();

        let kd = Kernel::new();
        let decaf = decaf_drivers::rtl8139::install_decaf(&kd, "eth0").unwrap();
        kd.netdev_open("eth0").unwrap();
        let init_crossings = decaf.crossings();
        let init_stats = decaf.channel.stats();
        let d_send = workloads::netperf_send(&kd, "eth0", NET_SECONDS, RTL_PPS, 1500).unwrap();
        rows.push(Table3Row {
            driver: "8139too",
            workload: "netperf-send",
            relative_perf: d_send.throughput_mbps() / n_send.throughput_mbps(),
            cpu_native: n_send.cpu_util,
            cpu_decaf: d_send.cpu_util,
            init_native_s: ns_to_s(native.init_latency_ns),
            init_decaf_s: ns_to_s(decaf.init_latency_ns),
            init_crossings,
            init_bytes_in: init_stats.bytes_in,
            init_batched_calls: init_stats.batched_calls,
            workload_invocations: decaf.crossings() - init_crossings,
            ..Default::default()
        });

        let n_recv = {
            let dev = std::rc::Rc::clone(&native.dev);
            workloads::netperf_recv(&kn, "eth0", NET_SECONDS, RTL_PPS, 1500, &move |k, f| {
                dev.borrow_mut().inject_rx(k, f);
            })
            .unwrap()
        };
        let before = decaf.crossings();
        let d_recv = {
            let dev = std::rc::Rc::clone(&decaf.dev);
            workloads::netperf_recv(&kd, "eth0", NET_SECONDS, RTL_PPS, 1500, &move |k, f| {
                dev.borrow_mut().inject_rx(k, f);
            })
            .unwrap()
        };
        rows.push(Table3Row {
            driver: "8139too",
            workload: "netperf-recv",
            relative_perf: d_recv.ops as f64 / n_recv.ops.max(1) as f64,
            cpu_native: n_recv.cpu_util,
            cpu_decaf: d_recv.cpu_util,
            init_native_s: ns_to_s(native.init_latency_ns),
            init_decaf_s: ns_to_s(decaf.init_latency_ns),
            init_crossings,
            init_bytes_in: init_stats.bytes_in,
            init_batched_calls: init_stats.batched_calls,
            workload_invocations: decaf.crossings() - before,
            ..Default::default()
        });
    }

    // ---------------- E1000: netperf send / recv (+ watchdog crossings).
    {
        let kn = Kernel::new();
        let native = decaf_drivers::e1000::native::install(&kn, "eth0").unwrap();
        kn.netdev_open("eth0").unwrap();
        kn.schedule_point();
        let n_send = workloads::netperf_send(&kn, "eth0", NET_SECONDS, E1000_PPS, 1500).unwrap();

        let kd = Kernel::new();
        let decaf = decaf_drivers::e1000::decaf::install(&kd, "eth0").unwrap();
        kd.netdev_open("eth0").unwrap();
        kd.schedule_point();
        let init_crossings = decaf.crossings();
        let init_stats = decaf.channel.stats();
        let inv_before = decaf.decaf_invocations();
        let d_send = workloads::netperf_send(&kd, "eth0", NET_SECONDS, E1000_PPS, 1500).unwrap();
        rows.push(Table3Row {
            driver: "E1000",
            workload: "netperf-send",
            relative_perf: d_send.throughput_mbps() / n_send.throughput_mbps(),
            cpu_native: n_send.cpu_util,
            cpu_decaf: d_send.cpu_util,
            init_native_s: ns_to_s(native.init_latency_ns),
            init_decaf_s: ns_to_s(decaf.init_latency_ns),
            init_crossings,
            init_bytes_in: init_stats.bytes_in,
            init_batched_calls: init_stats.batched_calls,
            workload_invocations: decaf.decaf_invocations() - inv_before,
            ..Default::default()
        });

        let n_recv = {
            let dev = std::rc::Rc::clone(&native.dev);
            workloads::netperf_recv(&kn, "eth0", NET_SECONDS, E1000_PPS, 1500, &move |k, f| {
                dev.borrow_mut().inject_rx(k, f);
            })
            .unwrap()
        };
        let inv_before = decaf.decaf_invocations();
        let d_recv = {
            let dev = std::rc::Rc::clone(&decaf.dev);
            workloads::netperf_recv(&kd, "eth0", NET_SECONDS, E1000_PPS, 1500, &move |k, f| {
                dev.borrow_mut().inject_rx(k, f);
            })
            .unwrap()
        };
        rows.push(Table3Row {
            driver: "E1000",
            workload: "netperf-recv",
            relative_perf: d_recv.ops as f64 / n_recv.ops.max(1) as f64,
            cpu_native: n_recv.cpu_util,
            cpu_decaf: d_recv.cpu_util,
            init_native_s: ns_to_s(native.init_latency_ns),
            init_decaf_s: ns_to_s(decaf.init_latency_ns),
            init_crossings,
            init_bytes_in: init_stats.bytes_in,
            init_batched_calls: init_stats.batched_calls,
            workload_invocations: decaf.decaf_invocations() - inv_before,
            ..Default::default()
        });
    }

    // ---------------- E1000: UDP with 1-byte messages (§4.2 extra).
    {
        let kn = Kernel::new();
        let native = decaf_drivers::e1000::native::install(&kn, "eth0").unwrap();
        kn.netdev_open("eth0").unwrap();
        kn.schedule_point();
        let n = workloads::netperf_send(&kn, "eth0", 1, E1000_PPS, 1).unwrap();

        let kd = Kernel::new();
        let decaf = decaf_drivers::e1000::decaf::install(&kd, "eth0").unwrap();
        kd.netdev_open("eth0").unwrap();
        kd.schedule_point();
        let init_crossings = decaf.crossings();
        let init_stats = decaf.channel.stats();
        let inv_before = decaf.decaf_invocations();
        let d = workloads::netperf_send(&kd, "eth0", 1, E1000_PPS, 1).unwrap();
        rows.push(Table3Row {
            driver: "E1000",
            workload: "udp-1-byte",
            relative_perf: d.ops as f64 / n.ops.max(1) as f64,
            cpu_native: n.cpu_util,
            cpu_decaf: d.cpu_util,
            init_native_s: ns_to_s(native.init_latency_ns),
            init_decaf_s: ns_to_s(decaf.init_latency_ns),
            init_crossings,
            init_bytes_in: init_stats.bytes_in,
            init_batched_calls: init_stats.batched_calls,
            workload_invocations: decaf.decaf_invocations() - inv_before,
            ..Default::default()
        });
    }

    // ---------------- ens1371: mpg123 playback.
    {
        let kn = Kernel::new();
        let native = decaf_drivers::ens1371::install_native(&kn, "card0").unwrap();
        let n = workloads::mpg123(&kn, "card0", 2).unwrap();

        let kd = Kernel::new();
        let decaf = decaf_drivers::ens1371::install_decaf(&kd, "card0").unwrap();
        let init_crossings = decaf.crossings();
        let init_stats = decaf.channel.stats();
        let d = workloads::mpg123(&kd, "card0", 2).unwrap();
        rows.push(Table3Row {
            driver: "ens1371",
            workload: "mpg123",
            relative_perf: d.ops as f64 / n.ops.max(1) as f64,
            cpu_native: n.cpu_util,
            cpu_decaf: d.cpu_util,
            init_native_s: ns_to_s(native.init_latency_ns),
            init_decaf_s: ns_to_s(decaf.init_latency_ns),
            init_crossings,
            init_bytes_in: init_stats.bytes_in,
            init_batched_calls: init_stats.batched_calls,
            workload_invocations: decaf.crossings() - init_crossings,
            ..Default::default()
        });
    }

    // ---------------- uhci-hcd: tar onto the flash drive.
    {
        let kn = Kernel::new();
        let native = decaf_drivers::uhci::install_native(&kn, "uhci0").unwrap();
        let n = workloads::tar_to_flash(&kn, "uhci0", 8, 32).unwrap();

        let kd = Kernel::new();
        let decaf = decaf_drivers::uhci::install_decaf(&kd, "uhci0").unwrap();
        let init_crossings = decaf.crossings();
        let init_stats = decaf.channel.stats();
        let d = workloads::tar_to_flash(&kd, "uhci0", 8, 32).unwrap();
        rows.push(Table3Row {
            driver: "uhci-hcd",
            workload: "tar",
            relative_perf: (d.bytes as f64 / d.elapsed_ns as f64)
                / (n.bytes as f64 / n.elapsed_ns as f64),
            cpu_native: n.cpu_util,
            cpu_decaf: d.cpu_util,
            init_native_s: ns_to_s(native.init_latency_ns),
            init_decaf_s: ns_to_s(decaf.init_latency_ns),
            init_crossings,
            init_bytes_in: init_stats.bytes_in,
            init_batched_calls: init_stats.batched_calls,
            workload_invocations: decaf.crossings() - init_crossings,
            ..Default::default()
        });
    }

    // ---------------- psmouse: move-and-click.
    {
        let kn = Kernel::new();
        let native = decaf_drivers::psmouse::install_native(&kn, "mouse0").unwrap();
        let dev = std::rc::Rc::clone(&native.dev);
        let n = workloads::move_and_click(&kn, "mouse0", 2, 100, &move |k, dx, dy, b| {
            dev.borrow_mut().inject_move(k, dx, dy, b);
        })
        .unwrap();

        let kd = Kernel::new();
        let decaf = decaf_drivers::psmouse::install_decaf(&kd, "mouse0").unwrap();
        let init_crossings = decaf.crossings();
        let init_stats = decaf.channel.stats();
        let dev = std::rc::Rc::clone(&decaf.dev);
        let d = workloads::move_and_click(&kd, "mouse0", 2, 100, &move |k, dx, dy, b| {
            dev.borrow_mut().inject_move(k, dx, dy, b);
        })
        .unwrap();
        rows.push(Table3Row {
            driver: "psmouse",
            workload: "move-and-click",
            relative_perf: d.ops as f64 / n.ops.max(1) as f64,
            cpu_native: n.cpu_util,
            cpu_decaf: d.cpu_util,
            init_native_s: ns_to_s(native.init_latency_ns),
            init_decaf_s: ns_to_s(decaf.init_latency_ns),
            init_crossings,
            init_bytes_in: init_stats.bytes_in,
            init_batched_calls: init_stats.batched_calls,
            workload_invocations: decaf.crossings() - init_crossings,
            ..Default::default()
        });
    }

    // ---------------- shmring builds: the user-level data path. Same
    // netperf shape as above, but every packet crosses as a descriptor
    // through the shared-memory ring instead of staying in the kernel.
    {
        let kn = Kernel::new();
        let native = decaf_drivers::e1000::native::install(&kn, "eth0").unwrap();
        kn.netdev_open("eth0").unwrap();
        kn.schedule_point();
        let n = workloads::netperf_send(&kn, "eth0", NET_SECONDS, E1000_PPS, 1500).unwrap();

        let kd = Kernel::new();
        let decaf = decaf_drivers::e1000::decaf::install_shmring(&kd, "eth0").unwrap();
        kd.netdev_open("eth0").unwrap();
        kd.schedule_point();
        let init_crossings = decaf.crossings();
        let init_stats = decaf.channel.stats();
        let inv_before = decaf.decaf_invocations();
        let d = workloads::netperf_send(&kd, "eth0", NET_SECONDS, E1000_PPS, 1500).unwrap();
        kd.run_for(2 * decaf_simkernel::costs::DOORBELL_COALESCE_NS);
        let s = decaf.channel.stats();
        rows.push(Table3Row {
            driver: "E1000",
            workload: "netperf-send/shm",
            relative_perf: d.throughput_mbps() / n.throughput_mbps(),
            cpu_native: n.cpu_util,
            cpu_decaf: d.cpu_util,
            init_native_s: ns_to_s(native.init_latency_ns),
            init_decaf_s: ns_to_s(decaf.init_latency_ns),
            init_crossings,
            init_bytes_in: init_stats.bytes_in,
            init_batched_calls: init_stats.batched_calls,
            workload_invocations: decaf.decaf_invocations() - inv_before,
            doorbells: s.doorbells,
            descs_per_doorbell: s.descriptors_per_doorbell(),
            ring_occupancy_hwm: s.ring_occupancy_hwm,
        });
    }
    {
        let kn = Kernel::new();
        let native = decaf_drivers::rtl8139::install_native(&kn, "eth0").unwrap();
        kn.netdev_open("eth0").unwrap();
        let n = workloads::netperf_send(&kn, "eth0", NET_SECONDS, RTL_PPS, 1500).unwrap();

        let kd = Kernel::new();
        let decaf = decaf_drivers::rtl8139::install_shmring(&kd, "eth0").unwrap();
        kd.netdev_open("eth0").unwrap();
        let init_crossings = decaf.crossings();
        let init_stats = decaf.channel.stats();
        let d = workloads::netperf_send(&kd, "eth0", NET_SECONDS, RTL_PPS, 1500).unwrap();
        kd.run_for(2 * decaf_simkernel::costs::DOORBELL_COALESCE_NS);
        let s = decaf.channel.stats();
        rows.push(Table3Row {
            driver: "8139too",
            workload: "netperf-send/shm",
            relative_perf: d.throughput_mbps() / n.throughput_mbps(),
            cpu_native: n.cpu_util,
            cpu_decaf: d.cpu_util,
            init_native_s: ns_to_s(native.init_latency_ns),
            init_decaf_s: ns_to_s(decaf.init_latency_ns),
            init_crossings,
            init_bytes_in: init_stats.bytes_in,
            init_batched_calls: init_stats.batched_calls,
            workload_invocations: decaf.crossings() - init_crossings,
            doorbells: s.doorbells,
            descs_per_doorbell: s.descriptors_per_doorbell(),
            ring_occupancy_hwm: s.ring_occupancy_hwm,
        });
    }

    rows
}

// ------------------------------------------------- Data-path ablation

/// Which mechanism hosts the user-level data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPathKind {
    /// Per-packet synchronous crossing; the payload is marshaled by
    /// value — the naive way to host the data path at user level.
    Copy,
    /// Crossings batch (many packets, one round trip) but the payload
    /// still marshals by value.
    BatchedCopy,
    /// The shmring subsystem: payload written once into the shared pool,
    /// descriptors ride the ring, doorbells coalesce.
    Shmring,
}

/// One row of the data-path ablation.
#[derive(Debug, Clone)]
pub struct DataPathAblationRow {
    /// Configuration label.
    pub label: &'static str,
    /// Packets pushed through the path.
    pub packets: u64,
    /// Payload bytes offered.
    pub payload_bytes: u64,
    /// Bytes that crossed through the XDR marshaler (both directions) —
    /// the "bytes moved" the shmring path eliminates.
    pub marshaled_bytes: u64,
    /// Call/return round trips.
    pub round_trips: u64,
    /// Data-path doorbells rung.
    pub doorbells: u64,
    /// Average descriptors per doorbell.
    pub descs_per_doorbell: f64,
    /// Ring occupancy high-water mark.
    pub ring_occupancy_hwm: u64,
    /// CPU-copied payload bytes (the audit counter: identical across
    /// configurations — the ablation varies *marshaling*, not copying).
    pub bytes_copied: u64,
    /// Total virtual CPU time consumed (kernel + user, ns).
    pub virtual_ns: u64,
    /// Per-packet request-latency percentiles (ns).
    pub lat: LatencyPercentiles,
}

impl DataPathAblationRow {
    /// Virtual-time throughput: offered payload over consumed CPU time.
    pub fn virtual_mbps(&self) -> f64 {
        if self.virtual_ns == 0 {
            return 0.0;
        }
        (self.payload_bytes as f64 * 8.0) / (self.virtual_ns as f64 / 1e9) / 1e6
    }
}

/// Packets per ablation run.
pub const DATAPATH_PKTS: u32 = 200;
/// Payload bytes per packet (an MTU-sized frame).
pub const DATAPATH_PKT_LEN: usize = 1500;
/// In-flight packet objects the copy paths cycle through (each packet is
/// its own skb — delta marshaling cannot elide a payload rewritten on
/// every reuse).
const DATAPATH_INFLIGHT: usize = 16;

/// Runs `packets` MTU-sized frames through one user-level data-path
/// mechanism and reports what crossed, what copied, and what it cost.
pub fn datapath_run(kind: DataPathKind, packets: u32) -> DataPathAblationRow {
    use decaf_shmring::{BufPool, DoorbellPolicy, ShmRing};
    use decaf_xdr::XdrValue;
    use decaf_xpc::{ChannelConfig, DataPathChannel, Domain, ProcDef, XpcChannel};
    use std::rc::Rc;

    let kernel = Kernel::new();
    let tracer = install_metrics(&kernel);
    let spec = decaf_xdr::XdrSpec::parse(&format!(
        "struct pkt {{ int len; opaque payload[{DATAPATH_PKT_LEN}]; }};"
    ))
    .expect("ablation spec parses");
    let (label, config) = match kind {
        DataPathKind::Copy => ("copy (per-packet marshal)", ChannelConfig::kernel_user()),
        DataPathKind::BatchedCopy => (
            "batched-copy (marshal)",
            ChannelConfig::kernel_user_batched(),
        ),
        DataPathKind::Shmring => (
            "shmring (descriptors)",
            ChannelConfig::kernel_user_shmring(),
        ),
    };
    let ch = Rc::new(XpcChannel::new(
        spec.clone(),
        decaf_xdr::mask::MaskSet::full(),
        config,
        Domain::Nucleus,
        Domain::Decaf,
    ));

    if kind == DataPathKind::Shmring {
        let dp = DataPathChannel::new(
            Rc::clone(&ch),
            Domain::Nucleus,
            "xmit_drain",
            Rc::new(ShmRing::new("ablation-tx", 32)),
            Rc::new(ShmRing::new("ablation-tx-done", 64)),
            Some(Rc::new(BufPool::with_capacity(
                DATAPATH_PKT_LEN.next_power_of_two(),
                DATAPATH_INFLIGHT * 2,
            ))),
            DoorbellPolicy::with_watermark(DATAPATH_INFLIGHT),
        )
        .expect("datapath builds");
        // The consumer: a user-level transmit handler reading payloads in
        // place and handing buffers back through the completion ring.
        let end = dp.end(Domain::Decaf);
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "xmit_drain".into(),
                arg_types: vec![],
                handler: Rc::new(move |k, _, _, _| {
                    for d in end.consume(k) {
                        // Program one device descriptor per frame.
                        k.charge(decaf_simkernel::CpuClass::User, costs::DMA_DESC_NS);
                        let _ = end.complete(k, d);
                    }
                    XdrValue::Void
                }),
            },
        )
        .expect("register xmit_drain");
        let frame = vec![0x5au8; DATAPATH_PKT_LEN];
        for i in 0..packets {
            kernel.trace_req_begin("op_ns", i as u64);
            dp.send(&kernel, &frame, i as u64).expect("send");
            kernel.trace_req_end("op_ns", i as u64);
        }
        dp.ring_doorbell(&kernel).expect("final doorbell");
        dp.reclaim_completions(&kernel);
    } else {
        // The payload crosses by value: the handler receives the bytes
        // through the marshaler, then copies them into the device buffer
        // (the same single device-bound copy the shmring pool performs).
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "xmit_pkt".into(),
                arg_types: vec!["pkt".into()],
                handler: Rc::new(|k, ch, args, _| {
                    let Some(p) = args[0] else {
                        return XdrValue::Int(-22);
                    };
                    let heap = ch.heap(Domain::Decaf);
                    let len = heap
                        .borrow()
                        .scalar(p, "len")
                        .ok()
                        .and_then(|v| v.as_int())
                        .unwrap_or(0);
                    k.charge_copy(decaf_simkernel::CpuClass::User, len as u64);
                    k.charge(decaf_simkernel::CpuClass::User, costs::DMA_DESC_NS);
                    XdrValue::Int(0)
                }),
            },
        )
        .expect("register xmit_pkt");
        let ring: Vec<_> = (0..DATAPATH_INFLIGHT)
            .map(|_| {
                let heap = ch.heap(Domain::Nucleus);
                let mut h = heap.borrow_mut();
                h.alloc_default("pkt", &spec).expect("alloc pkt")
            })
            .collect();
        for i in 0..packets {
            let obj = ring[i as usize % DATAPATH_INFLIGHT];
            {
                let heap = ch.heap(Domain::Nucleus);
                let mut h = heap.borrow_mut();
                h.set_scalar(obj, "len", XdrValue::Int(DATAPATH_PKT_LEN as i32))
                    .expect("set len");
                h.set_scalar(
                    obj,
                    "payload",
                    XdrValue::Opaque(vec![(i & 0xff) as u8; DATAPATH_PKT_LEN]),
                )
                .expect("set payload");
            }
            kernel.trace_req_begin("op_ns", i as u64);
            match kind {
                DataPathKind::Copy => {
                    ch.call(&kernel, Domain::Nucleus, "xmit_pkt", &[Some(obj)], &[])
                        .expect("xmit_pkt");
                }
                _ => {
                    ch.call_deferred(&kernel, Domain::Nucleus, "xmit_pkt", &[Some(obj)], &[])
                        .expect("defer xmit_pkt");
                }
            }
            kernel.trace_req_end("op_ns", i as u64);
        }
        ch.flush(&kernel).expect("final flush");
    }

    let s = ch.stats();
    let snap = kernel.snapshot();
    DataPathAblationRow {
        label,
        packets: packets as u64,
        payload_bytes: packets as u64 * DATAPATH_PKT_LEN as u64,
        marshaled_bytes: s.bytes_in + s.bytes_out,
        round_trips: s.round_trips,
        doorbells: s.doorbells,
        descs_per_doorbell: s.descriptors_per_doorbell(),
        ring_occupancy_hwm: s.ring_occupancy_hwm,
        bytes_copied: kernel.stats().bytes_copied,
        virtual_ns: snap.kernel_busy_ns + snap.user_busy_ns,
        lat: LatencyPercentiles::from_tracer(&tracer, "op_ns"),
    }
}

/// Regenerates the data-path ablation: copy vs batched-copy vs shmring
/// on the same offered packet stream. The scale story of the shmring
/// subsystem: the first configuration where hosting the hot path at
/// user level is cheaper than moving the bytes.
pub fn datapath_ablation() -> Vec<DataPathAblationRow> {
    [
        DataPathKind::Copy,
        DataPathKind::BatchedCopy,
        DataPathKind::Shmring,
    ]
    .into_iter()
    .map(|kind| datapath_run(kind, DATAPATH_PKTS))
    .collect()
}

// --------------------------------------------------- Storage ablation

/// Files the storage ablation archives each way.
pub const STORAGE_FILES: u32 = 2;
/// Sectors per archived file (one `tar` burst).
pub const STORAGE_SECTORS_PER_FILE: u32 = 16;

/// One row of the storage data-path ablation: the same `tar` write +
/// streaming-read workload pair over one user-level hosting of the uhci
/// URB path.
#[derive(Debug, Clone)]
pub struct StorageAblationRow {
    /// Configuration label.
    pub label: &'static str,
    /// Completed data-bearing transfers (write sectors + read sectors).
    pub urbs: u64,
    /// Payload bytes moved (written + read back).
    pub payload_bytes: u64,
    /// Bytes that crossed through the XDR marshaler during the workload
    /// (both directions, scalar payloads included).
    pub marshaled_bytes: u64,
    /// Call/return round trips during the workload.
    pub round_trips: u64,
    /// URB doorbells rung.
    pub doorbells: u64,
    /// Average URB descriptors per doorbell.
    pub descs_per_doorbell: f64,
    /// CPU-copied payload bytes. Unlike the NIC ablation — where every
    /// hosting pays the same one copy into the DMA pool — sector-granular
    /// payloads are page-shaped, so the shmring build *adopts* them
    /// (page donation) and this drops to zero: descriptor traffic only.
    pub bytes_copied: u64,
    /// Total virtual CPU time consumed (kernel + user, ns).
    pub virtual_ns: u64,
    /// Per-URB submit→completion latency percentiles (ns).
    pub lat: LatencyPercentiles,
}

impl StorageAblationRow {
    /// Virtual-time throughput: payload moved over CPU time consumed.
    pub fn virtual_mbps(&self) -> f64 {
        if self.virtual_ns == 0 {
            return 0.0;
        }
        (self.payload_bytes as f64 * 8.0) / (self.virtual_ns as f64 / 1e9) / 1e6
    }
}

/// Runs the `tar` write + streaming-read pair over one uhci user-level
/// data-path hosting and reports what crossed, what copied, and what it
/// cost.
pub fn storage_run(kind: DataPathKind) -> StorageAblationRow {
    use std::rc::Rc;

    let k = Kernel::new();
    let tracer = install_metrics(&k);
    let (label, channel, urb_path) = match kind {
        DataPathKind::Copy => {
            let d = decaf_drivers::uhci::install_value(&k, "uhci0", false)
                .expect("value uhci installs");
            ("copy (per-URB marshal)", Rc::clone(&d.channel), None)
        }
        DataPathKind::BatchedCopy => {
            let d = decaf_drivers::uhci::install_value(&k, "uhci0", true)
                .expect("batched value uhci installs");
            ("batched-copy (marshal)", Rc::clone(&d.channel), None)
        }
        DataPathKind::Shmring => {
            let d =
                decaf_drivers::uhci::install_shmring(&k, "uhci0").expect("shmring uhci installs");
            (
                "shmring (descriptors)",
                Rc::clone(&d.channel),
                Some(Rc::clone(&d.urb_path)),
            )
        }
    };

    let stats_before = channel.stats();
    let copied_before = k.stats().bytes_copied;
    let busy_before = {
        let s = k.snapshot();
        s.kernel_busy_ns + s.user_busy_ns
    };

    let w = workloads::tar_to_flash(&k, "uhci0", STORAGE_FILES, STORAGE_SECTORS_PER_FILE)
        .expect("tar write");
    let r = workloads::tar_from_flash(&k, "uhci0", STORAGE_FILES, STORAGE_SECTORS_PER_FILE)
        .expect("tar streaming read");
    // End-of-run barrier: flush parked deferred OUT URBs, let the last
    // coalesced doorbells and givebacks land.
    let _ = channel.flush(&k);
    k.run_for(2 * costs::DOORBELL_COALESCE_NS);

    // Invariants every hosting must uphold.
    let sectors = (STORAGE_FILES * STORAGE_SECTORS_PER_FILE) as u64;
    assert_eq!(w.ops, sectors, "every sector written");
    assert_eq!(r.ops, sectors, "every sector read back");
    assert_eq!(r.bytes, w.bytes, "reads return exactly what writes stored");
    assert!(
        k.violations().is_empty(),
        "kernel-rule violations: {:?}",
        k.violations()
    );
    if let Some(path) = &urb_path {
        assert!(path.conserved(), "URB conservation violated");
        assert_eq!(path.pool().in_use_sectors(), 0, "sector runs leaked");
        assert_eq!(
            k.stats().bytes_copied - copied_before,
            0,
            "shmring bulk payloads must never be CPU-copied"
        );
    }

    let s = channel.stats();
    let snap = k.snapshot();
    let doorbells = s.doorbells - stats_before.doorbells;
    let ring_posts = s.ring_posts - stats_before.ring_posts;
    StorageAblationRow {
        label,
        urbs: w.ops + r.ops,
        payload_bytes: w.bytes + r.bytes,
        marshaled_bytes: (s.bytes_in + s.bytes_out)
            - (stats_before.bytes_in + stats_before.bytes_out),
        round_trips: s.round_trips - stats_before.round_trips,
        doorbells,
        descs_per_doorbell: if doorbells == 0 {
            0.0
        } else {
            ring_posts as f64 / doorbells as f64
        },
        bytes_copied: k.stats().bytes_copied - copied_before,
        virtual_ns: snap.kernel_busy_ns + snap.user_busy_ns - busy_before,
        lat: LatencyPercentiles::from_tracer(&tracer, "tar.urb_ns"),
    }
}

/// Regenerates the storage data-path ablation: copy vs batched-copy vs
/// shmring on the same `tar` write + streaming-read pair. Storage joins
/// netperf in the data-path story — and goes one step further: because
/// sector payloads are page-granular, the shmring build adopts them
/// instead of copying, so `bytes_copied` drops to zero outright.
pub fn storage_ablation() -> Vec<StorageAblationRow> {
    [
        DataPathKind::Copy,
        DataPathKind::BatchedCopy,
        DataPathKind::Shmring,
    ]
    .into_iter()
    .map(storage_run)
    .collect()
}

// --------------------------------------------- Fragmentation ablation

/// Pool-pressure points (% of the pool pinned as scattered singles).
pub const FRAG_PRESSURES: [usize; 5] = [0, 25, 50, 75, 90];
/// Multi-sector write attempts per cell.
pub const FRAG_ATTEMPTS: usize = 24;

/// One cell of the fragmentation ablation: a pool-allocation mode under
/// one adversarial pressure point.
#[derive(Debug, Clone)]
pub struct FragAblationRow {
    /// Allocation-mode label.
    pub label: &'static str,
    /// Percent of the pool pinned as scattered single sectors.
    pub pressure: usize,
    /// Multi-sector write URBs attempted.
    pub attempts: u64,
    /// Attempts refused at submission (`usb_submit_urb` returned busy
    /// after the reclaim-and-retry).
    pub failures: u64,
    /// Attempts whose completion came home with status 0.
    pub completed: u64,
    /// Pool refusals issued while free bytes sufficed (retries
    /// included) — the counter the buddy+SG mode must hold at zero.
    pub frag_refusals: u64,
    /// Pool refusals issued with genuinely too few free sectors.
    pub exhausted: u64,
    /// CPU-copied payload bytes during the workload (every mode adopts;
    /// must be zero).
    pub bytes_copied: u64,
    /// Payload bytes landed on flash by completed writes.
    pub payload_bytes: u64,
    /// Total busy virtual time consumed by the workload (ns).
    pub virtual_ns: u64,
}

impl FragAblationRow {
    /// Fraction of attempts refused.
    pub fn failure_rate(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        self.failures as f64 / self.attempts as f64
    }

    /// Virtual-time throughput of the writes that did complete.
    pub fn virtual_mbps(&self) -> f64 {
        if self.virtual_ns == 0 {
            return 0.0;
        }
        (self.payload_bytes as f64 * 8.0) / (self.virtual_ns as f64 / 1e9) / 1e6
    }
}

/// Runs one fragmentation cell: install the shmring uhci build with the
/// given pool [`decaf_shmring::AllocMode`], pin `pressure`% of the sector pool as
/// *scattered* single-sector chains (allocate every sector as a single,
/// free the evenly-spread rest — the adversarial schedule that defeats
/// any contiguity-requiring allocator while leaving plenty of free
/// bytes), then attempt a burst of multi-sector flash writes and report
/// who refused what.
pub fn frag_run(mode: decaf_shmring::AllocMode, pressure: usize) -> FragAblationRow {
    use decaf_simdev::uhci as hwreg;
    use decaf_simkernel::usb::{Urb, UrbDir};
    use std::cell::Cell;
    use std::rc::Rc;

    let label = match mode {
        decaf_shmring::AllocMode::FirstFit => "first-fit",
        decaf_shmring::AllocMode::Buddy => "buddy",
        decaf_shmring::AllocMode::BuddySg => "buddy+SG",
    };
    let k = Kernel::new();
    let drv = decaf_drivers::uhci::install_shmring_with(&k, "uhci0", mode)
        .expect("shmring uhci installs");
    let pool = drv.urb_path.pool();

    // Adversarial pinning: every sector leaves the pool as a
    // single-sector chain, then the evenly-spread complement comes back
    // — what remains free is singles scattered across the whole map.
    let total = pool.capacity_sectors();
    let singles: Vec<_> = (0..total)
        .map(|_| pool.alloc_sg(1).expect("fresh pool hands out every sector"))
        .collect();
    // Integer-exact even spreading: sector `i` stays pinned when the
    // cumulative pin quota crosses an integer at `i`.
    let keep = |i: usize| (i * pressure) / 100 != ((i + 1) * pressure) / 100;
    let mut still_pinned = Vec::new();
    for (i, h) in singles.into_iter().enumerate() {
        if keep(i) {
            still_pinned.push(h);
        } else {
            pool.free_sg(h).expect("pinning frees its own chains");
        }
    }

    let stats_before = pool.stats();
    let copied_before = k.stats().bytes_copied;
    let busy_before = {
        let s = k.snapshot();
        s.kernel_busy_ns + s.user_busy_ns
    };

    // The workload: multi-sector flash writes whose command spans three
    // pool sectors — trivially satisfied by a fresh pool, impossible for
    // a contiguity-requiring allocator once the free map is singles.
    let payload_len = 3 * hwreg::SECTOR_SIZE - 36;
    let completed = Rc::new(Cell::new(0u64));
    let mut failures = 0u64;
    for t in 0..FRAG_ATTEMPTS {
        let mut data = vec![hwreg::FLASH_CMD_WRITE];
        data.extend_from_slice(&(t as u32).to_le_bytes());
        data.extend((0..payload_len).map(|i| (t as u8) ^ (i as u8).wrapping_mul(31)));
        let c = Rc::clone(&completed);
        let submitted = k.usb_submit_urb(
            "uhci0",
            Urb {
                endpoint: hwreg::EP_BULK_OUT as u8,
                dir: UrbDir::Out,
                data,
            },
            Rc::new(move |_, r| {
                if r.is_ok() {
                    c.set(c.get() + 1);
                }
            }),
        );
        if submitted.is_err() {
            failures += 1;
        }
        // Let completions land and their chains come home before the
        // next attempt: the pressure point stays a property of the
        // pinning, not of in-flight depth.
        k.run_for(2 * costs::DOORBELL_COALESCE_NS);
    }
    let _ = drv.channel.flush(&k);
    k.run_for(2 * costs::DOORBELL_COALESCE_NS);

    let stats = pool.stats();
    let snap = k.snapshot();
    let completed = completed.get();
    assert_eq!(
        completed + failures,
        FRAG_ATTEMPTS as u64,
        "{label}@{pressure}%: every attempt either completed or was refused"
    );
    assert_eq!(
        k.stats().bytes_copied - copied_before,
        0,
        "{label}@{pressure}%: adopted payloads must never be CPU-copied"
    );
    assert!(
        drv.urb_path.conserved(),
        "{label}@{pressure}%: conservation"
    );
    assert_eq!(
        pool.in_use_sectors(),
        still_pinned.len(),
        "{label}@{pressure}%: only the pinned singles stay in use"
    );
    for h in still_pinned {
        pool.free_sg(h).expect("pinned chains stay live to the end");
    }
    assert!(pool.conserved(), "{label}@{pressure}%: pool conservation");
    assert_eq!(pool.in_use_sectors(), 0, "{label}@{pressure}%: no leak");

    FragAblationRow {
        label,
        pressure,
        attempts: FRAG_ATTEMPTS as u64,
        failures,
        completed,
        frag_refusals: stats.frag_refusals - stats_before.frag_refusals,
        exhausted: stats.exhausted - stats_before.exhausted,
        bytes_copied: k.stats().bytes_copied - copied_before,
        payload_bytes: completed * payload_len as u64,
        virtual_ns: snap.kernel_busy_ns + snap.user_busy_ns - busy_before,
    }
}

/// Regenerates the fragmentation ablation: first-fit vs buddy vs
/// buddy + scatter-gather across the pressure sweep, and asserts the
/// headline claim — the chaining mode sustains a zero alloc-failure
/// rate at every pressure point where the contiguity-requiring modes
/// refuse transfers the pool has the bytes for.
pub fn frag_ablation() -> Vec<FragAblationRow> {
    let rows: Vec<FragAblationRow> = [
        decaf_shmring::AllocMode::FirstFit,
        decaf_shmring::AllocMode::Buddy,
        decaf_shmring::AllocMode::BuddySg,
    ]
    .into_iter()
    .flat_map(|mode| FRAG_PRESSURES.iter().map(move |&p| frag_run(mode, p)))
    .collect();

    assert!(
        rows.iter()
            .filter(|r| r.label == "buddy+SG")
            .all(|r| r.failures == 0 && r.frag_refusals == 0),
        "buddy+SG refused a transfer it had the bytes for"
    );
    assert!(
        rows.iter()
            .any(|r| r.label == "first-fit" && r.failures > 0 && r.frag_refusals > 0),
        "the sweep never drove first-fit into fragmentation refusals"
    );
    rows
}

// ----------------------------------------------------- Shard ablation

/// One row of the multi-channel sharding ablation: the same netperf
/// stream over the sharded e1000 build at one shard count.
#[derive(Debug, Clone)]
pub struct ShardAblationRow {
    /// Shard count.
    pub shards: usize,
    /// Packets offered (and transmitted).
    pub packets: u64,
    /// Payload bytes offered.
    pub payload_bytes: u64,
    /// Total busy virtual time, kernel + user (the serial model: one CPU
    /// does everything).
    pub total_busy_ns: u64,
    /// Busy time of the busiest shard (the critical path).
    pub shard_max_ns: u64,
    /// Busy time attributed to shards, summed.
    pub shard_sum_ns: u64,
    /// The parallel wall-clock estimate: serial (unattributed) work plus
    /// the critical-path shard. With shards=1 this equals
    /// `total_busy_ns`; with N balanced shards the sharded portion
    /// divides by ~N.
    pub effective_ns: u64,
    /// Data-path doorbells rung across all shards.
    pub doorbells: u64,
    /// Average descriptors per doorbell.
    pub descs_per_doorbell: f64,
    /// TX descriptors posted across the ring set.
    pub ring_posts: u64,
    /// CPU-copied payload bytes (the audit counter: must not regress as
    /// shards are added — sharding changes steering, never copying).
    pub bytes_copied: u64,
    /// Completion tokens issued by the async transport across all shards.
    pub tokens: u64,
    /// Crossing cost covered by computation that ran while the crossing
    /// was in flight (the async transport's overlap credit, ns).
    pub overlap_ns: u64,
    /// Per-packet request-latency percentiles (ns).
    pub lat: LatencyPercentiles,
}

impl ShardAblationRow {
    /// Virtual-time netperf throughput under the parallel wall model.
    pub fn virtual_mbps(&self) -> f64 {
        if self.effective_ns == 0 {
            return 0.0;
        }
        (self.payload_bytes as f64 * 8.0) / (self.effective_ns as f64 / 1e9) / 1e6
    }
}

/// Shard counts the ablation sweeps.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs the netperf send workload over the sharded e1000 build with
/// `shards` channels and reports the per-shard cost breakdown.
pub fn shard_run(shards: usize, seconds: u32, pps: u32) -> ShardAblationRow {
    let k = Kernel::new();
    let tracer = install_metrics(&k);
    let drv = decaf_drivers::e1000::decaf::install_sharded(&k, "eth0", shards)
        .expect("sharded e1000 installs");
    k.netdev_open("eth0").expect("open");
    k.schedule_point();
    let busy_before = {
        let s = k.snapshot();
        s.kernel_busy_ns + s.user_busy_ns
    };
    let shard_before = k.shard_busy_ns();
    let copied_before = k.stats().bytes_copied;
    let stats = workloads::netperf_send(&k, "eth0", seconds, pps, 1500).expect("netperf");
    k.run_for(4 * costs::DOORBELL_COALESCE_NS);
    let snap = k.snapshot();
    let total_busy_ns = snap.kernel_busy_ns + snap.user_busy_ns - busy_before;
    // Window the per-shard counters over the same interval as the total,
    // so the serial/parallel split never mixes measurement windows.
    let shard_busy: Vec<u64> = k
        .shard_busy_ns()
        .iter()
        .enumerate()
        .map(|(i, &ns)| ns - shard_before.get(i).copied().unwrap_or(0))
        .collect();
    let shard_max_ns = shard_busy.iter().copied().max().unwrap_or(0);
    let shard_sum_ns = shard_busy.iter().sum::<u64>();
    let serial_ns = total_busy_ns.saturating_sub(shard_sum_ns);
    // Settle the async transport: flush anything still parked, then
    // harvest every launched crossing so token conservation is checked
    // over a closed ledger.
    drv.channels.flush_all(&k).expect("final flush");
    drv.channels.harvest_all(&k);
    let s = drv.channels.stats();

    // Invariants every run must uphold — the ablation rows and the CI
    // stress smoke gate on the same checks.
    let net = k.net_stats("eth0");
    assert_eq!(net.tx_packets, stats.ops, "every offered frame transmitted");
    assert_eq!(net.rx_packets, stats.ops, "every loopback frame received");
    assert!(
        drv.tx_set.conserved(),
        "TX descriptor conservation violated"
    );
    assert!(
        drv.rx_set.conserved(),
        "RX descriptor conservation violated"
    );
    assert_eq!(drv.tx_set.in_flight(), 0, "TX descriptors leaked");
    assert_eq!(drv.rx_set.in_flight(), 0, "RX descriptors leaked");
    assert!(
        s.bytes_in + s.bytes_out < stats.ops * 64,
        "payload leaked into the marshaler"
    );
    assert!(
        k.violations().is_empty(),
        "kernel-rule violations: {:?}",
        k.violations()
    );
    if shards > 1 {
        let rings_used = (0..shards)
            .filter(|&i| drv.tx_set.ring(i).stats().posts > 0)
            .count();
        assert!(rings_used >= 2, "flow steering left traffic on one ring");
    }
    // Async-transport ledger: every issued token is harvested or
    // cancelled, nothing is left in flight, and the doorbell crossings
    // overlapped real computation.
    assert_eq!(
        s.tokens_issued,
        s.tokens_harvested + s.tokens_cancelled,
        "completion-token conservation violated"
    );
    assert_eq!(
        drv.channels.tokens_outstanding(),
        0,
        "completion tokens left outstanding after harvest"
    );
    assert!(s.tokens_issued > 0, "async transport never launched");
    assert!(
        s.overlap_ns > 0,
        "async crossings overlapped no computation"
    );

    ShardAblationRow {
        shards,
        packets: stats.ops,
        payload_bytes: stats.bytes,
        total_busy_ns,
        shard_max_ns,
        shard_sum_ns,
        effective_ns: serial_ns + shard_max_ns,
        doorbells: s.doorbells,
        descs_per_doorbell: s.descriptors_per_doorbell(),
        ring_posts: s.ring_posts,
        bytes_copied: k.stats().bytes_copied - copied_before,
        tokens: s.tokens_issued,
        overlap_ns: s.overlap_ns,
        lat: LatencyPercentiles::from_tracer(&tracer, "net.pkt_ns"),
    }
}

/// Regenerates the sharding ablation: the identical netperf stream at
/// shards = 1, 2, 4, 8. The parallel wall model (serial work plus the
/// critical-path shard) is where multi-channel sharding pays: the
/// per-packet data-path work divides across shards while copies and
/// marshaled bytes stay identical.
pub fn shard_ablation() -> Vec<ShardAblationRow> {
    SHARD_COUNTS
        .into_iter()
        .map(|n| shard_run(n, NET_SECONDS, E1000_PPS))
        .collect()
}

// ------------------------------------- Sharded storage ablation

/// LUN streams the sharded storage ablation drives. The simulated flash
/// exposes [`decaf_simdev::uhci::MAX_LUNS`] logical units; four parallel
/// `tar` streams are enough to exercise multi-queue steering at every
/// shard width while keeping the suite fast.
pub const STORAGE_LUNS: u32 = 4;

/// One row of the sharded storage ablation: the identical multi-LUN
/// `tar` write + streaming-read pair over the sharded uhci build at one
/// shard count.
#[derive(Debug, Clone)]
pub struct StorageShardAblationRow {
    /// Shard count.
    pub shards: usize,
    /// Completed data-bearing transfers (write + read sectors, all LUNs).
    pub urbs: u64,
    /// Payload bytes moved (written + read back).
    pub payload_bytes: u64,
    /// Total busy virtual time, kernel + user (the serial model).
    pub total_busy_ns: u64,
    /// Busy time of the busiest shard (the critical path).
    pub shard_max_ns: u64,
    /// Busy time attributed to shards, summed.
    pub shard_sum_ns: u64,
    /// The parallel wall-clock estimate: serial (unattributed) work plus
    /// the critical-path shard.
    pub effective_ns: u64,
    /// URB doorbells rung across all shards.
    pub doorbells: u64,
    /// Average URB descriptors per doorbell.
    pub descs_per_doorbell: f64,
    /// Shards that actually carried URB traffic (≤ min(shards, LUNs)).
    pub shards_used: usize,
    /// CPU-copied payload bytes — the acceptance invariant: **exactly
    /// zero at every shard width**. Sharding changes steering; payloads
    /// stay adopted, never copied.
    pub bytes_copied: u64,
    /// Per-URB submit→completion latency percentiles (ns).
    pub lat: LatencyPercentiles,
}

impl StorageShardAblationRow {
    /// Virtual-time storage throughput under the parallel wall model.
    pub fn virtual_mbps(&self) -> f64 {
        if self.effective_ns == 0 {
            return 0.0;
        }
        (self.payload_bytes as f64 * 8.0) / (self.effective_ns as f64 / 1e9) / 1e6
    }
}

/// Shard counts the storage ablation sweeps.
pub const STORAGE_SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs the multi-LUN tar write + streaming-read pair over the sharded
/// uhci build with `shards` queues and reports the per-shard cost
/// breakdown. Asserts the invariants every width must uphold — most
/// importantly `bytes_copied == 0`: the zero-copy claim is not allowed
/// to regress as queues are added.
pub fn storage_shard_run(
    shards: usize,
    files: u32,
    sectors_per_file: u32,
) -> StorageShardAblationRow {
    let k = Kernel::new();
    let tracer = install_metrics(&k);
    let drv =
        decaf_drivers::uhci::install_sharded(&k, "uhci0", shards).expect("sharded uhci installs");
    let busy_before = {
        let s = k.snapshot();
        s.kernel_busy_ns + s.user_busy_ns
    };
    let shard_before = k.shard_busy_ns();
    let copied_before = k.stats().bytes_copied;
    let stats_before = drv.channels.stats();

    let w = workloads::tar_to_flash_luns(&k, "uhci0", STORAGE_LUNS, files, sectors_per_file)
        .expect("multi-LUN tar write");
    let r = workloads::tar_from_flash_luns(&k, "uhci0", STORAGE_LUNS, files, sectors_per_file)
        .expect("multi-LUN streaming read");
    k.run_for(4 * costs::DOORBELL_COALESCE_NS);

    let snap = k.snapshot();
    let total_busy_ns = snap.kernel_busy_ns + snap.user_busy_ns - busy_before;
    let shard_busy: Vec<u64> = k
        .shard_busy_ns()
        .iter()
        .enumerate()
        .map(|(i, &ns)| ns - shard_before.get(i).copied().unwrap_or(0))
        .collect();
    let shard_max_ns = shard_busy.iter().copied().max().unwrap_or(0);
    let shard_sum_ns = shard_busy.iter().sum::<u64>();
    let serial_ns = total_busy_ns.saturating_sub(shard_sum_ns);
    let s = drv.channels.stats();

    // Invariants every width must uphold — the ablation rows and the CI
    // storage smoke gate on the same checks.
    let sectors = (STORAGE_LUNS * files * sectors_per_file) as u64;
    assert_eq!(w.ops, sectors, "every sector of every LUN written");
    assert_eq!(r.ops, sectors, "every sector of every LUN read back");
    assert_eq!(r.bytes, w.bytes, "reads return exactly what writes stored");
    assert_eq!(
        k.stats().bytes_copied - copied_before,
        0,
        "sharded storage bulk payloads must never be CPU-copied (shards={shards})"
    );
    assert!(
        drv.urb_path.conserved(),
        "per-shard URB conservation violated"
    );
    assert_eq!(drv.urb_path.in_flight(), 0, "URBs leaked in flight");
    assert_eq!(
        drv.urb_path.set().pool().in_use_sectors(),
        0,
        "sector runs leaked"
    );
    assert!(
        k.violations().is_empty(),
        "kernel-rule violations: {:?}",
        k.violations()
    );
    let shards_used = (0..shards)
        .filter(|&i| drv.urb_path.set().shard_stats(i).submitted > 0)
        .count();
    if shards > 1 {
        assert!(
            shards_used >= 2,
            "LUN steering left all URB traffic on {shards_used} shard(s)"
        );
    }

    let doorbells = s.doorbells - stats_before.doorbells;
    let ring_posts = s.ring_posts - stats_before.ring_posts;
    StorageShardAblationRow {
        shards,
        urbs: w.ops + r.ops,
        payload_bytes: w.bytes + r.bytes,
        total_busy_ns,
        shard_max_ns,
        shard_sum_ns,
        effective_ns: serial_ns + shard_max_ns,
        doorbells,
        descs_per_doorbell: if doorbells == 0 {
            0.0
        } else {
            ring_posts as f64 / doorbells as f64
        },
        shards_used,
        bytes_copied: k.stats().bytes_copied - copied_before,
        lat: LatencyPercentiles::from_tracer(&tracer, "tar.urb_ns"),
    }
}

/// Regenerates the sharded storage ablation: the identical multi-LUN
/// tar pair at shards = 1, 2, 4, 8, `bytes_copied == 0` asserted at
/// every width. The storage counterpart of [`shard_ablation`]: per-URB
/// drain work divides across queues under the parallel wall model while
/// the zero-copy property holds unchanged.
pub fn storage_shard_ablation() -> Vec<StorageShardAblationRow> {
    STORAGE_SHARD_COUNTS
        .into_iter()
        .map(|n| storage_shard_run(n, STORAGE_FILES, STORAGE_SECTORS_PER_FILE))
        .collect()
}

// ------------------------------------------------- Transport ablation

/// One row of the transport/delta ablation: the same repeated-
/// configuration call sequence over one channel configuration.
#[derive(Debug, Clone)]
pub struct TransportAblationRow {
    /// Configuration label.
    pub label: &'static str,
    /// Call/return round trips (batched flushes count once).
    pub round_trips: u64,
    /// One-way boundary crossings.
    pub one_way_crossings: u64,
    /// Marshaled bytes into the target domain.
    pub bytes_in: u64,
    /// Marshaled bytes back out.
    pub bytes_out: u64,
    /// Batched flushes performed.
    pub flushes: u64,
    /// Deferred calls carried by those flushes.
    pub batched_calls: u64,
    /// Objects transferred as dirty-field deltas.
    pub delta_objects: u64,
    /// Masked fields elided by delta marshaling.
    pub delta_fields_elided: u64,
    /// Total virtual CPU time consumed (kernel + user, ns).
    pub virtual_ns: u64,
    /// Per-configuration-cycle request-latency percentiles (ns).
    pub lat: LatencyPercentiles,
}

/// The three stacked configurations the ablation compares: the seed
/// per-call path, masks + delta, and masks + delta + batching.
pub fn transport_ablation_configs() -> [(&'static str, decaf_xpc::ChannelConfig); 3] {
    use decaf_xpc::ChannelConfig;
    [
        ("mask-only (seed InProc)", ChannelConfig::kernel_user()),
        (
            "mask+delta",
            ChannelConfig {
                delta: true,
                ..ChannelConfig::kernel_user()
            },
        ),
        ("mask+delta+batch", ChannelConfig::kernel_user_batched()),
    ]
}

/// Runs the repeated-configuration workload — the shape of a driver's
/// control path: tweak one knob on a shared structure, post a few
/// register writes, invoke the decaf driver to apply — and returns the
/// channel counters plus virtual time burned.
///
/// Every configuration executes the *same* call sequence; only the
/// transport and delta policy differ, so the counters isolate exactly
/// what batching and dirty-field marshaling save.
pub fn repeated_config_run(config: decaf_xpc::ChannelConfig, iters: u32) -> TransportAblationRow {
    use decaf_xdr::XdrValue;
    use decaf_xpc::{Domain, ProcDef, XpcChannel};
    use std::rc::Rc;

    let kernel = Kernel::new();
    let tracer = install_metrics(&kernel);
    let spec = decaf_xdr::XdrSpec::parse(
        "struct cfg_ring { int size; int head; };\n\
         struct cfg { int itr; int speed; int flags; opaque tuning[64]; struct cfg_ring *ring; };",
    )
    .expect("ablation spec parses");
    let ch = XpcChannel::new(
        spec.clone(),
        decaf_xdr::mask::MaskSet::full(),
        config,
        Domain::Nucleus,
        Domain::Decaf,
    );
    // Nucleus import: a posted register write (result-free).
    ch.register_proc(
        Domain::Nucleus,
        ProcDef {
            name: "writel".into(),
            arg_types: vec![],
            handler: Rc::new(|_, _, _, _| XdrValue::Void),
        },
    )
    .expect("register writel");
    // Decaf driver: apply the configuration, acknowledge in `flags`.
    ch.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "apply_config".into(),
            arg_types: vec!["cfg".into()],
            handler: Rc::new(|k, ch, args, _| {
                let Some(c) = args[0] else {
                    return XdrValue::Int(-22);
                };
                let heap = ch.heap(Domain::Decaf);
                let itr = heap
                    .borrow()
                    .scalar(c, "itr")
                    .ok()
                    .and_then(|v| v.as_int())
                    .unwrap_or(0);
                // Program the device: three posted writes.
                for (reg, val) in [(0xc8u32, itr as u32), (0x00, 1), (0x38, 0)] {
                    let _ = ch.call_deferred(
                        k,
                        Domain::Decaf,
                        "writel",
                        &[],
                        &[XdrValue::UInt(reg), XdrValue::UInt(val)],
                    );
                }
                let _ = heap.borrow_mut().set_scalar(c, "flags", XdrValue::Int(itr));
                XdrValue::Int(0)
            }),
        },
    )
    .expect("register apply_config");

    let cfg_obj = {
        let heap = ch.heap(Domain::Nucleus);
        let mut h = heap.borrow_mut();
        let ring = h.alloc_default("cfg_ring", &spec).expect("alloc ring");
        let c = h.alloc_default("cfg", &spec).expect("alloc cfg");
        h.set_ptr(c, "ring", Some(ring)).expect("link ring");
        c
    };

    for i in 0..iters {
        {
            let heap = ch.heap(Domain::Nucleus);
            heap.borrow_mut()
                .set_scalar(cfg_obj, "itr", XdrValue::Int(8000 + i as i32))
                .expect("tweak itr");
        }
        kernel.trace_req_begin("op_ns", i as u64);
        ch.call(
            &kernel,
            Domain::Nucleus,
            "apply_config",
            &[Some(cfg_obj)],
            &[],
        )
        .expect("apply_config upcall");
        kernel.trace_req_end("op_ns", i as u64);
    }
    ch.flush(&kernel).expect("final flush");

    let s = ch.stats();
    let snap = kernel.snapshot();
    TransportAblationRow {
        label: "",
        round_trips: s.round_trips,
        one_way_crossings: s.one_way_crossings,
        bytes_in: s.bytes_in,
        bytes_out: s.bytes_out,
        flushes: s.flushes,
        batched_calls: s.batched_calls,
        delta_objects: s.delta_objects,
        delta_fields_elided: s.delta_fields_elided,
        virtual_ns: snap.kernel_busy_ns + snap.user_busy_ns,
        lat: LatencyPercentiles::from_tracer(&tracer, "op_ns"),
    }
}

/// Number of configuration cycles the ablation runs.
pub const ABLATION_ITERS: u32 = 25;

/// Regenerates the transport ablation: mask-only vs mask+delta vs
/// mask+delta+batch on the identical repeated-configuration workload.
pub fn transport_ablation() -> Vec<TransportAblationRow> {
    transport_ablation_configs()
        .into_iter()
        .map(|(label, config)| TransportAblationRow {
            label,
            ..repeated_config_run(config, ABLATION_ITERS)
        })
        .collect()
}

// ------------------------------------------ Async transport rate sweep

/// One row of the async-transport open-rate sweep: the identical paced
/// deferred-call stream over the batched (synchronous flush) and async
/// (completion-token) transports at one offered rate.
#[derive(Debug, Clone)]
pub struct AsyncSweepRow {
    /// Offered deferred-call rate (calls per virtual second).
    pub offered_cps: u32,
    /// Busy virtual time under the batched transport (ns).
    pub batched_ns: u64,
    /// Busy virtual time under the async transport (ns).
    pub async_ns: u64,
    /// Crossing cost covered by computation that ran while crossings
    /// were in flight (async run, ns).
    pub overlap_ns: u64,
    /// Completion tokens issued by the async run.
    pub tokens: u64,
    /// Per-call submit (marshal + enqueue) latency percentiles for the
    /// async run (ns).
    pub lat: LatencyPercentiles,
}

impl AsyncSweepRow {
    /// Busy time the async transport saved, as a fraction of batched.
    pub fn saving(&self) -> f64 {
        if self.batched_ns == 0 {
            return 0.0;
        }
        1.0 - self.async_ns as f64 / self.batched_ns as f64
    }
}

/// Offered rates the async sweep walks (deferred calls per virtual
/// second). Spanning two decades: at low rates the coalescing deadline
/// launches small batches; at high rates the watermark launches full
/// ones — the overlap credit must hold across both regimes.
pub const ASYNC_SWEEP_RATES: [u32; 5] = [1_000, 2_000, 5_000, 10_000, 20_000];

/// Deferred calls per async-sweep run.
const ASYNC_SWEEP_CALLS: u32 = 60;

/// Runs `ASYNC_SWEEP_CALLS` posted register writes paced at `gap_ns`
/// apart over one channel configuration and returns the busy virtual
/// time plus the channel counters.
fn paced_deferred_run(
    config: decaf_xpc::ChannelConfig,
    gap_ns: u64,
) -> (u64, decaf_xpc::ChannelStats, LatencyPercentiles) {
    use decaf_xdr::XdrValue;
    use decaf_xpc::{Domain, ProcDef, XpcChannel};
    use std::rc::Rc;

    let kernel = Kernel::new();
    let tracer = install_metrics(&kernel);
    let spec = decaf_xdr::XdrSpec::parse("struct nil { int pad; };").expect("sweep spec parses");
    let ch = XpcChannel::new(
        spec,
        decaf_xdr::mask::MaskSet::full(),
        config,
        Domain::Nucleus,
        Domain::Decaf,
    );
    ch.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "writel".into(),
            arg_types: vec![],
            handler: Rc::new(|_, _, _, _| XdrValue::Void),
        },
    )
    .expect("register writel");

    for i in 0..ASYNC_SWEEP_CALLS {
        kernel.trace_req_begin("op_ns", i as u64);
        ch.call_deferred(
            &kernel,
            Domain::Nucleus,
            "writel",
            &[],
            &[XdrValue::UInt(0xc8), XdrValue::UInt(i)],
        )
        .expect("defer writel");
        kernel.trace_req_end("op_ns", i as u64);
        // The pacing gap: the nucleus goes on with unrelated work while
        // the transport decides when to launch. On the async transport
        // this is exactly the window an in-flight crossing hides under.
        kernel.run_for(gap_ns);
        ch.flush_if_due(&kernel).expect("deadline flush");
    }
    ch.flush(&kernel).expect("final flush");
    ch.harvest(&kernel);

    let snap = kernel.snapshot();
    (
        snap.kernel_busy_ns + snap.user_busy_ns,
        ch.stats(),
        LatencyPercentiles::from_tracer(&tracer, "op_ns"),
    )
}

/// Regenerates the async-transport sweep: batched vs async on the
/// identical paced deferred-call stream at every offered rate.
///
/// Asserts the tentpole acceptance property rate-by-rate: async busy
/// time never exceeds batched (uncovered ≤ full crossing cost by
/// construction), the overlap credit is real, and the completion-token
/// ledger closes.
pub fn async_transport_sweep() -> Vec<AsyncSweepRow> {
    use decaf_xpc::ChannelConfig;
    ASYNC_SWEEP_RATES
        .into_iter()
        .map(|cps| {
            let gap_ns = 1_000_000_000 / cps as u64;
            let (batched_ns, _, _) =
                paced_deferred_run(ChannelConfig::kernel_user_batched(), gap_ns);
            let (async_ns, s, lat) = paced_deferred_run(ChannelConfig::kernel_user_async(), gap_ns);
            assert!(
                async_ns <= batched_ns,
                "async busy ({async_ns}) exceeds batched ({batched_ns}) at {cps} calls/s"
            );
            assert!(s.overlap_ns > 0, "no overlap credit at {cps} calls/s");
            assert_eq!(
                s.tokens_issued,
                s.tokens_harvested + s.tokens_cancelled,
                "token conservation violated at {cps} calls/s"
            );
            AsyncSweepRow {
                offered_cps: cps,
                batched_ns,
                async_ns,
                overlap_ns: s.overlap_ns,
                tokens: s.tokens_issued,
                lat,
            }
        })
        .collect()
}

// ----------------------------------------- Interrupt-vs-poll RX sweep

/// One row of the RX-mode sweep: the identical offered arrival stream
/// serviced interrupt-driven (doorbell per watermark) vs poll-mode
/// (budgeted probes on a fixed softirq grid) at one offered rate.
#[derive(Debug, Clone)]
pub struct RxModeSweepRow {
    /// Offered arrival rate (packets per virtual second).
    pub offered_pps: u32,
    /// Frames delivered (must equal the offered count in both modes).
    pub packets: u64,
    /// Busy virtual time, interrupt-driven servicing (ns).
    pub interrupt_ns: u64,
    /// Busy virtual time, poll-mode servicing (ns).
    pub poll_ns: u64,
    /// Data-path doorbells rung by the interrupt-driven run.
    pub interrupt_doorbells: u64,
    /// Data-path doorbells rung by the poll-mode run (zero: polling
    /// replaces the doorbell crossing entirely).
    pub poll_doorbells: u64,
    /// Per-packet post→reclaim latency percentiles, interrupt run (ns).
    pub interrupt_lat: LatencyPercentiles,
    /// Per-packet post→reclaim latency percentiles, poll run (ns).
    pub poll_lat: LatencyPercentiles,
}

impl RxModeSweepRow {
    /// Whichever mode burned less CPU at this rate.
    pub fn winner(&self) -> &'static str {
        if self.poll_ns < self.interrupt_ns {
            "poll"
        } else {
            "interrupt"
        }
    }
}

/// Offered rates the RX-mode sweep walks (packets per virtual second).
/// Arrival times are integer nanoseconds computed per arrival index, so
/// the sweep is bit-deterministic at any rate — rates need *not* divide
/// one virtual second exactly (the poll grid picks up off-grid arrivals
/// at the next probe; see `rx_mode_run_schedule`).
pub const RX_SWEEP_RATES: [u32; 6] = [500, 1_000, 2_000, 4_000, 8_000, 16_000];

/// The uniform arrival schedule `rx_mode_run` paces: `pps` arrivals
/// spread over one virtual second, arrival `i` (1-based) at
/// `i * 1e9 / pps` integer nanoseconds. For divisor rates this is the
/// exact historical grid; for non-divisor rates the truncation is
/// per-arrival (no cumulative drift) and the last arrival still lands
/// at or before the one-second mark.
pub fn rx_uniform_schedule(pps: u32) -> Vec<u64> {
    (1..=pps as u64)
        .map(|i| i * 1_000_000_000 / pps as u64)
        .collect()
}

/// Runs one virtual second of paced descriptor arrivals through a
/// pool-less shmring data path serviced in `mode`, returning
/// `(busy_ns, delivered, doorbells, lat)` where `lat` holds per-packet
/// post→reclaim latency percentiles keyed by descriptor cookie.
///
/// Interrupt mode charges interrupt entry per arrival and rings the
/// watermark doorbell; poll mode charges a softirq dispatch per
/// [`decaf_drivers::support::RX_POLL_TICK_NS`] grid tick plus a poll
/// probe per ring check, and never rings a doorbell. Neither mode
/// copies payload bytes — the buffers stay where DMA wrote them.
pub fn rx_mode_run(
    mode: decaf_drivers::support::RxMode,
    pps: u32,
) -> (u64, u64, u64, LatencyPercentiles) {
    rx_mode_run_schedule(mode, &rx_uniform_schedule(pps))
}

/// [`rx_mode_run`] over an explicit arrival schedule (ascending virtual
/// times, ns). This is the engine both the uniform sweep and the
/// open-loop load generators drive: arrivals may land anywhere — on the
/// poll grid, off it, or in Poisson clumps — and the poll loop simply
/// posts every arrival whose time has passed at each probe, carrying
/// budget overflow to the next tick and running extra ticks past the
/// nominal horizon until the ring drains. Nothing is ever dropped.
///
/// Regression note: the poll branch used to reconstruct arrival counts
/// as `tick_ns / gap_ns`, which silently assumed every rate divides the
/// probe grid; an off-grid schedule tripped its accounting assert even
/// though no descriptor was lost.
pub fn rx_mode_run_schedule(
    mode: decaf_drivers::support::RxMode,
    schedule: &[u64],
) -> (u64, u64, u64, LatencyPercentiles) {
    use decaf_drivers::support::{RxMode, RX_POLL_BUDGET, RX_POLL_TICK_NS};
    use decaf_shmring::{BufHandle, Descriptor, DoorbellPolicy, ShmRing};
    use decaf_xdr::XdrValue;
    use decaf_xpc::{ChannelConfig, DataPathChannel, Domain, ProcDef, XpcChannel};
    use std::rc::Rc;

    let kernel = Kernel::new();
    let tracer = install_metrics(&kernel);
    let spec = decaf_xdr::XdrSpec::parse("struct nil { int pad; };").expect("sweep spec parses");
    let ch = Rc::new(XpcChannel::new(
        spec,
        decaf_xdr::mask::MaskSet::full(),
        ChannelConfig::kernel_user_shmring(),
        Domain::Nucleus,
        Domain::Decaf,
    ));
    // Pool-less: descriptors name device receive slots; no payload ever
    // enters a shared pool or the marshaler.
    let dp = DataPathChannel::new(
        Rc::clone(&ch),
        Domain::Nucleus,
        "rx_drain",
        Rc::new(ShmRing::new("rxsweep", 64)),
        Rc::new(ShmRing::new("rxsweep-done", 64)),
        None,
        DoorbellPolicy::with_watermark(8),
    )
    .expect("rx datapath builds");
    let end = dp.end(Domain::Decaf);
    {
        let end = dp.end(Domain::Decaf);
        ch.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "rx_drain".into(),
                arg_types: vec![],
                handler: Rc::new(move |k, _, _, _| {
                    for d in end.consume(k) {
                        k.charge(decaf_simkernel::CpuClass::User, costs::DMA_DESC_NS);
                        let _ = end.complete(k, d);
                    }
                    XdrValue::Void
                }),
            },
        )
        .expect("register rx_drain");
    }

    let total = schedule.len() as u64;
    debug_assert!(
        schedule.windows(2).all(|w| w[0] <= w[1]),
        "arrival schedule must be ascending"
    );
    let mut delivered = 0u64;
    match mode {
        RxMode::Interrupt => {
            for (slot, &at_ns) in schedule.iter().enumerate() {
                kernel.run_for(at_ns.saturating_sub(kernel.now_ns()));
                // Interrupt entry/exit per arriving frame, then the
                // descriptor post; the watermark decides when the
                // doorbell crossing launches the drain.
                kernel.charge(decaf_simkernel::CpuClass::Kernel, costs::IRQ_ENTRY_NS);
                kernel.trace_req_begin("rx.pkt_ns", slot as u64);
                dp.post(
                    &kernel,
                    Descriptor {
                        buf: BufHandle((slot % 64) as u32),
                        len: 1500,
                        cookie: slot as u64,
                    },
                )
                .expect("post");
                dp.maybe_ring(&kernel).expect("watermark doorbell");
                for d in dp.reclaim_completions(&kernel) {
                    kernel.trace_req_end("rx.pkt_ns", d.cookie);
                    delivered += 1;
                }
            }
            dp.ring_doorbell(&kernel).expect("final doorbell");
            for d in dp.reclaim_completions(&kernel) {
                kernel.trace_req_end("rx.pkt_ns", d.cookie);
                delivered += 1;
            }
        }
        RxMode::Poll => {
            // NAPI shape: interrupts stay masked; a softirq-grid tick
            // posts whatever DMA delivered since the last tick, then the
            // decaf side probes the ring under a budget. An arrival that
            // lands between ticks waits for the next probe — later, but
            // never lost. The grid runs the full nominal second (the
            // poll tax is charged whether or not frames arrive) and then
            // keeps ticking until every arrival is posted and reclaimed.
            let nominal_ticks = 1_000_000_000 / RX_POLL_TICK_NS;
            let mut arrived = 0u64;
            let mut tick = 0u64;
            loop {
                tick += 1;
                let tick_ns = tick * RX_POLL_TICK_NS;
                kernel.run_for(tick_ns.saturating_sub(kernel.now_ns()));
                kernel.charge(
                    decaf_simkernel::CpuClass::Kernel,
                    costs::SOFTIRQ_DISPATCH_NS,
                );
                while (arrived as usize) < schedule.len()
                    && schedule[arrived as usize] <= tick_ns
                    && (arrived - delivered) < RX_POLL_BUDGET as u64
                {
                    kernel.trace_req_begin("rx.pkt_ns", arrived);
                    dp.post(
                        &kernel,
                        Descriptor {
                            buf: BufHandle((arrived % 64) as u32),
                            len: 1500,
                            cookie: arrived,
                        },
                    )
                    .expect("post");
                    arrived += 1;
                }
                for d in end.poll_and_reclaim(&kernel, RX_POLL_BUDGET) {
                    kernel.charge(decaf_simkernel::CpuClass::User, costs::DMA_DESC_NS);
                    end.complete(&kernel, d).expect("complete");
                }
                for d in dp.reclaim_completions(&kernel) {
                    kernel.trace_req_end("rx.pkt_ns", d.cookie);
                    delivered += 1;
                }
                if tick >= nominal_ticks && arrived == total && delivered == total {
                    break;
                }
                assert!(
                    tick < nominal_ticks * 4,
                    "poll grid failed to drain the schedule \
                     ({arrived}/{total} posted, {delivered} delivered)"
                );
            }
            assert_eq!(arrived, total, "poll grid missed arrivals");
        }
    }
    assert_eq!(dp.pending(), 0, "descriptors stranded in the ring");
    assert_eq!(
        kernel.stats().bytes_copied,
        0,
        "rx sweep must not copy payload"
    );
    let snap = kernel.snapshot();
    (
        snap.kernel_busy_ns + snap.user_busy_ns,
        delivered,
        ch.stats().doorbells,
        LatencyPercentiles::from_tracer(&tracer, "rx.pkt_ns"),
    )
}

/// Regenerates the interrupt-vs-poll RX sweep and asserts the crossover
/// shape: interrupt-driven servicing wins at the low end (the poll
/// grid's fixed softirq + probe tax dominates), poll-mode wins at the
/// high end (per-frame interrupt entry and doorbell crossings dominate),
/// and the winner flips exactly once as the offered rate climbs.
pub fn rx_mode_sweep() -> Vec<RxModeSweepRow> {
    use decaf_drivers::support::RxMode;
    let rows: Vec<RxModeSweepRow> = RX_SWEEP_RATES
        .into_iter()
        .map(|pps| {
            let (interrupt_ns, int_delivered, interrupt_doorbells, interrupt_lat) =
                rx_mode_run(RxMode::Interrupt, pps);
            let (poll_ns, poll_delivered, poll_doorbells, poll_lat) =
                rx_mode_run(RxMode::Poll, pps);
            assert_eq!(int_delivered, pps as u64, "interrupt mode dropped frames");
            assert_eq!(poll_delivered, pps as u64, "poll mode dropped frames");
            assert_eq!(poll_doorbells, 0, "poll mode rang a doorbell");
            assert!(interrupt_doorbells > 0, "interrupt mode never rang");
            RxModeSweepRow {
                offered_pps: pps,
                packets: pps as u64,
                interrupt_ns,
                poll_ns,
                interrupt_lat,
                poll_lat,
                interrupt_doorbells,
                poll_doorbells,
            }
        })
        .collect();
    let crossover = rows
        .iter()
        .position(|r| r.poll_ns < r.interrupt_ns)
        .expect("poll mode never overtakes interrupt mode");
    assert!(
        crossover > 0,
        "interrupt mode must win at the lowest offered rate"
    );
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            row.poll_ns < row.interrupt_ns,
            i >= crossover,
            "winner flipped more than once at {} pps",
            row.offered_pps
        );
    }
    rows
}

/// The offered rate at which poll-mode servicing first beats
/// interrupt-driven servicing in `rows` (packets per virtual second).
pub fn rx_crossover_pps(rows: &[RxModeSweepRow]) -> Option<u32> {
    rows.iter()
        .find(|r| r.poll_ns < r.interrupt_ns)
        .map(|r| r.offered_pps)
}

// ---------------------------------------------------------------- Table 4

/// The Table 4 study: plan, patch stream, classification.
#[derive(Debug, Clone)]
pub struct Table4Study {
    /// Patches in batch one (pre-2.6.22 in the paper).
    pub batch1: evolve::EvolveReport,
    /// Patches in batch two (2.6.22 → 2.6.27).
    pub batch2: evolve::EvolveReport,
    /// Combined totals.
    pub total: evolve::EvolveReport,
}

/// Builds the synthetic 320-patch stream over the sliced E1000 driver and
/// classifies where every changed line lands.
///
/// The stream is deterministic (seeded) and mirrors the paper's empirical
/// observation: upstream development lands overwhelmingly in code that
/// moved to the decaf driver; only a couple dozen patches touch the
/// user/kernel interface (new marshaled fields).
pub fn table4() -> Table4Study {
    let plan =
        slice(DriverKind::E1000.minic_source(), &SliceConfig::default()).expect("e1000 slices");
    let patches = e1000_patch_stream(&plan);
    let (b1, b2) = patches.split_at(200); // two batches, as applied in §5.2
    let batch1 = evolve::classify(&plan, b1);
    let batch2 = evolve::classify(&plan, b2);
    let mut total = evolve::EvolveReport::default();
    for r in [&batch1, &batch2] {
        total.nucleus_lines += r.nucleus_lines;
        total.decaf_lines += r.decaf_lines;
        total.library_lines += r.library_lines;
        total.interface_changes += r.interface_changes;
        total.new_function_patches += r.new_function_patches;
        total.patches_applied += r.patches_applied;
    }
    Table4Study {
        batch1,
        batch2,
        total,
    }
}

/// The deterministic 320-patch stream used by [`table4`].
pub fn e1000_patch_stream(plan: &SlicePlan) -> Vec<Patch> {
    let mut rng = SplitMix::new(0xDECAF);
    let mut patches = Vec::with_capacity(320);
    let decaf_fns = &plan.decaf_fns;
    let kernel_fns = &plan.kernel_fns;
    for id in 0..320u32 {
        // 88% of patches touch user-level code, 7% the nucleus, 5% are
        // brand-new functions (new development happens at user level).
        let roll = rng.below(100);
        let target_fn = if roll < 88 {
            decaf_fns[rng.below(decaf_fns.len() as u64) as usize].clone()
        } else if roll < 95 {
            kernel_fns[rng.below(kernel_fns.len() as u64) as usize].clone()
        } else {
            format!("e1000_new_feature_{id}")
        };
        let lines_changed = 2 + rng.below(38) as usize;
        // 23 of the 320 patches change the user/kernel interface.
        let new_field = if id % 14 == 0 && id / 14 < 23 {
            Some(NewField {
                struct_name: "e1000_adapter".into(),
                field_name: format!("feature_flag_{id}"),
                ty: decaf_slicer::CType::Int,
                decaf_accessed: true,
                access: decaf_slicer::access::RawAccess::RW,
            })
        } else {
            None
        };
        patches.push(Patch {
            id,
            target_fn,
            lines_changed,
            new_field,
        });
    }
    patches
}

// ------------------------------------------------ Overload knee (open loop)

use crate::loadgen;
use decaf_drivers::support::{install_open_loop_net, install_open_loop_storage, OpenLoopNet};
use decaf_simkernel::TimerId;
use decaf_xpc::{
    AdmissionController, AdmissionPolicy, AdmissionVerdict, ShardedUrbPath, TokenBucket,
    TrafficClass,
};
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// Shards in the overload rig (both the net and storage sides).
const OVERLOAD_SHARDS: usize = 2;
/// Virtual-time horizon of one overload run: arrivals are scheduled
/// inside this window; the drain afterwards completes everything that
/// was admitted (the drain tail is what blows the unbounded p99 up).
const OVERLOAD_HORIZON_NS: u64 = 4_000_000;
/// Admission queue cap for the bounded policies.
const OVERLOAD_QUEUE_CAP: usize = 24;
/// LUN space the storage arrivals spread over.
const OVERLOAD_LUNS: u64 = 8;
/// Seed for the arrival schedules: every run at the same rate sees the
/// byte-identical arrival stream, so policy is the only variable.
const OVERLOAD_SEED: u64 = 0xDECAF0101;

/// One admitted-but-not-yet-serviced open-loop request.
struct OverloadJob {
    class: TrafficClass,
    sched_ns: u64,
    cookie: u64,
}

/// Everything one overload run shares between the arrival timer, the
/// dispatch work item, and the coalescing poll timer.
struct OverloadRig {
    schedule: Vec<(u64, TrafficClass)>,
    next_arrival: Cell<usize>,
    queue: RefCell<VecDeque<OverloadJob>>,
    ctrl: Rc<AdmissionController>,
    net: OpenLoopNet,
    storage: Rc<ShardedUrbPath>,
    net_inflight: RefCell<HashMap<u64, u64>>,
    sto_inflight: RefCell<HashMap<u64, u64>>,
    /// `(completion_ns, latency_ns)` per completed request, where the
    /// latency is measured from the *scheduled* arrival — open-loop
    /// semantics: time the request spent waiting for a busy CPU counts.
    samples: RefCell<Vec<(u64, u64)>>,
    arrival_timer: Cell<Option<TimerId>>,
    shed: Cell<u64>,
    dropped: Cell<u64>,
}

/// The arrival/service loop. Runs in process context (the arrival
/// timer's softirq hands off through `schedule_work`). Because service
/// work *charges* the single virtual CPU, time moves forward inside the
/// loop — arrivals whose scheduled instant has meanwhile passed are
/// admitted on the next iteration, which is exactly how a backlog forms
/// when the offered rate exceeds the service rate. No analytic queueing
/// model sits anywhere in here; the knee emerges from the cost table.
fn overload_dispatch(rig: &Rc<OverloadRig>, kernel: &Kernel) {
    loop {
        // Admit every arrival already due. Admission itself is free
        // (a policy decision, not work), so `now` is stable here.
        let now = kernel.now_ns();
        loop {
            let i = rig.next_arrival.get();
            if i >= rig.schedule.len() || rig.schedule[i].0 > now {
                break;
            }
            let (sched_ns, class) = rig.schedule[i];
            rig.next_arrival.set(i + 1);
            let backlog = rig.queue.borrow().len();
            match rig.ctrl.offer(now, class, backlog) {
                AdmissionVerdict::Admit => rig.queue.borrow_mut().push_back(OverloadJob {
                    class,
                    sched_ns,
                    cookie: i as u64,
                }),
                AdmissionVerdict::Shed(n) => {
                    let mut q = rig.queue.borrow_mut();
                    for _ in 0..n {
                        if let Some(old) = q.pop_front() {
                            rig.ctrl.note_shed(old.class, 1);
                            rig.shed.set(rig.shed.get() + 1);
                        }
                    }
                    q.push_back(OverloadJob {
                        class,
                        sched_ns,
                        cookie: i as u64,
                    });
                }
                AdmissionVerdict::Reject => {}
            }
        }
        // Service one job, then loop: the charge may have made more
        // arrivals due.
        let job = rig.queue.borrow_mut().pop_front();
        match job {
            Some(job) => {
                overload_service(rig, kernel, job);
                overload_reclaim(rig, kernel);
            }
            None => {
                let i = rig.next_arrival.get();
                if i < rig.schedule.len() {
                    if let Some(t) = rig.arrival_timer.get() {
                        // Absolute re-arm: repeated now+delta arming
                        // would drift by one dispatch charge per
                        // arrival; `timer_arm_at` clamps past deadlines
                        // to "next dispatch point" instead.
                        kernel.timer_arm_at(t, rig.schedule[i].0);
                    }
                }
                return;
            }
        }
    }
}

fn overload_service(rig: &Rc<OverloadRig>, kernel: &Kernel, job: OverloadJob) {
    match job.class {
        TrafficClass::Net => {
            if workloads::open_loop_packet(kernel, &rig.net, 1500, job.cookie).is_ok() {
                rig.net_inflight
                    .borrow_mut()
                    .insert(job.cookie, job.sched_ns);
            } else {
                rig.dropped.set(rig.dropped.get() + 1);
            }
        }
        TrafficClass::Storage => {
            if workloads::open_loop_urb(
                kernel,
                &rig.storage,
                OVERLOAD_LUNS,
                &[0xA5u8; 512],
                job.cookie,
            )
            .is_ok()
            {
                rig.sto_inflight
                    .borrow_mut()
                    .insert(job.cookie, job.sched_ns);
            } else {
                rig.dropped.set(rig.dropped.get() + 1);
            }
        }
    }
}

fn overload_reclaim(rig: &Rc<OverloadRig>, kernel: &Kernel) {
    for c in workloads::open_loop_packet_reclaim(kernel, &rig.net) {
        if let Some(sched) = rig.net_inflight.borrow_mut().remove(&c) {
            let now = kernel.now_ns();
            rig.samples
                .borrow_mut()
                .push((now, now.saturating_sub(sched)));
        }
    }
    for c in workloads::open_loop_urb_reclaim(kernel, &rig.storage) {
        if let Some(sched) = rig.sto_inflight.borrow_mut().remove(&c) {
            let now = kernel.now_ns();
            rig.samples
                .borrow_mut()
                .push((now, now.saturating_sub(sched)));
        }
    }
}

fn percentiles_of(mut lat: Vec<u64>) -> LatencyPercentiles {
    if lat.is_empty() {
        return LatencyPercentiles::default();
    }
    lat.sort_unstable();
    let pick = |num: usize, den: usize| lat[(lat.len() - 1) * num / den];
    LatencyPercentiles {
        p50_ns: pick(50, 100),
        p99_ns: pick(99, 100),
        p999_ns: pick(999, 1000),
    }
}

/// One point of the latency/goodput knee: a policy driven at one
/// offered rate.
#[derive(Debug, Clone, Copy)]
pub struct OverloadKneeRow {
    /// The admission policy under test.
    pub policy: AdmissionPolicy,
    /// Total offered arrival rate (both classes, per virtual second).
    pub offered_rate_per_s: u64,
    /// Offered rate as a percentage of the calibrated saturation rate.
    pub multiplier_pct: u64,
    /// Arrivals the schedule offered.
    pub offered: u64,
    /// Arrivals the policy admitted (sheds count as admitted-then-shed).
    pub admitted: u64,
    /// Arrivals refused at the door.
    pub rejected: u64,
    /// Admitted entries dropped from the queue head by shed-oldest.
    pub shed: u64,
    /// Requests that completed end to end.
    pub completed: u64,
    /// Completions inside the horizon, per virtual second — the
    /// goodput axis of the knee curve.
    pub goodput_per_s: u64,
    /// End-to-end latency percentiles from scheduled arrival to
    /// completion, including the post-horizon drain tail.
    pub lat: LatencyPercentiles,
}

/// Calibrates the rig's saturation rate: back-to-back closed-loop
/// service of an alternating packet/URB stream, completions reclaimed
/// as they land — the highest rate the service loop can sustain. The
/// sweep's offered rates are multiples of this, so the knee sits at a
/// known abscissa regardless of cost-table changes.
pub fn overload_saturation_rate() -> u64 {
    const JOBS: u64 = 256;
    let kernel = Kernel::new();
    let net = install_open_loop_net(OVERLOAD_SHARDS, 64, 8).expect("net rig");
    let (_sc, storage) =
        install_open_loop_storage(OVERLOAD_SHARDS, 256, 32, 8).expect("storage rig");
    let start = kernel.now_ns();
    for cookie in 0..JOBS {
        if cookie % 2 == 0 {
            workloads::open_loop_packet(&kernel, &net, 1500, cookie).expect("packet");
        } else {
            workloads::open_loop_urb(&kernel, &storage, OVERLOAD_LUNS, &[0xA5u8; 512], cookie)
                .expect("urb");
        }
        workloads::open_loop_packet_reclaim(&kernel, &net);
        workloads::open_loop_urb_reclaim(&kernel, &storage);
    }
    // Flush the coalesced tails so their cost is part of the estimate.
    for i in 0..net.paths.len() {
        kernel.shard_scope(i, || {
            let _ = net.paths[i].ring_doorbell(&kernel);
        });
    }
    storage.poll(&kernel).expect("poll");
    workloads::open_loop_packet_reclaim(&kernel, &net);
    workloads::open_loop_urb_reclaim(&kernel, &storage);
    let elapsed = kernel.now_ns() - start;
    JOBS.saturating_mul(1_000_000_000) / elapsed.max(1)
}

/// Runs one open-loop overload experiment: a mixed Poisson (netperf
/// packets) + bursty (tar URBs) arrival schedule at `offered_rate_per_s`
/// total, dispatched by an absolute-deadline kernel timer, serviced
/// through real shmring data paths under `policy`. `fault_at_ns`
/// optionally injects a decaf-side storage shard failure mid-storm
/// (`recover_shard` on shard 0) — the recovery test rides this hook.
///
/// Every run asserts the full conservation ledger: zero payload bytes
/// copied, URB descriptor/sector conservation, the admission ledger
/// (`offered == admitted + rejected`), the engine ledger
/// (`admitted == completed + shed + dropped`), a closed completion-token
/// ledger on the async net facade, and no kernel rule violations.
pub fn overload_run(
    policy: AdmissionPolicy,
    offered_rate_per_s: u64,
    saturation_rate_per_s: u64,
    fault_at_ns: Option<u64>,
) -> OverloadKneeRow {
    let kernel = Kernel::new();
    let net = install_open_loop_net(OVERLOAD_SHARDS, 64, 8).expect("net rig");
    let (_sc, storage) =
        install_open_loop_storage(OVERLOAD_SHARDS, 256, 32, 8).expect("storage rig");

    let mut ctrl = AdmissionController::new(policy, OVERLOAD_QUEUE_CAP);
    if policy == AdmissionPolicy::RejectAtAdmission {
        // Per-class token buckets sized to the class's share of the
        // calibrated capacity: the door turns the overload away at the
        // rate the server could never have served anyway.
        let per_class = saturation_rate_per_s / 2;
        for class in TrafficClass::ALL {
            ctrl = ctrl.with_bucket(
                class,
                TokenBucket::new(per_class, OVERLOAD_QUEUE_CAP as u64),
            );
        }
    }
    let ctrl = Rc::new(ctrl);

    let per_class_rate = offered_rate_per_s / 2;
    let net_sched = loadgen::poisson_schedule(OVERLOAD_SEED, per_class_rate, OVERLOAD_HORIZON_NS);
    let sto_sched = loadgen::burst_schedule(
        OVERLOAD_SEED ^ 0x5702_1A6E,
        per_class_rate,
        OVERLOAD_HORIZON_NS,
        8,
    );
    let schedule = loadgen::merge_schedules(&[
        (TrafficClass::Net, net_sched),
        (TrafficClass::Storage, sto_sched),
    ]);
    let offered = schedule.len() as u64;

    let rig = Rc::new(OverloadRig {
        schedule,
        next_arrival: Cell::new(0),
        queue: RefCell::new(VecDeque::new()),
        ctrl: Rc::clone(&ctrl),
        net,
        storage: Rc::clone(&storage),
        net_inflight: RefCell::new(HashMap::new()),
        sto_inflight: RefCell::new(HashMap::new()),
        samples: RefCell::new(Vec::new()),
        arrival_timer: Cell::new(None),
        shed: Cell::new(0),
        dropped: Cell::new(0),
    });

    // Arrival timer: softirq context, so the dispatch loop (which makes
    // upcalls) hands off to a work item.
    let arrival = {
        let rig = Rc::clone(&rig);
        kernel.timer_create(
            "overload.arrival",
            Rc::new(move |k| {
                let rig = Rc::clone(&rig);
                k.schedule_work("overload.dispatch", move |k| overload_dispatch(&rig, k));
            }),
        )
    };
    rig.arrival_timer.set(Some(arrival));

    // The satellite machinery under integration load: deadline wakeups
    // on the async net facade, and a periodic poll that flushes
    // past-deadline doorbells and reclaims completions.
    rig.net.channels.arm_deadline_wakeups(&kernel);
    let poll = {
        let rig = Rc::clone(&rig);
        kernel.timer_create(
            "overload.poll",
            Rc::new(move |k| {
                let rig = Rc::clone(&rig);
                k.schedule_work("overload.poll_work", move |k| {
                    for i in 0..rig.net.paths.len() {
                        k.shard_scope(i, || {
                            let _ = rig.net.paths[i].poll(k);
                        });
                    }
                    let _ = rig.storage.poll(k);
                    rig.net.channels.harvest_all(k);
                    overload_reclaim(&rig, k);
                });
            }),
        )
    };
    kernel.timer_arm_periodic(poll, costs::DOORBELL_COALESCE_NS);

    if let Some(at) = fault_at_ns {
        let storage = Rc::clone(&storage);
        let fault = kernel.timer_create(
            "overload.fault",
            Rc::new(move |k| {
                let storage = Rc::clone(&storage);
                k.schedule_work("overload.recover", move |k| {
                    let _ = storage.recover_shard(k, 0, decaf_xpc::Domain::Decaf);
                });
            }),
        );
        kernel.timer_arm_at(fault, at);
    }

    if !rig.schedule.is_empty() {
        kernel.timer_arm_at(arrival, rig.schedule[0].0);
    }

    // Run the storm, then drain: everything admitted must complete.
    let done = |rig: &OverloadRig| {
        rig.next_arrival.get() >= rig.schedule.len()
            && rig.queue.borrow().is_empty()
            && rig.net_inflight.borrow().is_empty()
            && rig.sto_inflight.borrow().is_empty()
    };
    let mut windows = 0u32;
    while !done(&rig) {
        kernel.run_for(costs::DOORBELL_COALESCE_NS);
        windows += 1;
        assert!(
            windows < 10_000,
            "overload run failed to drain: {} arrivals pending, {} queued, {}+{} in flight",
            rig.schedule.len() - rig.next_arrival.get(),
            rig.queue.borrow().len(),
            rig.net_inflight.borrow().len(),
            rig.sto_inflight.borrow().len(),
        );
    }
    kernel.timer_del(poll);
    kernel.timer_del(arrival);
    rig.net.channels.harvest_all(&kernel);

    // The conservation ledger, at every swept rate.
    let stats = ctrl.total();
    let completed = rig.samples.borrow().len() as u64;
    assert_eq!(kernel.stats().bytes_copied, 0, "zero-copy under overload");
    assert!(rig.storage.conserved(), "URB descriptor conservation");
    assert_eq!(
        rig.net.channels.tokens_outstanding(),
        0,
        "every async doorbell token settled"
    );
    assert!(ctrl.balanced(), "admission ledger: {stats:?}");
    assert_eq!(stats.offered, offered, "every arrival offered exactly once");
    assert_eq!(
        stats.admitted,
        completed + rig.shed.get() + rig.dropped.get(),
        "admitted requests either complete, are shed, or are counted dropped"
    );
    assert!(kernel.violations().is_empty(), "{:?}", kernel.violations());

    let in_horizon = rig
        .samples
        .borrow()
        .iter()
        .filter(|&&(at, _)| at <= OVERLOAD_HORIZON_NS)
        .count() as u64;
    let lat = percentiles_of(rig.samples.borrow().iter().map(|&(_, l)| l).collect());
    OverloadKneeRow {
        policy,
        offered_rate_per_s,
        multiplier_pct: offered_rate_per_s * 100 / saturation_rate_per_s.max(1),
        offered,
        admitted: stats.admitted,
        rejected: stats.rejected,
        shed: rig.shed.get(),
        completed,
        goodput_per_s: in_horizon.saturating_mul(1_000_000_000) / OVERLOAD_HORIZON_NS,
        lat,
    }
}

/// Offered-rate multipliers for the knee sweep, in percent of the
/// calibrated saturation rate: two pre-knee points, saturation, and the
/// 1.5× overload point the acceptance bound is stated at.
pub const OVERLOAD_MULTIPLIERS_PCT: [u64; 4] = [40, 70, 100, 150];

/// The headline experiment: every admission policy swept across
/// [`OVERLOAD_MULTIPLIERS_PCT`] at the same seeded arrival schedules.
pub fn overload_sweep() -> Vec<OverloadKneeRow> {
    let sat = overload_saturation_rate();
    let mut rows = Vec::new();
    for policy in AdmissionPolicy::ALL {
        for pct in OVERLOAD_MULTIPLIERS_PCT {
            rows.push(overload_run(policy, sat * pct / 100, sat, None));
        }
    }
    rows
}

/// The knee verdict over a sweep: does unbounded queueing blow up past
/// saturation while some admission policy holds the tail bounded at
/// small goodput cost?
#[derive(Debug, Clone, Copy)]
pub struct KneeVerdict {
    /// Unbounded-queue p99 at the top rate over its pre-knee p99.
    pub unbounded_blowup: f64,
    /// Best bounded policy's p99 at the top rate over its pre-knee p99.
    pub bounded_ratio: f64,
    /// That policy's goodput at the top rate over the sweep's peak.
    pub goodput_fraction: f64,
    /// The policy that achieved the bound.
    pub bounded_policy: AdmissionPolicy,
    /// Whether the acceptance criterion holds: blowup ≥ 10×, bounded
    /// ratio ≤ 3×, goodput fraction ≥ 0.8.
    pub holds: bool,
}

/// Evaluates the acceptance criterion over [`overload_sweep`] rows.
pub fn knee_verdict(rows: &[OverloadKneeRow]) -> KneeVerdict {
    let top = *OVERLOAD_MULTIPLIERS_PCT.last().expect("non-empty");
    let base = OVERLOAD_MULTIPLIERS_PCT[0];
    let at = |policy: AdmissionPolicy, pct: u64| {
        rows.iter()
            .find(|r| r.policy == policy && r.multiplier_pct >= pct && r.multiplier_pct < pct + 20)
            .expect("sweep covers every (policy, rate) cell")
    };
    let peak_goodput = rows.iter().map(|r| r.goodput_per_s).max().unwrap_or(1) as f64;
    let ratio = |policy: AdmissionPolicy| {
        at(policy, top).lat.p99_ns as f64 / at(policy, base).lat.p99_ns.max(1) as f64
    };
    let unbounded_blowup = ratio(AdmissionPolicy::QueueUnbounded);
    let mut best = (f64::INFINITY, 0.0f64, AdmissionPolicy::RejectAtAdmission);
    for policy in [
        AdmissionPolicy::RejectAtAdmission,
        AdmissionPolicy::ShedOldest,
    ] {
        let r = ratio(policy);
        let frac = at(policy, top).goodput_per_s as f64 / peak_goodput;
        // Prefer the policy that meets the goodput floor; among those,
        // the tighter tail wins.
        let candidate_ok = frac >= 0.8;
        let best_ok = best.1 >= 0.8;
        if (candidate_ok && !best_ok) || (candidate_ok == best_ok && r < best.0) {
            best = (r, frac, policy);
        }
    }
    KneeVerdict {
        unbounded_blowup,
        bounded_ratio: best.0,
        goodput_fraction: best.1,
        bounded_policy: best.2,
        holds: unbounded_blowup >= 10.0 && best.0 <= 3.0 && best.1 >= 0.8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_real_lines() {
        let rows = table1();
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert!(
                row.measured_loc > 100,
                "{} suspiciously small",
                row.component
            );
        }
    }

    #[test]
    fn table2_has_five_drivers_with_paper_shape() {
        let rows = table2();
        assert_eq!(rows.len(), 5);
        // Four of five drivers move >60% of functions out of the kernel;
        // uhci-hcd is the outlier (paper: only 4% converted to Java).
        let by_name: std::collections::HashMap<_, _> = rows.iter().map(|r| (r.name, r)).collect();
        for name in ["8139too", "E1000", "ens1371", "psmouse"] {
            assert!(
                by_name[name].user_fraction() > 0.6,
                "{name}: {}",
                by_name[name].user_fraction()
            );
        }
        let uhci = by_name["uhci-hcd"];
        assert!(
            uhci.decaf_funcs < uhci.nucleus_funcs,
            "uhci-hcd stays mostly kernel"
        );
        // Annotations stay a small fraction of the source (paper: <2%).
        for row in &rows {
            assert!(
                (row.annotations as f64) < 0.25 * row.loc as f64,
                "{}: {} annotations on {} lines",
                row.name,
                row.annotations,
                row.loc
            );
        }
    }

    #[test]
    fn transport_ablation_layers_stack() {
        let rows = transport_ablation();
        let (seed, delta, batch) = (&rows[0], &rows[1], &rows[2]);
        // Delta marshaling alone cuts bytes, not crossings.
        assert!(delta.bytes_in < seed.bytes_in, "{delta:?} vs {seed:?}");
        assert_eq!(delta.one_way_crossings, seed.one_way_crossings);
        assert!(delta.delta_objects > 0 && delta.delta_fields_elided > 0);
        // Batching on top cuts crossings too, and total virtual time.
        assert!(batch.bytes_in < seed.bytes_in, "{batch:?} vs {seed:?}");
        assert!(batch.one_way_crossings < seed.one_way_crossings);
        assert!(batch.round_trips < seed.round_trips);
        assert!(batch.virtual_ns < seed.virtual_ns);
        assert!(batch.batched_calls > 0 && batch.flushes > 0);
    }

    #[test]
    fn datapath_ablation_shmring_wins_on_bytes_and_time() {
        let rows = datapath_ablation();
        let (copy, batched, shm) = (&rows[0], &rows[1], &rows[2]);
        // The audit invariant: every configuration copies the same
        // payload bytes — the ablation varies marshaling, not copying.
        assert_eq!(copy.bytes_copied, shm.bytes_copied, "{copy:?} vs {shm:?}");
        assert_eq!(batched.bytes_copied, shm.bytes_copied);
        // Batching removes crossings but not bytes.
        assert!(batched.round_trips < copy.round_trips);
        assert!(batched.virtual_ns < copy.virtual_ns);
        // Shmring removes the bytes: descriptors cross, payloads do not.
        assert!(
            shm.marshaled_bytes * 20 < batched.marshaled_bytes,
            "shmring marshaled {} B vs batched {} B",
            shm.marshaled_bytes,
            batched.marshaled_bytes
        );
        assert!(
            shm.virtual_ns < batched.virtual_ns,
            "shmring {} ns vs batched {} ns",
            shm.virtual_ns,
            batched.virtual_ns
        );
        assert!(shm.virtual_mbps() > batched.virtual_mbps());
        // Doorbell amortization: many descriptors per crossing.
        assert!(
            shm.descs_per_doorbell > 8.0,
            "descs/doorbell {}",
            shm.descs_per_doorbell
        );
        assert!(shm.ring_occupancy_hwm >= 8);
    }

    #[test]
    fn storage_ablation_shmring_drops_copies_to_descriptor_traffic() {
        let rows = storage_ablation();
        let (copy, batched, shm) = (&rows[0], &rows[1], &rows[2]);
        // Identical offered workload across hostings.
        assert_eq!(copy.urbs, shm.urbs);
        assert_eq!(copy.payload_bytes, shm.payload_bytes);
        // The by-value hostings copy every bulk payload (both
        // directions); batching changes crossings, not copies.
        assert!(copy.bytes_copied > copy.payload_bytes, "{copy:?}");
        assert_eq!(batched.bytes_copied, copy.bytes_copied);
        // Batching the OUT bursts amortizes round trips.
        assert!(
            batched.round_trips < copy.round_trips,
            "batched {} vs copy {}",
            batched.round_trips,
            copy.round_trips
        );
        // The acceptance claim: under the shmring build, bulk payloads
        // are never CPU-copied — bytes_copied is zero, descriptor
        // traffic only — and payloads stay out of the marshaler.
        assert_eq!(shm.bytes_copied, 0, "{shm:?}");
        assert!(
            shm.marshaled_bytes * 10 < batched.marshaled_bytes,
            "shmring marshaled {} B vs batched {} B",
            shm.marshaled_bytes,
            batched.marshaled_bytes
        );
        assert!(shm.doorbells > 0 && shm.descs_per_doorbell > 2.0);
        // Cheaper on virtual CPU time too, so the ordering tells the
        // same story as the NIC ablation.
        assert!(
            shm.virtual_ns < batched.virtual_ns && batched.virtual_ns < copy.virtual_ns,
            "shm {} / batched {} / copy {} ns",
            shm.virtual_ns,
            batched.virtual_ns,
            copy.virtual_ns
        );
        assert!(shm.virtual_mbps() > copy.virtual_mbps());
    }

    #[test]
    fn frag_ablation_buddy_sg_survives_pressure_first_fit_refuses() {
        // A reduced sweep, same acceptance property the full
        // `frag_ablation` gates: at a pressure where the free map is
        // scattered singles, first-fit refuses every multi-sector write
        // while holding enough free bytes (all its refusals classified
        // as fragmentation, none as exhaustion), and buddy+SG completes
        // every one of the same attempts — with zero copies on both.
        let ff = frag_run(decaf_shmring::AllocMode::FirstFit, 50);
        let sg = frag_run(decaf_shmring::AllocMode::BuddySg, 50);
        assert_eq!(ff.attempts, sg.attempts, "identical offered workload");
        assert!(ff.failures > 0, "{ff:?}");
        assert!(ff.frag_refusals > 0 && ff.exhausted == 0, "{ff:?}");
        assert_eq!(sg.failures, 0, "{sg:?}");
        assert_eq!(sg.frag_refusals, 0, "{sg:?}");
        assert_eq!(sg.completed, sg.attempts);
        assert_eq!(ff.bytes_copied, 0);
        assert_eq!(sg.bytes_copied, 0);
        assert!(
            sg.virtual_mbps() > 0.0 && ff.virtual_mbps() == 0.0,
            "throughput under pressure: sg {:.1} vs ff {:.1} Mb/s",
            sg.virtual_mbps(),
            ff.virtual_mbps()
        );
    }

    #[test]
    fn shard_ablation_parallelism_wins_without_copy_regression() {
        // Smaller run than the bench prints, same acceptance property:
        // shards=4 beats shards=1 on virtual-time netperf throughput,
        // with zero bytes_copied regression.
        let rows: Vec<ShardAblationRow> = [1usize, 4]
            .into_iter()
            .map(|n| shard_run(n, 1, 2_000))
            .collect();
        let (one, four) = (&rows[0], &rows[1]);
        assert_eq!(one.packets, four.packets, "identical offered stream");
        assert!(
            four.virtual_mbps() > one.virtual_mbps(),
            "shards=4 ({:.1} Mb/s) must beat shards=1 ({:.1} Mb/s)",
            four.virtual_mbps(),
            one.virtual_mbps()
        );
        assert!(
            four.effective_ns < one.effective_ns,
            "parallel wall estimate must shrink: {} vs {}",
            four.effective_ns,
            one.effective_ns
        );
        assert_eq!(
            four.bytes_copied, one.bytes_copied,
            "sharding must not change copy accounting"
        );
        // With one shard the sharded portion IS the critical path.
        assert_eq!(one.shard_max_ns, one.shard_sum_ns);
        // With four shards the critical path is strictly below the sum.
        assert!(four.shard_max_ns < four.shard_sum_ns);
    }

    #[test]
    fn storage_shard_ablation_parallelism_wins_and_stays_zero_copy() {
        // Smaller run than the bench prints, same acceptance properties:
        // shards=4 beats shards=1 on virtual-time storage throughput,
        // and bytes_copied is exactly zero at both widths (the
        // assertion inside storage_shard_run enforces it for every row).
        let rows: Vec<StorageShardAblationRow> = [1usize, 4]
            .into_iter()
            .map(|n| storage_shard_run(n, 1, 8))
            .collect();
        let (one, four) = (&rows[0], &rows[1]);
        assert_eq!(one.urbs, four.urbs, "identical offered workload");
        assert_eq!(one.bytes_copied, 0);
        assert_eq!(four.bytes_copied, 0);
        assert!(
            four.virtual_mbps() > one.virtual_mbps(),
            "shards=4 ({:.1} Mb/s) must beat shards=1 ({:.1} Mb/s)",
            four.virtual_mbps(),
            one.virtual_mbps()
        );
        assert!(
            four.effective_ns < one.effective_ns,
            "parallel wall estimate must shrink: {} vs {}",
            four.effective_ns,
            one.effective_ns
        );
        // With one shard the sharded portion IS the critical path; with
        // four the critical path sits strictly below the sum.
        assert_eq!(one.shard_max_ns, one.shard_sum_ns);
        assert!(four.shard_max_ns < four.shard_sum_ns);
        assert!(four.shards_used >= 2, "{} shards used", four.shards_used);
    }

    #[test]
    fn async_sweep_overlaps_at_every_rate() {
        // The tentpole acceptance: at every offered rate the async
        // transport's busy time is at or below batched, with a real
        // overlap credit and a closed token ledger (the asserts inside
        // async_transport_sweep enforce all three per row).
        let rows = async_transport_sweep();
        assert_eq!(rows.len(), ASYNC_SWEEP_RATES.len());
        for row in &rows {
            assert!(row.tokens > 0, "{row:?}");
            assert!(row.saving() >= 0.0, "{row:?}");
        }
        // At the fastest pacing the deadline never fires first, so the
        // watermark launches full batches and overlap still shows up.
        assert!(rows.last().unwrap().overlap_ns > 0);
    }

    #[test]
    fn rx_mode_sweep_crossover_is_monotone() {
        // The interrupt-vs-poll acceptance: interrupt wins the low end,
        // poll wins the high end, the winner flips exactly once, and
        // neither mode copies a payload byte (asserted per run inside
        // rx_mode_run / rx_mode_sweep).
        let rows = rx_mode_sweep();
        assert_eq!(rows.len(), RX_SWEEP_RATES.len());
        assert_eq!(rows.first().unwrap().winner(), "interrupt");
        assert_eq!(rows.last().unwrap().winner(), "poll");
        let crossover = rx_crossover_pps(&rows).expect("crossover exists");
        assert!(
            crossover > RX_SWEEP_RATES[0] && crossover <= RX_SWEEP_RATES[5],
            "crossover at {crossover} pps"
        );
    }

    #[test]
    fn rx_poll_handles_non_divisor_rates() {
        // Regression: the poll branch reconstructed arrival counts as
        // tick_ns / gap_ns and asserted the reconstruction, which only
        // held when the offered rate divided the 50 µs probe grid.
        // 3 000 and 7 000 pps do not (gap 333 333.3 / 142 857.1 ns);
        // every frame must still be posted at the next probe after its
        // arrival and delivered with nothing dropped.
        use decaf_drivers::support::RxMode;
        for pps in [3_000u32, 7_000] {
            assert_ne!(
                1_000_000_000 % pps as u64,
                0,
                "{pps} pps must exercise the non-divisor path"
            );
            let (_, delivered, doorbells, _) = rx_mode_run(RxMode::Poll, pps);
            assert_eq!(delivered, pps as u64, "poll dropped frames at {pps} pps");
            assert_eq!(doorbells, 0, "poll mode rang a doorbell at {pps} pps");
        }
    }

    #[test]
    fn rx_poll_handles_off_grid_bursty_schedule() {
        // Off-grid arrivals: a seeded jittered schedule where nothing
        // lands on a probe-tick boundary and clumps exceed the per-tick
        // budget, forcing carry-over to later ticks and extra ticks past
        // the nominal horizon. Both modes must deliver every frame.
        use decaf_drivers::support::{RxMode, RX_POLL_BUDGET, RX_POLL_TICK_NS};
        let mut rng = rand_like::SplitMix::new(0xDECAF0008);
        let mut at = 0u64;
        let mut schedule = Vec::new();
        while schedule.len() < 2_000 {
            // A clump of up to ~2× the poll budget lands within a few
            // microseconds, then a gap of up to ~2 ms.
            let clump = 1 + (rng.next_u64() % (2 * RX_POLL_BUDGET as u64)) as usize;
            for _ in 0..clump {
                at += 1 + rng.next_u64() % 3_000;
                schedule.push(at);
            }
            at += rng.next_u64() % 2_000_000;
        }
        schedule.truncate(2_000);
        assert!(
            schedule.iter().any(|t| t % RX_POLL_TICK_NS != 0),
            "schedule must contain off-grid arrivals"
        );
        for mode in [RxMode::Interrupt, RxMode::Poll] {
            let (_, delivered, _, lat) = rx_mode_run_schedule(mode, &schedule);
            assert_eq!(
                delivered,
                schedule.len() as u64,
                "{mode:?} dropped frames on the off-grid schedule"
            );
            assert!(lat.p99_ns > 0, "{mode:?} recorded no latency samples");
        }
    }

    #[test]
    fn overload_knee_acceptance() {
        // The headline: unbounded queueing past saturation blows the
        // p99 tail up ≥10×; an admission policy holds it within 3× of
        // its own pre-knee tail at ≥80% of peak goodput.
        let rows = overload_sweep();
        let v = knee_verdict(&rows);
        assert!(
            v.holds,
            "knee acceptance failed: blowup {:.1}× bounded {:.1}× goodput {:.2}\n{rows:#?}",
            v.unbounded_blowup, v.bounded_ratio, v.goodput_fraction
        );
        for r in &rows {
            // Per-row sanity on top of overload_run's internal ledger
            // asserts: nothing admitted may be silently lost.
            assert_eq!(
                r.offered,
                r.admitted + r.rejected,
                "{} at {}%: offered splits into admitted + rejected",
                r.policy.name(),
                r.multiplier_pct
            );
            assert!(r.completed > 0, "every cell completed some requests");
        }
        // Unbounded admits everything; shed-oldest never rejects at the
        // door; reject-at-admission never sheds from the queue.
        assert!(rows
            .iter()
            .filter(|r| r.policy == AdmissionPolicy::QueueUnbounded)
            .all(|r| r.rejected == 0 && r.shed == 0));
        assert!(rows
            .iter()
            .filter(|r| r.policy == AdmissionPolicy::ShedOldest)
            .all(|r| r.rejected == 0));
        assert!(rows
            .iter()
            .filter(|r| r.policy == AdmissionPolicy::RejectAtAdmission)
            .all(|r| r.shed == 0));
    }

    #[test]
    fn overload_runs_are_deterministic() {
        // The whole rig — schedules, timer dispatch, service charges —
        // is seeded virtual time: two runs of the same cell agree on
        // every field of the row.
        let sat = overload_saturation_rate();
        let a = overload_run(AdmissionPolicy::ShedOldest, sat * 3 / 2, sat, None);
        let b = overload_run(AdmissionPolicy::ShedOldest, sat * 3 / 2, sat, None);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.goodput_per_s, b.goodput_per_s);
        assert_eq!(a.lat.p50_ns, b.lat.p50_ns);
        assert_eq!(a.lat.p99_ns, b.lat.p99_ns);
        assert_eq!(a.lat.p999_ns, b.lat.p999_ns);
    }

    #[test]
    fn table4_shape_matches_paper() {
        let study = table4();
        assert_eq!(study.total.patches_applied, 320);
        assert_eq!(study.total.interface_changes, 23);
        assert!(
            study.total.decaf_lines > 8 * study.total.nucleus_lines,
            "decaf {} vs nucleus {}",
            study.total.decaf_lines,
            study.total.nucleus_lines
        );
    }
}
