//! Decaf Drivers: the complete reproduction, behind one facade.
//!
//! This crate ties the substrates together and exposes the experiment
//! runners that regenerate every table and figure of *Decaf: Moving
//! Device Drivers to a Modern Language* (Renzelmann & Swift, USENIX ATC
//! 2009):
//!
//! * [`experiments::table1`] — lines of code of the runtime components;
//! * [`experiments::table2`] — the five drivers sliced: annotations and
//!   function/LoC counts per partition;
//! * [`experiments::table3`] — workload performance, CPU utilization,
//!   initialization latency and user/kernel crossings, native vs decaf;
//! * [`experiments::table4`] — the E1000 evolution study (patch stream
//!   classification);
//! * [`figures`] — the Figure 1 architecture rendering, the Figure 2
//!   Jeannie stub, the Figure 3 generated XDR, the Figure 4 staged-cleanup
//!   comparison, and the Figure 5 error-handling audit.
//!
//! # Examples
//!
//! ```
//! // Slice a driver and inspect where its functions land.
//! use decaf_core::slicer::{slice, SliceConfig};
//! let plan = slice(
//!     decaf_core::drivers::DriverKind::E1000.minic_source(),
//!     &SliceConfig::default(),
//! )
//! .unwrap();
//! assert!(plan.user_fraction() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod figures;
pub mod loadgen;
pub mod sched;

/// Re-export of the simulated kernel substrate.
pub use decaf_simkernel as simkernel;

/// Re-export of the device models.
pub use decaf_simdev as simdev;

/// Re-export of the XDR marshaling layer.
pub use decaf_xdr as xdr;

/// Re-export of the XPC runtime.
pub use decaf_xpc as xpc;

/// Re-export of the shared-memory ring subsystem.
pub use decaf_shmring as shmring;

/// Re-export of DriverSlicer.
pub use decaf_slicer as slicer;

/// Re-export of the five drivers and workloads.
pub use decaf_drivers as drivers;
