//! Open-loop load generation in virtual time.
//!
//! A closed-loop workload (netperf taking turns with the driver, `tar`
//! waiting for each sector) slows down when the server falls behind —
//! it can saturate a driver but never *overload* it. The experiments
//! that show where latency knees over need an **open-loop** arrival
//! process: request times are decided up front, independent of how the
//! server is doing, exactly like packets arriving on a wire.
//!
//! This module generates those arrival times. Everything is integer
//! virtual-time nanoseconds and everything is seeded:
//!
//! * **Determinism rule** — a generator called twice with the same seed
//!   and parameters returns *byte-identical* `Vec<u64>` schedules.
//!   Nothing here reads wall clocks, thread ids, or global state; the
//!   only entropy is [`SplitMix64`], and its stream is a pure function
//!   of the seed. The proptests in `tests/overload.rs` pin this.
//! * Arrival schedules are ascending and bounded by the horizon, so a
//!   driver can walk them with a single re-armed kernel timer
//!   ([`decaf_simkernel::Kernel::timer_arm_at`]).
//!
//! Three shapes cover the paper's workloads: [`uniform_schedule`]
//! (paced, netperf's steady stream), [`poisson_schedule`] (memoryless
//! arrivals, the classic open-loop null model), and [`burst_schedule`]
//! (clumped arrivals, `tar` handing the driver a readahead window of
//! sectors at once). [`merge_schedules`] interleaves several classes
//! into one time-ordered dispatch list.

/// SplitMix64: a tiny deterministic, seedable generator. Public here —
/// unlike the private Table 4 helper — because open-loop schedules are
/// part of the experiment *interface*: a test that wants to replay the
/// exact arrival stream only needs the seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator. Equal seeds produce equal streams, always.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Uniform float in the half-open unit interval `(0, 1]` — open at
    /// zero so `ln` is always finite.
    pub fn unit_open(&mut self) -> f64 {
        // 53 mantissa bits; +1 shifts the lattice off exact zero.
        ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }
}

/// `rate_per_s` arrivals paced evenly across `horizon_ns`: arrival `i`
/// (1-based) lands at `i * horizon / n` — integer division per arrival,
/// so there is no cumulative drift and non-divisor rates are exact.
pub fn uniform_schedule(rate_per_s: u64, horizon_ns: u64) -> Vec<u64> {
    let n = count_for(rate_per_s, horizon_ns);
    (1..=n).map(|i| i * horizon_ns / n.max(1)).collect()
}

/// Poisson arrivals at `rate_per_s` over `horizon_ns`: exponential
/// inter-arrival gaps drawn from `seed`'s stream (inverse-CDF,
/// `-ln(u)/rate`), truncated at the horizon. The number of arrivals is
/// itself random (that is the point — clumps and lulls are what
/// separate an open-loop queue from a paced one), but it concentrates
/// around `rate × horizon`; the rate-tolerance proptest pins the
/// empirical rate within ±10 % at experiment scales.
pub fn poisson_schedule(seed: u64, rate_per_s: u64, horizon_ns: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::new();
    if rate_per_s == 0 {
        return out;
    }
    let mean_gap_ns = 1e9 / rate_per_s as f64;
    let mut t = 0u64;
    loop {
        let gap = (-rng.unit_open().ln() * mean_gap_ns).round() as u64;
        t = t.saturating_add(gap.max(1));
        if t > horizon_ns {
            return out;
        }
        out.push(t);
    }
}

/// Bursty arrivals: clumps of `burst` requests landing almost together
/// (members 100 ns apart — a readahead window of sectors hitting the
/// queue at once), with burst *epochs* Poisson at `rate_per_s / burst`
/// so the long-run rate still averages `rate_per_s`. The worst case for
/// an admission queue: instantaneous depth jumps by `burst` at a time.
pub fn burst_schedule(seed: u64, rate_per_s: u64, horizon_ns: u64, burst: u64) -> Vec<u64> {
    let burst = burst.max(1);
    let epochs = poisson_schedule(seed, rate_per_s / burst.max(1), horizon_ns);
    let mut out = Vec::new();
    for e in epochs {
        for i in 0..burst {
            let t = e.saturating_add(i * 100);
            if t <= horizon_ns {
                out.push(t);
            }
        }
    }
    // Two epochs can land closer than the clump width; keep the
    // schedule ascending so a single re-armed timer can walk it.
    out.sort_unstable();
    out
}

/// Merges per-class schedules into one ascending dispatch list of
/// `(arrival_ns, class)` pairs. Ties break by class order (stable), so
/// the merged order is as deterministic as the inputs.
pub fn merge_schedules<C: Copy>(classes: &[(C, Vec<u64>)]) -> Vec<(u64, C)> {
    let mut out: Vec<(u64, C)> = Vec::new();
    for (class, sched) in classes {
        out.extend(sched.iter().map(|&t| (t, *class)));
    }
    out.sort_by_key(|&(t, _)| t);
    out
}

/// Arrivals per virtual second a schedule actually realized — the
/// empirical rate the tolerance tests compare against the nominal one.
pub fn empirical_rate_per_s(schedule: &[u64], horizon_ns: u64) -> u64 {
    if horizon_ns == 0 {
        return 0;
    }
    (schedule.len() as u64).saturating_mul(1_000_000_000) / horizon_ns
}

fn count_for(rate_per_s: u64, horizon_ns: u64) -> u64 {
    ((rate_per_s as u128 * horizon_ns as u128) / 1_000_000_000) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_exact_for_non_divisor_rates() {
        let s = uniform_schedule(3_000, 1_000_000_000);
        assert_eq!(s.len(), 3_000);
        assert_eq!(*s.last().unwrap(), 1_000_000_000);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        // Half-horizon: half the arrivals, same pacing.
        assert_eq!(uniform_schedule(3_000, 500_000_000).len(), 1_500);
    }

    #[test]
    fn poisson_same_seed_is_byte_identical() {
        let a = poisson_schedule(42, 10_000, 10_000_000);
        let b = poisson_schedule(42, 10_000, 10_000_000);
        assert_eq!(a, b, "the determinism rule");
        let c = poisson_schedule(43, 10_000, 10_000_000);
        assert_ne!(a, c, "different seeds diverge");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "ascending");
        assert!(a.iter().all(|&t| t <= 10_000_000), "bounded");
    }

    #[test]
    fn burst_clumps_and_keeps_the_average_rate() {
        let s = burst_schedule(7, 80_000, 100_000_000, 8);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        // 8k arrivals nominal over 100 ms; Poisson epochs wobble, so
        // allow a wide band — the tight band lives in the proptest.
        let rate = empirical_rate_per_s(&s, 100_000_000);
        assert!(
            (40_000..=120_000).contains(&rate),
            "burst rate {rate}/s far from 80k/s"
        );
        // Clumping: at least one pair of arrivals 100 ns apart.
        assert!(s.windows(2).any(|w| w[1] - w[0] == 100));
    }

    #[test]
    fn merge_orders_and_labels() {
        let merged = merge_schedules(&[('a', vec![5, 30]), ('b', vec![10, 30])]);
        let times: Vec<u64> = merged.iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![5, 10, 30, 30]);
        assert_eq!(merged[0].1, 'a');
        assert_eq!(
            merged[2].1, 'a',
            "ties keep class order — deterministic dispatch"
        );
    }
}
