//! Deterministic schedule exploration support.
//!
//! The sharded layers' invariants (home-channel pinning, descriptor and
//! URB conservation, completion-steering affinity, sector-run alias
//! freedom) must hold under *every* ordering of per-shard work, not
//! just the one a happy-path test happens to produce. The repo's
//! schedule-exploration harnesses — `tests/shard_sched.rs` for the NIC
//! side, `tests/storage_sched.rs` for storage — replay invariant checks
//! over exhaustively enumerated interleavings; this module is the
//! enumerator they share.
//!
//! Enumeration is lexicographic over multiset permutations: no
//! randomness, no seeds, every run produces the identical schedule list
//! — which is what makes a failing schedule a *reproducer*, not a
//! flake. ("Verifying Device Drivers with Pancake" makes the same
//! argument for pairing driver rewrites with systematic exploration:
//! the rewrite is only as trustworthy as the orderings it was checked
//! under.)
//!
//! Two layers sit on top of the raw enumerator:
//!
//! * **Spread selection** ([`interleavings_spread`]): capped enumeration
//!   with [`interleavings`] keeps only the lexicographic prefix, which
//!   for shard-indexed schedules means shard-0-heavy orderings — a
//!   `cap = 140` slice of the 2520-schedule 4-shard space never sees a
//!   shard-3-first ordering. The spread selector walks the *full*
//!   multiset-permutation index space with a coprime stride
//!   (seedless, reproducible) and unranks each selected index, so a
//!   capped sweep still samples every region of the space.
//! * **Fault plans** ([`fault_plans`], [`fault_sweep`]): every selected
//!   schedule is crossed with every `(step, shard)` single-fault
//!   injection point, plus a deterministically capped set of
//!   double-fault plans, and replayed through a caller-supplied closure
//!   that injects `recover_shard` at the planned points and asserts the
//!   full differential oracle. Faults become part of the explored
//!   ordering space instead of hand-written afterthoughts.

/// Enumerates interleavings of `counts[s]` ops per shard `s` in
/// lexicographic order, stopping at `cap` schedules. With a large
/// enough cap this is the complete multiset-permutation set
/// ([`schedule_count`] tells how many that is). For a cap smaller than
/// the space this keeps only the lexicographic (shard-0-heavy) prefix —
/// use [`interleavings_spread`] when a capped sweep should sample the
/// whole space instead.
///
/// Each schedule is a vector of shard indices; schedule position `t`
/// says whose op runs at step `t`.
pub fn interleavings(counts: &[usize], cap: usize) -> Vec<Vec<usize>> {
    fn step(
        remaining: &mut Vec<usize>,
        prefix: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        if remaining.iter().all(|&r| r == 0) {
            out.push(prefix.clone());
            return;
        }
        for shard in 0..remaining.len() {
            if remaining[shard] > 0 {
                remaining[shard] -= 1;
                prefix.push(shard);
                step(remaining, prefix, out, cap);
                prefix.pop();
                remaining[shard] += 1;
            }
        }
    }
    let mut out = Vec::new();
    step(&mut counts.to_vec(), &mut Vec::new(), &mut out, cap);
    out
}

/// The full multiset-permutation count for `counts` — the multinomial
/// `(Σ counts)! / Π counts[s]!` — or `None` if the count (or an
/// intermediate product on the way to it) overflows `u128`. The
/// overflow boundary sits between 34 and 35 distinct single-op shards:
/// `34! < u128::MAX < 35!`.
pub fn schedule_count_checked(counts: &[usize]) -> Option<u128> {
    let mut n = 1u128;
    let mut k = 0usize;
    for &c in counts {
        for i in 1..=c {
            k += 1;
            n = n.checked_mul(k as u128)? / i as u128;
        }
    }
    Some(n)
}

/// The full multiset-permutation count for `counts`: the multinomial
/// `(Σ counts)! / Π counts[s]!` — what [`interleavings`] returns when
/// `cap` is at least this large. Saturates to `u128::MAX` on overflow
/// (with a debug assertion); callers that must distinguish use
/// [`schedule_count_checked`].
pub fn schedule_count(counts: &[usize]) -> u128 {
    let n = schedule_count_checked(counts);
    debug_assert!(n.is_some(), "schedule_count overflows u128 for {counts:?}");
    n.unwrap_or(u128::MAX)
}

/// Unranks lexicographic multiset-permutation `index` (`0 ≤ index <
/// schedule_count(counts)`) back into its schedule: position by
/// position, skip over the completion counts of smaller-shard choices
/// until the index lands inside one shard's subtree. The inverse of the
/// order [`interleavings`] enumerates in:
/// `unrank(c, i) == interleavings(c, usize::MAX)[i]`.
///
/// Panics if `index` is outside the space or the space overflows `u128`.
pub fn unrank(counts: &[usize], index: u128) -> Vec<usize> {
    let total = schedule_count_checked(counts).expect("unrank: schedule space overflows u128");
    assert!(index < total, "unrank: index {index} outside space {total}");
    let mut remaining = counts.to_vec();
    let len: usize = counts.iter().sum();
    let mut idx = index;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        for shard in 0..remaining.len() {
            if remaining[shard] == 0 {
                continue;
            }
            remaining[shard] -= 1;
            let below =
                schedule_count_checked(&remaining).expect("unrank: subtree count overflows u128");
            if idx < below {
                out.push(shard);
                break;
            }
            idx -= below;
            remaining[shard] += 1;
        }
    }
    out
}

/// Greatest common divisor (Euclid), for coprime-stride selection.
fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// A deterministic stride coprime to `total`, near the golden-ratio
/// fraction of the space — the classic low-discrepancy choice, so
/// `(i · stride) mod total` visits indices spread across the whole
/// space rather than clustered in one region. Seedless: the same
/// `total` always yields the same stride.
fn coprime_stride(total: u128) -> u128 {
    if total <= 2 {
        return 1;
    }
    // 1/φ ≈ 0.618; the multiply cannot overflow for the schedule spaces
    // this selects over (total < u128::MAX / 1000 whenever a cap bites).
    let mut s = (total / 1000) * 618 + (total % 1000) * 618 / 1000;
    s = s.clamp(1, total - 1);
    while gcd(s, total) != 1 {
        s -= 1;
        if s == 0 {
            return 1;
        }
    }
    s
}

/// Selects `cap` indices spread across `0..total` by coprime-stride
/// walking: index `i` of the selection is `(i · stride) mod total` with
/// a golden-ratio stride coprime to `total`. All selected indices are
/// distinct (the stride generates the full cyclic group), the selection
/// is seedless and reproducible, and it covers early, middle and late
/// regions of the space instead of a prefix. Returns `0..total` in
/// order when the cap does not bite.
pub fn strided_indices(total: u128, cap: usize) -> Vec<u128> {
    if total <= cap as u128 {
        return (0..total).collect();
    }
    let stride = coprime_stride(total);
    (0..cap as u128).map(|i| (i * stride) % total).collect()
}

/// Like [`interleavings`], but a cap smaller than the space selects
/// schedules *spread across the whole multiset-permutation index space*
/// (coprime-stride selection + [`unrank`]) instead of the
/// lexicographic shard-0-heavy prefix. Deterministic and seedless; with
/// a non-binding cap this is the complete set in lexicographic order,
/// identical to [`interleavings`].
///
/// In the astronomically-large-space corner where even the *count*
/// overflows `u128`, falls back to the lexicographic prefix (the space
/// cannot be index-addressed).
pub fn interleavings_spread(counts: &[usize], cap: usize) -> Vec<Vec<usize>> {
    match schedule_count_checked(counts) {
        Some(total) if total > cap as u128 => strided_indices(total, cap)
            .into_iter()
            .map(|i| unrank(counts, i))
            .collect(),
        _ => interleavings(counts, cap),
    }
}

// --------------------------------------------------------- fault plans

/// One fault injection: after the op at schedule position `step`
/// executes (and its virtual-time advance settles), shard `shard`'s
/// recoverable end dies and is recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaultPoint {
    /// Schedule position after which the fault fires.
    pub step: usize,
    /// The shard whose end dies — not necessarily the shard whose op
    /// ran at `step`; faulting an idle shard is part of the space.
    pub shard: usize,
}

/// A set of fault injections to apply while replaying one schedule:
/// empty (the healthy baseline), a single injection, or a double
/// (two injections — same or different steps, same or different
/// shards; two at one point model a crash during recovery).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Injections in firing order (sorted by step).
    pub injections: Vec<FaultPoint>,
}

impl FaultPlan {
    /// The no-fault baseline plan.
    pub fn healthy() -> Self {
        FaultPlan::default()
    }

    /// A single-injection plan.
    pub fn single(step: usize, shard: usize) -> Self {
        FaultPlan {
            injections: vec![FaultPoint { step, shard }],
        }
    }

    /// A two-injection plan; injections are ordered by step so replay
    /// drivers can fire them in schedule order.
    pub fn double(a: FaultPoint, b: FaultPoint) -> Self {
        let mut injections = vec![a, b];
        injections.sort();
        FaultPlan { injections }
    }

    /// True when this is the fault-free baseline.
    pub fn is_healthy(&self) -> bool {
        self.injections.is_empty()
    }

    /// Shards to fault after step `step`, in plan order.
    pub fn shards_at(&self, step: usize) -> impl Iterator<Item = usize> + '_ {
        self.injections
            .iter()
            .filter(move |p| p.step == step)
            .map(|p| p.shard)
    }
}

/// Enumerates every fault plan for a `steps`-long schedule over
/// `shards` shards:
///
/// * **every** single-injection plan — `steps × shards` of them, one
///   per (step, shard) pair, covering faults on busy *and* idle shards
///   at every position;
/// * up to `double_cap` double-injection plans, selected by coprime
///   stride ([`strided_indices`]) over the full unordered-pair space of
///   single points (diagonal included: a repeated point models a crash
///   during recovery). Deterministic and seedless.
pub fn fault_plans(steps: usize, shards: usize, double_cap: usize) -> Vec<FaultPlan> {
    let point = |i: usize| FaultPoint {
        step: i / shards,
        shard: i % shards,
    };
    let n = steps * shards;
    let mut plans: Vec<FaultPlan> = (0..n)
        .map(|i| FaultPlan::single(point(i).step, point(i).shard))
        .collect();
    // Unordered pairs (i ≤ j) of single points, linearized row-major:
    // row i holds pairs (i, i..n).
    let pair_total = (n * (n + 1) / 2) as u128;
    for idx in strided_indices(pair_total, double_cap) {
        let mut idx = idx as usize;
        let mut i = 0;
        while idx >= n - i {
            idx -= n - i;
            i += 1;
        }
        let j = i + idx;
        plans.push(FaultPlan::double(point(i), point(j)));
    }
    plans
}

// -------------------------------------------------------- sweep driver

/// One (shard count, ops per shard, schedule cap) sweep configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Number of shards the replayed system is built with.
    pub shards: usize,
    /// Ops each shard's stream contributes to the schedule.
    pub ops: usize,
    /// Most schedules to select from this configuration's space
    /// (spread across the space — see [`interleavings_spread`]).
    pub cap: usize,
}

/// The sweep both sched harnesses replay: 20 + 90 + 140-of-2520 = 250
/// schedules across 2–4 shards. Shared so the NIC and storage suites
/// explore the identical ordering space.
pub fn default_sweep() -> [SweepConfig; 3] {
    [
        SweepConfig {
            shards: 2,
            ops: 3,
            cap: 1_000,
        },
        SweepConfig {
            shards: 3,
            ops: 2,
            cap: 1_000,
        },
        SweepConfig {
            shards: 4,
            ops: 2,
            cap: 140,
        },
    ]
}

/// Replays every selected schedule of every configuration through
/// `replay(shards, schedule)` and returns how many schedules ran — the
/// shared healthy-sweep driver both sched harnesses use in place of
/// their own enumeration loops.
pub fn schedule_sweep<F>(configs: &[SweepConfig], mut replay: F) -> usize
where
    F: FnMut(usize, &[usize]),
{
    let mut total = 0;
    for cfg in configs {
        for schedule in interleavings_spread(&vec![cfg.ops; cfg.shards], cfg.cap) {
            replay(cfg.shards, &schedule);
            total += 1;
        }
    }
    total
}

/// Coverage counters a [`fault_sweep`] reports, for the CI log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSweepStats {
    /// Schedules selected across all configurations.
    pub schedules: usize,
    /// Distinct single-fault (step, shard) points exercised.
    pub single_points: usize,
    /// Double-fault plans exercised.
    pub double_plans: usize,
    /// Total replays (healthy baselines + every faulted plan).
    pub replays: usize,
}

/// The shared fault-exploration driver: for every selected schedule of
/// every configuration, replays the healthy baseline and then every
/// plan [`fault_plans`] enumerates (every single (step, shard)
/// injection point plus `double_cap` double-fault plans per schedule)
/// through `replay(shards, schedule, plan)`. The replay closure builds
/// a fresh system, runs the schedule injecting `recover_shard` at the
/// plan's points, and asserts its oracle at every step.
pub fn fault_sweep<F>(configs: &[SweepConfig], double_cap: usize, mut replay: F) -> FaultSweepStats
where
    F: FnMut(usize, &[usize], &FaultPlan),
{
    let mut stats = FaultSweepStats::default();
    for cfg in configs {
        for schedule in interleavings_spread(&vec![cfg.ops; cfg.shards], cfg.cap) {
            stats.schedules += 1;
            replay(cfg.shards, &schedule, &FaultPlan::healthy());
            stats.replays += 1;
            for plan in fault_plans(schedule.len(), cfg.shards, double_cap) {
                match plan.injections.len() {
                    1 => stats.single_points += 1,
                    2 => stats.double_plans += 1,
                    _ => {}
                }
                replay(cfg.shards, &schedule, &plan);
                stats.replays += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_exhaustive_and_deterministic() {
        assert_eq!(interleavings(&[1, 1], 100), vec![vec![0, 1], vec![1, 0]]);
        // C(4,2) = 6 interleavings of two shards with two ops each.
        assert_eq!(interleavings(&[2, 2], 100).len(), 6);
        // Multinomial 6!/(2!2!2!) = 90 for three shards with two ops.
        assert_eq!(interleavings(&[2, 2, 2], 1_000).len(), 90);
        // Deterministic: two enumerations are identical.
        assert_eq!(interleavings(&[2, 2, 2], 50), interleavings(&[2, 2, 2], 50));
        // The cap truncates without reordering.
        let full = interleavings(&[2, 2], 100);
        assert_eq!(interleavings(&[2, 2], 3), full[..3].to_vec());
    }

    #[test]
    fn schedule_count_matches_enumeration() {
        for counts in [
            vec![1, 1],
            vec![2, 2],
            vec![2, 2, 2],
            vec![3, 2],
            vec![2; 4],
        ] {
            assert_eq!(
                schedule_count(&counts) as usize,
                interleavings(&counts, usize::MAX).len(),
                "{counts:?}"
            );
        }
        assert_eq!(schedule_count(&[0, 0]), 1, "the empty schedule");
    }

    #[test]
    fn schedule_count_overflow_boundary_is_checked() {
        // 34! < u128::MAX < 35!: the largest all-distinct space that
        // still counts exactly, and the first that cannot.
        assert_eq!(
            schedule_count_checked(&[1; 34]),
            Some(295_232_799_039_604_140_847_618_609_643_520_000_000u128)
        );
        assert_eq!(schedule_count_checked(&[1; 35]), None);
        // Duplicated counts divide the factorial back under the limit:
        // 36!/2!^2 overflows, but the checked path reports it rather
        // than wrapping silently.
        assert_eq!(
            schedule_count_checked(&[2; 18]),
            Some(schedule_count(&[2; 18]))
        );
    }

    #[test]
    fn unrank_inverts_lexicographic_enumeration() {
        for counts in [vec![2, 2], vec![2, 2, 2], vec![3, 2], vec![2; 4]] {
            let full = interleavings(&counts, usize::MAX);
            for (i, want) in full.iter().enumerate() {
                assert_eq!(&unrank(&counts, i as u128), want, "{counts:?}[{i}]");
            }
        }
    }

    #[test]
    fn strided_selection_is_distinct_deterministic_and_spread() {
        let total = schedule_count(&[2; 4]); // 2520
        let picked = strided_indices(total, 140);
        assert_eq!(picked.len(), 140);
        let set: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 140, "stride selection repeated an index");
        assert_eq!(picked, strided_indices(total, 140), "not deterministic");
        // Spread: the selection reaches the last decile of the space,
        // which a lexicographic prefix of 140/2520 never does.
        assert!(picked.iter().any(|&i| i >= total * 9 / 10));
        // Degenerate cases.
        assert_eq!(strided_indices(6, 100), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(strided_indices(0, 4), Vec::<u128>::new());
    }

    #[test]
    fn spread_interleavings_cover_every_leading_shard() {
        // The lexicographic prefix bias this replaces: 140 of 2520
        // four-shard schedules all start with shard 0. The spread
        // selection sees every shard lead.
        let spread = interleavings_spread(&[2; 4], 140);
        assert_eq!(spread.len(), 140);
        let leaders: std::collections::HashSet<usize> = spread.iter().map(|s| s[0]).collect();
        assert_eq!(leaders, (0..4).collect(), "leading-shard coverage");
        let prefix_leaders: std::collections::HashSet<usize> =
            interleavings(&[2; 4], 140).iter().map(|s| s[0]).collect();
        assert_eq!(prefix_leaders.len(), 1, "the bias being fixed");
        // Every selected schedule is a valid member of the space.
        for s in &spread {
            for shard in 0..4 {
                assert_eq!(s.iter().filter(|&&x| x == shard).count(), 2);
            }
        }
        // A non-binding cap degrades to the complete lexicographic set.
        assert_eq!(
            interleavings_spread(&[2, 2], 100),
            interleavings(&[2, 2], 100)
        );
    }

    #[test]
    fn fault_plan_enumeration_covers_every_point() {
        let plans = fault_plans(6, 3, 4);
        let singles: Vec<_> = plans.iter().filter(|p| p.injections.len() == 1).collect();
        let doubles: Vec<_> = plans.iter().filter(|p| p.injections.len() == 2).collect();
        assert_eq!(singles.len(), 18, "every (step, shard) pair");
        let points: std::collections::HashSet<_> =
            singles.iter().map(|p| p.injections[0]).collect();
        assert_eq!(points.len(), 18);
        assert!(points.contains(&FaultPoint { step: 0, shard: 0 }));
        assert!(points.contains(&FaultPoint { step: 5, shard: 2 }));
        assert_eq!(doubles.len(), 4, "double plans capped");
        for d in &doubles {
            assert!(d.injections[0].step <= d.injections[1].step, "firing order");
        }
        // Deterministic.
        assert_eq!(plans, fault_plans(6, 3, 4));
        // Healthy plan fires nowhere.
        assert!(FaultPlan::healthy().is_healthy());
        assert_eq!(FaultPlan::healthy().shards_at(0).count(), 0);
        // shards_at surfaces the planned injections in order.
        let p = FaultPlan::double(
            FaultPoint { step: 2, shard: 1 },
            FaultPoint { step: 2, shard: 0 },
        );
        assert_eq!(p.shards_at(2).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn sweep_drivers_report_coverage() {
        let configs = [SweepConfig {
            shards: 2,
            ops: 2,
            cap: 100,
        }];
        let mut seen = Vec::new();
        let n = schedule_sweep(&configs, |shards, schedule| {
            assert_eq!(shards, 2);
            seen.push(schedule.to_vec());
        });
        assert_eq!(n, 6);
        assert_eq!(seen.len(), 6);

        let mut replays = 0usize;
        let stats = fault_sweep(&configs, 2, |shards, schedule, plan| {
            assert_eq!(shards, 2);
            assert_eq!(schedule.len(), 4);
            assert!(plan.injections.len() <= 2);
            replays += 1;
        });
        assert_eq!(stats.schedules, 6);
        // 6 schedules × (1 healthy + 4·2 singles + 2 doubles).
        assert_eq!(stats.single_points, 6 * 8);
        assert_eq!(stats.double_plans, 6 * 2);
        assert_eq!(stats.replays, 6 * 11);
        assert_eq!(replays, stats.replays);
    }
}
