//! Deterministic schedule exploration support.
//!
//! The sharded layers' invariants (home-channel pinning, descriptor and
//! URB conservation, completion-steering affinity, sector-run alias
//! freedom) must hold under *every* ordering of per-shard work, not
//! just the one a happy-path test happens to produce. The repo's
//! schedule-exploration harnesses — `tests/shard_sched.rs` for the NIC
//! side, `tests/storage_sched.rs` for storage — replay invariant checks
//! over exhaustively enumerated interleavings; this module is the
//! enumerator they share.
//!
//! Enumeration is lexicographic over multiset permutations: no
//! randomness, no seeds, every run produces the identical schedule list
//! — which is what makes a failing schedule a *reproducer*, not a
//! flake. ("Verifying Device Drivers with Pancake" makes the same
//! argument for pairing driver rewrites with systematic exploration:
//! the rewrite is only as trustworthy as the orderings it was checked
//! under.)

/// Enumerates interleavings of `counts[s]` ops per shard `s` in
/// lexicographic order, stopping at `cap` schedules. With a large
/// enough cap this is the complete multiset-permutation set
/// ([`schedule_count`] tells how many that is).
///
/// Each schedule is a vector of shard indices; schedule position `t`
/// says whose op runs at step `t`.
pub fn interleavings(counts: &[usize], cap: usize) -> Vec<Vec<usize>> {
    fn step(
        remaining: &mut Vec<usize>,
        prefix: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        if remaining.iter().all(|&r| r == 0) {
            out.push(prefix.clone());
            return;
        }
        for shard in 0..remaining.len() {
            if remaining[shard] > 0 {
                remaining[shard] -= 1;
                prefix.push(shard);
                step(remaining, prefix, out, cap);
                prefix.pop();
                remaining[shard] += 1;
            }
        }
    }
    let mut out = Vec::new();
    step(&mut counts.to_vec(), &mut Vec::new(), &mut out, cap);
    out
}

/// The full multiset-permutation count for `counts`: the multinomial
/// `(Σ counts)! / Π counts[s]!` — what [`interleavings`] returns when
/// `cap` is at least this large.
pub fn schedule_count(counts: &[usize]) -> u128 {
    let total: usize = counts.iter().sum();
    let mut n = 1u128;
    let mut k = 0usize;
    for &c in counts {
        for i in 1..=c {
            k += 1;
            n = n * k as u128 / i as u128;
        }
    }
    debug_assert_eq!(k, total);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_exhaustive_and_deterministic() {
        assert_eq!(interleavings(&[1, 1], 100), vec![vec![0, 1], vec![1, 0]]);
        // C(4,2) = 6 interleavings of two shards with two ops each.
        assert_eq!(interleavings(&[2, 2], 100).len(), 6);
        // Multinomial 6!/(2!2!2!) = 90 for three shards with two ops.
        assert_eq!(interleavings(&[2, 2, 2], 1_000).len(), 90);
        // Deterministic: two enumerations are identical.
        assert_eq!(interleavings(&[2, 2, 2], 50), interleavings(&[2, 2, 2], 50));
        // The cap truncates without reordering.
        let full = interleavings(&[2, 2], 100);
        assert_eq!(interleavings(&[2, 2], 3), full[..3].to_vec());
    }

    #[test]
    fn schedule_count_matches_enumeration() {
        for counts in [
            vec![1, 1],
            vec![2, 2],
            vec![2, 2, 2],
            vec![3, 2],
            vec![2; 4],
        ] {
            assert_eq!(
                schedule_count(&counts) as usize,
                interleavings(&counts, usize::MAX).len(),
                "{counts:?}"
            );
        }
        assert_eq!(schedule_count(&[0, 0]), 1, "the empty schedule");
    }
}
