//! Decaf E1000 build: nucleus + user-level decaf driver over XPC.
//!
//! The split follows the DriverSlicer plan computed from
//! [`super::minic::SOURCE`]: interrupt handling and the transmit/receive
//! data path stay in the kernel ([`super::E1000Hw`]), while probe,
//! bring-up, watchdog and management logic run as decaf-driver handlers
//! at user level. The channel's XDR spec and field masks are the slicer's
//! generated artifacts, not hand-written ones.

use std::cell::RefCell;
use std::rc::Rc;

use decaf_simdev::E1000Device;

use decaf_simkernel::{KError, KResult, Kernel};
use decaf_slicer::{slice, SliceConfig, SlicePlan};
use decaf_xdr::graph::CAddr;
use decaf_xdr::XdrValue;
use decaf_xpc::{Domain, NuclearRuntime, ProcDef, XpcChannel};

use super::{attach, E1000Hw, IRQ_LINE};
use crate::support::{self, decaf_readl, decaf_writel};
use decaf_simdev::e1000 as hwreg;

/// The installed decaf driver.
pub struct DecafE1000 {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Kernel-resident hardware state (the nucleus data path).
    pub hw: Rc<E1000Hw>,
    /// Interface name.
    pub ifname: String,
    /// The XPC channel between nucleus and decaf driver.
    pub channel: Rc<XpcChannel>,
    /// The nuclear runtime guarding upcalls.
    pub nuc: Rc<NuclearRuntime>,
    /// The shared adapter object (nucleus heap address).
    pub adapter: CAddr,
    /// Measured `insmod` latency (virtual ns).
    pub init_latency_ns: u64,
    /// The slicing plan this build implements.
    pub plan: SlicePlan,
    /// Handle to the device model (for traffic injection in workloads).
    pub dev: Rc<RefCell<E1000Device>>,
    watchdog: decaf_simkernel::TimerId,
}

/// Loads the decaf driver.
pub fn install(kernel: &Kernel, ifname: &str) -> KResult<DecafE1000> {
    let (bar, dma, dev) = attach(kernel);
    let hw = Rc::new(E1000Hw::new(bar.clone(), dma));
    let plan = slice(super::minic::SOURCE, &SliceConfig::default()).map_err(|_| KError::Inval)?;
    let channel = support::channel_from_plan(&plan);
    support::register_io_procs(&channel, bar).map_err(|_| KError::Io)?;
    register_nucleus_procs(kernel, &channel, &hw, ifname).map_err(|_| KError::Io)?;
    register_decaf_handlers(&channel).map_err(|_| KError::Io)?;

    let nuc = Rc::new(NuclearRuntime::new(
        kernel.clone(),
        Rc::clone(&channel),
        Some(IRQ_LINE),
    ));

    // insmod: allocate the shared adapter and run the user-level probe.
    let mut adapter = 0;
    let nuc_init = Rc::clone(&nuc);
    let ch_init = Rc::clone(&channel);
    let hw_init = Rc::clone(&hw);
    let name_init = ifname.to_string();
    let plan_spec = plan.spec.clone();
    let adapter_ref = &mut adapter;
    let init_latency_ns = kernel.insmod("e1000_decaf", move |k| {
        let a = {
            let heap = ch_init.heap(Domain::Nucleus);
            let mut h = heap.borrow_mut();
            h.alloc_default("e1000_adapter", &plan_spec)
                .map_err(|_| KError::NoMem)?
        };
        *adapter_ref = a;
        let ret = nuc_init
            .upcall_errno("e1000_probe", &[Some(a)], &[])
            .map_err(|_| KError::Io)?;
        if ret < 0 {
            return Err(KError::from_errno(ret).unwrap_or(KError::Io));
        }
        // Register the netdevice: open/stop go through the decaf driver,
        // transmit stays in the nucleus.
        let nuc_open = Rc::clone(&nuc_init);
        let nuc_stop = Rc::clone(&nuc_init);
        let hw_ops = Rc::clone(&hw_init);
        k.register_netdev(
            &name_init,
            decaf_simkernel::net::NetDeviceOps {
                open: Rc::new(move |_k| {
                    match nuc_open.upcall_errno("e1000_open", &[Some(a)], &[]) {
                        Ok(0) => Ok(()),
                        Ok(e) => Err(KError::from_errno(e).unwrap_or(KError::Io)),
                        Err(_) => Err(KError::Io),
                    }
                }),
                stop: Rc::new(move |_k| {
                    match nuc_stop.upcall_errno("e1000_close", &[Some(a)], &[]) {
                        Ok(_) => Ok(()),
                        Err(_) => Err(KError::Io),
                    }
                }),
                xmit: Rc::new(move |k, skb| hw_ops.xmit(k, &skb)),
            },
        )?;
        Ok(())
    })?;

    // The watchdog timer fires at softirq priority, so it only enqueues a
    // work item; the work item (process context) makes the upcall
    // (paper §3.1.3).
    let nuc_wd = Rc::clone(&nuc);
    let ch_wd = Rc::clone(&channel);
    let name_wd = ifname.to_string();
    let watchdog = kernel.timer_create(
        "e1000_watchdog",
        Rc::new(move |k| {
            let nuc = Rc::clone(&nuc_wd);
            let ch = Rc::clone(&ch_wd);
            let name = name_wd.clone();
            let a = adapter;
            k.schedule_work("e1000_watchdog_task", move |k| {
                if nuc.upcall("e1000_watchdog_task", &[Some(a)], &[]).is_ok() {
                    // The decaf driver updated adapter->link_up; the nucleus
                    // mirrors it into the stack.
                    let heap = ch.heap(Domain::Nucleus);
                    let up = heap
                        .borrow()
                        .scalar(a, "link_up")
                        .ok()
                        .and_then(|v| v.as_int())
                        .unwrap_or(0);
                    k.netif_carrier(&name, up != 0);
                }
            });
        }),
    );
    kernel.timer_arm_periodic(watchdog, 2_000_000_000);

    Ok(DecafE1000 {
        kernel: kernel.clone(),
        hw,
        ifname: ifname.to_string(),
        channel,
        nuc,
        adapter,
        init_latency_ns,
        plan,
        dev,
        watchdog,
    })
}

impl DecafE1000 {
    /// Round trips between nucleus and decaf driver so far.
    pub fn crossings(&self) -> u64 {
        self.channel.stats().round_trips
    }

    /// Upcalls into the decaf driver so far.
    pub fn decaf_invocations(&self) -> u64 {
        self.nuc.decaf_invocations()
    }

    /// Unloads the driver.
    pub fn remove(self) {
        self.kernel.timer_del(self.watchdog);
        self.kernel.free_irq(IRQ_LINE);
        let ifname = self.ifname.clone();
        self.kernel
            .rmmod("e1000_decaf", move |k| k.unregister_netdev(&ifname));
    }
}

/// Kernel procedures the decaf driver calls down into. These correspond
/// to the slicer's `kernel_entry_points` and `kernel_imports_from_user`.
fn register_nucleus_procs(
    kernel: &Kernel,
    channel: &Rc<XpcChannel>,
    hw: &Rc<E1000Hw>,
    ifname: &str,
) -> decaf_xpc::XpcResult<()> {
    type ScalarFn = Rc<dyn Fn(&Kernel, &[XdrValue]) -> XdrValue>;
    let scalar_proc = |name: &str, f: ScalarFn| ProcDef {
        name: name.into(),
        arg_types: vec![],
        handler: Rc::new(move |k, _, _, scalars| f(k, scalars)),
    };

    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "eeprom_read",
            Rc::new(move |k, s| {
                XdrValue::UInt(h.eeprom_read(k, s[0].as_uint().unwrap_or(0)) as u32)
            }),
        ),
    )?;
    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "phy_read",
            Rc::new(move |k, s| XdrValue::UInt(h.phy_read(k, s[0].as_uint().unwrap_or(0)) as u32)),
        ),
    )?;
    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "phy_write",
            Rc::new(move |k, s| {
                h.phy_write(
                    k,
                    s[0].as_uint().unwrap_or(0),
                    s[1].as_uint().unwrap_or(0) as u16,
                );
                XdrValue::Int(0)
            }),
        ),
    )?;
    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "setup_tx_resources",
            Rc::new(move |k, _| support::errno_value(h.setup_tx(k))),
        ),
    )?;
    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "setup_rx_resources",
            Rc::new(move |k, _| support::errno_value(h.setup_rx(k))),
        ),
    )?;
    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "free_tx_resources",
            Rc::new(move |k, _| {
                h.down(k);
                XdrValue::Int(0)
            }),
        ),
    )?;
    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "free_rx_resources",
            Rc::new(move |k, _| {
                h.down(k);
                XdrValue::Int(0)
            }),
        ),
    )?;
    let h = Rc::clone(hw);
    let name = ifname.to_string();
    let k_handle = kernel.clone();
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "request_irq",
            Rc::new(move |_k, _| {
                let hw_irq = Rc::clone(&h);
                let n = name.clone();
                support::errno_value(k_handle.request_irq(
                    IRQ_LINE,
                    "e1000_decaf",
                    Rc::new(move |k| {
                        hw_irq.handle_irq(k, &n);
                    }),
                ))
            }),
        ),
    )?;
    let k_handle = kernel.clone();
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "free_irq",
            Rc::new(move |_k, _| {
                k_handle.free_irq(IRQ_LINE);
                XdrValue::Int(0)
            }),
        ),
    )?;
    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "up_datapath",
            Rc::new(move |k, _| {
                h.up(k);
                XdrValue::Int(0)
            }),
        ),
    )?;
    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "down_datapath",
            Rc::new(move |k, _| {
                h.down(k);
                XdrValue::Int(0)
            }),
        ),
    )?;
    Ok(())
}

/// Sets an embedded-struct member (`adapter->hw.<member>`) on the decaf
/// heap copy of the adapter.
fn set_hw_member(ch: &XpcChannel, adapter: CAddr, member: &str, value: XdrValue) {
    let heap = ch.heap(Domain::Decaf);
    let mut h = heap.borrow_mut();
    if let Ok(mut hw_val) = h.scalar(adapter, "hw").cloned() {
        hw_val.set_field(member, value);
        let _ = h.set_scalar(adapter, "hw", hw_val);
    }
}

fn set_field(ch: &XpcChannel, adapter: CAddr, field: &str, value: XdrValue) {
    let heap = ch.heap(Domain::Decaf);
    let _ = heap.borrow_mut().set_scalar(adapter, field, value);
}

fn get_int(ch: &XpcChannel, adapter: CAddr, field: &str) -> i32 {
    let heap = ch.heap(Domain::Decaf);
    let v = heap.borrow().scalar(adapter, field).ok().cloned();
    v.and_then(|v| v.as_int()).unwrap_or(0)
}

/// User-level decaf-driver handlers: the converted Java (here: safe Rust)
/// implementations of the user partition.
fn register_decaf_handlers(channel: &Rc<XpcChannel>) -> decaf_xpc::XpcResult<()> {
    // e1000_probe: sw_init + check_options + EEPROM + reset + link setup,
    // mirroring the mini-C bodies.
    channel.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "e1000_probe".into(),
            arg_types: vec!["e1000_adapter".into()],
            handler: Rc::new(|k, ch, args, _| {
                let a = match args[0] {
                    Some(a) => a,
                    None => return XdrValue::Int(KError::Inval.errno()),
                };
                // e1000_sw_init.
                set_field(ch, a, "msg_enable", XdrValue::Int(3));
                set_field(ch, a, "itr", XdrValue::Int(8000));
                set_field(ch, a, "rx_csum", XdrValue::Int(1));
                set_hw_member(ch, a, "mac_type", XdrValue::Int(5));
                set_hw_member(ch, a, "media_type", XdrValue::Int(1));
                set_hw_member(ch, a, "autoneg", XdrValue::Int(1));
                // e1000_check_options: range/set-membership validation.
                set_field(ch, a, "speed", XdrValue::Int(1000));
                set_field(ch, a, "duplex", XdrValue::Int(1));
                // e1000_init_eeprom: MAC + checksum through downcalls.
                let mut mac = [0u8; 6];
                for w in 0..3u32 {
                    let word = ch
                        .call(k, Domain::Decaf, "eeprom_read", &[], &[XdrValue::UInt(w)])
                        .ok()
                        .and_then(|v| v.as_uint())
                        .unwrap_or(0) as u16;
                    mac[w as usize * 2] = (word & 0xff) as u8;
                    mac[w as usize * 2 + 1] = (word >> 8) as u8;
                }
                let _checksum = ch
                    .call(k, Domain::Decaf, "eeprom_read", &[], &[XdrValue::UInt(63)])
                    .ok();
                set_field(ch, a, "mac", XdrValue::Opaque(mac.to_vec()));
                set_hw_member(ch, a, "fc_mode", XdrValue::Int(3));
                // e1000_reset_hw_decaf.
                decaf_writel(k, ch, hwreg::CTRL, hwreg::CTRL_RST);
                let _ = decaf_readl(k, ch, hwreg::STATUS);
                decaf_writel(k, ch, hwreg::IMC, 0xffff_ffff);
                let _ = decaf_readl(k, ch, hwreg::ICR);
                // Save PCI config space (the @exp(PCI_LEN) array exists
                // for this path).
                for w in 0..8u64 {
                    let _ = decaf_readl(k, ch, w * 4);
                }
                // e1000_setup_link + the Figure 5 DSP sequence.
                let phy_read = |k: &Kernel, reg: u32| {
                    ch.call(k, Domain::Decaf, "phy_read", &[], &[XdrValue::UInt(reg)])
                        .ok()
                        .and_then(|v| v.as_uint())
                        .unwrap_or(0)
                };
                // PHY writes are posted: defer them so a whole DSP
                // programming sequence crosses in one batched flush.
                let phy_write = |k: &Kernel, reg: u32, val: u32| {
                    let _ = ch.call_deferred(
                        k,
                        Domain::Decaf,
                        "phy_write",
                        &[],
                        &[XdrValue::UInt(reg), XdrValue::UInt(val)],
                    );
                };
                let _ctrl = phy_read(k, 0);
                phy_write(k, 0, 0x1140);
                phy_write(k, 4, 0x0de0);
                phy_write(k, 9, 0x0300);
                let _status = phy_read(k, 1);
                for (reg, val) in [
                    (29u32, 0x001f_u32),
                    (30, 0x0646),
                    (29, 0x001b),
                    (30, 0x8fae),
                ] {
                    phy_write(k, reg, val);
                }
                let _ = phy_read(k, 30);
                XdrValue::Int(0)
            }),
        },
    )?;

    // e1000_open: the Figure 4 function. Result-based staged cleanup —
    // the Rust rendition of the nested exception handlers.
    channel.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "e1000_open".into(),
            arg_types: vec!["e1000_adapter".into()],
            handler: Rc::new(|k, ch, args, _| {
                let a = match args[0] {
                    Some(a) => a,
                    None => return XdrValue::Int(KError::Inval.errno()),
                };
                let down = |k: &Kernel, proc: &str| -> Result<(), i32> {
                    match ch.call(k, Domain::Decaf, proc, &[], &[]) {
                        Ok(XdrValue::Int(0)) => Ok(()),
                        Ok(XdrValue::Int(e)) => Err(e),
                        _ => Err(KError::Io.errno()),
                    }
                };
                // Stage 1: transmit resources.
                if let Err(e) = down(k, "setup_tx_resources") {
                    let _ = down(k, "down_datapath"); // e1000_reset
                    return XdrValue::Int(e);
                }
                // Stage 2: receive resources; on failure free stage 1.
                if let Err(e) = down(k, "setup_rx_resources") {
                    let _ = down(k, "free_tx_resources");
                    return XdrValue::Int(e);
                }
                // Stage 3: the interrupt line; on failure free stages 1-2.
                if let Err(e) = down(k, "request_irq") {
                    let _ = down(k, "free_rx_resources");
                    let _ = down(k, "free_tx_resources");
                    return XdrValue::Int(e);
                }
                // Power up the PHY and start the data path.
                let _ = ch.call(k, Domain::Decaf, "phy_read", &[], &[XdrValue::UInt(0)]);
                let _ = ch.call_deferred(
                    k,
                    Domain::Decaf,
                    "phy_write",
                    &[],
                    &[XdrValue::UInt(0), XdrValue::UInt(0x1000)],
                );
                if let Err(e) = down(k, "up_datapath") {
                    let _ = down(k, "free_irq");
                    let _ = down(k, "free_rx_resources");
                    let _ = down(k, "free_tx_resources");
                    return XdrValue::Int(e);
                }
                set_field(ch, a, "link_up", XdrValue::Int(1));
                XdrValue::Int(0)
            }),
        },
    )?;

    channel.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "e1000_close".into(),
            arg_types: vec!["e1000_adapter".into()],
            handler: Rc::new(|k, ch, args, _| {
                if let Some(a) = args[0] {
                    set_field(ch, a, "link_up", XdrValue::Int(0));
                }
                let _ = ch.call(k, Domain::Decaf, "down_datapath", &[], &[]);
                let _ = ch.call(k, Domain::Decaf, "free_irq", &[], &[]);
                XdrValue::Int(0)
            }),
        },
    )?;

    channel.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "e1000_watchdog_task".into(),
            arg_types: vec!["e1000_adapter".into()],
            handler: Rc::new(|k, ch, args, _| {
                let a = match args[0] {
                    Some(a) => a,
                    None => return XdrValue::Int(KError::Inval.errno()),
                };
                let status = decaf_readl(k, ch, hwreg::STATUS);
                let up = status & hwreg::STATUS_LU != 0;
                set_field(ch, a, "link_up", XdrValue::Int(up as i32));
                let events = get_int(ch, a, "watchdog_events");
                set_field(ch, a, "watchdog_events", XdrValue::Int(events + 1));
                XdrValue::Int(0)
            }),
        },
    )?;

    // Management paths (ethtool get/set analogues).
    channel.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "e1000_get_settings".into(),
            arg_types: vec!["e1000_adapter".into()],
            handler: Rc::new(|_k, ch, args, _| {
                let a = match args[0] {
                    Some(a) => a,
                    None => return XdrValue::Int(0),
                };
                XdrValue::Int(get_int(ch, a, "speed"))
            }),
        },
    )?;
    channel.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "e1000_set_settings".into(),
            arg_types: vec!["e1000_adapter".into()],
            handler: Rc::new(|k, ch, args, scalars| {
                let a = match args[0] {
                    Some(a) => a,
                    None => return XdrValue::Int(KError::Inval.errno()),
                };
                let speed = scalars.first().and_then(|v| v.as_int()).unwrap_or(1000);
                set_field(ch, a, "speed", XdrValue::Int(speed));
                decaf_writel(k, ch, hwreg::CTRL, hwreg::CTRL_RST);
                XdrValue::Int(0)
            }),
        },
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use decaf_simkernel::SkBuff;

    #[test]
    fn install_probes_through_xpc() {
        let k = Kernel::new();
        let drv = install(&k, "eth0").unwrap();
        assert!(drv.init_latency_ns > 0);
        // Initialization crossed the boundary dozens of times.
        let crossings = drv.crossings();
        assert!(
            (20..300).contains(&crossings),
            "expected tens of crossings during init, got {crossings}"
        );
        // The decaf driver populated the shared adapter: the nucleus can
        // read back the MAC the user-level code assembled.
        let heap = drv.channel.heap(Domain::Nucleus);
        let mac = heap.borrow().scalar(drv.adapter, "mac").unwrap().clone();
        assert_eq!(mac.as_opaque().unwrap(), super::super::MAC);
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn open_then_traffic_stays_in_kernel() {
        let k = Kernel::new();
        let drv = install(&k, "eth0").unwrap();
        k.netdev_open("eth0").unwrap();
        k.schedule_point();
        let crossings_after_open = drv.crossings();
        for _ in 0..20 {
            k.net_xmit("eth0", SkBuff::synthetic(1400, 9, 0x0800))
                .unwrap();
            k.schedule_point();
        }
        let st = k.net_stats("eth0");
        assert_eq!(st.tx_packets, 20);
        assert_eq!(st.rx_packets, 20);
        assert_eq!(
            drv.crossings(),
            crossings_after_open,
            "the data path must not touch the decaf driver"
        );
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn watchdog_upcalls_every_two_seconds() {
        let k = Kernel::new();
        let drv = install(&k, "eth0").unwrap();
        k.netdev_open("eth0").unwrap();
        let invocations_before = drv.decaf_invocations();
        k.run_for(6_500_000_000);
        let delta = drv.decaf_invocations() - invocations_before;
        assert_eq!(delta, 3, "one upcall per 2 s watchdog period");
        assert!(k.carrier_ok("eth0"));
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn open_failure_runs_staged_cleanup() {
        let k = Kernel::new();
        let drv = install(&k, "eth0").unwrap();
        // Occupy the IRQ line so the decaf driver's request_irq fails.
        k.request_irq(IRQ_LINE, "squatter", Rc::new(|_| {}))
            .unwrap();
        let err = k.netdev_open("eth0").unwrap_err();
        assert_eq!(err, KError::Busy);
        // The adapter must not report link-up after the failed open.
        let heap = drv.channel.heap(Domain::Nucleus);
        let up = heap
            .borrow()
            .scalar(drv.adapter, "link_up")
            .unwrap()
            .as_int();
        assert_eq!(up, Some(0));
    }

    #[test]
    fn runtime_split_matches_slicer_plan() {
        let k = Kernel::new();
        let drv = install(&k, "eth0").unwrap();
        // Every decaf-registered proc must be a user-partition function in
        // the plan; nucleus procs must not be decaf functions.
        for proc in drv.channel.proc_names(Domain::Decaf) {
            assert!(
                drv.plan.decaf_fns.contains(&proc),
                "`{proc}` is registered decaf but the slicer placed it elsewhere"
            );
        }
        for proc in drv.channel.proc_names(Domain::Nucleus) {
            assert!(
                !drv.plan.decaf_fns.contains(&proc),
                "`{proc}` is registered in the nucleus but sliced to decaf"
            );
        }
    }
}
