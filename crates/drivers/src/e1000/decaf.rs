//! Decaf E1000 build: nucleus + user-level decaf driver over XPC.
//!
//! The split follows the DriverSlicer plan computed from
//! [`super::minic::SOURCE`]: interrupt handling and the transmit/receive
//! data path stay in the kernel ([`super::E1000Hw`]), while probe,
//! bring-up, watchdog and management logic run as decaf-driver handlers
//! at user level. The channel's XDR spec and field masks are the slicer's
//! generated artifacts, not hand-written ones.
//!
//! [`install_shmring`] goes one step further — the
//! `ChannelConfig::kernel_user_shmring()` build: the *data path* is
//! hosted at user level too. Transmit payloads are written once into a
//! shared buffer pool carved from the device's DMA region; 16-byte
//! descriptors cross through pinned SPSC rings; the decaf driver's drain
//! handlers program the hardware descriptor ring straight from the
//! shared mapping (one TDT write per batch); and received frames flow
//! back the same way. Zero payload bytes touch the XDR marshaler.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use decaf_simdev::E1000Device;

use decaf_shmring::{BufHandle, BufPool, Descriptor, DoorbellPolicy, RingSet, ShmRing};
use decaf_simkernel::kernel::IrqHandler;
use decaf_simkernel::{CpuClass, KError, KResult, Kernel, SkBuff, TimerId};
use decaf_slicer::{slice, SliceConfig, SlicePlan};
use decaf_xdr::graph::CAddr;
use decaf_xdr::XdrValue;
use decaf_xpc::{
    ChannelConfig, DataPathChannel, Domain, NuclearRuntime, ProcDef, ShardPolicy, ShardedChannel,
    XpcChannel,
};

use super::{attach, E1000Hw, BUF_SIZE, IRQ_LINE, N_DESC, TX_BUF_OFF};
use crate::support::{self, decaf_readl, decaf_writel, RxMode};
use decaf_simdev::e1000 as hwreg;

/// TX descriptors per doorbell at line rate (the batch a crossing is
/// amortized over when the ring fills faster than the coalescing
/// deadline).
pub const TX_DOORBELL_WATERMARK: usize = 8;

/// The installed decaf driver.
pub struct DecafE1000 {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Kernel-resident hardware state (the nucleus data path).
    pub hw: Rc<E1000Hw>,
    /// Interface name.
    pub ifname: String,
    /// The XPC channel between nucleus and decaf driver.
    pub channel: Rc<XpcChannel>,
    /// The nuclear runtime guarding upcalls.
    pub nuc: Rc<NuclearRuntime>,
    /// The shared adapter object (nucleus heap address).
    pub adapter: CAddr,
    /// Measured `insmod` latency (virtual ns).
    pub init_latency_ns: u64,
    /// The slicing plan this build implements.
    pub plan: SlicePlan,
    /// Handle to the device model (for traffic injection in workloads).
    pub dev: Rc<RefCell<E1000Device>>,
    /// The transmit shmring data path (shmring build only).
    pub tx_path: Option<Rc<DataPathChannel>>,
    /// The receive shmring data path (shmring build only).
    pub rx_path: Option<Rc<DataPathChannel>>,
    /// How this build collects received frames (shmring builds only;
    /// the kernel-data-path build always uses the hardware interrupt).
    pub rx_mode: RxMode,
    watchdog: decaf_simkernel::TimerId,
    poll_timer: Option<TimerId>,
    rx_poll_timer: Option<TimerId>,
}

/// Loads the decaf driver (kernel-resident data path, batched control
/// paths — the `ChannelConfig::kernel_user_batched()` build).
pub fn install(kernel: &Kernel, ifname: &str) -> KResult<DecafE1000> {
    install_with(kernel, ifname, false, RxMode::Interrupt)
}

/// Loads the decaf driver with the *user-level* shmring data path — the
/// `ChannelConfig::kernel_user_shmring()` build. netperf-shaped
/// workloads run entirely through the descriptor rings: payloads cross
/// as pool handles, never as marshaled bytes.
pub fn install_shmring(kernel: &Kernel, ifname: &str) -> KResult<DecafE1000> {
    install_with(kernel, ifname, true, RxMode::Interrupt)
}

/// Loads the shmring build with [`RxMode::Poll`] receive: the first RX
/// interrupt masks further ones, and a periodic budgeted poll probes
/// the receive ring instead of riding doorbell upcalls.
pub fn install_shmring_poll(kernel: &Kernel, ifname: &str) -> KResult<DecafE1000> {
    install_with(kernel, ifname, true, RxMode::Poll)
}

fn install_with(
    kernel: &Kernel,
    ifname: &str,
    shmring: bool,
    rx_mode: RxMode,
) -> KResult<DecafE1000> {
    let (bar, dma, dev) = attach(kernel);
    let hw = Rc::new(E1000Hw::new(bar.clone(), dma));
    let plan = slice(super::minic::SOURCE, &SliceConfig::default()).map_err(|_| KError::Inval)?;
    let config = if shmring {
        ChannelConfig::kernel_user_shmring()
    } else {
        ChannelConfig::kernel_user_batched()
    };
    let channel = support::channel_from_plan_with(&plan, config);
    support::register_io_procs(&channel, bar).map_err(|_| KError::Io)?;

    let datapath = if shmring {
        Some(build_datapath(kernel, &channel, &hw, ifname, rx_mode).map_err(|_| KError::Io)?)
    } else {
        None
    };
    let irq_handler: IrqHandler = match &datapath {
        Some(dp) => Rc::clone(&dp.irq_handler),
        None => {
            let hw_irq = Rc::clone(&hw);
            let name = ifname.to_string();
            Rc::new(move |k| {
                hw_irq.handle_irq(k, &name);
            })
        }
    };
    let xmit: decaf_simkernel::net::XmitOp = match &datapath {
        Some(dp) => support::shmring_xmit_op(Rc::clone(&dp.tx), BUF_SIZE),
        None => {
            let hw_ops = Rc::clone(&hw);
            Rc::new(move |k, skb| hw_ops.xmit(k, &skb))
        }
    };

    register_nucleus_procs(kernel, &channel, &hw, irq_handler).map_err(|_| KError::Io)?;
    register_decaf_handlers(&channel).map_err(|_| KError::Io)?;

    let nuc = Rc::new(NuclearRuntime::new(
        kernel.clone(),
        Rc::clone(&channel),
        Some(IRQ_LINE),
    ));

    // insmod: allocate the shared adapter and run the user-level probe.
    let mut adapter = 0;
    let nuc_init = Rc::clone(&nuc);
    let ch_init = Rc::clone(&channel);
    let name_init = ifname.to_string();
    let plan_spec = plan.spec.clone();
    let adapter_ref = &mut adapter;
    let init_latency_ns = kernel.insmod("e1000_decaf", move |k| {
        let a = {
            let heap = ch_init.heap(Domain::Nucleus);
            let mut h = heap.borrow_mut();
            h.alloc_default("e1000_adapter", &plan_spec)
                .map_err(|_| KError::NoMem)?
        };
        *adapter_ref = a;
        let ret = nuc_init
            .upcall_errno("e1000_probe", &[Some(a)], &[])
            .map_err(|_| KError::Io)?;
        if ret < 0 {
            return Err(KError::from_errno(ret).unwrap_or(KError::Io));
        }
        // Register the netdevice: open/stop go through the decaf driver;
        // transmit stays in the nucleus (copy build) or posts into the
        // shared-memory ring (shmring build).
        let nuc_open = Rc::clone(&nuc_init);
        let nuc_stop = Rc::clone(&nuc_init);
        k.register_netdev(
            &name_init,
            decaf_simkernel::net::NetDeviceOps {
                open: Rc::new(move |_k| {
                    match nuc_open.upcall_errno("e1000_open", &[Some(a)], &[]) {
                        Ok(0) => Ok(()),
                        Ok(e) => Err(KError::from_errno(e).unwrap_or(KError::Io)),
                        Err(_) => Err(KError::Io),
                    }
                }),
                stop: Rc::new(move |_k| {
                    match nuc_stop.upcall_errno("e1000_close", &[Some(a)], &[]) {
                        Ok(_) => Ok(()),
                        Err(_) => Err(KError::Io),
                    }
                }),
                xmit,
            },
        )?;
        Ok(())
    })?;

    // The watchdog timer fires at softirq priority, so it only enqueues a
    // work item; the work item (process context) makes the upcall
    // (paper §3.1.3).
    let nuc_wd = Rc::clone(&nuc);
    let ch_wd = Rc::clone(&channel);
    let name_wd = ifname.to_string();
    let watchdog = kernel.timer_create(
        "e1000_watchdog",
        Rc::new(move |k| {
            let nuc = Rc::clone(&nuc_wd);
            let ch = Rc::clone(&ch_wd);
            let name = name_wd.clone();
            let a = adapter;
            k.schedule_work("e1000_watchdog_task", move |k| {
                if nuc.upcall("e1000_watchdog_task", &[Some(a)], &[]).is_ok() {
                    // The decaf driver updated adapter->link_up; the nucleus
                    // mirrors it into the stack.
                    let heap = ch.heap(Domain::Nucleus);
                    let up = heap
                        .borrow()
                        .scalar(a, "link_up")
                        .ok()
                        .and_then(|v| v.as_int())
                        .unwrap_or(0);
                    k.netif_carrier(&name, up != 0);
                }
            });
        }),
    );
    kernel.timer_arm_periodic(watchdog, 2_000_000_000);

    let (tx_path, rx_path, poll_timer, rx_poll_timer) = match datapath {
        Some(dp) => (
            Some(dp.tx),
            Some(dp.rx),
            Some(dp.poll_timer),
            dp.rx_poll_timer,
        ),
        None => (None, None, None, None),
    };
    Ok(DecafE1000 {
        kernel: kernel.clone(),
        hw,
        ifname: ifname.to_string(),
        channel,
        nuc,
        adapter,
        init_latency_ns,
        plan,
        dev,
        tx_path,
        rx_path,
        rx_mode,
        watchdog,
        poll_timer,
        rx_poll_timer,
    })
}

/// Builds the rings, the shared buffer pool, the decaf drain handlers,
/// the nucleus interrupt handler and the coalescing poll timer.
fn build_datapath(
    kernel: &Kernel,
    channel: &Rc<XpcChannel>,
    hw: &Rc<E1000Hw>,
    ifname: &str,
    rx_mode: RxMode,
) -> decaf_xpc::XpcResult<support::ShmDataPath> {
    // TX: payloads live in a pool carved from the device's own DMA
    // region, so a posted descriptor already points where the NIC reads.
    let tx = DataPathChannel::new(
        Rc::clone(channel),
        Domain::Nucleus,
        "e1000_tx_drain",
        Rc::new(ShmRing::new("e1000-tx", N_DESC as usize)),
        Rc::new(ShmRing::new("e1000-tx-done", 2 * N_DESC as usize)),
        Some(Rc::new(BufPool::new(
            hw.dma.clone(),
            TX_BUF_OFF,
            BUF_SIZE,
            N_DESC as usize,
        ))),
        DoorbellPolicy::with_watermark(TX_DOORBELL_WATERMARK),
    )?;
    // RX: descriptors reference device receive slots (no pool); the IRQ
    // handler posts, a work item rings, the decaf driver drains.
    let rx = DataPathChannel::new(
        Rc::clone(channel),
        Domain::Nucleus,
        "e1000_rx_drain",
        Rc::new(ShmRing::new("e1000-rx", N_DESC as usize)),
        Rc::new(ShmRing::new("e1000-rx-done", 2 * N_DESC as usize)),
        None,
        DoorbellPolicy::with_watermark(N_DESC as usize),
    )?;

    // TX descriptors queued to hardware by the decaf drain, completed
    // (ownership handed back through the completion ring) by the IRQ.
    let inflight: Rc<RefCell<VecDeque<Descriptor>>> = Rc::new(RefCell::new(VecDeque::new()));

    // Decaf-side TX drain: the user-level driver programs the hardware
    // descriptor ring straight from its mapping of the shared pool —
    // no payload copy — and publishes the whole batch with one TDT write.
    {
        let end = tx.end(Domain::Decaf);
        let hw = Rc::clone(hw);
        let inflight = Rc::clone(&inflight);
        channel.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "e1000_tx_drain".into(),
                arg_types: vec![],
                handler: Rc::new(move |k, _, _, _| {
                    let drained = end.consume(k);
                    if drained.is_empty() {
                        return XdrValue::Int(0);
                    }
                    let pool = end.pool().expect("tx path owns a pool");
                    let mut queued = 0;
                    for d in &drained {
                        let off = pool.offset_of(d.buf).expect("live pool handle");
                        match hw.xmit_desc(k, off, d.len as usize) {
                            Ok(()) => {
                                inflight.borrow_mut().push_back(*d);
                                queued += 1;
                            }
                            // A frame the hardware rejects never becomes
                            // in-flight (it would be counted as sent at
                            // the next TXDW); hand its buffer straight
                            // back through the completion ring.
                            Err(_) => {
                                let _ = end.complete(k, *d);
                            }
                        }
                    }
                    if queued > 0 {
                        hw.tx_kick(k);
                    }
                    XdrValue::Int(queued)
                }),
            },
        )?;
    }

    // Decaf-side RX drain: user-level receive processing sees every
    // descriptor, then hands buffer ownership back in completion order.
    {
        let end = rx.end(Domain::Decaf);
        channel.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "e1000_rx_drain".into(),
                arg_types: vec![],
                handler: Rc::new(move |k, _, _, _| {
                    let mut n = 0;
                    for d in end.consume(k) {
                        let _ = end.complete(k, d);
                        n += 1;
                    }
                    XdrValue::Int(n)
                }),
            },
        )?;
    }

    // Nucleus IRQ handler: completes TX buffers, harvests RX slots into
    // the ring, and defers the doorbell upcall to a work item (process
    // context — §3.1.3 forbids upcalls from atomic context).
    let irq_handler: IrqHandler = {
        let hw = Rc::clone(hw);
        let tx_end = tx.end(Domain::Nucleus);
        let inflight = Rc::clone(&inflight);
        let rx_dp = Rc::clone(&rx);
        let name = ifname.to_string();
        Rc::new(move |k| {
            let icr = hw.bar.read32(k, hwreg::ICR);
            if icr & hwreg::ICR_TXDW != 0 {
                let (mut pkts, mut bytes) = (0u64, 0u64);
                let done: Vec<Descriptor> = inflight.borrow_mut().drain(..).collect();
                for d in done {
                    pkts += 1;
                    bytes += d.len as u64;
                    let _ = tx_end.complete(k, d);
                }
                k.net_tx_done(&name, pkts, bytes);
            }
            if icr & hwreg::ICR_RXT0 != 0 && rx_mode == RxMode::Poll {
                // NAPI-style handoff: the first receive interrupt masks
                // further ones; the harvested frames wait in the
                // hardware ring for the next poll tick.
                hw.bar.write32(k, hwreg::IMC, hwreg::ICR_RXT0);
            } else if icr & hwreg::ICR_RXT0 != 0 {
                let _span = k.trace_span("rx", "irq");
                for (slot, len) in hw.rx_harvest(k) {
                    let _ = rx_dp.post(
                        k,
                        Descriptor {
                            buf: BufHandle(slot),
                            len: len as u32,
                            cookie: slot as u64,
                        },
                    );
                }
                if rx_dp.pending() > 0 {
                    let rx_dp = Rc::clone(&rx_dp);
                    let hw = Rc::clone(&hw);
                    let name = name.clone();
                    k.schedule_work("e1000_rx_drain_task", move |k| {
                        let _span = k.trace_span("rx", "drain");
                        let _ = rx_dp.ring_doorbell(k);
                        let mut last = None;
                        for d in rx_dp.reclaim_completions(k) {
                            let slot = d.cookie as u32;
                            let data = hw.dma.read_bytes(E1000Hw::rx_buf_off(slot), d.len as usize);
                            let _ = k.netif_rx(
                                &name,
                                SkBuff {
                                    data,
                                    protocol: 0x0800,
                                },
                            );
                            hw.rx_recycle(k, slot);
                            last = Some(slot);
                        }
                        if let Some(slot) = last {
                            hw.rx_kick(k, slot);
                        }
                    });
                }
            }
            if icr & hwreg::ICR_LSC != 0 {
                k.netif_carrier(&name, hw.link_up(k));
            }
        })
    };

    let poll_timer = support::shmring_poll_timer(kernel, "e1000_shmring_poll", &tx);

    // Poll-mode receive: a fixed-grid tick replaces the RX doorbell
    // upcall. Each tick harvests the hardware ring into the shm ring,
    // probes it from the decaf side under a budget (paying the spin tax
    // whether or not frames arrived), and delivers completions — no
    // interrupt entry, no crossing.
    let rx_poll_timer = if rx_mode == RxMode::Poll {
        let rx_dp = Rc::clone(&rx);
        let hw_poll = Rc::clone(hw);
        let name = ifname.to_string();
        let timer = kernel.timer_create(
            "e1000_rx_poll",
            Rc::new(move |k| {
                let rx_dp = Rc::clone(&rx_dp);
                let hw = Rc::clone(&hw_poll);
                let name = name.clone();
                k.schedule_work("e1000_rx_poll_task", move |k| {
                    let _span = k.trace_span("rx", "poll");
                    for (slot, len) in hw.rx_harvest(k) {
                        let _ = rx_dp.post(
                            k,
                            Descriptor {
                                buf: BufHandle(slot),
                                len: len as u32,
                                cookie: slot as u64,
                            },
                        );
                    }
                    let end = rx_dp.end(Domain::Decaf);
                    for d in end.poll_and_reclaim(k, support::RX_POLL_BUDGET) {
                        let _ = end.complete(k, d);
                    }
                    let mut last = None;
                    for d in rx_dp.reclaim_completions(k) {
                        let slot = d.cookie as u32;
                        let data = hw.dma.read_bytes(E1000Hw::rx_buf_off(slot), d.len as usize);
                        let _ = k.netif_rx(
                            &name,
                            SkBuff {
                                data,
                                protocol: 0x0800,
                            },
                        );
                        hw.rx_recycle(k, slot);
                        last = Some(slot);
                    }
                    if let Some(slot) = last {
                        hw.rx_kick(k, slot);
                    }
                });
            }),
        );
        kernel.timer_arm_periodic(timer, support::RX_POLL_TICK_NS);
        Some(timer)
    } else {
        None
    };

    Ok(support::ShmDataPath {
        tx,
        rx,
        irq_handler,
        poll_timer,
        rx_poll_timer,
    })
}

impl DecafE1000 {
    /// Round trips between nucleus and decaf driver so far.
    pub fn crossings(&self) -> u64 {
        self.channel.stats().round_trips
    }

    /// Upcalls into the decaf driver so far.
    pub fn decaf_invocations(&self) -> u64 {
        self.nuc.decaf_invocations()
    }

    /// Unloads the driver.
    pub fn remove(self) {
        self.kernel.timer_del(self.watchdog);
        if let Some(t) = self.poll_timer {
            self.kernel.timer_del(t);
        }
        if let Some(t) = self.rx_poll_timer {
            self.kernel.timer_del(t);
        }
        self.kernel.free_irq(IRQ_LINE);
        let ifname = self.ifname.clone();
        self.kernel
            .rmmod("e1000_decaf", move |k| k.unregister_netdev(&ifname));
    }
}

/// The sharded decaf driver: N parallel XPC channels behind a
/// [`ShardedChannel`] facade, with RSS-style per-shard TX/RX descriptor
/// rings ([`RingSet`]) feeding the one simulated device.
///
/// * **TX** — the netdev xmit op flow-hashes each frame to a shard,
///   writes the payload into the shared pool (one audited copy), posts a
///   descriptor into that shard's ring and rides that shard's doorbell;
///   the decaf-side drain of each shard programs the hardware ring from
///   the shared mapping. The IRQ-side completion is *steered back to the
///   posting shard* through the ring set's origin map.
/// * **RX** — harvested receive slots flow-hash to per-shard RX rings;
///   each shard's drain hands ownership back through its own completion
///   ring.
/// * **Control** — shard 0 is the control shard: the adapter object is
///   homed there, probe/open/watchdog upcalls ride its channel.
///
/// All data-path work is charged under [`Kernel::shard_scope`], so the
/// shards=1/2/4/8 ablation can report the parallel wall-clock estimate
/// (serial work + critical-path shard).
pub struct ShardedE1000 {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Kernel-resident hardware state.
    pub hw: Rc<E1000Hw>,
    /// Interface name.
    pub ifname: String,
    /// The sharded channel facade (shard 0 is the control shard).
    pub channels: Rc<ShardedChannel>,
    /// The nuclear runtime guarding upcalls (control shard).
    pub nuc: Rc<NuclearRuntime>,
    /// The shared adapter object (homed on shard 0).
    pub adapter: CAddr,
    /// Measured `insmod` latency (virtual ns).
    pub init_latency_ns: u64,
    /// The slicing plan this build implements.
    pub plan: SlicePlan,
    /// Handle to the device model.
    pub dev: Rc<RefCell<E1000Device>>,
    /// Per-shard transmit data paths.
    pub tx_paths: Vec<Rc<DataPathChannel>>,
    /// Per-shard receive data paths.
    pub rx_paths: Vec<Rc<DataPathChannel>>,
    /// The TX ring set (flow steering + completion steering).
    pub tx_set: Rc<RingSet>,
    /// The RX ring set.
    pub rx_set: Rc<RingSet>,
    watchdog: TimerId,
    poll_timer: TimerId,
}

impl ShardedE1000 {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.channels.shard_count()
    }

    /// Aggregated round trips across every shard channel.
    pub fn crossings(&self) -> u64 {
        self.channels.stats().round_trips
    }

    /// Unloads the driver.
    pub fn remove(self) {
        self.kernel.timer_del(self.watchdog);
        self.kernel.timer_del(self.poll_timer);
        self.kernel.free_irq(IRQ_LINE);
        let ifname = self.ifname.clone();
        self.kernel
            .rmmod("e1000_decaf_sharded", move |k| k.unregister_netdev(&ifname));
    }
}

/// Loads the decaf driver with `shards` parallel channels and per-shard
/// shmring TX/RX queues — the multi-queue, multi-channel build.
pub fn install_sharded(kernel: &Kernel, ifname: &str, shards: usize) -> KResult<ShardedE1000> {
    let (bar, dma, dev) = attach(kernel);
    let hw = Rc::new(E1000Hw::new(bar.clone(), dma));
    let plan = slice(super::minic::SOURCE, &SliceConfig::default()).map_err(|_| KError::Inval)?;
    // The sharded build rides the completion-based async transport:
    // per-shard doorbells *launch* rather than block, and the send-path
    // reclaim harvests them — crossing latency overlaps with posting.
    let channels = ShardedChannel::new(
        plan.spec.clone(),
        plan.masks.clone(),
        ChannelConfig::kernel_user_async_shmring(),
        Domain::Nucleus,
        Domain::Decaf,
        shards,
        ShardPolicy::FlowHash,
    );
    for i in 0..shards {
        support::register_io_procs(channels.shard(i), bar.clone()).map_err(|_| KError::Io)?;
        register_decaf_handlers(channels.shard(i)).map_err(|_| KError::Io)?;
    }

    // Per-shard rings and data paths over one shared DMA-resident pool.
    let tx_set = RingSet::new("e1000-tx", shards, N_DESC as usize, 2 * N_DESC as usize);
    let rx_set = RingSet::new("e1000-rx", shards, N_DESC as usize, 2 * N_DESC as usize);
    let pool = Rc::new(BufPool::new(
        hw.dma.clone(),
        TX_BUF_OFF,
        BUF_SIZE,
        N_DESC as usize,
    ));
    let mut tx_paths = Vec::with_capacity(shards);
    let mut rx_paths = Vec::with_capacity(shards);
    for i in 0..shards {
        tx_paths.push(
            DataPathChannel::new(
                Rc::clone(channels.shard(i)),
                Domain::Nucleus,
                "e1000_tx_drain",
                Rc::clone(tx_set.ring(i)),
                Rc::clone(tx_set.completions(i)),
                Some(Rc::clone(&pool)),
                DoorbellPolicy::with_watermark(TX_DOORBELL_WATERMARK),
            )
            .map_err(|_| KError::Io)?,
        );
        rx_paths.push(
            DataPathChannel::new(
                Rc::clone(channels.shard(i)),
                Domain::Nucleus,
                "e1000_rx_drain",
                Rc::clone(rx_set.ring(i)),
                Rc::clone(rx_set.completions(i)),
                None,
                DoorbellPolicy::with_watermark(N_DESC as usize),
            )
            .map_err(|_| KError::Io)?,
        );
    }

    // TX descriptors queued to hardware, awaiting the TXDW completion.
    let inflight: Rc<RefCell<VecDeque<Descriptor>>> = Rc::new(RefCell::new(VecDeque::new()));

    // Decaf-side drains, one pair per shard, each charged to its shard.
    for (i, (tx_path, rx_path)) in tx_paths.iter().zip(&rx_paths).enumerate() {
        let end = tx_path.end(Domain::Decaf);
        let hw_drain = Rc::clone(&hw);
        let inflight_drain = Rc::clone(&inflight);
        let set = Rc::clone(&tx_set);
        channels
            .shard(i)
            .register_proc(
                Domain::Decaf,
                ProcDef {
                    name: "e1000_tx_drain".into(),
                    arg_types: vec![],
                    handler: Rc::new(move |k, _, _, _| {
                        k.shard_scope(i, || {
                            let drained = end.consume(k);
                            if drained.is_empty() {
                                return XdrValue::Int(0);
                            }
                            let pool = end.pool().expect("tx path owns a pool");
                            let mut queued = 0;
                            for d in &drained {
                                let off = pool.offset_of(d.buf).expect("live pool handle");
                                match hw_drain.xmit_desc(k, off, d.len as usize) {
                                    Ok(()) => {
                                        inflight_drain.borrow_mut().push_back(*d);
                                        queued += 1;
                                    }
                                    // A rejected frame is completed on the
                                    // spot — steered home like any other.
                                    Err(_) => {
                                        let _ = set.complete(k, CpuClass::User, *d);
                                    }
                                }
                            }
                            if queued > 0 {
                                hw_drain.tx_kick(k);
                            }
                            XdrValue::Int(queued)
                        })
                    }),
                },
            )
            .map_err(|_| KError::Io)?;

        let end = rx_path.end(Domain::Decaf);
        let set = Rc::clone(&rx_set);
        channels
            .shard(i)
            .register_proc(
                Domain::Decaf,
                ProcDef {
                    name: "e1000_rx_drain".into(),
                    arg_types: vec![],
                    handler: Rc::new(move |k, _, _, _| {
                        k.shard_scope(i, || {
                            let mut n = 0;
                            for d in end.consume(k) {
                                let _ = set.complete(k, CpuClass::User, d);
                                n += 1;
                            }
                            XdrValue::Int(n)
                        })
                    }),
                },
            )
            .map_err(|_| KError::Io)?;
    }

    // Nucleus IRQ handler: TX completions steer home through the ring
    // set; harvested RX slots flow-hash across the per-shard RX rings.
    let irq_handler: IrqHandler = {
        let hw = Rc::clone(&hw);
        let inflight = Rc::clone(&inflight);
        let tx_set = Rc::clone(&tx_set);
        let rx_set = Rc::clone(&rx_set);
        let rx_paths_irq = rx_paths.clone();
        let name = ifname.to_string();
        Rc::new(move |k| {
            let icr = hw.bar.read32(k, hwreg::ICR);
            if icr & hwreg::ICR_TXDW != 0 {
                let (mut pkts, mut bytes) = (0u64, 0u64);
                let done: Vec<Descriptor> = inflight.borrow_mut().drain(..).collect();
                for d in done {
                    pkts += 1;
                    bytes += d.len as u64;
                    // Completion steering: handback lands on the ring of
                    // the shard that posted the descriptor.
                    let _ = tx_set.complete(k, CpuClass::Kernel, d);
                }
                k.net_tx_done(&name, pkts, bytes);
            }
            if icr & hwreg::ICR_RXT0 != 0 {
                for (slot, len) in hw.rx_harvest(k) {
                    let shard = rx_set.steer(slot as u64);
                    let posted = rx_paths_irq[shard].post(
                        k,
                        Descriptor {
                            buf: BufHandle(slot),
                            len: len as u32,
                            cookie: slot as u64,
                        },
                    );
                    if posted.is_ok() {
                        rx_set.note_post(shard, slot as u64);
                    }
                }
                if rx_paths_irq.iter().any(|p| p.pending() > 0) {
                    let rx_paths_work = rx_paths_irq.clone();
                    let hw_work = Rc::clone(&hw);
                    let name_work = name.clone();
                    k.schedule_work("e1000_rx_drain_task", move |k| {
                        for (i, path) in rx_paths_work.iter().enumerate() {
                            k.shard_scope(i, || {
                                let _ = path.ring_doorbell(k);
                            });
                        }
                        let mut last = None;
                        for path in &rx_paths_work {
                            for d in path.reclaim_completions(k) {
                                let slot = d.cookie as u32;
                                let data = hw_work
                                    .dma
                                    .read_bytes(E1000Hw::rx_buf_off(slot), d.len as usize);
                                let _ = k.netif_rx(
                                    &name_work,
                                    SkBuff {
                                        data,
                                        protocol: 0x0800,
                                    },
                                );
                                hw_work.rx_recycle(k, slot);
                                last = Some(slot);
                            }
                        }
                        if let Some(slot) = last {
                            hw_work.rx_kick(k, slot);
                        }
                    });
                }
            }
            if icr & hwreg::ICR_LSC != 0 {
                k.netif_carrier(&name, hw.link_up(k));
            }
        })
    };

    for i in 0..shards {
        register_nucleus_procs(kernel, channels.shard(i), &hw, Rc::clone(&irq_handler))
            .map_err(|_| KError::Io)?;
    }

    let nuc = Rc::new(NuclearRuntime::new(
        kernel.clone(),
        Rc::clone(channels.shard(0)),
        Some(IRQ_LINE),
    ));

    let xmit = support::sharded_xmit_op(Rc::clone(&tx_set), tx_paths.clone(), BUF_SIZE);

    // insmod: the adapter is homed on the control shard; probe runs there.
    let mut adapter = 0;
    let nuc_init = Rc::clone(&nuc);
    let channels_init = Rc::clone(&channels);
    let name_init = ifname.to_string();
    let adapter_ref = &mut adapter;
    let init_latency_ns = kernel.insmod("e1000_decaf_sharded", move |k| {
        let a = channels_init
            .alloc_shared_at(0, Domain::Nucleus, "e1000_adapter")
            .map_err(|_| KError::NoMem)?;
        *adapter_ref = a;
        let ret = nuc_init
            .upcall_errno("e1000_probe", &[Some(a)], &[])
            .map_err(|_| KError::Io)?;
        if ret < 0 {
            return Err(KError::from_errno(ret).unwrap_or(KError::Io));
        }
        let nuc_open = Rc::clone(&nuc_init);
        let nuc_stop = Rc::clone(&nuc_init);
        k.register_netdev(
            &name_init,
            decaf_simkernel::net::NetDeviceOps {
                open: Rc::new(move |_k| {
                    match nuc_open.upcall_errno("e1000_open", &[Some(a)], &[]) {
                        Ok(0) => Ok(()),
                        Ok(e) => Err(KError::from_errno(e).unwrap_or(KError::Io)),
                        Err(_) => Err(KError::Io),
                    }
                }),
                stop: Rc::new(move |_k| {
                    match nuc_stop.upcall_errno("e1000_close", &[Some(a)], &[]) {
                        Ok(_) => Ok(()),
                        Err(_) => Err(KError::Io),
                    }
                }),
                xmit,
            },
        )?;
        Ok(())
    })?;

    let nuc_wd = Rc::clone(&nuc);
    let channels_wd = Rc::clone(&channels);
    let name_wd = ifname.to_string();
    let watchdog = kernel.timer_create(
        "e1000_watchdog",
        Rc::new(move |k| {
            let nuc = Rc::clone(&nuc_wd);
            let channels = Rc::clone(&channels_wd);
            let name = name_wd.clone();
            let a = adapter;
            k.schedule_work("e1000_watchdog_task", move |k| {
                if nuc.upcall("e1000_watchdog_task", &[Some(a)], &[]).is_ok() {
                    let heap = channels.heap(0, Domain::Nucleus);
                    let up = heap
                        .borrow()
                        .scalar(a, "link_up")
                        .ok()
                        .and_then(|v| v.as_int())
                        .unwrap_or(0);
                    k.netif_carrier(&name, up != 0);
                }
            });
        }),
    );
    kernel.timer_arm_periodic(watchdog, 2_000_000_000);

    let poll_timer = support::sharded_poll_timer(kernel, "e1000_shard_poll", &tx_paths);

    Ok(ShardedE1000 {
        kernel: kernel.clone(),
        hw,
        ifname: ifname.to_string(),
        channels,
        nuc,
        adapter,
        init_latency_ns,
        plan,
        dev,
        tx_paths,
        rx_paths,
        tx_set,
        rx_set,
        watchdog,
        poll_timer,
    })
}

/// Kernel procedures the decaf driver calls down into. These correspond
/// to the slicer's `kernel_entry_points` and `kernel_imports_from_user`.
/// `irq_handler` is what `request_irq` installs — the kernel-resident
/// data path for the copy build, the ring-posting handler for shmring.
fn register_nucleus_procs(
    kernel: &Kernel,
    channel: &Rc<XpcChannel>,
    hw: &Rc<E1000Hw>,
    irq_handler: IrqHandler,
) -> decaf_xpc::XpcResult<()> {
    type ScalarFn = Rc<dyn Fn(&Kernel, &[XdrValue]) -> XdrValue>;
    let scalar_proc = |name: &str, f: ScalarFn| ProcDef {
        name: name.into(),
        arg_types: vec![],
        handler: Rc::new(move |k, _, _, scalars| f(k, scalars)),
    };

    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "eeprom_read",
            Rc::new(move |k, s| {
                XdrValue::UInt(h.eeprom_read(k, s[0].as_uint().unwrap_or(0)) as u32)
            }),
        ),
    )?;
    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "phy_read",
            Rc::new(move |k, s| XdrValue::UInt(h.phy_read(k, s[0].as_uint().unwrap_or(0)) as u32)),
        ),
    )?;
    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "phy_write",
            Rc::new(move |k, s| {
                h.phy_write(
                    k,
                    s[0].as_uint().unwrap_or(0),
                    s[1].as_uint().unwrap_or(0) as u16,
                );
                XdrValue::Int(0)
            }),
        ),
    )?;
    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "setup_tx_resources",
            Rc::new(move |k, _| support::errno_value(h.setup_tx(k))),
        ),
    )?;
    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "setup_rx_resources",
            Rc::new(move |k, _| support::errno_value(h.setup_rx(k))),
        ),
    )?;
    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "free_tx_resources",
            Rc::new(move |k, _| {
                h.down(k);
                XdrValue::Int(0)
            }),
        ),
    )?;
    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "free_rx_resources",
            Rc::new(move |k, _| {
                h.down(k);
                XdrValue::Int(0)
            }),
        ),
    )?;
    let k_handle = kernel.clone();
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "request_irq",
            Rc::new(move |_k, _| {
                support::errno_value(k_handle.request_irq(
                    IRQ_LINE,
                    "e1000_decaf",
                    Rc::clone(&irq_handler),
                ))
            }),
        ),
    )?;
    let k_handle = kernel.clone();
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "free_irq",
            Rc::new(move |_k, _| {
                k_handle.free_irq(IRQ_LINE);
                XdrValue::Int(0)
            }),
        ),
    )?;
    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "up_datapath",
            Rc::new(move |k, _| {
                h.up(k);
                XdrValue::Int(0)
            }),
        ),
    )?;
    let h = Rc::clone(hw);
    channel.register_proc(
        Domain::Nucleus,
        scalar_proc(
            "down_datapath",
            Rc::new(move |k, _| {
                h.down(k);
                XdrValue::Int(0)
            }),
        ),
    )?;
    Ok(())
}

/// Sets an embedded-struct member (`adapter->hw.<member>`) on the decaf
/// heap copy of the adapter.
fn set_hw_member(ch: &XpcChannel, adapter: CAddr, member: &str, value: XdrValue) {
    let heap = ch.heap(Domain::Decaf);
    let mut h = heap.borrow_mut();
    if let Ok(mut hw_val) = h.scalar(adapter, "hw").cloned() {
        hw_val.set_field(member, value);
        let _ = h.set_scalar(adapter, "hw", hw_val);
    }
}

fn set_field(ch: &XpcChannel, adapter: CAddr, field: &str, value: XdrValue) {
    let heap = ch.heap(Domain::Decaf);
    let _ = heap.borrow_mut().set_scalar(adapter, field, value);
}

fn get_int(ch: &XpcChannel, adapter: CAddr, field: &str) -> i32 {
    let heap = ch.heap(Domain::Decaf);
    let v = heap.borrow().scalar(adapter, field).ok().cloned();
    v.and_then(|v| v.as_int()).unwrap_or(0)
}

/// User-level decaf-driver handlers: the converted Java (here: safe Rust)
/// implementations of the user partition.
fn register_decaf_handlers(channel: &Rc<XpcChannel>) -> decaf_xpc::XpcResult<()> {
    // e1000_probe: sw_init + check_options + EEPROM + reset + link setup,
    // mirroring the mini-C bodies.
    channel.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "e1000_probe".into(),
            arg_types: vec!["e1000_adapter".into()],
            handler: Rc::new(|k, ch, args, _| {
                let a = match args[0] {
                    Some(a) => a,
                    None => return XdrValue::Int(KError::Inval.errno()),
                };
                // e1000_sw_init.
                set_field(ch, a, "msg_enable", XdrValue::Int(3));
                set_field(ch, a, "itr", XdrValue::Int(8000));
                set_field(ch, a, "rx_csum", XdrValue::Int(1));
                set_hw_member(ch, a, "mac_type", XdrValue::Int(5));
                set_hw_member(ch, a, "media_type", XdrValue::Int(1));
                set_hw_member(ch, a, "autoneg", XdrValue::Int(1));
                // e1000_check_options: range/set-membership validation.
                set_field(ch, a, "speed", XdrValue::Int(1000));
                set_field(ch, a, "duplex", XdrValue::Int(1));
                // e1000_init_eeprom: MAC + checksum through downcalls.
                let mut mac = [0u8; 6];
                for w in 0..3u32 {
                    let word = ch
                        .call(k, Domain::Decaf, "eeprom_read", &[], &[XdrValue::UInt(w)])
                        .ok()
                        .and_then(|v| v.as_uint())
                        .unwrap_or(0) as u16;
                    mac[w as usize * 2] = (word & 0xff) as u8;
                    mac[w as usize * 2 + 1] = (word >> 8) as u8;
                }
                let _checksum = ch
                    .call(k, Domain::Decaf, "eeprom_read", &[], &[XdrValue::UInt(63)])
                    .ok();
                set_field(ch, a, "mac", XdrValue::Opaque(mac.to_vec()));
                set_hw_member(ch, a, "fc_mode", XdrValue::Int(3));
                // e1000_reset_hw_decaf.
                decaf_writel(k, ch, hwreg::CTRL, hwreg::CTRL_RST);
                let _ = decaf_readl(k, ch, hwreg::STATUS);
                decaf_writel(k, ch, hwreg::IMC, 0xffff_ffff);
                let _ = decaf_readl(k, ch, hwreg::ICR);
                // Save PCI config space (the @exp(PCI_LEN) array exists
                // for this path).
                for w in 0..8u64 {
                    let _ = decaf_readl(k, ch, w * 4);
                }
                // e1000_setup_link + the Figure 5 DSP sequence.
                let phy_read = |k: &Kernel, reg: u32| {
                    ch.call(k, Domain::Decaf, "phy_read", &[], &[XdrValue::UInt(reg)])
                        .ok()
                        .and_then(|v| v.as_uint())
                        .unwrap_or(0)
                };
                // PHY writes are posted: defer them so a whole DSP
                // programming sequence crosses in one batched flush.
                let phy_write = |k: &Kernel, reg: u32, val: u32| {
                    let _ = ch.call_deferred(
                        k,
                        Domain::Decaf,
                        "phy_write",
                        &[],
                        &[XdrValue::UInt(reg), XdrValue::UInt(val)],
                    );
                };
                let _ctrl = phy_read(k, 0);
                phy_write(k, 0, 0x1140);
                phy_write(k, 4, 0x0de0);
                phy_write(k, 9, 0x0300);
                let _status = phy_read(k, 1);
                for (reg, val) in [
                    (29u32, 0x001f_u32),
                    (30, 0x0646),
                    (29, 0x001b),
                    (30, 0x8fae),
                ] {
                    phy_write(k, reg, val);
                }
                let _ = phy_read(k, 30);
                XdrValue::Int(0)
            }),
        },
    )?;

    // e1000_open: the Figure 4 function. Result-based staged cleanup —
    // the Rust rendition of the nested exception handlers.
    channel.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "e1000_open".into(),
            arg_types: vec!["e1000_adapter".into()],
            handler: Rc::new(|k, ch, args, _| {
                let a = match args[0] {
                    Some(a) => a,
                    None => return XdrValue::Int(KError::Inval.errno()),
                };
                let down = |k: &Kernel, proc: &str| -> Result<(), i32> {
                    match ch.call(k, Domain::Decaf, proc, &[], &[]) {
                        Ok(XdrValue::Int(0)) => Ok(()),
                        Ok(XdrValue::Int(e)) => Err(e),
                        _ => Err(KError::Io.errno()),
                    }
                };
                // Stage 1: transmit resources.
                if let Err(e) = down(k, "setup_tx_resources") {
                    let _ = down(k, "down_datapath"); // e1000_reset
                    return XdrValue::Int(e);
                }
                // Stage 2: receive resources; on failure free stage 1.
                if let Err(e) = down(k, "setup_rx_resources") {
                    let _ = down(k, "free_tx_resources");
                    return XdrValue::Int(e);
                }
                // Stage 3: the interrupt line; on failure free stages 1-2.
                if let Err(e) = down(k, "request_irq") {
                    let _ = down(k, "free_rx_resources");
                    let _ = down(k, "free_tx_resources");
                    return XdrValue::Int(e);
                }
                // Power up the PHY and start the data path.
                let _ = ch.call(k, Domain::Decaf, "phy_read", &[], &[XdrValue::UInt(0)]);
                let _ = ch.call_deferred(
                    k,
                    Domain::Decaf,
                    "phy_write",
                    &[],
                    &[XdrValue::UInt(0), XdrValue::UInt(0x1000)],
                );
                if let Err(e) = down(k, "up_datapath") {
                    let _ = down(k, "free_irq");
                    let _ = down(k, "free_rx_resources");
                    let _ = down(k, "free_tx_resources");
                    return XdrValue::Int(e);
                }
                set_field(ch, a, "link_up", XdrValue::Int(1));
                XdrValue::Int(0)
            }),
        },
    )?;

    channel.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "e1000_close".into(),
            arg_types: vec!["e1000_adapter".into()],
            handler: Rc::new(|k, ch, args, _| {
                if let Some(a) = args[0] {
                    set_field(ch, a, "link_up", XdrValue::Int(0));
                }
                let _ = ch.call(k, Domain::Decaf, "down_datapath", &[], &[]);
                let _ = ch.call(k, Domain::Decaf, "free_irq", &[], &[]);
                XdrValue::Int(0)
            }),
        },
    )?;

    channel.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "e1000_watchdog_task".into(),
            arg_types: vec!["e1000_adapter".into()],
            handler: Rc::new(|k, ch, args, _| {
                let a = match args[0] {
                    Some(a) => a,
                    None => return XdrValue::Int(KError::Inval.errno()),
                };
                let status = decaf_readl(k, ch, hwreg::STATUS);
                let up = status & hwreg::STATUS_LU != 0;
                set_field(ch, a, "link_up", XdrValue::Int(up as i32));
                let events = get_int(ch, a, "watchdog_events");
                set_field(ch, a, "watchdog_events", XdrValue::Int(events + 1));
                XdrValue::Int(0)
            }),
        },
    )?;

    // Management paths (ethtool get/set analogues).
    channel.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "e1000_get_settings".into(),
            arg_types: vec!["e1000_adapter".into()],
            handler: Rc::new(|_k, ch, args, _| {
                let a = match args[0] {
                    Some(a) => a,
                    None => return XdrValue::Int(0),
                };
                XdrValue::Int(get_int(ch, a, "speed"))
            }),
        },
    )?;
    channel.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "e1000_set_settings".into(),
            arg_types: vec!["e1000_adapter".into()],
            handler: Rc::new(|k, ch, args, scalars| {
                let a = match args[0] {
                    Some(a) => a,
                    None => return XdrValue::Int(KError::Inval.errno()),
                };
                let speed = scalars.first().and_then(|v| v.as_int()).unwrap_or(1000);
                set_field(ch, a, "speed", XdrValue::Int(speed));
                decaf_writel(k, ch, hwreg::CTRL, hwreg::CTRL_RST);
                XdrValue::Int(0)
            }),
        },
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use decaf_simkernel::SkBuff;

    #[test]
    fn install_probes_through_xpc() {
        let k = Kernel::new();
        let drv = install(&k, "eth0").unwrap();
        assert!(drv.init_latency_ns > 0);
        // Initialization crossed the boundary dozens of times.
        let crossings = drv.crossings();
        assert!(
            (20..300).contains(&crossings),
            "expected tens of crossings during init, got {crossings}"
        );
        // The decaf driver populated the shared adapter: the nucleus can
        // read back the MAC the user-level code assembled.
        let heap = drv.channel.heap(Domain::Nucleus);
        let mac = heap.borrow().scalar(drv.adapter, "mac").unwrap().clone();
        assert_eq!(mac.as_opaque().unwrap(), super::super::MAC);
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn open_then_traffic_stays_in_kernel() {
        let k = Kernel::new();
        let drv = install(&k, "eth0").unwrap();
        k.netdev_open("eth0").unwrap();
        k.schedule_point();
        let crossings_after_open = drv.crossings();
        for _ in 0..20 {
            k.net_xmit("eth0", SkBuff::synthetic(1400, 9, 0x0800))
                .unwrap();
            k.schedule_point();
        }
        let st = k.net_stats("eth0");
        assert_eq!(st.tx_packets, 20);
        assert_eq!(st.rx_packets, 20);
        assert_eq!(
            drv.crossings(),
            crossings_after_open,
            "the data path must not touch the decaf driver"
        );
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn watchdog_upcalls_every_two_seconds() {
        let k = Kernel::new();
        let drv = install(&k, "eth0").unwrap();
        k.netdev_open("eth0").unwrap();
        let invocations_before = drv.decaf_invocations();
        k.run_for(6_500_000_000);
        let delta = drv.decaf_invocations() - invocations_before;
        assert_eq!(delta, 3, "one upcall per 2 s watchdog period");
        assert!(k.carrier_ok("eth0"));
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn open_failure_runs_staged_cleanup() {
        let k = Kernel::new();
        let drv = install(&k, "eth0").unwrap();
        // Occupy the IRQ line so the decaf driver's request_irq fails.
        k.request_irq(IRQ_LINE, "squatter", Rc::new(|_| {}))
            .unwrap();
        let err = k.netdev_open("eth0").unwrap_err();
        assert_eq!(err, KError::Busy);
        // The adapter must not report link-up after the failed open.
        let heap = drv.channel.heap(Domain::Nucleus);
        let up = heap
            .borrow()
            .scalar(drv.adapter, "link_up")
            .unwrap()
            .as_int();
        assert_eq!(up, Some(0));
    }

    #[test]
    fn shmring_build_moves_packets_with_zero_marshaled_payload() {
        let k = Kernel::new();
        let drv = install_shmring(&k, "eth0").unwrap();
        k.netdev_open("eth0").unwrap();
        k.schedule_point();
        let before = drv.channel.stats();
        let copied_before = k.stats().bytes_copied;
        for i in 0..32 {
            k.net_xmit("eth0", SkBuff::synthetic(1400, i as u8, 0x0800))
                .unwrap();
            k.schedule_point();
            k.run_for(200_000);
        }
        k.run_for(2 * decaf_simkernel::costs::DOORBELL_COALESCE_NS);
        let st = k.net_stats("eth0");
        assert_eq!(st.tx_packets, 32, "all frames transmitted through the ring");
        assert_eq!(
            st.rx_packets, 32,
            "loopback frames received through the ring"
        );
        let after = drv.channel.stats();
        // The data path crossed (descriptors + doorbells), but zero
        // payload bytes went through the XDR marshaler: the per-doorbell
        // wire cost is a handful of header bytes, independent of the
        // 1400-byte payloads.
        let marshaled = (after.bytes_in + after.bytes_out) - (before.bytes_in + before.bytes_out);
        assert!(
            marshaled < 32 * 64,
            "marshaled {marshaled} B for 44800 payload B — payload leaked into the marshaler"
        );
        assert_eq!(
            after.ring_posts - before.ring_posts,
            64,
            "one TX and one RX descriptor per packet"
        );
        assert!(after.doorbells > before.doorbells);
        assert!(after.ring_occupancy_hwm >= 1);
        // Copy audit: exactly one copy into the pool and one into the
        // stack per packet — same as the native build.
        assert_eq!(k.stats().bytes_copied - copied_before, 2 * 32 * 1400);
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn shmring_marshaled_bytes_independent_of_payload_size() {
        // The zero-copy proof: run the same packet count at two payload
        // sizes; the marshaled-byte counters must come out identical.
        let run = |pkt_len: usize| {
            let k = Kernel::new();
            let drv = install_shmring(&k, "eth0").unwrap();
            k.netdev_open("eth0").unwrap();
            k.schedule_point();
            let before = drv.channel.stats();
            for _ in 0..TX_DOORBELL_WATERMARK * 2 {
                k.net_xmit("eth0", SkBuff::synthetic(pkt_len, 7, 0x0800))
                    .unwrap();
            }
            k.run_for(2 * decaf_simkernel::costs::DOORBELL_COALESCE_NS);
            let after = drv.channel.stats();
            (
                after.bytes_in - before.bytes_in,
                after.bytes_out - before.bytes_out,
            )
        };
        assert_eq!(run(64), run(1500), "payload size must not reach the wire");
    }

    #[test]
    fn shmring_batches_descriptors_per_doorbell_at_line_rate() {
        let k = Kernel::new();
        let drv = install_shmring(&k, "eth0").unwrap();
        k.netdev_open("eth0").unwrap();
        k.schedule_point();
        let before = drv.channel.stats();
        // Back-to-back sends (no virtual time between them): the
        // watermark, not the deadline, should trigger the doorbells.
        for _ in 0..TX_DOORBELL_WATERMARK * 4 {
            k.net_xmit("eth0", SkBuff::synthetic(1000, 1, 0x0800))
                .unwrap();
        }
        let after = drv.channel.stats();
        let tx_doorbells = after.doorbells - before.doorbells;
        assert_eq!(tx_doorbells, 4, "one doorbell per watermark batch");
        assert_eq!(
            after.ring_occupancy_hwm as usize, TX_DOORBELL_WATERMARK,
            "ring fills to the watermark between doorbells"
        );
    }

    #[test]
    fn sharded_build_moves_packets_across_per_shard_rings() {
        let k = Kernel::new();
        let drv = install_sharded(&k, "eth0", 4).unwrap();
        assert_eq!(drv.shards(), 4);
        k.netdev_open("eth0").unwrap();
        k.schedule_point();
        let before = drv.channels.stats();
        for i in 0..48u64 {
            k.net_xmit("eth0", SkBuff::synthetic(1200, i as u8, 0x0800))
                .unwrap();
            k.schedule_point();
            k.run_for(100_000);
        }
        k.run_for(4 * decaf_simkernel::costs::DOORBELL_COALESCE_NS);
        let st = k.net_stats("eth0");
        assert_eq!(st.tx_packets, 48, "all frames transmitted");
        assert_eq!(st.rx_packets, 48, "loopback frames received");
        // Flow steering spread the frames: at least two TX shards and at
        // least two shard channels saw traffic.
        let tx_rings_used = (0..4)
            .filter(|&i| drv.tx_set.ring(i).stats().posts > 0)
            .count();
        assert!(
            tx_rings_used >= 2,
            "frames stuck on {tx_rings_used} ring(s)"
        );
        // Descriptor conservation: everything posted was completed and
        // steered home; nothing in flight once quiesced.
        assert!(drv.tx_set.conserved());
        assert!(drv.rx_set.conserved());
        assert_eq!(drv.tx_set.in_flight(), 0, "{:?}", drv.tx_set.stats());
        assert_eq!(drv.rx_set.in_flight(), 0, "{:?}", drv.rx_set.stats());
        assert_eq!(drv.tx_set.stats().posted, 48);
        // Zero payload bytes through the marshaler, as in the unsharded
        // shmring build.
        let after = drv.channels.stats();
        let marshaled = (after.bytes_in + after.bytes_out) - (before.bytes_in + before.bytes_out);
        assert!(marshaled < 48 * 64, "payload leaked into the marshaler");
        // Per-shard cost accounting saw parallel work.
        let busy = k.shard_busy_ns();
        assert!(
            busy.iter().filter(|&&ns| ns > 0).count() >= 2,
            "expected work on ≥2 shards: {busy:?}"
        );
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn sharded_build_with_one_shard_matches_shmring_copy_audit() {
        // shards=1 must behave exactly like the unsharded shmring build:
        // same packet delivery, same copy accounting.
        const PKTS: u64 = 20;
        const LEN: usize = 1000;
        let run = |sharded: bool| {
            let k = Kernel::new();
            if sharded {
                install_sharded(&k, "eth0", 1).map(|_| ()).unwrap();
            } else {
                install_shmring(&k, "eth0").map(|_| ()).unwrap();
            }
            k.netdev_open("eth0").unwrap();
            k.schedule_point();
            let before = k.stats().bytes_copied;
            for i in 0..PKTS {
                k.net_xmit("eth0", SkBuff::synthetic(LEN, i as u8, 0x0800))
                    .unwrap();
                k.schedule_point();
                k.run_for(200_000);
            }
            k.run_for(2 * decaf_simkernel::costs::DOORBELL_COALESCE_NS);
            assert_eq!(k.net_stats("eth0").tx_packets, PKTS);
            k.stats().bytes_copied - before
        };
        assert_eq!(run(true), run(false), "copy audit must not regress");
    }

    #[test]
    fn sharded_probe_and_watchdog_ride_the_control_shard() {
        let k = Kernel::new();
        let drv = install_sharded(&k, "eth0", 4).unwrap();
        assert!(drv.init_latency_ns > 0);
        // The decaf driver populated the shared adapter on shard 0.
        let heap = drv.channels.heap(0, Domain::Nucleus);
        let mac = heap.borrow().scalar(drv.adapter, "mac").unwrap().clone();
        assert_eq!(mac.as_opaque().unwrap(), super::super::MAC);
        assert_eq!(drv.channels.home_of(drv.adapter), Some(0));
        // Control traffic lands on shard 0 only.
        assert!(drv.channels.shard_stats(0).round_trips > 0);
        for i in 1..4 {
            assert_eq!(
                drv.channels.shard_stats(i).round_trips,
                0,
                "shard {i} saw control traffic"
            );
        }
        k.netdev_open("eth0").unwrap();
        k.run_for(4_500_000_000);
        assert!(k.carrier_ok("eth0"));
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn runtime_split_matches_slicer_plan() {
        let k = Kernel::new();
        let drv = install(&k, "eth0").unwrap();
        // Every decaf-registered proc must be a user-partition function in
        // the plan; nucleus procs must not be decaf functions.
        for proc in drv.channel.proc_names(Domain::Decaf) {
            assert!(
                drv.plan.decaf_fns.contains(&proc),
                "`{proc}` is registered decaf but the slicer placed it elsewhere"
            );
        }
        for proc in drv.channel.proc_names(Domain::Nucleus) {
            assert!(
                !drv.plan.decaf_fns.contains(&proc),
                "`{proc}` is registered in the nucleus but sliced to decaf"
            );
        }
    }

    #[test]
    fn poll_mode_delivers_frames_without_rx_doorbells() {
        const PKTS: u64 = 24;
        let run = |poll: bool| {
            let k = Kernel::new();
            let drv = if poll {
                install_shmring_poll(&k, "eth0").unwrap()
            } else {
                install_shmring(&k, "eth0").unwrap()
            };
            assert_eq!(
                drv.rx_mode,
                if poll {
                    RxMode::Poll
                } else {
                    RxMode::Interrupt
                }
            );
            k.netdev_open("eth0").unwrap();
            k.schedule_point();
            for i in 0..PKTS {
                k.net_xmit("eth0", SkBuff::synthetic(800, i as u8, 0x0800))
                    .unwrap();
                k.schedule_point();
                k.run_for(200_000);
            }
            k.run_for(2 * decaf_simkernel::costs::DOORBELL_COALESCE_NS);
            let st = k.net_stats("eth0");
            assert_eq!(st.tx_packets, PKTS);
            assert_eq!(st.rx_packets, PKTS, "every loopback frame delivered");
            assert!(k.violations().is_empty(), "{:?}", k.violations());
            drv.channel.stats().doorbells
        };
        // TX doorbells ring in both modes; the poll build must shed
        // every RX doorbell crossing (roughly one per packet at this
        // pacing), receiving through budgeted probes instead.
        let interrupt_mode = run(false);
        let poll_mode = run(true);
        assert!(
            poll_mode < interrupt_mode,
            "poll receive must shed doorbells: poll {poll_mode} vs interrupt {interrupt_mode}"
        );
    }

    #[test]
    fn sharded_async_transport_overlaps_doorbell_crossings() {
        let k = Kernel::new();
        let drv = install_sharded(&k, "eth0", 4).unwrap();
        assert_eq!(
            drv.channels.shard(0).transport_kind(),
            decaf_xpc::TransportKind::Async
        );
        k.netdev_open("eth0").unwrap();
        k.schedule_point();
        for i in 0..48u64 {
            k.net_xmit("eth0", SkBuff::synthetic(900, i as u8, 0x0800))
                .unwrap();
            k.schedule_point();
            k.run_for(150_000);
        }
        k.run_for(2 * decaf_simkernel::costs::DOORBELL_COALESCE_NS);
        drv.channels.flush_all(&k).unwrap();
        drv.channels.harvest_all(&k);
        let s = drv.channels.stats();
        assert!(s.tokens_issued > 0, "doorbells launched through tokens");
        assert!(
            s.overlap_ns > 0,
            "posting must overlap launched crossings: {s:?}"
        );
        assert_eq!(
            s.tokens_issued,
            s.tokens_harvested + s.tokens_cancelled,
            "token conservation"
        );
        assert_eq!(drv.channels.tokens_outstanding(), 0);
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }
}
