//! Mini-C source of the E1000 driver — DriverSlicer's input.
//!
//! A condensed but structurally faithful rendition of the Linux 2.6.18.1
//! `e1000` driver (the paper's case-study driver, §5): interrupt handler
//! and clean/xmit data path marked as critical roots, the four ethtool
//! functions with the interrupt data race pinned `@kernel_only`, and the
//! large initialization/configuration surface that moves to the decaf
//! driver. The `config_space` field carries the paper's own `@exp(PCI_LEN)`
//! annotation (Figure 3).

/// The driver source.
pub const SOURCE: &str = r#"
const PCI_LEN = 256;
const TX_RING = 64;
const RX_RING = 64;

struct e1000_tx_ring {
    int count;
    int next_to_use;
    int next_to_clean;
};

struct e1000_rx_ring {
    int count;
    int next_to_clean;
};

struct e1000_hw {
    int mac_type;
    int phy_id;
    int media_type;
    int autoneg;
    u8 mac[6];
    int fc_mode;
    int wait_autoneg_complete;
};

struct e1000_adapter {
    int msg_enable;
    int link_up;
    int speed;
    int duplex;
    int itr;
    int rx_csum;
    int wol;
    int smartspeed;
    u8 mac[6];
    struct e1000_hw hw;
    struct e1000_tx_ring *tx_ring;
    struct e1000_rx_ring *rx_ring;
    u32 *config_space @exp(PCI_LEN);
    unsigned long long tx_packets;
    unsigned long long rx_packets;
    int watchdog_events;
    int irq_count;
    int in_ifs_mode;
};

/* ------------------------------------------------------------------ */
/* Kernel partition: interrupt handling and the data path.            */
/* ------------------------------------------------------------------ */

/* Top-half interrupt handler. */
int e1000_intr(struct e1000_adapter *adapter) @irq {
    int icr;
    adapter->irq_count += 1;
    icr = readl(200);
    if (icr == 0) { return 0; }
    e1000_clean_tx_irq(adapter);
    e1000_clean_rx_irq(adapter);
    return 1;
}

/* Reclaims completed transmit descriptors. */
int e1000_clean_tx_irq(struct e1000_adapter *adapter) @datapath {
    adapter->tx_packets += 1;
    return 0;
}

/* Receives packets from the descriptor ring. */
int e1000_clean_rx_irq(struct e1000_adapter *adapter) @datapath {
    adapter->rx_packets += 1;
    e1000_alloc_rx_buffers(adapter);
    netif_rx(adapter);
    return 0;
}

/* Replenishes receive buffers; called from the receive path. */
int e1000_alloc_rx_buffers(struct e1000_adapter *adapter) {
    writel(776, 63);
    return 0;
}

/* Hard transmit entry: high bandwidth, stays in the kernel. */
int e1000_xmit_frame(struct e1000_adapter *adapter, int len) @datapath {
    struct e1000_tx_ring *ring;
    ring = adapter->tx_ring;
    e1000_tx_map(adapter, len);
    e1000_tx_queue(adapter, len);
    return 0;
}

int e1000_tx_map(struct e1000_adapter *adapter, int len) {
    return 0;
}

int e1000_tx_queue(struct e1000_adapter *adapter, int len) {
    writel(14360, 1);
    return 0;
}

/* The four ethtool functions with the explicit interrupt data race the
 * paper leaves in the driver nucleus (Section 5). */
int e1000_intr_test(struct e1000_adapter *adapter) @kernel_only {
    int shared_var;
    shared_var = adapter->irq_count;
    if (shared_var == 0) { return 1; }
    return 0;
}
int e1000_eeprom_test(struct e1000_adapter *adapter) @kernel_only { return 0; }
int e1000_loopback_test(struct e1000_adapter *adapter) @kernel_only { return 0; }
int e1000_link_test(struct e1000_adapter *adapter) @kernel_only { return 0; }

/* ------------------------------------------------------------------ */
/* User partition: initialization, configuration, management.         */
/* ------------------------------------------------------------------ */

/* Module probe: discovers the adapter and prepares software state. */
int e1000_probe(struct e1000_adapter *adapter) @export {
    int err;
    err = e1000_sw_init(adapter);
    if (err) return err;
    err = e1000_check_options(adapter, 0);
    if (err) return err;
    err = e1000_init_eeprom(adapter);
    if (err) return err;
    err = e1000_reset_hw_decaf(adapter);
    if (err) return err;
    err = e1000_setup_link(adapter);
    if (err) return err;
    return 0;
}

int e1000_sw_init(struct e1000_adapter *adapter) @export {
    adapter->msg_enable = 3;
    adapter->itr = 8000;
    adapter->rx_csum = 1;
    adapter->hw.mac_type = 5;
    adapter->hw.media_type = 1;
    adapter->hw.autoneg = 1;
    return 0;
}

/* Validates module parameters: range and set membership checks. */
int e1000_check_options(struct e1000_adapter *adapter, int speed) @export {
    if (speed == 0) { adapter->speed = 1000; }
    if (speed == 100) { adapter->speed = 100; }
    adapter->duplex = 1;
    e1000_validate_option(adapter, speed);
    return 0;
}

int e1000_validate_option(struct e1000_adapter *adapter, int value) {
    if (value < 0) { return 0 - 22; }
    return 0;
}

/* Reads the MAC address out of the EEPROM. The MAC is assembled in
 * converted (managed-language) code, invisible to the C analysis, so the
 * field carries an explicit DECAF annotation (Section 3.2.4). */
int e1000_init_eeprom(struct e1000_adapter *adapter) @export {
    int word0;
    int word1;
    int word2;
    DECAF_WVAR(adapter->mac);
    word0 = eeprom_read(0);
    word1 = eeprom_read(1);
    word2 = eeprom_read(2);
    adapter->hw.fc_mode = 3;
    e1000_validate_eeprom_checksum(adapter);
    return 0;
}

int e1000_validate_eeprom_checksum(struct e1000_adapter *adapter) {
    int sum;
    sum = eeprom_read(63);
    if (sum == 0) { return 0 - 5; }
    return 0;
}

/* Full hardware reset executed from user level through downcalls. */
int e1000_reset_hw_decaf(struct e1000_adapter *adapter) @export {
    writel(0, 67108864);
    readl(8);
    writel(216, 4294967295);
    readl(192);
    return 0;
}

/* Copper link setup: PHY register sequence. */
int e1000_setup_link(struct e1000_adapter *adapter) @export {
    int ctrl;
    int status;
    ctrl = phy_read(0);
    phy_write(0, 4416);
    phy_write(4, 3552);
    phy_write(9, 768);
    status = phy_read(1);
    if (status == 0) { adapter->link_up = 0; }
    e1000_config_dsp_after_link_change(adapter);
    return 0;
}

/* The Figure 5 function: PHY DSP configuration. */
int e1000_config_dsp_after_link_change(struct e1000_adapter *adapter) {
    int ret_val;
    int phy_saved_data;
    ret_val = phy_read(12123);
    if (ret_val) return ret_val;
    ret_val = phy_write(12123, 3);
    if (ret_val) return ret_val;
    ret_val = phy_write(0, 5632);
    if (ret_val) return ret_val;
    ret_val = phy_read(12123);
    if (ret_val) return ret_val;
    phy_write(29, 31);
    ret_val = phy_write(30, 1606);
    phy_write(29, 27);
    ret_val = phy_write(30, 18446);
    phy_read(30);
    return 0;
}

/* Interface bring-up, the Figure 4 function: staged resource
 * acquisition with cleanup on every failure path. */
int e1000_open(struct e1000_adapter *adapter) @export {
    int err;
    err = e1000_setup_all_tx_resources(adapter);
    if (err) goto err_setup_tx;
    err = e1000_setup_all_rx_resources(adapter);
    if (err) goto err_setup_rx;
    err = e1000_request_irq_decaf(adapter);
    if (err) goto err_req_irq;
    e1000_power_up_phy(adapter);
    err = e1000_up(adapter);
    if (err) goto err_up;
    adapter->link_up = 1;
    return 0;
err_up:
    e1000_free_irq_decaf(adapter);
err_req_irq:
    e1000_free_all_rx_resources(adapter);
err_setup_rx:
    e1000_free_all_tx_resources(adapter);
err_setup_tx:
    e1000_reset_hw_decaf(adapter);
    return err;
}

int e1000_close(struct e1000_adapter *adapter) @export {
    adapter->link_up = 0;
    e1000_down(adapter);
    e1000_free_irq_decaf(adapter);
    e1000_free_all_rx_resources(adapter);
    e1000_free_all_tx_resources(adapter);
    return 0;
}

int e1000_setup_all_tx_resources(struct e1000_adapter *adapter) @export {
    return setup_tx_resources(adapter);
}
int e1000_setup_all_rx_resources(struct e1000_adapter *adapter) @export {
    return setup_rx_resources(adapter);
}
int e1000_free_all_tx_resources(struct e1000_adapter *adapter) @export {
    return free_tx_resources(adapter);
}
int e1000_free_all_rx_resources(struct e1000_adapter *adapter) @export {
    return free_rx_resources(adapter);
}
int e1000_request_irq_decaf(struct e1000_adapter *adapter) @export {
    return request_irq(adapter);
}
int e1000_free_irq_decaf(struct e1000_adapter *adapter) @export {
    return free_irq(adapter);
}
int e1000_power_up_phy(struct e1000_adapter *adapter) @export {
    int reg;
    reg = phy_read(0);
    phy_write(0, 4096);
    return 0;
}
int e1000_up(struct e1000_adapter *adapter) @export {
    writel(0, 64);
    writel(208, 151);
    return up_datapath(adapter);
}
int e1000_down(struct e1000_adapter *adapter) @export {
    writel(216, 4294967295);
    return down_datapath(adapter);
}

/* Watchdog: runs every two seconds, deferred from a timer to a work
 * item so it may execute in the decaf driver (Section 3.1.3). */
int e1000_watchdog_task(struct e1000_adapter *adapter) @export {
    int status;
    status = readl(8);
    adapter->watchdog_events += 1;
    if (status == 0) { adapter->link_up = 0; }
    e1000_update_stats(adapter);
    e1000_smartspeed(adapter);
    return 0;
}

int e1000_update_stats(struct e1000_adapter *adapter) {
    unsigned long long tpt;
    tpt = readl(16596);
    adapter->tx_packets += tpt;
    return 0;
}

int e1000_smartspeed(struct e1000_adapter *adapter) {
    int phy_status;
    if (adapter->smartspeed == 0) { return 0; }
    phy_status = phy_read(1);
    return 0;
}

/* ethtool get/set paths that are safe at user level. */
int e1000_get_settings(struct e1000_adapter *adapter) @export {
    int s;
    s = adapter->speed;
    return s;
}
int e1000_set_settings(struct e1000_adapter *adapter, int speed) @export {
    adapter->speed = speed;
    e1000_reset_hw_decaf(adapter);
    return 0;
}
int e1000_get_drvinfo(struct e1000_adapter *adapter) @export {
    return adapter->msg_enable;
}
int e1000_set_wol(struct e1000_adapter *adapter, int wol) @export {
    adapter->wol = wol;
    return 0;
}

/* Power management: the classic rarely-executed complex logic the
 * paper calls ideal to move out of the kernel. */
int e1000_suspend(struct e1000_adapter *adapter) @export {
    int i;
    i = save_config_space(adapter);
    if (i) return i;
    e1000_down(adapter);
    writel(0, 0);
    return 0;
}
int e1000_resume(struct e1000_adapter *adapter) @export {
    int err;
    err = restore_config_space(adapter);
    if (err) return err;
    err = e1000_reset_hw_decaf(adapter);
    if (err) return err;
    return e1000_up(adapter);
}
int save_config_space(struct e1000_adapter *adapter) {
    return pci_save_state(adapter);
}
int restore_config_space(struct e1000_adapter *adapter) {
    return pci_restore_state(adapter);
}

/* Sloppy legacy paths: the audit pass flags these (Section 5.1 found
 * 28 such cases in the real driver). */
int e1000_legacy_tweak_phy(struct e1000_adapter *adapter) {
    int ret_val;
    phy_write(16, 104);
    ret_val = phy_read(17);
    adapter->in_ifs_mode = 1;
    return 0;
}
int e1000_legacy_flush(struct e1000_adapter *adapter) {
    writel(216, 0);
    eeprom_read(10);
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use decaf_slicer::{slice, SliceConfig};

    #[test]
    fn e1000_source_slices() {
        let plan = slice(SOURCE, &SliceConfig::default()).unwrap();
        // Interrupt + data path + ethtool races stay in the kernel.
        for f in [
            "e1000_intr",
            "e1000_clean_tx_irq",
            "e1000_clean_rx_irq",
            "e1000_alloc_rx_buffers",
            "e1000_xmit_frame",
            "e1000_intr_test",
        ] {
            assert!(
                plan.kernel_fns.contains(&f.to_string()),
                "{f} must be kernel"
            );
        }
        // The big management surface moves out.
        for f in [
            "e1000_probe",
            "e1000_open",
            "e1000_watchdog_task",
            "e1000_suspend",
        ] {
            assert!(plan.decaf_fns.contains(&f.to_string()), "{f} must be decaf");
        }
        // Most functions move to user level, as in Table 2 (>75%).
        assert!(
            plan.user_fraction() > 0.6,
            "user fraction {} too low",
            plan.user_fraction()
        );
        // The Figure 3 wrapper struct is generated.
        assert!(plan.spec.struct_fields("array256_uint32_t").is_ok());
    }

    #[test]
    fn e1000_masks_cover_decaf_accessed_fields() {
        use decaf_xdr::mask::Direction;
        let plan = slice(SOURCE, &SliceConfig::default()).unwrap();
        assert!(plan
            .masks
            .includes("e1000_adapter", "link_up", Direction::Out));
        assert!(plan
            .masks
            .includes("e1000_adapter", "msg_enable", Direction::Out));
        // Data-path counters touched only by the kernel stay private...
        // (tx_packets is also updated by the decaf watchdog, so it crosses.)
        assert!(!plan
            .masks
            .includes("e1000_adapter", "irq_count", Direction::In));
    }
}
