//! The Intel E1000 gigabit driver: shared hardware logic, native build,
//! decaf build, and the mini-C source for DriverSlicer.

pub mod decaf;
pub mod minic;
pub mod native;

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use decaf_simdev::e1000 as hwreg;
use decaf_simdev::E1000Device;
use decaf_simkernel::{DmaMemory, KError, KResult, Kernel, MmioHandle, MmioRegion, SkBuff};

/// Descriptors per ring.
pub const N_DESC: u32 = 64;
/// Per-buffer size.
pub const BUF_SIZE: usize = 2048;
/// DMA offset of the transmit descriptor ring.
pub const TX_RING_OFF: usize = 0x0000;
/// DMA offset of the receive descriptor ring.
pub const RX_RING_OFF: usize = 0x0400;
/// DMA offset of the first transmit buffer.
pub const TX_BUF_OFF: usize = 0x1_0000;
/// DMA offset of the first receive buffer.
pub const RX_BUF_OFF: usize = 0x3_0000;
/// The MAC programmed into the simulated EEPROM.
pub const MAC: [u8; 6] = [0x00, 0x1b, 0x21, 0x6a, 0x7b, 0x8c];
/// IRQ line the platform assigns the adapter.
pub const IRQ_LINE: u32 = 11;

/// Creates the device model and plugs it into the PCI bus.
///
/// Returns the register window, the DMA region, and a handle to the
/// model (workloads use it to inject external traffic).
pub fn attach(kernel: &Kernel) -> (MmioRegion, DmaMemory, Rc<RefCell<E1000Device>>) {
    let dma = DmaMemory::new(512 * 1024);
    let dev = Rc::new(RefCell::new(E1000Device::new(MAC, IRQ_LINE, dma.clone())));
    let handle: MmioHandle = dev.clone();
    kernel.pci_add_device(decaf_simkernel::pci::PciDevice {
        vendor: 0x8086,
        device: 0x100e,
        irq_line: IRQ_LINE,
        bars: vec![handle.clone()],
        name: "e1000".into(),
    });
    (MmioRegion::new(handle), dma, dev)
}

/// Kernel-resident E1000 hardware state: descriptor rings and the
/// register window. Shared verbatim by the native and decaf builds — the
/// data path never leaves the kernel in either.
pub struct E1000Hw {
    /// BAR 0 register window.
    pub bar: MmioRegion,
    /// Shared DMA region.
    pub dma: DmaMemory,
    next_tx: Cell<u32>,
    next_rx: Cell<u32>,
    tx_inflight_bytes: Cell<u64>,
    tx_inflight_pkts: Cell<u64>,
}

impl E1000Hw {
    /// Wraps the register window and DMA region.
    pub fn new(bar: MmioRegion, dma: DmaMemory) -> Self {
        E1000Hw {
            bar,
            dma,
            next_tx: Cell::new(0),
            next_rx: Cell::new(0),
            tx_inflight_bytes: Cell::new(0),
            tx_inflight_pkts: Cell::new(0),
        }
    }

    /// Reads one EEPROM word through EERD.
    pub fn eeprom_read(&self, kernel: &Kernel, word: u32) -> u16 {
        self.bar.write32(kernel, hwreg::EERD, (word << 8) | 1);
        (self.bar.read32(kernel, hwreg::EERD) >> 16) as u16
    }

    /// Reads the MAC address from the EEPROM.
    pub fn read_mac(&self, kernel: &Kernel) -> [u8; 6] {
        let w0 = self.eeprom_read(kernel, 0).to_le_bytes();
        let w1 = self.eeprom_read(kernel, 1).to_le_bytes();
        let w2 = self.eeprom_read(kernel, 2).to_le_bytes();
        [w0[0], w0[1], w1[0], w1[1], w2[0], w2[1]]
    }

    /// Reads a PHY register through MDIC.
    pub fn phy_read(&self, kernel: &Kernel, reg: u32) -> u16 {
        self.bar
            .write32(kernel, hwreg::MDIC, (0b10 << 26) | ((reg & 0x1f) << 16));
        (self.bar.read32(kernel, hwreg::MDIC) & 0xffff) as u16
    }

    /// Writes a PHY register through MDIC.
    pub fn phy_write(&self, kernel: &Kernel, reg: u32, value: u16) {
        self.bar.write32(
            kernel,
            hwreg::MDIC,
            (0b01 << 26) | ((reg & 0x1f) << 16) | value as u32,
        );
    }

    /// Issues a software reset.
    pub fn reset(&self, kernel: &Kernel) {
        self.bar.write32(kernel, hwreg::CTRL, hwreg::CTRL_RST);
        self.next_tx.set(0);
        self.next_rx.set(0);
    }

    /// Programs the transmit ring registers.
    pub fn setup_tx(&self, kernel: &Kernel) -> KResult<()> {
        self.bar.write32(kernel, hwreg::TDBAL, TX_RING_OFF as u32);
        self.bar
            .write32(kernel, hwreg::TDLEN, N_DESC * hwreg::DESC_SIZE as u32);
        self.bar.write32(kernel, hwreg::TDH, 0);
        self.bar.write32(kernel, hwreg::TDT, 0);
        self.bar.write32(kernel, hwreg::TCTL, hwreg::TCTL_EN);
        self.next_tx.set(0);
        Ok(())
    }

    /// Fills the receive ring with buffers and enables the receiver.
    pub fn setup_rx(&self, kernel: &Kernel) -> KResult<()> {
        for i in 0..N_DESC as usize {
            let desc = RX_RING_OFF + i * hwreg::DESC_SIZE;
            self.dma.write_u64(desc, (RX_BUF_OFF + i * BUF_SIZE) as u64);
            self.dma.write_u32(desc + 8, 0);
            self.dma.write_u32(desc + 12, 0);
        }
        self.bar.write32(kernel, hwreg::RDBAL, RX_RING_OFF as u32);
        self.bar
            .write32(kernel, hwreg::RDLEN, N_DESC * hwreg::DESC_SIZE as u32);
        self.bar.write32(kernel, hwreg::RDH, 0);
        self.bar.write32(kernel, hwreg::RDT, N_DESC - 1);
        self.bar.write32(kernel, hwreg::RCTL, hwreg::RCTL_EN);
        self.next_rx.set(0);
        Ok(())
    }

    /// Enables link and the interrupt causes the driver handles.
    pub fn up(&self, kernel: &Kernel) {
        self.bar.write32(
            kernel,
            hwreg::IMS,
            hwreg::ICR_TXDW | hwreg::ICR_RXT0 | hwreg::ICR_LSC,
        );
        self.bar.write32(kernel, hwreg::CTRL, hwreg::CTRL_SLU);
    }

    /// Masks all interrupts and drops the link.
    pub fn down(&self, kernel: &Kernel) {
        self.bar.write32(kernel, hwreg::IMC, 0xffff_ffff);
        self.bar.write32(kernel, hwreg::RCTL, 0);
        self.bar.write32(kernel, hwreg::TCTL, 0);
    }

    /// Whether STATUS reports link-up.
    pub fn link_up(&self, kernel: &Kernel) -> bool {
        self.bar.read32(kernel, hwreg::STATUS) & hwreg::STATUS_LU != 0
    }

    /// Transmits one frame (the kernel-resident data path): one audited
    /// payload copy into the DMA buffer, one descriptor, one TDT write.
    pub fn xmit(&self, kernel: &Kernel, skb: &SkBuff) -> KResult<()> {
        if skb.len() > BUF_SIZE {
            return Err(KError::Inval);
        }
        let slot = self.next_tx.get();
        let buf = TX_BUF_OFF + slot as usize * BUF_SIZE;
        self.dma.write_bytes(buf, &skb.data);
        kernel.charge_copy(decaf_simkernel::CpuClass::Kernel, skb.len() as u64);
        self.xmit_desc(kernel, buf, skb.len())?;
        self.tx_kick(kernel);
        Ok(())
    }

    /// Queues a transmit descriptor for a payload *already resident* in
    /// the DMA region at `buf` — the zero-copy path: no payload copy, no
    /// copy charge, and no TDT write (call [`E1000Hw::tx_kick`] once per
    /// batch, the MMIO-doorbell-coalescing half of the shmring win).
    pub fn xmit_desc(&self, _kernel: &Kernel, buf: usize, len: usize) -> KResult<()> {
        if len > BUF_SIZE {
            return Err(KError::Inval);
        }
        let slot = self.next_tx.get();
        let desc = TX_RING_OFF + slot as usize * hwreg::DESC_SIZE;
        self.dma.write_u64(desc, buf as u64);
        self.dma.write_u32(
            desc + 8,
            len as u32 | ((hwreg::TXD_CMD_EOP | hwreg::TXD_CMD_RS) << 24),
        );
        self.dma.write_u32(desc + 12, 0);
        self.next_tx.set((slot + 1) % N_DESC);
        self.tx_inflight_bytes
            .set(self.tx_inflight_bytes.get() + len as u64);
        self.tx_inflight_pkts.set(self.tx_inflight_pkts.get() + 1);
        Ok(())
    }

    /// Publishes every queued transmit descriptor with one TDT write.
    pub fn tx_kick(&self, kernel: &Kernel) {
        self.bar.write32(kernel, hwreg::TDT, self.next_tx.get());
    }

    /// Interrupt service: reads ICR, reclaims TX, receives RX.
    ///
    /// Returns the interrupt causes handled.
    pub fn handle_irq(&self, kernel: &Kernel, ifname: &str) -> u32 {
        let icr = self.bar.read32(kernel, hwreg::ICR);
        if icr & hwreg::ICR_TXDW != 0 {
            kernel.net_tx_done(
                ifname,
                self.tx_inflight_pkts.get(),
                self.tx_inflight_bytes.get(),
            );
            self.tx_inflight_pkts.set(0);
            self.tx_inflight_bytes.set(0);
        }
        if icr & hwreg::ICR_RXT0 != 0 {
            self.rx_poll(kernel, ifname);
        }
        if icr & hwreg::ICR_LSC != 0 {
            kernel.netif_carrier(ifname, self.link_up(kernel));
        }
        icr
    }

    /// Scans completed receive descriptors *without copying payloads*:
    /// returns `(slot, len)` pairs for the shmring data path to post as
    /// descriptors. The buffers stay software-owned until
    /// [`E1000Hw::rx_recycle`] hands them back.
    pub fn rx_harvest(&self, _kernel: &Kernel) -> Vec<(u32, usize)> {
        let mut out = Vec::new();
        loop {
            let slot = self.next_rx.get();
            let desc = RX_RING_OFF + slot as usize * hwreg::DESC_SIZE;
            if self.dma.read_u32(desc + 12) & hwreg::TXD_STAT_DD == 0 {
                break;
            }
            let len = (self.dma.read_u32(desc + 8) & 0xffff) as usize;
            out.push((slot, len));
            self.next_rx.set((slot + 1) % N_DESC);
        }
        out
    }

    /// DMA offset of one receive buffer slot.
    pub fn rx_buf_off(slot: u32) -> usize {
        RX_BUF_OFF + slot as usize * BUF_SIZE
    }

    /// Clears a harvested descriptor's status (software done with the
    /// buffer). Publish a batch back to the hardware with one
    /// [`E1000Hw::rx_kick`].
    pub fn rx_recycle(&self, _kernel: &Kernel, slot: u32) {
        let desc = RX_RING_OFF + slot as usize * hwreg::DESC_SIZE;
        self.dma.write_u32(desc + 12, 0);
    }

    /// Advances RDT to `slot` — one MMIO write returning a whole batch of
    /// recycled buffers to the device.
    pub fn rx_kick(&self, kernel: &Kernel, slot: u32) {
        self.bar.write32(kernel, hwreg::RDT, slot);
    }

    /// Drains completed receive descriptors into the network stack.
    fn rx_poll(&self, kernel: &Kernel, ifname: &str) {
        loop {
            let slot = self.next_rx.get();
            let desc = RX_RING_OFF + slot as usize * hwreg::DESC_SIZE;
            let status = self.dma.read_u32(desc + 12);
            if status & hwreg::TXD_STAT_DD == 0 {
                break;
            }
            let len = (self.dma.read_u32(desc + 8) & 0xffff) as usize;
            let buf = RX_BUF_OFF + slot as usize * BUF_SIZE;
            let data = self.dma.read_bytes(buf, len);
            let _ = kernel.netif_rx(
                ifname,
                SkBuff {
                    data,
                    protocol: 0x0800,
                },
            );
            // Return the descriptor to the hardware.
            self.dma.write_u32(desc + 12, 0);
            self.bar.write32(kernel, hwreg::RDT, slot);
            self.next_rx.set((slot + 1) % N_DESC);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eeprom_mac_roundtrip() {
        let k = Kernel::new();
        let (bar, dma, _dev) = attach(&k);
        let hw = E1000Hw::new(bar, dma);
        assert_eq!(hw.read_mac(&k), MAC);
    }

    #[test]
    fn tx_rx_loopback_through_rings() {
        let k = Kernel::new();
        let (bar, dma, _dev) = attach(&k);
        let hw = Rc::new(E1000Hw::new(bar, dma));
        k.register_netdev(
            "eth0",
            decaf_simkernel::net::NetDeviceOps {
                open: Rc::new(|_| Ok(())),
                stop: Rc::new(|_| Ok(())),
                xmit: {
                    let hw = Rc::clone(&hw);
                    Rc::new(move |k, skb| hw.xmit(k, &skb))
                },
            },
        )
        .unwrap();
        let hw_irq = Rc::clone(&hw);
        k.request_irq(
            IRQ_LINE,
            "e1000",
            Rc::new(move |k| {
                hw_irq.handle_irq(k, "eth0");
            }),
        )
        .unwrap();
        hw.setup_tx(&k).unwrap();
        hw.setup_rx(&k).unwrap();
        hw.up(&k);
        k.schedule_point(); // deliver LSC
        assert!(k.carrier_ok("eth0"));

        k.netdev_open("eth0").unwrap();
        for i in 0..10 {
            k.net_xmit("eth0", SkBuff::synthetic(512 + i, 0x42, 0x0800))
                .unwrap();
            k.schedule_point();
        }
        let st = k.net_stats("eth0");
        assert_eq!(st.tx_packets, 10);
        assert_eq!(st.rx_packets, 10, "loopback returns every frame");
        assert!(st.rx_bytes >= 5120);
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }
}
