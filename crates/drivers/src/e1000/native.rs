//! Native (kernel-only) E1000 build: the Table 3 baseline.
//!
//! All logic runs in the kernel, including initialization and the
//! watchdog. The initialization sequence mirrors the decaf build step for
//! step so the only latency difference between the two is the cost of
//! crossing domains and marshaling.

use std::rc::Rc;

use decaf_simkernel::{KResult, Kernel};

use std::cell::RefCell;

use decaf_simdev::E1000Device;

use super::{attach, E1000Hw, IRQ_LINE};

/// The installed native driver.
pub struct NativeE1000 {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Hardware state.
    pub hw: Rc<E1000Hw>,
    /// Interface name.
    pub ifname: String,
    /// Measured `insmod` latency (virtual ns).
    pub init_latency_ns: u64,
    /// Handle to the device model (for traffic injection in workloads).
    pub dev: Rc<RefCell<E1000Device>>,
    watchdog: decaf_simkernel::TimerId,
}

/// Loads the native driver: attaches the device, probes, registers the
/// netdevice and the watchdog.
pub fn install(kernel: &Kernel, ifname: &str) -> KResult<NativeE1000> {
    let (bar, dma, dev) = attach(kernel);
    let hw = Rc::new(E1000Hw::new(bar, dma));
    let ifname = ifname.to_string();

    let hw_init = Rc::clone(&hw);
    let name_init = ifname.clone();
    let init_latency_ns = kernel.insmod("e1000", move |k| {
        // The same logical steps the decaf build runs through XPC:
        // sw_init, check_options, EEPROM, reset, PHY link setup.
        let _mac = hw_init.read_mac(k);
        let _checksum = hw_init.eeprom_read(k, 63);
        hw_init.reset(k);
        let _ctrl = hw_init.phy_read(k, 0);
        hw_init.phy_write(k, 0, 0x1140);
        hw_init.phy_write(k, 4, 0x0de0);
        hw_init.phy_write(k, 9, 0x0300);
        let _status = hw_init.phy_read(k, 1);
        // The Figure 5 DSP sequence.
        for (reg, val) in [
            (29u32, 0x001f_u16),
            (30, 0x0646),
            (29, 0x001b),
            (30, 0x8fae),
        ] {
            hw_init.phy_write(k, reg, val);
        }
        let _ = hw_init.phy_read(k, 30);

        let hw_ops = Rc::clone(&hw_init);
        let hw_open = Rc::clone(&hw_init);
        let hw_stop = Rc::clone(&hw_init);
        k.register_netdev(
            &name_init,
            decaf_simkernel::net::NetDeviceOps {
                open: Rc::new(move |k| {
                    hw_open.setup_tx(k)?;
                    hw_open.setup_rx(k)?;
                    hw_open.up(k);
                    Ok(())
                }),
                stop: Rc::new(move |k| {
                    hw_stop.down(k);
                    Ok(())
                }),
                xmit: Rc::new(move |k, skb| hw_ops.xmit(k, &skb)),
            },
        )?;

        let hw_irq = Rc::clone(&hw_init);
        let name_irq = name_init.clone();
        k.request_irq(
            IRQ_LINE,
            "e1000",
            Rc::new(move |k| {
                hw_irq.handle_irq(k, &name_irq);
            }),
        )?;
        Ok(())
    })?;

    // The watchdog: a 2-second periodic timer. Native drivers can do the
    // link check directly from the deferred work item.
    let hw_wd = Rc::clone(&hw);
    let name_wd = ifname.clone();
    let watchdog = kernel.timer_create(
        "e1000_watchdog",
        Rc::new(move |k| {
            let hw = Rc::clone(&hw_wd);
            let name = name_wd.clone();
            k.schedule_work("e1000_watchdog_task", move |k| {
                let up = hw.link_up(k);
                k.netif_carrier(&name, up);
            });
        }),
    );
    kernel.timer_arm_periodic(watchdog, 2_000_000_000);

    Ok(NativeE1000 {
        kernel: kernel.clone(),
        hw,
        ifname,
        init_latency_ns,
        dev,
        watchdog,
    })
}

impl NativeE1000 {
    /// Unloads the driver.
    pub fn remove(self) {
        self.kernel.timer_del(self.watchdog);
        self.kernel.free_irq(IRQ_LINE);
        let ifname = self.ifname.clone();
        self.kernel
            .rmmod("e1000", move |k| k.unregister_netdev(&ifname));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decaf_simkernel::SkBuff;

    #[test]
    fn install_open_transmit() {
        let k = Kernel::new();
        let drv = install(&k, "eth0").unwrap();
        assert!(drv.init_latency_ns > 0);
        k.netdev_open("eth0").unwrap();
        k.schedule_point();
        for _ in 0..5 {
            k.net_xmit("eth0", SkBuff::synthetic(1000, 7, 0x0800))
                .unwrap();
            k.schedule_point();
        }
        let st = k.net_stats("eth0");
        assert_eq!(st.tx_packets, 5);
        assert_eq!(st.rx_packets, 5);
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn watchdog_keeps_carrier_fresh() {
        let k = Kernel::new();
        let _drv = install(&k, "eth0").unwrap();
        k.netdev_open("eth0").unwrap();
        k.run_for(5_000_000_000);
        assert!(k.carrier_ok("eth0"));
        assert!(k.stats().timers_fired >= 2, "watchdog fired every 2s");
    }

    #[test]
    fn remove_unregisters() {
        let k = Kernel::new();
        let drv = install(&k, "eth0").unwrap();
        drv.remove();
        assert!(!k.netdev_exists("eth0"));
        assert!(k.request_irq(IRQ_LINE, "again", Rc::new(|_| {})).is_ok());
    }
}
