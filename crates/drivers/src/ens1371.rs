//! The ens1371 sound driver: mini-C source, native and decaf builds.
//!
//! The paper's sound conversion moved 59 functions to Java and left only
//! 6 in the kernel — possible because the modified sound core takes
//! mutexes (not spinlocks) around driver callbacks (§3.1.3). The decaf
//! driver is called only at playback start and end (15 invocations in
//! §4.2); the period-interrupt path stays in the nucleus.

use std::cell::Cell;
use std::rc::Rc;

use decaf_simdev::ens1371 as hwreg;
use decaf_simdev::Ens1371Device;
use decaf_simkernel::{DmaMemory, KError, KResult, Kernel, MmioHandle, MmioRegion};
use decaf_slicer::{slice, SliceConfig, SlicePlan};
use decaf_xdr::graph::CAddr;
use decaf_xdr::XdrValue;
use decaf_xpc::{Domain, NuclearRuntime, ProcDef, XpcChannel};

use crate::support::{self, decaf_readl, decaf_writel};

/// IRQ line of the sound chip.
pub const IRQ_LINE: u32 = 5;
/// DMA offset of the playback buffer.
pub const PLAY_BUF_OFF: u32 = 0x1000;

/// Mini-C source for DriverSlicer.
pub mod minic {
    /// The driver source.
    pub const SOURCE: &str = r#"
struct ensoniq {
    int ctrl;
    int sctrl;
    int rate;
    int volume_left;
    int volume_right;
    int playing;
    unsigned long long frames_played;
    int period_irqs;
};

/* Period interrupt: consumed buffers, stays in the kernel. */
int snd_audiopci_interrupt(struct ensoniq *chip) @irq {
    int status;
    status = readl(4);
    if (status == 0) { return 0; }
    snd_ensoniq_pcm_pointer_update(chip);
    return 1;
}
int snd_ensoniq_pcm_pointer_update(struct ensoniq *chip) @datapath {
    chip->period_irqs += 1;
    writel(4, 4);
    return 0;
}
/* PCM write: copies samples into the DMA ring, stays in the kernel. */
int snd_ensoniq_pcm_write(struct ensoniq *chip, int frames) @datapath {
    chip->frames_played += frames;
    writel(0, 32);
    return 0;
}

/* Probe, codec setup and stream management move to user level. */
int snd_audiopci_probe(struct ensoniq *chip) @export {
    int err;
    err = snd_ensoniq_create(chip);
    if (err) return err;
    err = snd_ensoniq_1371_mixer(chip);
    if (err) return err;
    err = snd_card_register_decaf(chip);
    if (err) return err;
    return 0;
}
int snd_ensoniq_create(struct ensoniq *chip) @export {
    writel(0, 0);
    writel(16, 44100);
    chip->rate = 44100;
    chip->ctrl = 0;
    return 0;
}
int snd_ensoniq_1371_mixer(struct ensoniq *chip) @export {
    codec_write(2, 2570);
    codec_write(24, 2570);
    codec_write(26, 2570);
    chip->volume_left = 10;
    chip->volume_right = 10;
    return 0;
}
int snd_card_register_decaf(struct ensoniq *chip) @export {
    return snd_card_register(chip);
}
int snd_ensoniq_playback_open(struct ensoniq *chip) @export {
    int src;
    src = readl(16);
    writel(16, 44100);
    writel(64, 1102);
    chip->playing = 1;
    snd_ensoniq_src_configure(chip);
    return 0;
}
int snd_ensoniq_src_configure(struct ensoniq *chip) @export {
    writel(16, 44100);
    readl(16);
    return 0;
}
int snd_ensoniq_playback_prepare(struct ensoniq *chip) @export {
    writel(56, 4096);
    writel(60, 11025);
    return 0;
}
int snd_ensoniq_playback_close(struct ensoniq *chip) @export {
    chip->playing = 0;
    writel(0, 0);
    snd_ensoniq_power_down(chip);
    return 0;
}
int snd_ensoniq_power_down(struct ensoniq *chip) @export {
    codec_write(38, 65535);
    return 0;
}
int snd_ensoniq_volume_put(struct ensoniq *chip, int left, int right) @export {
    chip->volume_left = left;
    chip->volume_right = right;
    codec_write(2, left);
    return 0;
}
int snd_ensoniq_volume_get(struct ensoniq *chip) @export {
    return chip->volume_left;
}
"#;
}

/// Attaches the device model.
pub fn attach(kernel: &Kernel) -> (MmioRegion, DmaMemory, Rc<std::cell::RefCell<Ens1371Device>>) {
    let dma = DmaMemory::new(256 * 1024);
    let dev = Rc::new(std::cell::RefCell::new(Ens1371Device::new(
        IRQ_LINE,
        dma.clone(),
    )));
    let handle: MmioHandle = dev.clone();
    kernel.pci_add_device(decaf_simkernel::pci::PciDevice {
        vendor: 0x1274,
        device: 0x1371,
        irq_line: IRQ_LINE,
        bars: vec![handle.clone()],
        name: "ens1371".into(),
    });
    (MmioRegion::new(handle), dma, dev)
}

/// Kernel-resident playback state shared by both builds.
pub struct EnsHw {
    /// Register window.
    pub bar: MmioRegion,
    /// DMA region.
    pub dma: DmaMemory,
    frames_written: Cell<u64>,
}

impl EnsHw {
    /// Wraps the register window and DMA region.
    pub fn new(bar: MmioRegion, dma: DmaMemory) -> Self {
        EnsHw {
            bar,
            dma,
            frames_written: Cell::new(0),
        }
    }

    /// Writes frames into the DMA buffer and kicks the DAC (the
    /// kernel-resident data path).
    pub fn pcm_write(&self, kernel: &Kernel, frames: &[i16]) -> KResult<usize> {
        let n_frames = frames.len() / 2;
        for (i, pair) in frames.chunks(2).enumerate() {
            let l = pair[0] as u16 as u32;
            let r = pair.get(1).copied().unwrap_or(0) as u16 as u32;
            self.dma
                .write_u32(PLAY_BUF_OFF as usize + i * 4, l | (r << 16));
        }
        kernel.charge_copy(decaf_simkernel::CpuClass::Kernel, frames.len() as u64 * 2);
        self.bar.write32(kernel, hwreg::DAC2_FRAME, PLAY_BUF_OFF);
        self.bar.write32(kernel, hwreg::DAC2_SIZE, n_frames as u32);
        self.bar
            .write32(kernel, hwreg::DAC2_PERIOD, (n_frames as u32 / 4).max(1));
        self.bar.write32(kernel, hwreg::CTRL, hwreg::CTRL_DAC2_EN);
        self.frames_written
            .set(self.frames_written.get() + n_frames as u64);
        Ok(n_frames)
    }

    /// Period-interrupt service: acknowledge.
    pub fn handle_irq(&self, kernel: &Kernel) {
        let status = self.bar.read32(kernel, hwreg::STATUS);
        if status & hwreg::STATUS_DAC2 != 0 {
            self.bar.write32(kernel, hwreg::STATUS, hwreg::STATUS_DAC2);
        }
    }

    /// Total frames handed to the DAC.
    pub fn frames_written(&self) -> u64 {
        self.frames_written.get()
    }
}

/// The installed native driver.
pub struct NativeEns {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Hardware state.
    pub hw: Rc<EnsHw>,
    /// Card name.
    pub card: String,
    /// Measured `insmod` latency.
    pub init_latency_ns: u64,
    /// Handle to the device model.
    pub dev: Rc<std::cell::RefCell<Ens1371Device>>,
}

/// Loads the native driver.
pub fn install_native(kernel: &Kernel, card: &str) -> KResult<NativeEns> {
    let (bar, dma, dev) = attach(kernel);
    let hw = Rc::new(EnsHw::new(bar, dma));
    let name = card.to_string();
    let hw_init = Rc::clone(&hw);
    let init_latency_ns = kernel.insmod("snd-ens1371", move |k| {
        // create + mixer + register, all in the kernel.
        hw_init.bar.write32(k, hwreg::CTRL, 0);
        hw_init.bar.write32(k, hwreg::SRC, 44_100);
        for (reg, val) in [(2u32, 0x0a0a_u32), (24, 0x0a0a), (26, 0x0a0a)] {
            hw_init.bar.write32(k, hwreg::CODEC, (reg << 16) | val);
        }
        let hw_open = Rc::clone(&hw_init);
        let hw_write = Rc::clone(&hw_init);
        let hw_close = Rc::clone(&hw_init);
        k.snd_card_register(
            &name,
            decaf_simkernel::sound::SoundCardOps {
                open: Rc::new(move |k| {
                    hw_open.bar.write32(k, hwreg::SRC, 44_100);
                    Ok(())
                }),
                write: Rc::new(move |k, frames| hw_write.pcm_write(k, frames)),
                close: Rc::new(move |k| {
                    hw_close.bar.write32(k, hwreg::CTRL, 0);
                    Ok(())
                }),
            },
        )?;
        let hw_irq = Rc::clone(&hw_init);
        k.request_irq(
            IRQ_LINE,
            "snd-ens1371",
            Rc::new(move |k| hw_irq.handle_irq(k)),
        )?;
        Ok(())
    })?;
    Ok(NativeEns {
        kernel: kernel.clone(),
        hw,
        card: card.to_string(),
        init_latency_ns,
        dev,
    })
}

/// The installed decaf driver.
pub struct DecafEns {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Hardware state.
    pub hw: Rc<EnsHw>,
    /// Card name.
    pub card: String,
    /// XPC channel.
    pub channel: Rc<XpcChannel>,
    /// Nuclear runtime.
    pub nuc: Rc<NuclearRuntime>,
    /// Shared chip object.
    pub chip: CAddr,
    /// Measured `insmod` latency.
    pub init_latency_ns: u64,
    /// Slicing plan.
    pub plan: SlicePlan,
    /// Handle to the device model.
    pub dev: Rc<std::cell::RefCell<Ens1371Device>>,
}

/// Loads the decaf driver: probe/open/close run at user level, the PCM
/// write path and the period interrupt stay in the kernel.
pub fn install_decaf(kernel: &Kernel, card: &str) -> KResult<DecafEns> {
    let (bar, dma, dev) = attach(kernel);
    let hw = Rc::new(EnsHw::new(bar.clone(), dma));
    let plan = slice(minic::SOURCE, &SliceConfig::default()).map_err(|_| KError::Inval)?;
    let channel = support::channel_from_plan(&plan);
    support::register_io_procs(&channel, bar).map_err(|_| KError::Io)?;

    // codec_write import.
    let hw_codec = Rc::clone(&hw);
    channel
        .register_proc(
            Domain::Nucleus,
            ProcDef {
                name: "codec_write".into(),
                arg_types: vec![],
                handler: Rc::new(move |k, _, _, s| {
                    let reg = s[0].as_uint().unwrap_or(0);
                    let val = s[1].as_uint().unwrap_or(0);
                    hw_codec.bar.write32(k, hwreg::CODEC, (reg << 16) | val);
                    XdrValue::Int(0)
                }),
            },
        )
        .map_err(|_| KError::Io)?;
    // snd_card_register import: the nucleus registers the card with ops
    // that route open/close back up to the decaf driver.
    let k_reg = kernel.clone();
    let hw_write = Rc::clone(&hw);
    let card_name = card.to_string();
    let ch_for_ops = Rc::clone(&channel);
    channel
        .register_proc(
            Domain::Nucleus,
            ProcDef {
                name: "snd_card_register".into(),
                arg_types: vec!["ensoniq".into()],
                handler: Rc::new(move |_k, _, args, _| {
                    let chip = args[0];
                    let ch_open = Rc::clone(&ch_for_ops);
                    let ch_close = Rc::clone(&ch_for_ops);
                    let hww = Rc::clone(&hw_write);
                    let result = k_reg.snd_card_register(
                        &card_name,
                        decaf_simkernel::sound::SoundCardOps {
                            open: Rc::new(move |k| {
                                match ch_open.call(
                                    k,
                                    Domain::Nucleus,
                                    "snd_ensoniq_playback_open",
                                    &[chip],
                                    &[],
                                ) {
                                    Ok(XdrValue::Int(0)) => Ok(()),
                                    _ => Err(KError::Io),
                                }
                            }),
                            write: Rc::new(move |k, frames| hww.pcm_write(k, frames)),
                            close: Rc::new(move |k| {
                                match ch_close.call(
                                    k,
                                    Domain::Nucleus,
                                    "snd_ensoniq_playback_close",
                                    &[chip],
                                    &[],
                                ) {
                                    Ok(XdrValue::Int(0)) => Ok(()),
                                    _ => Err(KError::Io),
                                }
                            }),
                        },
                    );
                    support::errno_value(result)
                }),
            },
        )
        .map_err(|_| KError::Io)?;

    // Decaf handlers.
    channel
        .register_proc(
            Domain::Decaf,
            ProcDef {
                name: "snd_audiopci_probe".into(),
                arg_types: vec!["ensoniq".into()],
                handler: Rc::new(|k, ch, args, _| {
                    let Some(chip) = args[0] else {
                        return XdrValue::Int(-22);
                    };
                    // snd_ensoniq_create.
                    decaf_writel(k, ch, hwreg::CTRL, 0);
                    decaf_writel(k, ch, hwreg::SRC, 44_100);
                    {
                        let heap = ch.heap(Domain::Decaf);
                        let mut h = heap.borrow_mut();
                        let _ = h.set_scalar(chip, "rate", XdrValue::Int(44_100));
                        let _ = h.set_scalar(chip, "ctrl", XdrValue::Int(0));
                        let _ = h.set_scalar(chip, "volume_left", XdrValue::Int(10));
                        let _ = h.set_scalar(chip, "volume_right", XdrValue::Int(10));
                    }
                    // 1371 mixer: three codec writes, posted — the batch
                    // crosses once when the card-register downcall flushes.
                    for (reg, val) in [(2u32, 0x0a0a_u32), (24, 0x0a0a), (26, 0x0a0a)] {
                        let _ = ch.call_deferred(
                            k,
                            Domain::Decaf,
                            "codec_write",
                            &[],
                            &[XdrValue::UInt(reg), XdrValue::UInt(val)],
                        );
                    }
                    // Register the card (downcall carrying the chip object).
                    match ch.call(k, Domain::Decaf, "snd_card_register", &[Some(chip)], &[]) {
                        Ok(XdrValue::Int(0)) => XdrValue::Int(0),
                        Ok(XdrValue::Int(e)) => XdrValue::Int(e),
                        _ => XdrValue::Int(KError::Io.errno()),
                    }
                }),
            },
        )
        .map_err(|_| KError::Io)?;
    channel
        .register_proc(
            Domain::Decaf,
            ProcDef {
                name: "snd_ensoniq_playback_open".into(),
                arg_types: vec!["ensoniq".into()],
                handler: Rc::new(|k, ch, args, _| {
                    let Some(chip) = args[0] else {
                        return XdrValue::Int(-22);
                    };
                    let _src = decaf_readl(k, ch, hwreg::SRC);
                    decaf_writel(k, ch, hwreg::SRC, 44_100);
                    decaf_writel(k, ch, hwreg::DAC2_PERIOD, 1102);
                    let heap = ch.heap(Domain::Decaf);
                    let _ = heap
                        .borrow_mut()
                        .set_scalar(chip, "playing", XdrValue::Int(1));
                    XdrValue::Int(0)
                }),
            },
        )
        .map_err(|_| KError::Io)?;
    channel
        .register_proc(
            Domain::Decaf,
            ProcDef {
                name: "snd_ensoniq_playback_close".into(),
                arg_types: vec!["ensoniq".into()],
                handler: Rc::new(|k, ch, args, _| {
                    let Some(chip) = args[0] else {
                        return XdrValue::Int(-22);
                    };
                    decaf_writel(k, ch, hwreg::CTRL, 0);
                    // Power down the codec (posted, batched with the
                    // control-register write above).
                    let _ = ch.call_deferred(
                        k,
                        Domain::Decaf,
                        "codec_write",
                        &[],
                        &[XdrValue::UInt(38), XdrValue::UInt(0xffff)],
                    );
                    let heap = ch.heap(Domain::Decaf);
                    let _ = heap
                        .borrow_mut()
                        .set_scalar(chip, "playing", XdrValue::Int(0));
                    XdrValue::Int(0)
                }),
            },
        )
        .map_err(|_| KError::Io)?;
    channel
        .register_proc(
            Domain::Decaf,
            ProcDef {
                name: "snd_ensoniq_volume_put".into(),
                arg_types: vec!["ensoniq".into()],
                handler: Rc::new(|k, ch, args, scalars| {
                    let Some(chip) = args[0] else {
                        return XdrValue::Int(-22);
                    };
                    let left = scalars.first().and_then(|v| v.as_int()).unwrap_or(0);
                    let right = scalars.get(1).and_then(|v| v.as_int()).unwrap_or(0);
                    {
                        let heap = ch.heap(Domain::Decaf);
                        let mut h = heap.borrow_mut();
                        let _ = h.set_scalar(chip, "volume_left", XdrValue::Int(left));
                        let _ = h.set_scalar(chip, "volume_right", XdrValue::Int(right));
                    }
                    let _ = ch.call_deferred(
                        k,
                        Domain::Decaf,
                        "codec_write",
                        &[],
                        &[XdrValue::UInt(2), XdrValue::UInt(left as u32)],
                    );
                    XdrValue::Int(0)
                }),
            },
        )
        .map_err(|_| KError::Io)?;

    let nuc = Rc::new(NuclearRuntime::new(
        kernel.clone(),
        Rc::clone(&channel),
        Some(IRQ_LINE),
    ));

    let mut chip = 0;
    let nuc_init = Rc::clone(&nuc);
    let ch_init = Rc::clone(&channel);
    let hw_irq = Rc::clone(&hw);
    let spec = plan.spec.clone();
    let chip_ref = &mut chip;
    let init_latency_ns = kernel.insmod("snd-ens1371-decaf", move |k| {
        let c = {
            let heap = ch_init.heap(Domain::Nucleus);
            let mut h = heap.borrow_mut();
            h.alloc_default("ensoniq", &spec)
                .map_err(|_| KError::NoMem)?
        };
        *chip_ref = c;
        let ret = nuc_init
            .upcall_errno("snd_audiopci_probe", &[Some(c)], &[])
            .map_err(|_| KError::Io)?;
        if ret < 0 {
            return Err(KError::from_errno(ret).unwrap_or(KError::Io));
        }
        k.request_irq(
            IRQ_LINE,
            "snd-ens1371",
            Rc::new(move |k| hw_irq.handle_irq(k)),
        )?;
        Ok(())
    })?;

    Ok(DecafEns {
        kernel: kernel.clone(),
        hw,
        card: card.to_string(),
        channel,
        nuc,
        chip,
        init_latency_ns,
        plan,
        dev,
    })
}

impl DecafEns {
    /// Round trips between nucleus and decaf driver.
    pub fn crossings(&self) -> u64 {
        self.channel.stats().round_trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicer_plan_moves_most_functions() {
        let plan = slice(minic::SOURCE, &SliceConfig::default()).unwrap();
        assert!(plan
            .kernel_fns
            .contains(&"snd_audiopci_interrupt".to_string()));
        assert!(plan
            .kernel_fns
            .contains(&"snd_ensoniq_pcm_write".to_string()));
        assert!(plan.decaf_fns.contains(&"snd_audiopci_probe".to_string()));
        assert!(plan.user_fraction() > 0.7, "{}", plan.user_fraction());
    }

    #[test]
    fn native_playback() {
        let k = Kernel::new();
        let drv = install_native(&k, "card0").unwrap();
        k.snd_pcm_open("card0").unwrap();
        let frames = vec![0i16; 44_100 / 5]; // 0.1 s stereo
        let written = k.snd_pcm_write("card0", &frames).unwrap();
        assert_eq!(written, frames.len() / 2);
        k.schedule_point();
        k.snd_pcm_close("card0").unwrap();
        assert!(drv.hw.frames_written() > 0);
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn decaf_playback_counts_invocations_at_start_and_end_only() {
        let k = Kernel::new();
        let drv = install_decaf(&k, "card0").unwrap();
        let after_init = drv.crossings();
        k.snd_pcm_open("card0").unwrap();
        let after_open = drv.crossings();
        assert!(after_open > after_init, "open crosses");
        // Steady-state writes stay in the kernel.
        for _ in 0..10 {
            let frames = vec![0i16; 8_820];
            k.snd_pcm_write("card0", &frames).unwrap();
            k.schedule_point();
        }
        assert_eq!(drv.crossings(), after_open, "PCM writes must not cross");
        k.snd_pcm_close("card0").unwrap();
        assert!(drv.crossings() > after_open, "close crosses");
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }
}
