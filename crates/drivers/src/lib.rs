//! The five drivers of the Decaf evaluation, as native and decaf builds.
//!
//! The paper converts five Linux drivers (Table 2): the `8139too` and
//! `E1000` network drivers, the `ens1371` sound driver, the `uhci-hcd`
//! USB 1.0 host controller driver, and the `psmouse` mouse driver. Each
//! driver here exists in three coupled forms:
//!
//! 1. a **mini-C source** (`minic` module) — the input DriverSlicer
//!    consumes; running the slicer over it yields the partition, the XDR
//!    interface spec and the marshaling masks (Table 2 is generated from
//!    these sources);
//! 2. a **native build** (`native` module) — the whole driver in the
//!    kernel, the baseline of Table 3;
//! 3. a **decaf build** (`decaf` module) — the driver split per the
//!    slicer's plan: the nucleus keeps interrupt handlers and the data
//!    path, the decaf driver runs initialization/configuration logic at
//!    user level over an [`decaf_xpc::XpcChannel`] whose spec and masks
//!    come straight from the slicer output.
//!
//! The decaf builds follow the paper's runtime rules: the device IRQ is
//! masked during upcalls, timers defer to work items before reaching user
//! level (the E1000 watchdog, §3.1.3), and ethtool-style functions with
//! interrupt data races stay pinned to the nucleus (§5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod e1000;
pub mod ens1371;
pub mod psmouse;
pub mod rtl8139;
pub mod support;
pub mod uhci;
pub mod workloads;

/// The five drivers, for iteration in benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverKind {
    /// RTL8139 fast ethernet (`8139too`).
    Rtl8139,
    /// Intel gigabit ethernet (`e1000`).
    E1000,
    /// Ensoniq AudioPCI sound (`ens1371`).
    Ens1371,
    /// UHCI USB 1.0 host controller (`uhci-hcd`).
    UhciHcd,
    /// PS/2 mouse (`psmouse`).
    Psmouse,
}

impl DriverKind {
    /// All five drivers in Table 2 order.
    pub fn all() -> [DriverKind; 5] {
        [
            DriverKind::Rtl8139,
            DriverKind::E1000,
            DriverKind::Ens1371,
            DriverKind::UhciHcd,
            DriverKind::Psmouse,
        ]
    }

    /// The paper's name for the driver.
    pub fn name(self) -> &'static str {
        match self {
            DriverKind::Rtl8139 => "8139too",
            DriverKind::E1000 => "E1000",
            DriverKind::Ens1371 => "ens1371",
            DriverKind::UhciHcd => "uhci-hcd",
            DriverKind::Psmouse => "psmouse",
        }
    }

    /// The driver's mini-C source.
    pub fn minic_source(self) -> &'static str {
        match self {
            DriverKind::Rtl8139 => rtl8139::minic::SOURCE,
            DriverKind::E1000 => e1000::minic::SOURCE,
            DriverKind::Ens1371 => ens1371::minic::SOURCE,
            DriverKind::UhciHcd => uhci::minic::SOURCE,
            DriverKind::Psmouse => psmouse::minic::SOURCE,
        }
    }

    /// The driver's type as named in Table 2.
    pub fn device_type(self) -> &'static str {
        match self {
            DriverKind::Rtl8139 => "Network",
            DriverKind::E1000 => "Network",
            DriverKind::Ens1371 => "Sound",
            DriverKind::UhciHcd => "USB 1.0",
            DriverKind::Psmouse => "Mouse",
        }
    }
}
