//! The psmouse driver: mini-C source, native and decaf builds.
//!
//! The paper found most of psmouse's user-level code to be
//! device-specific: 74 functions stayed in the driver library (C at user
//! level) and only the 14 routines actually exercised by the test mouse
//! were converted (Table 2, §4.1). The mini-C source reproduces that
//! split with a block of `@library` protocol handlers for mice the test
//! machine does not have.

use std::cell::Cell;
use std::rc::Rc;

use decaf_simdev::psmouse as hwreg;
use decaf_simdev::PsMouseDevice;
use decaf_simkernel::input::{InputEvent, BTN_LEFT, EV_KEY, EV_REL, REL_X, REL_Y};
use decaf_simkernel::{KError, KResult, Kernel, MmioHandle, MmioRegion};
use decaf_slicer::{slice, SliceConfig, SlicePlan};
use decaf_xdr::graph::CAddr;
use decaf_xdr::XdrValue;
use decaf_xpc::{Domain, NuclearRuntime, ProcDef, XpcChannel};

use crate::support::{self, decaf_readl, decaf_writel};

/// IRQ line of the AUX port.
pub const IRQ_LINE: u32 = 12;

/// Mini-C source for DriverSlicer.
pub mod minic {
    /// The driver source.
    pub const SOURCE: &str = r#"
struct psmouse {
    int state;
    int pktcnt;
    int pktsize;
    int resolution;
    int rate;
    int protocol;
    unsigned long long packets;
    int resync_time;
};

/* Byte-at-a-time interrupt path stays in the kernel. */
int psmouse_interrupt(struct psmouse *mouse) @irq {
    int byte;
    byte = readl(96);
    mouse->pktcnt += 1;
    if (mouse->pktcnt == 3) {
        psmouse_process_packet(mouse);
    }
    return 1;
}
int psmouse_process_packet(struct psmouse *mouse) @datapath {
    mouse->packets += 1;
    mouse->pktcnt = 0;
    input_report(mouse);
    return 0;
}

/* Protocol detection and configuration: the decaf driver. */
int psmouse_probe(struct psmouse *mouse) @export {
    int err;
    err = psmouse_reset(mouse);
    if (err) return err;
    err = psmouse_detect(mouse);
    if (err) return err;
    psmouse_initialize(mouse);
    err = psmouse_activate(mouse);
    if (err) return err;
    return 0;
}
int psmouse_reset(struct psmouse *mouse) @export {
    writel(100, 212);
    writel(96, 255);
    readl(96);
    readl(96);
    readl(96);
    mouse->state = 1;
    return 0;
}
int psmouse_detect(struct psmouse *mouse) @export {
    writel(100, 212);
    writel(96, 242);
    readl(96);
    readl(96);
    mouse->protocol = 1;
    mouse->pktsize = 3;
    return 0;
}
int psmouse_initialize(struct psmouse *mouse) @export {
    psmouse_set_rate(mouse, 100);
    psmouse_set_resolution(mouse, 4);
    return 0;
}
int psmouse_set_rate(struct psmouse *mouse, int rate) @export {
    writel(100, 212);
    writel(96, 243);
    writel(100, 212);
    writel(96, rate);
    readl(96);
    readl(96);
    mouse->rate = rate;
    return 0;
}
int psmouse_set_resolution(struct psmouse *mouse, int res) @export {
    mouse->resolution = res;
    return 0;
}
int psmouse_activate(struct psmouse *mouse) @export {
    if (mouse->state == 0) { return 0 - 19; }
    writel(100, 212);
    writel(96, 244);
    readl(96);
    mouse->state = 2;
    return 0;
}
int psmouse_deactivate(struct psmouse *mouse) @export {
    mouse->state = 1;
    return 0;
}

/* Device-specific protocol handlers the test mouse never needs: these
 * stay in the driver library as user-level C (74 such functions in the
 * real driver). */
int synaptics_detect(struct psmouse *mouse) @library { return 0; }
int synaptics_init(struct psmouse *mouse) @library { return 0; }
int alps_detect(struct psmouse *mouse) @library { return 0; }
int alps_init(struct psmouse *mouse) @library { return 0; }
int logips2pp_detect(struct psmouse *mouse) @library { return 0; }
int logips2pp_init(struct psmouse *mouse) @library { return 0; }
int trackpoint_detect(struct psmouse *mouse) @library { return 0; }
int lifebook_detect(struct psmouse *mouse) @library { return 0; }
int im_detect(struct psmouse *mouse) @library { return 0; }
int genius_detect(struct psmouse *mouse) @library { return 0; }
"#;
}

/// Attaches the mouse to the platform (no PCI; legacy port device).
pub fn attach(_kernel: &Kernel) -> (MmioRegion, Rc<std::cell::RefCell<PsMouseDevice>>) {
    let dev = Rc::new(std::cell::RefCell::new(PsMouseDevice::new(IRQ_LINE)));
    let handle: MmioHandle = dev.clone();
    (MmioRegion::new(handle), dev)
}

/// Kernel-resident mouse state shared by both builds.
pub struct MouseHw {
    /// Port window.
    pub bar: MmioRegion,
    pktcnt: Cell<u32>,
    bytes: Cell<[u8; 3]>,
    /// Packets decoded.
    pub packets: Cell<u64>,
}

impl MouseHw {
    /// Wraps the port window.
    pub fn new(bar: MmioRegion) -> Self {
        MouseHw {
            bar,
            pktcnt: Cell::new(0),
            bytes: Cell::new([0; 3]),
            packets: Cell::new(0),
        }
    }

    /// Interrupt service: drains the output buffer, decodes packets, and
    /// reports input events.
    pub fn handle_irq(&self, kernel: &Kernel, devname: &str) {
        while self.bar.inl(kernel, hwreg::PORT_STATUS) & hwreg::STATUS_OBF != 0 {
            let byte = self.bar.inl(kernel, hwreg::PORT_DATA) as u8;
            let mut bytes = self.bytes.get();
            let n = self.pktcnt.get() as usize;
            bytes[n.min(2)] = byte;
            self.bytes.set(bytes);
            self.pktcnt.set(self.pktcnt.get() + 1);
            if self.pktcnt.get() == 3 {
                self.pktcnt.set(0);
                self.packets.set(self.packets.get() + 1);
                let [b0, dx, dy] = self.bytes.get();
                let _ = kernel.input_report(
                    devname,
                    InputEvent {
                        ev_type: EV_REL,
                        code: REL_X,
                        value: dx as i8 as i32,
                    },
                );
                let _ = kernel.input_report(
                    devname,
                    InputEvent {
                        ev_type: EV_REL,
                        code: REL_Y,
                        value: dy as i8 as i32,
                    },
                );
                if b0 & 1 != 0 {
                    let _ = kernel.input_report(
                        devname,
                        InputEvent {
                            ev_type: EV_KEY,
                            code: BTN_LEFT,
                            value: 1,
                        },
                    );
                }
            }
        }
    }

    /// Sends a command byte to the mouse through the controller.
    pub fn send_cmd(&self, kernel: &Kernel, cmd: u32) {
        self.bar
            .outl(kernel, hwreg::PORT_STATUS, hwreg::CMD_WRITE_MOUSE);
        self.bar.outl(kernel, hwreg::PORT_DATA, cmd);
    }

    /// Drains and returns pending response bytes.
    pub fn drain(&self, kernel: &Kernel) -> Vec<u8> {
        let mut out = Vec::new();
        while self.bar.inl(kernel, hwreg::PORT_STATUS) & hwreg::STATUS_OBF != 0 {
            out.push(self.bar.inl(kernel, hwreg::PORT_DATA) as u8);
        }
        out
    }
}

/// The installed native driver.
pub struct NativeMouse {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Hardware state.
    pub hw: Rc<MouseHw>,
    /// Input device name.
    pub devname: String,
    /// Measured `insmod` latency.
    pub init_latency_ns: u64,
    /// Handle to the device model (movement injection).
    pub dev: Rc<std::cell::RefCell<PsMouseDevice>>,
}

/// Loads the native driver.
pub fn install_native(kernel: &Kernel, devname: &str) -> KResult<NativeMouse> {
    let (bar, dev) = attach(kernel);
    let hw = Rc::new(MouseHw::new(bar));
    let name = devname.to_string();
    let hw_init = Rc::clone(&hw);
    let init_latency_ns = kernel.insmod("psmouse", move |k| {
        hw_init.send_cmd(k, hwreg::MOUSE_RESET);
        let _ = hw_init.drain(k);
        hw_init.send_cmd(k, hwreg::MOUSE_GET_ID);
        let _ = hw_init.drain(k);
        hw_init.send_cmd(k, hwreg::MOUSE_SET_RATE);
        hw_init.send_cmd(k, 100);
        let _ = hw_init.drain(k);
        hw_init.send_cmd(k, hwreg::MOUSE_ENABLE);
        let _ = hw_init.drain(k);
        k.input_register_device(&name)?;
        let hw_irq = Rc::clone(&hw_init);
        let n = name.clone();
        k.request_irq(
            IRQ_LINE,
            "psmouse",
            Rc::new(move |k| hw_irq.handle_irq(k, &n)),
        )?;
        Ok(())
    })?;
    Ok(NativeMouse {
        kernel: kernel.clone(),
        hw,
        devname: devname.to_string(),
        init_latency_ns,
        dev,
    })
}

/// The installed decaf driver.
pub struct DecafMouse {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Hardware state.
    pub hw: Rc<MouseHw>,
    /// Input device name.
    pub devname: String,
    /// XPC channel.
    pub channel: Rc<XpcChannel>,
    /// Nuclear runtime.
    pub nuc: Rc<NuclearRuntime>,
    /// Shared mouse object.
    pub mouse_obj: CAddr,
    /// Measured `insmod` latency.
    pub init_latency_ns: u64,
    /// Slicing plan.
    pub plan: SlicePlan,
    /// Handle to the device model (movement injection).
    pub dev: Rc<std::cell::RefCell<PsMouseDevice>>,
}

/// Loads the decaf driver: detection/configuration at user level, the
/// byte-stream interrupt path in the kernel.
pub fn install_decaf(kernel: &Kernel, devname: &str) -> KResult<DecafMouse> {
    let (bar, dev) = attach(kernel);
    let hw = Rc::new(MouseHw::new(bar.clone()));
    let plan = slice(minic::SOURCE, &SliceConfig::default()).map_err(|_| KError::Inval)?;
    let channel = support::channel_from_plan(&plan);
    support::register_io_procs(&channel, bar).map_err(|_| KError::Io)?;

    channel
        .register_proc(
            Domain::Decaf,
            ProcDef {
                name: "psmouse_probe".into(),
                arg_types: vec!["psmouse".into()],
                handler: Rc::new(|k, ch, args, _| {
                    let Some(m) = args[0] else {
                        return XdrValue::Int(-22);
                    };
                    let send = |k: &Kernel, cmd: u32| {
                        decaf_writel(k, ch, hwreg::PORT_STATUS, hwreg::CMD_WRITE_MOUSE);
                        decaf_writel(k, ch, hwreg::PORT_DATA, cmd);
                    };
                    let drain = |k: &Kernel| {
                        let mut out = Vec::new();
                        while decaf_readl(k, ch, hwreg::PORT_STATUS) & hwreg::STATUS_OBF != 0 {
                            out.push(decaf_readl(k, ch, hwreg::PORT_DATA) as u8);
                        }
                        out
                    };
                    // psmouse_reset: expect ACK + self-test + id.
                    send(k, hwreg::MOUSE_RESET);
                    let resp = drain(k);
                    if resp != vec![hwreg::MOUSE_ACK, hwreg::MOUSE_SELFTEST_OK, 0x00] {
                        return XdrValue::Int(KError::NoDev.errno());
                    }
                    // psmouse_detect.
                    send(k, hwreg::MOUSE_GET_ID);
                    let _ = drain(k);
                    // psmouse_initialize: rate + resolution.
                    send(k, hwreg::MOUSE_SET_RATE);
                    send(k, 100);
                    let _ = drain(k);
                    // psmouse_activate.
                    send(k, hwreg::MOUSE_ENABLE);
                    let ack = drain(k);
                    if ack != vec![hwreg::MOUSE_ACK] {
                        return XdrValue::Int(KError::Io.errno());
                    }
                    let heap = ch.heap(Domain::Decaf);
                    {
                        let mut h = heap.borrow_mut();
                        let _ = h.set_scalar(m, "state", XdrValue::Int(2));
                        let _ = h.set_scalar(m, "protocol", XdrValue::Int(1));
                        let _ = h.set_scalar(m, "pktsize", XdrValue::Int(3));
                        let _ = h.set_scalar(m, "rate", XdrValue::Int(100));
                        let _ = h.set_scalar(m, "resolution", XdrValue::Int(4));
                    }
                    XdrValue::Int(0)
                }),
            },
        )
        .map_err(|_| KError::Io)?;

    let nuc = Rc::new(NuclearRuntime::new(
        kernel.clone(),
        Rc::clone(&channel),
        Some(IRQ_LINE),
    ));

    let mut mouse_obj = 0;
    let nuc_init = Rc::clone(&nuc);
    let ch_init = Rc::clone(&channel);
    let hw_init = Rc::clone(&hw);
    let name = devname.to_string();
    let spec = plan.spec.clone();
    let obj_ref = &mut mouse_obj;
    let init_latency_ns = kernel.insmod("psmouse-decaf", move |k| {
        let m = {
            let heap = ch_init.heap(Domain::Nucleus);
            let mut h = heap.borrow_mut();
            h.alloc_default("psmouse", &spec)
                .map_err(|_| KError::NoMem)?
        };
        *obj_ref = m;
        let ret = nuc_init
            .upcall_errno("psmouse_probe", &[Some(m)], &[])
            .map_err(|_| KError::Io)?;
        if ret < 0 {
            return Err(KError::from_errno(ret).unwrap_or(KError::Io));
        }
        k.input_register_device(&name)?;
        let hw_irq = Rc::clone(&hw_init);
        let n = name.clone();
        k.request_irq(
            IRQ_LINE,
            "psmouse",
            Rc::new(move |k| hw_irq.handle_irq(k, &n)),
        )?;
        Ok(())
    })?;

    Ok(DecafMouse {
        kernel: kernel.clone(),
        hw,
        devname: devname.to_string(),
        channel,
        nuc,
        mouse_obj,
        init_latency_ns,
        plan,
        dev,
    })
}

impl DecafMouse {
    /// Round trips between nucleus and decaf driver.
    pub fn crossings(&self) -> u64 {
        self.channel.stats().round_trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicer_keeps_protocol_handlers_in_library() {
        let plan = slice(minic::SOURCE, &SliceConfig::default()).unwrap();
        assert_eq!(
            plan.library_fns.len(),
            10,
            "device-specific handlers stay C"
        );
        assert!(plan.kernel_fns.contains(&"psmouse_interrupt".to_string()));
        assert!(plan.decaf_fns.contains(&"psmouse_probe".to_string()));
    }

    #[test]
    fn native_reports_motion() {
        let k = Kernel::new();
        let drv = install_native(&k, "mouse0").unwrap();
        assert!(drv.init_latency_ns > 0);
        assert!(drv.dev.borrow().reporting(), "probe enabled reporting");
        // Inject movement; the IRQ path decodes it into input events.
        drv.dev.borrow_mut().inject_move(&k, 5, -2, true);
        k.schedule_point();
        assert!(k.input_event_count("mouse0") >= 3, "x, y and button events");
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn decaf_probe_handshakes_through_downcalls() {
        let k = Kernel::new();
        let drv = install_decaf(&k, "mouse0").unwrap();
        let crossings = drv.crossings();
        assert!(
            (10..80).contains(&crossings),
            "probe is chatty over the port: {crossings}"
        );
        // The decaf driver stored its results in the shared object.
        let heap = drv.channel.heap(Domain::Nucleus);
        let h = heap.borrow();
        assert_eq!(h.scalar(drv.mouse_obj, "state").unwrap().as_int(), Some(2));
        assert_eq!(h.scalar(drv.mouse_obj, "rate").unwrap().as_int(), Some(100));
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }
}
