//! The RTL8139 (`8139too`) fast-ethernet driver: mini-C source, native
//! build and decaf build.
//!
//! In the paper this was one of the two drivers converted during Decaf's
//! development; 25 of its functions moved to Java with 16 left in the
//! driver library and 12 in the kernel (Table 2). The paper also changed
//! six lines in its nucleus to defer functions executed at high priority
//! to a worker thread — reproduced here by the `rtl8139_thread` work-item
//! deferral.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use decaf_shmring::{BufPool, Descriptor, DoorbellPolicy, ShmRing};
use decaf_simdev::rtl8139 as hwreg;
use decaf_simdev::Rtl8139Device;
use decaf_simkernel::kernel::IrqHandler;
use decaf_simkernel::{
    DmaMemory, KError, KResult, Kernel, MmioHandle, MmioRegion, SkBuff, TimerId,
};
use decaf_slicer::{slice, SliceConfig, SlicePlan};
use decaf_xdr::graph::CAddr;
use decaf_xdr::XdrValue;
use decaf_xpc::{ChannelConfig, DataPathChannel, Domain, NuclearRuntime, ProcDef, XpcChannel};

use crate::support::{self, decaf_readl, decaf_writel, RxMode};

/// TX descriptors per doorbell: the 8139 has only four transmit slots,
/// so the ring batches shallowly.
pub const TX_DOORBELL_WATERMARK: usize = 2;

/// IRQ line of the adapter.
pub const IRQ_LINE: u32 = 10;
/// The MAC programmed into the ID registers.
pub const MAC: [u8; 6] = [0x52, 0x54, 0x00, 0x12, 0x34, 0x56];
/// DMA offset of the receive ring.
pub const RX_RING_OFF: u32 = 0x4000;
/// DMA offset of the four transmit buffers.
pub const TX_BUF_OFF: usize = 0x100;

/// Mini-C source for DriverSlicer.
pub mod minic {
    /// The driver source.
    pub const SOURCE: &str = r#"
struct rtl8139_private {
    int msg_enable;
    int link_up;
    int media;
    int twistie;
    u8 mac[6];
    unsigned long long tx_packets;
    unsigned long long rx_packets;
    int cur_tx;
    int cur_rx;
};

/* Interrupt handler and packet paths stay in the kernel. */
int rtl8139_interrupt(struct rtl8139_private *tp) @irq {
    int status;
    status = readl(64);
    if (status == 0) { return 0; }
    rtl8139_rx(tp);
    rtl8139_tx_interrupt(tp);
    return 1;
}
int rtl8139_rx(struct rtl8139_private *tp) @datapath {
    tp->rx_packets += 1;
    netif_rx(tp);
    return 0;
}
int rtl8139_tx_interrupt(struct rtl8139_private *tp) @datapath {
    tp->tx_packets += 1;
    return 0;
}
int rtl8139_start_xmit(struct rtl8139_private *tp, int len) @datapath {
    writel(16, len);
    tp->cur_tx += 1;
    return 0;
}

/* Initialization and configuration move to user level. */
int rtl8139_probe(struct rtl8139_private *tp) @export {
    int i;
    i = rtl8139_init_board(tp);
    if (i) return i;
    i = rtl8139_read_mac(tp);
    if (i) return i;
    rtl8139_init_media(tp);
    return 0;
}
int rtl8139_init_board(struct rtl8139_private *tp) @export {
    writel(56, 16);
    readl(56);
    tp->msg_enable = 7;
    return 0;
}
int rtl8139_read_mac(struct rtl8139_private *tp) @export {
    int lo;
    int hi;
    DECAF_WVAR(tp->mac);
    lo = readl(0);
    hi = readl(4);
    return 0;
}
int rtl8139_init_media(struct rtl8139_private *tp) {
    tp->media = 1;
    tp->twistie = 0;
    return 0;
}
int rtl8139_open(struct rtl8139_private *tp) @export {
    int err;
    err = request_irq(tp);
    if (err) return err;
    err = rtl8139_hw_start(tp);
    if (err) goto err_start;
    tp->link_up = 1;
    return 0;
err_start:
    free_irq(tp);
    return err;
}
int rtl8139_hw_start(struct rtl8139_private *tp) @export {
    writel(48, 16384);
    writel(56, 12);
    writel(60, 5);
    return 0;
}
int rtl8139_close(struct rtl8139_private *tp) @export {
    tp->link_up = 0;
    writel(56, 0);
    free_irq(tp);
    return 0;
}
int rtl8139_get_stats(struct rtl8139_private *tp) @export {
    unsigned long long t;
    t = tp->tx_packets;
    return 0;
}
int rtl8139_set_rx_mode(struct rtl8139_private *tp) @export {
    writel(68, 15);
    return 0;
}

/* User-level C helpers (the driver library). */
int rtl8139_chip_quirk(struct rtl8139_private *tp) @library {
    writel(82, 1);
    return 0;
}
int rtl8139_eeprom_delay(struct rtl8139_private *tp) @library {
    readl(80);
    return 0;
}
"#;
}

/// Attaches the device model to the bus.
pub fn attach(kernel: &Kernel) -> (MmioRegion, DmaMemory, Rc<std::cell::RefCell<Rtl8139Device>>) {
    let dma = DmaMemory::new(64 * 1024);
    let dev = Rc::new(std::cell::RefCell::new(Rtl8139Device::new(
        MAC,
        IRQ_LINE,
        dma.clone(),
    )));
    let handle: MmioHandle = dev.clone();
    kernel.pci_add_device(decaf_simkernel::pci::PciDevice {
        vendor: 0x10ec,
        device: 0x8139,
        irq_line: IRQ_LINE,
        bars: vec![handle.clone()],
        name: "8139too".into(),
    });
    (MmioRegion::new(handle), dma, dev)
}

/// Kernel-resident RTL8139 state shared by both builds.
pub struct Rtl8139Hw {
    /// Register window.
    pub bar: MmioRegion,
    /// DMA region.
    pub dma: DmaMemory,
    cur_tx: Cell<u32>,
    rx_read_off: Cell<u32>,
    pending_tx_pkts: Cell<u64>,
    pending_tx_bytes: Cell<u64>,
}

impl Rtl8139Hw {
    /// Wraps the register window and DMA region.
    pub fn new(bar: MmioRegion, dma: DmaMemory) -> Self {
        Rtl8139Hw {
            bar,
            dma,
            cur_tx: Cell::new(0),
            rx_read_off: Cell::new(0),
            pending_tx_pkts: Cell::new(0),
            pending_tx_bytes: Cell::new(0),
        }
    }

    /// Starts the chip: rx ring, tx/rx enable, interrupts.
    pub fn hw_start(&self, kernel: &Kernel) {
        self.bar.write32(kernel, hwreg::RBSTART, RX_RING_OFF);
        self.bar
            .write32(kernel, hwreg::CR, hwreg::CR_TE | hwreg::CR_RE);
        self.bar
            .write32(kernel, hwreg::IMR, hwreg::INT_TOK | hwreg::INT_ROK);
        self.rx_read_off.set(0);
    }

    /// Transmits one frame through the next TX slot: one audited payload
    /// copy into the DMA buffer, then the descriptor writes.
    pub fn xmit(&self, kernel: &Kernel, skb: &SkBuff) -> KResult<()> {
        if skb.len() > 1792 {
            return Err(KError::Inval);
        }
        let slot = self.cur_tx.get() % 4;
        let buf = TX_BUF_OFF + slot as usize * 2048;
        self.dma.write_bytes(buf, &skb.data);
        kernel.charge_copy(decaf_simkernel::CpuClass::Kernel, skb.len() as u64);
        self.xmit_desc(kernel, buf, skb.len())
    }

    /// Starts transmission of a payload *already resident* in the DMA
    /// region at `buf` — the zero-copy path. The 8139 has no posted
    /// descriptor ring: the TSD write *is* the per-packet doorbell, so
    /// only the payload copy is saved, not the MMIO.
    pub fn xmit_desc(&self, kernel: &Kernel, buf: usize, len: usize) -> KResult<()> {
        if len > 1792 {
            return Err(KError::Inval);
        }
        let slot = self.cur_tx.get() % 4;
        self.bar
            .write32(kernel, hwreg::TSAD0 + slot as u64 * 4, buf as u32);
        self.bar
            .write32(kernel, hwreg::TSD0 + slot as u64 * 4, len as u32);
        self.cur_tx.set(self.cur_tx.get() + 1);
        self.pending_tx_pkts.set(self.pending_tx_pkts.get() + 1);
        self.pending_tx_bytes
            .set(self.pending_tx_bytes.get() + len as u64);
        Ok(())
    }

    /// Interrupt service: acknowledge causes, drain the rx ring.
    pub fn handle_irq(&self, kernel: &Kernel, ifname: &str) {
        let isr = self.bar.read32(kernel, hwreg::ISR);
        if isr & hwreg::INT_TOK != 0 {
            kernel.net_tx_done(
                ifname,
                self.pending_tx_pkts.get(),
                self.pending_tx_bytes.get(),
            );
            self.pending_tx_pkts.set(0);
            self.pending_tx_bytes.set(0);
        }
        if isr & hwreg::INT_ROK != 0 {
            self.rx_poll(kernel, ifname);
        }
        self.bar.write32(kernel, hwreg::ISR, isr);
    }

    fn rx_poll(&self, kernel: &Kernel, ifname: &str) {
        for (off, payload) in self.rx_harvest(kernel) {
            let data = self.dma.read_bytes(off as usize, payload);
            let _ = kernel.netif_rx(
                ifname,
                SkBuff {
                    data,
                    protocol: 0x0800,
                },
            );
        }
        self.rx_maybe_rewind(kernel);
    }

    /// Walks completed receive-ring entries *without copying payloads*:
    /// returns `(payload_offset, payload_len)` pairs. Callers must call
    /// [`Rtl8139Hw::rx_maybe_rewind`] once the payloads have been
    /// consumed.
    pub fn rx_harvest(&self, kernel: &Kernel) -> Vec<(u32, usize)> {
        self.rx_harvest_limited(kernel, usize::MAX)
    }

    /// Like [`Rtl8139Hw::rx_harvest`], stopping after `max` frames. The
    /// read pointer advances only past harvested frames, so a bounded
    /// caller (a descriptor ring with finite free slots) never loses
    /// what it could not take — the remainder is picked up next time.
    pub fn rx_harvest_limited(&self, kernel: &Kernel, max: usize) -> Vec<(u32, usize)> {
        let cbr = self.bar.read32(kernel, hwreg::CBR);
        let mut off = self.rx_read_off.get();
        let mut out = Vec::new();
        while off < cbr && out.len() < max {
            let base = RX_RING_OFF + off;
            let header = self.dma.read_u32(base as usize);
            if header & 1 == 0 {
                break;
            }
            let len = ((header >> 16) & 0xffff) as usize;
            let payload = len.saturating_sub(4);
            out.push((base + 4, payload));
            off += 4 + payload as u32;
            off = (off + 3) & !3;
        }
        self.rx_read_off.set(off);
        out
    }

    /// Rewinds the ring once the read pointer nears the end (drain point;
    /// the harvested payloads must already be consumed).
    pub fn rx_maybe_rewind(&self, kernel: &Kernel) {
        if self.rx_read_off.get() >= hwreg::RX_RING_LEN as u32 - 2048 {
            self.bar.write32(kernel, hwreg::CBR, 0);
            self.rx_read_off.set(0);
        }
    }
}

/// The installed native driver.
pub struct Native8139 {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Hardware state.
    pub hw: Rc<Rtl8139Hw>,
    /// Interface name.
    pub ifname: String,
    /// Measured `insmod` latency.
    pub init_latency_ns: u64,
    /// Handle to the device model.
    pub dev: Rc<std::cell::RefCell<Rtl8139Device>>,
}

/// Loads the native (kernel-only) driver.
pub fn install_native(kernel: &Kernel, ifname: &str) -> KResult<Native8139> {
    let (bar, dma, dev) = attach(kernel);
    let hw = Rc::new(Rtl8139Hw::new(bar, dma));
    let name = ifname.to_string();
    let hw_init = Rc::clone(&hw);
    let init_latency_ns = kernel.insmod("8139too", move |k| {
        hw_init.bar.write32(k, hwreg::CR, hwreg::CR_RST);
        let _ = hw_init.bar.read32(k, hwreg::CR);
        let _lo = hw_init.bar.read32(k, hwreg::IDR0);
        let _hi = hw_init.bar.read32(k, hwreg::IDR4);
        let hw_open = Rc::clone(&hw_init);
        let hw_stop = Rc::clone(&hw_init);
        let hw_x = Rc::clone(&hw_init);
        k.register_netdev(
            &name,
            decaf_simkernel::net::NetDeviceOps {
                open: Rc::new(move |k| {
                    hw_open.hw_start(k);
                    Ok(())
                }),
                stop: Rc::new(move |k| {
                    hw_stop.bar.write32(k, hwreg::CR, 0);
                    Ok(())
                }),
                xmit: Rc::new(move |k, skb| hw_x.xmit(k, &skb)),
            },
        )?;
        let hw_irq = Rc::clone(&hw_init);
        let n = name.clone();
        k.request_irq(
            IRQ_LINE,
            "8139too",
            Rc::new(move |k| hw_irq.handle_irq(k, &n)),
        )?;
        Ok(())
    })?;
    Ok(Native8139 {
        kernel: kernel.clone(),
        hw,
        ifname: ifname.to_string(),
        init_latency_ns,
        dev,
    })
}

/// The installed decaf driver.
pub struct Decaf8139 {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Hardware state.
    pub hw: Rc<Rtl8139Hw>,
    /// Interface name.
    pub ifname: String,
    /// XPC channel to the decaf driver.
    pub channel: Rc<XpcChannel>,
    /// Nuclear runtime.
    pub nuc: Rc<NuclearRuntime>,
    /// Shared private-state object.
    pub priv_obj: CAddr,
    /// Measured `insmod` latency.
    pub init_latency_ns: u64,
    /// Slicing plan.
    pub plan: SlicePlan,
    /// Handle to the device model.
    pub dev: Rc<std::cell::RefCell<Rtl8139Device>>,
    /// The transmit shmring data path (shmring build only).
    pub tx_path: Option<Rc<DataPathChannel>>,
    /// The receive shmring data path (shmring build only).
    pub rx_path: Option<Rc<DataPathChannel>>,
    /// How this build collects received frames (shmring builds only).
    pub rx_mode: RxMode,
    poll_timer: Option<TimerId>,
    rx_poll_timer: Option<TimerId>,
}

/// Loads the decaf (split) driver with the kernel-resident data path.
pub fn install_decaf(kernel: &Kernel, ifname: &str) -> KResult<Decaf8139> {
    install_decaf_with(kernel, ifname, false, RxMode::Interrupt)
}

/// Loads the decaf driver with the user-level shmring data path — the
/// `ChannelConfig::kernel_user_shmring()` build for this adapter.
pub fn install_shmring(kernel: &Kernel, ifname: &str) -> KResult<Decaf8139> {
    install_decaf_with(kernel, ifname, true, RxMode::Interrupt)
}

/// Loads the shmring build with [`RxMode::Poll`] receive: the first RX
/// interrupt masks `INT_ROK`, and a periodic budgeted poll probes the
/// byte-packed receive ring instead of riding doorbell upcalls.
pub fn install_shmring_poll(kernel: &Kernel, ifname: &str) -> KResult<Decaf8139> {
    install_decaf_with(kernel, ifname, true, RxMode::Poll)
}

fn install_decaf_with(
    kernel: &Kernel,
    ifname: &str,
    shmring: bool,
    rx_mode: RxMode,
) -> KResult<Decaf8139> {
    let (bar, dma, dev) = attach(kernel);
    let hw = Rc::new(Rtl8139Hw::new(bar.clone(), dma));
    let plan = slice(minic::SOURCE, &SliceConfig::default()).map_err(|_| KError::Inval)?;
    let config = if shmring {
        ChannelConfig::kernel_user_shmring()
    } else {
        ChannelConfig::kernel_user_batched()
    };
    let channel = support::channel_from_plan_with(&plan, config);
    support::register_io_procs(&channel, bar).map_err(|_| KError::Io)?;

    let datapath = if shmring {
        Some(build_datapath(kernel, &channel, &hw, ifname, rx_mode).map_err(|_| KError::Io)?)
    } else {
        None
    };
    let irq_handler: IrqHandler = match &datapath {
        Some(dp) => Rc::clone(&dp.irq_handler),
        None => {
            let hw_irq = Rc::clone(&hw);
            let name = ifname.to_string();
            Rc::new(move |k| hw_irq.handle_irq(k, &name))
        }
    };
    // The 1792-byte hardware limit is enforced at the ring mouth, so a
    // descriptor the chip would reject never enters the data path.
    let xmit: decaf_simkernel::net::XmitOp = match &datapath {
        Some(dp) => support::shmring_xmit_op(Rc::clone(&dp.tx), 1792),
        None => {
            let hw_x = Rc::clone(&hw);
            Rc::new(move |k, skb| hw_x.xmit(k, &skb))
        }
    };

    // Kernel imports called from user level.
    let k_handle = kernel.clone();
    channel
        .register_proc(
            Domain::Nucleus,
            ProcDef {
                name: "request_irq".into(),
                arg_types: vec![],
                handler: Rc::new(move |_k, _, _, _| {
                    support::errno_value(k_handle.request_irq(
                        IRQ_LINE,
                        "8139too",
                        Rc::clone(&irq_handler),
                    ))
                }),
            },
        )
        .map_err(|_| KError::Io)?;
    let k_handle = kernel.clone();
    channel
        .register_proc(
            Domain::Nucleus,
            ProcDef {
                name: "free_irq".into(),
                arg_types: vec![],
                handler: Rc::new(move |_k, _, _, _| {
                    k_handle.free_irq(IRQ_LINE);
                    XdrValue::Int(0)
                }),
            },
        )
        .map_err(|_| KError::Io)?;
    let hw_start = Rc::clone(&hw);
    channel
        .register_proc(
            Domain::Nucleus,
            ProcDef {
                name: "hw_start_datapath".into(),
                arg_types: vec![],
                handler: Rc::new(move |k, _, _, _| {
                    hw_start.hw_start(k);
                    XdrValue::Int(0)
                }),
            },
        )
        .map_err(|_| KError::Io)?;

    // Decaf handlers: probe, open, close.
    channel
        .register_proc(
            Domain::Decaf,
            ProcDef {
                name: "rtl8139_probe".into(),
                arg_types: vec!["rtl8139_private".into()],
                handler: Rc::new(|k, ch, args, _| {
                    let Some(a) = args[0] else {
                        return XdrValue::Int(-22);
                    };
                    // init_board: reset and settle.
                    decaf_writel(k, ch, hwreg::CR, hwreg::CR_RST);
                    let _ = decaf_readl(k, ch, hwreg::CR);
                    // read_mac.
                    let lo = decaf_readl(k, ch, hwreg::IDR0).to_le_bytes();
                    let hi = decaf_readl(k, ch, hwreg::IDR4).to_le_bytes();
                    let heap = ch.heap(Domain::Decaf);
                    {
                        let mut h = heap.borrow_mut();
                        let _ = h.set_scalar(a, "msg_enable", XdrValue::Int(7));
                        let _ = h.set_scalar(a, "media", XdrValue::Int(1));
                        let _ = h.set_scalar(
                            a,
                            "mac",
                            XdrValue::Opaque(vec![lo[0], lo[1], lo[2], lo[3], hi[0], hi[1]]),
                        );
                    }
                    XdrValue::Int(0)
                }),
            },
        )
        .map_err(|_| KError::Io)?;
    channel
        .register_proc(
            Domain::Decaf,
            ProcDef {
                name: "rtl8139_open".into(),
                arg_types: vec!["rtl8139_private".into()],
                handler: Rc::new(|k, ch, args, _| {
                    let Some(a) = args[0] else {
                        return XdrValue::Int(-22);
                    };
                    // request_irq, then hw_start; free the irq if start fails.
                    match ch.call(k, Domain::Decaf, "request_irq", &[], &[]) {
                        Ok(XdrValue::Int(0)) => {}
                        Ok(XdrValue::Int(e)) => return XdrValue::Int(e),
                        _ => return XdrValue::Int(KError::Io.errno()),
                    }
                    let _ = ch.call(k, Domain::Decaf, "hw_start_datapath", &[], &[]);
                    decaf_writel(k, ch, hwreg::IMR, hwreg::INT_TOK | hwreg::INT_ROK);
                    let heap = ch.heap(Domain::Decaf);
                    let _ = heap.borrow_mut().set_scalar(a, "link_up", XdrValue::Int(1));
                    XdrValue::Int(0)
                }),
            },
        )
        .map_err(|_| KError::Io)?;
    channel
        .register_proc(
            Domain::Decaf,
            ProcDef {
                name: "rtl8139_close".into(),
                arg_types: vec!["rtl8139_private".into()],
                handler: Rc::new(|k, ch, args, _| {
                    if let Some(a) = args[0] {
                        let heap = ch.heap(Domain::Decaf);
                        let _ = heap.borrow_mut().set_scalar(a, "link_up", XdrValue::Int(0));
                    }
                    decaf_writel(k, ch, hwreg::CR, 0);
                    let _ = ch.call(k, Domain::Decaf, "free_irq", &[], &[]);
                    XdrValue::Int(0)
                }),
            },
        )
        .map_err(|_| KError::Io)?;

    let nuc = Rc::new(NuclearRuntime::new(
        kernel.clone(),
        Rc::clone(&channel),
        Some(IRQ_LINE),
    ));

    let mut priv_obj = 0;
    let nuc_init = Rc::clone(&nuc);
    let ch_init = Rc::clone(&channel);
    let name = ifname.to_string();
    let spec = plan.spec.clone();
    let priv_ref = &mut priv_obj;
    let init_latency_ns = kernel.insmod("8139too_decaf", move |k| {
        let a = {
            let heap = ch_init.heap(Domain::Nucleus);
            let mut h = heap.borrow_mut();
            h.alloc_default("rtl8139_private", &spec)
                .map_err(|_| KError::NoMem)?
        };
        *priv_ref = a;
        let ret = nuc_init
            .upcall_errno("rtl8139_probe", &[Some(a)], &[])
            .map_err(|_| KError::Io)?;
        if ret < 0 {
            return Err(KError::from_errno(ret).unwrap_or(KError::Io));
        }
        let nuc_open = Rc::clone(&nuc_init);
        let nuc_stop = Rc::clone(&nuc_init);
        k.register_netdev(
            &name,
            decaf_simkernel::net::NetDeviceOps {
                open: Rc::new(move |_k| {
                    match nuc_open.upcall_errno("rtl8139_open", &[Some(a)], &[]) {
                        Ok(0) => Ok(()),
                        Ok(e) => Err(KError::from_errno(e).unwrap_or(KError::Io)),
                        Err(_) => Err(KError::Io),
                    }
                }),
                stop: Rc::new(move |_k| {
                    let _ = nuc_stop.upcall_errno("rtl8139_close", &[Some(a)], &[]);
                    Ok(())
                }),
                xmit,
            },
        )?;
        Ok(())
    })?;

    let (tx_path, rx_path, poll_timer, rx_poll_timer) = match datapath {
        Some(dp) => (
            Some(dp.tx),
            Some(dp.rx),
            Some(dp.poll_timer),
            dp.rx_poll_timer,
        ),
        None => (None, None, None, None),
    };
    Ok(Decaf8139 {
        kernel: kernel.clone(),
        hw,
        ifname: ifname.to_string(),
        channel,
        nuc,
        priv_obj,
        init_latency_ns,
        plan,
        dev,
        tx_path,
        rx_path,
        rx_mode,
        poll_timer,
        rx_poll_timer,
    })
}

/// Builds the rings, the pool over the four hardware transmit buffers,
/// the decaf drain handlers, the interrupt handler and the poll timer.
fn build_datapath(
    kernel: &Kernel,
    channel: &Rc<XpcChannel>,
    hw: &Rc<Rtl8139Hw>,
    ifname: &str,
    rx_mode: RxMode,
) -> decaf_xpc::XpcResult<support::ShmDataPath> {
    // The 8139 has exactly four 2 KiB transmit buffers; the pool wraps
    // them so ring descriptors point straight at hardware memory.
    let tx = DataPathChannel::new(
        Rc::clone(channel),
        Domain::Nucleus,
        "rtl8139_tx_drain",
        Rc::new(ShmRing::new("8139-tx", 8)),
        Rc::new(ShmRing::new("8139-tx-done", 16)),
        Some(Rc::new(BufPool::new(hw.dma.clone(), TX_BUF_OFF, 2048, 4))),
        DoorbellPolicy::with_watermark(TX_DOORBELL_WATERMARK),
    )?;
    // RX descriptors carry raw ring offsets in their cookies (the 8139's
    // receive ring is byte-packed, not slot-based), so no pool.
    let rx = DataPathChannel::new(
        Rc::clone(channel),
        Domain::Nucleus,
        "rtl8139_rx_drain",
        Rc::new(ShmRing::new("8139-rx", 64)),
        Rc::new(ShmRing::new("8139-rx-done", 128)),
        None,
        DoorbellPolicy::with_watermark(64),
    )?;

    let inflight: Rc<RefCell<VecDeque<Descriptor>>> = Rc::new(RefCell::new(VecDeque::new()));

    // Decaf-side TX drain: the user-level driver writes TSAD/TSD from
    // its shared mapping. The 8139's TSD write is a per-packet doorbell
    // by hardware design — only the payload copy is saved here.
    {
        let end = tx.end(Domain::Decaf);
        let hw = Rc::clone(hw);
        let inflight = Rc::clone(&inflight);
        channel.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "rtl8139_tx_drain".into(),
                arg_types: vec![],
                handler: Rc::new(move |k, _, _, _| {
                    let mut n = 0;
                    let pool = end.pool().expect("tx path owns a pool");
                    while let Some(d) = end.consume_one(k) {
                        let off = pool.offset_of(d.buf).expect("live pool handle");
                        match hw.xmit_desc(k, off, d.len as usize) {
                            Ok(()) => {
                                inflight.borrow_mut().push_back(d);
                                n += 1;
                            }
                            // A rejected frame must not become in-flight
                            // (it would be counted as transmitted at the
                            // next INT_TOK); hand its buffer back.
                            Err(_) => {
                                let _ = end.complete(k, d);
                            }
                        }
                    }
                    XdrValue::Int(n)
                }),
            },
        )?;
    }

    // Decaf-side RX drain: sees every received descriptor, hands the
    // ring memory back in order.
    {
        let end = rx.end(Domain::Decaf);
        channel.register_proc(
            Domain::Decaf,
            ProcDef {
                name: "rtl8139_rx_drain".into(),
                arg_types: vec![],
                handler: Rc::new(move |k, _, _, _| {
                    let mut n = 0;
                    for d in end.consume(k) {
                        let _ = end.complete(k, d);
                        n += 1;
                    }
                    XdrValue::Int(n)
                }),
            },
        )?;
    }

    let irq_handler: IrqHandler = {
        let hw = Rc::clone(hw);
        let tx_end = tx.end(Domain::Nucleus);
        let inflight = Rc::clone(&inflight);
        let rx_dp = Rc::clone(&rx);
        let name = ifname.to_string();
        Rc::new(move |k| {
            let isr = hw.bar.read32(k, hwreg::ISR);
            if isr & hwreg::INT_TOK != 0 {
                let (mut pkts, mut bytes) = (0u64, 0u64);
                let done: Vec<Descriptor> = inflight.borrow_mut().drain(..).collect();
                for d in done {
                    pkts += 1;
                    bytes += d.len as u64;
                    let _ = tx_end.complete(k, d);
                }
                k.net_tx_done(&name, pkts, bytes);
            }
            if isr & hwreg::INT_ROK != 0 && rx_mode == RxMode::Poll {
                // NAPI-style handoff: the first receive interrupt masks
                // `INT_ROK`; the frames wait in the byte-packed hardware
                // ring for the next poll tick.
                hw.bar.write32(k, hwreg::IMR, hwreg::INT_TOK);
            } else if isr & hwreg::INT_ROK != 0 {
                let _span = k.trace_span("rx", "irq");
                // Harvest only what the shm ring can hold: the read
                // pointer stays on the first unharvested frame, so a
                // burst larger than the ring waits in the hardware ring
                // for the drain work item instead of being dropped.
                let avail = rx_dp.ring().capacity() - rx_dp.pending();
                for (off, len) in hw.rx_harvest_limited(k, avail) {
                    let _ = rx_dp.post(
                        k,
                        Descriptor {
                            buf: decaf_shmring::BufHandle(0),
                            len: len as u32,
                            cookie: off as u64,
                        },
                    );
                }
                if rx_dp.pending() > 0 {
                    let rx_dp = Rc::clone(&rx_dp);
                    let hw = Rc::clone(&hw);
                    let name = name.clone();
                    k.schedule_work("rtl8139_rx_drain_task", move |k| {
                        let _span = k.trace_span("rx", "drain");
                        loop {
                            let _ = rx_dp.ring_doorbell(k);
                            for d in rx_dp.reclaim_completions(k) {
                                let data = hw.dma.read_bytes(d.cookie as usize, d.len as usize);
                                let _ = k.netif_rx(
                                    &name,
                                    SkBuff {
                                        data,
                                        protocol: 0x0800,
                                    },
                                );
                            }
                            // Pick up any frames the IRQ handler had to
                            // leave behind for want of ring slots.
                            let avail = rx_dp.ring().capacity() - rx_dp.pending();
                            for (off, len) in hw.rx_harvest_limited(k, avail) {
                                let _ = rx_dp.post(
                                    k,
                                    Descriptor {
                                        buf: decaf_shmring::BufHandle(0),
                                        len: len as u32,
                                        cookie: off as u64,
                                    },
                                );
                            }
                            if rx_dp.pending() == 0 {
                                break;
                            }
                        }
                        // Everything harvested and delivered: the rewind
                        // cannot discard unread frames.
                        hw.rx_maybe_rewind(k);
                    });
                }
            }
            hw.bar.write32(k, hwreg::ISR, isr);
        })
    };

    let poll_timer = support::shmring_poll_timer(kernel, "rtl8139_shmring_poll", &tx);

    // Poll-mode receive: a fixed-grid tick replaces the RX doorbell
    // upcall (see the e1000 sibling for the cost shape).
    let rx_poll_timer = if rx_mode == RxMode::Poll {
        let rx_dp = Rc::clone(&rx);
        let hw_poll = Rc::clone(hw);
        let name = ifname.to_string();
        let timer = kernel.timer_create(
            "rtl8139_rx_poll",
            Rc::new(move |k| {
                let rx_dp = Rc::clone(&rx_dp);
                let hw = Rc::clone(&hw_poll);
                let name = name.clone();
                k.schedule_work("rtl8139_rx_poll_task", move |k| {
                    let _span = k.trace_span("rx", "poll");
                    let avail = rx_dp.ring().capacity() - rx_dp.pending();
                    for (off, len) in hw.rx_harvest_limited(k, avail) {
                        let _ = rx_dp.post(
                            k,
                            Descriptor {
                                buf: decaf_shmring::BufHandle(0),
                                len: len as u32,
                                cookie: off as u64,
                            },
                        );
                    }
                    let end = rx_dp.end(Domain::Decaf);
                    for d in end.poll_and_reclaim(k, support::RX_POLL_BUDGET) {
                        let _ = end.complete(k, d);
                    }
                    for d in rx_dp.reclaim_completions(k) {
                        let data = hw.dma.read_bytes(d.cookie as usize, d.len as usize);
                        let _ = k.netif_rx(
                            &name,
                            SkBuff {
                                data,
                                protocol: 0x0800,
                            },
                        );
                    }
                    // Only rewind once nothing unread remains parked in
                    // the shm ring (the hardware pointer is then safe).
                    if rx_dp.pending() == 0 {
                        hw.rx_maybe_rewind(k);
                    }
                });
            }),
        );
        kernel.timer_arm_periodic(timer, support::RX_POLL_TICK_NS);
        Some(timer)
    } else {
        None
    };

    Ok(support::ShmDataPath {
        tx,
        rx,
        irq_handler,
        poll_timer,
        rx_poll_timer,
    })
}

impl Decaf8139 {
    /// Round trips between nucleus and decaf driver.
    pub fn crossings(&self) -> u64 {
        self.channel.stats().round_trips
    }

    /// Unloads the driver.
    pub fn remove(self) {
        if let Some(t) = self.poll_timer {
            self.kernel.timer_del(t);
        }
        if let Some(t) = self.rx_poll_timer {
            self.kernel.timer_del(t);
        }
        self.kernel.free_irq(IRQ_LINE);
        let ifname = self.ifname.clone();
        self.kernel
            .rmmod("8139too_decaf", move |k| k.unregister_netdev(&ifname));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicer_plan_shape_matches_table2() {
        let plan = slice(minic::SOURCE, &SliceConfig::default()).unwrap();
        assert!(plan.kernel_fns.contains(&"rtl8139_interrupt".to_string()));
        assert!(plan.decaf_fns.contains(&"rtl8139_open".to_string()));
        assert_eq!(plan.library_fns.len(), 2, "two @library helpers");
        assert!(plan.user_fraction() > 0.6);
    }

    #[test]
    fn native_loopback() {
        let k = Kernel::new();
        let _drv = install_native(&k, "eth1").unwrap();
        k.netdev_open("eth1").unwrap();
        for _ in 0..8 {
            k.net_xmit("eth1", SkBuff::synthetic(600, 3, 0x0800))
                .unwrap();
            k.schedule_point();
        }
        let st = k.net_stats("eth1");
        assert_eq!(st.tx_packets, 8);
        assert_eq!(st.rx_packets, 8);
    }

    #[test]
    fn decaf_init_crosses_then_datapath_does_not() {
        let k = Kernel::new();
        let drv = install_decaf(&k, "eth1").unwrap();
        k.netdev_open("eth1").unwrap();
        let after_open = drv.crossings();
        assert!(
            after_open >= 5,
            "init + open cross the boundary: {after_open}"
        );
        for _ in 0..10 {
            k.net_xmit("eth1", SkBuff::synthetic(600, 3, 0x0800))
                .unwrap();
            k.schedule_point();
        }
        assert_eq!(drv.crossings(), after_open, "steady state is kernel-only");
        let st = k.net_stats("eth1");
        assert_eq!(st.rx_packets, 10);
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn shmring_build_zero_marshal_data_path() {
        let k = Kernel::new();
        let drv = install_shmring(&k, "eth1").unwrap();
        k.netdev_open("eth1").unwrap();
        let before = drv.channel.stats();
        let copied_before = k.stats().bytes_copied;
        for i in 0..12 {
            k.net_xmit("eth1", SkBuff::synthetic(600, i as u8, 0x0800))
                .unwrap();
            k.schedule_point();
            k.run_for(300_000);
        }
        k.run_for(3 * decaf_simkernel::costs::DOORBELL_COALESCE_NS);
        let st = k.net_stats("eth1");
        assert_eq!(st.tx_packets, 12, "all frames crossed the ring");
        assert_eq!(st.rx_packets, 12, "loopback received through the ring");
        let after = drv.channel.stats();
        let marshaled = (after.bytes_in + after.bytes_out) - (before.bytes_in + before.bytes_out);
        assert!(
            marshaled < 12 * 64,
            "marshaled {marshaled} B for 7200 payload B"
        );
        assert!(after.doorbells > before.doorbells);
        assert_eq!(
            after.ring_posts - before.ring_posts,
            24,
            "one TX + one RX descriptor per packet"
        );
        // Copy audit: pool write + stack delivery, exactly like native.
        assert_eq!(k.stats().bytes_copied - copied_before, 2 * 12 * 600);
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn decaf_reads_mac_through_downcalls() {
        let k = Kernel::new();
        let drv = install_decaf(&k, "eth1").unwrap();
        let heap = drv.channel.heap(Domain::Nucleus);
        let mac = heap.borrow().scalar(drv.priv_obj, "mac").unwrap().clone();
        assert_eq!(mac.as_opaque().unwrap(), MAC);
    }

    #[test]
    fn poll_mode_delivers_frames_without_rx_doorbells() {
        const PKTS: u64 = 16;
        let run = |poll: bool| {
            let k = Kernel::new();
            let drv = if poll {
                install_shmring_poll(&k, "eth1").unwrap()
            } else {
                install_shmring(&k, "eth1").unwrap()
            };
            assert_eq!(
                drv.rx_mode,
                if poll {
                    RxMode::Poll
                } else {
                    RxMode::Interrupt
                }
            );
            k.netdev_open("eth1").unwrap();
            k.schedule_point();
            for i in 0..PKTS {
                k.net_xmit("eth1", SkBuff::synthetic(600, i as u8, 0x0800))
                    .unwrap();
                k.schedule_point();
                k.run_for(200_000);
            }
            k.run_for(2 * decaf_simkernel::costs::DOORBELL_COALESCE_NS);
            let st = k.net_stats("eth1");
            assert_eq!(st.tx_packets, PKTS);
            assert_eq!(st.rx_packets, PKTS, "every loopback frame delivered");
            assert!(k.violations().is_empty(), "{:?}", k.violations());
            drv.channel.stats().doorbells
        };
        // TX doorbells ring in both modes; the poll build must shed
        // every RX doorbell crossing, receiving through budgeted probes.
        let interrupt_mode = run(false);
        let poll_mode = run(true);
        assert!(
            poll_mode < interrupt_mode,
            "poll receive must shed doorbells: poll {poll_mode} vs interrupt {interrupt_mode}"
        );
    }
}
