//! Shared glue for the decaf driver builds.

use std::cell::Cell;
use std::rc::Rc;

use decaf_shmring::RingSet;
use decaf_simkernel::kernel::IrqHandler;
use decaf_simkernel::{costs, KError, Kernel, MmioRegion, TimerId};
use decaf_xdr::XdrValue;
use decaf_xpc::{ChannelConfig, DataPathChannel, Domain, ProcDef, XpcChannel, XpcResult};

/// How a shmring NIC build collects received frames.
///
/// Two explicit modes with opposite cost shapes: interrupt-driven
/// receive pays interrupt entry plus a doorbell crossing per batch but
/// is free when the line is quiet; poll-mode receive masks the receive
/// interrupt (NAPI-style, after the first one) and probes the ring on a
/// fixed virtual-time grid, paying [`decaf_simkernel::costs::POLL_SPIN_NS`]
/// per probe whether or not traffic arrived. Poll wins once the offered
/// rate is high enough that probes rarely miss — the crossover the
/// rx-mode ablation sweeps out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RxMode {
    /// Doorbell-interrupt receive: each hardware RX interrupt posts
    /// harvested frames and rings the data-path doorbell from a work
    /// item (the default, matching the kernel driver's shape).
    #[default]
    Interrupt,
    /// Budgeted poll receive: the first RX interrupt masks further RX
    /// interrupts; from then on a periodic tick probes the ring with
    /// [`DataPathEnd::poll_and_reclaim`](decaf_xpc::DataPathEnd::poll_and_reclaim)
    /// under [`RX_POLL_BUDGET`].
    Poll,
}

/// Virtual-time period of the poll-mode receive tick.
pub const RX_POLL_TICK_NS: u64 = 50_000;

/// Descriptors one poll-mode tick may consume before yielding.
pub const RX_POLL_BUDGET: usize = 64;

/// The shmring data-path pieces of one installed driver build: the TX
/// and RX descriptor paths, the interrupt handler that feeds them, and
/// the coalescing poll timer.
pub struct ShmDataPath {
    /// Transmit path (stack → decaf driver → device).
    pub tx: Rc<DataPathChannel>,
    /// Receive path (IRQ → decaf driver → stack).
    pub rx: Rc<DataPathChannel>,
    /// The nucleus interrupt handler `request_irq` installs.
    pub irq_handler: IrqHandler,
    /// The periodic deadline-flush timer.
    pub poll_timer: TimerId,
    /// The poll-mode receive tick ([`RxMode::Poll`] builds only).
    pub rx_poll_timer: Option<TimerId>,
}

/// Builds the netdev transmit op for a shmring TX path: frames post
/// into the ring with a monotonic cookie. Frames over `max_len` fail
/// with `Inval` — the same check (and `tx_errors` accounting through
/// `net_xmit`) the kernel-resident paths apply, so the ring never
/// carries a descriptor the hardware would reject.
pub fn shmring_xmit_op(tx_dp: Rc<DataPathChannel>, max_len: usize) -> decaf_simkernel::net::XmitOp {
    let seq = Cell::new(0u64);
    Rc::new(move |k, skb| {
        if skb.len() > max_len {
            return Err(KError::Inval);
        }
        let cookie = seq.get();
        seq.set(cookie + 1);
        tx_dp.send(k, &skb.data, cookie).map_err(|_| KError::Busy)
    })
}

/// Builds the netdev transmit op for a *sharded* TX data path: each
/// frame is steered to a shard by an RSS-style flow hash over its
/// protocol and leading payload bytes, posted into that shard's ring
/// under the shard's cost scope, and recorded in the [`RingSet`] so the
/// IRQ-side completion steers back to the posting shard.
pub fn sharded_xmit_op(
    tx_set: Rc<RingSet>,
    tx_paths: Vec<Rc<DataPathChannel>>,
    max_len: usize,
) -> decaf_simkernel::net::XmitOp {
    let seq = Cell::new(0u64);
    Rc::new(move |k, skb| {
        if skb.len() > max_len {
            return Err(KError::Inval);
        }
        let cookie = seq.get();
        seq.set(cookie + 1);
        // The flow identity of the synthetic workloads lives in the
        // frame's protocol and fill bytes; hashing them keeps one flow
        // on one queue while distinct flows spread (RSS semantics).
        let flow = skb.data.first().copied().unwrap_or(0) as u64
            | ((skb.protocol as u64) << 8)
            | ((skb.len() as u64) << 24);
        let shard = tx_set.steer(flow);
        k.shard_scope(shard, || {
            // Record the origin *before* sending: a watermark or
            // pool-exhaustion doorbell inside send() runs the decaf
            // drain synchronously, and its reject path steers the
            // descriptor home through this record.
            tx_set.note_post(shard, cookie);
            tx_paths[shard].send(k, &skb.data, cookie).map_err(|_| {
                tx_set.cancel_post(cookie);
                KError::Busy
            })
        })
    })
}

/// Arms the periodic coalescing poll for a set of sharded TX paths: one
/// timer, one work item, each busy shard polled under its cost scope.
pub fn sharded_poll_timer(
    kernel: &Kernel,
    name: &'static str,
    tx_paths: &[Rc<DataPathChannel>],
) -> TimerId {
    let paths: Vec<Rc<DataPathChannel>> = tx_paths.to_vec();
    let timer = kernel.timer_create(
        name,
        Rc::new(move |k| {
            let busy: Vec<usize> = paths
                .iter()
                .enumerate()
                .filter(|(_, p)| p.pending() > 0 || !p.completions().is_empty())
                .map(|(i, _)| i)
                .collect();
            if !busy.is_empty() {
                let paths = paths.clone();
                k.schedule_work(name, move |k| {
                    for i in busy {
                        k.shard_scope(i, || {
                            let _ = paths[i].poll(k);
                        });
                    }
                });
            }
        }),
    );
    kernel.timer_arm_periodic(timer, costs::DOORBELL_COALESCE_NS);
    timer
}

/// Arms the periodic coalescing poll for a shmring TX path: the timer
/// (softirq priority) defers to a work item — upcalls are illegal from
/// atomic context — which flushes descriptors past the doorbell
/// deadline and reclaims completed buffers.
pub fn shmring_poll_timer(
    kernel: &Kernel,
    name: &'static str,
    tx_dp: &Rc<DataPathChannel>,
) -> TimerId {
    let tx = Rc::clone(tx_dp);
    let timer = kernel.timer_create(
        name,
        Rc::new(move |k| {
            if tx.pending() > 0 || !tx.completions().is_empty() {
                let tx = Rc::clone(&tx);
                k.schedule_work(name, move |k| {
                    let _ = tx.poll(k);
                });
            }
        }),
    );
    kernel.timer_arm_periodic(timer, costs::DOORBELL_COALESCE_NS);
    timer
}

/// Builds an [`XpcChannel`] between nucleus and decaf driver from a
/// DriverSlicer plan — the spec and masks are exactly what the slicer
/// generated from the driver's mini-C source.
///
/// All five decaf driver builds route their configuration/control paths
/// through the batched transport with delta marshaling: register writes
/// defer into the transport queue and flush in one crossing, and a shared
/// structure that crosses repeatedly marshals only its dirty fields.
pub fn channel_from_plan(plan: &decaf_slicer::SlicePlan) -> Rc<XpcChannel> {
    channel_from_plan_with(plan, ChannelConfig::kernel_user_batched())
}

/// Like [`channel_from_plan`] with an explicit configuration — used by
/// the transport ablation to rebuild the seed per-call `InProc` path.
pub fn channel_from_plan_with(
    plan: &decaf_slicer::SlicePlan,
    config: ChannelConfig,
) -> Rc<XpcChannel> {
    Rc::new(XpcChannel::new(
        plan.spec.clone(),
        plan.masks.clone(),
        config,
        Domain::Nucleus,
        Domain::Decaf,
    ))
}

/// Registers the universal kernel helper procedures every decaf driver
/// needs: raw register access. These are the paper's "helper routines
/// that do not contain driver logic but provide an escape from the limits
/// of a managed language" (§5.3) — placed in the shared runtime, not in
/// any one driver.
pub fn register_io_procs(channel: &XpcChannel, bar: MmioRegion) -> XpcResult<()> {
    let b = bar.clone();
    channel.register_proc(
        Domain::Nucleus,
        ProcDef {
            name: "readl".into(),
            arg_types: vec![],
            handler: Rc::new(move |k, _, _, scalars| {
                let off = scalars[0].as_uint().unwrap_or(0) as u64;
                XdrValue::UInt(b.read32(k, off))
            }),
        },
    )?;
    let b = bar;
    channel.register_proc(
        Domain::Nucleus,
        ProcDef {
            name: "writel".into(),
            arg_types: vec![],
            handler: Rc::new(move |k, _, _, scalars| {
                let off = scalars[0].as_uint().unwrap_or(0) as u64;
                let val = scalars[1].as_uint().unwrap_or(0);
                b.write32(k, off, val);
                XdrValue::Void
            }),
        },
    )?;
    Ok(())
}

/// Reads a register through the channel from the decaf side (downcall).
pub fn decaf_readl(kernel: &Kernel, ch: &XpcChannel, off: u64) -> u32 {
    ch.call(
        kernel,
        Domain::Decaf,
        "readl",
        &[],
        &[XdrValue::UInt(off as u32)],
    )
    .ok()
    .and_then(|v| v.as_uint())
    .unwrap_or(0)
}

/// Writes a register through the channel from the decaf side (downcall).
///
/// Register writes are posted — nothing reads their result — so they go
/// through [`XpcChannel::call_deferred`]: on a batched transport they park
/// in the queue and cross with the next flush (any subsequent synchronous
/// call, e.g. a register *read*, flushes first, preserving device-visible
/// ordering); on other transports they execute immediately.
pub fn decaf_writel(kernel: &Kernel, ch: &XpcChannel, off: u64, val: u32) {
    let _ = ch.call_deferred(
        kernel,
        Domain::Decaf,
        "writel",
        &[],
        &[XdrValue::UInt(off as u32), XdrValue::UInt(val)],
    );
}

/// The pieces of one open-loop network sink: per-shard pool-less RX
/// descriptor paths over one sharded async-shmring control facade.
///
/// Unlike the driver builds, there is no device model underneath — the
/// open-loop engine plays the role of the wire, posting descriptors at
/// scheduled virtual times regardless of how the decaf side is doing.
/// Payload bytes never exist (descriptors reference slots owned by the
/// synthetic "hardware"), so `bytes_copied` stays zero by construction.
pub struct OpenLoopNet {
    /// The sharded control facade the doorbells ride (async transport:
    /// each doorbell launches and settles at harvest).
    pub channels: Rc<decaf_xpc::ShardedChannel>,
    /// One pool-less descriptor path per shard.
    pub paths: Vec<Rc<DataPathChannel>>,
}

impl OpenLoopNet {
    /// Static cookie→shard steering. Open-loop arrivals have no flow
    /// identity to hash; a round-robin modulo keeps the shards evenly
    /// loaded and the mapping replayable from the cookie alone.
    pub fn steer(&self, cookie: u64) -> usize {
        (cookie as usize) % self.paths.len()
    }
}

/// Builds an [`OpenLoopNet`]: `shards` RX descriptor rings of `depth`
/// slots over one async-shmring [`decaf_xpc::ShardedChannel`], each
/// with a watermark/deadline doorbell and a decaf-side `rx_drain` that
/// consumes descriptors and hands their slots straight back.
pub fn install_open_loop_net(
    shards: usize,
    depth: usize,
    watermark: usize,
) -> XpcResult<OpenLoopNet> {
    use decaf_shmring::{DoorbellPolicy, ShmRing};
    use decaf_xpc::{ShardPolicy, ShardedChannel};

    let sc = ShardedChannel::new(
        decaf_xdr::XdrSpec::parse("struct unused { int x; };").expect("static spec"),
        decaf_xdr::mask::MaskSet::full(),
        ChannelConfig::kernel_user_async_shmring(),
        Domain::Nucleus,
        Domain::Decaf,
        shards,
        ShardPolicy::FlowHash,
    );
    let mut paths = Vec::with_capacity(shards);
    for i in 0..shards {
        let ring = Rc::new(ShmRing::new(format!("olnet-rx{i}"), depth));
        let done = Rc::new(ShmRing::new(format!("olnet-rx{i}-done"), 2 * depth));
        let dp = DataPathChannel::new(
            Rc::clone(sc.shard(i)),
            Domain::Nucleus,
            "rx_drain",
            ring,
            done,
            None,
            DoorbellPolicy::with_watermark(watermark),
        )?;
        let end = dp.end(Domain::Decaf);
        sc.shard(i).register_proc(
            Domain::Decaf,
            ProcDef {
                name: "rx_drain".into(),
                arg_types: vec![],
                handler: Rc::new(move |k, _, _, _| {
                    let mut n = 0;
                    for d in end.consume(k) {
                        let _ = end.complete(k, d);
                        n += 1;
                    }
                    XdrValue::Int(n)
                }),
            },
        )?;
        paths.push(dp);
    }
    Ok(OpenLoopNet {
        channels: sc,
        paths,
    })
}

/// Builds the storage side of the open-loop engine: a
/// [`decaf_xpc::ShardedUrbPath`] over `shards` URB rings of `depth`
/// entries and a `sectors`-sector payload pool, with a decaf-side
/// `urb_drain` per shard that echoes OUT lengths and gives the payload
/// run's ownership back through the set so completions steer home.
pub fn install_open_loop_storage(
    shards: usize,
    sectors: usize,
    depth: usize,
    watermark: usize,
) -> XpcResult<(Rc<decaf_xpc::ShardedChannel>, Rc<decaf_xpc::ShardedUrbPath>)> {
    use decaf_shmring::{SectorPool, UrbRingSet, XferDir};
    use decaf_simkernel::CpuClass;
    use decaf_xpc::{ShardPolicy, ShardedChannel, ShardedUrbPath};

    let sc = ShardedChannel::new(
        decaf_xdr::XdrSpec::parse("struct unused { int x; };").expect("static spec"),
        decaf_xdr::mask::MaskSet::full(),
        ChannelConfig::kernel_user_shmring(),
        Domain::Nucleus,
        Domain::Decaf,
        shards,
        ShardPolicy::FlowHash,
    );
    let set = UrbRingSet::new(
        "olurb",
        shards,
        depth,
        2 * depth,
        Rc::new(SectorPool::with_capacity(512, sectors)),
    );
    let path = ShardedUrbPath::new(Rc::clone(&sc), Domain::Nucleus, "urb_drain", set, watermark)?;
    for i in 0..shards {
        let end = path.path(i).end(Domain::Decaf);
        let set = Rc::clone(path.set());
        sc.shard(i).register_proc(
            Domain::Decaf,
            ProcDef {
                name: "urb_drain".into(),
                arg_types: vec![],
                handler: Rc::new(move |k, _, _, _| {
                    for d in end.consume(k) {
                        let actual = match d.dir {
                            XferDir::Out => d.len,
                            XferDir::In => 512,
                        };
                        let _ = set.complete(k, CpuClass::User, d.completed(0, actual));
                    }
                    XdrValue::Void
                }),
            },
        )?;
    }
    Ok((sc, path))
}

/// Maps a `KResult` to the errno-style integer the XPC layer carries.
pub fn errno_value(result: Result<(), KError>) -> XdrValue {
    match result {
        Ok(()) => XdrValue::Int(0),
        Err(e) => XdrValue::Int(e.errno()),
    }
}

/// Maps an errno-style integer back to a `KResult`.
pub fn result_from_errno(v: &XdrValue) -> Result<(), KError> {
    match v.as_int().unwrap_or(KError::Io.errno()) {
        0 => Ok(()),
        e => Err(KError::from_errno(e).unwrap_or(KError::Io)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decaf_simkernel::MmioDevice;
    use std::cell::RefCell;

    struct Scratch([u32; 8]);
    impl MmioDevice for Scratch {
        fn read32(&mut self, _k: &Kernel, o: u64) -> u32 {
            self.0[(o / 4) as usize]
        }
        fn write32(&mut self, _k: &Kernel, o: u64, v: u32) {
            self.0[(o / 4) as usize] = v;
        }
    }

    #[test]
    fn io_procs_roundtrip_registers() {
        let kernel = Kernel::new();
        let plan = decaf_slicer::slice(
            "struct s { int a; };\nint init(struct s *p) @export { return 0; }",
            &decaf_slicer::SliceConfig::default(),
        )
        .unwrap();
        let ch = channel_from_plan(&plan);
        let bar = MmioRegion::new(Rc::new(RefCell::new(Scratch([0; 8]))));
        register_io_procs(&ch, bar).unwrap();
        decaf_writel(&kernel, &ch, 12, 0xfeed);
        assert_eq!(decaf_readl(&kernel, &ch, 12), 0xfeed);
        assert_eq!(ch.stats().round_trips, 2);
    }

    #[test]
    fn errno_mapping() {
        assert_eq!(errno_value(Ok(())), XdrValue::Int(0));
        assert_eq!(errno_value(Err(KError::NoMem)), XdrValue::Int(-12));
        assert_eq!(result_from_errno(&XdrValue::Int(0)), Ok(()));
        assert_eq!(result_from_errno(&XdrValue::Int(-12)), Err(KError::NoMem));
    }
}
