//! The uhci-hcd USB 1.0 host-controller driver.
//!
//! The paper could convert only 4% of this driver's functions to Java:
//! "the driver contained several functions on the data path that could
//! potentially call nearly any code in the driver" (§4.1), so 68
//! functions stayed in the kernel, 12 in the driver library and just 3
//! moved to the decaf driver. The mini-C source reproduces that shape:
//! the schedule-walking data path reaches most of the driver, leaving
//! only suspend/resume/debug at user level.

use std::cell::Cell;
use std::rc::Rc;

use decaf_simdev::uhci as hwreg;
use decaf_simdev::UhciDevice;
use decaf_simkernel::usb::{HcdOps, Urb, UrbCompletion, UrbDir};
use decaf_simkernel::{DmaMemory, KError, KResult, Kernel, MmioHandle, MmioRegion};
use decaf_slicer::{slice, SliceConfig, SlicePlan};
use decaf_xdr::graph::CAddr;
use decaf_xdr::XdrValue;
use decaf_xpc::{Domain, NuclearRuntime, ProcDef, XpcChannel};

use crate::support::{self, decaf_readl, decaf_writel};

/// IRQ line of the controller.
pub const IRQ_LINE: u32 = 9;
/// DMA offset of the frame list (1024 dwords).
pub const FRAME_LIST_OFF: usize = 0x1000;
/// DMA offset of the TD pool.
pub const TD_POOL_OFF: usize = 0x2000;
/// DMA offset of the transfer buffer pool.
pub const BUF_POOL_OFF: usize = 0x8000;

/// Mini-C source for DriverSlicer.
pub mod minic {
    /// The driver source.
    pub const SOURCE: &str = r#"
struct uhci_hcd {
    int rh_state;
    int frame_number;
    int is_stopped;
    int scan_in_progress;
    unsigned long long urbs_done;
    int port_c_suspend;
    int resume_detect;
};

/* Interrupt + schedule scan: the data path that reaches everything. */
int uhci_irq(struct uhci_hcd *uhci) @irq {
    int status;
    status = readl(4);
    if (status == 0) { return 0; }
    uhci_scan_schedule(uhci);
    return 1;
}
int uhci_scan_schedule(struct uhci_hcd *uhci) @datapath {
    uhci->scan_in_progress = 1;
    uhci_giveback_urb(uhci);
    uhci_free_td(uhci);
    uhci_fixup_toggles(uhci);
    uhci->scan_in_progress = 0;
    return 0;
}
int uhci_urb_enqueue(struct uhci_hcd *uhci, int len) @datapath {
    uhci_alloc_td(uhci);
    uhci_map_buffer(uhci, len);
    writel(0, 1);
    return 0;
}
int uhci_giveback_urb(struct uhci_hcd *uhci) {
    uhci->urbs_done += 1;
    return 0;
}
int uhci_alloc_td(struct uhci_hcd *uhci) { return 0; }
int uhci_free_td(struct uhci_hcd *uhci) { return 0; }
int uhci_map_buffer(struct uhci_hcd *uhci, int len) { return 0; }
int uhci_fixup_toggles(struct uhci_hcd *uhci) { return 0; }
int uhci_reset_hc(struct uhci_hcd *uhci) @datapath {
    writel(0, 2);
    readl(0);
    return 0;
}
int uhci_start(struct uhci_hcd *uhci) @datapath {
    uhci_reset_hc(uhci);
    writel(16, 4096);
    writel(0, 1);
    return 0;
}
int uhci_stop(struct uhci_hcd *uhci) @datapath {
    writel(0, 0);
    return 0;
}
int uhci_hub_status_data(struct uhci_hcd *uhci) @datapath {
    int port;
    port = readl(20);
    return port;
}

/* Library helpers: user-level C. */
int uhci_debug_fill(struct uhci_hcd *uhci) @library { return 0; }
int uhci_sprint_schedule(struct uhci_hcd *uhci) @library { return 0; }
int uhci_show_status(struct uhci_hcd *uhci) @library {
    readl(0);
    readl(4);
    return 0;
}

/* The three functions that made it to the decaf driver. */
int uhci_rh_suspend(struct uhci_hcd *uhci) @export {
    uhci->rh_state = 1;
    uhci->port_c_suspend = 1;
    writel(0, 16);
    return 0;
}
int uhci_rh_resume(struct uhci_hcd *uhci) @export {
    int cmd;
    if (uhci->rh_state == 0) { return 0 - 22; }
    cmd = readl(0);
    writel(0, 1);
    uhci->rh_state = 2;
    uhci->resume_detect = 0;
    return 0;
}
int uhci_count_ports(struct uhci_hcd *uhci) @export {
    int sc;
    sc = readl(20);
    if (sc == 0) { return 0; }
    return 2;
}
"#;
}

/// Attaches the controller (with its flash drive) to the bus.
pub fn attach(kernel: &Kernel) -> (MmioRegion, DmaMemory, Rc<std::cell::RefCell<UhciDevice>>) {
    let dma = DmaMemory::new(256 * 1024);
    let dev = Rc::new(std::cell::RefCell::new(UhciDevice::new(
        IRQ_LINE,
        dma.clone(),
    )));
    let handle: MmioHandle = dev.clone();
    kernel.pci_add_device(decaf_simkernel::pci::PciDevice {
        vendor: 0x8086,
        device: 0x7112,
        irq_line: IRQ_LINE,
        bars: vec![handle.clone()],
        name: "uhci-hcd".into(),
    });
    (MmioRegion::new(handle), dma, dev)
}

/// Kernel-resident controller state shared by both builds.
pub struct UhciHw {
    /// I/O window.
    pub bar: MmioRegion,
    /// DMA region.
    pub dma: DmaMemory,
    next_td: Cell<usize>,
    /// Completed URBs.
    pub urbs_done: Cell<u64>,
}

impl UhciHw {
    /// Wraps the register window and DMA region.
    pub fn new(bar: MmioRegion, dma: DmaMemory) -> Self {
        UhciHw {
            bar,
            dma,
            next_td: Cell::new(0),
            urbs_done: Cell::new(0),
        }
    }

    /// Initializes the frame list and starts the controller.
    pub fn start(&self, kernel: &Kernel) {
        self.bar.outl(kernel, hwreg::USBCMD, hwreg::CMD_HCRESET);
        for f in 0..1024usize {
            self.dma
                .write_u32(FRAME_LIST_OFF + f * 4, hwreg::LINK_TERMINATE);
        }
        self.bar
            .outl(kernel, hwreg::FRBASEADD, FRAME_LIST_OFF as u32);
        self.bar.outl(kernel, hwreg::USBINTR, 1);
        self.bar.outl(kernel, hwreg::USBCMD, hwreg::CMD_RS);
    }

    /// Submits one URB: builds a TD in frame 0 and kicks the schedule.
    pub fn submit(&self, kernel: &Kernel, urb: &Urb) -> KResult<Vec<u8>> {
        let slot = self.next_td.get() % 64;
        self.next_td.set(self.next_td.get() + 1);
        let td = TD_POOL_OFF + slot * 16;
        let buf = BUF_POOL_OFF + slot * 1024;
        let len = urb.data.len().max(if urb.dir == UrbDir::In {
            hwreg::SECTOR_SIZE
        } else {
            0
        });
        if urb.dir == UrbDir::Out {
            self.dma.write_bytes(buf, &urb.data);
            kernel.charge_copy(decaf_simkernel::CpuClass::Kernel, urb.data.len() as u64);
        }
        let ep = urb.endpoint as u32;
        self.dma.write_u32(td, hwreg::LINK_TERMINATE);
        self.dma.write_u32(td + 4, hwreg::TD_ACTIVE);
        let maxlen = if len == 0 {
            0x7ff
        } else {
            (len - 1) as u32 & 0x7ff
        };
        self.dma.write_u32(td + 8, (maxlen << 21) | (ep << 15));
        self.dma.write_u32(td + 12, buf as u32);
        self.dma.write_u32(FRAME_LIST_OFF, td as u32);
        // Kick: set RS again (the model walks the schedule on the write).
        self.bar.outl(kernel, hwreg::USBCMD, hwreg::CMD_RS);
        self.dma.write_u32(FRAME_LIST_OFF, hwreg::LINK_TERMINATE);

        let status = self.dma.read_u32(td + 4);
        if status & hwreg::TD_STALLED != 0 {
            return Err(KError::Io);
        }
        self.urbs_done.set(self.urbs_done.get() + 1);
        if urb.dir == UrbDir::In {
            // Copy-audit fix: IN data is copied out of the DMA buffer to
            // the caller, symmetric with the OUT-direction copy charged
            // above; this path previously moved the bytes for free.
            kernel.charge_copy(decaf_simkernel::CpuClass::Kernel, hwreg::SECTOR_SIZE as u64);
            Ok(self.dma.read_bytes(buf, hwreg::SECTOR_SIZE))
        } else {
            Ok(Vec::new())
        }
    }

    /// Interrupt service: acknowledge the completion cause.
    pub fn handle_irq(&self, kernel: &Kernel) {
        let sts = self.bar.inl(kernel, hwreg::USBSTS);
        if sts & hwreg::STS_USBINT != 0 {
            self.bar.outl(kernel, hwreg::USBSTS, hwreg::STS_USBINT);
        }
    }
}

fn hcd_ops(hw: Rc<UhciHw>) -> HcdOps {
    HcdOps {
        submit: Rc::new(move |k: &Kernel, urb: Urb, completion: UrbCompletion| {
            let result = hw.submit(k, &urb);
            k.schedule_point();
            completion(k, result);
            Ok(())
        }),
    }
}

/// The installed native driver.
pub struct NativeUhci {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Hardware state.
    pub hw: Rc<UhciHw>,
    /// HCD name.
    pub hcd: String,
    /// Measured `insmod` latency.
    pub init_latency_ns: u64,
    /// Handle to the device model (flash media inspection).
    pub dev: Rc<std::cell::RefCell<UhciDevice>>,
}

/// Loads the native driver.
pub fn install_native(kernel: &Kernel, hcd: &str) -> KResult<NativeUhci> {
    let (bar, dma, dev) = attach(kernel);
    let hw = Rc::new(UhciHw::new(bar, dma));
    let name = hcd.to_string();
    let hw_init = Rc::clone(&hw);
    let init_latency_ns = kernel.insmod("uhci-hcd", move |k| {
        hw_init.start(k);
        let _ports = hw_init.bar.inl(k, hwreg::PORTSC1);
        k.usb_register_hcd(&name, hcd_ops(Rc::clone(&hw_init)))?;
        let hw_irq = Rc::clone(&hw_init);
        k.request_irq(IRQ_LINE, "uhci-hcd", Rc::new(move |k| hw_irq.handle_irq(k)))?;
        Ok(())
    })?;
    Ok(NativeUhci {
        kernel: kernel.clone(),
        hw,
        hcd: hcd.to_string(),
        init_latency_ns,
        dev,
    })
}

/// The installed decaf driver.
pub struct DecafUhci {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Hardware state.
    pub hw: Rc<UhciHw>,
    /// HCD name.
    pub hcd: String,
    /// XPC channel.
    pub channel: Rc<XpcChannel>,
    /// Nuclear runtime.
    pub nuc: Rc<NuclearRuntime>,
    /// Shared controller object.
    pub uhci_obj: CAddr,
    /// Measured `insmod` latency.
    pub init_latency_ns: u64,
    /// Slicing plan.
    pub plan: SlicePlan,
    /// Handle to the device model (flash media inspection).
    pub dev: Rc<std::cell::RefCell<UhciDevice>>,
}

/// Loads the decaf driver: the schedule path stays in the kernel; root
/// hub suspend/resume/port counting run at user level.
pub fn install_decaf(kernel: &Kernel, hcd: &str) -> KResult<DecafUhci> {
    let (bar, dma, dev) = attach(kernel);
    let hw = Rc::new(UhciHw::new(bar.clone(), dma));
    let plan = slice(minic::SOURCE, &SliceConfig::default()).map_err(|_| KError::Inval)?;
    let channel = support::channel_from_plan(&plan);
    support::register_io_procs(&channel, bar).map_err(|_| KError::Io)?;

    channel
        .register_proc(
            Domain::Decaf,
            ProcDef {
                name: "uhci_rh_suspend".into(),
                arg_types: vec!["uhci_hcd".into()],
                handler: Rc::new(|k, ch, args, _| {
                    let Some(u) = args[0] else {
                        return XdrValue::Int(-22);
                    };
                    {
                        let heap = ch.heap(Domain::Decaf);
                        let mut h = heap.borrow_mut();
                        let _ = h.set_scalar(u, "rh_state", XdrValue::Int(1));
                        let _ = h.set_scalar(u, "port_c_suspend", XdrValue::Int(1));
                    }
                    decaf_writel(k, ch, hwreg::USBCMD, 0x10);
                    XdrValue::Int(0)
                }),
            },
        )
        .map_err(|_| KError::Io)?;
    channel
        .register_proc(
            Domain::Decaf,
            ProcDef {
                name: "uhci_rh_resume".into(),
                arg_types: vec!["uhci_hcd".into()],
                handler: Rc::new(|k, ch, args, _| {
                    let Some(u) = args[0] else {
                        return XdrValue::Int(-22);
                    };
                    let _cmd = decaf_readl(k, ch, hwreg::USBCMD);
                    decaf_writel(k, ch, hwreg::USBCMD, hwreg::CMD_RS);
                    {
                        let heap = ch.heap(Domain::Decaf);
                        let mut h = heap.borrow_mut();
                        let _ = h.set_scalar(u, "rh_state", XdrValue::Int(2));
                        let _ = h.set_scalar(u, "resume_detect", XdrValue::Int(0));
                    }
                    XdrValue::Int(0)
                }),
            },
        )
        .map_err(|_| KError::Io)?;
    channel
        .register_proc(
            Domain::Decaf,
            ProcDef {
                name: "uhci_count_ports".into(),
                arg_types: vec!["uhci_hcd".into()],
                handler: Rc::new(|k, ch, _args, _| {
                    let sc = decaf_readl(k, ch, hwreg::PORTSC1);
                    XdrValue::Int(if sc == 0 { 0 } else { 2 })
                }),
            },
        )
        .map_err(|_| KError::Io)?;

    let nuc = Rc::new(NuclearRuntime::new(
        kernel.clone(),
        Rc::clone(&channel),
        Some(IRQ_LINE),
    ));

    let mut uhci_obj = 0;
    let nuc_init = Rc::clone(&nuc);
    let ch_init = Rc::clone(&channel);
    let hw_init = Rc::clone(&hw);
    let name = hcd.to_string();
    let spec = plan.spec.clone();
    let obj_ref = &mut uhci_obj;
    let init_latency_ns = kernel.insmod("uhci-hcd-decaf", move |k| {
        let u = {
            let heap = ch_init.heap(Domain::Nucleus);
            let mut h = heap.borrow_mut();
            h.alloc_default("uhci_hcd", &spec)
                .map_err(|_| KError::NoMem)?
        };
        *obj_ref = u;
        // Kernel-side start (data path), then user-level root-hub checks:
        // count ports, a suspend/resume cycle as the paper's power
        // management exercise.
        hw_init.start(k);
        let ports = nuc_init
            .upcall_errno("uhci_count_ports", &[Some(u)], &[])
            .map_err(|_| KError::Io)?;
        if ports == 0 {
            return Err(KError::NoDev);
        }
        nuc_init
            .upcall_errno("uhci_rh_suspend", &[Some(u)], &[])
            .map_err(|_| KError::Io)?;
        nuc_init
            .upcall_errno("uhci_rh_resume", &[Some(u)], &[])
            .map_err(|_| KError::Io)?;
        k.usb_register_hcd(&name, hcd_ops(Rc::clone(&hw_init)))?;
        let hw_irq = Rc::clone(&hw_init);
        k.request_irq(IRQ_LINE, "uhci-hcd", Rc::new(move |k| hw_irq.handle_irq(k)))?;
        Ok(())
    })?;

    Ok(DecafUhci {
        kernel: kernel.clone(),
        hw,
        hcd: hcd.to_string(),
        channel,
        nuc,
        uhci_obj,
        init_latency_ns,
        plan,
        dev,
    })
}

impl DecafUhci {
    /// Round trips between nucleus and decaf driver.
    pub fn crossings(&self) -> u64 {
        self.channel.stats().round_trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicer_keeps_most_functions_kernel() {
        let plan = slice(minic::SOURCE, &SliceConfig::default()).unwrap();
        // uhci-hcd is the outlier: only a few functions convert (§4.1).
        assert!(plan.kernel_fns.len() > plan.decaf_fns.len());
        assert_eq!(plan.decaf_fns.len(), 3);
        assert!(plan.kernel_fns.contains(&"uhci_scan_schedule".to_string()));
        assert!(plan.decaf_fns.contains(&"uhci_rh_suspend".to_string()));
    }

    fn write_sector_urb(sector: u32, fill: u8) -> Urb {
        let mut data = vec![hwreg::FLASH_CMD_WRITE];
        data.extend_from_slice(&sector.to_le_bytes());
        data.extend_from_slice(&vec![fill; hwreg::SECTOR_SIZE]);
        Urb {
            endpoint: hwreg::EP_BULK_OUT as u8,
            dir: UrbDir::Out,
            data,
        }
    }

    #[test]
    fn native_writes_flash_sectors() {
        let k = Kernel::new();
        let drv = install_native(&k, "uhci0").unwrap();
        let done = Rc::new(Cell::new(0));
        for s in 0..4u32 {
            let d = Rc::clone(&done);
            k.usb_submit_urb(
                "uhci0",
                write_sector_urb(s, s as u8),
                Rc::new(move |_, r| {
                    r.unwrap();
                    d.set(d.get() + 1);
                }),
            )
            .unwrap();
        }
        assert_eq!(done.get(), 4);
        assert_eq!(drv.hw.urbs_done.get(), 4);
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn decaf_init_crosses_then_urbs_do_not() {
        let k = Kernel::new();
        let drv = install_decaf(&k, "uhci0").unwrap();
        let after_init = drv.crossings();
        assert!(after_init >= 3, "three upcalls during init: {after_init}");
        let done = Rc::new(Cell::new(0));
        for s in 0..6u32 {
            let d = Rc::clone(&done);
            k.usb_submit_urb(
                "uhci0",
                write_sector_urb(s, 0xaa),
                Rc::new(move |_, r| {
                    r.unwrap();
                    d.set(d.get() + 1);
                }),
            )
            .unwrap();
        }
        assert_eq!(done.get(), 6);
        assert_eq!(
            drv.crossings(),
            after_init,
            "bulk transfers are kernel-only"
        );
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }
}
