//! The uhci-hcd USB 1.0 host-controller driver.
//!
//! The paper could convert only 4% of this driver's functions to Java:
//! "the driver contained several functions on the data path that could
//! potentially call nearly any code in the driver" (§4.1), so 68
//! functions stayed in the kernel, 12 in the driver library and just 3
//! moved to the decaf driver. The mini-C source reproduces that shape:
//! the schedule-walking data path reaches most of the driver, leaving
//! only suspend/resume/debug at user level.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use decaf_shmring::{DoorbellPolicy, SectorPool, SgSegment, ShmRing, UrbRingSet};
use decaf_simdev::uhci as hwreg;
use decaf_simdev::UhciDevice;
use decaf_simkernel::usb::{HcdOps, Urb, UrbCompletion, UrbDir};
use decaf_simkernel::{
    costs, CpuClass, DmaMemory, KError, KResult, Kernel, MmioHandle, MmioRegion, TimerId,
};
use decaf_slicer::{slice, SliceConfig, SlicePlan};
use decaf_xdr::graph::CAddr;
use decaf_xdr::XdrValue;
use decaf_xpc::{
    ChannelConfig, Domain, NuclearRuntime, ProcDef, ShardPolicy, ShardedChannel, ShardedUrbPath,
    UrbDataPath, XpcChannel, XpcResult,
};

use crate::support::{self, decaf_readl, decaf_writel};

/// IRQ line of the controller.
pub const IRQ_LINE: u32 = 9;
/// DMA offset of the frame list (1024 dwords).
pub const FRAME_LIST_OFF: usize = 0x1000;
/// DMA offset of the TD pool.
pub const TD_POOL_OFF: usize = 0x2000;
/// DMA offset of the transfer buffer pool.
pub const BUF_POOL_OFF: usize = 0x8000;
/// DMA offset of the shared sector pool (shmring build).
pub const SECTOR_POOL_OFF: usize = 0x20000;
/// Sectors in the shared pool.
pub const SECTOR_POOL_SECTORS: usize = 128;
/// URB submit-ring depth (giveback ring is twice this).
pub const URB_RING_DEPTH: usize = 64;
/// URB requests per doorbell when a burst outruns the coalescing
/// deadline (a `tar` file's worth of sectors amortizes crossings the
/// way netperf's line rate does).
pub const URB_DOORBELL_WATERMARK: usize = 4;
/// Largest transfer one TD can carry: the maxlen field is 11 bits and
/// `0x7ff` is the zero-length sentinel.
pub const MAX_TD_XFER: usize = 0x7ff;

/// Mini-C source for DriverSlicer.
pub mod minic {
    /// The driver source.
    pub const SOURCE: &str = r#"
struct uhci_hcd {
    int rh_state;
    int frame_number;
    int is_stopped;
    int scan_in_progress;
    unsigned long long urbs_done;
    int port_c_suspend;
    int resume_detect;
};

/* Interrupt + schedule scan: the data path that reaches everything. */
int uhci_irq(struct uhci_hcd *uhci) @irq {
    int status;
    status = readl(4);
    if (status == 0) { return 0; }
    uhci_scan_schedule(uhci);
    return 1;
}
int uhci_scan_schedule(struct uhci_hcd *uhci) @datapath {
    uhci->scan_in_progress = 1;
    uhci_giveback_urb(uhci);
    uhci_free_td(uhci);
    uhci_fixup_toggles(uhci);
    uhci->scan_in_progress = 0;
    return 0;
}
int uhci_urb_enqueue(struct uhci_hcd *uhci, int len) @datapath {
    uhci_alloc_td(uhci);
    uhci_map_buffer(uhci, len);
    writel(0, 1);
    return 0;
}
int uhci_giveback_urb(struct uhci_hcd *uhci) {
    uhci->urbs_done += 1;
    return 0;
}
int uhci_alloc_td(struct uhci_hcd *uhci) { return 0; }
int uhci_free_td(struct uhci_hcd *uhci) { return 0; }
int uhci_map_buffer(struct uhci_hcd *uhci, int len) { return 0; }
int uhci_fixup_toggles(struct uhci_hcd *uhci) { return 0; }
int uhci_reset_hc(struct uhci_hcd *uhci) @datapath {
    writel(0, 2);
    readl(0);
    return 0;
}
int uhci_start(struct uhci_hcd *uhci) @datapath {
    uhci_reset_hc(uhci);
    writel(16, 4096);
    writel(0, 1);
    return 0;
}
int uhci_stop(struct uhci_hcd *uhci) @datapath {
    writel(0, 0);
    return 0;
}
int uhci_hub_status_data(struct uhci_hcd *uhci) @datapath {
    int port;
    port = readl(20);
    return port;
}

/* Library helpers: user-level C. */
int uhci_debug_fill(struct uhci_hcd *uhci) @library { return 0; }
int uhci_sprint_schedule(struct uhci_hcd *uhci) @library { return 0; }
int uhci_show_status(struct uhci_hcd *uhci) @library {
    readl(0);
    readl(4);
    return 0;
}

/* The three functions that made it to the decaf driver. */
int uhci_rh_suspend(struct uhci_hcd *uhci) @export {
    uhci->rh_state = 1;
    uhci->port_c_suspend = 1;
    writel(0, 16);
    return 0;
}
int uhci_rh_resume(struct uhci_hcd *uhci) @export {
    int cmd;
    if (uhci->rh_state == 0) { return 0 - 22; }
    cmd = readl(0);
    writel(0, 1);
    uhci->rh_state = 2;
    uhci->resume_detect = 0;
    return 0;
}
int uhci_count_ports(struct uhci_hcd *uhci) @export {
    int sc;
    sc = readl(20);
    if (sc == 0) { return 0; }
    return 2;
}
"#;
}

/// Attaches the controller (with its flash drive) to the bus.
pub fn attach(kernel: &Kernel) -> (MmioRegion, DmaMemory, Rc<std::cell::RefCell<UhciDevice>>) {
    let dma = DmaMemory::new(256 * 1024);
    let dev = Rc::new(std::cell::RefCell::new(UhciDevice::new(
        IRQ_LINE,
        dma.clone(),
    )));
    let handle: MmioHandle = dev.clone();
    kernel.pci_add_device(decaf_simkernel::pci::PciDevice {
        vendor: 0x8086,
        device: 0x7112,
        irq_line: IRQ_LINE,
        bars: vec![handle.clone()],
        name: "uhci-hcd".into(),
    });
    (MmioRegion::new(handle), dma, dev)
}

/// Kernel-resident controller state shared by both builds.
pub struct UhciHw {
    /// I/O window.
    pub bar: MmioRegion,
    /// DMA region.
    pub dma: DmaMemory,
    next_td: Cell<usize>,
    /// Completed URBs.
    pub urbs_done: Cell<u64>,
}

impl UhciHw {
    /// Wraps the register window and DMA region.
    pub fn new(bar: MmioRegion, dma: DmaMemory) -> Self {
        UhciHw {
            bar,
            dma,
            next_td: Cell::new(0),
            urbs_done: Cell::new(0),
        }
    }

    /// Initializes the frame list and starts the controller.
    pub fn start(&self, kernel: &Kernel) {
        self.bar.outl(kernel, hwreg::USBCMD, hwreg::CMD_HCRESET);
        for f in 0..1024usize {
            self.dma
                .write_u32(FRAME_LIST_OFF + f * 4, hwreg::LINK_TERMINATE);
        }
        self.bar
            .outl(kernel, hwreg::FRBASEADD, FRAME_LIST_OFF as u32);
        self.bar.outl(kernel, hwreg::USBINTR, 1);
        self.bar.outl(kernel, hwreg::USBCMD, hwreg::CMD_RS);
    }

    /// Programs one TD pointing at `buf` (an absolute DMA offset — a
    /// staging slot for the by-value paths, a shared sector run for the
    /// shmring build), kicks the schedule and returns `(status,
    /// actual)`: 0 or a negative errno, plus the bytes the device
    /// actually transferred. No payload copy happens here — whoever
    /// owns `buf` decides whether one was paid getting the data there.
    ///
    /// Transfers beyond [`MAX_TD_XFER`] are rejected with `-EINVAL`
    /// rather than silently truncated: the TD's 11-bit maxlen field
    /// cannot express them (the sector pool can hand out longer runs —
    /// TD chaining is a ROADMAP item, not an excuse to corrupt data).
    pub fn submit_at(&self, kernel: &Kernel, endpoint: u8, buf: usize, len: usize) -> (i32, u32) {
        if len > MAX_TD_XFER {
            return (KError::Inval.errno(), 0);
        }
        let (status, actual) = self.raw_td(kernel, endpoint, buf, len, false);
        if status == 0 {
            self.urbs_done.set(self.urbs_done.get() + 1);
        }
        (status, actual)
    }

    /// Programs and executes a single TD without URB-level bookkeeping:
    /// no length-cap check (callers chunk) and no `urbs_done` bump (a
    /// chained URB is many TDs but one URB). When `more` is set the
    /// token carries [`decaf_simdev::uhci::hwreg::TD_TOKEN_MORE`],
    /// telling the device the transfer continues in the next TD.
    fn raw_td(
        &self,
        kernel: &Kernel,
        endpoint: u8,
        buf: usize,
        len: usize,
        more: bool,
    ) -> (i32, u32) {
        let slot = self.next_td.get() % 64;
        self.next_td.set(self.next_td.get() + 1);
        let td = TD_POOL_OFF + slot * 16;
        let ep = endpoint as u32;
        self.dma.write_u32(td, hwreg::LINK_TERMINATE);
        self.dma.write_u32(td + 4, hwreg::TD_ACTIVE);
        let maxlen = if len == 0 {
            0x7ff
        } else {
            (len - 1) as u32 & 0x7ff
        };
        let mut token = (maxlen << 21) | (ep << 15);
        if more {
            token |= hwreg::TD_TOKEN_MORE;
        }
        self.dma.write_u32(td + 8, token);
        self.dma.write_u32(td + 12, buf as u32);
        self.dma.write_u32(FRAME_LIST_OFF, td as u32);
        // Kick: set RS again (the model walks the schedule on the write).
        self.bar.outl(kernel, hwreg::USBCMD, hwreg::CMD_RS);
        self.dma.write_u32(FRAME_LIST_OFF, hwreg::LINK_TERMINATE);

        let status = self.dma.read_u32(td + 4);
        if status & hwreg::TD_STALLED != 0 {
            (KError::Io.errno(), 0)
        } else {
            (0, status & 0x7ff)
        }
    }

    /// Submits one URB as a TD chain over a scatter-gather segment list:
    /// one TD per segment (segments longer than [`MAX_TD_XFER`] are
    /// chunked — the 11-bit maxlen field caps a single TD, not the
    /// transfer), every TD but the last carrying the MORE token bit so
    /// the device treats the chain as one transfer. Returns `(status,
    /// actual)` with `actual` accumulated across segment boundaries; a
    /// device-side short packet ends the chain early with the bytes
    /// delivered so far, and a stall reports `(-EIO, 0)` like the
    /// single-TD path. A zero-length transfer (empty chain) programs
    /// nothing and completes immediately.
    pub fn submit_sg(
        &self,
        kernel: &Kernel,
        endpoint: u8,
        segments: &[SgSegment],
        len: usize,
    ) -> (i32, u32) {
        // Flatten the chain into (offset, bytes) TDs up front so the
        // final TD — the only one without MORE — is known before any
        // hardware is touched.
        let mut tds: Vec<(usize, usize)> = Vec::new();
        let mut remaining = len;
        for seg in segments {
            if remaining == 0 {
                break;
            }
            let mut off = seg.offset;
            let mut left = seg.bytes.min(remaining);
            while left > 0 {
                let chunk = left.min(MAX_TD_XFER);
                tds.push((off, chunk));
                off += chunk;
                left -= chunk;
                remaining -= chunk;
            }
        }
        if remaining > 0 {
            // The chain cannot hold the requested length. The URB path
            // validates this at submission; refuse rather than truncate
            // if a caller reaches the hardware directly.
            return (KError::Inval.errno(), 0);
        }
        if tds.is_empty() {
            self.urbs_done.set(self.urbs_done.get() + 1);
            return (0, 0);
        }
        let mut total: u32 = 0;
        let last = tds.len() - 1;
        for (i, &(buf, chunk)) in tds.iter().enumerate() {
            let (status, actual) = self.raw_td(kernel, endpoint, buf, chunk, i < last);
            if status != 0 {
                return (status, 0);
            }
            total += actual;
            if (actual as usize) < chunk {
                // Short packet: the device ended the transfer here.
                break;
            }
        }
        self.urbs_done.set(self.urbs_done.get() + 1);
        (0, total)
    }

    /// Submits one URB by value: stages the payload in the staging
    /// buffer (both directions' copies audited), builds the TD and kicks
    /// the schedule.
    pub fn submit(&self, kernel: &Kernel, urb: &Urb) -> KResult<Vec<u8>> {
        // Submission is synchronous in this model — the schedule walks
        // to completion inside `submit_at` — so one staging buffer is
        // always free again by the time the next URB arrives.
        let buf = BUF_POOL_OFF;
        let len = urb.data.len().max(if urb.dir == UrbDir::In {
            hwreg::SECTOR_SIZE
        } else {
            0
        });
        if urb.dir == UrbDir::Out {
            self.dma.write_bytes(buf, &urb.data);
            kernel.charge_copy(decaf_simkernel::CpuClass::Kernel, urb.data.len() as u64);
        }
        let (status, actual) = self.submit_at(kernel, urb.endpoint, buf, len);
        if status != 0 {
            return Err(KError::from_errno(status).unwrap_or(KError::Io));
        }
        if urb.dir == UrbDir::In {
            // Short reads report the *actual* transferred length the
            // device left in the TD, not the padded staging buffer —
            // and the audited copy-out matches what the caller gets.
            kernel.charge_copy(decaf_simkernel::CpuClass::Kernel, actual as u64);
            Ok(self.dma.read_bytes(buf, actual as usize))
        } else {
            Ok(Vec::new())
        }
    }

    /// Interrupt service: acknowledge the completion cause.
    pub fn handle_irq(&self, kernel: &Kernel) {
        let sts = self.bar.inl(kernel, hwreg::USBSTS);
        if sts & hwreg::STS_USBINT != 0 {
            self.bar.outl(kernel, hwreg::USBSTS, hwreg::STS_USBINT);
        }
    }
}

fn hcd_ops(hw: Rc<UhciHw>) -> HcdOps {
    HcdOps {
        submit: Rc::new(move |k: &Kernel, urb: Urb, completion: UrbCompletion| {
            let result = hw.submit(k, &urb);
            k.schedule_point();
            completion(k, result);
            Ok(())
        }),
    }
}

/// The installed native driver.
pub struct NativeUhci {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Hardware state.
    pub hw: Rc<UhciHw>,
    /// HCD name.
    pub hcd: String,
    /// Measured `insmod` latency.
    pub init_latency_ns: u64,
    /// Handle to the device model (flash media inspection).
    pub dev: Rc<std::cell::RefCell<UhciDevice>>,
}

/// Loads the native driver.
pub fn install_native(kernel: &Kernel, hcd: &str) -> KResult<NativeUhci> {
    let (bar, dma, dev) = attach(kernel);
    let hw = Rc::new(UhciHw::new(bar, dma));
    let name = hcd.to_string();
    let hw_init = Rc::clone(&hw);
    let init_latency_ns = kernel.insmod("uhci-hcd", move |k| {
        hw_init.start(k);
        let _ports = hw_init.bar.inl(k, hwreg::PORTSC1);
        k.usb_register_hcd(&name, hcd_ops(Rc::clone(&hw_init)))?;
        let hw_irq = Rc::clone(&hw_init);
        k.request_irq(IRQ_LINE, "uhci-hcd", Rc::new(move |k| hw_irq.handle_irq(k)))?;
        Ok(())
    })?;
    Ok(NativeUhci {
        kernel: kernel.clone(),
        hw,
        hcd: hcd.to_string(),
        init_latency_ns,
        dev,
    })
}

/// The installed decaf driver.
pub struct DecafUhci {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Hardware state.
    pub hw: Rc<UhciHw>,
    /// HCD name.
    pub hcd: String,
    /// XPC channel.
    pub channel: Rc<XpcChannel>,
    /// Nuclear runtime.
    pub nuc: Rc<NuclearRuntime>,
    /// Shared controller object.
    pub uhci_obj: CAddr,
    /// Measured `insmod` latency.
    pub init_latency_ns: u64,
    /// Slicing plan.
    pub plan: SlicePlan,
    /// Handle to the device model (flash media inspection).
    pub dev: Rc<std::cell::RefCell<UhciDevice>>,
}

/// Registers the three root-hub procedures the slicer moved to the
/// decaf driver — shared by every user-level uhci build.
fn register_roothub_procs(channel: &Rc<XpcChannel>) -> XpcResult<()> {
    channel.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "uhci_rh_suspend".into(),
            arg_types: vec!["uhci_hcd".into()],
            handler: Rc::new(|k, ch, args, _| {
                let Some(u) = args[0] else {
                    return XdrValue::Int(-22);
                };
                {
                    let heap = ch.heap(Domain::Decaf);
                    let mut h = heap.borrow_mut();
                    let _ = h.set_scalar(u, "rh_state", XdrValue::Int(1));
                    let _ = h.set_scalar(u, "port_c_suspend", XdrValue::Int(1));
                }
                decaf_writel(k, ch, hwreg::USBCMD, 0x10);
                XdrValue::Int(0)
            }),
        },
    )?;
    channel.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "uhci_rh_resume".into(),
            arg_types: vec!["uhci_hcd".into()],
            handler: Rc::new(|k, ch, args, _| {
                let Some(u) = args[0] else {
                    return XdrValue::Int(-22);
                };
                let _cmd = decaf_readl(k, ch, hwreg::USBCMD);
                decaf_writel(k, ch, hwreg::USBCMD, hwreg::CMD_RS);
                {
                    let heap = ch.heap(Domain::Decaf);
                    let mut h = heap.borrow_mut();
                    let _ = h.set_scalar(u, "rh_state", XdrValue::Int(2));
                    let _ = h.set_scalar(u, "resume_detect", XdrValue::Int(0));
                }
                XdrValue::Int(0)
            }),
        },
    )?;
    channel.register_proc(
        Domain::Decaf,
        ProcDef {
            name: "uhci_count_ports".into(),
            arg_types: vec!["uhci_hcd".into()],
            handler: Rc::new(|k, ch, _args, _| {
                let sc = decaf_readl(k, ch, hwreg::PORTSC1);
                XdrValue::Int(if sc == 0 { 0 } else { 2 })
            }),
        },
    )?;
    Ok(())
}

/// Loads the decaf driver: the schedule path stays in the kernel; root
/// hub suspend/resume/port counting run at user level.
pub fn install_decaf(kernel: &Kernel, hcd: &str) -> KResult<DecafUhci> {
    let (bar, dma, dev) = attach(kernel);
    let hw = Rc::new(UhciHw::new(bar.clone(), dma));
    let plan = slice(minic::SOURCE, &SliceConfig::default()).map_err(|_| KError::Inval)?;
    let channel = support::channel_from_plan(&plan);
    support::register_io_procs(&channel, bar).map_err(|_| KError::Io)?;
    register_roothub_procs(&channel).map_err(|_| KError::Io)?;

    let nuc = Rc::new(NuclearRuntime::new(
        kernel.clone(),
        Rc::clone(&channel),
        Some(IRQ_LINE),
    ));

    let mut uhci_obj = 0;
    let nuc_init = Rc::clone(&nuc);
    let ch_init = Rc::clone(&channel);
    let hw_init = Rc::clone(&hw);
    let name = hcd.to_string();
    let spec = plan.spec.clone();
    let obj_ref = &mut uhci_obj;
    let init_latency_ns = kernel.insmod("uhci-hcd-decaf", move |k| {
        let u = {
            let heap = ch_init.heap(Domain::Nucleus);
            let mut h = heap.borrow_mut();
            h.alloc_default("uhci_hcd", &spec)
                .map_err(|_| KError::NoMem)?
        };
        *obj_ref = u;
        // Kernel-side start (data path), then user-level root-hub checks:
        // count ports, a suspend/resume cycle as the paper's power
        // management exercise.
        hw_init.start(k);
        let ports = nuc_init
            .upcall_errno("uhci_count_ports", &[Some(u)], &[])
            .map_err(|_| KError::Io)?;
        if ports == 0 {
            return Err(KError::NoDev);
        }
        nuc_init
            .upcall_errno("uhci_rh_suspend", &[Some(u)], &[])
            .map_err(|_| KError::Io)?;
        nuc_init
            .upcall_errno("uhci_rh_resume", &[Some(u)], &[])
            .map_err(|_| KError::Io)?;
        k.usb_register_hcd(&name, hcd_ops(Rc::clone(&hw_init)))?;
        let hw_irq = Rc::clone(&hw_init);
        k.request_irq(IRQ_LINE, "uhci-hcd", Rc::new(move |k| hw_irq.handle_irq(k)))?;
        Ok(())
    })?;

    Ok(DecafUhci {
        kernel: kernel.clone(),
        hw,
        hcd: hcd.to_string(),
        channel,
        nuc,
        uhci_obj,
        init_latency_ns,
        plan,
        dev,
    })
}

impl DecafUhci {
    /// Round trips between nucleus and decaf driver.
    pub fn crossings(&self) -> u64 {
        self.channel.stats().round_trips
    }
}

// --------------------------------------------------- shmring build

/// In-flight completion callbacks, keyed by URB cookie.
type PendingUrbs = Rc<RefCell<HashMap<u64, UrbCompletion>>>;

/// Fires the completion callbacks of a batch of reclaimed URBs.
/// Callbacks run after the pending map is released, so a completion may
/// legally submit new URBs.
fn dispatch_reclaims(k: &Kernel, done: Vec<decaf_xpc::UrbReclaim>, pending: &PendingUrbs) {
    if done.is_empty() {
        return;
    }
    let mut callbacks = Vec::with_capacity(done.len());
    {
        let mut map = pending.borrow_mut();
        for r in done {
            if let Some(cb) = map.remove(&r.cookie) {
                callbacks.push((cb, r));
            }
        }
    }
    for (cb, r) in callbacks {
        let result = if r.status == 0 {
            Ok(r.data)
        } else {
            Err(KError::from_errno(r.status).unwrap_or(KError::Io))
        };
        cb(k, result);
    }
}

/// Reclaims completed URBs from the giveback ring and fires their
/// completion callbacks.
fn dispatch_givebacks(k: &Kernel, path: &UrbDataPath, pending: &PendingUrbs) {
    let done = path.reclaim(k);
    dispatch_reclaims(k, done, pending);
}

/// The HCD-op protocol every ring-backed build shares: cookie
/// sequencing, pending-map bookkeeping, one reclaim-and-retry on staged
/// backpressure (the path has already forced a doorbell, so finished
/// URBs are waiting to be dispatched), `Busy` after the retry, and a
/// post-submit harvest so callbacks fire close to their transfers.
///
/// `validate` refuses a URB before any state is touched; `submit_once`
/// reports whether the URB was committed; `reclaim` drains every
/// giveback ring the build owns.
fn ring_hcd_ops(
    pending: PendingUrbs,
    validate: impl Fn(&Urb) -> KResult<()> + 'static,
    submit_once: impl Fn(&Kernel, &Urb, u64) -> bool + 'static,
    reclaim: impl Fn(&Kernel) -> Vec<decaf_xpc::UrbReclaim> + 'static,
) -> HcdOps {
    let seq = Cell::new(0u64);
    HcdOps {
        submit: Rc::new(move |k: &Kernel, urb: Urb, completion: UrbCompletion| {
            validate(&urb)?;
            let cookie = seq.get();
            seq.set(cookie + 1);
            pending.borrow_mut().insert(cookie, completion);
            let mut committed = submit_once(k, &urb, cookie);
            if !committed {
                // Backpressure: the path already forced a doorbell;
                // reclaim (dispatching finished URBs) and retry once.
                dispatch_reclaims(k, reclaim(k), &pending);
                committed = submit_once(k, &urb, cookie);
            }
            if !committed {
                pending.borrow_mut().remove(&cookie);
                return Err(KError::Busy);
            }
            k.schedule_point();
            // Harvest whatever a synchronous watermark doorbell already
            // completed, so callbacks fire close to their transfers.
            dispatch_reclaims(k, reclaim(k), &pending);
            Ok(())
        }),
    }
}

/// The shmring build's HCD ops: `usb_submit_urb` posts a descriptor
/// into the submit ring (OUT payloads adopted into the sector pool,
/// zero-copy) and completions fire when the giveback comes home.
fn shmring_hcd_ops(path: Rc<UrbDataPath>, pending: PendingUrbs) -> HcdOps {
    let reclaim_path = Rc::clone(&path);
    ring_hcd_ops(
        pending,
        |_| Ok(()),
        move |k, urb, cookie| match urb.dir {
            UrbDir::Out => path.submit_out(k, urb.endpoint, &urb.data, cookie).is_ok(),
            UrbDir::In => path
                .submit_in(
                    k,
                    urb.endpoint,
                    urb.data.len().max(hwreg::SECTOR_SIZE),
                    cookie,
                )
                .is_ok(),
        },
        move |k| reclaim_path.reclaim(k),
    )
}

/// Arms the coalescing poll shared by the ring-backed builds: the timer
/// (softirq priority) defers to a work item — upcalls are illegal from
/// atomic context — which rings due doorbells and dispatches the
/// completions that came back. `busy` answers "is anything parked or
/// any giveback waiting"; `poll_and_reclaim` runs in process context.
fn ring_poll_timer(
    kernel: &Kernel,
    name: &'static str,
    busy: impl Fn() -> bool + 'static,
    poll_and_reclaim: Rc<dyn Fn(&Kernel)>,
) -> TimerId {
    let timer = kernel.timer_create(
        name,
        Rc::new(move |k| {
            if busy() {
                let work = Rc::clone(&poll_and_reclaim);
                k.schedule_work(name, move |k| work(k));
            }
        }),
    );
    kernel.timer_arm_periodic(timer, costs::DOORBELL_COALESCE_NS);
    timer
}

/// The unsharded URB path's poll: flush requests past the doorbell
/// deadline, dispatch what came back.
fn urb_poll_timer(
    kernel: &Kernel,
    name: &'static str,
    path: &Rc<UrbDataPath>,
    pending: &PendingUrbs,
) -> TimerId {
    let busy_path = Rc::clone(path);
    let path = Rc::clone(path);
    let pending = Rc::clone(pending);
    ring_poll_timer(
        kernel,
        name,
        move || busy_path.pending() > 0 || !busy_path.giveback_ring().is_empty(),
        Rc::new(move |k| {
            let _ = path.poll(k);
            dispatch_givebacks(k, &path, &pending);
        }),
    )
}

/// The decaf driver with the *user-level* URB data path — the
/// `ChannelConfig::kernel_user_shmring()` build for storage. Bulk
/// transfers cross as URB descriptors through pinned rings: OUT
/// payloads are adopted into a sector pool carved from the controller's
/// DMA region (zero CPU copies), the user-level drain programs TDs
/// straight from the shared runs, and IN completions hand the run's
/// ownership back with the actual transferred length.
pub struct ShmringUhci {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Hardware state.
    pub hw: Rc<UhciHw>,
    /// HCD name.
    pub hcd: String,
    /// XPC channel.
    pub channel: Rc<XpcChannel>,
    /// Nuclear runtime.
    pub nuc: Rc<NuclearRuntime>,
    /// Shared controller object.
    pub uhci_obj: CAddr,
    /// Measured `insmod` latency.
    pub init_latency_ns: u64,
    /// Slicing plan.
    pub plan: SlicePlan,
    /// Handle to the device model (flash media inspection/preload).
    pub dev: Rc<RefCell<UhciDevice>>,
    /// The URB request/response data path.
    pub urb_path: Rc<UrbDataPath>,
    poll_timer: TimerId,
}

/// Loads the decaf driver with the shmring URB data path.
pub fn install_shmring(kernel: &Kernel, hcd: &str) -> KResult<ShmringUhci> {
    install_shmring_with(kernel, hcd, decaf_shmring::AllocMode::default())
}

/// Loads the shmring build with an explicit sector-pool allocation
/// mode — the seam the fragmentation ablation turns: first-fit vs
/// buddy vs buddy + scatter-gather over the same driver and workload.
pub fn install_shmring_with(
    kernel: &Kernel,
    hcd: &str,
    mode: decaf_shmring::AllocMode,
) -> KResult<ShmringUhci> {
    let (bar, dma, dev) = attach(kernel);
    let hw = Rc::new(UhciHw::new(bar.clone(), dma.clone()));
    let plan = slice(minic::SOURCE, &SliceConfig::default()).map_err(|_| KError::Inval)?;
    let channel = support::channel_from_plan_with(&plan, ChannelConfig::kernel_user_shmring());
    support::register_io_procs(&channel, bar).map_err(|_| KError::Io)?;
    register_roothub_procs(&channel).map_err(|_| KError::Io)?;

    // The sector pool lives in the controller's own DMA region: a run a
    // descriptor names is already where the hardware DMAs.
    let pool = Rc::new(SectorPool::new_with_mode(
        dma,
        SECTOR_POOL_OFF,
        hwreg::SECTOR_SIZE,
        SECTOR_POOL_SECTORS,
        mode,
    ));
    let urb_path = UrbDataPath::new(
        Rc::clone(&channel),
        Domain::Nucleus,
        "uhci_urb_drain",
        Rc::new(ShmRing::new("uhci-urb", URB_RING_DEPTH)),
        Rc::new(ShmRing::new("uhci-urb-done", 2 * URB_RING_DEPTH)),
        pool,
        DoorbellPolicy::with_watermark(URB_DOORBELL_WATERMARK),
    )
    .map_err(|_| KError::Io)?;

    // The decaf-side drain: the user-level driver walks the batch in
    // FIFO order (command stages before their data stages), programs
    // each TD straight from the shared sector run, and gives every
    // descriptor back with its status and actual length.
    {
        let end = urb_path.end(Domain::Decaf);
        let hw_drain = Rc::clone(&hw);
        channel
            .register_proc(
                Domain::Decaf,
                ProcDef {
                    name: "uhci_urb_drain".into(),
                    arg_types: vec![],
                    handler: Rc::new(move |k, _, _, _| {
                        let _span = k.trace_span("urb", "drain");
                        let mut n = 0;
                        for d in end.consume(k) {
                            let segs = end.pool().sg_segments(d.buf).expect("live chain");
                            let (status, actual) =
                                hw_drain.submit_sg(k, d.endpoint, &segs, d.len as usize);
                            end.complete(k, d.completed(status, actual))
                                .expect("giveback ring sized 2x submit ring");
                            n += 1;
                        }
                        XdrValue::Int(n)
                    }),
                },
            )
            .map_err(|_| KError::Io)?;
    }

    let nuc = Rc::new(NuclearRuntime::new(
        kernel.clone(),
        Rc::clone(&channel),
        Some(IRQ_LINE),
    ));
    let pending: PendingUrbs = Rc::new(RefCell::new(HashMap::new()));

    let mut uhci_obj = 0;
    let nuc_init = Rc::clone(&nuc);
    let ch_init = Rc::clone(&channel);
    let hw_init = Rc::clone(&hw);
    let path_init = Rc::clone(&urb_path);
    let pending_init = Rc::clone(&pending);
    let name = hcd.to_string();
    let spec = plan.spec.clone();
    let obj_ref = &mut uhci_obj;
    let init_latency_ns = kernel.insmod("uhci-hcd-shm", move |k| {
        let u = {
            let heap = ch_init.heap(Domain::Nucleus);
            let mut h = heap.borrow_mut();
            h.alloc_default("uhci_hcd", &spec)
                .map_err(|_| KError::NoMem)?
        };
        *obj_ref = u;
        hw_init.start(k);
        let ports = nuc_init
            .upcall_errno("uhci_count_ports", &[Some(u)], &[])
            .map_err(|_| KError::Io)?;
        if ports == 0 {
            return Err(KError::NoDev);
        }
        k.usb_register_hcd(&name, shmring_hcd_ops(path_init, pending_init))?;
        let hw_irq = Rc::clone(&hw_init);
        k.request_irq(IRQ_LINE, "uhci-hcd", Rc::new(move |k| hw_irq.handle_irq(k)))?;
        Ok(())
    })?;

    let poll_timer = urb_poll_timer(kernel, "uhci_urb_poll", &urb_path, &pending);

    Ok(ShmringUhci {
        kernel: kernel.clone(),
        hw,
        hcd: hcd.to_string(),
        channel,
        nuc,
        uhci_obj,
        init_latency_ns,
        plan,
        dev,
        urb_path,
        poll_timer,
    })
}

impl ShmringUhci {
    /// Round trips between nucleus and decaf driver.
    pub fn crossings(&self) -> u64 {
        self.channel.stats().round_trips
    }

    /// Unloads the driver.
    pub fn remove(self) {
        self.kernel.timer_del(self.poll_timer);
        self.kernel.free_irq(IRQ_LINE);
        let hcd = self.hcd.clone();
        self.kernel
            .rmmod("uhci-hcd-shm", move |k| k.usb_unregister_hcd(&hcd));
    }
}

// --------------------------------------------- by-value build (ablation)

/// The ablation-only build hosting the URB data path at user level *by
/// value*: every payload crosses through the XDR marshaler as opaque
/// bytes and is copied into the staging buffer on the far side. The
/// `batched` flavor defers OUT URBs into the transport queue
/// (posted-write semantics: their completions fire at submit with empty
/// data, like posted register writes); IN URBs stay synchronous — their
/// response *is* the data, marshaled back by value.
pub struct ValueUhci {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Hardware state.
    pub hw: Rc<UhciHw>,
    /// XPC channel.
    pub channel: Rc<XpcChannel>,
    /// Handle to the device model.
    pub dev: Rc<RefCell<UhciDevice>>,
    hcd: String,
    flush_timer: TimerId,
}

/// Loads the by-value user-level URB path: the `copy` (per-URB
/// synchronous marshal) baseline, or with `batched` the `batched-copy`
/// middle rung of the storage ablation.
pub fn install_value(kernel: &Kernel, hcd: &str, batched: bool) -> KResult<ValueUhci> {
    let (bar, dma, dev) = attach(kernel);
    let hw = Rc::new(UhciHw::new(bar.clone(), dma));
    let plan = slice(minic::SOURCE, &SliceConfig::default()).map_err(|_| KError::Inval)?;
    let config = if batched {
        ChannelConfig::kernel_user_batched()
    } else {
        ChannelConfig::kernel_user()
    };
    let channel = support::channel_from_plan_with(&plan, config);
    support::register_io_procs(&channel, bar).map_err(|_| KError::Io)?;

    // The user-level submit handler: the payload arrives by value
    // through the marshaler; `UhciHw::submit` copies it into the
    // staging buffer (audited) and, for IN, copies the result back out
    // — which then marshals back by value too.
    {
        let hw_sub = Rc::clone(&hw);
        channel
            .register_proc(
                Domain::Decaf,
                ProcDef {
                    name: "uhci_submit_value".into(),
                    arg_types: vec![],
                    handler: Rc::new(move |k, _, _, scalars| {
                        let endpoint = scalars[0].as_uint().unwrap_or(0) as u8;
                        let dir_in = scalars[1].as_uint().unwrap_or(0) != 0;
                        let data = scalars[2].as_opaque().unwrap_or(&[]).to_vec();
                        let urb = Urb {
                            endpoint,
                            dir: if dir_in { UrbDir::In } else { UrbDir::Out },
                            data,
                        };
                        match hw_sub.submit(k, &urb) {
                            Ok(data) if dir_in => XdrValue::Opaque(data),
                            Ok(_) => XdrValue::Int(0),
                            Err(e) => XdrValue::Int(e.errno()),
                        }
                    }),
                },
            )
            .map_err(|_| KError::Io)?;
    }

    let ch_ops = Rc::clone(&channel);
    let ops = HcdOps {
        submit: Rc::new(move |k: &Kernel, urb: Urb, completion: UrbCompletion| {
            let ep = XdrValue::UInt(urb.endpoint as u32);
            if urb.dir == UrbDir::Out && batched {
                ch_ops
                    .call_deferred(
                        k,
                        Domain::Nucleus,
                        "uhci_submit_value",
                        &[],
                        &[ep, XdrValue::UInt(0), XdrValue::Opaque(urb.data)],
                    )
                    .map_err(|_| KError::Io)?;
                // Posted-write semantics: the URB is committed to the
                // batch; errors surface through device status counters.
                completion(k, Ok(Vec::new()));
                return Ok(());
            }
            let dir_flag = XdrValue::UInt((urb.dir == UrbDir::In) as u32);
            let ret = ch_ops
                .call(
                    k,
                    Domain::Nucleus,
                    "uhci_submit_value",
                    &[],
                    &[ep, dir_flag, XdrValue::Opaque(urb.data.clone())],
                )
                .map_err(|_| KError::Io)?;
            let result = match ret {
                XdrValue::Opaque(data) => Ok(data),
                XdrValue::Int(0) => Ok(Vec::new()),
                XdrValue::Int(e) => Err(KError::from_errno(e).unwrap_or(KError::Io)),
                _ => Err(KError::Io),
            };
            k.schedule_point();
            completion(k, result);
            Ok(())
        }),
    };

    let hw_init = Rc::clone(&hw);
    let name = hcd.to_string();
    kernel.insmod("uhci-hcd-value", move |k| {
        hw_init.start(k);
        k.usb_register_hcd(&name, ops)?;
        let hw_irq = Rc::clone(&hw_init);
        k.request_irq(IRQ_LINE, "uhci-hcd", Rc::new(move |k| hw_irq.handle_irq(k)))?;
        Ok(())
    })?;

    // Deadline flush for parked OUT URBs (softirq → work item, like
    // every other batched control path).
    let ch_flush = Rc::clone(&channel);
    let flush_timer = kernel.timer_create(
        "uhci_value_flush",
        Rc::new(move |k| {
            if ch_flush.pending_deferred() > 0 {
                let ch = Rc::clone(&ch_flush);
                k.schedule_work("uhci_value_flush", move |k| {
                    let _ = ch.flush_if_due(k);
                });
            }
        }),
    );
    kernel.timer_arm_periodic(flush_timer, costs::DOORBELL_COALESCE_NS);

    Ok(ValueUhci {
        kernel: kernel.clone(),
        hw,
        channel,
        dev,
        hcd: hcd.to_string(),
        flush_timer,
    })
}

impl ValueUhci {
    /// Flushes any parked OUT URBs (end-of-run barrier for benchmarks).
    pub fn flush(&self) -> KResult<()> {
        self.channel.flush(&self.kernel).map_err(|_| KError::Io)
    }

    /// Unloads the build: the flush timer, the IRQ line and the HCD
    /// registration all go, so a later install under the same name
    /// starts clean.
    pub fn remove(self) {
        let _ = self.flush();
        self.kernel.timer_del(self.flush_timer);
        self.kernel.free_irq(IRQ_LINE);
        let hcd = self.hcd.clone();
        self.kernel
            .rmmod("uhci-hcd-value", move |k| k.usb_unregister_hcd(&hcd));
    }
}

// --------------------------------------------------- sharded build

/// The decaf driver with **sharded multi-LUN storage queues** — N
/// parallel URB submit/giveback ring pairs (one per shard) over the one
/// shared sector pool, riding a [`ShardedChannel`] facade.
///
/// * **Steering** — `usb_submit_urb` maps the URB's endpoint to its LUN
///   ([`hwreg::lun_of_endpoint`]) and hashes the LUN to a shard, so a
///   LUN's command and data URBs stay FIFO on one queue while distinct
///   LUNs spread across queues.
/// * **Per-shard drains against one controller** — each shard's decaf
///   drain consumes its own submit ring and programs TDs on the single
///   simulated controller via [`UhciHw::submit_at`], with every charge
///   attributed through [`Kernel::shard_scope`]; the giveback goes
///   through [`UrbRingSet::complete`], steered home to the submitting
///   shard.
/// * **Control** — shard 0 is the control shard: the shared `uhci_hcd`
///   object is homed there and the root-hub upcalls ride its channel.
///
/// Zero-copy holds at every width: payloads are adopted into the shared
/// pool and IN completions hand run ownership back, so `bytes_copied`
/// stays exactly zero — the shards=1/2/4/8 storage ablation asserts it.
pub struct ShardedUhci {
    /// Kernel handle.
    pub kernel: Kernel,
    /// Hardware state.
    pub hw: Rc<UhciHw>,
    /// HCD name.
    pub hcd: String,
    /// The sharded channel facade (shard 0 is the control shard).
    pub channels: Rc<ShardedChannel>,
    /// Nuclear runtime (control shard).
    pub nuc: Rc<NuclearRuntime>,
    /// Shared controller object (homed on shard 0).
    pub uhci_obj: CAddr,
    /// Measured `insmod` latency.
    pub init_latency_ns: u64,
    /// Slicing plan.
    pub plan: SlicePlan,
    /// Handle to the device model (multi-LUN flash inspection/preload).
    pub dev: Rc<RefCell<UhciDevice>>,
    /// The sharded URB data path.
    pub urb_path: Rc<ShardedUrbPath>,
    poll_timer: TimerId,
}

/// The sharded build's HCD ops: each URB steers to its LUN's shard
/// (refusing endpoints outside the LUN space before any state is
/// touched); staged backpressure and the retry protocol are the shared
/// [`ring_hcd_ops`] shape.
fn sharded_hcd_ops(path: Rc<ShardedUrbPath>, pending: PendingUrbs) -> HcdOps {
    let reclaim_path = Rc::clone(&path);
    ring_hcd_ops(
        pending,
        |urb: &Urb| match hwreg::lun_of_endpoint(urb.endpoint as u32) {
            Some(_) => Ok(()),
            None => Err(KError::Inval),
        },
        move |k, urb, cookie| {
            let lun = hwreg::lun_of_endpoint(urb.endpoint as u32).expect("validated") as u64;
            match urb.dir {
                UrbDir::Out => path
                    .submit_out(k, lun, urb.endpoint, &urb.data, cookie)
                    .is_ok(),
                UrbDir::In => path
                    .submit_in(
                        k,
                        lun,
                        urb.endpoint,
                        urb.data.len().max(hwreg::SECTOR_SIZE),
                        cookie,
                    )
                    .is_ok(),
            }
        },
        move |k| reclaim_path.reclaim(k),
    )
}

/// The sharded URB path's poll: each due shard is polled under its own
/// cost scope by [`ShardedUrbPath::poll`], then completed givebacks are
/// dispatched.
fn sharded_urb_poll_timer(
    kernel: &Kernel,
    name: &'static str,
    path: &Rc<ShardedUrbPath>,
    pending: &PendingUrbs,
) -> TimerId {
    let busy_path = Rc::clone(path);
    let path = Rc::clone(path);
    let pending = Rc::clone(pending);
    ring_poll_timer(
        kernel,
        name,
        move || {
            busy_path.pending() > 0
                || (0..busy_path.shards()).any(|i| !busy_path.set().giveback_ring(i).is_empty())
        },
        Rc::new(move |k| {
            let _ = path.poll(k);
            dispatch_reclaims(k, path.reclaim(k), &pending);
        }),
    )
}

/// Loads the decaf driver with `shards` parallel URB queues — the
/// sharded multi-LUN storage build.
pub fn install_sharded(kernel: &Kernel, hcd: &str, shards: usize) -> KResult<ShardedUhci> {
    let (bar, dma, dev) = attach(kernel);
    let hw = Rc::new(UhciHw::new(bar.clone(), dma.clone()));
    let plan = slice(minic::SOURCE, &SliceConfig::default()).map_err(|_| KError::Inval)?;
    let channels = ShardedChannel::new(
        plan.spec.clone(),
        plan.masks.clone(),
        ChannelConfig::kernel_user_shmring(),
        Domain::Nucleus,
        Domain::Decaf,
        shards,
        ShardPolicy::FlowHash,
    );
    for i in 0..shards {
        support::register_io_procs(channels.shard(i), bar.clone()).map_err(|_| KError::Io)?;
        register_roothub_procs(channels.shard(i)).map_err(|_| KError::Io)?;
    }

    // One pool in the controller's DMA region, shared by every shard's
    // ring pair: the device is singular even when the queues are not.
    let pool = Rc::new(SectorPool::new(
        dma,
        SECTOR_POOL_OFF,
        hwreg::SECTOR_SIZE,
        SECTOR_POOL_SECTORS,
    ));
    let set = UrbRingSet::new("uhci-urb", shards, URB_RING_DEPTH, 2 * URB_RING_DEPTH, pool);
    let urb_path = ShardedUrbPath::new(
        Rc::clone(&channels),
        Domain::Nucleus,
        "uhci_urb_drain",
        set,
        URB_DOORBELL_WATERMARK,
    )
    .map_err(|_| KError::Io)?;

    // Per-shard decaf drains against the one simulated controller: each
    // walks its own submit ring in FIFO order (command stages before
    // data stages within the LUNs steered here), programs TDs straight
    // from the shared runs, and gives back through the set so every
    // completion steers home — all charged to this shard's scope.
    for i in 0..shards {
        let end = urb_path.path(i).end(Domain::Decaf);
        let set = Rc::clone(urb_path.set());
        let hw_drain = Rc::clone(&hw);
        channels
            .shard(i)
            .register_proc(
                Domain::Decaf,
                ProcDef {
                    name: "uhci_urb_drain".into(),
                    arg_types: vec![],
                    handler: Rc::new(move |k, _, _, _| {
                        k.shard_scope(i, || {
                            let _span = k.trace_span("urb", "drain");
                            let mut n = 0;
                            for d in end.consume(k) {
                                let segs = end.pool().sg_segments(d.buf).expect("live chain");
                                let (status, actual) =
                                    hw_drain.submit_sg(k, d.endpoint, &segs, d.len as usize);
                                set.complete(k, CpuClass::User, d.completed(status, actual))
                                    .expect("giveback ring sized 2x submit ring");
                                n += 1;
                            }
                            XdrValue::Int(n)
                        })
                    }),
                },
            )
            .map_err(|_| KError::Io)?;
    }

    let nuc = Rc::new(NuclearRuntime::new(
        kernel.clone(),
        Rc::clone(channels.shard(0)),
        Some(IRQ_LINE),
    ));
    let pending: PendingUrbs = Rc::new(RefCell::new(HashMap::new()));

    let mut uhci_obj = 0;
    let nuc_init = Rc::clone(&nuc);
    let channels_init = Rc::clone(&channels);
    let hw_init = Rc::clone(&hw);
    let path_init = Rc::clone(&urb_path);
    let pending_init = Rc::clone(&pending);
    let name = hcd.to_string();
    let obj_ref = &mut uhci_obj;
    let init_latency_ns = kernel.insmod("uhci-hcd-sharded", move |k| {
        let u = channels_init
            .alloc_shared_at(0, Domain::Nucleus, "uhci_hcd")
            .map_err(|_| KError::NoMem)?;
        *obj_ref = u;
        hw_init.start(k);
        let ports = nuc_init
            .upcall_errno("uhci_count_ports", &[Some(u)], &[])
            .map_err(|_| KError::Io)?;
        if ports == 0 {
            return Err(KError::NoDev);
        }
        k.usb_register_hcd(&name, sharded_hcd_ops(path_init, pending_init))?;
        let hw_irq = Rc::clone(&hw_init);
        k.request_irq(IRQ_LINE, "uhci-hcd", Rc::new(move |k| hw_irq.handle_irq(k)))?;
        Ok(())
    })?;

    let poll_timer = sharded_urb_poll_timer(kernel, "uhci_shard_poll", &urb_path, &pending);

    Ok(ShardedUhci {
        kernel: kernel.clone(),
        hw,
        hcd: hcd.to_string(),
        channels,
        nuc,
        uhci_obj,
        init_latency_ns,
        plan,
        dev,
        urb_path,
        poll_timer,
    })
}

impl ShardedUhci {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.channels.shard_count()
    }

    /// Aggregated round trips across every shard channel.
    pub fn crossings(&self) -> u64 {
        self.channels.stats().round_trips
    }

    /// Recovers one shard after its decaf end died: deferred control
    /// calls requeue, the end resets, and the shard's pinned submit ring
    /// re-drains on the fresh channel (see
    /// [`ShardedUrbPath::recover_shard`]).
    pub fn recover_shard(&self, shard: usize) -> KResult<usize> {
        self.urb_path
            .recover_shard(&self.kernel, shard, Domain::Decaf)
            .map_err(|_| KError::Io)
    }

    /// Unloads the driver.
    pub fn remove(self) {
        self.kernel.timer_del(self.poll_timer);
        self.kernel.free_irq(IRQ_LINE);
        let hcd = self.hcd.clone();
        self.kernel
            .rmmod("uhci-hcd-sharded", move |k| k.usb_unregister_hcd(&hcd));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicer_keeps_most_functions_kernel() {
        let plan = slice(minic::SOURCE, &SliceConfig::default()).unwrap();
        // uhci-hcd is the outlier: only a few functions convert (§4.1).
        assert!(plan.kernel_fns.len() > plan.decaf_fns.len());
        assert_eq!(plan.decaf_fns.len(), 3);
        assert!(plan.kernel_fns.contains(&"uhci_scan_schedule".to_string()));
        assert!(plan.decaf_fns.contains(&"uhci_rh_suspend".to_string()));
    }

    fn write_sector_urb(sector: u32, fill: u8) -> Urb {
        let mut data = vec![hwreg::FLASH_CMD_WRITE];
        data.extend_from_slice(&sector.to_le_bytes());
        data.extend_from_slice(&vec![fill; hwreg::SECTOR_SIZE]);
        Urb {
            endpoint: hwreg::EP_BULK_OUT as u8,
            dir: UrbDir::Out,
            data,
        }
    }

    #[test]
    fn native_writes_flash_sectors() {
        let k = Kernel::new();
        let drv = install_native(&k, "uhci0").unwrap();
        let done = Rc::new(Cell::new(0));
        for s in 0..4u32 {
            let d = Rc::clone(&done);
            k.usb_submit_urb(
                "uhci0",
                write_sector_urb(s, s as u8),
                Rc::new(move |_, r| {
                    r.unwrap();
                    d.set(d.get() + 1);
                }),
            )
            .unwrap();
        }
        assert_eq!(done.get(), 4);
        assert_eq!(drv.hw.urbs_done.get(), 4);
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn decaf_init_crosses_then_urbs_do_not() {
        let k = Kernel::new();
        let drv = install_decaf(&k, "uhci0").unwrap();
        let after_init = drv.crossings();
        assert!(after_init >= 3, "three upcalls during init: {after_init}");
        let done = Rc::new(Cell::new(0));
        for s in 0..6u32 {
            let d = Rc::clone(&done);
            k.usb_submit_urb(
                "uhci0",
                write_sector_urb(s, 0xaa),
                Rc::new(move |_, r| {
                    r.unwrap();
                    d.set(d.get() + 1);
                }),
            )
            .unwrap();
        }
        assert_eq!(done.get(), 6);
        assert_eq!(
            drv.crossings(),
            after_init,
            "bulk transfers are kernel-only"
        );
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    fn read_sector_urbs(k: &Kernel, hcd: &str, sector: u32, out: Rc<RefCell<Vec<u8>>>) {
        let mut cmd = vec![hwreg::FLASH_CMD_READ];
        cmd.extend_from_slice(&sector.to_le_bytes());
        k.usb_submit_urb(
            hcd,
            Urb {
                endpoint: hwreg::EP_BULK_OUT as u8,
                dir: UrbDir::Out,
                data: cmd,
            },
            Rc::new(|_, _| {}),
        )
        .unwrap();
        k.usb_submit_urb(
            hcd,
            Urb {
                endpoint: hwreg::EP_BULK_IN as u8,
                dir: UrbDir::In,
                data: Vec::new(),
            },
            Rc::new(move |_, r| {
                *out.borrow_mut() = r.unwrap();
            }),
        )
        .unwrap();
    }

    #[test]
    fn short_reads_report_actual_length() {
        // Regression: a sector holding fewer than SECTOR_SIZE bytes must
        // come back at its true length, not padded to the DMA buffer.
        let k = Kernel::new();
        let drv = install_native(&k, "uhci0").unwrap();
        drv.dev.borrow_mut().preload_sector(3, vec![0xcd; 100]);
        let got = Rc::new(RefCell::new(Vec::new()));
        read_sector_urbs(&k, "uhci0", 3, Rc::clone(&got));
        assert_eq!(*got.borrow(), vec![0xcd; 100], "actual length, not 512");
    }

    #[test]
    fn shmring_bulk_writes_are_zero_copy() {
        let k = Kernel::new();
        let drv = install_shmring(&k, "uhci0").unwrap();
        let after_init = drv.crossings();
        assert_eq!(k.stats().bytes_copied, 0, "init moves no payloads");
        let done = Rc::new(Cell::new(0));
        for s in 0..6u32 {
            let d = Rc::clone(&done);
            k.usb_submit_urb(
                "uhci0",
                write_sector_urb(s, 0x5a),
                Rc::new(move |_, r| {
                    r.unwrap();
                    d.set(d.get() + 1);
                }),
            )
            .unwrap();
        }
        // Let the coalescing deadline flush the sub-watermark tail.
        k.run_for(4 * costs::DOORBELL_COALESCE_NS);
        assert_eq!(done.get(), 6, "every URB completed");
        assert_eq!(drv.dev.borrow().flash_sector_count(), 6);
        assert_eq!(
            k.stats().bytes_copied,
            0,
            "payloads are adopted into the sector pool, never copied"
        );
        let s = drv.channel.stats();
        assert!(
            s.doorbells >= 1 && drv.crossings() > after_init,
            "URBs cross only as doorbells"
        );
        assert!(s.bytes_in < after_init * 64 + 64, "no payload marshaled");
        assert!(drv.urb_path.conserved(), "URB conservation");
        assert_eq!(drv.urb_path.pool().in_use_sectors(), 0, "no run leaked");
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn shmring_streaming_read_hands_ownership_back() {
        let k = Kernel::new();
        let drv = install_shmring(&k, "uhci0").unwrap();
        drv.dev.borrow_mut().preload_sector(0, vec![0xaa; 512]);
        drv.dev.borrow_mut().preload_sector(1, vec![0xbb; 100]);
        let a = Rc::new(RefCell::new(Vec::new()));
        let b = Rc::new(RefCell::new(Vec::new()));
        read_sector_urbs(&k, "uhci0", 0, Rc::clone(&a));
        read_sector_urbs(&k, "uhci0", 1, Rc::clone(&b));
        k.run_for(4 * costs::DOORBELL_COALESCE_NS);
        assert_eq!(*a.borrow(), vec![0xaa; 512]);
        assert_eq!(*b.borrow(), vec![0xbb; 100], "short read via the ring");
        assert_eq!(k.stats().bytes_copied, 0, "IN data is read in place");
        assert!(drv.urb_path.conserved());
        assert_eq!(drv.urb_path.pool().in_use_sectors(), 0);
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn oversize_transfers_rejected_not_truncated() {
        // The TD maxlen field tops out at MAX_TD_XFER; the single-TD
        // native path must fail loudly, never silently truncate.
        let k = Kernel::new();
        let native = install_native(&k, "uhci0").unwrap();
        let big = Urb {
            endpoint: hwreg::EP_BULK_OUT as u8,
            dir: UrbDir::Out,
            data: vec![0x77; MAX_TD_XFER + 1],
        };
        assert_eq!(native.hw.submit(&k, &big), Err(KError::Inval));
        assert_eq!(native.dev.borrow().flash_sector_count(), 0);
    }

    #[test]
    fn oversize_transfers_chain_across_tds_on_the_ring() {
        // The ring build chunks a transfer beyond MAX_TD_XFER into a
        // MORE-linked TD chain instead of refusing it: a write command
        // whose payload alone exceeds one TD lands on flash intact, with
        // zero payload copies.
        let k = Kernel::new();
        let drv = install_shmring(&k, "uhci0").unwrap();
        let mut data = vec![hwreg::FLASH_CMD_WRITE];
        data.extend_from_slice(&9u32.to_le_bytes());
        data.extend_from_slice(&vec![0x77; MAX_TD_XFER + 1]);
        assert!(data.len() > MAX_TD_XFER, "command must exceed one TD");
        let done = Rc::new(Cell::new(false));
        let d = Rc::clone(&done);
        k.usb_submit_urb(
            "uhci0",
            Urb {
                endpoint: hwreg::EP_BULK_OUT as u8,
                dir: UrbDir::Out,
                data,
            },
            Rc::new(move |_, r| {
                r.unwrap();
                d.set(true);
            }),
        )
        .unwrap();
        k.run_for(4 * costs::DOORBELL_COALESCE_NS);
        assert!(done.get(), "chained OUT completed");
        assert_eq!(
            drv.dev.borrow().flash_sector(9).unwrap(),
            vec![0x77; MAX_TD_XFER + 1],
            "full payload reassembled from the TD chain"
        );
        assert_eq!(k.stats().bytes_copied, 0, "chaining stays zero-copy");
        assert!(drv.urb_path.conserved());
        assert_eq!(drv.urb_path.pool().in_use_sectors(), 0, "chain reclaimed");
    }

    #[test]
    fn value_build_marshals_payloads_by_value() {
        let k = Kernel::new();
        let drv = install_value(&k, "uhci0", false).unwrap();
        let done = Rc::new(Cell::new(0));
        for s in 0..3u32 {
            let d = Rc::clone(&done);
            k.usb_submit_urb(
                "uhci0",
                write_sector_urb(s, 0x11),
                Rc::new(move |_, r| {
                    r.unwrap();
                    d.set(d.get() + 1);
                }),
            )
            .unwrap();
        }
        assert_eq!(done.get(), 3);
        let got = Rc::new(RefCell::new(Vec::new()));
        read_sector_urbs(&k, "uhci0", 2, Rc::clone(&got));
        assert_eq!(*got.borrow(), vec![0x11; 512]);
        let s = drv.channel.stats();
        assert!(
            s.bytes_in > 3 * 512,
            "payloads cross the marshaler: {} B in",
            s.bytes_in
        );
        assert!(k.stats().bytes_copied > 3 * 512, "by-value path copies");
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    fn write_sector_urb_lun(lun: usize, sector: u32, fill: u8) -> Urb {
        let mut data = vec![hwreg::FLASH_CMD_WRITE];
        data.extend_from_slice(&sector.to_le_bytes());
        data.extend_from_slice(&vec![fill; hwreg::SECTOR_SIZE]);
        Urb {
            endpoint: hwreg::ep_bulk_out(lun) as u8,
            dir: UrbDir::Out,
            data,
        }
    }

    fn read_sector_urbs_lun(
        k: &Kernel,
        hcd: &str,
        lun: usize,
        sector: u32,
        out: Rc<RefCell<Vec<u8>>>,
    ) {
        let mut cmd = vec![hwreg::FLASH_CMD_READ];
        cmd.extend_from_slice(&sector.to_le_bytes());
        k.usb_submit_urb(
            hcd,
            Urb {
                endpoint: hwreg::ep_bulk_out(lun) as u8,
                dir: UrbDir::Out,
                data: cmd,
            },
            Rc::new(|_, _| {}),
        )
        .unwrap();
        k.usb_submit_urb(
            hcd,
            Urb {
                endpoint: hwreg::ep_bulk_in(lun) as u8,
                dir: UrbDir::In,
                data: Vec::new(),
            },
            Rc::new(move |_, r| {
                *out.borrow_mut() = r.unwrap();
            }),
        )
        .unwrap();
    }

    #[test]
    fn sharded_build_spreads_luns_and_stays_zero_copy() {
        let k = Kernel::new();
        let drv = install_sharded(&k, "uhci0", 4).unwrap();
        assert_eq!(drv.shards(), 4);
        assert_eq!(k.stats().bytes_copied, 0, "init moves no payloads");
        let done = Rc::new(Cell::new(0));
        for lun in 0..4usize {
            for s in 0..4u32 {
                let d = Rc::clone(&done);
                k.usb_submit_urb(
                    "uhci0",
                    write_sector_urb_lun(lun, s, (0x10 * lun as u8) | s as u8),
                    Rc::new(move |_, r| {
                        r.unwrap();
                        d.set(d.get() + 1);
                    }),
                )
                .unwrap();
            }
        }
        k.run_for(4 * costs::DOORBELL_COALESCE_NS);
        assert_eq!(done.get(), 16, "every URB completed");
        assert_eq!(drv.dev.borrow().flash_sector_count(), 16);
        for lun in 0..4usize {
            assert_eq!(
                drv.dev.borrow().flash_sector_lun(lun, 3).unwrap(),
                vec![(0x10 * lun as u8) | 3; hwreg::SECTOR_SIZE],
                "LUN {lun} contents"
            );
        }
        assert_eq!(
            k.stats().bytes_copied,
            0,
            "payloads adopted into the shared pool at every shard width"
        );
        // LUN steering actually spread the queues.
        let used = (0..4)
            .filter(|&i| drv.urb_path.set().shard_stats(i).submitted > 0)
            .count();
        assert!(used >= 2, "all LUN traffic collapsed onto {used} shard(s)");
        assert!(drv.urb_path.conserved(), "per-shard URB conservation");
        assert_eq!(drv.urb_path.set().pool().in_use_sectors(), 0);
        // Per-shard cost scopes saw parallel work.
        let busy = k.shard_busy_ns();
        assert!(
            busy.iter().filter(|&&ns| ns > 0).count() >= 2,
            "expected work on >=2 shards: {busy:?}"
        );
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn sharded_streaming_reads_stay_fifo_per_lun() {
        let k = Kernel::new();
        let drv = install_sharded(&k, "uhci0", 3).unwrap();
        drv.dev
            .borrow_mut()
            .preload_sector_lun(0, 0, vec![0xaa; 512]);
        drv.dev
            .borrow_mut()
            .preload_sector_lun(2, 0, vec![0xbb; 100]);
        let a = Rc::new(RefCell::new(Vec::new()));
        let b = Rc::new(RefCell::new(Vec::new()));
        // Interleave two LUNs' command/data pairs: per-LUN FIFO must
        // survive whatever shard interleaving steering produces.
        read_sector_urbs_lun(&k, "uhci0", 0, 0, Rc::clone(&a));
        read_sector_urbs_lun(&k, "uhci0", 2, 0, Rc::clone(&b));
        k.run_for(4 * costs::DOORBELL_COALESCE_NS);
        assert_eq!(*a.borrow(), vec![0xaa; 512]);
        assert_eq!(*b.borrow(), vec![0xbb; 100], "short read via the rings");
        assert_eq!(k.stats().bytes_copied, 0, "IN data is read in place");
        assert!(drv.urb_path.conserved());
        assert_eq!(drv.urb_path.set().pool().in_use_sectors(), 0);
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn sharded_with_one_shard_matches_shmring_flash_contents() {
        let write = |k: &Kernel| {
            for lun in 0..2usize {
                for s in 0..3u32 {
                    k.usb_submit_urb(
                        "uhci0",
                        write_sector_urb_lun(lun, s, lun as u8 * 7 + s as u8),
                        Rc::new(|_, r| {
                            r.unwrap();
                        }),
                    )
                    .unwrap();
                }
            }
            k.run_for(4 * costs::DOORBELL_COALESCE_NS);
        };
        let k1 = Kernel::new();
        let sharded = install_sharded(&k1, "uhci0", 1).unwrap();
        write(&k1);
        let k2 = Kernel::new();
        let shmring = install_shmring(&k2, "uhci0").unwrap();
        write(&k2);
        assert_eq!(
            sharded.dev.borrow().flash_contents(),
            shmring.dev.borrow().flash_contents(),
            "shards=1 must be observationally identical to the unsharded build"
        );
        assert_eq!(k1.stats().bytes_copied, k2.stats().bytes_copied);
    }

    #[test]
    fn batched_value_build_defers_out_urbs() {
        let k = Kernel::new();
        let drv = install_value(&k, "uhci0", true).unwrap();
        for s in 0..8u32 {
            k.usb_submit_urb(
                "uhci0",
                write_sector_urb(s, 0x22),
                Rc::new(|_, r| {
                    r.unwrap();
                }),
            )
            .unwrap();
        }
        drv.flush().unwrap();
        assert_eq!(drv.dev.borrow().flash_sector_count(), 8);
        let s = drv.channel.stats();
        assert!(s.batched_calls > 0, "OUT URBs ride the batch queue");
        assert!(
            s.round_trips < 8,
            "batching amortizes crossings: {} round trips",
            s.round_trips
        );
    }
}
