//! Workload generators for the Table 3 benchmarks.
//!
//! The paper measures: `netperf` TCP send/receive for the network
//! drivers, `mpg123` playback of a 256 Kb/s MP3 for sound, `tar` onto a
//! USB flash drive for uhci-hcd, and 30 seconds of moving the mouse for
//! psmouse. The generators here produce the same *shapes*: a paced
//! packet stream with a kernel-resident data path, blocking PCM writes
//! with rare control operations, a stream of bulk sector writes (plus a
//! streaming-read counterpart with a readahead window, for the storage
//! data-path ablation), and a low-rate input-event stream.
//!
//! Workload durations are virtual-time seconds; they default to a small
//! number so benchmarks finish quickly — the paper's 600 s netperf run is
//! reproduced in shape, not in wall-clock masochism.

use std::rc::Rc;

use decaf_simkernel::clock::ClockSnapshot;
use decaf_simkernel::usb::{Urb, UrbDir};
use decaf_simkernel::{KResult, Kernel, SkBuff};

/// Common measurements every workload reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkloadStats {
    /// Virtual time elapsed (ns).
    pub elapsed_ns: u64,
    /// Total CPU utilization (0–1).
    pub cpu_util: f64,
    /// Kernel-class utilization.
    pub kernel_util: f64,
    /// User-class utilization.
    pub user_util: f64,
    /// Operations completed (packets, frames, sectors, events).
    pub ops: u64,
    /// Payload bytes moved.
    pub bytes: u64,
}

impl WorkloadStats {
    fn from_interval(before: &ClockSnapshot, after: &ClockSnapshot, ops: u64, bytes: u64) -> Self {
        WorkloadStats {
            elapsed_ns: before.elapsed_ns(after),
            cpu_util: before.utilization(after),
            kernel_util: before.kernel_utilization(after),
            user_util: before.user_utilization(after),
            ops,
            bytes,
        }
    }

    /// Achieved throughput in megabits per second of virtual time.
    pub fn throughput_mbps(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        (self.bytes as f64 * 8.0) / (self.elapsed_ns as f64 / 1e9) / 1e6
    }
}

/// netperf-style paced transmit through a network interface.
///
/// Sends `pps` packets of `pkt_len` bytes per virtual second for
/// `seconds`, pacing with idle time like a fixed-rate source. Returns
/// stats over the steady-state interval.
pub fn netperf_send(
    kernel: &Kernel,
    ifname: &str,
    seconds: u32,
    pps: u32,
    pkt_len: usize,
) -> KResult<WorkloadStats> {
    let before = kernel.snapshot();
    let start = kernel.now_ns();
    let total = (seconds * pps) as u64;
    let interval_ns = 1_000_000_000u64 / pps.max(1) as u64;
    let mut sent = 0u64;
    for i in 0..total {
        kernel.trace_req_begin("net.pkt_ns", i);
        kernel.net_xmit(ifname, SkBuff::synthetic(pkt_len, (i & 0xff) as u8, 0x0800))?;
        kernel.schedule_point();
        kernel.trace_req_end("net.pkt_ns", i);
        sent += 1;
        // Pace to the offered rate.
        let target = start + (i + 1) * interval_ns;
        let now = kernel.now_ns();
        if now < target {
            kernel.run_for(target - now);
        }
    }
    let after = kernel.snapshot();
    let stats = kernel.net_stats(ifname);
    Ok(WorkloadStats::from_interval(
        &before,
        &after,
        sent,
        stats.tx_bytes.min(sent * pkt_len as u64),
    ))
}

/// netperf-style receive: a peer injects frames through `inject`.
pub fn netperf_recv(
    kernel: &Kernel,
    ifname: &str,
    seconds: u32,
    pps: u32,
    pkt_len: usize,
    inject: &dyn Fn(&Kernel, &[u8]),
) -> KResult<WorkloadStats> {
    let before = kernel.snapshot();
    let start = kernel.now_ns();
    let rx_before = kernel.net_stats(ifname).rx_packets;
    let total = (seconds * pps) as u64;
    let interval_ns = 1_000_000_000u64 / pps.max(1) as u64;
    let frame = vec![0x5au8; pkt_len];
    for i in 0..total {
        kernel.trace_req_begin("net.rx_ns", i);
        inject(kernel, &frame);
        kernel.schedule_point();
        kernel.trace_req_end("net.rx_ns", i);
        let target = start + (i + 1) * interval_ns;
        let now = kernel.now_ns();
        if now < target {
            kernel.run_for(target - now);
        }
    }
    let after = kernel.snapshot();
    let received = kernel.net_stats(ifname).rx_packets - rx_before;
    Ok(WorkloadStats::from_interval(
        &before,
        &after,
        received,
        received * pkt_len as u64,
    ))
}

/// mpg123-style playback: open, stream decoded PCM in half-second
/// chunks, close. The DAC drains in real (virtual) time, so the CPU sits
/// idle almost throughout — the paper's ~0% utilization.
pub fn mpg123(kernel: &Kernel, card: &str, seconds: u32) -> KResult<WorkloadStats> {
    const RATE: usize = 44_100;
    let before = kernel.snapshot();
    kernel.snd_pcm_open(card)?;
    let mut frames_played = 0u64;
    let chunk = vec![0i16; RATE]; // half a second of stereo frames
    for _ in 0..seconds * 2 {
        frames_played += kernel.snd_pcm_write(card, &chunk)? as u64;
        kernel.schedule_point();
    }
    kernel.snd_pcm_close(card)?;
    let after = kernel.snapshot();
    Ok(WorkloadStats::from_interval(
        &before,
        &after,
        frames_played,
        frames_played * 4,
    ))
}

/// tar-style archive extraction onto the flash drive: each file's
/// sectors are submitted as one burst (tar writes a file's pages
/// back-to-back out of the page cache), then the stream paces to USB
/// 1.0's ~1 ms/sector before the next file — so batching mechanisms see
/// the bursts a real archiver produces.
pub fn tar_to_flash(
    kernel: &Kernel,
    hcd: &str,
    files: u32,
    sectors_per_file: u32,
) -> KResult<WorkloadStats> {
    tar_to_flash_luns(kernel, hcd, 1, files, sectors_per_file)
}

/// Multi-LUN tar extraction: `luns` parallel archive streams, one per
/// logical unit, each writing `files` files of `sectors_per_file`
/// sectors. The streams interleave sector by sector — the shape of N
/// writers hitting N flash LUNs at once, which is what the sharded
/// storage queues spread across shards (each LUN's URBs stay FIFO on
/// one queue). Pacing stays ~1 ms per *sector slot*: the LUN streams
/// progress in lockstep, modeling media that serves its units in
/// parallel.
pub fn tar_to_flash_luns(
    kernel: &Kernel,
    hcd: &str,
    luns: u32,
    files: u32,
    sectors_per_file: u32,
) -> KResult<WorkloadStats> {
    use decaf_simdev::uhci::{ep_bulk_out, FLASH_CMD_WRITE, SECTOR_SIZE};
    let before = kernel.snapshot();
    let mut written = 0u64;
    let mut ops = 0u64;
    for f in 0..files {
        for s in 0..sectors_per_file {
            let sector = f * sectors_per_file + s;
            for lun in 0..luns {
                let mut data = vec![FLASH_CMD_WRITE];
                data.extend_from_slice(&sector.to_le_bytes());
                data.extend_from_slice(&vec![(f & 0xff) as u8 ^ lun as u8; SECTOR_SIZE]);
                // Request span: submit → completion callback, so the
                // histogram sees coalescing delay, not just CPU cost.
                let id = sector as u64 * luns as u64 + lun as u64;
                kernel.trace_req_begin("tar.urb_ns", id);
                kernel.usb_submit_urb(
                    hcd,
                    Urb {
                        endpoint: ep_bulk_out(lun as usize) as u8,
                        dir: UrbDir::Out,
                        data,
                    },
                    Rc::new(move |k, _| k.trace_req_end("tar.urb_ns", id)),
                )?;
                kernel.schedule_point();
                ops += 1;
                written += SECTOR_SIZE as u64;
            }
        }
        // USB 1.0 is slow: the file's burst drains at ~1 ms per sector
        // (about 4 Mb/s on the wire, half of full speed, realistic for
        // bulk storage).
        kernel.run_for(sectors_per_file as u64 * 1_000_000);
    }
    let after = kernel.snapshot();
    Ok(WorkloadStats::from_interval(&before, &after, ops, written))
}

/// Sectors a streaming read keeps in flight before pacing — the shape
/// of a readahead window.
pub const READAHEAD_SECTORS: u32 = 8;

/// tar-style streaming *read* from the flash drive: for every sector, a
/// stage command (bulk OUT) followed by the data transfer (bulk IN),
/// issued in readahead-window bursts and paced to the same ~1 ms/sector
/// wire rate as [`tar_to_flash`]. `ops`/`bytes` count completed data
/// transfers — short sectors report their true length, so `bytes` is
/// what the device actually delivered.
///
/// The readahead window is **per file**: an archiver reads file by
/// file, so the window drains at each file boundary instead of spanning
/// into the next file's sectors. (Bugfix: the window used to run over
/// the flat sector stream, so whenever the file length was not a
/// multiple of [`READAHEAD_SECTORS`] the file's final partial burst was
/// merged into the next file's window — the tail sectors of every file
/// were issued and paced as if they belonged to its successor. The
/// regression tests pin both the per-file burst structure and the
/// partial-tail totals.)
pub fn tar_from_flash(
    kernel: &Kernel,
    hcd: &str,
    files: u32,
    sectors_per_file: u32,
) -> KResult<WorkloadStats> {
    tar_from_flash_luns(kernel, hcd, 1, files, sectors_per_file)
}

/// Multi-LUN streaming read: `luns` parallel readers, one per logical
/// unit, each streaming back `files` files of `sectors_per_file`
/// sectors in per-file readahead windows. Within a burst the LUN
/// streams interleave command/data pairs sector by sector, so the
/// sharded build sees concurrent per-LUN transactions whose FIFO order
/// (stage `R`, then IN) must survive shard steering.
pub fn tar_from_flash_luns(
    kernel: &Kernel,
    hcd: &str,
    luns: u32,
    files: u32,
    sectors_per_file: u32,
) -> KResult<WorkloadStats> {
    use decaf_simdev::uhci::{ep_bulk_in, ep_bulk_out, FLASH_CMD_READ};
    let before = kernel.snapshot();
    let bytes = Rc::new(std::cell::Cell::new(0u64));
    let done = Rc::new(std::cell::Cell::new(0u64));
    for f in 0..files {
        // The readahead window lives inside one file: the final burst
        // of a non-multiple file is issued (and paced) on its own, never
        // merged with the next file's sectors.
        let mut s = 0u32;
        while s < sectors_per_file {
            let burst = READAHEAD_SECTORS.min(sectors_per_file - s);
            for _ in 0..burst {
                let sector = f * sectors_per_file + s;
                for lun in 0..luns {
                    let mut cmd = vec![FLASH_CMD_READ];
                    cmd.extend_from_slice(&sector.to_le_bytes());
                    kernel.usb_submit_urb(
                        hcd,
                        Urb {
                            endpoint: ep_bulk_out(lun as usize) as u8,
                            dir: UrbDir::Out,
                            data: cmd,
                        },
                        Rc::new(|_, _| {}),
                    )?;
                    let b = Rc::clone(&bytes);
                    let d = Rc::clone(&done);
                    let id = sector as u64 * luns as u64 + lun as u64;
                    kernel.trace_req_begin("tar.urb_ns", id);
                    kernel.usb_submit_urb(
                        hcd,
                        Urb {
                            endpoint: ep_bulk_in(lun as usize) as u8,
                            dir: UrbDir::In,
                            data: Vec::new(),
                        },
                        Rc::new(move |k, r| {
                            k.trace_req_end("tar.urb_ns", id);
                            if let Ok(data) = r {
                                b.set(b.get() + data.len() as u64);
                                d.set(d.get() + 1);
                            }
                        }),
                    )?;
                    kernel.schedule_point();
                }
                s += 1;
            }
            kernel.run_for(burst as u64 * 1_000_000);
        }
    }
    // Let coalesced doorbells flush and the last givebacks land.
    kernel.run_for(2 * decaf_simkernel::costs::DOORBELL_COALESCE_NS);
    let after = kernel.snapshot();
    Ok(WorkloadStats::from_interval(
        &before,
        &after,
        done.get(),
        bytes.get(),
    ))
}

/// move-and-click: injects mouse movement at `events_per_sec` for
/// `seconds` and counts the input events the driver reported.
pub fn move_and_click(
    kernel: &Kernel,
    devname: &str,
    seconds: u32,
    events_per_sec: u32,
    inject: &dyn Fn(&Kernel, i8, i8, bool),
) -> KResult<WorkloadStats> {
    let before = kernel.snapshot();
    let start = kernel.now_ns();
    let events_before = kernel.input_event_count(devname);
    let total = (seconds * events_per_sec) as u64;
    let interval_ns = 1_000_000_000u64 / events_per_sec.max(1) as u64;
    for i in 0..total {
        let dx = ((i % 7) as i8) - 3;
        let dy = ((i % 5) as i8) - 2;
        inject(kernel, dx, dy, i % 50 == 0);
        kernel.schedule_point();
        let target = start + (i + 1) * interval_ns;
        let now = kernel.now_ns();
        if now < target {
            kernel.run_for(target - now);
        }
    }
    let after = kernel.snapshot();
    let events = kernel.input_event_count(devname) - events_before;
    Ok(WorkloadStats::from_interval(
        &before,
        &after,
        events,
        events * 3,
    ))
}

// ---------------------------------------------------------------------
// Open-loop entry points. The closed-loop generators above decide the
// next request by waiting for the last one; the open-loop engine in
// `decaf-core` instead walks a pre-computed arrival schedule and calls
// these per arrival. They are deliberately thin — one request in, the
// shard it landed on out — so latency accounting (completion time minus
// *scheduled* arrival time) stays entirely with the engine.

/// Posts one open-loop packet descriptor: steer by cookie, post into
/// that shard's ring under its cost scope, let the watermark/deadline
/// policy decide the doorbell. On a full ring the doorbell is rung once
/// (draining the ring) and the post retried — the same staged
/// backpressure contract the submit paths use.
pub fn open_loop_packet(
    kernel: &Kernel,
    net: &crate::support::OpenLoopNet,
    len: u32,
    cookie: u64,
) -> decaf_xpc::XpcResult<usize> {
    use decaf_shmring::{BufHandle, Descriptor};
    let shard = net.steer(cookie);
    let dp = &net.paths[shard];
    kernel.shard_scope(shard, || {
        let desc = Descriptor {
            buf: BufHandle(cookie as u32),
            len,
            cookie,
        };
        if dp.post(kernel, desc).is_err() {
            dp.ring_doorbell(kernel)?;
            dp.post(kernel, desc)?;
        }
        dp.maybe_ring(kernel)?;
        Ok(shard)
    })
}

/// Reclaims completed open-loop packets across all shards, returning
/// their cookies (the engine maps cookies back to scheduled arrivals).
pub fn open_loop_packet_reclaim(kernel: &Kernel, net: &crate::support::OpenLoopNet) -> Vec<u64> {
    let mut done = Vec::new();
    for (i, dp) in net.paths.iter().enumerate() {
        kernel.shard_scope(i, || {
            done.extend(dp.reclaim_completions(kernel).into_iter().map(|d| d.cookie));
        });
    }
    done
}

/// Submits one open-loop storage URB (a 512-byte sector write steered
/// by LUN) and returns the shard it landed on. Backpressure propagates
/// to the caller: `ShardedUrbPath::submit_out` already stages its own
/// reclaim-and-retry, so a residual error means the shard is genuinely
/// saturated and the engine should treat the request as waiting.
pub fn open_loop_urb(
    kernel: &Kernel,
    path: &decaf_xpc::ShardedUrbPath,
    lun_count: u64,
    payload: &[u8],
    cookie: u64,
) -> decaf_xpc::XpcResult<usize> {
    path.submit_out(kernel, cookie % lun_count.max(1), 2, payload, cookie)
}

/// Reclaims completed open-loop URBs, returning their cookies.
pub fn open_loop_urb_reclaim(kernel: &Kernel, path: &decaf_xpc::ShardedUrbPath) -> Vec<u64> {
    path.reclaim(kernel).into_iter().map(|r| r.cookie).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netperf_send_on_native_e1000() {
        let k = Kernel::new();
        let _drv = crate::e1000::native::install(&k, "eth0").unwrap();
        k.netdev_open("eth0").unwrap();
        let stats = netperf_send(&k, "eth0", 1, 500, 1500).unwrap();
        assert_eq!(stats.ops, 500);
        assert!(
            stats.cpu_util > 0.0 && stats.cpu_util < 1.0,
            "{}",
            stats.cpu_util
        );
        assert!(stats.throughput_mbps() > 1.0);
        // Virtual time advanced roughly one second.
        assert!((900_000_000..1_600_000_000).contains(&stats.elapsed_ns));
    }

    #[test]
    fn mpg123_on_native_ens1371_is_nearly_idle() {
        let k = Kernel::new();
        let _drv = crate::ens1371::install_native(&k, "card0").unwrap();
        let stats = mpg123(&k, "card0", 2).unwrap();
        assert_eq!(stats.ops, 44_100 * 2);
        assert!(stats.cpu_util < 0.05, "sound is idle: {}", stats.cpu_util);
        assert!(stats.elapsed_ns >= 1_900_000_000);
    }

    #[test]
    fn tar_on_native_uhci_writes_sectors() {
        let k = Kernel::new();
        let drv = crate::uhci::install_native(&k, "uhci0").unwrap();
        let stats = tar_to_flash(&k, "uhci0", 4, 16).unwrap();
        assert_eq!(stats.ops, 64);
        assert_eq!(drv.dev.borrow().flash_sector_count(), 64);
        assert!(
            stats.cpu_util < 0.2,
            "USB 1.0 is low-utilization: {}",
            stats.cpu_util
        );
    }

    #[test]
    fn tar_streaming_read_on_native_uhci() {
        let k = Kernel::new();
        let drv = crate::uhci::install_native(&k, "uhci0").unwrap();
        // Preloaded media: the read workload measures reads, not writes.
        for s in 0..32u32 {
            drv.dev.borrow_mut().preload_sector(s, vec![s as u8; 512]);
        }
        let stats = tar_from_flash(&k, "uhci0", 2, 16).unwrap();
        assert_eq!(stats.ops, 32);
        assert_eq!(stats.bytes, 32 * 512);
        assert_eq!(drv.dev.borrow().flash_reads(), 32);
        assert!(
            stats.cpu_util < 0.2,
            "USB 1.0 is low-utilization: {}",
            stats.cpu_util
        );
    }

    #[test]
    fn tar_streaming_read_on_shmring_uhci_is_zero_copy() {
        let k = Kernel::new();
        let drv = crate::uhci::install_shmring(&k, "uhci0").unwrap();
        for s in 0..32u32 {
            drv.dev.borrow_mut().preload_sector(s, vec![s as u8; 512]);
        }
        let stats = tar_from_flash(&k, "uhci0", 2, 16).unwrap();
        assert_eq!(stats.ops, 32, "every giveback dispatched");
        assert_eq!(stats.bytes, 32 * 512);
        assert_eq!(k.stats().bytes_copied, 0, "bulk payloads never copied");
        assert!(drv.urb_path.conserved());
        assert!(
            drv.channel.stats().descriptors_per_doorbell() > 2.0,
            "readahead bursts amortize doorbells: {}",
            drv.channel.stats().descriptors_per_doorbell()
        );
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn tar_streaming_read_windows_do_not_span_files() {
        // Regression (readahead-window fix): with sectors_per_file not a
        // multiple of READAHEAD_SECTORS, every file ends in a partial
        // burst that must be issued and completed on its own — before
        // the fix the window ran over the flat sector stream and merged
        // each file's tail into the next file's window. 3 files x 11
        // sectors: per-file windows are 8+3; the flat stream would have
        // produced 8+8+8+8+1.
        let k = Kernel::new();
        let drv = crate::uhci::install_native(&k, "uhci0").unwrap();
        for s in 0..33u32 {
            drv.dev.borrow_mut().preload_sector(s, vec![s as u8; 512]);
        }
        let stats = tar_from_flash(&k, "uhci0", 3, 11).unwrap();
        assert_eq!(stats.ops, 33, "every sector of every partial tail read");
        assert_eq!(stats.bytes, 33 * 512);
        assert_eq!(drv.dev.borrow().flash_reads(), 33);
        // Pacing covers each file's full window sequence (8 + 3 slots
        // per file): the partial tail is paced, not dropped or deferred
        // into the next file.
        assert!(
            stats.elapsed_ns >= 33 * 1_000_000,
            "partial tails must be paced: {} ns",
            stats.elapsed_ns
        );
    }

    #[test]
    fn tar_streaming_read_partial_tail_on_shmring_build() {
        // The same regression on the ring path: sub-watermark tails rely
        // on the coalescing deadline, so a lost partial burst would show
        // up as missing ops here first.
        let k = Kernel::new();
        let drv = crate::uhci::install_shmring(&k, "uhci0").unwrap();
        for s in 0..10u32 {
            drv.dev.borrow_mut().preload_sector(s, vec![7; 512]);
        }
        let stats = tar_from_flash(&k, "uhci0", 2, 5).unwrap();
        assert_eq!(stats.ops, 10, "both files' sub-window tails completed");
        assert_eq!(stats.bytes, 10 * 512);
        assert_eq!(k.stats().bytes_copied, 0);
        assert!(drv.urb_path.conserved());
    }

    #[test]
    fn multi_lun_tar_round_trips_on_sharded_uhci() {
        let k = Kernel::new();
        let drv = crate::uhci::install_sharded(&k, "uhci0", 4).unwrap();
        let w = tar_to_flash_luns(&k, "uhci0", 4, 2, 8).unwrap();
        assert_eq!(w.ops, 4 * 2 * 8, "every LUN stream written");
        assert_eq!(drv.dev.borrow().flash_sector_count(), 64);
        let r = tar_from_flash_luns(&k, "uhci0", 4, 2, 8).unwrap();
        assert_eq!(r.ops, w.ops, "every LUN stream read back");
        assert_eq!(r.bytes, w.bytes);
        assert_eq!(k.stats().bytes_copied, 0, "zero-copy across all LUNs");
        assert!(drv.urb_path.conserved());
        let used = (0..4)
            .filter(|&i| drv.urb_path.set().shard_stats(i).submitted > 0)
            .count();
        assert!(used >= 2, "LUN steering left traffic on {used} shard(s)");
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn mouse_events_flow() {
        let k = Kernel::new();
        let drv = crate::psmouse::install_native(&k, "mouse0").unwrap();
        let dev = Rc::clone(&drv.dev);
        let stats = move_and_click(&k, "mouse0", 1, 100, &move |k, dx, dy, b| {
            dev.borrow_mut().inject_move(k, dx, dy, b);
        })
        .unwrap();
        assert!(stats.ops >= 200, "x+y per packet: {}", stats.ops);
        assert!(stats.cpu_util < 0.05);
    }
}
