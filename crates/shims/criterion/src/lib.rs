//! Offline shim of the `criterion` benchmark harness.
//!
//! The container this repo builds in has no network access to crates.io,
//! so this crate provides the small API subset our benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and the
//! `criterion_group!`/`criterion_main!` macros — with a simple wall-clock
//! measurement loop instead of criterion's statistical machinery. Swap the
//! workspace `criterion` path dependency for the registry crate to get the
//! real harness; no bench source changes are required.

use std::hint;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE_TIME: Duration = Duration::from_millis(200);
/// Iteration cap so pathological benches terminate.
const MAX_ITERS: u64 = 1_000_000;

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One benchmark's measurement state.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Measures `f` repeatedly until the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..3 {
            black_box(f());
        }
        let start = Instant::now();
        while start.elapsed() < MEASURE_TIME && self.iters < MAX_ITERS {
            let t = Instant::now();
            black_box(f());
            self.total += t.elapsed();
            self.iters += 1;
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        println!("{name:<44} {:>12.1} ns/iter ({} iters)", mean_ns, b.iters);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
