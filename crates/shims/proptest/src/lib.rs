//! Offline shim of the `proptest` property-testing framework.
//!
//! The build container has no network access, so this crate implements the
//! API subset our property tests use: `any::<T>()` for primitives, the
//! `Strategy` combinators (`prop_map`, `prop_flat_map`, `prop_recursive`,
//! `boxed`), `prop_oneof!`, `collection::vec`, `option::of`, `Just`,
//! char-class string strategies (`"[a-z]{0,20}"`), tuple and range
//! strategies, and the `proptest!`/`prop_assert*` macros.
//!
//! Semantics: each `proptest!` test runs a fixed number of cases with a
//! deterministic seeded RNG (SplitMix64). There is **no shrinking**: a
//! failing case panics with the assertion message directly. Swapping the
//! workspace `proptest` path dependency for the registry crate restores
//! full shrinking behaviour without source changes.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy producing `None` about a quarter of the time and
    /// `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Everything a test file normally imports.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// The number of cases each `proptest!` test executes.
pub const CASES: u64 = 64;

/// Runs a block for [`CASES`] deterministic cases. Used via [`proptest!`].
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut __rng = $crate::test_runner::TestRng::seeded(
                        0xDECAF ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    );
                    $(let $pat = $crate::strategy::Strategy::gen_value(&$strat, &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a property (no shrinking: plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (no shrinking: plain panic).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Chooses uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
