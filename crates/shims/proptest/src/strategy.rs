//! The `Strategy` trait and the combinators the shim supports.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A value generator. Mirrors `proptest::strategy::Strategy` minus
/// shrinking: `gen_value` produces one value from the RNG.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Builds a bounded-depth recursive strategy: each level chooses the
    /// leaf (`self`) or one step of `recurse` applied to the level below.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut level = self.clone().boxed();
        for _ in 0..depth {
            level = Union::new(vec![self.clone().boxed(), recurse(level).boxed()]).boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn gen_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased strategy (cheaply clonable).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F: ?Sized> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F: ?Sized> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F: ?Sized> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F: ?Sized> Clone for FlatMap<S, F> {
    fn clone(&self) -> Self {
        FlatMap {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// Uniform choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].gen_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` for the supported primitive types.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Primitive types `any` can generate.
pub trait Arbitrary: Sized {
    /// Draws one value from the RNG.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })+
    };
}
arb_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

// Integer ranges are strategies, as in proptest.
macro_rules! range_strategy {
    ($($t:ty),+) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                if self.end <= self.start {
                    return self.start;
                }
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        })+
    };
}
range_strategy!(u8, u16, u32, u64, i32, i64, usize);

// Tuples of strategies generate tuples of values.
macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// A vector length specification: exact or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

/// See [`crate::collection::vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.in_range(self.size.lo, self.size.hi);
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// See [`crate::option::of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.gen_value(rng))
        }
    }
}

// String strategies from a char-class pattern like "[a-zA-Z0-9 _:/.-]{0,20}".
impl Strategy for &'static str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_charclass(self);
        let n = rng.in_range(lo, hi + 1);
        (0..n)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parses the `[class]{lo,hi}` pattern subset. Panics on anything fancier —
/// the real proptest supports full regex syntax; this shim does not.
fn parse_charclass(pat: &str) -> (Vec<char>, usize, usize) {
    let inner_end = pat.rfind(']').unwrap_or_else(|| unsupported(pat));
    if !pat.starts_with('[') {
        unsupported(pat);
    }
    let class: Vec<char> = pat[1..inner_end].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' && class[i] <= class[i + 2] {
            for c in class[i]..=class[i + 2] {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    let rest = &pat[inner_end + 1..];
    let (lo, hi) = if rest.is_empty() {
        (1, 1)
    } else if rest.starts_with('{') && rest.ends_with('}') {
        let body = &rest[1..rest.len() - 1];
        match body.split_once(',') {
            Some((a, b)) => (
                a.trim().parse().unwrap_or_else(|_| unsupported(pat)),
                b.trim().parse().unwrap_or_else(|_| unsupported(pat)),
            ),
            None => {
                let n = body.trim().parse().unwrap_or_else(|_| unsupported(pat));
                (n, n)
            }
        }
    } else {
        unsupported(pat)
    };
    if chars.is_empty() {
        unsupported(pat);
    }
    (chars, lo, hi)
}

fn unsupported(pat: &str) -> ! {
    panic!("proptest shim: unsupported string pattern `{pat}` (only `[class]{{lo,hi}}`)")
}
