//! Deterministic RNG driving case generation.

/// A SplitMix64 generator: deterministic, seedable, two lines of state.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn seeded(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; returns 0 for an empty bound.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// Uniform usize in `[lo, hi)`; `lo` when the range is empty.
    pub fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A uniformly random bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
