//! Watermark + deadline doorbell coalescing.

use std::cell::Cell;

use decaf_simkernel::costs;

/// Decides when descriptors parked in a ring are worth a boundary
/// crossing.
///
/// Two triggers, whichever comes first:
///
/// * **watermark** — occupancy reached the batch size worth amortizing a
///   crossing over (the high-rate case);
/// * **deadline** — the oldest unflushed post has waited longer than the
///   coalescing window (the low-rate case: a lone descriptor must not
///   wait forever for company).
#[derive(Debug)]
pub struct DoorbellPolicy {
    watermark: usize,
    deadline_ns: u64,
    /// Virtual time of the first post since the last doorbell.
    armed_at: Cell<Option<u64>>,
}

impl DoorbellPolicy {
    /// A policy ringing at `watermark` occupancy or `deadline_ns` after
    /// the first unflushed post.
    pub fn new(watermark: usize, deadline_ns: u64) -> Self {
        DoorbellPolicy {
            watermark: watermark.max(1),
            deadline_ns,
            armed_at: Cell::new(None),
        }
    }

    /// The default policy: ring at `watermark` or after the cost table's
    /// [`costs::DOORBELL_COALESCE_NS`] window.
    pub fn with_watermark(watermark: usize) -> Self {
        DoorbellPolicy::new(watermark, costs::DOORBELL_COALESCE_NS)
    }

    /// The configured watermark.
    pub fn watermark(&self) -> usize {
        self.watermark
    }

    /// Notes a post at virtual time `now_ns`; arms the deadline if this
    /// is the first post since the last doorbell.
    pub fn note_post(&self, now_ns: u64) {
        if self.armed_at.get().is_none() {
            self.armed_at.set(Some(now_ns));
        }
    }

    /// Whether the doorbell should ring now.
    pub fn due(&self, now_ns: u64, occupancy: usize) -> bool {
        if occupancy == 0 {
            return false;
        }
        if occupancy >= self.watermark {
            return true;
        }
        match self.armed_at.get() {
            Some(t) => now_ns.saturating_sub(t) >= self.deadline_ns,
            None => false,
        }
    }

    /// How long the oldest unflushed post has been waiting at virtual
    /// time `now_ns`, or `None` when the deadline is disarmed. Observers
    /// (trace coalesce events) read this; it never changes policy state.
    pub fn armed_age_ns(&self, now_ns: u64) -> Option<u64> {
        self.armed_at.get().map(|t| now_ns.saturating_sub(t))
    }

    /// Records that the doorbell rang (disarms the deadline).
    pub fn rang(&self) {
        self.armed_at.set(None);
    }

    /// Records that the doorbell rang but the drain left `survivors`
    /// posts parked (a budgeted consumer, a device that NAKed, a
    /// recovery re-ring). Disarming unconditionally here is the
    /// disarm-with-occupancy hazard: with `armed_at` back to `None` and
    /// occupancy below the watermark, [`DoorbellPolicy::due`] can never
    /// deadline-fire again and the survivors wait forever. Rings drain
    /// FIFO, so the survivors are the *newest* posts; without per-post
    /// timestamps `now_ns` is the tightest anchor the policy can know,
    /// and it bounds the survivors' extra wait to one deadline window.
    pub fn rang_with_survivors(&self, now_ns: u64, survivors: usize) {
        self.armed_at
            .set(if survivors > 0 { Some(now_ns) } else { None });
    }

    /// Re-anchors (or disarms, with `None`) the deadline explicitly —
    /// used when the oldest parked item is dropped rather than flushed,
    /// so the window is measured from the oldest *surviving* post.
    pub fn rearm(&self, at_ns: Option<u64>) {
        self.armed_at.set(at_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_triggers_immediately() {
        let p = DoorbellPolicy::new(3, 1_000_000);
        p.note_post(0);
        assert!(!p.due(0, 1));
        assert!(!p.due(0, 2));
        assert!(p.due(0, 3), "watermark reached");
    }

    #[test]
    fn deadline_triggers_for_a_lone_descriptor() {
        let p = DoorbellPolicy::new(8, 1_000);
        p.note_post(100);
        assert!(!p.due(500, 1));
        assert!(p.due(1_100, 1), "coalescing window expired");
        p.rang();
        assert!(!p.due(10_000, 0), "nothing pending after the ring");
    }

    #[test]
    fn deadline_measured_from_first_post_of_the_batch() {
        let p = DoorbellPolicy::new(8, 1_000);
        p.note_post(0);
        p.note_post(900); // later posts do not push the deadline out
        assert!(p.due(1_000, 2));
    }

    #[test]
    fn partial_drain_rearms_for_the_survivors() {
        // Regression: a doorbell whose drain left occupancy behind used
        // to disarm unconditionally, after which `due` could never
        // deadline-fire (`armed_at == None`) and a below-watermark
        // survivor waited for the watermark forever.
        let p = DoorbellPolicy::new(8, 1_000);
        p.note_post(100);
        p.rang_with_survivors(500, 2);
        assert!(!p.due(1_200, 2), "window restarts from the ring");
        assert!(p.due(1_500, 2), "survivors deadline-fire within one window");
        // A clean drain still disarms completely.
        p.rang_with_survivors(1_500, 0);
        assert_eq!(p.armed_age_ns(9_999), None);
        assert!(!p.due(99_999, 0));
    }
}
