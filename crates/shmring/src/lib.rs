//! Pinned shared-memory descriptor rings for the zero-copy data path.
//!
//! Decaf keeps the packet data path in the kernel because crossing the
//! boundary *by value* is too expensive: every payload byte pays
//! marshaling plus copy costs. Emmerich et al. ("The Case for Writing
//! Network Drivers in High-Level Programming Languages") show that
//! high-level-language drivers reach line rate by mapping descriptor
//! rings into the driver and passing *ownership*, not bytes. This crate
//! models that mechanism for the simulated kernel — and it is
//! device-class-generic: the same rings carry NIC frame descriptors and
//! storage URB request/response descriptors.
//!
//! * [`ShmRing`] — a single-producer/single-consumer descriptor ring in
//!   pinned shared memory, generic over its slot type. Each slot carries
//!   an ownership flag (the moral equivalent of a NIC descriptor's DD
//!   bit): the producer may only write producer-owned slots, the
//!   consumer only read consumer-owned ones. Posting a descriptor costs
//!   [`decaf_simkernel::costs::RING_POST_NS`] (two cache-line writes);
//!   consuming one costs [`decaf_simkernel::costs::RING_CACHELINE_NS`]
//!   (a coherence miss) — *never* a per-byte marshal cost.
//! * [`BufPool`] — a pool of fixed-size payload buffers carved out of a
//!   [`decaf_simkernel::DmaMemory`] region, so a buffer handle in a
//!   descriptor refers to memory the device can DMA from/to directly.
//!   Payload is written into a pool buffer exactly once (charged through
//!   [`decaf_simkernel::Kernel::charge_copy`]); after that only the
//!   handle travels. Frees may arrive out of order — completion order is
//!   the device's business, not the ring's.
//! * [`SectorPool`] — the storage-shaped pool: variable-length sector
//!   runs instead of fixed frames, a buddy allocator with
//!   scatter-gather chaining ([`SectorPool::alloc_sg`]) so a fragmented
//!   pool never refuses a transfer it has the bytes for (the first-fit
//!   scan survives behind [`AllocMode`] for the ablation), plus
//!   zero-copy payload adoption ([`SectorPool::adopt_payload_sg`]) for
//!   page-granular buffers the device can DMA where they sit.
//! * [`UrbDescriptor`] — the request/response descriptor for URB-shaped
//!   transfers: direction, endpoint and length on the submit ring;
//!   status and actual transferred length on the giveback ring, with
//!   IN-direction completions handing the payload run's *ownership*
//!   back, never copied bytes.
//! * [`DoorbellPolicy`] — decides *when* the descriptors parked in a
//!   ring are worth a crossing: at a watermark occupancy, or when the
//!   oldest post has waited longer than a coalescing deadline
//!   ([`decaf_simkernel::costs::DOORBELL_COALESCE_NS`]), so low-rate
//!   paths are not held hostage by batching.
//! * [`RingSet`] — RSS-style multi-queue: N per-shard descriptor rings
//!   and completion rings behind one object, with deterministic flow
//!   steering and a completion-steering policy that routes the IRQ-side
//!   handback to the shard that posted the descriptor.
//! * [`UrbRingSet`] — the storage-shaped multi-queue: N per-shard URB
//!   submit/giveback ring *pairs* over one shared [`SectorPool`], with
//!   per-LUN steering (a storage transaction's FIFO order is
//!   load-bearing, so one LUN stays on one shard) and per-shard
//!   conservation counters.
//!
//! The XPC layer builds its data-path channels on these pieces
//! (`DataPathChannel` for NIC streams, `UrbDataPath` for storage
//! request/response): the descriptors ride the rings, the doorbell rides
//! the existing transport crossing, and the payload bytes never see the
//! XDR marshaler.
//!
//! # Example: one frame, zero marshaled payload bytes
//!
//! ```
//! use decaf_shmring::{BufPool, Descriptor, ShmRing};
//! use decaf_simkernel::{CpuClass, Kernel};
//!
//! let kernel = Kernel::new();
//! let ring = ShmRing::new("tx", 8);
//! let pool = BufPool::with_capacity(2048, 8);
//!
//! // Producer: one audited copy into the shared pool, then a 16-byte
//! // descriptor into the ring.
//! let buf = pool.alloc().unwrap();
//! pool.write_payload(&kernel, CpuClass::Kernel, buf, b"frame").unwrap();
//! ring.push(&kernel, CpuClass::Kernel, Descriptor { buf, len: 5, cookie: 1 }).unwrap();
//!
//! // Consumer: reads the payload in place and hands the buffer back.
//! let d = ring.pop(&kernel, CpuClass::User).unwrap();
//! assert_eq!(pool.read_payload(d.buf, d.len as usize).unwrap(), b"frame");
//! pool.free(d.buf).unwrap();
//! assert_eq!(kernel.stats().bytes_copied, 5, "exactly one copy, ever");
//! ```
//!
//! # Example: multi-queue steering with a [`RingSet`]
//!
//! ```
//! use decaf_shmring::{BufHandle, Descriptor, RingSet};
//! use decaf_simkernel::{CpuClass, Kernel};
//!
//! let kernel = Kernel::new();
//! let set = RingSet::new("tx", 4, 16, 32);
//!
//! // Posts steer by flow hash; completions steer home to the posting
//! // shard, wherever the IRQ side happens to drain them.
//! let flow = 0xbeef;
//! let shard = set.steer(flow);
//! let desc = Descriptor { buf: BufHandle(0), len: 64, cookie: 9 };
//! set.post(&kernel, CpuClass::Kernel, shard, desc).unwrap();
//!
//! let drained = set.ring(shard).drain(&kernel, CpuClass::User);
//! let home = set.complete(&kernel, CpuClass::User, drained[0]).unwrap();
//! assert_eq!(home, shard, "completions come home");
//! assert!(set.conserved(), "no descriptor lost or double-completed");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod doorbell;
pub mod pool;
pub mod ring;
pub mod ringset;
pub mod sector;
pub mod urb;
pub mod urbset;

pub use doorbell::DoorbellPolicy;
pub use pool::{BufHandle, BufPool, PoolError, PoolStats};
pub use ring::{Descriptor, RingError, RingStats, ShmRing, SlotOwner};
pub use ringset::{flow_hash, RingSet, RingSetError, RingSetStats};
pub use sector::{AllocMode, SectorHandle, SectorPool, SectorPoolStats, SgHandle, SgSegment};
pub use urb::{UrbDescriptor, XferDir};
pub use urbset::{UrbRingSet, UrbShardStats};
