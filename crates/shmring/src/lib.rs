//! Pinned shared-memory descriptor rings for the zero-copy data path.
//!
//! Decaf keeps the packet data path in the kernel because crossing the
//! boundary *by value* is too expensive: every payload byte pays
//! marshaling plus copy costs. Emmerich et al. ("The Case for Writing
//! Network Drivers in High-Level Programming Languages") show that
//! high-level-language drivers reach line rate by mapping descriptor
//! rings into the driver and passing *ownership*, not bytes. This crate
//! models that mechanism for the simulated kernel:
//!
//! * [`ShmRing`] — a single-producer/single-consumer descriptor ring in
//!   pinned shared memory. Each slot carries an ownership flag (the
//!   moral equivalent of a NIC descriptor's DD bit): the producer may
//!   only write producer-owned slots, the consumer only read
//!   consumer-owned ones. Posting a descriptor costs
//!   [`decaf_simkernel::costs::RING_POST_NS`] (two cache-line writes);
//!   consuming one costs [`decaf_simkernel::costs::RING_CACHELINE_NS`]
//!   (a coherence miss) — *never* a per-byte marshal cost.
//! * [`BufPool`] — a pool of fixed-size payload buffers carved out of a
//!   [`decaf_simkernel::DmaMemory`] region, so a buffer handle in a
//!   descriptor refers to memory the device can DMA from/to directly.
//!   Payload is written into a pool buffer exactly once (charged through
//!   [`decaf_simkernel::Kernel::charge_copy`]); after that only the
//!   handle travels. Frees may arrive out of order — completion order is
//!   the device's business, not the ring's.
//! * [`DoorbellPolicy`] — decides *when* the descriptors parked in a
//!   ring are worth a crossing: at a watermark occupancy, or when the
//!   oldest post has waited longer than a coalescing deadline
//!   ([`decaf_simkernel::costs::DOORBELL_COALESCE_NS`]), so low-rate
//!   paths are not held hostage by batching.
//! * [`RingSet`] — RSS-style multi-queue: N per-shard descriptor rings
//!   and completion rings behind one object, with deterministic flow
//!   steering and a completion-steering policy that routes the IRQ-side
//!   handback to the shard that posted the descriptor.
//!
//! The XPC layer builds its `DataPathChannel` on these pieces: the
//! descriptors ride the rings, the doorbell rides the existing transport
//! crossing, and the payload bytes never see the XDR marshaler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod doorbell;
pub mod pool;
pub mod ring;
pub mod ringset;

pub use doorbell::DoorbellPolicy;
pub use pool::{BufHandle, BufPool, PoolError, PoolStats};
pub use ring::{Descriptor, RingError, RingStats, ShmRing, SlotOwner};
pub use ringset::{flow_hash, RingSet, RingSetError, RingSetStats};
