//! The shared payload-buffer pool.

use std::cell::{Cell, RefCell};

use decaf_simkernel::{CpuClass, DmaMemory, Kernel};

/// Handle to one pool buffer. Handles are what descriptors carry across
/// the boundary — 4 bytes standing in for a whole payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BufHandle(pub u32);

/// Pool failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// No free buffer: the producer must reclaim completions first.
    Exhausted,
    /// The handle does not name a pool buffer (the payload is the raw
    /// handle index — shared between [`BufHandle`] and
    /// [`crate::SectorHandle`] pools).
    BadHandle(u32),
    /// The buffer is not currently allocated (double free, stale handle).
    NotAllocated(u32),
    /// The payload does not fit one buffer.
    TooLarge {
        /// Bytes offered.
        len: usize,
        /// Buffer size.
        buf_size: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Exhausted => write!(f, "buffer pool exhausted"),
            PoolError::BadHandle(h) => write!(f, "bad buffer handle {h}"),
            PoolError::NotAllocated(h) => write!(f, "buffer {h} not allocated"),
            PoolError::TooLarge { len, buf_size } => {
                write!(f, "payload of {len} B exceeds buffer size {buf_size} B")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Counters for one pool.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Buffers handed back.
    pub frees: u64,
    /// Allocations refused for want of a free buffer.
    pub exhausted: u64,
    /// Most buffers simultaneously in use.
    pub in_use_hwm: u64,
}

/// A pool of fixed-size payload buffers carved out of a [`DmaMemory`]
/// region.
///
/// Because the buffers live in the *device's* DMA region, a payload
/// written here is already where the hardware will read it — handing the
/// buffer's offset to a descriptor ring is genuinely zero-copy. Frees may
/// arrive in any order (devices complete out of order); the free list
/// absorbs that.
#[derive(Debug)]
pub struct BufPool {
    dma: DmaMemory,
    base: usize,
    buf_size: usize,
    free: RefCell<Vec<u32>>,
    allocated: RefCell<Vec<bool>>,
    stats: Cell<PoolStats>,
}

impl BufPool {
    /// Builds a pool of `count` buffers of `buf_size` bytes starting at
    /// byte `base` of `dma`.
    ///
    /// # Panics
    /// Panics if the region does not fit inside `dma` or `count` is zero.
    pub fn new(dma: DmaMemory, base: usize, buf_size: usize, count: usize) -> Self {
        assert!(count > 0, "a pool needs at least one buffer");
        assert!(
            base + buf_size * count <= dma.len(),
            "pool region {base}+{}x{count} exceeds DMA size {}",
            buf_size,
            dma.len()
        );
        BufPool {
            dma,
            base,
            buf_size,
            // LIFO free list: reuse the warmest buffer first.
            free: RefCell::new((0..count as u32).rev().collect()),
            allocated: RefCell::new(vec![false; count]),
            stats: Cell::new(PoolStats::default()),
        }
    }

    /// Builds a standalone pool over its own fresh DMA region (tests and
    /// the data-path ablation, where no device model is attached).
    pub fn with_capacity(buf_size: usize, count: usize) -> Self {
        BufPool::new(DmaMemory::new(buf_size * count), 0, buf_size, count)
    }

    /// Number of buffers.
    pub fn capacity(&self) -> usize {
        self.allocated.borrow().len()
    }

    /// Bytes per buffer.
    pub fn buf_size(&self) -> usize {
        self.buf_size
    }

    /// Buffers currently free.
    pub fn available(&self) -> usize {
        self.free.borrow().len()
    }

    /// Buffers currently allocated.
    pub fn in_use(&self) -> usize {
        self.capacity() - self.available()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        self.stats.get()
    }

    fn bump(&self, f: impl FnOnce(&mut PoolStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    /// Allocates one buffer, or [`PoolError::Exhausted`].
    pub fn alloc(&self) -> Result<BufHandle, PoolError> {
        let Some(idx) = self.free.borrow_mut().pop() else {
            self.bump(|s| s.exhausted += 1);
            return Err(PoolError::Exhausted);
        };
        self.allocated.borrow_mut()[idx as usize] = true;
        let in_use = self.in_use() as u64;
        self.bump(|s| {
            s.allocs += 1;
            s.in_use_hwm = s.in_use_hwm.max(in_use);
        });
        Ok(BufHandle(idx))
    }

    /// Returns a buffer to the pool. Order-independent; double frees and
    /// stale handles are rejected.
    pub fn free(&self, h: BufHandle) -> Result<(), PoolError> {
        let mut allocated = self.allocated.borrow_mut();
        match allocated.get_mut(h.0 as usize) {
            None => Err(PoolError::BadHandle(h.0)),
            Some(a) if !*a => Err(PoolError::NotAllocated(h.0)),
            Some(a) => {
                *a = false;
                self.free.borrow_mut().push(h.0);
                self.bump(|s| s.frees += 1);
                Ok(())
            }
        }
    }

    fn check(&self, h: BufHandle) -> Result<usize, PoolError> {
        match self.allocated.borrow().get(h.0 as usize) {
            None => Err(PoolError::BadHandle(h.0)),
            Some(false) => Err(PoolError::NotAllocated(h.0)),
            Some(true) => Ok(self.base + h.0 as usize * self.buf_size),
        }
    }

    /// DMA offset of a buffer — what a device descriptor points at.
    pub fn offset_of(&self, h: BufHandle) -> Result<usize, PoolError> {
        self.check(h)
    }

    /// Writes `data` into the buffer: the *single* CPU copy a payload
    /// pays on the shmring path, charged via
    /// [`Kernel::charge_copy`] so the audit counter sees it.
    pub fn write_payload(
        &self,
        kernel: &Kernel,
        class: CpuClass,
        h: BufHandle,
        data: &[u8],
    ) -> Result<(), PoolError> {
        if data.len() > self.buf_size {
            return Err(PoolError::TooLarge {
                len: data.len(),
                buf_size: self.buf_size,
            });
        }
        let off = self.check(h)?;
        self.dma.write_bytes(off, data);
        kernel.charge_copy(class, data.len() as u64);
        Ok(())
    }

    /// Reads `len` payload bytes back out of a buffer.
    ///
    /// No copy cost is charged here: the consumer reads the payload *in
    /// place* — the `Vec` is a simulation artifact, not a modeled copy.
    /// Whoever moves the bytes onward (e.g. `netif_rx` into the stack)
    /// charges that copy itself.
    pub fn read_payload(&self, h: BufHandle, len: usize) -> Result<Vec<u8>, PoolError> {
        if len > self.buf_size {
            return Err(PoolError::TooLarge {
                len,
                buf_size: self.buf_size,
            });
        }
        let off = self.check(h)?;
        Ok(self.dma.read_bytes(off, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_roundtrip() {
        let k = Kernel::new();
        let p = BufPool::with_capacity(64, 4);
        let h = p.alloc().unwrap();
        p.write_payload(&k, CpuClass::Kernel, h, b"hello").unwrap();
        assert_eq!(p.read_payload(h, 5).unwrap(), b"hello");
        assert_eq!(k.stats().bytes_copied, 5, "one audited copy");
        p.free(h).unwrap();
        assert_eq!(p.available(), 4);
    }

    #[test]
    fn exhaustion_and_double_free_detected() {
        let p = BufPool::with_capacity(16, 2);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        assert_eq!(p.alloc(), Err(PoolError::Exhausted));
        p.free(a).unwrap();
        assert_eq!(p.free(a), Err(PoolError::NotAllocated(a.0)));
        assert_eq!(p.free(BufHandle(99)), Err(PoolError::BadHandle(99)));
        p.free(b).unwrap();
        assert_eq!(p.stats().in_use_hwm, 2);
    }

    #[test]
    fn oversize_payload_rejected() {
        let k = Kernel::new();
        let p = BufPool::with_capacity(8, 1);
        let h = p.alloc().unwrap();
        assert!(matches!(
            p.write_payload(&k, CpuClass::Kernel, h, &[0; 9]),
            Err(PoolError::TooLarge { .. })
        ));
    }

    #[test]
    fn buffers_map_to_distinct_dma_offsets() {
        let dma = DmaMemory::new(256);
        let p = BufPool::new(dma, 64, 32, 4);
        let handles: Vec<_> = (0..4).map(|_| p.alloc().unwrap()).collect();
        let mut offsets: Vec<_> = handles.iter().map(|&h| p.offset_of(h).unwrap()).collect();
        offsets.sort_unstable();
        assert_eq!(offsets, vec![64, 96, 128, 160]);
    }
}
