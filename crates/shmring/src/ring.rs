//! The single-producer/single-consumer descriptor ring.
//!
//! The ring is generic over its slot type: the NIC data paths post
//! 16-byte [`Descriptor`]s (the default), the storage path posts
//! [`crate::UrbDescriptor`]s carrying request/response metadata. Any
//! `Copy + Default` value small enough to think of as "a couple of
//! cache lines" qualifies — the protocol (slot ownership, wrap-around,
//! backpressure) and the cost model are identical for all of them.

use std::cell::Cell;

use decaf_simkernel::{costs, CpuClass, Kernel};

use crate::pool::BufHandle;

/// Who may touch a ring slot right now.
///
/// The flag plays the role of a NIC descriptor's descriptor-done bit: the
/// producer hands a slot to the consumer by flipping it to
/// [`SlotOwner::Consumer`] *after* writing the descriptor body (a
/// release-store in real hardware), and the consumer hands it back by
/// flipping it to [`SlotOwner::Producer`] once the descriptor is read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotOwner {
    /// The producer owns the slot (empty, writable).
    Producer,
    /// The consumer owns the slot (holds a posted descriptor).
    Consumer,
}

/// One descriptor: a payload handle plus metadata. 16 bytes of ring
/// traffic replace the payload bytes that used to cross the marshaler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Descriptor {
    /// The pool buffer holding the payload (or a driver-defined handle
    /// when the buffer lives outside a [`crate::BufPool`], e.g. a device
    /// receive slot).
    pub buf: BufHandle,
    /// Payload length in bytes.
    pub len: u32,
    /// Driver-defined cookie (device slot index, DMA offset, sequence
    /// number — whatever the consumer needs to complete the descriptor).
    pub cookie: u64,
}

/// Ring failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// Every slot is consumer-owned: the producer must back off until the
    /// consumer drains (backpressure, not silent loss).
    Full,
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Full => write!(f, "ring full: producer must back off"),
        }
    }
}

impl std::error::Error for RingError {}

/// Counters for one ring.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RingStats {
    /// Descriptors posted by the producer.
    pub posts: u64,
    /// Descriptors consumed.
    pub pops: u64,
    /// Posts refused because the ring was full.
    pub backpressure: u64,
    /// Highest occupancy observed (the high-water mark).
    pub occupancy_hwm: u64,
}

/// A single-producer/single-consumer descriptor ring in pinned shared
/// memory, generic over the descriptor type it carries (defaulting to
/// the NIC-shaped [`Descriptor`]).
///
/// The simulation is single-threaded, so the ring models the *protocol*
/// (slot ownership, wrap-around, backpressure) and the *cost* (cache-line
/// traffic instead of per-byte marshaling); it does not need atomics.
#[derive(Debug)]
pub struct ShmRing<D: Copy + Default = Descriptor> {
    name: String,
    slots: Vec<Cell<D>>,
    owner: Vec<Cell<SlotOwner>>,
    /// Next slot the producer writes.
    head: Cell<usize>,
    /// Next slot the consumer reads.
    tail: Cell<usize>,
    occupancy: Cell<usize>,
    stats: Cell<RingStats>,
}

impl<D: Copy + Default> ShmRing<D> {
    /// Creates a ring with `capacity` slots, all producer-owned.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "a ring needs at least one slot");
        ShmRing {
            name: name.into(),
            slots: (0..capacity).map(|_| Cell::new(D::default())).collect(),
            owner: (0..capacity)
                .map(|_| Cell::new(SlotOwner::Producer))
                .collect(),
            head: Cell::new(0),
            tail: Cell::new(0),
            occupancy: Cell::new(0),
            stats: Cell::new(RingStats::default()),
        }
    }

    /// The ring's name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Descriptors currently posted and not yet consumed.
    pub fn len(&self) -> usize {
        self.occupancy.get()
    }

    /// Whether no descriptor is pending.
    pub fn is_empty(&self) -> bool {
        self.occupancy.get() == 0
    }

    /// Whether every slot is consumer-owned.
    pub fn is_full(&self) -> bool {
        self.occupancy.get() == self.capacity()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RingStats {
        self.stats.get()
    }

    fn bump(&self, f: impl FnOnce(&mut RingStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    /// Posts one descriptor: writes the slot body, then releases it to
    /// the consumer by flipping the ownership flag. Charges
    /// [`costs::RING_POST_NS`] to `class`.
    ///
    /// Returns [`RingError::Full`] (and counts a backpressure event)
    /// when no producer-owned slot is available.
    pub fn push(&self, kernel: &Kernel, class: CpuClass, desc: D) -> Result<(), RingError> {
        if self.is_full() {
            self.bump(|s| s.backpressure += 1);
            return Err(RingError::Full);
        }
        let slot = self.head.get();
        debug_assert_eq!(
            self.owner[slot].get(),
            SlotOwner::Producer,
            "{}: producer touched a consumer-owned slot",
            self.name
        );
        self.slots[slot].set(desc);
        self.owner[slot].set(SlotOwner::Consumer);
        self.head.set((slot + 1) % self.capacity());
        let occ = self.occupancy.get() + 1;
        self.occupancy.set(occ);
        kernel.charge(class, costs::RING_POST_NS);
        self.bump(|s| {
            s.posts += 1;
            s.occupancy_hwm = s.occupancy_hwm.max(occ as u64);
        });
        Ok(())
    }

    /// Consumes the oldest posted descriptor and hands its slot back to
    /// the producer. Charges [`costs::RING_CACHELINE_NS`] to `class` (the
    /// consumer pulls the dirtied line across cores).
    pub fn pop(&self, kernel: &Kernel, class: CpuClass) -> Option<D> {
        if self.is_empty() {
            return None;
        }
        let slot = self.tail.get();
        debug_assert_eq!(
            self.owner[slot].get(),
            SlotOwner::Consumer,
            "{}: consumer touched a producer-owned slot",
            self.name
        );
        let desc = self.slots[slot].get();
        self.owner[slot].set(SlotOwner::Producer);
        self.tail.set((slot + 1) % self.capacity());
        self.occupancy.set(self.occupancy.get() - 1);
        kernel.charge(class, costs::RING_CACHELINE_NS);
        self.bump(|s| s.pops += 1);
        desc.into()
    }

    /// Consumes every posted descriptor, oldest first.
    pub fn drain(&self, kernel: &Kernel, class: CpuClass) -> Vec<D> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(d) = self.pop(kernel, class) {
            out.push(d);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(n: u32) -> Descriptor {
        Descriptor {
            buf: BufHandle(n),
            len: 100 + n,
            cookie: n as u64,
        }
    }

    #[test]
    fn fifo_order_preserved_across_wrap() {
        let k = Kernel::new();
        let r = ShmRing::new("t", 4);
        // Fill, drain half, refill: head/tail wrap around the end.
        for i in 0..4 {
            r.push(&k, CpuClass::Kernel, desc(i)).unwrap();
        }
        assert_eq!(r.pop(&k, CpuClass::User).unwrap(), desc(0));
        assert_eq!(r.pop(&k, CpuClass::User).unwrap(), desc(1));
        r.push(&k, CpuClass::Kernel, desc(4)).unwrap();
        r.push(&k, CpuClass::Kernel, desc(5)).unwrap();
        let drained = r.drain(&k, CpuClass::User);
        assert_eq!(drained, vec![desc(2), desc(3), desc(4), desc(5)]);
        assert!(r.is_empty());
    }

    #[test]
    fn full_ring_applies_backpressure() {
        let k = Kernel::new();
        let r = ShmRing::new("t", 2);
        r.push(&k, CpuClass::Kernel, desc(0)).unwrap();
        r.push(&k, CpuClass::Kernel, desc(1)).unwrap();
        assert_eq!(r.push(&k, CpuClass::Kernel, desc(2)), Err(RingError::Full));
        assert_eq!(r.stats().backpressure, 1);
        // Consuming one slot hands it back to the producer.
        r.pop(&k, CpuClass::User).unwrap();
        r.push(&k, CpuClass::Kernel, desc(2)).unwrap();
        assert_eq!(r.stats().occupancy_hwm, 2);
    }

    #[test]
    fn costs_charge_to_the_right_class() {
        let k = Kernel::new();
        let r = ShmRing::new("t", 4);
        let before = k.snapshot();
        r.push(&k, CpuClass::Kernel, desc(0)).unwrap();
        let mid = k.snapshot();
        assert_eq!(
            mid.kernel_busy_ns - before.kernel_busy_ns,
            costs::RING_POST_NS
        );
        r.pop(&k, CpuClass::User).unwrap();
        let after = k.snapshot();
        assert_eq!(
            after.user_busy_ns - mid.user_busy_ns,
            costs::RING_CACHELINE_NS
        );
    }
}
