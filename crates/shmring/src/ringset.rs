//! Multi-queue ring sets: RSS-style per-shard descriptor rings with a
//! completion-steering policy.
//!
//! One [`crate::ShmRing`] per direction is enough for one producer and
//! one consumer. Scaling the user-level data path across CPUs needs N
//! parallel rings feeding one device — per-CPU (or per-flow) TX/RX
//! queues, exactly the receive-side-scaling shape real NICs expose. A
//! [`RingSet`] groups N descriptor rings and their N completion rings
//! behind one object and adds the two policies sharding requires:
//!
//! * **flow steering** ([`RingSet::steer`]) — a deterministic hash maps
//!   a flow key to a shard, so one flow's descriptors stay on one ring
//!   (ordering within the flow is preserved; different flows spread);
//! * **completion steering** ([`RingSet::complete`]) — the IRQ side
//!   hands a finished descriptor back *to the shard that posted it*,
//!   looked up from the cookie recorded at post time. Completions must
//!   come home: a buffer freed on the wrong shard's ring would corrupt
//!   that shard's pool accounting and break descriptor conservation.
//!
//! The set keeps conservation counters: every descriptor noted as
//! posted is either still in flight or has been completed, and
//! completions are always steered to the posting shard. The
//! `tests/shard_sched.rs` interleaving harness asserts these invariants
//! over enumerated schedules.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use decaf_simkernel::{CpuClass, Kernel};

use crate::ring::{Descriptor, RingError, ShmRing};

/// Failure modes specific to multi-queue steering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingSetError {
    /// The descriptor's cookie was never noted as posted (or was already
    /// completed): the completion cannot be steered home.
    UnknownOrigin(u64),
    /// The posting shard's completion ring is full.
    CompletionFull(usize),
    /// The target shard's descriptor ring is full (backpressure).
    RingFull(usize),
}

impl std::fmt::Display for RingSetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingSetError::UnknownOrigin(cookie) => {
                write!(f, "completion for unknown cookie {cookie}")
            }
            RingSetError::CompletionFull(shard) => {
                write!(f, "completion ring of shard {shard} full")
            }
            RingSetError::RingFull(shard) => {
                write!(f, "descriptor ring of shard {shard} full")
            }
        }
    }
}

impl std::error::Error for RingSetError {}

/// Conservation counters for one ring set.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RingSetStats {
    /// Descriptors noted as posted across all shards.
    pub posted: u64,
    /// Descriptors completed (steered home).
    pub completed: u64,
    /// Most descriptors simultaneously in flight (posted, not completed).
    pub in_flight_hwm: u64,
}

/// A deterministic 64-bit mix (SplitMix64 finalizer) used for flow
/// steering: uniform, seedless, and stable across runs.
pub fn flow_hash(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// N parallel descriptor rings plus their completion rings, with flow
/// and completion steering.
///
/// Cookie discipline: a cookie identifies one in-flight descriptor. The
/// same cookie may be reused only after its previous incarnation has
/// been completed (device RX slots naturally satisfy this: a slot is
/// recycled only after its completion comes home).
#[derive(Debug)]
pub struct RingSet {
    rings: Vec<Rc<ShmRing>>,
    completions: Vec<Rc<ShmRing>>,
    /// Posting shard of every in-flight cookie.
    origin: RefCell<HashMap<u64, usize>>,
    stats: Cell<RingSetStats>,
}

impl RingSet {
    /// Builds `shards` descriptor rings of `capacity` slots (named
    /// `{name}-{i}`) and completion rings of `completion_capacity`.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(name: &str, shards: usize, capacity: usize, completion_capacity: usize) -> Rc<Self> {
        assert!(shards > 0, "a ring set needs at least one shard");
        Rc::new(RingSet {
            rings: (0..shards)
                .map(|i| Rc::new(ShmRing::new(format!("{name}-{i}"), capacity)))
                .collect(),
            completions: (0..shards)
                .map(|i| {
                    Rc::new(ShmRing::new(
                        format!("{name}-done-{i}"),
                        completion_capacity,
                    ))
                })
                .collect(),
            origin: RefCell::new(HashMap::new()),
            stats: Cell::new(RingSetStats::default()),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.rings.len()
    }

    /// Shard `i`'s descriptor ring.
    pub fn ring(&self, shard: usize) -> &Rc<ShmRing> {
        &self.rings[shard]
    }

    /// Shard `i`'s completion ring.
    pub fn completions(&self, shard: usize) -> &Rc<ShmRing> {
        &self.completions[shard]
    }

    /// Maps a flow key to its shard. Deterministic: the same flow always
    /// lands on the same ring, so per-flow ordering is preserved.
    pub fn steer(&self, flow: u64) -> usize {
        (flow_hash(flow) % self.rings.len() as u64) as usize
    }

    /// Records that `cookie` was posted on `shard` without touching the
    /// ring — for producers that post through a higher-level path (e.g. a
    /// `DataPathChannel` holding the same ring `Rc`).
    pub fn note_post(&self, shard: usize, cookie: u64) {
        debug_assert!(shard < self.rings.len());
        self.origin.borrow_mut().insert(cookie, shard);
        let in_flight = self.origin.borrow().len() as u64;
        self.bump(|s| {
            s.posted += 1;
            s.in_flight_hwm = s.in_flight_hwm.max(in_flight);
        });
    }

    /// Cancels an origin record whose post failed after being noted
    /// (producer-side unwind: note first so a synchronously-triggered
    /// consumer can steer completions, cancel if the post never
    /// happened). Conservation treats the descriptor as never posted.
    pub fn cancel_post(&self, cookie: u64) {
        if self.origin.borrow_mut().remove(&cookie).is_some() {
            self.bump(|s| s.posted -= 1);
        }
    }

    /// Posts one descriptor directly onto `shard`'s ring and records its
    /// origin.
    pub fn post(
        &self,
        kernel: &Kernel,
        class: CpuClass,
        shard: usize,
        desc: Descriptor,
    ) -> Result<(), RingSetError> {
        match self.rings[shard].push(kernel, class, desc) {
            Ok(()) => {
                self.note_post(shard, desc.cookie);
                kernel.trace_instant(
                    "ring",
                    "post",
                    &[
                        ("shard", shard as u64),
                        ("occupancy", self.rings[shard].len() as u64),
                    ],
                );
                Ok(())
            }
            Err(RingError::Full) => Err(RingSetError::RingFull(shard)),
        }
    }

    /// Steers a finished descriptor home: pushes it onto the *posting*
    /// shard's completion ring and retires the origin record. Returns the
    /// shard the completion was routed to.
    pub fn complete(
        &self,
        kernel: &Kernel,
        class: CpuClass,
        desc: Descriptor,
    ) -> Result<usize, RingSetError> {
        let shard = {
            let origin = self.origin.borrow();
            *origin
                .get(&desc.cookie)
                .ok_or(RingSetError::UnknownOrigin(desc.cookie))?
        };
        match self.completions[shard].push(kernel, class, desc) {
            Ok(()) => {
                self.origin.borrow_mut().remove(&desc.cookie);
                self.bump(|s| s.completed += 1);
                kernel.trace_instant("ring", "complete", &[("shard", shard as u64)]);
                Ok(shard)
            }
            Err(RingError::Full) => Err(RingSetError::CompletionFull(shard)),
        }
    }

    /// Drains `shard`'s completion ring (the producer reclaiming its
    /// handed-back descriptors).
    pub fn reclaim(&self, kernel: &Kernel, class: CpuClass, shard: usize) -> Vec<Descriptor> {
        let done = self.completions[shard].drain(kernel, class);
        if !done.is_empty() {
            kernel.trace_instant(
                "ring",
                "reclaim",
                &[("shard", shard as u64), ("completions", done.len() as u64)],
            );
        }
        done
    }

    /// Descriptors posted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.origin.borrow().len()
    }

    /// The posting shard of an in-flight cookie.
    pub fn origin_of(&self, cookie: u64) -> Option<usize> {
        self.origin.borrow().get(&cookie).copied()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RingSetStats {
        self.stats.get()
    }

    /// The conservation invariant: every descriptor ever noted as posted
    /// is either completed or still in flight — none lost, none
    /// double-completed.
    pub fn conserved(&self) -> bool {
        let s = self.stats.get();
        s.posted == s.completed + self.in_flight() as u64
    }

    fn bump(&self, f: impl FnOnce(&mut RingSetStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::BufHandle;

    fn desc(cookie: u64) -> Descriptor {
        Descriptor {
            buf: BufHandle(cookie as u32),
            len: 64,
            cookie,
        }
    }

    #[test]
    fn flow_steering_is_deterministic_and_spreads() {
        let set = RingSet::new("tx", 4, 8, 16);
        let mut hits = [0u32; 4];
        for flow in 0..256u64 {
            let a = set.steer(flow);
            let b = set.steer(flow);
            assert_eq!(a, b, "same flow, same shard");
            hits[a] += 1;
        }
        for (shard, h) in hits.iter().enumerate() {
            assert!(*h > 32, "shard {shard} starved: {hits:?}");
        }
    }

    #[test]
    fn completions_steer_to_the_posting_shard() {
        let k = Kernel::new();
        let set = RingSet::new("tx", 3, 8, 16);
        for cookie in 0..9u64 {
            let shard = set.steer(cookie);
            set.post(&k, CpuClass::Kernel, shard, desc(cookie)).unwrap();
        }
        // A consumer drains every ring (order immaterial), completing
        // each descriptor; the completion must come home.
        for shard in 0..3 {
            for d in set.ring(shard).drain(&k, CpuClass::User) {
                let home = set.complete(&k, CpuClass::User, d).unwrap();
                assert_eq!(home, shard, "cookie {} steered astray", d.cookie);
            }
        }
        for shard in 0..3 {
            for d in set.reclaim(&k, CpuClass::Kernel, shard) {
                assert_eq!(set.steer(d.cookie), shard);
            }
        }
        assert!(set.conserved());
        assert_eq!(set.in_flight(), 0);
        assert_eq!(set.stats().posted, 9);
        assert_eq!(set.stats().completed, 9);
    }

    #[test]
    fn unknown_origin_rejected() {
        let k = Kernel::new();
        let set = RingSet::new("tx", 2, 4, 8);
        assert_eq!(
            set.complete(&k, CpuClass::Kernel, desc(7)),
            Err(RingSetError::UnknownOrigin(7))
        );
        // Double completion is also a conservation violation.
        set.post(&k, CpuClass::Kernel, 0, desc(1)).unwrap();
        set.ring(0).drain(&k, CpuClass::User);
        set.complete(&k, CpuClass::User, desc(1)).unwrap();
        assert_eq!(
            set.complete(&k, CpuClass::User, desc(1)),
            Err(RingSetError::UnknownOrigin(1))
        );
        assert!(set.conserved());
    }

    #[test]
    fn cookie_reuse_after_completion_is_legal() {
        // RX slots recycle their cookies once the completion came home.
        let k = Kernel::new();
        let set = RingSet::new("rx", 2, 4, 8);
        for round in 0..3 {
            set.post(&k, CpuClass::Kernel, 1, desc(5)).unwrap();
            set.ring(1).drain(&k, CpuClass::User);
            assert_eq!(set.complete(&k, CpuClass::User, desc(5)).unwrap(), 1);
            assert_eq!(
                set.reclaim(&k, CpuClass::Kernel, 1).len(),
                1,
                "round {round}"
            );
        }
        assert_eq!(set.stats().posted, 3);
        assert!(set.conserved());
    }

    #[test]
    fn cancel_post_unwinds_a_noted_origin() {
        let k = Kernel::new();
        let set = RingSet::new("tx", 2, 4, 8);
        // note-first producer pattern: the post never happens.
        set.note_post(1, 9);
        assert_eq!(set.in_flight(), 1);
        set.cancel_post(9);
        assert_eq!(set.in_flight(), 0);
        assert_eq!(set.stats().posted, 0);
        assert!(set.conserved());
        // Cancelling an already-completed (or unknown) cookie is a no-op.
        set.post(&k, CpuClass::Kernel, 0, desc(1)).unwrap();
        set.ring(0).drain(&k, CpuClass::User);
        set.complete(&k, CpuClass::User, desc(1)).unwrap();
        set.cancel_post(1);
        assert_eq!(set.stats().posted, 1);
        assert!(set.conserved());
    }

    #[test]
    fn full_shard_ring_applies_backpressure() {
        let k = Kernel::new();
        let set = RingSet::new("tx", 2, 1, 2);
        set.post(&k, CpuClass::Kernel, 0, desc(0)).unwrap();
        assert_eq!(
            set.post(&k, CpuClass::Kernel, 0, desc(1)),
            Err(RingSetError::RingFull(0))
        );
        // The refused post must not count toward conservation.
        assert_eq!(set.stats().posted, 1);
        assert!(set.conserved());
    }
}
