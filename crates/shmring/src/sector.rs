//! The sector-granular payload pool for variable-length storage
//! transfers.
//!
//! The NIC-shaped [`crate::BufPool`] hands out fixed-size buffers — the
//! right shape for MTU-bounded frames, the wrong one for storage, where
//! a transfer is "some number of sectors" (a 5-byte flash command, a
//! 512-byte sector, a multi-sector scatter write). A [`SectorPool`]
//! carves a [`DmaMemory`] region into sectors and allocates *runs* of
//! them sized to the transfer, so one descriptor handle still names the
//! whole payload and the device can DMA the run(s) directly.
//!
//! Three properties distinguish it from the frame pool:
//!
//! * **Variable-length runs** — [`SectorPool::alloc`] takes the byte
//!   length and reserves `ceil(len / sector_size)` contiguous sectors;
//!   [`SectorPool::free`] reclaims the whole run from the handle alone.
//!   Frees may arrive out of order — storage devices complete out of
//!   order just like NICs.
//! * **Fragmentation-proof scatter-gather** — a fragmented pool can hold
//!   the bytes for a transfer without holding them *contiguously*. Real
//!   HCDs chain transfer descriptors across discontiguous pages rather
//!   than refusing; [`SectorPool::alloc_sg`] does the same, returning an
//!   [`SgHandle`] naming a **chain** of contiguous segments. Under
//!   [`AllocMode::BuddySg`] (the default) an allocation is refused only
//!   when the pool genuinely lacks the sectors — never for shape. The
//!   allocator behind it is a buddy system (order-bucketed free lists,
//!   block split on alloc, buddy merge on free, `O(log n)` per
//!   operation); the first-fit scan survives behind
//!   [`AllocMode::FirstFit`] for the fragmentation ablation.
//! * **Zero-copy adoption** — storage payloads reach the kernel in
//!   page-granular buffers the device can DMA directly (the page cache,
//!   an `O_DIRECT` user buffer). [`SectorPool::adopt_payload`] /
//!   [`SectorPool::adopt_payload_sg`] model that donation: the run is
//!   *mapped*, not memcpy'd, charging [`costs::SECTOR_MAP_NS`] per
//!   sector instead of a per-byte copy, and
//!   [`decaf_simkernel::kernel::KernelStats::bytes_copied`] stays
//!   untouched. [`SectorPool::write_payload`] remains for paths that
//!   genuinely copy (and charges them honestly).
//!
//! Conservation is a checked invariant: every sector ever allocated is
//! either reclaimed or still in use ([`SectorPool::conserved`]), and two
//! live runs never alias — the property tests in `tests/prop.rs` drive
//! both across arbitrary alloc/free interleavings, and check the buddy
//! modes against a first-fit oracle for the completeness property
//! (buddy+SG never refuses a transfer the pool has the bytes for).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use decaf_simkernel::{costs, CpuClass, DmaMemory, Kernel};

use crate::pool::PoolError;

/// Handle to one allocated sector run: the index of its first sector.
/// Like [`crate::BufHandle`], 4 bytes standing in for a whole payload —
/// the run length is the pool's bookkeeping, not the descriptor's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SectorHandle(pub u32);

/// Handle to one scatter-gather chain: an ordered list of contiguous
/// sector runs that together back one transfer. Allocated by
/// [`SectorPool::alloc_sg`]; the segment list is the pool's bookkeeping
/// ([`SectorPool::sg_segments`]), so the handle stays 4 bytes and rides
/// a ring descriptor unchanged. A zero-length transfer is a valid chain
/// with **no** segments — it allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SgHandle(pub u32);

/// One contiguous segment of a scatter-gather chain, in DMA terms: what
/// a transfer descriptor points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SgSegment {
    /// Byte offset of the segment inside the pool's DMA region.
    pub offset: usize,
    /// Segment capacity in bytes (a whole number of sectors).
    pub bytes: usize,
}

/// Which allocator backs the pool — the axis of the fragmentation
/// ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocMode {
    /// The original linear first-fit scan. Contiguous only: a fragmented
    /// pool refuses transfers it has the bytes for (the bug this enum
    /// exists to measure).
    FirstFit,
    /// Buddy allocator, contiguous runs only: `O(log n)` alloc and
    /// buddy-merge on free recover contiguity that first-fit loses, but
    /// a chain is never formed — scattered singles still refuse a
    /// multi-sector transfer.
    Buddy,
    /// Buddy allocator plus scatter-gather chaining (the default):
    /// [`SectorPool::alloc_sg`] falls back to chaining the largest free
    /// blocks when no single block fits, so an allocation fails only on
    /// true exhaustion.
    #[default]
    BuddySg,
}

/// Conservation counters for one sector pool.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SectorPoolStats {
    /// Successful allocations (contiguous runs and SG chains alike; a
    /// chain counts once however many segments it spans).
    pub allocs: u64,
    /// Runs/chains handed back.
    pub frees: u64,
    /// Allocations refused with *too few free sectors in total* — true
    /// out-of-space, which no allocator shape can fix.
    pub exhausted: u64,
    /// Allocations refused while the pool held **enough free sectors**
    /// but no fitting contiguous run — fragmentation refusals, the
    /// spurious-failure class that scatter-gather chaining eliminates.
    pub frag_refusals: u64,
    /// Sectors ever allocated (summed over runs).
    pub sectors_allocated: u64,
    /// Sectors ever reclaimed.
    pub sectors_reclaimed: u64,
    /// Most sectors simultaneously in use.
    pub in_use_hwm: u64,
}

/// Order-bucketed buddy free lists over sector indices.
///
/// `lists[k]` holds the start sectors of free blocks of `2^k` sectors,
/// sorted ascending so every pop is deterministic (lowest address
/// first). Blocks are split on allocation and merged with their buddy
/// (`start ^ (1 << k)`) on free. Non-power-of-two pool sizes are
/// covered by the greedy aligned decomposition in `insert_range`.
#[derive(Debug)]
struct Buddy {
    lists: Vec<Vec<u32>>,
}

impl Buddy {
    fn new(count: usize) -> Self {
        let orders = count.ilog2() as usize + 1;
        let mut b = Buddy {
            lists: vec![Vec::new(); orders],
        };
        b.insert_range(0, count);
        b
    }

    /// Decomposes `[start, start + len)` into maximal aligned
    /// power-of-two blocks and inserts each (merging as it goes).
    fn insert_range(&mut self, mut start: usize, mut len: usize) {
        while len > 0 {
            let align = if start == 0 {
                self.lists.len() - 1
            } else {
                start.trailing_zeros() as usize
            };
            let k = align.min(len.ilog2() as usize).min(self.lists.len() - 1);
            self.insert_block(start, k);
            start += 1 << k;
            len -= 1 << k;
        }
    }

    /// Inserts a free block of order `k`, merging with its buddy
    /// repeatedly while the buddy is also free.
    fn insert_block(&mut self, mut start: usize, mut k: usize) {
        while k + 1 < self.lists.len() {
            let buddy = start ^ (1 << k);
            if !self.remove_block(buddy, k) {
                break;
            }
            start &= !(1 << k);
            k += 1;
        }
        let list = &mut self.lists[k];
        let pos = list.partition_point(|&s| (s as usize) < start);
        list.insert(pos, start as u32);
    }

    /// Removes a specific block from order `k` if it is free there.
    fn remove_block(&mut self, start: usize, k: usize) -> bool {
        match self.lists[k].binary_search(&(start as u32)) {
            Ok(pos) => {
                self.lists[k].remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Allocates `need` contiguous sectors: smallest sufficient order,
    /// lowest address within it, exact-trim of the tail back into the
    /// free lists (so accounting stays sector-exact — no internal
    /// fragmentation is ever held by a run).
    fn alloc_contig(&mut self, need: usize) -> Option<usize> {
        let kmin = need.next_power_of_two().ilog2() as usize;
        for k in kmin..self.lists.len() {
            if !self.lists[k].is_empty() {
                let start = self.lists[k].remove(0) as usize;
                let size = 1usize << k;
                if size > need {
                    self.insert_range(start + need, size - need);
                }
                return Some(start);
            }
        }
        None
    }

    /// Pops the largest free block whole (lowest address among the
    /// largest order) — the scatter-gather fallback when no single
    /// block covers the remainder of a transfer.
    fn grab_largest(&mut self) -> Option<(usize, usize)> {
        for k in (0..self.lists.len()).rev() {
            if !self.lists[k].is_empty() {
                let start = self.lists[k].remove(0) as usize;
                return Some((start, 1usize << k));
            }
        }
        None
    }

    /// Free blocks as sorted `(start, sectors)` pairs — exposed for the
    /// merge-correctness property tests.
    fn blocks(&self) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = self
            .lists
            .iter()
            .enumerate()
            .flat_map(|(k, l)| l.iter().map(move |&s| (s as usize, 1usize << k)))
            .collect();
        out.sort_unstable();
        out
    }
}

/// A pool of `sector_size`-byte sectors carved out of a [`DmaMemory`]
/// region, allocated as variable-length runs — contiguous
/// ([`SectorPool::alloc`]) or chained across fragmentation
/// ([`SectorPool::alloc_sg`]).
///
/// # Example
///
/// ```
/// use decaf_shmring::SectorPool;
/// use decaf_simkernel::Kernel;
///
/// let kernel = Kernel::new();
/// let pool = SectorPool::with_capacity(512, 8);
/// // A 517-byte flash write command spans two sectors.
/// let run = pool.alloc(517).unwrap();
/// assert_eq!(pool.run_sectors(run).unwrap(), 2);
/// // Adoption maps the caller's pages instead of copying them.
/// pool.adopt_payload(&kernel, &vec![0xa5; 517], run).unwrap();
/// assert_eq!(kernel.stats().bytes_copied, 0);
/// assert_eq!(pool.read_payload(run, 517).unwrap(), vec![0xa5; 517]);
/// pool.free(run).unwrap();
///
/// // The scatter-gather shape: a chain of segments backs one transfer,
/// // and a zero-length (status-stage) transfer allocates nothing.
/// let chain = pool.alloc_sg(1024).unwrap();
/// assert_eq!(pool.sg_capacity(chain).unwrap(), 1024);
/// let status = pool.alloc_sg(0).unwrap();
/// assert_eq!(pool.sg_segments(status).unwrap().len(), 0);
/// pool.free_sg(chain).unwrap();
/// pool.free_sg(status).unwrap();
/// assert!(pool.conserved());
/// ```
#[derive(Debug)]
pub struct SectorPool {
    dma: DmaMemory,
    base: usize,
    sector_size: usize,
    mode: AllocMode,
    /// Per-sector in-use flags (authoritative occupancy, every mode).
    in_use: RefCell<Vec<bool>>,
    /// Run length (in sectors) keyed by the run's first sector.
    runs: RefCell<HashMap<u32, u32>>,
    /// Buddy free lists — maintained in the buddy modes, absent under
    /// first-fit.
    buddy: RefCell<Option<Buddy>>,
    /// Segment chains keyed by SG handle id.
    chains: RefCell<HashMap<u32, Vec<SectorHandle>>>,
    next_sg: Cell<u32>,
    stats: Cell<SectorPoolStats>,
}

impl SectorPool {
    /// Builds a pool of `count` sectors of `sector_size` bytes starting
    /// at byte `base` of `dma`, under the default allocator
    /// ([`AllocMode::BuddySg`]).
    ///
    /// # Panics
    /// Panics if the region does not fit inside `dma`, or `count` or
    /// `sector_size` is zero.
    pub fn new(dma: DmaMemory, base: usize, sector_size: usize, count: usize) -> Self {
        SectorPool::new_with_mode(dma, base, sector_size, count, AllocMode::default())
    }

    /// Builds a pool with an explicit [`AllocMode`] — the knob the
    /// fragmentation ablation turns.
    ///
    /// # Panics
    /// Panics if the region does not fit inside `dma`, or `count` or
    /// `sector_size` is zero.
    pub fn new_with_mode(
        dma: DmaMemory,
        base: usize,
        sector_size: usize,
        count: usize,
        mode: AllocMode,
    ) -> Self {
        assert!(count > 0, "a pool needs at least one sector");
        assert!(sector_size > 0, "sectors need a size");
        assert!(
            base + sector_size * count <= dma.len(),
            "sector region {base}+{sector_size}x{count} exceeds DMA size {}",
            dma.len()
        );
        let buddy = match mode {
            AllocMode::FirstFit => None,
            AllocMode::Buddy | AllocMode::BuddySg => Some(Buddy::new(count)),
        };
        SectorPool {
            dma,
            base,
            sector_size,
            mode,
            in_use: RefCell::new(vec![false; count]),
            runs: RefCell::new(HashMap::new()),
            buddy: RefCell::new(buddy),
            chains: RefCell::new(HashMap::new()),
            next_sg: Cell::new(0),
            stats: Cell::new(SectorPoolStats::default()),
        }
    }

    /// Builds a standalone pool over its own fresh DMA region (tests and
    /// the storage ablation, where no device model is attached).
    pub fn with_capacity(sector_size: usize, count: usize) -> Self {
        SectorPool::new(DmaMemory::new(sector_size * count), 0, sector_size, count)
    }

    /// [`SectorPool::with_capacity`] with an explicit [`AllocMode`].
    pub fn with_capacity_mode(sector_size: usize, count: usize, mode: AllocMode) -> Self {
        SectorPool::new_with_mode(
            DmaMemory::new(sector_size * count),
            0,
            sector_size,
            count,
            mode,
        )
    }

    /// The allocator mode this pool runs under.
    pub fn mode(&self) -> AllocMode {
        self.mode
    }

    /// Bytes per sector.
    pub fn sector_size(&self) -> usize {
        self.sector_size
    }

    /// Total sectors.
    pub fn capacity_sectors(&self) -> usize {
        self.in_use.borrow().len()
    }

    /// Sectors currently free (not necessarily contiguous).
    pub fn available_sectors(&self) -> usize {
        self.in_use.borrow().iter().filter(|u| !**u).count()
    }

    /// Sectors currently allocated.
    pub fn in_use_sectors(&self) -> usize {
        self.capacity_sectors() - self.available_sectors()
    }

    /// Live contiguous runs (SG chains count once per segment).
    pub fn live_runs(&self) -> usize {
        self.runs.borrow().len()
    }

    /// Live scatter-gather chains.
    pub fn live_chains(&self) -> usize {
        self.chains.borrow().len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SectorPoolStats {
        self.stats.get()
    }

    /// The conservation invariant: every sector ever allocated is either
    /// reclaimed or still in use — none lost, none double-counted. In
    /// the buddy modes the free lists must also agree exactly with the
    /// occupancy flags.
    pub fn conserved(&self) -> bool {
        let s = self.stats.get();
        let counters = s.sectors_allocated == s.sectors_reclaimed + self.in_use_sectors() as u64;
        let buddy_sync = match &*self.buddy.borrow() {
            None => true,
            Some(b) => {
                let free: usize = b.blocks().iter().map(|&(_, n)| n).sum();
                free == self.available_sectors()
            }
        };
        counters && buddy_sync
    }

    /// Sectors a `len`-byte transfer occupies. Zero-length transfers
    /// (USB status-stage shape) occupy **zero** sectors — they are
    /// represented as empty segment chains, not a burned sector.
    pub fn sectors_for(&self, len: usize) -> usize {
        len.div_ceil(self.sector_size)
    }

    /// The pool's current free extents as sorted `(first_sector,
    /// sectors)` pairs — the buddy free lists in the buddy modes, a
    /// linear scan of the occupancy flags under first-fit. Exposed so
    /// the property tests can check buddy-merge correctness against the
    /// canonical decomposition of a fresh pool.
    pub fn free_extents(&self) -> Vec<(usize, usize)> {
        match &*self.buddy.borrow() {
            Some(b) => b.blocks(),
            None => {
                let in_use = self.in_use.borrow();
                let mut out = Vec::new();
                let mut start = None;
                for (i, used) in in_use.iter().enumerate() {
                    match (used, start) {
                        (false, None) => start = Some(i),
                        (true, Some(s)) => {
                            out.push((s, i - s));
                            start = None;
                        }
                        _ => {}
                    }
                }
                if let Some(s) = start {
                    out.push((s, in_use.len() - s));
                }
                out
            }
        }
    }

    fn bump(&self, f: impl FnOnce(&mut SectorPoolStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    /// Classifies a refusal: enough free sectors in total means a
    /// fragmentation refusal, too few means true exhaustion. Both
    /// surface as [`PoolError::Exhausted`] so backpressure handling
    /// upstream stays uniform — the *counters* carry the distinction.
    fn refuse(&self, need: usize) -> PoolError {
        if need <= self.available_sectors() {
            self.bump(|s| s.frag_refusals += 1);
        } else {
            self.bump(|s| s.exhausted += 1);
        }
        PoolError::Exhausted
    }

    /// Marks `[start, start + need)` in use and registers the run. No
    /// stats: callers account allocations at their own granularity.
    fn mark_run(&self, start: usize, need: usize) {
        let mut in_use = self.in_use.borrow_mut();
        for flag in in_use.iter_mut().skip(start).take(need) {
            debug_assert!(!*flag, "allocator handed out a sector already in use");
            *flag = true;
        }
        let prev = self.runs.borrow_mut().insert(start as u32, need as u32);
        debug_assert!(prev.is_none(), "run start reused while live");
    }

    /// Grabs `need` contiguous sectors under the pool's mode and
    /// registers the run. No stats.
    fn grab_contig(&self, need: usize) -> Option<usize> {
        let start = match self.mode {
            AllocMode::FirstFit => {
                let in_use = self.in_use.borrow();
                let mut run_start = 0usize;
                let mut run_len = 0usize;
                let mut found = None;
                for (i, used) in in_use.iter().enumerate() {
                    if *used {
                        run_len = 0;
                        run_start = i + 1;
                    } else {
                        run_len += 1;
                        if run_len == need {
                            found = Some(run_start);
                            break;
                        }
                    }
                }
                found?
            }
            AllocMode::Buddy | AllocMode::BuddySg => self
                .buddy
                .borrow_mut()
                .as_mut()
                .expect("buddy modes keep free lists")
                .alloc_contig(need)?,
        };
        self.mark_run(start, need);
        Some(start)
    }

    /// Unregisters a run and clears its sectors (returning them to the
    /// buddy lists in the buddy modes). No stats.
    fn release_run(&self, h: SectorHandle) -> Result<usize, PoolError> {
        if h.0 as usize >= self.capacity_sectors() {
            return Err(PoolError::BadHandle(h.0));
        }
        let Some(len) = self.runs.borrow_mut().remove(&h.0) else {
            return Err(PoolError::NotAllocated(h.0));
        };
        let mut in_use = self.in_use.borrow_mut();
        for flag in in_use.iter_mut().skip(h.0 as usize).take(len as usize) {
            debug_assert!(*flag, "freed run covers a sector not in use");
            *flag = false;
        }
        drop(in_use);
        if let Some(b) = self.buddy.borrow_mut().as_mut() {
            b.insert_range(h.0 as usize, len as usize);
        }
        Ok(len as usize)
    }

    fn note_alloc(&self, need: usize) {
        let in_use_now = self.in_use_sectors() as u64;
        self.bump(|s| {
            s.allocs += 1;
            s.sectors_allocated += need as u64;
            s.in_use_hwm = s.in_use_hwm.max(in_use_now);
        });
    }

    /// Allocates a contiguous run of sectors for a `len`-byte transfer.
    /// Returns [`PoolError::Exhausted`] when no contiguous run is free
    /// (see [`SectorPoolStats::frag_refusals`] vs
    /// [`SectorPoolStats::exhausted`] for which kind of refusal it
    /// was), [`PoolError::TooLarge`] when `len` exceeds the whole pool.
    /// Zero-length transfers still pin one sector here — only the
    /// scatter-gather path ([`SectorPool::alloc_sg`]) can represent
    /// "no payload" as "no sectors".
    pub fn alloc(&self, len: usize) -> Result<SectorHandle, PoolError> {
        let need = self.sectors_for(len).max(1);
        if need > self.capacity_sectors() {
            return Err(PoolError::TooLarge {
                len,
                buf_size: self.capacity_sectors() * self.sector_size,
            });
        }
        let Some(first) = self.grab_contig(need) else {
            return Err(self.refuse(need));
        };
        self.note_alloc(need);
        Ok(SectorHandle(first as u32))
    }

    /// Returns a run to the pool. Order-independent; double frees and
    /// stale handles are rejected. Returns the number of sectors
    /// reclaimed.
    pub fn free(&self, h: SectorHandle) -> Result<usize, PoolError> {
        let len = self.release_run(h)?;
        self.bump(|s| {
            s.frees += 1;
            s.sectors_reclaimed += len as u64;
        });
        Ok(len)
    }

    /// Allocates a scatter-gather chain for a `len`-byte transfer.
    ///
    /// * `len == 0` → an empty chain holding **no** sectors (the USB
    ///   status-stage shape) — nothing is allocated, nothing leaks.
    /// * [`AllocMode::FirstFit`] / [`AllocMode::Buddy`] → a chain of
    ///   exactly one contiguous run (so the ablation's non-SG modes ride
    ///   the same descriptor plumbing).
    /// * [`AllocMode::BuddySg`] → one contiguous run when a free block
    ///   covers it, else a chain of the largest free blocks — which
    ///   makes allocation **complete**: it succeeds whenever the pool
    ///   has `sectors_for(len)` sectors free, fragmented or not.
    ///
    /// Returns [`PoolError::TooLarge`] when `len` exceeds the whole
    /// pool, [`PoolError::Exhausted`] otherwise on refusal (classified
    /// into [`SectorPoolStats::frag_refusals`] vs
    /// [`SectorPoolStats::exhausted`]).
    pub fn alloc_sg(&self, len: usize) -> Result<SgHandle, PoolError> {
        let need = self.sectors_for(len);
        if need > self.capacity_sectors() {
            return Err(PoolError::TooLarge {
                len,
                buf_size: self.capacity_sectors() * self.sector_size,
            });
        }
        let mut segs: Vec<SectorHandle> = Vec::new();
        let mut remaining = need;
        while remaining > 0 {
            if let Some(start) = self.grab_contig(remaining) {
                segs.push(SectorHandle(start as u32));
                break;
            }
            let grabbed = match self.mode {
                AllocMode::BuddySg => self
                    .buddy
                    .borrow_mut()
                    .as_mut()
                    .expect("buddy modes keep free lists")
                    .grab_largest(),
                _ => None,
            };
            let Some((start, size)) = grabbed else {
                // Roll the partial chain back — a refused allocation
                // must leave the pool exactly as it found it.
                for s in segs.drain(..) {
                    self.release_run(s).expect("rollback frees what it grabbed");
                }
                return Err(self.refuse(need));
            };
            debug_assert!(size < remaining, "a covering block would have been taken");
            self.mark_run(start, size);
            segs.push(SectorHandle(start as u32));
            remaining -= size;
        }
        let id = self.next_sg.get();
        self.next_sg.set(id.wrapping_add(1));
        self.chains.borrow_mut().insert(id, segs);
        self.note_alloc(need);
        Ok(SgHandle(id))
    }

    /// Returns a whole chain to the pool. Order-independent; double
    /// frees and stale handles are rejected. Returns the number of
    /// sectors reclaimed (zero for an empty chain).
    pub fn free_sg(&self, h: SgHandle) -> Result<usize, PoolError> {
        let Some(segs) = self.chains.borrow_mut().remove(&h.0) else {
            return Err(PoolError::NotAllocated(h.0));
        };
        let mut total = 0usize;
        for s in segs {
            total += self
                .release_run(s)
                .expect("chain segments are live until the chain is freed");
        }
        self.bump(|s| {
            s.frees += 1;
            s.sectors_reclaimed += total as u64;
        });
        Ok(total)
    }

    fn chain(&self, h: SgHandle) -> Result<Vec<SectorHandle>, PoolError> {
        self.chains
            .borrow()
            .get(&h.0)
            .cloned()
            .ok_or(PoolError::NotAllocated(h.0))
    }

    /// The chain's segments in transfer order, as DMA extents — what
    /// the HCD programs one transfer descriptor per entry from.
    pub fn sg_segments(&self, h: SgHandle) -> Result<Vec<SgSegment>, PoolError> {
        self.chain(h)?
            .into_iter()
            .map(|s| {
                self.check(s)
                    .map(|(offset, bytes)| SgSegment { offset, bytes })
            })
            .collect()
    }

    /// Total byte capacity of a chain (zero for an empty chain).
    pub fn sg_capacity(&self, h: SgHandle) -> Result<usize, PoolError> {
        Ok(self.sg_segments(h)?.iter().map(|s| s.bytes).sum())
    }

    fn check(&self, h: SectorHandle) -> Result<(usize, usize), PoolError> {
        if h.0 as usize >= self.capacity_sectors() {
            return Err(PoolError::BadHandle(h.0));
        }
        match self.runs.borrow().get(&h.0) {
            None => Err(PoolError::NotAllocated(h.0)),
            Some(&len) => Ok((
                self.base + h.0 as usize * self.sector_size,
                len as usize * self.sector_size,
            )),
        }
    }

    /// Sectors in a live run.
    pub fn run_sectors(&self, h: SectorHandle) -> Result<usize, PoolError> {
        self.check(h).map(|(_, bytes)| bytes / self.sector_size)
    }

    /// DMA offset of a run — what a transfer descriptor points at.
    pub fn offset_of(&self, h: SectorHandle) -> Result<usize, PoolError> {
        self.check(h).map(|(off, _)| off)
    }

    /// Copies `data` into the run, charging the copy through
    /// [`Kernel::charge_copy`] — for callers whose payload really does
    /// move through the CPU (the by-value baselines).
    pub fn write_payload(
        &self,
        kernel: &Kernel,
        class: CpuClass,
        h: SectorHandle,
        data: &[u8],
    ) -> Result<(), PoolError> {
        let (off, run_bytes) = self.check(h)?;
        if data.len() > run_bytes {
            return Err(PoolError::TooLarge {
                len: data.len(),
                buf_size: run_bytes,
            });
        }
        self.dma.write_bytes(off, data);
        kernel.charge_copy(class, data.len() as u64);
        Ok(())
    }

    /// Donates `data`'s pages to the run *without a CPU copy*: the
    /// storage stack's zero-copy submission path (page cache or
    /// `O_DIRECT` pages are DMA-able where they sit; the "write" below
    /// only keeps the simulated [`DmaMemory`] coherent). Charges
    /// [`costs::SECTOR_MAP_NS`] per sector — the page-table/IOMMU work of
    /// mapping the run — and *not* [`Kernel::charge_copy`].
    pub fn adopt_payload(
        &self,
        kernel: &Kernel,
        data: &[u8],
        h: SectorHandle,
    ) -> Result<(), PoolError> {
        let (off, run_bytes) = self.check(h)?;
        if data.len() > run_bytes {
            return Err(PoolError::TooLarge {
                len: data.len(),
                buf_size: run_bytes,
            });
        }
        self.dma.write_bytes(off, data);
        kernel.charge_kernel(self.sectors_for(data.len()) as u64 * costs::SECTOR_MAP_NS);
        Ok(())
    }

    /// [`SectorPool::adopt_payload`] for a scatter-gather chain: the
    /// payload's pages are mapped segment by segment, still copy-free —
    /// the same [`costs::SECTOR_MAP_NS`]-per-sector mapping charge,
    /// never [`Kernel::charge_copy`].
    pub fn adopt_payload_sg(
        &self,
        kernel: &Kernel,
        data: &[u8],
        h: SgHandle,
    ) -> Result<(), PoolError> {
        let segs = self.sg_segments(h)?;
        let cap: usize = segs.iter().map(|s| s.bytes).sum();
        if data.len() > cap {
            return Err(PoolError::TooLarge {
                len: data.len(),
                buf_size: cap,
            });
        }
        let mut written = 0usize;
        for seg in &segs {
            if written >= data.len() {
                break;
            }
            let n = seg.bytes.min(data.len() - written);
            self.dma
                .write_bytes(seg.offset, &data[written..written + n]);
            written += n;
        }
        kernel.charge_kernel(self.sectors_for(data.len()) as u64 * costs::SECTOR_MAP_NS);
        Ok(())
    }

    /// Reads `len` payload bytes back out of a run.
    ///
    /// No copy cost is charged: the consumer reads the payload *in
    /// place* — the `Vec` is a simulation artifact, not a modeled copy.
    /// This is the IN-direction ownership handback: the completion hands
    /// the *run* back, never a copied payload.
    pub fn read_payload(&self, h: SectorHandle, len: usize) -> Result<Vec<u8>, PoolError> {
        let (off, run_bytes) = self.check(h)?;
        if len > run_bytes {
            return Err(PoolError::TooLarge {
                len,
                buf_size: run_bytes,
            });
        }
        Ok(self.dma.read_bytes(off, len))
    }

    /// Gathers `len` payload bytes back out of a chain, segment by
    /// segment. Like [`SectorPool::read_payload`], in place and
    /// copy-free.
    pub fn read_payload_sg(&self, h: SgHandle, len: usize) -> Result<Vec<u8>, PoolError> {
        let segs = self.sg_segments(h)?;
        let cap: usize = segs.iter().map(|s| s.bytes).sum();
        if len > cap {
            return Err(PoolError::TooLarge { len, buf_size: cap });
        }
        let mut out = Vec::with_capacity(len);
        for seg in &segs {
            if out.len() >= len {
                break;
            }
            let n = seg.bytes.min(len - out.len());
            out.extend_from_slice(&self.dma.read_bytes(seg.offset, n));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_length_runs_allocate_and_reclaim() {
        let p = SectorPool::with_capacity(512, 8);
        let a = p.alloc(5).unwrap(); // 1 sector
        let b = p.alloc(517).unwrap(); // 2 sectors
        let c = p.alloc(1536).unwrap(); // 3 sectors
        assert_eq!(p.run_sectors(a).unwrap(), 1);
        assert_eq!(p.run_sectors(b).unwrap(), 2);
        assert_eq!(p.run_sectors(c).unwrap(), 3);
        assert_eq!(p.in_use_sectors(), 6);
        // Out-of-order reclaim.
        assert_eq!(p.free(b).unwrap(), 2);
        assert_eq!(p.free(a).unwrap(), 1);
        assert_eq!(p.free(c).unwrap(), 3);
        assert_eq!(p.available_sectors(), 8);
        assert!(p.conserved());
        assert_eq!(p.stats().sectors_allocated, 6);
        assert_eq!(p.stats().sectors_reclaimed, 6);
    }

    #[test]
    fn first_fit_runs_never_alias_and_fragmentation_refuses() {
        // The original first-fit allocator, kept for the ablation: two
        // scattered free singles cannot satisfy a 2-sector transfer,
        // and the refusal is classified as *fragmentation*, not
        // exhaustion — the pool has the bytes.
        let p = SectorPool::with_capacity_mode(64, 4, AllocMode::FirstFit);
        let a = p.alloc(64).unwrap();
        let b = p.alloc(128).unwrap();
        let c = p.alloc(64).unwrap();
        let offs = [
            (p.offset_of(a).unwrap(), 64),
            (p.offset_of(b).unwrap(), 128),
            (p.offset_of(c).unwrap(), 64),
        ];
        for (i, &(o1, l1)) in offs.iter().enumerate() {
            for &(o2, l2) in offs.iter().skip(i + 1) {
                assert!(o1 + l1 <= o2 || o2 + l2 <= o1, "live runs alias");
            }
        }
        // Free the two singles: 2 sectors free but not contiguous.
        p.free(a).unwrap();
        p.free(c).unwrap();
        assert_eq!(p.available_sectors(), 2);
        assert_eq!(p.alloc(128), Err(PoolError::Exhausted));
        assert_eq!(
            p.stats().frag_refusals,
            1,
            "bytes were there: frag, not OOM"
        );
        assert_eq!(p.stats().exhausted, 0);
        // A single still fits in either hole.
        let d = p.alloc(10).unwrap();
        assert_eq!(p.run_sectors(d).unwrap(), 1);
    }

    #[test]
    fn refusal_counters_split_frag_from_true_exhaustion() {
        // Regression for the conflated counter: a fragmented refusal
        // and a true out-of-space refusal bump *different* counters.
        let p = SectorPool::with_capacity_mode(64, 4, AllocMode::FirstFit);
        let held: Vec<_> = (0..4).map(|_| p.alloc(1).unwrap()).collect();
        // Pool completely full: true exhaustion.
        assert_eq!(p.alloc(64), Err(PoolError::Exhausted));
        assert_eq!(p.stats().exhausted, 1);
        assert_eq!(p.stats().frag_refusals, 0);
        // Free alternating singles: 2 sectors free, none adjacent.
        p.free(held[0]).unwrap();
        p.free(held[2]).unwrap();
        assert_eq!(p.alloc(128), Err(PoolError::Exhausted));
        assert_eq!(p.stats().exhausted, 1, "unchanged");
        assert_eq!(p.stats().frag_refusals, 1, "the pool had the bytes");
        // More free bytes than requested but still no contiguous fit is
        // *also* fragmentation: three scattered frees.
        p.free(held[1]).unwrap();
        assert!(p.conserved());
    }

    #[test]
    fn buddy_merge_restores_contiguity() {
        // Four singles carve the pool to pieces; freeing them all must
        // merge back to one max-order block so a full-pool contiguous
        // alloc succeeds — the recovery first-fit never spoils but
        // buddy must *prove* (merge correctness).
        let p = SectorPool::with_capacity_mode(64, 8, AllocMode::Buddy);
        let held: Vec<_> = (0..8).map(|_| p.alloc(1).unwrap()).collect();
        assert_eq!(p.available_sectors(), 0);
        // Free in a scrambled order: merges must cascade regardless.
        for i in [3, 0, 6, 1, 7, 2, 5, 4] {
            p.free(held[i]).unwrap();
        }
        assert_eq!(
            p.free_extents(),
            vec![(0, 8)],
            "buddies merged to one block"
        );
        let big = p.alloc(8 * 64).unwrap();
        assert_eq!(p.run_sectors(big).unwrap(), 8);
        p.free(big).unwrap();
        assert!(p.conserved());
    }

    #[test]
    fn buddy_contiguous_still_refuses_when_scattered() {
        // Buddy without SG recovers *merge-able* fragmentation but not
        // scattered singles whose buddies are live.
        let p = SectorPool::with_capacity_mode(64, 4, AllocMode::Buddy);
        let held: Vec<_> = (0..4).map(|_| p.alloc(1).unwrap()).collect();
        p.free(held[0]).unwrap();
        p.free(held[2]).unwrap();
        // Sectors 0 and 2 are free but their buddies (1, 3) are live:
        // no merge possible, no 2-sector block exists.
        assert_eq!(p.alloc(128), Err(PoolError::Exhausted));
        assert_eq!(p.stats().frag_refusals, 1);
        assert_eq!(p.stats().exhausted, 0);
    }

    #[test]
    fn buddy_sg_chains_across_fragmentation() {
        // The headline fix: the same scattered-singles pool that
        // refuses a contiguous 2-sector alloc satisfies it as a
        // 2-segment chain, and the payload round-trips across the
        // segment boundary.
        let k = Kernel::new();
        let p = SectorPool::with_capacity(64, 4); // BuddySg default
        let held: Vec<_> = (0..4).map(|_| p.alloc(1).unwrap()).collect();
        p.free(held[0]).unwrap();
        p.free(held[2]).unwrap();
        let chain = p.alloc_sg(128).unwrap();
        let segs = p.sg_segments(chain).unwrap();
        assert_eq!(segs.len(), 2, "two scattered singles chained");
        assert_eq!(p.sg_capacity(chain).unwrap(), 128);
        assert_eq!(
            p.available_sectors(),
            0,
            "chain used exactly the free sectors"
        );
        let payload: Vec<u8> = (0..128u8).collect();
        p.adopt_payload_sg(&k, &payload, chain).unwrap();
        assert_eq!(k.stats().bytes_copied, 0, "SG adoption maps, never copies");
        assert_eq!(p.read_payload_sg(chain, 128).unwrap(), payload);
        assert_eq!(p.free_sg(chain).unwrap(), 2);
        assert_eq!(p.stats().frag_refusals, 0, "never refused");
        assert!(p.conserved());
    }

    #[test]
    fn failed_sg_alloc_rolls_back_cleanly() {
        // A chain that cannot complete must leave the pool untouched:
        // 3 sectors free, 4 requested.
        let p = SectorPool::with_capacity(64, 4);
        let pin = p.alloc(64).unwrap();
        let extents_before = p.free_extents();
        assert_eq!(p.alloc_sg(256), Err(PoolError::Exhausted));
        assert_eq!(p.stats().exhausted, 1, "3 < 4 free: true exhaustion");
        assert_eq!(p.free_extents(), extents_before, "rollback exact");
        assert_eq!(p.available_sectors(), 3);
        p.free(pin).unwrap();
        assert!(p.conserved());
    }

    #[test]
    fn zero_length_chain_allocates_nothing() {
        // Regression for the burned status-stage sector: a zero-length
        // transfer is an empty chain — no sectors pinned, ledger still
        // closed.
        let k = Kernel::new();
        let p = SectorPool::with_capacity(512, 2);
        let zlp = p.alloc_sg(0).unwrap();
        assert_eq!(p.sg_segments(zlp).unwrap().len(), 0);
        assert_eq!(p.sg_capacity(zlp).unwrap(), 0);
        assert_eq!(p.in_use_sectors(), 0, "nothing burned");
        // The whole pool is still allocatable around the live ZLP.
        let full = p.alloc_sg(1024).unwrap();
        p.adopt_payload_sg(&k, &[], zlp).unwrap();
        assert_eq!(p.read_payload_sg(zlp, 0).unwrap(), Vec::<u8>::new());
        assert_eq!(p.free_sg(zlp).unwrap(), 0);
        p.free_sg(full).unwrap();
        let s = p.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 2);
        assert_eq!(s.sectors_allocated, s.sectors_reclaimed);
        assert!(p.conserved());
        assert_eq!(k.stats().bytes_copied, 0);
    }

    #[test]
    fn adopt_is_zero_copy_and_write_is_not() {
        let k = Kernel::new();
        let p = SectorPool::with_capacity(512, 4);
        let a = p.alloc(512).unwrap();
        p.adopt_payload(&k, &[7u8; 512], a).unwrap();
        assert_eq!(k.stats().bytes_copied, 0, "adoption maps, never copies");
        assert_eq!(p.read_payload(a, 512).unwrap(), [7u8; 512]);
        let b = p.alloc(512).unwrap();
        p.write_payload(&k, CpuClass::Kernel, b, &[9u8; 512])
            .unwrap();
        assert_eq!(k.stats().bytes_copied, 512, "the by-value path pays");
    }

    #[test]
    fn double_free_and_stale_handles_rejected() {
        let p = SectorPool::with_capacity(512, 2);
        let a = p.alloc(1024).unwrap();
        p.free(a).unwrap();
        assert!(matches!(p.free(a), Err(PoolError::NotAllocated(_))));
        assert!(matches!(
            p.free(SectorHandle(99)),
            Err(PoolError::BadHandle(_))
        ));
        assert!(matches!(
            p.read_payload(SectorHandle(1), 4),
            Err(PoolError::NotAllocated(_))
        ));
        // A transfer bigger than the whole pool is TooLarge, not
        // Exhausted: no amount of reclaim will ever satisfy it.
        assert!(matches!(p.alloc(4096), Err(PoolError::TooLarge { .. })));
        assert!(matches!(p.alloc_sg(4096), Err(PoolError::TooLarge { .. })));
        // SG double frees and stale chain handles likewise.
        let c = p.alloc_sg(512).unwrap();
        p.free_sg(c).unwrap();
        assert!(matches!(p.free_sg(c), Err(PoolError::NotAllocated(_))));
        assert!(matches!(
            p.sg_segments(SgHandle(1234)),
            Err(PoolError::NotAllocated(_))
        ));
        assert!(p.conserved());
    }

    #[test]
    fn oversize_payload_for_run_rejected() {
        let k = Kernel::new();
        let p = SectorPool::with_capacity(512, 4);
        let a = p.alloc(512).unwrap();
        assert!(matches!(
            p.adopt_payload(&k, &[0; 513], a),
            Err(PoolError::TooLarge { .. })
        ));
        assert!(matches!(
            p.write_payload(&k, CpuClass::Kernel, a, &[0; 513]),
            Err(PoolError::TooLarge { .. })
        ));
        let c = p.alloc_sg(512).unwrap();
        assert!(matches!(
            p.adopt_payload_sg(&k, &[0; 513], c),
            Err(PoolError::TooLarge { .. })
        ));
        assert!(matches!(
            p.read_payload_sg(c, 513),
            Err(PoolError::TooLarge { .. })
        ));
    }

    #[test]
    fn non_power_of_two_pools_cover_every_sector() {
        // 20 sectors decompose to 16 + 4; every sector must still be
        // reachable and conservation must hold through a full drain.
        let p = SectorPool::with_capacity(64, 20);
        let extents: usize = p.free_extents().iter().map(|&(_, n)| n).sum();
        assert_eq!(extents, 20, "decomposition covers the whole pool");
        let chain = p.alloc_sg(20 * 64).unwrap();
        assert_eq!(p.available_sectors(), 0);
        assert_eq!(p.sg_capacity(chain).unwrap(), 20 * 64);
        p.free_sg(chain).unwrap();
        assert_eq!(p.available_sectors(), 20);
        assert!(p.conserved());
    }
}
