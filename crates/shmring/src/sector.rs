//! The sector-granular payload pool for variable-length storage
//! transfers.
//!
//! The NIC-shaped [`crate::BufPool`] hands out fixed-size buffers — the
//! right shape for MTU-bounded frames, the wrong one for storage, where
//! a transfer is "some number of sectors" (a 5-byte flash command, a
//! 512-byte sector, a multi-sector scatter write). A [`SectorPool`]
//! carves a [`DmaMemory`] region into sectors and allocates *contiguous
//! runs* of them sized to the transfer, so one descriptor handle still
//! names the whole payload and the device can DMA the run in one go.
//!
//! Two properties distinguish it from the frame pool:
//!
//! * **Variable-length runs** — [`SectorPool::alloc`] takes the byte
//!   length and reserves `ceil(len / sector_size)` contiguous sectors
//!   (first-fit); [`SectorPool::free`] reclaims the whole run from the
//!   handle alone. Frees may arrive out of order — storage devices
//!   complete out of order just like NICs.
//! * **Zero-copy adoption** — storage payloads reach the kernel in
//!   page-granular buffers the device can DMA directly (the page cache,
//!   an `O_DIRECT` user buffer). [`SectorPool::adopt_payload`] models
//!   that donation: the run is *mapped*, not memcpy'd, charging
//!   [`costs::SECTOR_MAP_NS`] per sector instead of a per-byte copy, and
//!   [`decaf_simkernel::kernel::KernelStats::bytes_copied`] stays
//!   untouched.
//!   [`SectorPool::write_payload`] remains for paths that genuinely copy
//!   (and charges them honestly).
//!
//! Conservation is a checked invariant: every sector ever allocated is
//! either reclaimed or still in use ([`SectorPool::conserved`]), and two
//! live runs never alias — the property tests in `tests/prop.rs` drive
//! both across arbitrary alloc/free interleavings.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use decaf_simkernel::{costs, CpuClass, DmaMemory, Kernel};

use crate::pool::PoolError;

/// Handle to one allocated sector run: the index of its first sector.
/// Like [`crate::BufHandle`], 4 bytes standing in for a whole payload —
/// the run length is the pool's bookkeeping, not the descriptor's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SectorHandle(pub u32);

/// Conservation counters for one sector pool.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SectorPoolStats {
    /// Successful run allocations.
    pub allocs: u64,
    /// Runs handed back.
    pub frees: u64,
    /// Allocations refused for want of a contiguous free run.
    pub exhausted: u64,
    /// Sectors ever allocated (summed over runs).
    pub sectors_allocated: u64,
    /// Sectors ever reclaimed.
    pub sectors_reclaimed: u64,
    /// Most sectors simultaneously in use.
    pub in_use_hwm: u64,
}

/// A pool of `sector_size`-byte sectors carved out of a [`DmaMemory`]
/// region, allocated as variable-length contiguous runs.
///
/// # Example
///
/// ```
/// use decaf_shmring::SectorPool;
/// use decaf_simkernel::Kernel;
///
/// let kernel = Kernel::new();
/// let pool = SectorPool::with_capacity(512, 8);
/// // A 517-byte flash write command spans two sectors.
/// let run = pool.alloc(517).unwrap();
/// assert_eq!(pool.run_sectors(run).unwrap(), 2);
/// // Adoption maps the caller's pages instead of copying them.
/// pool.adopt_payload(&kernel, &vec![0xa5; 517], run).unwrap();
/// assert_eq!(kernel.stats().bytes_copied, 0);
/// assert_eq!(pool.read_payload(run, 517).unwrap(), vec![0xa5; 517]);
/// pool.free(run).unwrap();
/// assert!(pool.conserved());
/// ```
#[derive(Debug)]
pub struct SectorPool {
    dma: DmaMemory,
    base: usize,
    sector_size: usize,
    /// Per-sector in-use flags.
    in_use: RefCell<Vec<bool>>,
    /// Run length (in sectors) keyed by the run's first sector.
    runs: RefCell<HashMap<u32, u32>>,
    stats: Cell<SectorPoolStats>,
}

impl SectorPool {
    /// Builds a pool of `count` sectors of `sector_size` bytes starting
    /// at byte `base` of `dma`.
    ///
    /// # Panics
    /// Panics if the region does not fit inside `dma`, or `count` or
    /// `sector_size` is zero.
    pub fn new(dma: DmaMemory, base: usize, sector_size: usize, count: usize) -> Self {
        assert!(count > 0, "a pool needs at least one sector");
        assert!(sector_size > 0, "sectors need a size");
        assert!(
            base + sector_size * count <= dma.len(),
            "sector region {base}+{sector_size}x{count} exceeds DMA size {}",
            dma.len()
        );
        SectorPool {
            dma,
            base,
            sector_size,
            in_use: RefCell::new(vec![false; count]),
            runs: RefCell::new(HashMap::new()),
            stats: Cell::new(SectorPoolStats::default()),
        }
    }

    /// Builds a standalone pool over its own fresh DMA region (tests and
    /// the storage ablation, where no device model is attached).
    pub fn with_capacity(sector_size: usize, count: usize) -> Self {
        SectorPool::new(DmaMemory::new(sector_size * count), 0, sector_size, count)
    }

    /// Bytes per sector.
    pub fn sector_size(&self) -> usize {
        self.sector_size
    }

    /// Total sectors.
    pub fn capacity_sectors(&self) -> usize {
        self.in_use.borrow().len()
    }

    /// Sectors currently free (not necessarily contiguous).
    pub fn available_sectors(&self) -> usize {
        self.in_use.borrow().iter().filter(|u| !**u).count()
    }

    /// Sectors currently allocated.
    pub fn in_use_sectors(&self) -> usize {
        self.capacity_sectors() - self.available_sectors()
    }

    /// Live runs (allocated, not yet freed).
    pub fn live_runs(&self) -> usize {
        self.runs.borrow().len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SectorPoolStats {
        self.stats.get()
    }

    /// The conservation invariant: every sector ever allocated is either
    /// reclaimed or still in use — none lost, none double-counted.
    pub fn conserved(&self) -> bool {
        let s = self.stats.get();
        s.sectors_allocated == s.sectors_reclaimed + self.in_use_sectors() as u64
    }

    /// Sectors a `len`-byte transfer occupies (at least one).
    pub fn sectors_for(&self, len: usize) -> usize {
        (len.max(1)).div_ceil(self.sector_size)
    }

    fn bump(&self, f: impl FnOnce(&mut SectorPoolStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    /// Allocates a contiguous run of sectors for a `len`-byte transfer
    /// (first-fit). Returns [`PoolError::Exhausted`] when no contiguous
    /// run is free, [`PoolError::TooLarge`] when `len` exceeds the whole
    /// pool.
    pub fn alloc(&self, len: usize) -> Result<SectorHandle, PoolError> {
        let need = self.sectors_for(len);
        if need > self.capacity_sectors() {
            return Err(PoolError::TooLarge {
                len,
                buf_size: self.capacity_sectors() * self.sector_size,
            });
        }
        let mut in_use = self.in_use.borrow_mut();
        let mut run_start = 0usize;
        let mut run_len = 0usize;
        let mut found = None;
        for (i, used) in in_use.iter().enumerate() {
            if *used {
                run_len = 0;
                run_start = i + 1;
            } else {
                run_len += 1;
                if run_len == need {
                    found = Some(run_start);
                    break;
                }
            }
        }
        let Some(first) = found else {
            self.bump(|s| s.exhausted += 1);
            return Err(PoolError::Exhausted);
        };
        for flag in in_use.iter_mut().skip(first).take(need) {
            *flag = true;
        }
        drop(in_use);
        self.runs.borrow_mut().insert(first as u32, need as u32);
        let in_use_now = self.in_use_sectors() as u64;
        self.bump(|s| {
            s.allocs += 1;
            s.sectors_allocated += need as u64;
            s.in_use_hwm = s.in_use_hwm.max(in_use_now);
        });
        Ok(SectorHandle(first as u32))
    }

    /// Returns a run to the pool. Order-independent; double frees and
    /// stale handles are rejected. Returns the number of sectors
    /// reclaimed.
    pub fn free(&self, h: SectorHandle) -> Result<usize, PoolError> {
        if h.0 as usize >= self.capacity_sectors() {
            return Err(PoolError::BadHandle(h.0));
        }
        let Some(len) = self.runs.borrow_mut().remove(&h.0) else {
            return Err(PoolError::NotAllocated(h.0));
        };
        let mut in_use = self.in_use.borrow_mut();
        for flag in in_use.iter_mut().skip(h.0 as usize).take(len as usize) {
            debug_assert!(*flag, "freed run covers a sector not in use");
            *flag = false;
        }
        self.bump(|s| {
            s.frees += 1;
            s.sectors_reclaimed += len as u64;
        });
        Ok(len as usize)
    }

    fn check(&self, h: SectorHandle) -> Result<(usize, usize), PoolError> {
        if h.0 as usize >= self.capacity_sectors() {
            return Err(PoolError::BadHandle(h.0));
        }
        match self.runs.borrow().get(&h.0) {
            None => Err(PoolError::NotAllocated(h.0)),
            Some(&len) => Ok((
                self.base + h.0 as usize * self.sector_size,
                len as usize * self.sector_size,
            )),
        }
    }

    /// Sectors in a live run.
    pub fn run_sectors(&self, h: SectorHandle) -> Result<usize, PoolError> {
        self.check(h).map(|(_, bytes)| bytes / self.sector_size)
    }

    /// DMA offset of a run — what a transfer descriptor points at.
    pub fn offset_of(&self, h: SectorHandle) -> Result<usize, PoolError> {
        self.check(h).map(|(off, _)| off)
    }

    /// Copies `data` into the run, charging the copy through
    /// [`Kernel::charge_copy`] — for callers whose payload really does
    /// move through the CPU (the by-value baselines).
    pub fn write_payload(
        &self,
        kernel: &Kernel,
        class: CpuClass,
        h: SectorHandle,
        data: &[u8],
    ) -> Result<(), PoolError> {
        let (off, run_bytes) = self.check(h)?;
        if data.len() > run_bytes {
            return Err(PoolError::TooLarge {
                len: data.len(),
                buf_size: run_bytes,
            });
        }
        self.dma.write_bytes(off, data);
        kernel.charge_copy(class, data.len() as u64);
        Ok(())
    }

    /// Donates `data`'s pages to the run *without a CPU copy*: the
    /// storage stack's zero-copy submission path (page cache or
    /// `O_DIRECT` pages are DMA-able where they sit; the "write" below
    /// only keeps the simulated [`DmaMemory`] coherent). Charges
    /// [`costs::SECTOR_MAP_NS`] per sector — the page-table/IOMMU work of
    /// mapping the run — and *not* [`Kernel::charge_copy`].
    pub fn adopt_payload(
        &self,
        kernel: &Kernel,
        data: &[u8],
        h: SectorHandle,
    ) -> Result<(), PoolError> {
        let (off, run_bytes) = self.check(h)?;
        if data.len() > run_bytes {
            return Err(PoolError::TooLarge {
                len: data.len(),
                buf_size: run_bytes,
            });
        }
        self.dma.write_bytes(off, data);
        kernel.charge_kernel(self.sectors_for(data.len()) as u64 * costs::SECTOR_MAP_NS);
        Ok(())
    }

    /// Reads `len` payload bytes back out of a run.
    ///
    /// No copy cost is charged: the consumer reads the payload *in
    /// place* — the `Vec` is a simulation artifact, not a modeled copy.
    /// This is the IN-direction ownership handback: the completion hands
    /// the *run* back, never a copied payload.
    pub fn read_payload(&self, h: SectorHandle, len: usize) -> Result<Vec<u8>, PoolError> {
        let (off, run_bytes) = self.check(h)?;
        if len > run_bytes {
            return Err(PoolError::TooLarge {
                len,
                buf_size: run_bytes,
            });
        }
        Ok(self.dma.read_bytes(off, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_length_runs_allocate_and_reclaim() {
        let p = SectorPool::with_capacity(512, 8);
        let a = p.alloc(5).unwrap(); // 1 sector
        let b = p.alloc(517).unwrap(); // 2 sectors
        let c = p.alloc(1536).unwrap(); // 3 sectors
        assert_eq!(p.run_sectors(a).unwrap(), 1);
        assert_eq!(p.run_sectors(b).unwrap(), 2);
        assert_eq!(p.run_sectors(c).unwrap(), 3);
        assert_eq!(p.in_use_sectors(), 6);
        // Out-of-order reclaim.
        assert_eq!(p.free(b).unwrap(), 2);
        assert_eq!(p.free(a).unwrap(), 1);
        assert_eq!(p.free(c).unwrap(), 3);
        assert_eq!(p.available_sectors(), 8);
        assert!(p.conserved());
        assert_eq!(p.stats().sectors_allocated, 6);
        assert_eq!(p.stats().sectors_reclaimed, 6);
    }

    #[test]
    fn runs_never_alias_and_fragmentation_exhausts() {
        let p = SectorPool::with_capacity(64, 4);
        let a = p.alloc(64).unwrap();
        let b = p.alloc(128).unwrap();
        let c = p.alloc(64).unwrap();
        let offs = [
            (p.offset_of(a).unwrap(), 64),
            (p.offset_of(b).unwrap(), 128),
            (p.offset_of(c).unwrap(), 64),
        ];
        for (i, &(o1, l1)) in offs.iter().enumerate() {
            for &(o2, l2) in offs.iter().skip(i + 1) {
                assert!(o1 + l1 <= o2 || o2 + l2 <= o1, "live runs alias");
            }
        }
        // Free the two singles: 2 sectors free but not contiguous.
        p.free(a).unwrap();
        p.free(c).unwrap();
        assert_eq!(p.available_sectors(), 2);
        assert_eq!(p.alloc(128), Err(PoolError::Exhausted));
        assert_eq!(p.stats().exhausted, 1);
        // A single still fits in either hole.
        let d = p.alloc(10).unwrap();
        assert_eq!(p.run_sectors(d).unwrap(), 1);
    }

    #[test]
    fn adopt_is_zero_copy_and_write_is_not() {
        let k = Kernel::new();
        let p = SectorPool::with_capacity(512, 4);
        let a = p.alloc(512).unwrap();
        p.adopt_payload(&k, &[7u8; 512], a).unwrap();
        assert_eq!(k.stats().bytes_copied, 0, "adoption maps, never copies");
        assert_eq!(p.read_payload(a, 512).unwrap(), [7u8; 512]);
        let b = p.alloc(512).unwrap();
        p.write_payload(&k, CpuClass::Kernel, b, &[9u8; 512])
            .unwrap();
        assert_eq!(k.stats().bytes_copied, 512, "the by-value path pays");
    }

    #[test]
    fn double_free_and_stale_handles_rejected() {
        let p = SectorPool::with_capacity(512, 2);
        let a = p.alloc(1024).unwrap();
        p.free(a).unwrap();
        assert!(matches!(p.free(a), Err(PoolError::NotAllocated(_))));
        assert!(matches!(
            p.free(SectorHandle(99)),
            Err(PoolError::BadHandle(_))
        ));
        assert!(matches!(
            p.read_payload(SectorHandle(1), 4),
            Err(PoolError::NotAllocated(_))
        ));
        // A transfer bigger than the whole pool is TooLarge, not
        // Exhausted: no amount of reclaim will ever satisfy it.
        assert!(matches!(p.alloc(4096), Err(PoolError::TooLarge { .. })));
        assert!(p.conserved());
    }

    #[test]
    fn oversize_payload_for_run_rejected() {
        let k = Kernel::new();
        let p = SectorPool::with_capacity(512, 4);
        let a = p.alloc(512).unwrap();
        assert!(matches!(
            p.adopt_payload(&k, &[0; 513], a),
            Err(PoolError::TooLarge { .. })
        ));
        assert!(matches!(
            p.write_payload(&k, CpuClass::Kernel, a, &[0; 513]),
            Err(PoolError::TooLarge { .. })
        ));
    }
}
