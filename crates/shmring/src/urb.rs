//! URB-shaped descriptors: the request/response vocabulary of the
//! storage data path.
//!
//! The NIC rings are unidirectional streams — TX descriptors flow one
//! way, RX descriptors the other, and a completion only has to say
//! "this buffer is yours again". A USB request block (URB) is a
//! *request/response* pair: the submit side says what transfer it wants
//! (direction, endpoint, length, payload run); the giveback side answers
//! with what actually happened (status, transferred length) **and**
//! hands the payload run's ownership back — for IN transfers the
//! response *is* the data, read in place from the
//! [`crate::SectorPool`] run the device DMA'd into, never a copied
//! payload.
//!
//! A [`UrbDescriptor`] rides a pair of [`crate::ShmRing`]s (the ring is
//! generic over its slot type): a **submit ring** carrying requests
//! kernel → driver, and a **giveback ring** carrying completed
//! descriptors driver → kernel. The same 'ownership flag + wrap-around +
//! backpressure' protocol and the same descriptor-post/cache-line costs
//! apply — request/response changes what a descriptor *means*, not what
//! it *costs*.

use crate::sector::SgHandle;

/// Transfer direction of a URB descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum XferDir {
    /// Host-to-device: the payload run is full at submit time.
    #[default]
    Out,
    /// Device-to-host: the run is empty at submit time; the device fills
    /// it and the giveback hands it back with the actual length.
    In,
}

/// One URB descriptor: request fields set by the submitter, response
/// fields (`status`, `actual`) filled in by the completer. A few dozen
/// bytes of ring traffic stand in for the whole transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UrbDescriptor {
    /// The scatter-gather chain holding (OUT) or receiving (IN) the
    /// payload: one or more contiguous sector runs, or none at all for
    /// a zero-length (status-stage) transfer. The segment list is the
    /// [`crate::SectorPool`]'s bookkeeping, so the descriptor stays a
    /// few dozen bytes however scattered the payload is.
    pub buf: SgHandle,
    /// Requested transfer length in bytes.
    pub len: u32,
    /// Bytes actually transferred (valid on the giveback ring; short
    /// reads report the true length, not the padded run).
    pub actual: u32,
    /// Device endpoint.
    pub endpoint: u8,
    /// Transfer direction.
    pub dir: XferDir,
    /// Completion status: 0 on success, a negative errno on failure
    /// (valid on the giveback ring).
    pub status: i32,
    /// Submitter-defined cookie correlating the giveback with its
    /// request (and with the submitter's completion callback).
    pub cookie: u64,
}

impl UrbDescriptor {
    /// A host-to-device request: `buf` holds `len` payload bytes.
    pub fn request_out(buf: SgHandle, len: u32, endpoint: u8, cookie: u64) -> Self {
        UrbDescriptor {
            buf,
            len,
            actual: 0,
            endpoint,
            dir: XferDir::Out,
            status: 0,
            cookie,
        }
    }

    /// A device-to-host request: `buf` is an empty chain of at least
    /// `len` bytes capacity for the device to fill.
    pub fn request_in(buf: SgHandle, len: u32, endpoint: u8, cookie: u64) -> Self {
        UrbDescriptor {
            buf,
            len,
            actual: 0,
            endpoint,
            dir: XferDir::In,
            status: 0,
            cookie,
        }
    }

    /// This request, completed: the consumer fills in the response
    /// fields before pushing the descriptor onto the giveback ring.
    pub fn completed(mut self, status: i32, actual: u32) -> Self {
        self.status = status;
        self.actual = actual;
        self
    }

    /// Whether the transfer succeeded.
    pub fn ok(&self) -> bool {
        self.status == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShmRing;
    use decaf_simkernel::{CpuClass, Kernel};

    #[test]
    fn urb_descriptors_ride_a_generic_ring() {
        let k = Kernel::new();
        let ring: ShmRing<UrbDescriptor> = ShmRing::new("urb-submit", 4);
        let req = UrbDescriptor::request_in(SgHandle(3), 512, 1, 7);
        ring.push(&k, CpuClass::Kernel, req).unwrap();
        let got = ring.pop(&k, CpuClass::User).unwrap();
        assert_eq!(got, req);
        assert_eq!(got.dir, XferDir::In);
        let done = got.completed(0, 100);
        assert!(done.ok());
        assert_eq!(done.actual, 100, "short read reports the true length");
        assert_eq!(done.cookie, 7);
    }

    #[test]
    fn failed_completion_carries_errno() {
        let d = UrbDescriptor::request_out(SgHandle(0), 5, 2, 1).completed(-5, 0);
        assert!(!d.ok());
        assert_eq!(d.status, -5);
    }
}
