//! Sharded multi-LUN storage queues: per-shard URB submit/giveback ring
//! pairs over one shared [`SectorPool`].
//!
//! [`crate::RingSet`] scaled the NIC data path to N parallel queues; a
//! [`UrbRingSet`] is its request/response sibling for storage. The shape
//! differs in the same two ways [`crate::UrbDescriptor`] differs from a
//! frame descriptor:
//!
//! * each shard owns a **submit/giveback ring pair** (requests one way,
//!   completed descriptors the other), not a TX/completion pair — the
//!   giveback carries `status` and the *actual* transferred length, and
//!   for IN transfers the payload run's ownership;
//! * every shard allocates out of **one shared [`SectorPool`]** (the
//!   pool is carved from the device's DMA region, and the device is
//!   singular), so pool conservation is a cross-shard invariant while
//!   descriptor conservation is tracked **per shard**.
//!
//! Steering is per **LUN** (logical unit / flash stream), not per flow:
//! a storage transaction is a *sequence* of URBs (stage command, then
//! data transfer) whose FIFO order is load-bearing, so every URB of one
//! LUN must ride one shard's rings. [`UrbRingSet::steer`] hashes the LUN
//! deterministically; [`UrbRingSet::complete`] steers each finished
//! descriptor back to the shard that submitted it, looked up from the
//! cookie recorded at submit time — a giveback landing on the wrong
//! shard's ring would corrupt that shard's in-flight accounting and
//! break per-shard conservation.
//!
//! The `tests/storage_sched.rs` harness enumerates hundreds of
//! submit/giveback/reclaim interleavings and asserts the invariants on
//! every schedule: sector-run alias freedom, pool conservation, and
//! posting-shard completion affinity.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use decaf_simkernel::{CpuClass, Kernel};

use crate::ring::ShmRing;
use crate::ringset::{flow_hash, RingSetError};
use crate::sector::SectorPool;
use crate::urb::UrbDescriptor;

/// Oracle-sensitivity seam for the storage fault-exploration harness
/// (`tests/storage_sched.rs`): a one-shot, thread-local switch that
/// plants a *deliberate* completion-steering bug so the harness can
/// prove its differential oracle rejects one. Debug-build only
/// (`debug_assertions`) — `#[cfg(test)]` would not reach an
/// integration-test dependency build of this crate, and the release
/// build the ablations measure must not carry the seam.
#[cfg(debug_assertions)]
pub mod mutation {
    use std::cell::Cell;

    thread_local! {
        static DOUBLE_COMPLETE: Cell<bool> = const { Cell::new(false) };
    }

    /// Arms the planted bug: the next [`super::UrbRingSet::complete`]
    /// on this thread pushes the giveback descriptor onto the home ring
    /// *twice* — the submitter reclaims the same URB two times, which
    /// the exactly-once-completion / pool-conservation oracle must
    /// reject.
    pub fn arm_double_complete() {
        DOUBLE_COMPLETE.with(|c| c.set(true));
    }

    /// Disarms without consuming (cleanup after a caught failure).
    pub fn disarm() {
        DOUBLE_COMPLETE.with(|c| c.set(false));
    }

    pub(crate) fn take_double_complete() -> bool {
        DOUBLE_COMPLETE.with(|c| c.replace(false))
    }
}

/// Per-shard conservation counters of one [`UrbRingSet`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UrbShardStats {
    /// URB descriptors noted as submitted on this shard.
    pub submitted: u64,
    /// Descriptors completed (steered home to this shard).
    pub completed: u64,
    /// Most descriptors simultaneously in flight on this shard.
    pub in_flight_hwm: u64,
}

/// One noted submission: where it went, and the shard's high-water mark
/// before the note (restored on cancel).
#[derive(Debug, Clone, Copy)]
struct NotedSubmit {
    shard: usize,
    hwm_before: u64,
}

/// N parallel URB submit/giveback ring pairs over one shared sector
/// pool, with LUN steering and completion steering.
///
/// Cookie discipline matches [`crate::RingSet`]: a cookie identifies one
/// in-flight URB and may be reused only after its previous incarnation
/// was completed. The uhci sharded build draws cookies from one
/// monotonic sequence, so they are unique across shards by construction.
#[derive(Debug)]
pub struct UrbRingSet {
    submits: Vec<Rc<ShmRing<UrbDescriptor>>>,
    givebacks: Vec<Rc<ShmRing<UrbDescriptor>>>,
    pool: Rc<SectorPool>,
    /// Submitting shard of every in-flight cookie, plus the shard's
    /// in-flight high-water mark *before* the note — what
    /// [`UrbRingSet::cancel_submit`] restores when the post the note
    /// announced never happened.
    origin: RefCell<HashMap<u64, NotedSubmit>>,
    shard_stats: RefCell<Vec<UrbShardStats>>,
    /// In-flight count per shard (denormalized from `origin` so the
    /// per-shard conservation check is O(1)).
    in_flight: RefCell<Vec<u64>>,
}

impl UrbRingSet {
    /// Builds `shards` submit rings of `capacity` slots (named
    /// `{name}-{i}`) and giveback rings of `giveback_capacity` (named
    /// `{name}-done-{i}`), all allocating out of `pool`.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(
        name: &str,
        shards: usize,
        capacity: usize,
        giveback_capacity: usize,
        pool: Rc<SectorPool>,
    ) -> Rc<Self> {
        assert!(shards > 0, "a URB ring set needs at least one shard");
        Rc::new(UrbRingSet {
            submits: (0..shards)
                .map(|i| Rc::new(ShmRing::new(format!("{name}-{i}"), capacity)))
                .collect(),
            givebacks: (0..shards)
                .map(|i| Rc::new(ShmRing::new(format!("{name}-done-{i}"), giveback_capacity)))
                .collect(),
            pool,
            origin: RefCell::new(HashMap::new()),
            shard_stats: RefCell::new(vec![UrbShardStats::default(); shards]),
            in_flight: RefCell::new(vec![0; shards]),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.submits.len()
    }

    /// The shared sector pool all shards allocate from.
    pub fn pool(&self) -> &Rc<SectorPool> {
        &self.pool
    }

    /// Shard `i`'s submit ring (requests, submitter → completer).
    pub fn submit_ring(&self, shard: usize) -> &Rc<ShmRing<UrbDescriptor>> {
        &self.submits[shard]
    }

    /// Shard `i`'s giveback ring (completions, completer → submitter).
    pub fn giveback_ring(&self, shard: usize) -> &Rc<ShmRing<UrbDescriptor>> {
        &self.givebacks[shard]
    }

    /// Maps a LUN to its shard. Deterministic, so one LUN's command and
    /// data URBs always ride the same rings (FIFO order within the LUN
    /// is preserved; distinct LUNs spread).
    pub fn steer(&self, lun: u64) -> usize {
        (flow_hash(lun) % self.submits.len() as u64) as usize
    }

    /// Records that `cookie` was submitted on `shard` without touching
    /// the ring — for submitters that post through a higher-level path
    /// (e.g. a `UrbDataPath` holding the same ring `Rc`). Note first,
    /// [`UrbRingSet::cancel_submit`] if the post never happens: a
    /// synchronously-triggered completer must be able to steer the
    /// giveback home.
    pub fn note_submit(&self, shard: usize, cookie: u64) {
        debug_assert!(shard < self.submits.len());
        let mut inf = self.in_flight.borrow_mut();
        inf[shard] += 1;
        let now = inf[shard];
        drop(inf);
        let mut stats = self.shard_stats.borrow_mut();
        stats[shard].submitted += 1;
        self.origin.borrow_mut().insert(
            cookie,
            NotedSubmit {
                shard,
                hwm_before: stats[shard].in_flight_hwm,
            },
        );
        stats[shard].in_flight_hwm = stats[shard].in_flight_hwm.max(now);
    }

    /// Cancels an origin record whose post failed after being noted.
    /// Conservation treats the URB as never submitted, and the
    /// high-water mark is restored: a refused URB was never in flight,
    /// so a backpressured burst must not report a peak the ring could
    /// not even hold. The cancel must immediately follow its failed
    /// note (with at most completions in between — the forced-doorbell
    /// drain only ever *lowers* in-flight), which is the only way the
    /// note/cancel pair is used.
    pub fn cancel_submit(&self, cookie: u64) {
        if let Some(noted) = self.origin.borrow_mut().remove(&cookie) {
            let mut inf = self.in_flight.borrow_mut();
            inf[noted.shard] -= 1;
            let now = inf[noted.shard];
            drop(inf);
            let mut stats = self.shard_stats.borrow_mut();
            stats[noted.shard].submitted -= 1;
            stats[noted.shard].in_flight_hwm = stats[noted.shard]
                .in_flight_hwm
                .min(noted.hwm_before.max(now));
        }
    }

    /// Steers a completed descriptor home: pushes it onto the
    /// *submitting* shard's giveback ring and retires the origin record.
    /// Returns the shard the completion was routed to.
    pub fn complete(
        &self,
        kernel: &Kernel,
        class: CpuClass,
        desc: UrbDescriptor,
    ) -> Result<usize, RingSetError> {
        let shard = {
            let origin = self.origin.borrow();
            origin
                .get(&desc.cookie)
                .ok_or(RingSetError::UnknownOrigin(desc.cookie))?
                .shard
        };
        match self.givebacks[shard].push(kernel, class, desc) {
            Ok(()) => {
                #[cfg(debug_assertions)]
                if mutation::take_double_complete() {
                    // Planted bug (oracle-sensitivity harness): the same
                    // giveback lands on the home ring twice.
                    let _ = self.givebacks[shard].push(kernel, class, desc);
                }
                self.origin.borrow_mut().remove(&desc.cookie);
                self.in_flight.borrow_mut()[shard] -= 1;
                self.shard_stats.borrow_mut()[shard].completed += 1;
                kernel.trace_instant("ring", "complete", &[("shard", shard as u64)]);
                Ok(shard)
            }
            Err(_) => Err(RingSetError::CompletionFull(shard)),
        }
    }

    /// Drains `shard`'s giveback ring (the submitter reclaiming its
    /// completed descriptors, oldest first).
    pub fn reclaim(&self, kernel: &Kernel, class: CpuClass, shard: usize) -> Vec<UrbDescriptor> {
        let done = self.givebacks[shard].drain(kernel, class);
        if !done.is_empty() {
            kernel.trace_instant(
                "ring",
                "reclaim",
                &[("shard", shard as u64), ("completions", done.len() as u64)],
            );
        }
        done
    }

    /// URBs submitted and not yet completed, across all shards.
    pub fn in_flight(&self) -> usize {
        self.origin.borrow().len()
    }

    /// URBs in flight on one shard.
    pub fn shard_in_flight(&self, shard: usize) -> u64 {
        self.in_flight.borrow()[shard]
    }

    /// The submitting shard of an in-flight cookie.
    pub fn origin_of(&self, cookie: u64) -> Option<usize> {
        self.origin.borrow().get(&cookie).map(|n| n.shard)
    }

    /// One shard's conservation counters.
    pub fn shard_stats(&self, shard: usize) -> UrbShardStats {
        self.shard_stats.borrow()[shard]
    }

    /// Merged counters: sums across shards, max for high-water marks.
    pub fn stats(&self) -> UrbShardStats {
        let stats = self.shard_stats.borrow();
        let mut total = UrbShardStats::default();
        for s in stats.iter() {
            total.submitted += s.submitted;
            total.completed += s.completed;
            total.in_flight_hwm = total.in_flight_hwm.max(s.in_flight_hwm);
        }
        total
    }

    /// Per-shard conservation: every URB ever submitted on `shard` is
    /// either completed (home) or still in flight there.
    pub fn shard_conserved(&self, shard: usize) -> bool {
        let s = self.shard_stats.borrow()[shard];
        s.submitted == s.completed + self.in_flight.borrow()[shard]
    }

    /// The full conservation invariant: every shard conserves, and the
    /// origin map agrees with the denormalized per-shard counts.
    pub fn conserved(&self) -> bool {
        let per_shard_sum: u64 = self.in_flight.borrow().iter().sum();
        per_shard_sum == self.origin.borrow().len() as u64
            && (0..self.shards()).all(|i| self.shard_conserved(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sector::SgHandle;

    fn set(shards: usize) -> Rc<UrbRingSet> {
        UrbRingSet::new(
            "urb",
            shards,
            8,
            16,
            Rc::new(SectorPool::with_capacity(512, 32)),
        )
    }

    fn submit(k: &Kernel, s: &UrbRingSet, shard: usize, cookie: u64) {
        let run = s.pool().alloc_sg(512).unwrap();
        s.submit_ring(shard)
            .push(
                k,
                CpuClass::Kernel,
                UrbDescriptor::request_out(run, 512, 2, cookie),
            )
            .unwrap();
        s.note_submit(shard, cookie);
    }

    #[test]
    fn lun_steering_is_deterministic_and_spreads() {
        let s = set(4);
        let mut hits = [0u32; 4];
        for lun in 0..64u64 {
            assert_eq!(s.steer(lun), s.steer(lun), "same LUN, same shard");
            hits[s.steer(lun)] += 1;
        }
        assert!(hits.iter().all(|&h| h > 0), "a shard starved: {hits:?}");
    }

    #[test]
    fn completions_steer_to_the_submitting_shard() {
        let k = Kernel::new();
        let s = set(3);
        for cookie in 0..9u64 {
            submit(&k, &s, s.steer(cookie), cookie);
        }
        // One completer drains every shard's submit ring in arbitrary
        // order; the giveback must come home.
        for shard in [2, 0, 1] {
            for d in s.submit_ring(shard).drain(&k, CpuClass::User) {
                let home = s
                    .complete(&k, CpuClass::User, d.completed(0, d.len))
                    .unwrap();
                assert_eq!(home, shard, "cookie {} steered astray", d.cookie);
            }
        }
        for shard in 0..3 {
            for d in s.reclaim(&k, CpuClass::Kernel, shard) {
                assert_eq!(s.steer(d.cookie), shard);
                s.pool().free_sg(d.buf).unwrap();
            }
            assert!(s.shard_conserved(shard), "shard {shard}");
        }
        assert!(s.conserved());
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.stats().submitted, 9);
        assert_eq!(s.stats().completed, 9);
        assert!(s.pool().conserved());
        assert_eq!(s.pool().in_use_sectors(), 0);
    }

    #[test]
    fn unknown_and_double_completions_rejected() {
        let k = Kernel::new();
        let s = set(2);
        let d = UrbDescriptor::request_in(SgHandle(0), 512, 1, 7);
        assert_eq!(
            s.complete(&k, CpuClass::User, d),
            Err(RingSetError::UnknownOrigin(7))
        );
        submit(&k, &s, 1, 7);
        s.submit_ring(1).drain(&k, CpuClass::User);
        assert_eq!(s.complete(&k, CpuClass::User, d).unwrap(), 1);
        assert_eq!(
            s.complete(&k, CpuClass::User, d),
            Err(RingSetError::UnknownOrigin(7))
        );
        assert!(s.conserved());
    }

    #[test]
    fn cancel_submit_unwinds_a_noted_origin() {
        let k = Kernel::new();
        let s = set(2);
        s.note_submit(1, 3);
        assert_eq!(s.shard_in_flight(1), 1);
        s.cancel_submit(3);
        assert_eq!(s.shard_in_flight(1), 0);
        assert_eq!(s.shard_stats(1).submitted, 0);
        assert!(s.conserved());
        // Cancelling an unknown cookie is a no-op.
        s.cancel_submit(99);
        assert!(s.conserved());
        let _ = k;
    }

    #[test]
    fn cancelled_submit_does_not_inflate_the_high_water_mark() {
        // A note-then-cancel (the staged-backpressure unwind) must not
        // leave the HWM reporting a peak that never held a real URB —
        // and must not erase a peak that legitimately happened earlier.
        let k = Kernel::new();
        let s = set(2);
        submit(&k, &s, 0, 0);
        submit(&k, &s, 0, 1);
        assert_eq!(s.shard_stats(0).in_flight_hwm, 2);
        // Refused submit: noted, then cancelled.
        s.note_submit(0, 2);
        s.cancel_submit(2);
        assert_eq!(s.shard_stats(0).in_flight_hwm, 2, "phantom peak recorded");
        // Drain to zero, then another refused submit: the old peak of 2
        // must survive the restore.
        for d in s.submit_ring(0).drain(&k, CpuClass::User) {
            s.complete(&k, CpuClass::User, d).unwrap();
        }
        assert_eq!(s.shard_in_flight(0), 0);
        s.note_submit(0, 3);
        s.cancel_submit(3);
        assert_eq!(s.shard_stats(0).in_flight_hwm, 2, "legitimate peak erased");
        assert!(s.conserved());
    }

    #[test]
    fn per_shard_counters_track_their_own_queues() {
        let k = Kernel::new();
        let s = set(2);
        submit(&k, &s, 0, 0);
        submit(&k, &s, 0, 1);
        submit(&k, &s, 1, 2);
        assert_eq!(s.shard_stats(0).submitted, 2);
        assert_eq!(s.shard_stats(1).submitted, 1);
        assert_eq!(s.shard_in_flight(0), 2);
        assert_eq!(s.stats().in_flight_hwm, 2, "HWM is a max, not a sum");
        for d in s.submit_ring(0).drain(&k, CpuClass::User) {
            s.complete(&k, CpuClass::User, d).unwrap();
        }
        assert!(s.shard_conserved(0));
        assert!(s.shard_conserved(1));
        assert_eq!(s.shard_stats(0).completed, 2);
        assert_eq!(s.shard_stats(1).completed, 0);
        assert_eq!(s.in_flight(), 1);
        assert!(s.conserved());
    }
}
