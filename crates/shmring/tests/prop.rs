//! Property-based tests for the shmring subsystem: the ring against a
//! queue model (wrap-around, backpressure, ownership handback), the
//! pool against an allocation model (out-of-order completion reclaim),
//! and the sector pool against an interval model (variable-length runs
//! never alias, conservation counters survive arbitrary interleavings).

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use decaf_shmring::{
    AllocMode, BufHandle, BufPool, Descriptor, PoolError, RingError, SectorHandle, SectorPool,
    SgHandle, SgSegment, ShmRing, UrbDescriptor, UrbRingSet,
};
use decaf_simkernel::{CpuClass, Kernel};
use proptest::prelude::*;

fn desc(n: u32) -> Descriptor {
    Descriptor {
        buf: BufHandle(n),
        len: n.wrapping_mul(7) & 0x7ff,
        cookie: n as u64,
    }
}

proptest! {
    /// Any interleaving of pushes and pops behaves exactly like a bounded
    /// FIFO: order preserved across wrap-around, fullness refused with
    /// backpressure, emptiness returns `None`.
    #[test]
    fn ring_behaves_like_bounded_fifo(
        capacity in 1usize..9,
        ops in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let k = Kernel::new();
        let ring = ShmRing::new("prop", capacity);
        let mut model: VecDeque<Descriptor> = VecDeque::new();
        let mut seq = 0u32;
        let mut refused = 0u64;
        for op in ops {
            // Bias 2:1 toward pushes so the ring wraps and fills often.
            if op % 3 != 0 {
                let d = desc(seq);
                seq += 1;
                match ring.push(&k, CpuClass::Kernel, d) {
                    Ok(()) => {
                        prop_assert!(model.len() < capacity);
                        model.push_back(d);
                    }
                    Err(RingError::Full) => {
                        refused += 1;
                        prop_assert_eq!(model.len(), capacity, "refused only when full");
                    }
                }
            } else {
                let got = ring.pop(&k, CpuClass::User);
                prop_assert_eq!(got, model.pop_front(), "FIFO order across wrap-around");
            }
            prop_assert_eq!(ring.len(), model.len());
            prop_assert_eq!(ring.is_full(), model.len() == capacity);
        }
        let stats = ring.stats();
        prop_assert_eq!(stats.backpressure, refused);
        prop_assert_eq!(stats.posts - stats.pops, model.len() as u64);
        prop_assert!(stats.occupancy_hwm as usize <= capacity);
    }

    /// Ownership handback: every slot a consumer drains becomes writable
    /// again, so after any history the producer can always post exactly
    /// `capacity - len` more descriptors before hitting backpressure.
    #[test]
    fn drained_slots_are_reusable(
        capacity in 1usize..7,
        rounds in 1usize..12,
    ) {
        let k = Kernel::new();
        let ring = ShmRing::new("prop", capacity);
        let mut seq = 0u32;
        for _ in 0..rounds {
            while ring.push(&k, CpuClass::Kernel, desc(seq)).is_ok() {
                seq += 1;
            }
            prop_assert!(ring.is_full());
            let drained = ring.drain(&k, CpuClass::User);
            prop_assert_eq!(drained.len(), capacity, "full ring drains completely");
            prop_assert!(ring.is_empty(), "every slot handed back");
        }
        prop_assert_eq!(ring.stats().posts, seq as u64);
    }

    /// Out-of-order completion reclaim: buffers freed in an arbitrary
    /// order (devices complete out of order) are all reusable, handles
    /// stay distinct, and double frees are always rejected.
    #[test]
    fn pool_reclaims_out_of_order(
        count in 1usize..17,
        shuffle in proptest::collection::vec(any::<u16>(), 1..17),
    ) {
        let pool = BufPool::with_capacity(64, count);
        let mut held: Vec<BufHandle> = (0..count).map(|_| pool.alloc().unwrap()).collect();
        prop_assert_eq!(pool.alloc(), Err(PoolError::Exhausted));
        // Free in an order driven by the random shuffle keys.
        for (i, key) in shuffle.iter().enumerate() {
            if held.is_empty() {
                break;
            }
            let victim = held.remove((*key as usize + i) % held.len());
            pool.free(victim).unwrap();
            prop_assert_eq!(pool.free(victim), Err(PoolError::NotAllocated(victim.0)));
        }
        let freed = count - held.len();
        prop_assert_eq!(pool.available(), freed);
        // Everything freed is allocatable again, with distinct handles.
        let mut again: Vec<u32> = (0..freed).map(|_| pool.alloc().unwrap().0).collect();
        again.sort_unstable();
        again.dedup();
        prop_assert_eq!(again.len(), freed, "reallocated handles are distinct");
    }

    /// Arbitrary alloc/free interleavings of variable-length transfers:
    /// live sector runs never alias, and the conservation counters hold
    /// under out-of-order reclaim at every step.
    #[test]
    fn sector_runs_never_alias_and_conserve(
        ops in proptest::collection::vec(any::<u16>(), 1..200),
    ) {
        const SECTOR: usize = 64;
        const COUNT: usize = 16;
        let pool = SectorPool::with_capacity(SECTOR, COUNT);
        // Live runs as (handle, byte offset, byte length).
        let mut live: Vec<(SectorHandle, usize, usize)> = Vec::new();
        for op in ops {
            // Bias 3:2 toward allocs so the map fragments and refills;
            // lengths span sub-sector to multi-sector transfers.
            if op % 5 < 3 {
                let len = 1 + (op as usize * 37) % (4 * SECTOR);
                match pool.alloc(len) {
                    Ok(h) => {
                        let off = pool.offset_of(h).unwrap();
                        let bytes = pool.run_sectors(h).unwrap() * SECTOR;
                        prop_assert!(bytes >= len, "run covers the transfer");
                        for &(_, o, b) in &live {
                            prop_assert!(
                                off + bytes <= o || o + b <= off,
                                "run [{off}, {}) aliases live run [{o}, {})",
                                off + bytes,
                                o + b
                            );
                        }
                        live.push((h, off, bytes));
                    }
                    Err(PoolError::Exhausted) => {
                        // Legal whenever no contiguous hole fits; never
                        // legal with an empty pool and a fitting length.
                        prop_assert!(
                            !live.is_empty() || len > SECTOR * COUNT,
                            "empty pool refused a fitting alloc"
                        );
                    }
                    Err(e) => prop_assert!(false, "unexpected alloc error: {e}"),
                }
            } else if !live.is_empty() {
                // Out-of-order reclaim: free a pseudo-random live run.
                let (h, _, _) = live.remove(op as usize % live.len());
                pool.free(h).unwrap();
                prop_assert_eq!(pool.free(h), Err(PoolError::NotAllocated(h.0)));
            }
            // Conservation holds at every step, not just at quiescence.
            prop_assert!(pool.conserved(), "conservation broke mid-history");
            let in_use: usize = live.iter().map(|&(_, _, b)| b / SECTOR).sum();
            prop_assert_eq!(pool.in_use_sectors(), in_use);
            prop_assert_eq!(pool.live_runs(), live.len());
        }
        // Draining everything returns the pool to pristine capacity.
        for (h, _, _) in live.drain(..) {
            pool.free(h).unwrap();
        }
        prop_assert_eq!(pool.available_sectors(), COUNT);
        prop_assert!(pool.conserved());
        let s = pool.stats();
        prop_assert_eq!(s.sectors_allocated, s.sectors_reclaimed);
    }

    /// Adopted payloads survive the handoff bit-for-bit, in place: no
    /// audited copy is ever charged on the sector path, whatever the
    /// interleaving of writes and reads.
    #[test]
    fn adopted_payloads_survive_without_copies(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..200), 1..8),
    ) {
        let k = Kernel::new();
        let pool = SectorPool::with_capacity(64, 32);
        let runs: Vec<_> = payloads
            .iter()
            .map(|p| {
                let h = pool.alloc(p.len()).unwrap();
                pool.adopt_payload(&k, p, h).unwrap();
                h
            })
            .collect();
        // Reads in arbitrary (reverse) order see exactly what was
        // adopted; nothing ever hits the copy audit.
        for (h, p) in runs.iter().zip(&payloads).rev() {
            prop_assert_eq!(&pool.read_payload(*h, p.len()).unwrap(), p);
            pool.free(*h).unwrap();
        }
        prop_assert_eq!(k.stats().bytes_copied, 0, "adoption and in-place reads");
        prop_assert!(pool.conserved());
    }

    /// One sector pool under *concurrent multi-shard* traffic: several
    /// shards allocate, adopt and reclaim out of the same pool in an
    /// arbitrary interleaving. Conservation holds at every step, live
    /// runs never alias across shards, adopted payloads survive
    /// bit-for-bit, and nothing is ever CPU-copied.
    #[test]
    fn sector_pool_survives_multi_shard_interleavings(
        shards in 2usize..5,
        ops in proptest::collection::vec(any::<u16>(), 1..150),
    ) {
        const SECTOR: usize = 64;
        const COUNT: usize = 20;
        let k = Kernel::new();
        let pool = SectorPool::with_capacity(SECTOR, COUNT);
        // Per-shard live runs: (handle, offset, run bytes, payload).
        type LiveRun = (SectorHandle, usize, usize, Vec<u8>);
        let mut live: Vec<Vec<LiveRun>> = vec![Vec::new(); shards];
        for (step, op) in ops.iter().enumerate() {
            let shard = (*op as usize) % shards;
            if op % 5 < 3 {
                let len = 1 + (*op as usize * 37 + step) % (3 * SECTOR);
                let payload: Vec<u8> = (0..len)
                    .map(|i| (shard as u8) ^ (i as u8).wrapping_mul(17))
                    .collect();
                match pool.alloc(len) {
                    Ok(h) => {
                        pool.adopt_payload(&k, &payload, h).unwrap();
                        let off = pool.offset_of(h).unwrap();
                        let bytes = pool.run_sectors(h).unwrap() * SECTOR;
                        // Alias freedom across *all* shards' live runs.
                        for runs in &live {
                            for &(_, o, b, _) in runs {
                                prop_assert!(
                                    off + bytes <= o || o + b <= off,
                                    "shard {shard}: run [{off}, {}) aliases [{o}, {})",
                                    off + bytes,
                                    o + b
                                );
                            }
                        }
                        live[shard].push((h, off, bytes, payload));
                    }
                    Err(PoolError::Exhausted) => {
                        let in_use: usize = live.iter().flatten().count();
                        prop_assert!(in_use > 0, "empty pool refused a fitting alloc");
                    }
                    Err(e) => prop_assert!(false, "unexpected alloc error: {e}"),
                }
            } else if !live[shard].is_empty() {
                // Out-of-order reclaim on the acting shard.
                let idx = (*op as usize / 5) % live[shard].len();
                let (h, _, _, payload) = live[shard].remove(idx);
                prop_assert_eq!(
                    pool.read_payload(h, payload.len()).unwrap(),
                    payload,
                    "shard {}'s payload corrupted by its siblings", shard
                );
                pool.free(h).unwrap();
            }
            prop_assert!(pool.conserved(), "conservation broke mid-history");
            let in_use: usize = live.iter().flatten().map(|&(_, _, b, _)| b / SECTOR).sum();
            prop_assert_eq!(pool.in_use_sectors(), in_use);
        }
        for runs in &mut live {
            for (h, _, _, _) in runs.drain(..) {
                pool.free(h).unwrap();
            }
        }
        prop_assert!(pool.conserved());
        prop_assert_eq!(pool.available_sectors(), COUNT);
        prop_assert_eq!(k.stats().bytes_copied, 0, "adoption never copies");
    }

    /// UrbRingSet completion-steering round trips: URBs submitted on
    /// arbitrary shards, completed by a consumer draining shards in an
    /// arbitrary order, always come home to the submitting shard; the
    /// per-shard conservation counters balance after any history.
    #[test]
    fn urb_ring_set_completions_always_come_home(
        shards in 1usize..5,
        ops in proptest::collection::vec(any::<u16>(), 1..120),
    ) {
        let k = Kernel::new();
        let pool = Rc::new(SectorPool::with_capacity(64, 64));
        let set = UrbRingSet::new("prop", shards, 64, 128, pool);
        let mut submitted_by: HashMap<u64, usize> = HashMap::new();
        let mut next_cookie = 0u64;
        let mut reclaimed = vec![0u64; shards];
        for op in &ops {
            match op % 3 {
                // Submit on the op-selected shard (bounded in flight by
                // the pool; skip when exhausted — that path is the
                // backpressure suite's business).
                0 | 1 => {
                    let shard = (*op as usize / 3) % shards;
                    if let Ok(run) = set.pool().alloc_sg(64) {
                        let cookie = next_cookie;
                        next_cookie += 1;
                        set.submit_ring(shard)
                            .push(
                                &k,
                                CpuClass::Kernel,
                                UrbDescriptor::request_out(run, 64, 2, cookie),
                            )
                            .unwrap();
                        set.note_submit(shard, cookie);
                        submitted_by.insert(cookie, shard);
                    }
                }
                // Complete: drain an arbitrary victim shard's submit
                // ring; every giveback must steer home.
                _ => {
                    let victim = (*op as usize / 7) % shards;
                    for d in set.submit_ring(victim).drain(&k, CpuClass::User) {
                        let home = set
                            .complete(&k, CpuClass::User, d.completed(0, d.len))
                            .unwrap();
                        prop_assert_eq!(home, submitted_by[&d.cookie]);
                        prop_assert_eq!(home, victim, "submit rings are per shard");
                    }
                    // And reclaim whatever has come home on that shard.
                    for d in set.reclaim(&k, CpuClass::Kernel, victim) {
                        prop_assert_eq!(submitted_by[&d.cookie], victim);
                        set.pool().free_sg(d.buf).unwrap();
                        reclaimed[victim] += 1;
                    }
                }
            }
            prop_assert!(set.conserved(), "mid-history conservation");
        }
        // Quiesce.
        for (shard, count) in reclaimed.iter_mut().enumerate() {
            for d in set.submit_ring(shard).drain(&k, CpuClass::User) {
                let home = set.complete(&k, CpuClass::User, d.completed(0, d.len)).unwrap();
                prop_assert_eq!(home, shard);
            }
            for d in set.reclaim(&k, CpuClass::Kernel, shard) {
                prop_assert_eq!(submitted_by[&d.cookie], shard);
                set.pool().free_sg(d.buf).unwrap();
                *count += 1;
            }
        }
        prop_assert_eq!(set.in_flight(), 0);
        for (shard, &count) in reclaimed.iter().enumerate() {
            prop_assert!(set.shard_conserved(shard), "shard {} not conserved", shard);
            prop_assert_eq!(count, set.shard_stats(shard).submitted);
            prop_assert_eq!(
                set.shard_stats(shard).completed,
                set.shard_stats(shard).submitted
            );
        }
        prop_assert!(set.pool().conserved());
        prop_assert_eq!(set.pool().in_use_sectors(), 0);
    }

    /// A descriptor round trip through ring + pool preserves the payload
    /// bytes and charges exactly one audited copy per payload.
    #[test]
    fn payload_survives_ring_handoff(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..8),
    ) {
        let k = Kernel::new();
        let ring = ShmRing::new("prop", 8);
        let pool = BufPool::with_capacity(64, 8);
        let mut expected_bytes = 0u64;
        for (i, payload) in payloads.iter().enumerate() {
            let h = pool.alloc().unwrap();
            pool.write_payload(&k, CpuClass::Kernel, h, payload).unwrap();
            expected_bytes += payload.len() as u64;
            ring.push(&k, CpuClass::Kernel, Descriptor {
                buf: h,
                len: payload.len() as u32,
                cookie: i as u64,
            }).unwrap();
        }
        prop_assert_eq!(k.stats().bytes_copied, expected_bytes, "one copy per payload");
        for (i, payload) in payloads.iter().enumerate() {
            let d = ring.pop(&k, CpuClass::User).unwrap();
            prop_assert_eq!(d.cookie, i as u64);
            prop_assert_eq!(&pool.read_payload(d.buf, d.len as usize).unwrap(), payload);
            pool.free(d.buf).unwrap();
        }
        prop_assert_eq!(k.stats().bytes_copied, expected_bytes, "reads are in place");
    }

    /// Scatter-gather chains under adversarial alloc/free interleavings:
    /// no byte of any live chain ever aliases another chain, the
    /// conservation counters hold at every step, and draining everything
    /// returns the pool to pristine capacity.
    #[test]
    fn sg_chains_never_alias_and_conserve(
        ops in proptest::collection::vec(any::<u16>(), 1..200),
    ) {
        const SECTOR: usize = 64;
        const COUNT: usize = 16;
        let pool = SectorPool::with_capacity(SECTOR, COUNT);
        // Live chains as (handle, requested bytes, segments).
        let mut live: Vec<(SgHandle, usize, Vec<SgSegment>)> = Vec::new();
        for op in ops {
            if op % 5 < 3 {
                let len = 1 + (op as usize * 37) % (4 * SECTOR);
                match pool.alloc_sg(len) {
                    Ok(h) => {
                        let segs = pool.sg_segments(h).unwrap();
                        let cap: usize = segs.iter().map(|s| s.bytes).sum();
                        prop_assert!(cap >= len, "chain covers the transfer");
                        for s in &segs {
                            for (_, _, other) in &live {
                                for o in other {
                                    prop_assert!(
                                        s.offset + s.bytes <= o.offset
                                            || o.offset + o.bytes <= s.offset,
                                        "segment [{}, {}) aliases live [{}, {})",
                                        s.offset,
                                        s.offset + s.bytes,
                                        o.offset,
                                        o.offset + o.bytes
                                    );
                                }
                            }
                        }
                        live.push((h, len, segs));
                    }
                    Err(PoolError::Exhausted) => {
                        // Scatter-gather refuses only on true exhaustion:
                        // more sectors requested than are free at all.
                        prop_assert!(
                            len.div_ceil(SECTOR) > pool.available_sectors(),
                            "SG refused a transfer it had the bytes for"
                        );
                    }
                    Err(e) => prop_assert!(false, "unexpected alloc error: {e}"),
                }
            } else if !live.is_empty() {
                let (h, _, _) = live.remove(op as usize % live.len());
                pool.free_sg(h).unwrap();
                prop_assert_eq!(pool.free_sg(h), Err(PoolError::NotAllocated(h.0)));
            }
            prop_assert!(pool.conserved(), "conservation broke mid-history");
            let in_use: usize =
                live.iter().map(|(_, _, s)| s.iter().map(|x| x.bytes).sum::<usize>()).sum();
            prop_assert_eq!(pool.in_use_sectors() * SECTOR, in_use);
            prop_assert_eq!(pool.live_chains(), live.len());
        }
        for (h, _, _) in live.drain(..) {
            pool.free_sg(h).unwrap();
        }
        prop_assert_eq!(pool.available_sectors(), COUNT);
        prop_assert!(pool.conserved());
        let s = pool.stats();
        prop_assert_eq!(s.sectors_allocated, s.sectors_reclaimed);
        prop_assert_eq!(s.frag_refusals, 0, "buddy+SG never frag-refuses");
    }

    /// Buddy merge correctness: after any alloc/free history drains,
    /// splits have re-merged all the way back to the canonical free-list
    /// decomposition a fresh pool starts with — fragmentation leaves no
    /// permanent scars. Exercised over a non-power-of-two pool so the
    /// multi-block canonical decomposition is the target, not `[(0, N)]`.
    #[test]
    fn buddy_merge_restores_canonical_free_extents(
        count in 5usize..24,
        ops in proptest::collection::vec(any::<u16>(), 1..150),
    ) {
        const SECTOR: usize = 64;
        let pool = SectorPool::with_capacity(SECTOR, count);
        let canonical = SectorPool::with_capacity(SECTOR, count).free_extents();
        let mut live: Vec<SgHandle> = Vec::new();
        for op in ops {
            if op % 5 < 3 {
                let len = 1 + (op as usize * 53) % (3 * SECTOR);
                if let Ok(h) = pool.alloc_sg(len) {
                    live.push(h);
                }
            } else if !live.is_empty() {
                let h = live.remove(op as usize % live.len());
                pool.free_sg(h).unwrap();
            }
        }
        for h in live.drain(..) {
            pool.free_sg(h).unwrap();
        }
        prop_assert_eq!(
            pool.free_extents(),
            canonical,
            "drained pool's free lists differ from a fresh pool's"
        );
        prop_assert!(pool.conserved());
    }

    /// The completeness property, with the first-fit scan replaying the
    /// same adversarial schedule as the incompleteness oracle: the
    /// buddy+SG pool refuses only when the requested sectors outnumber
    /// the free ones, while every first-fit refusal is correctly split
    /// between fragmentation (free bytes sufficed) and true exhaustion.
    #[test]
    fn buddy_sg_is_complete_where_first_fit_fragments(
        ops in proptest::collection::vec(any::<u16>(), 1..200),
    ) {
        const SECTOR: usize = 64;
        const COUNT: usize = 16;
        let sg = SectorPool::with_capacity_mode(SECTOR, COUNT, AllocMode::BuddySg);
        let ff = SectorPool::with_capacity_mode(SECTOR, COUNT, AllocMode::FirstFit);
        let mut live_sg: Vec<SgHandle> = Vec::new();
        let mut live_ff: Vec<SectorHandle> = Vec::new();
        for op in ops {
            if op % 5 < 3 {
                let len = 1 + (op as usize * 37) % (4 * SECTOR);
                let need = len.div_ceil(SECTOR);
                match sg.alloc_sg(len) {
                    Ok(h) => live_sg.push(h),
                    Err(PoolError::Exhausted) => prop_assert!(
                        need > sg.available_sectors(),
                        "buddy+SG refused {need} sectors with {} free",
                        sg.available_sectors()
                    ),
                    Err(e) => prop_assert!(false, "unexpected alloc error: {e}"),
                }
                let before = ff.stats();
                match ff.alloc(len) {
                    Ok(h) => live_ff.push(h),
                    Err(PoolError::Exhausted) => {
                        let after = ff.stats();
                        if need <= ff.available_sectors() {
                            prop_assert_eq!(
                                after.frag_refusals, before.frag_refusals + 1,
                                "refusal with free bytes must count as fragmentation"
                            );
                        } else {
                            prop_assert_eq!(
                                after.exhausted, before.exhausted + 1,
                                "refusal without free bytes must count as exhaustion"
                            );
                        }
                    }
                    Err(e) => prop_assert!(false, "unexpected alloc error: {e}"),
                }
            } else {
                // Mirror the free schedule on both pools, each against
                // its own live set (their histories legally diverge once
                // first-fit starts refusing).
                if !live_sg.is_empty() {
                    let h = live_sg.remove(op as usize % live_sg.len());
                    sg.free_sg(h).unwrap();
                }
                if !live_ff.is_empty() {
                    let h = live_ff.remove(op as usize % live_ff.len());
                    ff.free(h).unwrap();
                }
            }
            prop_assert!(sg.conserved() && ff.conserved());
        }
        prop_assert_eq!(sg.stats().frag_refusals, 0, "completeness: no frag refusals");
    }
}
