//! Behavioural model of an Intel 8254x ("E1000") gigabit Ethernet
//! controller.
//!
//! Register offsets follow the 8254x family software developer's manual.
//! Implemented behaviour: software reset, EEPROM MAC reads through EERD,
//! PHY access through MDIC, interrupt cause/mask (ICR/IMS/IMC, read-clear
//! ICR), legacy transmit and receive descriptor rings, link bring-up via
//! CTRL.SLU, internal loopback of transmitted frames into the receive
//! ring, and packet counters (TPT/TPR).
//!
//! Simplifications: descriptor "physical addresses" are offsets into one
//! shared [`DmaMemory`] region; checksum offload, VLANs and flow control
//! are not modelled.

use decaf_simkernel::{costs, DmaMemory, Kernel, MmioDevice};

/// Device control register.
pub const CTRL: u64 = 0x0000;
/// Device status register.
pub const STATUS: u64 = 0x0008;
/// EEPROM read register.
pub const EERD: u64 = 0x0014;
/// PHY management register.
pub const MDIC: u64 = 0x0020;
/// Interrupt cause read (read-to-clear).
pub const ICR: u64 = 0x00C0;
/// Interrupt cause set.
pub const ICS: u64 = 0x00C8;
/// Interrupt mask set/read.
pub const IMS: u64 = 0x00D0;
/// Interrupt mask clear.
pub const IMC: u64 = 0x00D8;
/// Receive control.
pub const RCTL: u64 = 0x0100;
/// Transmit control.
pub const TCTL: u64 = 0x0400;
/// Receive descriptor base address low.
pub const RDBAL: u64 = 0x2800;
/// Receive descriptor ring length (bytes).
pub const RDLEN: u64 = 0x2808;
/// Receive descriptor head.
pub const RDH: u64 = 0x2810;
/// Receive descriptor tail.
pub const RDT: u64 = 0x2818;
/// Transmit descriptor base address low.
pub const TDBAL: u64 = 0x3800;
/// Transmit descriptor ring length (bytes).
pub const TDLEN: u64 = 0x3808;
/// Transmit descriptor head.
pub const TDH: u64 = 0x3810;
/// Transmit descriptor tail.
pub const TDT: u64 = 0x3818;
/// Total packets received counter.
pub const TPR: u64 = 0x40D0;
/// Total packets transmitted counter.
pub const TPT: u64 = 0x40D4;

/// CTRL: software reset.
pub const CTRL_RST: u32 = 1 << 26;
/// CTRL: set link up.
pub const CTRL_SLU: u32 = 1 << 6;
/// STATUS: link up.
pub const STATUS_LU: u32 = 1 << 1;
/// ICR/IMS: transmit descriptor written back.
pub const ICR_TXDW: u32 = 1 << 0;
/// ICR/IMS: link status change.
pub const ICR_LSC: u32 = 1 << 2;
/// ICR/IMS: receiver timer interrupt (packet received).
pub const ICR_RXT0: u32 = 1 << 7;
/// RCTL: receiver enable.
pub const RCTL_EN: u32 = 1 << 1;
/// TCTL: transmitter enable.
pub const TCTL_EN: u32 = 1 << 1;
/// Descriptor status: descriptor done.
pub const TXD_STAT_DD: u32 = 1 << 0;
/// Descriptor command: report status.
pub const TXD_CMD_RS: u32 = 1 << 3;
/// Descriptor command: end of packet.
pub const TXD_CMD_EOP: u32 = 1 << 0;

/// Size of one legacy descriptor in bytes.
pub const DESC_SIZE: usize = 16;

/// PHY register: control.
pub const PHY_CTRL: u32 = 0;
/// PHY register: status.
pub const PHY_STATUS: u32 = 1;
/// PHY status: link established.
pub const PHY_STATUS_LINK: u32 = 1 << 2;

/// The E1000 device model.
pub struct E1000Device {
    irq_line: u32,
    dma: DmaMemory,
    mac: [u8; 6],
    ctrl: u32,
    status: u32,
    icr: u32,
    ims: u32,
    rctl: u32,
    tctl: u32,
    eerd: u32,
    mdic: u32,
    tdbal: u32,
    tdlen: u32,
    tdh: u32,
    tdt: u32,
    rdbal: u32,
    rdlen: u32,
    rdh: u32,
    rdt: u32,
    tpt: u32,
    tpr: u32,
    /// Frames waiting to enter the RX ring (loopback + injected traffic).
    pending_rx: Vec<Vec<u8>>,
    /// Frames dropped because no RX descriptor was available.
    pub rx_dropped: u64,
}

impl E1000Device {
    /// Creates an E1000 with the given MAC, IRQ line and DMA window.
    pub fn new(mac: [u8; 6], irq_line: u32, dma: DmaMemory) -> Self {
        E1000Device {
            irq_line,
            dma,
            mac,
            ctrl: 0,
            status: 0,
            icr: 0,
            ims: 0,
            rctl: 0,
            tctl: 0,
            eerd: 0,
            mdic: 0,
            tdbal: 0,
            tdlen: 0,
            tdh: 0,
            tdt: 0,
            rdbal: 0,
            rdlen: 0,
            rdh: 0,
            rdt: 0,
            tpt: 0,
            tpr: 0,
            pending_rx: Vec::new(),
            rx_dropped: 0,
        }
    }

    /// The EEPROM image: words 0-2 hold the MAC address.
    fn eeprom_word(&self, addr: u32) -> u16 {
        match addr {
            0 => u16::from_le_bytes([self.mac[0], self.mac[1]]),
            1 => u16::from_le_bytes([self.mac[2], self.mac[3]]),
            2 => u16::from_le_bytes([self.mac[4], self.mac[5]]),
            _ => 0xffff,
        }
    }

    fn assert_cause(&mut self, kernel: &Kernel, cause: u32) {
        self.icr |= cause;
        if self.icr & self.ims != 0 {
            kernel.raise_irq(self.irq_line);
        }
    }

    fn reset(&mut self) {
        let mac = self.mac;
        let irq = self.irq_line;
        let dma = self.dma.clone();
        *self = E1000Device::new(mac, irq, dma);
    }

    fn tx_ring_count(&self) -> u32 {
        self.tdlen / DESC_SIZE as u32
    }

    fn rx_ring_count(&self) -> u32 {
        self.rdlen / DESC_SIZE as u32
    }

    /// Processes transmit descriptors from TDH up to TDT.
    fn process_tx(&mut self, kernel: &Kernel) {
        if self.tctl & TCTL_EN == 0 || self.tx_ring_count() == 0 {
            return;
        }
        let mut sent_any = false;
        while self.tdh != self.tdt {
            let desc = self.tdbal as usize + self.tdh as usize * DESC_SIZE;
            let buf_addr = self.dma.read_u64(desc) as usize;
            let len = (self.dma.read_u32(desc + 8) & 0xffff) as usize;
            let cmd = self.dma.read_u32(desc + 8) >> 24;
            kernel.charge_kernel(costs::DMA_DESC_NS);
            let frame = self.dma.read_bytes(buf_addr, len);
            if cmd & TXD_CMD_EOP != 0 {
                self.tpt = self.tpt.wrapping_add(1);
                // Internal loopback: the link reflects every frame.
                if self.status & STATUS_LU != 0 {
                    self.pending_rx.push(frame);
                }
            }
            if cmd & TXD_CMD_RS != 0 {
                // Write back descriptor-done status.
                let st = self.dma.read_u32(desc + 12) | TXD_STAT_DD;
                self.dma.write_u32(desc + 12, st);
            }
            self.tdh = (self.tdh + 1) % self.tx_ring_count();
            sent_any = true;
        }
        if sent_any {
            self.assert_cause(kernel, ICR_TXDW);
            self.deliver_rx(kernel);
        }
    }

    /// Moves pending frames into available receive descriptors.
    fn deliver_rx(&mut self, kernel: &Kernel) {
        if self.rctl & RCTL_EN == 0 || self.rx_ring_count() == 0 {
            return;
        }
        let mut delivered = false;
        while !self.pending_rx.is_empty() {
            let next = (self.rdh + 1) % self.rx_ring_count();
            if self.rdh == self.rdt {
                // Ring full (hardware convention: head==tail means empty
                // of free buffers once software owns them all).
                self.rx_dropped += self.pending_rx.len() as u64;
                self.pending_rx.clear();
                break;
            }
            let frame = self.pending_rx.remove(0);
            let desc = self.rdbal as usize + self.rdh as usize * DESC_SIZE;
            let buf_addr = self.dma.read_u64(desc) as usize;
            kernel.charge_kernel(costs::DMA_DESC_NS);
            self.dma.write_bytes(buf_addr, &frame);
            // length | DD+EOP status in the write-back word.
            self.dma.write_u32(desc + 8, frame.len() as u32 & 0xffff);
            self.dma.write_u32(desc + 12, TXD_STAT_DD | 0x2);
            self.tpr = self.tpr.wrapping_add(1);
            self.rdh = next;
            delivered = true;
        }
        if delivered {
            self.assert_cause(kernel, ICR_RXT0);
        }
    }

    /// Injects an externally received frame (a peer on the wire).
    pub fn inject_rx(&mut self, kernel: &Kernel, frame: &[u8]) {
        self.pending_rx.push(frame.to_vec());
        self.deliver_rx(kernel);
    }

    /// Whether the model currently reports link-up.
    pub fn link_up(&self) -> bool {
        self.status & STATUS_LU != 0
    }

    /// Total frames transmitted (TPT mirror, test convenience).
    pub fn frames_transmitted(&self) -> u32 {
        self.tpt
    }

    /// Total frames received into the ring (TPR mirror).
    pub fn frames_received(&self) -> u32 {
        self.tpr
    }
}

#[allow(clippy::collapsible_match)] // register dispatch reads clearer with inner guards
impl MmioDevice for E1000Device {
    fn read32(&mut self, _kernel: &Kernel, offset: u64) -> u32 {
        match offset {
            CTRL => self.ctrl,
            STATUS => self.status,
            EERD => self.eerd,
            MDIC => self.mdic,
            ICR => {
                // Read-to-clear semantics.
                let v = self.icr;
                self.icr = 0;
                v
            }
            IMS => self.ims,
            RCTL => self.rctl,
            TCTL => self.tctl,
            RDBAL => self.rdbal,
            RDLEN => self.rdlen,
            RDH => self.rdh,
            RDT => self.rdt,
            TDBAL => self.tdbal,
            TDLEN => self.tdlen,
            TDH => self.tdh,
            TDT => self.tdt,
            TPR => self.tpr,
            TPT => self.tpt,
            _ => 0,
        }
    }

    fn write32(&mut self, kernel: &Kernel, offset: u64, value: u32) {
        match offset {
            CTRL => {
                if value & CTRL_RST != 0 {
                    self.reset();
                    return;
                }
                let had_link = self.status & STATUS_LU != 0;
                self.ctrl = value;
                if value & CTRL_SLU != 0 && !had_link {
                    self.status |= STATUS_LU;
                    self.assert_cause(kernel, ICR_LSC);
                }
            }
            EERD => {
                // START bit 0; address in bits 15:8; result in 31:16 with
                // DONE in bit 4.
                if value & 1 != 0 {
                    let addr = (value >> 8) & 0xff;
                    let data = self.eeprom_word(addr) as u32;
                    self.eerd = (data << 16) | (1 << 4) | (addr << 8);
                }
            }
            MDIC => {
                // Opcode bits 27:26 (01 write, 10 read), phy reg 20:16,
                // data 15:0; ready bit 28.
                let op = (value >> 26) & 0x3;
                let reg = (value >> 16) & 0x1f;
                let mut data = value & 0xffff;
                if op == 0b10 {
                    data = match reg {
                        PHY_STATUS => {
                            if self.link_up() {
                                PHY_STATUS_LINK
                            } else {
                                0
                            }
                        }
                        PHY_CTRL => 0x1140,
                        _ => 0,
                    };
                }
                self.mdic = (value & 0xffff_0000) | data | (1 << 28);
            }
            ICS => self.assert_cause(kernel, value),
            IMS => self.ims |= value,
            IMC => self.ims &= !value,
            RCTL => {
                self.rctl = value;
                self.deliver_rx(kernel);
            }
            TCTL => self.tctl = value,
            RDBAL => self.rdbal = value,
            RDLEN => self.rdlen = value,
            RDH => self.rdh = value,
            RDT => {
                self.rdt = value;
                self.deliver_rx(kernel);
            }
            TDBAL => self.tdbal = value,
            TDLEN => self.tdlen = value,
            TDH => self.tdh = value,
            TDT => {
                self.tdt = value;
                self.process_tx(kernel);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAC: [u8; 6] = [0x00, 0x1b, 0x21, 0xaa, 0xbb, 0xcc];

    fn setup() -> (Kernel, E1000Device, DmaMemory) {
        let k = Kernel::new();
        let dma = DmaMemory::new(64 * 1024);
        let dev = E1000Device::new(MAC, 11, dma.clone());
        (k, dev, dma)
    }

    /// Programs an 8-descriptor TX ring at 0x0 and RX ring at 0x200 with
    /// buffers carved further up.
    fn setup_rings(k: &Kernel, dev: &mut E1000Device, dma: &DmaMemory) {
        dev.write32(k, TDBAL, 0x0);
        dev.write32(k, TDLEN, 8 * DESC_SIZE as u32);
        dev.write32(k, TDH, 0);
        dev.write32(k, TDT, 0);
        dev.write32(k, RDBAL, 0x200);
        dev.write32(k, RDLEN, 8 * DESC_SIZE as u32);
        for i in 0..8usize {
            // RX buffers at 0x1000 + i*2048.
            dma.write_u64(0x200 + i * DESC_SIZE, (0x1000 + i * 2048) as u64);
        }
        dev.write32(k, RDH, 0);
        dev.write32(k, RDT, 7);
        dev.write32(k, TCTL, TCTL_EN);
        dev.write32(k, RCTL, RCTL_EN);
    }

    #[test]
    fn eeprom_returns_mac() {
        let (k, mut dev, _) = setup();
        dev.write32(&k, EERD, 1); // word 0, START
        let v = dev.read32(&k, EERD);
        assert!(v & (1 << 4) != 0, "DONE set");
        assert_eq!((v >> 16) as u16, u16::from_le_bytes([MAC[0], MAC[1]]));
        dev.write32(&k, EERD, (2 << 8) | 1);
        assert_eq!(
            (dev.read32(&k, EERD) >> 16) as u16,
            u16::from_le_bytes([MAC[4], MAC[5]])
        );
    }

    #[test]
    fn link_comes_up_with_slu_and_fires_lsc() {
        let (k, mut dev, _) = setup();
        dev.write32(&k, IMS, ICR_LSC);
        assert!(!dev.link_up());
        dev.write32(&k, CTRL, CTRL_SLU);
        assert!(dev.link_up());
        assert!(k.irq_pending(11), "LSC interrupt raised");
        assert_eq!(dev.read32(&k, ICR) & ICR_LSC, ICR_LSC);
        assert_eq!(dev.read32(&k, ICR), 0, "ICR is read-to-clear");
    }

    #[test]
    fn phy_status_tracks_link() {
        let (k, mut dev, _) = setup();
        dev.write32(&k, MDIC, (0b10 << 26) | (PHY_STATUS << 16));
        assert_eq!(dev.read32(&k, MDIC) & PHY_STATUS_LINK, 0);
        dev.write32(&k, CTRL, CTRL_SLU);
        dev.write32(&k, MDIC, (0b10 << 26) | (PHY_STATUS << 16));
        let v = dev.read32(&k, MDIC);
        assert!(v & (1 << 28) != 0, "ready bit");
        assert_eq!(v & PHY_STATUS_LINK, PHY_STATUS_LINK);
    }

    #[test]
    fn transmit_loops_back_to_receive_ring() {
        let (k, mut dev, dma) = setup();
        dev.write32(&k, CTRL, CTRL_SLU);
        setup_rings(&k, &mut dev, &dma);
        dev.write32(&k, IMS, ICR_TXDW | ICR_RXT0);

        // Stage a 64-byte frame at 0x8000 and a TX descriptor 0.
        dma.write_bytes(0x8000, &[0xab; 64]);
        dma.write_u64(0, 0x8000);
        dma.write_u32(8, 64 | ((TXD_CMD_EOP | TXD_CMD_RS) << 24));
        dma.write_u32(12, 0);
        dev.write32(&k, TDT, 1);

        // TX descriptor written back with DD.
        assert_eq!(dma.read_u32(12) & TXD_STAT_DD, TXD_STAT_DD);
        assert_eq!(dev.frames_transmitted(), 1);
        // Frame appears in RX buffer 0 with DD status.
        assert_eq!(dma.read_bytes(0x1000, 64), vec![0xab; 64]);
        assert_eq!(dma.read_u32(0x200 + 8) & 0xffff, 64);
        assert_eq!(dma.read_u32(0x200 + 12) & TXD_STAT_DD, TXD_STAT_DD);
        assert_eq!(dev.frames_received(), 1);
        assert!(k.irq_pending(11));
        let icr = dev.read32(&k, ICR);
        assert!(icr & ICR_TXDW != 0 && icr & ICR_RXT0 != 0);
    }

    #[test]
    fn no_loopback_when_link_down() {
        let (k, mut dev, dma) = setup();
        setup_rings(&k, &mut dev, &dma);
        dma.write_u64(0, 0x8000);
        dma.write_u32(8, 64 | ((TXD_CMD_EOP | TXD_CMD_RS) << 24));
        dev.write32(&k, TDT, 1);
        assert_eq!(dev.frames_transmitted(), 1);
        assert_eq!(dev.frames_received(), 0);
    }

    #[test]
    fn injected_frames_reach_rx_ring() {
        let (k, mut dev, dma) = setup();
        dev.write32(&k, CTRL, CTRL_SLU);
        setup_rings(&k, &mut dev, &dma);
        dev.write32(&k, IMS, ICR_RXT0);
        dev.inject_rx(&k, &[0x55; 128]);
        assert_eq!(dev.frames_received(), 1);
        assert_eq!(dma.read_bytes(0x1000, 128), vec![0x55; 128]);
        assert!(k.irq_pending(11));
    }

    #[test]
    fn rx_overflow_drops_frames() {
        let (k, mut dev, dma) = setup();
        dev.write32(&k, CTRL, CTRL_SLU);
        setup_rings(&k, &mut dev, &dma);
        // Only 7 free descriptors (rdh=0, rdt=7): the 8th injection drops.
        for _ in 0..9 {
            dev.inject_rx(&k, &[1; 32]);
        }
        assert!(dev.rx_dropped > 0);
        assert_eq!(dev.frames_received(), 7);
    }

    #[test]
    fn reset_clears_state_but_keeps_mac() {
        let (k, mut dev, _) = setup();
        dev.write32(&k, CTRL, CTRL_SLU);
        dev.write32(&k, IMS, 0xff);
        dev.write32(&k, CTRL, CTRL_RST);
        assert!(!dev.link_up());
        assert_eq!(dev.read32(&k, IMS), 0);
        dev.write32(&k, EERD, 1);
        assert_eq!(
            (dev.read32(&k, EERD) >> 16) as u16,
            u16::from_le_bytes([MAC[0], MAC[1]])
        );
    }

    #[test]
    fn masked_interrupts_do_not_fire() {
        let (k, mut dev, _) = setup();
        // LSC not in IMS: no IRQ raised.
        dev.write32(&k, CTRL, CTRL_SLU);
        assert!(!k.irq_pending(11));
        // Cause is still latched in ICR.
        assert_eq!(dev.read32(&k, ICR) & ICR_LSC, ICR_LSC);
    }
}
