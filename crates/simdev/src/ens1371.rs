//! Behavioural model of an Ensoniq ES1371 (AudioPCI) sound chip.
//!
//! Implemented behaviour: an AC97-style codec accessed through the CODEC
//! register (busy bit, register address/data), the sample-rate converter
//! register, the DAC2 playback channel with a DMA frame buffer, period
//! interrupts as the DAC drains the buffer, and a played-frame counter.
//!
//! Simplifications: only the playback (DAC2) channel is modelled; draining
//! happens when the driver kicks the channel (a write to `CTRL` with
//! `CTRL_DAC2_EN`), advancing *idle* virtual time at the configured sample
//! rate — the CPU is not busy while the DAC plays, which is what yields
//! the paper's ~0% CPU utilization for the sound workload (Table 3).

use decaf_simkernel::{DmaMemory, Kernel, MmioDevice};

/// Interrupt/chip control register.
pub const CTRL: u64 = 0x00;
/// Interrupt/chip status register (read; write 1 to clear cause bits).
pub const STATUS: u64 = 0x04;
/// Sample rate converter register (DAC2 rate in Hz, simplified).
pub const SRC: u64 = 0x10;
/// Codec access register.
pub const CODEC: u64 = 0x14;
/// DAC2 frame buffer offset in DMA memory.
pub const DAC2_FRAME: u64 = 0x38;
/// DAC2 buffer size in frames.
pub const DAC2_SIZE: u64 = 0x3C;
/// DAC2 period size in frames (IRQ cadence).
pub const DAC2_PERIOD: u64 = 0x40;
/// Total frames played (read-only counter).
pub const DAC2_PLAYED: u64 = 0x44;

/// CTRL: enable DAC2 playback (kick).
pub const CTRL_DAC2_EN: u32 = 1 << 5;
/// STATUS: DAC2 period interrupt pending.
pub const STATUS_DAC2: u32 = 1 << 2;
/// CODEC: busy bit (always ready in the model).
pub const CODEC_BUSY: u32 = 1 << 31;
/// Codec register: master volume.
pub const AC97_MASTER_VOL: u32 = 0x02;

/// Frame size in bytes: 16-bit stereo.
pub const FRAME_BYTES: usize = 4;

/// The ES1371 device model.
pub struct Ens1371Device {
    irq_line: u32,
    dma: DmaMemory,
    ctrl: u32,
    status: u32,
    rate_hz: u32,
    codec_regs: [u16; 64],
    frame_off: u32,
    size_frames: u32,
    period_frames: u32,
    played_frames: u64,
    /// Number of period interrupts raised.
    pub period_irqs: u64,
}

impl Ens1371Device {
    /// Creates an ES1371 on `irq_line` over `dma`.
    pub fn new(irq_line: u32, dma: DmaMemory) -> Self {
        Ens1371Device {
            irq_line,
            dma,
            ctrl: 0,
            status: 0,
            rate_hz: 44_100,
            codec_regs: [0; 64],
            frame_off: 0,
            size_frames: 0,
            period_frames: 0,
            played_frames: 0,
            period_irqs: 0,
        }
    }

    /// Total frames the DAC has consumed.
    pub fn frames_played(&self) -> u64 {
        self.played_frames
    }

    /// Drains the whole staged buffer, raising a period IRQ per period and
    /// advancing idle time at the configured rate.
    fn drain(&mut self, kernel: &Kernel) {
        if self.size_frames == 0 || self.rate_hz == 0 {
            return;
        }
        let mut remaining = self.size_frames;
        let period = if self.period_frames == 0 {
            self.size_frames
        } else {
            self.period_frames
        };
        let mut checksum = 0u32;
        while remaining > 0 {
            let chunk = remaining.min(period);
            // Consume the samples (read them so DMA access is exercised).
            for f in 0..chunk {
                let idx = (self.size_frames - remaining + f) as usize * FRAME_BYTES;
                checksum = checksum.wrapping_add(self.dma.read_u32(self.frame_off as usize + idx));
            }
            let ns = chunk as u64 * 1_000_000_000 / self.rate_hz as u64;
            kernel.advance_idle(ns);
            self.played_frames += chunk as u64;
            remaining -= chunk;
            self.status |= STATUS_DAC2;
            self.period_irqs += 1;
            kernel.raise_irq(self.irq_line);
        }
        // Fold the checksum into the status high bits so the read is not
        // optimized away conceptually; harmless to the driver.
        self.status |= checksum & 0x0100_0000;
        self.size_frames = 0;
    }
}

impl MmioDevice for Ens1371Device {
    fn read32(&mut self, _kernel: &Kernel, offset: u64) -> u32 {
        match offset {
            CTRL => self.ctrl,
            STATUS => self.status,
            SRC => self.rate_hz,
            CODEC => 0, // busy bit never set: the codec is always ready
            DAC2_FRAME => self.frame_off,
            DAC2_SIZE => self.size_frames,
            DAC2_PERIOD => self.period_frames,
            DAC2_PLAYED => self.played_frames as u32,
            _ => 0,
        }
    }

    fn write32(&mut self, kernel: &Kernel, offset: u64, value: u32) {
        match offset {
            CTRL => {
                self.ctrl = value;
                if value & CTRL_DAC2_EN != 0 {
                    self.drain(kernel);
                    // The kick is one-shot in the model.
                    self.ctrl &= !CTRL_DAC2_EN;
                }
            }
            STATUS => self.status &= !value, // write 1 to clear
            SRC => self.rate_hz = value,
            CODEC => {
                // Bit 23 selects read (1) / write (0); reg in 22:16.
                let reg = ((value >> 16) & 0x3f) as usize;
                if value & (1 << 23) == 0 {
                    self.codec_regs[reg] = (value & 0xffff) as u16;
                }
            }
            DAC2_FRAME => self.frame_off = value,
            DAC2_SIZE => self.size_frames = value,
            DAC2_PERIOD => self.period_frames = value,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Kernel, Ens1371Device, DmaMemory) {
        let k = Kernel::new();
        let dma = DmaMemory::new(256 * 1024);
        let dev = Ens1371Device::new(5, dma.clone());
        (k, dev, dma)
    }

    #[test]
    fn playback_advances_idle_time_at_sample_rate() {
        let (k, mut dev, _) = setup();
        dev.write32(&k, SRC, 44_100);
        dev.write32(&k, DAC2_FRAME, 0);
        dev.write32(&k, DAC2_SIZE, 44_100); // one second of audio
        dev.write32(&k, DAC2_PERIOD, 4410);
        let before = k.snapshot();
        dev.write32(&k, CTRL, CTRL_DAC2_EN);
        let after = k.snapshot();
        let elapsed = before.elapsed_ns(&after);
        assert!(
            (999_000_000..=1_001_000_000).contains(&elapsed),
            "one second of audio takes ~1 s of virtual time, got {elapsed}"
        );
        // CPU stayed idle: the utilization is ~0, as in Table 3.
        assert!(before.utilization(&after) < 0.01);
        assert_eq!(dev.frames_played(), 44_100);
        assert_eq!(dev.period_irqs, 10);
    }

    #[test]
    fn period_interrupts_fire() {
        let (k, mut dev, _) = setup();
        dev.write32(&k, DAC2_SIZE, 1024);
        dev.write32(&k, DAC2_PERIOD, 256);
        dev.write32(&k, CTRL, CTRL_DAC2_EN);
        assert_eq!(dev.period_irqs, 4);
        assert!(k.irq_pending(5));
        assert!(dev.read32(&k, STATUS) & STATUS_DAC2 != 0);
        dev.write32(&k, STATUS, STATUS_DAC2);
        assert_eq!(dev.read32(&k, STATUS) & STATUS_DAC2, 0);
    }

    #[test]
    fn codec_write_persists() {
        let (k, mut dev, _) = setup();
        dev.write32(&k, CODEC, (AC97_MASTER_VOL << 16) | 0x0a0a);
        assert_eq!(dev.codec_regs[AC97_MASTER_VOL as usize], 0x0a0a);
    }

    #[test]
    fn zero_size_kick_is_noop() {
        let (k, mut dev, _) = setup();
        let t0 = k.now_ns();
        dev.write32(&k, CTRL, CTRL_DAC2_EN);
        assert_eq!(k.now_ns(), t0);
        assert_eq!(dev.frames_played(), 0);
    }
}
