//! Register-level behavioural models of the five devices the Decaf paper
//! converts drivers for.
//!
//! The paper evaluates on real hardware: an Intel E1000 gigabit NIC, a
//! Realtek RTL8139 fast-ethernet NIC, an Ensoniq ES1371 sound chip, a UHCI
//! USB 1.0 host controller with a flash drive, and a PS/2 mouse. We have
//! no hardware, so this crate implements *behavioural register models* of
//! each: drivers program them through the same kind of register interface
//! (MMIO or port I/O), descriptors live in shared
//! [`DmaMemory`](decaf_simkernel::DmaMemory), and the
//! models raise interrupts through the simulated kernel. Register layouts
//! follow the real datasheets where practical and are simplified where the
//! driver logic does not depend on the detail; every simplification is
//! noted on the module.
//!
//! All models are *loopback-capable* (NICs reflect transmitted frames into
//! the receive path) or *self-sinking* (the DAC drains buffers, the flash
//! drive stores sectors), so workloads can run closed-loop without any
//! external peer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod e1000;
pub mod ens1371;
pub mod psmouse;
pub mod rtl8139;
pub mod uhci;

pub use e1000::E1000Device;
pub use ens1371::Ens1371Device;
pub use psmouse::PsMouseDevice;
pub use rtl8139::Rtl8139Device;
pub use uhci::UhciDevice;
