//! Behavioural model of a PS/2 mouse behind an i8042-style controller.
//!
//! Implemented behaviour: the 0x60 data / 0x64 status-command port pair,
//! the `0xD4` write-to-mouse prefix, mouse reset (`0xFF` → ACK, self-test
//! pass, device id), enable reporting (`0xF4` → ACK), sample-rate and
//! resolution setting commands, and 3-byte movement packets delivered
//! through an output queue with IRQ 12.
//!
//! Simplifications: ports are addressed as the model's 32-bit register
//! offsets 0x60/0x64; the keyboard channel is absent.

use std::collections::VecDeque;

use decaf_simkernel::{Kernel, MmioDevice};

/// Data port.
pub const PORT_DATA: u64 = 0x60;
/// Status (read) / command (write) port.
pub const PORT_STATUS: u64 = 0x64;

/// Status: output buffer full (data available at 0x60).
pub const STATUS_OBF: u32 = 1 << 0;
/// Status: the available data came from the mouse.
pub const STATUS_AUX: u32 = 1 << 5;

/// Controller command: next data byte goes to the mouse.
pub const CMD_WRITE_MOUSE: u32 = 0xD4;

/// Mouse command: reset.
pub const MOUSE_RESET: u32 = 0xFF;
/// Mouse command: enable data reporting.
pub const MOUSE_ENABLE: u32 = 0xF4;
/// Mouse command: set sample rate (one argument follows).
pub const MOUSE_SET_RATE: u32 = 0xF3;
/// Mouse command: get device id.
pub const MOUSE_GET_ID: u32 = 0xF2;
/// Mouse response: acknowledge.
pub const MOUSE_ACK: u8 = 0xFA;
/// Mouse response: self-test passed.
pub const MOUSE_SELFTEST_OK: u8 = 0xAA;

/// The PS/2 mouse model.
pub struct PsMouseDevice {
    irq_line: u32,
    output: VecDeque<u8>,
    expect_mouse_byte: bool,
    expect_rate_arg: bool,
    reporting: bool,
    sample_rate: u8,
    /// Packets delivered since enable.
    pub packets_sent: u64,
}

impl PsMouseDevice {
    /// Creates a mouse raising `irq_line` (12 on PCs).
    pub fn new(irq_line: u32) -> Self {
        PsMouseDevice {
            irq_line,
            output: VecDeque::new(),
            expect_mouse_byte: false,
            expect_rate_arg: false,
            reporting: false,
            sample_rate: 100,
            packets_sent: 0,
        }
    }

    fn push_output(&mut self, kernel: &Kernel, bytes: &[u8]) {
        self.output.extend(bytes);
        kernel.raise_irq(self.irq_line);
    }

    fn mouse_command(&mut self, kernel: &Kernel, cmd: u32) {
        if self.expect_rate_arg {
            self.sample_rate = cmd as u8;
            self.expect_rate_arg = false;
            self.push_output(kernel, &[MOUSE_ACK]);
            return;
        }
        match cmd {
            MOUSE_RESET => {
                self.reporting = false;
                self.sample_rate = 100;
                self.push_output(kernel, &[MOUSE_ACK, MOUSE_SELFTEST_OK, 0x00]);
            }
            MOUSE_ENABLE => {
                self.reporting = true;
                self.push_output(kernel, &[MOUSE_ACK]);
            }
            MOUSE_SET_RATE => {
                self.expect_rate_arg = true;
                self.push_output(kernel, &[MOUSE_ACK]);
            }
            MOUSE_GET_ID => {
                self.push_output(kernel, &[MOUSE_ACK, 0x00]);
            }
            _ => self.push_output(kernel, &[MOUSE_ACK]),
        }
    }

    /// Injects a movement/button event; queued only while reporting.
    pub fn inject_move(&mut self, kernel: &Kernel, dx: i8, dy: i8, left_button: bool) {
        if !self.reporting {
            return;
        }
        // Standard 3-byte packet: [buttons|sign bits|1<<3][dx][dy].
        let mut b0: u8 = 1 << 3;
        if left_button {
            b0 |= 1;
        }
        if dx < 0 {
            b0 |= 1 << 4;
        }
        if dy < 0 {
            b0 |= 1 << 5;
        }
        self.packets_sent += 1;
        self.push_output(kernel, &[b0, dx as u8, dy as u8]);
    }

    /// Whether reporting is enabled.
    pub fn reporting(&self) -> bool {
        self.reporting
    }

    /// Current sample rate (Hz).
    pub fn sample_rate(&self) -> u8 {
        self.sample_rate
    }
}

#[allow(clippy::collapsible_match)] // port dispatch reads clearer with inner guards
impl MmioDevice for PsMouseDevice {
    fn read32(&mut self, _kernel: &Kernel, offset: u64) -> u32 {
        match offset {
            PORT_DATA => self.output.pop_front().map_or(0, u32::from),
            PORT_STATUS => {
                let mut st = 0;
                if !self.output.is_empty() {
                    st |= STATUS_OBF | STATUS_AUX;
                }
                st
            }
            _ => 0,
        }
    }

    fn write32(&mut self, kernel: &Kernel, offset: u64, value: u32) {
        match offset {
            PORT_STATUS => {
                if value == CMD_WRITE_MOUSE {
                    self.expect_mouse_byte = true;
                }
            }
            PORT_DATA => {
                if self.expect_mouse_byte {
                    self.expect_mouse_byte = false;
                    self.mouse_command(kernel, value);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send_mouse_cmd(k: &Kernel, dev: &mut PsMouseDevice, cmd: u32) {
        dev.write32(k, PORT_STATUS, CMD_WRITE_MOUSE);
        dev.write32(k, PORT_DATA, cmd);
    }

    fn drain(k: &Kernel, dev: &mut PsMouseDevice) -> Vec<u8> {
        let mut out = Vec::new();
        while dev.read32(k, PORT_STATUS) & STATUS_OBF != 0 {
            out.push(dev.read32(k, PORT_DATA) as u8);
        }
        out
    }

    #[test]
    fn reset_handshake() {
        let k = Kernel::new();
        let mut dev = PsMouseDevice::new(12);
        send_mouse_cmd(&k, &mut dev, MOUSE_RESET);
        assert!(k.irq_pending(12));
        assert_eq!(
            drain(&k, &mut dev),
            vec![MOUSE_ACK, MOUSE_SELFTEST_OK, 0x00]
        );
        assert!(!dev.reporting());
    }

    #[test]
    fn enable_then_packets_flow() {
        let k = Kernel::new();
        let mut dev = PsMouseDevice::new(12);
        // Moves before enable are discarded.
        dev.inject_move(&k, 5, -3, false);
        assert_eq!(dev.packets_sent, 0);

        send_mouse_cmd(&k, &mut dev, MOUSE_ENABLE);
        assert_eq!(drain(&k, &mut dev), vec![MOUSE_ACK]);
        assert!(dev.reporting());

        dev.inject_move(&k, 5, -3, true);
        let pkt = drain(&k, &mut dev);
        assert_eq!(pkt.len(), 3);
        assert_eq!(pkt[0] & 1, 1, "left button bit");
        assert_eq!(pkt[0] & (1 << 5), 1 << 5, "dy sign bit");
        assert_eq!(pkt[1], 5);
        assert_eq!(pkt[2] as i8, -3);
        assert_eq!(dev.packets_sent, 1);
    }

    #[test]
    fn set_sample_rate_two_phase() {
        let k = Kernel::new();
        let mut dev = PsMouseDevice::new(12);
        send_mouse_cmd(&k, &mut dev, MOUSE_SET_RATE);
        send_mouse_cmd(&k, &mut dev, 200);
        assert_eq!(drain(&k, &mut dev), vec![MOUSE_ACK, MOUSE_ACK]);
        assert_eq!(dev.sample_rate(), 200);
    }

    #[test]
    fn get_id_returns_standard_mouse() {
        let k = Kernel::new();
        let mut dev = PsMouseDevice::new(12);
        send_mouse_cmd(&k, &mut dev, MOUSE_GET_ID);
        assert_eq!(drain(&k, &mut dev), vec![MOUSE_ACK, 0x00]);
    }

    #[test]
    fn status_empty_when_drained() {
        let k = Kernel::new();
        let mut dev = PsMouseDevice::new(12);
        assert_eq!(dev.read32(&k, PORT_STATUS) & STATUS_OBF, 0);
        assert_eq!(dev.read32(&k, PORT_DATA), 0);
    }
}
