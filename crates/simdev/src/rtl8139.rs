//! Behavioural model of a Realtek RTL8139 fast-ethernet controller.
//!
//! The RTL8139 uses four fixed transmit slots (TSD0-3/TSAD0-3) and a
//! single contiguous receive ring that the hardware fills with
//! `[status u16][len u16][frame]` records. Implemented behaviour: reset,
//! MAC ID registers, transmit slots with OWN/TOK status, the RX ring with
//! CBR (current buffer write pointer), IMR/ISR (write-1-to-clear), and
//! internal loopback.
//!
//! Simplifications: all registers are accessed as aligned 32-bit words
//! (the real chip mixes widths); DMA addresses are offsets into one
//! shared [`DmaMemory`].

use decaf_simkernel::{costs, DmaMemory, Kernel, MmioDevice};

/// MAC address bytes 0-3.
pub const IDR0: u64 = 0x00;
/// MAC address bytes 4-5.
pub const IDR4: u64 = 0x04;
/// Transmit status of descriptor 0 (1-3 follow at +4).
pub const TSD0: u64 = 0x10;
/// Transmit start address of descriptor 0 (1-3 follow at +4).
pub const TSAD0: u64 = 0x20;
/// Receive buffer start address.
pub const RBSTART: u64 = 0x30;
/// Command register (32-bit here; bits as on hardware's 8-bit CR).
pub const CR: u64 = 0x38;
/// Interrupt mask register.
pub const IMR: u64 = 0x3C;
/// Interrupt status register (write 1 to clear).
pub const ISR: u64 = 0x40;
/// Current buffer register: device write offset into the RX ring.
pub const CBR: u64 = 0x44;

/// CR: reset.
pub const CR_RST: u32 = 1 << 4;
/// CR: receiver enable.
pub const CR_RE: u32 = 1 << 3;
/// CR: transmitter enable.
pub const CR_TE: u32 = 1 << 2;
/// TSD: transmit OK.
pub const TSD_TOK: u32 = 1 << 15;
/// TSD: host owns the slot (DMA complete).
pub const TSD_OWN: u32 = 1 << 13;
/// ISR/IMR: receive OK.
pub const INT_ROK: u32 = 1 << 0;
/// ISR/IMR: transmit OK.
pub const INT_TOK: u32 = 1 << 2;

/// Size of the receive ring, 8 KiB + 16 bytes like the common config.
pub const RX_RING_LEN: usize = 8 * 1024 + 16;

/// The RTL8139 device model.
pub struct Rtl8139Device {
    irq_line: u32,
    dma: DmaMemory,
    mac: [u8; 6],
    cr: u32,
    imr: u32,
    isr: u32,
    tsd: [u32; 4],
    tsad: [u32; 4],
    rbstart: u32,
    cbr: u32,
    tx_count: u64,
    rx_count: u64,
    /// Frames dropped for lack of ring space.
    pub rx_dropped: u64,
}

impl Rtl8139Device {
    /// Creates an RTL8139 with the given MAC, IRQ line and DMA window.
    pub fn new(mac: [u8; 6], irq_line: u32, dma: DmaMemory) -> Self {
        Rtl8139Device {
            irq_line,
            dma,
            mac,
            cr: 0,
            imr: 0,
            isr: 0,
            tsd: [TSD_OWN; 4],
            tsad: [0; 4],
            rbstart: 0,
            cbr: 0,
            tx_count: 0,
            rx_count: 0,
            rx_dropped: 0,
        }
    }

    fn assert_int(&mut self, kernel: &Kernel, cause: u32) {
        self.isr |= cause;
        if self.isr & self.imr != 0 {
            kernel.raise_irq(self.irq_line);
        }
    }

    /// Appends a frame to the RX ring in hardware record format.
    fn receive(&mut self, kernel: &Kernel, frame: &[u8]) {
        if self.cr & CR_RE == 0 {
            return;
        }
        let record_len = 4 + frame.len();
        if self.cbr as usize + record_len > RX_RING_LEN {
            // Simplified: no wrap handling; the driver resets CBR when it
            // drains the ring. Drop on overflow.
            self.rx_dropped += 1;
            return;
        }
        let base = self.rbstart as usize + self.cbr as usize;
        kernel.charge_kernel(costs::DMA_DESC_NS);
        // status: ROK (bit 0); then length including 4-byte CRC.
        self.dma
            .write_u32(base, 1 | (((frame.len() as u32 + 4) & 0xffff) << 16));
        self.dma.write_bytes(base + 4, frame);
        self.cbr += record_len as u32;
        // Records are 4-byte aligned on hardware.
        self.cbr = (self.cbr + 3) & !3;
        self.rx_count += 1;
        self.assert_int(kernel, INT_ROK);
    }

    /// Injects an externally received frame.
    pub fn inject_rx(&mut self, kernel: &Kernel, frame: &[u8]) {
        self.receive(kernel, frame);
    }

    /// Frames transmitted so far.
    pub fn frames_transmitted(&self) -> u64 {
        self.tx_count
    }

    /// Frames received into the ring so far.
    pub fn frames_received(&self) -> u64 {
        self.rx_count
    }
}

impl MmioDevice for Rtl8139Device {
    fn read32(&mut self, _kernel: &Kernel, offset: u64) -> u32 {
        match offset {
            IDR0 => u32::from_le_bytes([self.mac[0], self.mac[1], self.mac[2], self.mac[3]]),
            IDR4 => u32::from_le_bytes([self.mac[4], self.mac[5], 0, 0]),
            TSD0..=0x1C => self.tsd[((offset - TSD0) / 4) as usize],
            TSAD0..=0x2C => self.tsad[((offset - TSAD0) / 4) as usize],
            RBSTART => self.rbstart,
            CR => self.cr,
            IMR => self.imr,
            ISR => self.isr,
            CBR => self.cbr,
            _ => 0,
        }
    }

    fn write32(&mut self, kernel: &Kernel, offset: u64, value: u32) {
        match offset {
            TSD0..=0x1C => {
                let slot = ((offset - TSD0) / 4) as usize;
                // Writing the size with OWN cleared starts transmission.
                let len = (value & 0x1fff) as usize;
                if value & TSD_OWN == 0 && self.cr & CR_TE != 0 {
                    let addr = self.tsad[slot] as usize;
                    kernel.charge_kernel(costs::DMA_DESC_NS);
                    let frame = self.dma.read_bytes(addr, len);
                    self.tx_count += 1;
                    self.tsd[slot] = TSD_OWN | TSD_TOK | value;
                    self.assert_int(kernel, INT_TOK);
                    // Internal loopback.
                    self.receive(kernel, &frame);
                } else {
                    self.tsd[slot] = value;
                }
            }
            TSAD0..=0x2C => self.tsad[((offset - TSAD0) / 4) as usize] = value,
            RBSTART => self.rbstart = value,
            CR => {
                if value & CR_RST != 0 {
                    let mac = self.mac;
                    let irq = self.irq_line;
                    let dma = self.dma.clone();
                    *self = Rtl8139Device::new(mac, irq, dma);
                } else {
                    self.cr = value;
                }
            }
            IMR => self.imr = value,
            ISR => self.isr &= !value, // write 1 to clear
            CBR => self.cbr = value,   // model convenience: driver rewinds
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAC: [u8; 6] = [0x52, 0x54, 0x00, 0x12, 0x34, 0x56];

    fn setup() -> (Kernel, Rtl8139Device, DmaMemory) {
        let k = Kernel::new();
        let dma = DmaMemory::new(64 * 1024);
        let mut dev = Rtl8139Device::new(MAC, 10, dma.clone());
        let _ = &mut dev;
        (k, dev, dma)
    }

    #[test]
    fn mac_readable_from_idr() {
        let (k, mut dev, _) = setup();
        let lo = dev.read32(&k, IDR0).to_le_bytes();
        let hi = dev.read32(&k, IDR4).to_le_bytes();
        assert_eq!([lo[0], lo[1], lo[2], lo[3], hi[0], hi[1]], MAC);
    }

    #[test]
    fn transmit_sets_tok_and_loops_back() {
        let (k, mut dev, dma) = setup();
        dev.write32(&k, CR, CR_TE | CR_RE);
        dev.write32(&k, RBSTART, 0x4000);
        dev.write32(&k, IMR, INT_TOK | INT_ROK);
        dma.write_bytes(0x100, &[0xcd; 60]);
        dev.write32(&k, TSAD0, 0x100);
        dev.write32(&k, TSD0, 60); // OWN clear → transmit
        let tsd = dev.read32(&k, TSD0);
        assert!(tsd & TSD_TOK != 0 && tsd & TSD_OWN != 0);
        assert_eq!(dev.frames_transmitted(), 1);
        assert_eq!(dev.frames_received(), 1);
        // RX record: status word then frame.
        assert_eq!(dma.read_u32(0x4000) & 1, 1);
        assert_eq!((dma.read_u32(0x4000) >> 16) & 0xffff, 64); // len + CRC
        assert_eq!(dma.read_bytes(0x4004, 60), vec![0xcd; 60]);
        assert!(k.irq_pending(10));
    }

    #[test]
    fn isr_write_one_to_clear() {
        let (k, mut dev, dma) = setup();
        dev.write32(&k, CR, CR_TE | CR_RE);
        dev.write32(&k, RBSTART, 0x4000);
        dma.write_bytes(0x100, &[1; 60]);
        dev.write32(&k, TSAD0, 0x100);
        dev.write32(&k, TSD0, 60);
        let isr = dev.read32(&k, ISR);
        assert!(isr & INT_TOK != 0);
        dev.write32(&k, ISR, INT_TOK);
        assert_eq!(dev.read32(&k, ISR) & INT_TOK, 0);
        assert!(dev.read32(&k, ISR) & INT_ROK != 0, "ROK still latched");
    }

    #[test]
    fn rx_disabled_drops_silently() {
        let (k, mut dev, _) = setup();
        dev.write32(&k, CR, CR_TE); // RE off
        dev.inject_rx(&k, &[1; 40]);
        assert_eq!(dev.frames_received(), 0);
    }

    #[test]
    fn ring_overflow_drops() {
        let (k, mut dev, _) = setup();
        dev.write32(&k, CR, CR_RE);
        dev.write32(&k, RBSTART, 0);
        // Fill the ring with 1.5 KB frames until overflow.
        for _ in 0..8 {
            dev.inject_rx(&k, &[0; 1500]);
        }
        assert!(dev.rx_dropped > 0);
    }

    #[test]
    fn reset_restores_defaults() {
        let (k, mut dev, _) = setup();
        dev.write32(&k, IMR, 0xffff);
        dev.write32(&k, CR, CR_RST);
        assert_eq!(dev.read32(&k, IMR), 0);
        assert_eq!(dev.read32(&k, CR) & (CR_TE | CR_RE), 0);
        assert_eq!(dev.read32(&k, TSD0) & TSD_OWN, TSD_OWN);
    }
}
