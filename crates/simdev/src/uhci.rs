//! Behavioural model of a UHCI USB 1.0 host controller with an attached
//! bulk-only flash drive.
//!
//! Implemented behaviour: host-controller reset, run/stop, the frame list
//! in DMA memory (1024 dword entries, terminate bit 0), a simplified
//! transfer descriptor (four dwords: link, status, token, buffer), port
//! status with an attached device, completion interrupts through USBSTS,
//! and a sector-addressable flash drive reached through bulk endpoints.
//!
//! Simplifications: the schedule is walked to completion whenever the
//! controller is kicked (run bit written or a new frame list installed)
//! instead of once per 1 ms frame; queue heads are not modelled (TDs link
//! directly); the flash protocol is a two-command subset of bulk-only
//! transport (`W` = write sector, `R` = stage sector for reading).

use std::collections::HashMap;

use decaf_simkernel::{costs, DmaMemory, Kernel, MmioDevice};

/// USB command register.
pub const USBCMD: u64 = 0x00;
/// USB status register (write 1 to clear).
pub const USBSTS: u64 = 0x04;
/// USB interrupt enable.
pub const USBINTR: u64 = 0x08;
/// Frame number register.
pub const FRNUM: u64 = 0x0C;
/// Frame list base address.
pub const FRBASEADD: u64 = 0x10;
/// Port 1 status/control.
pub const PORTSC1: u64 = 0x14;

/// USBCMD: run/stop.
pub const CMD_RS: u32 = 1 << 0;
/// USBCMD: host controller reset.
pub const CMD_HCRESET: u32 = 1 << 1;
/// USBSTS: interrupt (transfer complete).
pub const STS_USBINT: u32 = 1 << 0;
/// USBSTS: host controller halted.
pub const STS_HCHALTED: u32 = 1 << 5;
/// PORTSC: device connected.
pub const PORT_CCS: u32 = 1 << 0;
/// PORTSC: port enabled.
pub const PORT_PE: u32 = 1 << 2;

/// TD status: active (device owns it).
pub const TD_ACTIVE: u32 = 1 << 23;
/// TD status: stalled (error).
pub const TD_STALLED: u32 = 1 << 22;
/// Frame-list/link terminate bit.
pub const LINK_TERMINATE: u32 = 1;

/// Bulk OUT endpoint of the flash drive.
pub const EP_BULK_OUT: u32 = 2;
/// Bulk IN endpoint of the flash drive.
pub const EP_BULK_IN: u32 = 1;
/// Flash sector size in bytes.
pub const SECTOR_SIZE: usize = 512;

/// Flash command byte: write the following sector payload.
pub const FLASH_CMD_WRITE: u8 = b'W';
/// Flash command byte: stage a sector for the next IN transfer.
pub const FLASH_CMD_READ: u8 = b'R';

/// A bulk-only flash drive: a sector store plus a staged read.
#[derive(Default)]
struct FlashDrive {
    sectors: HashMap<u32, Vec<u8>>,
    staged_read: Option<u32>,
    writes: u64,
    reads: u64,
}

impl FlashDrive {
    fn handle_out(&mut self, data: &[u8]) -> Result<(), ()> {
        match data.first() {
            Some(&FLASH_CMD_WRITE) if data.len() >= 5 => {
                let sector = u32::from_le_bytes([data[1], data[2], data[3], data[4]]);
                self.sectors.insert(sector, data[5..].to_vec());
                self.writes += 1;
                Ok(())
            }
            Some(&FLASH_CMD_READ) if data.len() >= 5 => {
                let sector = u32::from_le_bytes([data[1], data[2], data[3], data[4]]);
                self.staged_read = Some(sector);
                Ok(())
            }
            _ => Err(()),
        }
    }

    fn handle_in(&mut self) -> Result<Vec<u8>, ()> {
        let sector = self.staged_read.take().ok_or(())?;
        self.reads += 1;
        Ok(self
            .sectors
            .get(&sector)
            .cloned()
            .unwrap_or_else(|| vec![0; SECTOR_SIZE]))
    }
}

/// The UHCI device model.
pub struct UhciDevice {
    irq_line: u32,
    dma: DmaMemory,
    usbcmd: u32,
    usbsts: u32,
    usbintr: u32,
    frnum: u32,
    frbase: u32,
    frbase_installed: bool,
    portsc1: u32,
    flash: FlashDrive,
    /// Transfer descriptors completed.
    pub tds_completed: u64,
}

impl UhciDevice {
    /// Creates a UHCI controller with an attached flash drive.
    pub fn new(irq_line: u32, dma: DmaMemory) -> Self {
        UhciDevice {
            irq_line,
            dma,
            usbcmd: 0,
            usbsts: STS_HCHALTED,
            usbintr: 0,
            frnum: 0,
            frbase: 0,
            frbase_installed: false,
            portsc1: PORT_CCS, // flash drive present
            flash: FlashDrive::default(),
            tds_completed: 0,
        }
    }

    /// Sectors currently stored on the flash drive.
    pub fn flash_sector_count(&self) -> usize {
        self.flash.sectors.len()
    }

    /// Sector contents, if written.
    pub fn flash_sector(&self, sector: u32) -> Option<Vec<u8>> {
        self.flash.sectors.get(&sector).cloned()
    }

    /// Completed write commands.
    pub fn flash_writes(&self) -> u64 {
        self.flash.writes
    }

    /// Completed read commands.
    pub fn flash_reads(&self) -> u64 {
        self.flash.reads
    }

    /// Places `data` in a sector directly, bypassing the bus — models
    /// media that already holds an archive (streaming-read workloads
    /// start from preloaded flash instead of paying write traffic
    /// inside their measurement window).
    pub fn preload_sector(&mut self, sector: u32, data: Vec<u8>) {
        self.flash.sectors.insert(sector, data);
    }

    /// Walks the frame list, executing every active TD chain.
    fn run_schedule(&mut self, kernel: &Kernel) {
        if self.usbcmd & CMD_RS == 0 || !self.frbase_installed {
            return;
        }
        let mut completed = false;
        for frame in 0..1024usize {
            let entry = self.dma.read_u32(self.frbase as usize + frame * 4);
            if entry & LINK_TERMINATE != 0 {
                continue;
            }
            let mut td_addr = (entry & !0xf) as usize;
            // Bounded walk to tolerate malformed schedules.
            for _ in 0..256 {
                let link = self.dma.read_u32(td_addr);
                let status = self.dma.read_u32(td_addr + 4);
                let token = self.dma.read_u32(td_addr + 8);
                let buffer = self.dma.read_u32(td_addr + 12) as usize;
                if status & TD_ACTIVE != 0 {
                    kernel.charge_kernel(costs::DMA_DESC_NS);
                    let endpoint = (token >> 15) & 0xf;
                    let max_len = ((token >> 21) & 0x7ff) as usize;
                    let len = if max_len == 0x7ff { 0 } else { max_len + 1 };
                    let result = if endpoint == EP_BULK_OUT {
                        let data = self.dma.read_bytes(buffer, len);
                        self.flash.handle_out(&data).map(|_| len)
                    } else if endpoint == EP_BULK_IN {
                        self.flash.handle_in().map(|data| {
                            let n = data.len().min(len.max(data.len()));
                            self.dma.write_bytes(buffer, &data);
                            n
                        })
                    } else {
                        Err(())
                    };
                    let new_status = match result {
                        Ok(actual) => (actual as u32) & 0x7ff,
                        Err(()) => TD_STALLED,
                    };
                    self.dma.write_u32(td_addr + 4, new_status);
                    self.tds_completed += 1;
                    completed = true;
                }
                if link & LINK_TERMINATE != 0 {
                    break;
                }
                td_addr = (link & !0xf) as usize;
            }
            self.frnum = frame as u32;
        }
        if completed {
            self.usbsts |= STS_USBINT;
            if self.usbintr != 0 {
                kernel.raise_irq(self.irq_line);
            }
        }
    }
}

impl MmioDevice for UhciDevice {
    fn read32(&mut self, _kernel: &Kernel, offset: u64) -> u32 {
        match offset {
            USBCMD => self.usbcmd,
            USBSTS => self.usbsts,
            USBINTR => self.usbintr,
            FRNUM => self.frnum,
            FRBASEADD => self.frbase,
            PORTSC1 => self.portsc1,
            _ => 0,
        }
    }

    fn write32(&mut self, kernel: &Kernel, offset: u64, value: u32) {
        match offset {
            USBCMD => {
                if value & CMD_HCRESET != 0 {
                    let irq = self.irq_line;
                    let dma = self.dma.clone();
                    let flash = std::mem::take(&mut self.flash);
                    *self = UhciDevice::new(irq, dma);
                    self.flash = flash; // media survives controller reset
                    return;
                }
                self.usbcmd = value;
                if value & CMD_RS != 0 {
                    self.usbsts &= !STS_HCHALTED;
                    self.run_schedule(kernel);
                } else {
                    self.usbsts |= STS_HCHALTED;
                }
            }
            USBSTS => self.usbsts &= !value,
            USBINTR => self.usbintr = value,
            FRNUM => self.frnum = value & 0x3ff,
            FRBASEADD => {
                self.frbase = value;
                self.frbase_installed = true;
                self.run_schedule(kernel);
            }
            PORTSC1 => {
                // Software may enable the port; connect status is ours.
                self.portsc1 = (self.portsc1 & PORT_CCS) | (value & PORT_PE);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Kernel, UhciDevice, DmaMemory) {
        let k = Kernel::new();
        let dma = DmaMemory::new(128 * 1024);
        let dev = UhciDevice::new(9, dma.clone());
        (k, dev, dma)
    }

    /// Builds a single-TD schedule in frame 0.
    fn build_td(dma: &DmaMemory, td_at: usize, endpoint: u32, buf: usize, len: usize) {
        dma.write_u32(td_at, LINK_TERMINATE); // link: end of chain
        dma.write_u32(td_at + 4, TD_ACTIVE);
        let maxlen = if len == 0 {
            0x7ff
        } else {
            (len - 1) as u32 & 0x7ff
        };
        dma.write_u32(td_at + 8, (maxlen << 21) | (endpoint << 15));
        dma.write_u32(td_at + 12, buf as u32);
    }

    fn install_frame_list(k: &Kernel, dev: &mut UhciDevice, dma: &DmaMemory, td_at: usize) {
        // Frame list at 0x0; all terminate except frame 0.
        for f in 0..1024 {
            dma.write_u32(f * 4, LINK_TERMINATE);
        }
        dma.write_u32(0, td_at as u32);
        dev.write32(k, FRBASEADD, 0);
    }

    #[test]
    fn port_reports_connected_device() {
        let (k, mut dev, _) = setup();
        assert!(dev.read32(&k, PORTSC1) & PORT_CCS != 0);
        dev.write32(&k, PORTSC1, PORT_PE);
        assert!(dev.read32(&k, PORTSC1) & PORT_PE != 0);
    }

    #[test]
    fn bulk_out_writes_flash_sector() {
        let (k, mut dev, dma) = setup();
        dev.write32(&k, USBINTR, 1);
        // Payload: 'W' + sector 7 + 512 bytes of 0x5a at buffer 0x6000.
        let mut payload = vec![FLASH_CMD_WRITE];
        payload.extend_from_slice(&7u32.to_le_bytes());
        payload.extend_from_slice(&[0x5a; SECTOR_SIZE]);
        dma.write_bytes(0x6000, &payload);
        build_td(&dma, 0x2000, EP_BULK_OUT, 0x6000, payload.len());
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);

        assert_eq!(dev.flash_sector(7).unwrap(), vec![0x5a; SECTOR_SIZE]);
        assert_eq!(dev.tds_completed, 1);
        assert!(dev.read32(&k, USBSTS) & STS_USBINT != 0);
        assert!(k.irq_pending(9));
        // TD no longer active.
        assert_eq!(dma.read_u32(0x2004) & TD_ACTIVE, 0);
    }

    #[test]
    fn bulk_read_roundtrip() {
        let (k, mut dev, dma) = setup();
        // First write sector 3.
        let mut w = vec![FLASH_CMD_WRITE];
        w.extend_from_slice(&3u32.to_le_bytes());
        w.extend_from_slice(&[0xa7; SECTOR_SIZE]);
        dma.write_bytes(0x6000, &w);
        build_td(&dma, 0x2000, EP_BULK_OUT, 0x6000, w.len());
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);

        // Then stage a read and fetch it via IN.
        let mut r = vec![FLASH_CMD_READ];
        r.extend_from_slice(&3u32.to_le_bytes());
        dma.write_bytes(0x6000, &r);
        build_td(&dma, 0x2000, EP_BULK_OUT, 0x6000, r.len());
        dma.write_u32(0x2000, 0x2010); // link to the IN TD
        build_td(&dma, 0x2010, EP_BULK_IN, 0x7000, SECTOR_SIZE);
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);

        assert_eq!(dma.read_bytes(0x7000, SECTOR_SIZE), vec![0xa7; SECTOR_SIZE]);
    }

    #[test]
    fn in_without_staged_read_stalls() {
        let (k, mut dev, dma) = setup();
        build_td(&dma, 0x2000, EP_BULK_IN, 0x7000, SECTOR_SIZE);
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);
        assert!(dma.read_u32(0x2004) & TD_STALLED != 0);
    }

    #[test]
    fn halted_controller_ignores_schedule() {
        let (k, mut dev, dma) = setup();
        build_td(&dma, 0x2000, EP_BULK_OUT, 0x6000, 5);
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        // RS never set.
        assert_eq!(dev.tds_completed, 0);
        assert!(dev.read32(&k, USBSTS) & STS_HCHALTED != 0);
    }

    #[test]
    fn reset_keeps_flash_media() {
        let (k, mut dev, dma) = setup();
        let mut w = vec![FLASH_CMD_WRITE];
        w.extend_from_slice(&1u32.to_le_bytes());
        w.extend_from_slice(&[9; SECTOR_SIZE]);
        dma.write_bytes(0x6000, &w);
        build_td(&dma, 0x2000, EP_BULK_OUT, 0x6000, w.len());
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);
        assert_eq!(dev.flash_sector_count(), 1);
        dev.write32(&k, USBCMD, CMD_HCRESET);
        assert_eq!(dev.flash_sector_count(), 1, "media outlives the controller");
        assert!(dev.read32(&k, USBSTS) & STS_HCHALTED != 0);
    }
}
