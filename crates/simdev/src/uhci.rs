//! Behavioural model of a UHCI USB 1.0 host controller with an attached
//! bulk-only flash drive.
//!
//! Implemented behaviour: host-controller reset, run/stop, the frame list
//! in DMA memory (1024 dword entries, terminate bit 0), a simplified
//! transfer descriptor (four dwords: link, status, token, buffer), port
//! status with an attached device, completion interrupts through USBSTS,
//! and a sector-addressable flash drive reached through bulk endpoints.
//!
//! Simplifications: the schedule is walked to completion whenever the
//! controller is kicked (run bit written or a new frame list installed)
//! instead of once per 1 ms frame; queue heads are not modelled (TDs link
//! directly); the flash protocol is a two-command subset of bulk-only
//! transport (`W` = write sector, `R` = stage sector for reading).
//!
//! The drive exposes [`MAX_LUNS`] logical units, each with its own
//! sector store and staged-read state, addressed by per-LUN endpoint
//! pairs ([`ep_bulk_out`]/[`ep_bulk_in`]) — real bulk-only devices put
//! the LUN in the CBW; the model spends endpoint numbers instead so a
//! TD's 4-bit endpoint field still names the full target. Endpoints
//! [`EP_BULK_OUT`]/[`EP_BULK_IN`] remain LUN 0, so single-LUN callers
//! are unchanged.

use std::collections::HashMap;

use decaf_simkernel::{costs, DmaMemory, Kernel, MmioDevice};

/// USB command register.
pub const USBCMD: u64 = 0x00;
/// USB status register (write 1 to clear).
pub const USBSTS: u64 = 0x04;
/// USB interrupt enable.
pub const USBINTR: u64 = 0x08;
/// Frame number register.
pub const FRNUM: u64 = 0x0C;
/// Frame list base address.
pub const FRBASEADD: u64 = 0x10;
/// Port 1 status/control.
pub const PORTSC1: u64 = 0x14;

/// USBCMD: run/stop.
pub const CMD_RS: u32 = 1 << 0;
/// USBCMD: host controller reset.
pub const CMD_HCRESET: u32 = 1 << 1;
/// USBSTS: interrupt (transfer complete).
pub const STS_USBINT: u32 = 1 << 0;
/// USBSTS: host controller halted.
pub const STS_HCHALTED: u32 = 1 << 5;
/// PORTSC: device connected.
pub const PORT_CCS: u32 = 1 << 0;
/// PORTSC: port enabled.
pub const PORT_PE: u32 = 1 << 2;

/// TD status: active (device owns it).
pub const TD_ACTIVE: u32 = 1 << 23;
/// TD status: stalled (error).
pub const TD_STALLED: u32 = 1 << 22;
/// TD token: more TDs of the same transfer follow (scatter-gather
/// chaining). On OUT the device accumulates the TD's bytes and defers
/// command execution until a TD *without* this bit arrives; on IN the
/// device streams the staged data across consecutive TDs, retaining the
/// unsent remainder only while every TD fills completely — a short
/// packet terminates the transfer, exactly as on a real bus. TDs
/// without the bit behave exactly as before, so single-TD callers are
/// unchanged. (Stands in for the data-toggle bit real UHCI spends on
/// packet sequencing — this model has no packet loss to sequence
/// against.)
pub const TD_TOKEN_MORE: u32 = 1 << 19;
/// Frame-list/link terminate bit.
pub const LINK_TERMINATE: u32 = 1;

/// Bulk OUT endpoint of the flash drive (LUN 0).
pub const EP_BULK_OUT: u32 = 2;
/// Bulk IN endpoint of the flash drive (LUN 0).
pub const EP_BULK_IN: u32 = 1;
/// Flash sector size in bytes.
pub const SECTOR_SIZE: usize = 512;
/// Logical units on the flash drive. Each LUN owns an endpoint pair —
/// OUT on `EP_BULK_OUT + 2·lun`, IN on `EP_BULK_IN + 2·lun` — and the
/// TD token's endpoint field is 4 bits, so seven LUNs exhaust the
/// endpoint space (OUT endpoints 2..=14, IN endpoints 1..=13).
pub const MAX_LUNS: usize = 7;

/// The bulk OUT endpoint of logical unit `lun`.
///
/// # Panics
/// Panics if `lun` is not below [`MAX_LUNS`].
pub fn ep_bulk_out(lun: usize) -> u32 {
    assert!(lun < MAX_LUNS, "LUN {lun} outside 0..{MAX_LUNS}");
    EP_BULK_OUT + 2 * lun as u32
}

/// The bulk IN endpoint of logical unit `lun`.
///
/// # Panics
/// Panics if `lun` is not below [`MAX_LUNS`].
pub fn ep_bulk_in(lun: usize) -> u32 {
    assert!(lun < MAX_LUNS, "LUN {lun} outside 0..{MAX_LUNS}");
    EP_BULK_IN + 2 * lun as u32
}

/// The logical unit an endpoint addresses (IN endpoints are odd, OUT
/// endpoints even — both pairs stride by 2), or `None` for endpoint 0
/// (control) and endpoints beyond the LUN space.
pub fn lun_of_endpoint(endpoint: u32) -> Option<usize> {
    let lun = match endpoint {
        0 => return None,
        ep if ep % 2 == 0 => ((ep - EP_BULK_OUT) / 2) as usize,
        ep => ((ep - EP_BULK_IN) / 2) as usize,
    };
    (lun < MAX_LUNS).then_some(lun)
}

/// Flash command byte: write the following sector payload.
pub const FLASH_CMD_WRITE: u8 = b'W';
/// Flash command byte: stage a sector for the next IN transfer.
pub const FLASH_CMD_READ: u8 = b'R';

/// A bulk-only flash drive: a sector store plus a staged read, plus the
/// per-LUN scatter-gather reassembly state ([`TD_TOKEN_MORE`]).
#[derive(Default)]
struct FlashDrive {
    sectors: HashMap<u32, Vec<u8>>,
    staged_read: Option<u32>,
    /// OUT bytes accumulated from `MORE`-marked TDs, awaiting the
    /// chain-final TD that executes them as one command.
    out_accum: Vec<u8>,
    /// Unsent remainder of a staged read being streamed across a
    /// `MORE`-marked IN chain. `Some(vec![])` is meaningful: an
    /// exactly-filled TD leaves an empty remainder whose next TD reads
    /// zero bytes — the ZLP that tells the host the transfer is over.
    in_stream: Option<Vec<u8>>,
    writes: u64,
    reads: u64,
}

impl FlashDrive {
    fn handle_out(&mut self, data: &[u8]) -> Result<(), ()> {
        match data.first() {
            Some(&FLASH_CMD_WRITE) if data.len() >= 5 => {
                let sector = u32::from_le_bytes([data[1], data[2], data[3], data[4]]);
                self.sectors.insert(sector, data[5..].to_vec());
                self.writes += 1;
                Ok(())
            }
            Some(&FLASH_CMD_READ) if data.len() >= 5 => {
                let sector = u32::from_le_bytes([data[1], data[2], data[3], data[4]]);
                self.staged_read = Some(sector);
                Ok(())
            }
            _ => Err(()),
        }
    }

    fn handle_in(&mut self) -> Result<Vec<u8>, ()> {
        let sector = self.staged_read.take().ok_or(())?;
        self.reads += 1;
        Ok(self
            .sectors
            .get(&sector)
            .cloned()
            .unwrap_or_else(|| vec![0; SECTOR_SIZE]))
    }
}

/// The UHCI device model.
pub struct UhciDevice {
    irq_line: u32,
    dma: DmaMemory,
    usbcmd: u32,
    usbsts: u32,
    usbintr: u32,
    frnum: u32,
    frbase: u32,
    frbase_installed: bool,
    portsc1: u32,
    /// One flash drive per logical unit, each with its own sector store
    /// *and its own staged-read state* — concurrent per-LUN streams must
    /// not clobber each other's `R`-command staging, which is what lets
    /// the sharded build interleave LUNs safely.
    luns: Vec<FlashDrive>,
    /// Transfer descriptors completed.
    pub tds_completed: u64,
}

impl UhciDevice {
    /// Creates a UHCI controller with an attached [`MAX_LUNS`]-unit
    /// flash drive.
    pub fn new(irq_line: u32, dma: DmaMemory) -> Self {
        UhciDevice {
            irq_line,
            dma,
            usbcmd: 0,
            usbsts: STS_HCHALTED,
            usbintr: 0,
            frnum: 0,
            frbase: 0,
            frbase_installed: false,
            portsc1: PORT_CCS, // flash drive present
            luns: (0..MAX_LUNS).map(|_| FlashDrive::default()).collect(),
            tds_completed: 0,
        }
    }

    /// Logical units on the attached drive.
    pub fn lun_count(&self) -> usize {
        self.luns.len()
    }

    /// Sectors currently stored across every LUN.
    pub fn flash_sector_count(&self) -> usize {
        self.luns.iter().map(|l| l.sectors.len()).sum()
    }

    /// LUN 0 sector contents, if written.
    pub fn flash_sector(&self, sector: u32) -> Option<Vec<u8>> {
        self.flash_sector_lun(0, sector)
    }

    /// One LUN's sector contents, if written.
    pub fn flash_sector_lun(&self, lun: usize, sector: u32) -> Option<Vec<u8>> {
        self.luns.get(lun)?.sectors.get(&sector).cloned()
    }

    /// Completed write commands across every LUN.
    pub fn flash_writes(&self) -> u64 {
        self.luns.iter().map(|l| l.writes).sum()
    }

    /// Completed read commands across every LUN.
    pub fn flash_reads(&self) -> u64 {
        self.luns.iter().map(|l| l.reads).sum()
    }

    /// Places `data` in a LUN 0 sector directly, bypassing the bus —
    /// models media that already holds an archive (streaming-read
    /// workloads start from preloaded flash instead of paying write
    /// traffic inside their measurement window).
    pub fn preload_sector(&mut self, sector: u32, data: Vec<u8>) {
        self.preload_sector_lun(0, sector, data);
    }

    /// Places `data` in a sector of one LUN directly, bypassing the bus.
    ///
    /// # Panics
    /// Panics if `lun` is not below [`MAX_LUNS`].
    pub fn preload_sector_lun(&mut self, lun: usize, sector: u32, data: Vec<u8>) {
        self.luns[lun].sectors.insert(sector, data);
    }

    /// A sorted snapshot of the entire media: `(lun, sector, contents)`
    /// for every stored sector. The differential oracle compares these
    /// across driver builds — two hostings of the same workload must
    /// leave byte-identical flash.
    pub fn flash_contents(&self) -> Vec<(usize, u32, Vec<u8>)> {
        let mut out: Vec<(usize, u32, Vec<u8>)> = self
            .luns
            .iter()
            .enumerate()
            .flat_map(|(lun, drive)| {
                drive
                    .sectors
                    .iter()
                    .map(move |(&sector, data)| (lun, sector, data.clone()))
            })
            .collect();
        out.sort_by_key(|&(lun, sector, _)| (lun, sector));
        out
    }

    /// Walks the frame list, executing every active TD chain.
    fn run_schedule(&mut self, kernel: &Kernel) {
        if self.usbcmd & CMD_RS == 0 || !self.frbase_installed {
            return;
        }
        let mut completed = false;
        for frame in 0..1024usize {
            let entry = self.dma.read_u32(self.frbase as usize + frame * 4);
            if entry & LINK_TERMINATE != 0 {
                continue;
            }
            let mut td_addr = (entry & !0xf) as usize;
            // Bounded walk to tolerate malformed schedules.
            for _ in 0..256 {
                let link = self.dma.read_u32(td_addr);
                let status = self.dma.read_u32(td_addr + 4);
                let token = self.dma.read_u32(td_addr + 8);
                let buffer = self.dma.read_u32(td_addr + 12) as usize;
                if status & TD_ACTIVE != 0 {
                    kernel.charge_kernel(costs::DMA_DESC_NS);
                    let endpoint = (token >> 15) & 0xf;
                    let more = token & TD_TOKEN_MORE != 0;
                    let max_len = ((token >> 21) & 0x7ff) as usize;
                    let len = if max_len == 0x7ff { 0 } else { max_len + 1 };
                    // Each LUN owns an endpoint pair: odd endpoints are
                    // IN, even (non-zero) endpoints OUT, striding by 2.
                    let result = match lun_of_endpoint(endpoint) {
                        Some(lun) if endpoint.is_multiple_of(2) => {
                            let data = self.dma.read_bytes(buffer, len);
                            let drive = &mut self.luns[lun];
                            if more {
                                // Mid-chain: accumulate, execute later.
                                drive.out_accum.extend_from_slice(&data);
                                Ok(len)
                            } else if drive.out_accum.is_empty() {
                                drive.handle_out(&data).map(|_| len)
                            } else {
                                // Chain-final TD: the accumulated bytes
                                // plus this TD's are one flash command.
                                drive.out_accum.extend_from_slice(&data);
                                let cmd = std::mem::take(&mut drive.out_accum);
                                drive.handle_out(&cmd).map(|_| len)
                            }
                        }
                        Some(lun) => {
                            let staged = match self.luns[lun].in_stream.take() {
                                Some(stream) => Ok(stream),
                                None => self.luns[lun].handle_in(),
                            };
                            staged.map(|data| {
                                // The TD's maxlen bounds the transfer: a
                                // staged sector longer than the buffer
                                // the TD names is truncated, never
                                // written past it — and `actual` reports
                                // the truncated length, honouring the TD
                                // contract the OUT path enforces via its
                                // read window. With MORE set the
                                // remainder streams into the next TD of
                                // the chain — but only after a *full*
                                // packet: a short packet terminates the
                                // transfer and drops the stream, like a
                                // real bulk pipe.
                                let n = data.len().min(len);
                                self.dma.write_bytes(buffer, &data[..n]);
                                if more && n == len {
                                    self.luns[lun].in_stream = Some(data[n..].to_vec());
                                }
                                n
                            })
                        }
                        None => Err(()),
                    };
                    let new_status = match result {
                        Ok(actual) => (actual as u32) & 0x7ff,
                        Err(()) => TD_STALLED,
                    };
                    self.dma.write_u32(td_addr + 4, new_status);
                    self.tds_completed += 1;
                    completed = true;
                }
                if link & LINK_TERMINATE != 0 {
                    break;
                }
                td_addr = (link & !0xf) as usize;
            }
            self.frnum = frame as u32;
        }
        if completed {
            self.usbsts |= STS_USBINT;
            if self.usbintr != 0 {
                kernel.raise_irq(self.irq_line);
            }
        }
    }
}

impl MmioDevice for UhciDevice {
    fn read32(&mut self, _kernel: &Kernel, offset: u64) -> u32 {
        match offset {
            USBCMD => self.usbcmd,
            USBSTS => self.usbsts,
            USBINTR => self.usbintr,
            FRNUM => self.frnum,
            FRBASEADD => self.frbase,
            PORTSC1 => self.portsc1,
            _ => 0,
        }
    }

    fn write32(&mut self, kernel: &Kernel, offset: u64, value: u32) {
        match offset {
            USBCMD => {
                if value & CMD_HCRESET != 0 {
                    let irq = self.irq_line;
                    let dma = self.dma.clone();
                    let luns = std::mem::take(&mut self.luns);
                    *self = UhciDevice::new(irq, dma);
                    self.luns = luns; // media survives controller reset
                    return;
                }
                self.usbcmd = value;
                if value & CMD_RS != 0 {
                    self.usbsts &= !STS_HCHALTED;
                    self.run_schedule(kernel);
                } else {
                    self.usbsts |= STS_HCHALTED;
                }
            }
            USBSTS => self.usbsts &= !value,
            USBINTR => self.usbintr = value,
            FRNUM => self.frnum = value & 0x3ff,
            FRBASEADD => {
                self.frbase = value;
                self.frbase_installed = true;
                self.run_schedule(kernel);
            }
            PORTSC1 => {
                // Software may enable the port; connect status is ours.
                self.portsc1 = (self.portsc1 & PORT_CCS) | (value & PORT_PE);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Kernel, UhciDevice, DmaMemory) {
        let k = Kernel::new();
        let dma = DmaMemory::new(128 * 1024);
        let dev = UhciDevice::new(9, dma.clone());
        (k, dev, dma)
    }

    /// Builds a single-TD schedule in frame 0.
    fn build_td(dma: &DmaMemory, td_at: usize, endpoint: u32, buf: usize, len: usize) {
        build_td_flags(dma, td_at, endpoint, buf, len, 0);
    }

    /// Builds a TD with extra token bits (e.g. [`TD_TOKEN_MORE`]).
    fn build_td_flags(
        dma: &DmaMemory,
        td_at: usize,
        endpoint: u32,
        buf: usize,
        len: usize,
        token_flags: u32,
    ) {
        dma.write_u32(td_at, LINK_TERMINATE); // link: end of chain
        dma.write_u32(td_at + 4, TD_ACTIVE);
        let maxlen = if len == 0 {
            0x7ff
        } else {
            (len - 1) as u32 & 0x7ff
        };
        dma.write_u32(td_at + 8, (maxlen << 21) | (endpoint << 15) | token_flags);
        dma.write_u32(td_at + 12, buf as u32);
    }

    fn install_frame_list(k: &Kernel, dev: &mut UhciDevice, dma: &DmaMemory, td_at: usize) {
        // Frame list at 0x0; all terminate except frame 0.
        for f in 0..1024 {
            dma.write_u32(f * 4, LINK_TERMINATE);
        }
        dma.write_u32(0, td_at as u32);
        dev.write32(k, FRBASEADD, 0);
    }

    #[test]
    fn port_reports_connected_device() {
        let (k, mut dev, _) = setup();
        assert!(dev.read32(&k, PORTSC1) & PORT_CCS != 0);
        dev.write32(&k, PORTSC1, PORT_PE);
        assert!(dev.read32(&k, PORTSC1) & PORT_PE != 0);
    }

    #[test]
    fn bulk_out_writes_flash_sector() {
        let (k, mut dev, dma) = setup();
        dev.write32(&k, USBINTR, 1);
        // Payload: 'W' + sector 7 + 512 bytes of 0x5a at buffer 0x6000.
        let mut payload = vec![FLASH_CMD_WRITE];
        payload.extend_from_slice(&7u32.to_le_bytes());
        payload.extend_from_slice(&[0x5a; SECTOR_SIZE]);
        dma.write_bytes(0x6000, &payload);
        build_td(&dma, 0x2000, EP_BULK_OUT, 0x6000, payload.len());
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);

        assert_eq!(dev.flash_sector(7).unwrap(), vec![0x5a; SECTOR_SIZE]);
        assert_eq!(dev.tds_completed, 1);
        assert!(dev.read32(&k, USBSTS) & STS_USBINT != 0);
        assert!(k.irq_pending(9));
        // TD no longer active.
        assert_eq!(dma.read_u32(0x2004) & TD_ACTIVE, 0);
    }

    #[test]
    fn bulk_read_roundtrip() {
        let (k, mut dev, dma) = setup();
        // First write sector 3.
        let mut w = vec![FLASH_CMD_WRITE];
        w.extend_from_slice(&3u32.to_le_bytes());
        w.extend_from_slice(&[0xa7; SECTOR_SIZE]);
        dma.write_bytes(0x6000, &w);
        build_td(&dma, 0x2000, EP_BULK_OUT, 0x6000, w.len());
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);

        // Then stage a read and fetch it via IN.
        let mut r = vec![FLASH_CMD_READ];
        r.extend_from_slice(&3u32.to_le_bytes());
        dma.write_bytes(0x6000, &r);
        build_td(&dma, 0x2000, EP_BULK_OUT, 0x6000, r.len());
        dma.write_u32(0x2000, 0x2010); // link to the IN TD
        build_td(&dma, 0x2010, EP_BULK_IN, 0x7000, SECTOR_SIZE);
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);

        assert_eq!(dma.read_bytes(0x7000, SECTOR_SIZE), vec![0xa7; SECTOR_SIZE]);
    }

    #[test]
    fn in_td_maxlen_truncates_a_longer_staged_sector() {
        // The TD contract: the device must never DMA past the buffer
        // the TD names. A 512-byte staged sector read through a
        // 64-byte IN TD delivers exactly 64 bytes, reports actual=64,
        // and leaves the bytes beyond the buffer untouched.
        let (k, mut dev, dma) = setup();
        let mut w = vec![FLASH_CMD_WRITE];
        w.extend_from_slice(&6u32.to_le_bytes());
        w.extend_from_slice(&[0xee; SECTOR_SIZE]);
        dma.write_bytes(0x6000, &w);
        build_td(&dma, 0x2000, EP_BULK_OUT, 0x6000, w.len());
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);

        let mut r = vec![FLASH_CMD_READ];
        r.extend_from_slice(&6u32.to_le_bytes());
        dma.write_bytes(0x6000, &r);
        build_td(&dma, 0x2000, EP_BULK_OUT, 0x6000, r.len());
        dma.write_u32(0x2000, 0x2010);
        build_td(&dma, 0x2010, EP_BULK_IN, 0x7000, 64);
        dma.write_bytes(0x7000 + 64, &[0u8; 16]); // guard canary
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);

        assert_eq!(dma.read_bytes(0x7000, 64), vec![0xee; 64]);
        assert_eq!(dma.read_bytes(0x7000 + 64, 16), vec![0u8; 16], "overrun");
        assert_eq!(
            dma.read_u32(0x2010 + 4) & 0x7ff,
            64,
            "actual reports the truncated length"
        );
    }

    #[test]
    fn in_without_staged_read_stalls() {
        let (k, mut dev, dma) = setup();
        build_td(&dma, 0x2000, EP_BULK_IN, 0x7000, SECTOR_SIZE);
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);
        assert!(dma.read_u32(0x2004) & TD_STALLED != 0);
    }

    #[test]
    fn halted_controller_ignores_schedule() {
        let (k, mut dev, dma) = setup();
        build_td(&dma, 0x2000, EP_BULK_OUT, 0x6000, 5);
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        // RS never set.
        assert_eq!(dev.tds_completed, 0);
        assert!(dev.read32(&k, USBSTS) & STS_HCHALTED != 0);
    }

    #[test]
    fn luns_have_independent_stores_and_staged_reads() {
        let (k, mut dev, dma) = setup();
        assert_eq!(dev.lun_count(), MAX_LUNS);
        assert_eq!(lun_of_endpoint(EP_BULK_OUT), Some(0));
        assert_eq!(lun_of_endpoint(EP_BULK_IN), Some(0));
        assert_eq!(lun_of_endpoint(ep_bulk_out(3)), Some(3));
        assert_eq!(lun_of_endpoint(ep_bulk_in(6)), Some(6));
        assert_eq!(lun_of_endpoint(0), None, "control endpoint is no LUN");
        assert_eq!(lun_of_endpoint(15), None, "beyond the LUN space");

        // Write sector 4 on LUN 0 and LUN 2 with different fill bytes.
        for (lun, fill) in [(0usize, 0x11u8), (2, 0x22)] {
            let mut w = vec![FLASH_CMD_WRITE];
            w.extend_from_slice(&4u32.to_le_bytes());
            w.extend_from_slice(&[fill; SECTOR_SIZE]);
            dma.write_bytes(0x6000, &w);
            build_td(&dma, 0x2000, ep_bulk_out(lun), 0x6000, w.len());
            install_frame_list(&k, &mut dev, &dma, 0x2000);
            dev.write32(&k, USBCMD, CMD_RS);
        }
        assert_eq!(dev.flash_sector_lun(0, 4).unwrap(), vec![0x11; SECTOR_SIZE]);
        assert_eq!(dev.flash_sector_lun(2, 4).unwrap(), vec![0x22; SECTOR_SIZE]);
        assert_eq!(dev.flash_sector_count(), 2, "counts span LUNs");

        // Staged reads are per LUN: stage both, then fetch in the
        // *opposite* order — a single shared staging slot would cross
        // the streams.
        for lun in [0usize, 2] {
            let mut r = vec![FLASH_CMD_READ];
            r.extend_from_slice(&4u32.to_le_bytes());
            dma.write_bytes(0x6000, &r);
            build_td(&dma, 0x2000, ep_bulk_out(lun), 0x6000, r.len());
            install_frame_list(&k, &mut dev, &dma, 0x2000);
            dev.write32(&k, USBCMD, CMD_RS);
        }
        for (lun, fill) in [(2usize, 0x22u8), (0, 0x11)] {
            build_td(&dma, 0x2000, ep_bulk_in(lun), 0x7000, SECTOR_SIZE);
            install_frame_list(&k, &mut dev, &dma, 0x2000);
            dev.write32(&k, USBCMD, CMD_RS);
            assert_eq!(
                dma.read_bytes(0x7000, SECTOR_SIZE),
                vec![fill; SECTOR_SIZE],
                "LUN {lun} staged read"
            );
        }
        let contents = dev.flash_contents();
        assert_eq!(contents.len(), 2);
        assert_eq!(contents[0].0, 0, "snapshot sorted by (lun, sector)");
        assert_eq!(contents[1].0, 2);
    }

    #[test]
    fn sg_out_chain_reassembles_one_flash_command() {
        // A 'W' command scattered across three MORE-chained TDs must
        // execute as *one* command once the chain-final TD lands —
        // byte-identical to the single-TD submission.
        let (k, mut dev, dma) = setup();
        let mut payload = vec![FLASH_CMD_WRITE];
        payload.extend_from_slice(&9u32.to_le_bytes());
        payload.extend_from_slice(&(0..SECTOR_SIZE).map(|i| i as u8).collect::<Vec<_>>());
        // Scatter the command into discontiguous buffers.
        let cuts = [0usize, 100, 300, payload.len()];
        let bufs = [0x6000usize, 0x6800, 0x7000];
        for (i, buf) in bufs.iter().enumerate() {
            dma.write_bytes(*buf, &payload[cuts[i]..cuts[i + 1]]);
        }
        for (i, buf) in bufs.iter().enumerate() {
            let flags = if i + 1 < bufs.len() { TD_TOKEN_MORE } else { 0 };
            let seg = &payload[cuts[i]..cuts[i + 1]];
            build_td_flags(&dma, 0x2000, ep_bulk_out(0), *buf, seg.len(), flags);
            install_frame_list(&k, &mut dev, &dma, 0x2000);
            dev.write32(&k, USBCMD, CMD_RS);
            // Mid-chain TDs complete successfully without executing.
            assert_eq!(dma.read_u32(0x2004) & TD_STALLED, 0, "TD {i}");
            if i + 1 < bufs.len() {
                assert_eq!(dev.flash_writes(), 0, "command must not run early");
            }
        }
        assert_eq!(dev.flash_writes(), 1, "one command, three TDs");
        assert_eq!(dev.flash_sector(9).unwrap(), payload[5..].to_vec());
    }

    #[test]
    fn sg_in_chain_streams_a_staged_sector() {
        // A staged 512-byte sector fetched through two 256-byte
        // MORE-chained IN TDs: each TD fills completely, the stream
        // state carries the remainder, nothing leaks to a later
        // unrelated IN.
        let (k, mut dev, dma) = setup();
        dev.preload_sector(5, (0..SECTOR_SIZE).map(|i| (i ^ 0x37) as u8).collect());
        let mut r = vec![FLASH_CMD_READ];
        r.extend_from_slice(&5u32.to_le_bytes());
        dma.write_bytes(0x6000, &r);
        build_td(&dma, 0x2000, ep_bulk_out(0), 0x6000, r.len());
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);

        build_td_flags(&dma, 0x2000, ep_bulk_in(0), 0x7000, 256, TD_TOKEN_MORE);
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);
        assert_eq!(dma.read_u32(0x2004) & 0x7ff, 256, "first TD full");

        build_td(&dma, 0x2000, ep_bulk_in(0), 0x7800, 256);
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);
        assert_eq!(dma.read_u32(0x2004) & 0x7ff, 256, "second TD full");

        let expect: Vec<u8> = (0..SECTOR_SIZE).map(|i| (i ^ 0x37) as u8).collect();
        assert_eq!(dma.read_bytes(0x7000, 256), expect[..256]);
        assert_eq!(dma.read_bytes(0x7800, 256), expect[256..]);
        // The chain-final TD (no MORE) dropped the stream: a later IN
        // with nothing staged stalls instead of reading stale bytes.
        build_td(&dma, 0x2000, ep_bulk_in(0), 0x7000, SECTOR_SIZE);
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);
        assert!(dma.read_u32(0x2004) & TD_STALLED != 0, "no stale stream");
    }

    #[test]
    fn sg_in_short_packet_terminates_the_stream() {
        // A short packet ends the transfer like a real bulk pipe: a
        // 100-byte staged sector through a 256-byte MORE TD delivers
        // 100, and the stream does NOT survive to the next TD.
        let (k, mut dev, dma) = setup();
        dev.preload_sector(8, vec![0xab; 100]);
        let mut r = vec![FLASH_CMD_READ];
        r.extend_from_slice(&8u32.to_le_bytes());
        dma.write_bytes(0x6000, &r);
        build_td(&dma, 0x2000, ep_bulk_out(0), 0x6000, r.len());
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);

        build_td_flags(&dma, 0x2000, ep_bulk_in(0), 0x7000, 256, TD_TOKEN_MORE);
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);
        assert_eq!(dma.read_u32(0x2004) & 0x7ff, 100, "short packet");
        assert_eq!(dma.read_bytes(0x7000, 100), vec![0xab; 100]);

        build_td(&dma, 0x2000, ep_bulk_in(0), 0x7800, 256);
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);
        assert!(
            dma.read_u32(0x2004) & TD_STALLED != 0,
            "short packet terminated the stream"
        );
    }

    #[test]
    fn sg_in_exact_fill_yields_zlp_on_next_td() {
        // Exactly-filled MORE TD: the empty remainder is retained, so
        // the next TD of the chain reads zero bytes — the ZLP that
        // tells the host the transfer is complete (not a stall).
        let (k, mut dev, dma) = setup();
        dev.preload_sector(2, vec![0x44; 256]);
        let mut r = vec![FLASH_CMD_READ];
        r.extend_from_slice(&2u32.to_le_bytes());
        dma.write_bytes(0x6000, &r);
        build_td(&dma, 0x2000, ep_bulk_out(0), 0x6000, r.len());
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);

        build_td_flags(&dma, 0x2000, ep_bulk_in(0), 0x7000, 256, TD_TOKEN_MORE);
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);
        assert_eq!(dma.read_u32(0x2004) & 0x7ff, 256);

        build_td(&dma, 0x2000, ep_bulk_in(0), 0x7800, 256);
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);
        let status = dma.read_u32(0x2004);
        assert_eq!(status & TD_STALLED, 0, "ZLP is a success, not a stall");
        assert_eq!(status & 0x7ff, 0, "zero-length packet");
    }

    #[test]
    fn reset_keeps_flash_media() {
        let (k, mut dev, dma) = setup();
        let mut w = vec![FLASH_CMD_WRITE];
        w.extend_from_slice(&1u32.to_le_bytes());
        w.extend_from_slice(&[9; SECTOR_SIZE]);
        dma.write_bytes(0x6000, &w);
        build_td(&dma, 0x2000, EP_BULK_OUT, 0x6000, w.len());
        install_frame_list(&k, &mut dev, &dma, 0x2000);
        dev.write32(&k, USBCMD, CMD_RS);
        assert_eq!(dev.flash_sector_count(), 1);
        dev.write32(&k, USBCMD, CMD_HCRESET);
        assert_eq!(dev.flash_sector_count(), 1, "media outlives the controller");
        assert!(dev.read32(&k, USBSTS) & STS_HCHALTED != 0);
    }
}
