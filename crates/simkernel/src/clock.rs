//! Virtual time and CPU accounting.

/// Which CPU consumer is charged for a span of busy time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuClass {
    /// Kernel-mode execution (driver nucleus, kernel subsystems, IRQs).
    Kernel,
    /// User-mode execution (decaf driver, driver library, marshaling).
    User,
}

/// A virtual nanosecond clock with per-class busy accounting.
///
/// Time only moves when someone charges work (`charge`) or the scheduler
/// idles forward (`advance_idle`). CPU utilization over an interval is
/// `busy / elapsed`, which is how the Table 3 utilization columns are
/// produced.
#[derive(Debug, Default, Clone)]
pub struct Clock {
    now_ns: u64,
    kernel_busy_ns: u64,
    user_busy_ns: u64,
}

impl Clock {
    /// A clock at time zero with no busy time.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advances time by `ns`, charging it to `class`.
    pub fn charge(&mut self, class: CpuClass, ns: u64) {
        self.now_ns += ns;
        match class {
            CpuClass::Kernel => self.kernel_busy_ns += ns,
            CpuClass::User => self.user_busy_ns += ns,
        }
    }

    /// Advances time by `ns` without charging anyone (CPU idle).
    pub fn advance_idle(&mut self, ns: u64) {
        self.now_ns += ns;
    }

    /// Total busy nanoseconds charged to `class` since creation.
    pub fn busy_ns(&self, class: CpuClass) -> u64 {
        match class {
            CpuClass::Kernel => self.kernel_busy_ns,
            CpuClass::User => self.user_busy_ns,
        }
    }

    /// A snapshot `(now, kernel_busy, user_busy)` for interval measurement.
    pub fn snapshot(&self) -> ClockSnapshot {
        ClockSnapshot {
            now_ns: self.now_ns,
            kernel_busy_ns: self.kernel_busy_ns,
            user_busy_ns: self.user_busy_ns,
        }
    }
}

/// A point-in-time capture of the clock, for measuring intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockSnapshot {
    /// Virtual time at the snapshot.
    pub now_ns: u64,
    /// Kernel busy time at the snapshot.
    pub kernel_busy_ns: u64,
    /// User busy time at the snapshot.
    pub user_busy_ns: u64,
}

impl ClockSnapshot {
    /// Elapsed virtual nanoseconds between `self` and a later snapshot.
    pub fn elapsed_ns(&self, later: &ClockSnapshot) -> u64 {
        later.now_ns.saturating_sub(self.now_ns)
    }

    /// Busy nanoseconds charged to `class` at the snapshot.
    pub fn busy_ns(&self, class: CpuClass) -> u64 {
        match class {
            CpuClass::Kernel => self.kernel_busy_ns,
            CpuClass::User => self.user_busy_ns,
        }
    }

    /// Per-class busy nanoseconds charged between `self` and a later
    /// snapshot — what trace-span self-time reconciles against.
    pub fn busy_since(&self, later: &ClockSnapshot, class: CpuClass) -> u64 {
        later.busy_ns(class).saturating_sub(self.busy_ns(class))
    }

    /// CPU utilization (0.0–1.0) between `self` and a later snapshot.
    pub fn utilization(&self, later: &ClockSnapshot) -> f64 {
        let elapsed = self.elapsed_ns(later);
        if elapsed == 0 {
            return 0.0;
        }
        let busy =
            (later.kernel_busy_ns - self.kernel_busy_ns) + (later.user_busy_ns - self.user_busy_ns);
        busy as f64 / elapsed as f64
    }

    /// Kernel-only utilization between `self` and a later snapshot.
    pub fn kernel_utilization(&self, later: &ClockSnapshot) -> f64 {
        let elapsed = self.elapsed_ns(later);
        if elapsed == 0 {
            return 0.0;
        }
        (later.kernel_busy_ns - self.kernel_busy_ns) as f64 / elapsed as f64
    }

    /// User-only utilization between `self` and a later snapshot.
    pub fn user_utilization(&self, later: &ClockSnapshot) -> f64 {
        let elapsed = self.elapsed_ns(later);
        if elapsed == 0 {
            return 0.0;
        }
        (later.user_busy_ns - self.user_busy_ns) as f64 / elapsed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_advances_time_and_busy() {
        let mut c = Clock::new();
        c.charge(CpuClass::Kernel, 100);
        c.charge(CpuClass::User, 50);
        c.advance_idle(850);
        assert_eq!(c.now_ns(), 1000);
        assert_eq!(c.busy_ns(CpuClass::Kernel), 100);
        assert_eq!(c.busy_ns(CpuClass::User), 50);
    }

    #[test]
    fn utilization_between_snapshots() {
        let mut c = Clock::new();
        let before = c.snapshot();
        c.charge(CpuClass::Kernel, 200);
        c.advance_idle(800);
        let after = c.snapshot();
        assert_eq!(before.elapsed_ns(&after), 1000);
        assert!((before.utilization(&after) - 0.2).abs() < 1e-9);
        assert!((before.kernel_utilization(&after) - 0.2).abs() < 1e-9);
        assert_eq!(before.user_utilization(&after), 0.0);
    }

    #[test]
    fn zero_interval_is_zero_utilization() {
        let c = Clock::new();
        let s = c.snapshot();
        assert_eq!(s.utilization(&s), 0.0);
    }
}
