//! The virtual-time cost model.
//!
//! Costs are rough 2009-era x86 magnitudes in nanoseconds. Their absolute
//! values do not matter for reproducing the paper's *shape* — what matters
//! is the ordering: register I/O ≪ lock ops ≪ interrupt entry ≪
//! kernel/user crossing ≪ cross-language marshaling, which is exactly the
//! ordering that makes decaf steady-state performance native-like while
//! initialization (hundreds of crossings) visibly slows down.

/// One MMIO register read (uncached PCI access).
pub const MMIO_READ_NS: u64 = 250;
/// One MMIO register write (posted).
pub const MMIO_WRITE_NS: u64 = 150;
/// One port I/O access (slower than MMIO).
pub const PORT_IO_NS: u64 = 600;
/// Taking or releasing an uncontended spinlock.
pub const SPINLOCK_NS: u64 = 40;
/// Taking or releasing a kernel mutex/semaphore.
pub const MUTEX_NS: u64 = 150;
/// Hardware interrupt entry/exit overhead.
pub const IRQ_ENTRY_NS: u64 = 2_000;
/// Dispatching one timer or work item.
pub const SOFTIRQ_DISPATCH_NS: u64 = 500;
/// One DMA descriptor processed by the device model.
pub const DMA_DESC_NS: u64 = 300;
/// Copying one byte of packet/sample data (amortized memcpy).
pub const COPY_BYTE_NS: u64 = 1;
/// A kernel/user protection-domain crossing (one way).
pub const DOMAIN_CROSSING_NS: u64 = 4_000;
/// Scheduling a different thread to handle an XPC (vs. reusing the caller).
pub const THREAD_HANDOFF_NS: u64 = 12_000;
/// Per-byte cost of XDR marshaling work (encode or decode).
pub const MARSHAL_BYTE_NS: u64 = 6;
/// Fixed per-object overhead of cross-language (C↔Java analogue)
/// conversion: the extra unmarshal-in-C + remarshal-in-Java step the paper
/// identifies as its main initialization cost (§4.2).
pub const CROSS_LANGUAGE_OBJECT_NS: u64 = 25_000;
/// Appending one deferred call to a batched transport's shared ring
/// (a couple of cache-line writes, no crossing).
pub const BATCH_ENQUEUE_NS: u64 = 40;
/// The doorbell write that triggers a batched flush — charged once per
/// crossing on a batched transport, taking the §2.3 thread-reuse
/// optimization one step further: many calls, one doorbell.
pub const BATCH_DOORBELL_NS: u64 = 250;
/// Per-object generation-counter bookkeeping when delta marshaling
/// decides which fields to elide.
pub const DELTA_TRACK_NS: u64 = 60;
/// Posting one descriptor into a pinned shared-memory ring: two cache-line
/// writes (descriptor body, then the ownership flag release-store). No
/// crossing, no marshaling — this is what replaces `MARSHAL_BYTE_NS` on
/// the shmring data path.
pub const RING_POST_NS: u64 = 60;
/// The consumer pulling one descriptor's dirtied cache line across cores
/// (a coherence miss, 2009-era magnitudes).
pub const RING_CACHELINE_NS: u64 = 120;
/// Mapping one sector-granular buffer for device DMA (page-table/IOMMU
/// work): what the zero-copy storage submission path pays *instead of* a
/// per-byte payload copy. Page-cache and `O_DIRECT` pages are DMA-able
/// where they sit; donating them to a sector pool costs a mapping per
/// sector, never a memcpy.
pub const SECTOR_MAP_NS: u64 = 200;
/// Doorbell-coalescing window: descriptors parked in a ring (or deferred
/// calls parked in a batched transport) are flushed no later than this
/// much virtual time after the first post, so low-rate paths do not hold
/// posted work indefinitely while high-rate paths amortize the crossing
/// over a watermark's worth of descriptors.
pub const DOORBELL_COALESCE_NS: u64 = 100_000;
/// One budgeted poll-mode probe of a ring's head cache line: a read of
/// the producer index plus the branch — what a poll-mode receive loop
/// pays per iteration *instead of* interrupt entry and doorbell
/// crossings. Cheap per probe, but charged continuously whether or not
/// traffic arrives: the interrupt-vs-poll crossover falls out of this
/// trade.
pub const POLL_SPIN_NS: u64 = 120;
