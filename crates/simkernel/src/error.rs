//! Kernel error codes.
//!
//! Linux drivers report errors as negative `errno` integers; the paper's
//! case study (§5.1) shows how easily those get ignored. Here errors are a
//! proper enum carried in `Result`, the Rust analogue of the checked
//! exceptions the decaf E1000 driver adopted.

use std::fmt;

/// Result alias for kernel operations.
pub type KResult<T> = Result<T, KError>;

/// A kernel error code (subset of `errno`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KError {
    /// Out of memory (`-ENOMEM`).
    NoMem,
    /// I/O error (`-EIO`).
    Io,
    /// No such device (`-ENODEV`).
    NoDev,
    /// Invalid argument (`-EINVAL`).
    Inval,
    /// Device or resource busy (`-EBUSY`).
    Busy,
    /// Operation timed out (`-ETIMEDOUT`).
    TimedOut,
    /// Resource temporarily unavailable (`-EAGAIN`).
    Again,
    /// Operation not supported (`-EOPNOTSUPP`).
    OpNotSupp,
}

impl KError {
    /// The Linux errno value this code corresponds to (negative).
    pub fn errno(self) -> i32 {
        match self {
            KError::NoMem => -12,
            KError::Io => -5,
            KError::NoDev => -19,
            KError::Inval => -22,
            KError::Busy => -16,
            KError::TimedOut => -110,
            KError::Again => -11,
            KError::OpNotSupp => -95,
        }
    }

    /// Converts a negative errno into a `KError`, if recognised.
    pub fn from_errno(errno: i32) -> Option<KError> {
        Some(match errno {
            -12 => KError::NoMem,
            -5 => KError::Io,
            -19 => KError::NoDev,
            -22 => KError::Inval,
            -16 => KError::Busy,
            -110 => KError::TimedOut,
            -11 => KError::Again,
            -95 => KError::OpNotSupp,
            _ => return None,
        })
    }
}

impl fmt::Display for KError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            KError::NoMem => "ENOMEM",
            KError::Io => "EIO",
            KError::NoDev => "ENODEV",
            KError::Inval => "EINVAL",
            KError::Busy => "EBUSY",
            KError::TimedOut => "ETIMEDOUT",
            KError::Again => "EAGAIN",
            KError::OpNotSupp => "EOPNOTSUPP",
        };
        write!(f, "{name} ({})", self.errno())
    }
}

impl std::error::Error for KError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_roundtrip() {
        for e in [
            KError::NoMem,
            KError::Io,
            KError::NoDev,
            KError::Inval,
            KError::Busy,
            KError::TimedOut,
            KError::Again,
            KError::OpNotSupp,
        ] {
            assert_eq!(KError::from_errno(e.errno()), Some(e));
            assert!(e.errno() < 0);
        }
        assert_eq!(KError::from_errno(-9999), None);
    }

    #[test]
    fn display_mentions_name_and_number() {
        assert_eq!(KError::Io.to_string(), "EIO (-5)");
    }
}
