//! Input core: event devices (mice, keyboards).

use std::collections::HashMap;

use crate::error::{KError, KResult};
use crate::kernel::Kernel;

/// An input event (type, code, value) as in `input_event`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputEvent {
    /// Event type (`EV_REL`, `EV_KEY`, ...).
    pub ev_type: u16,
    /// Event code (`REL_X`, `BTN_LEFT`, ...).
    pub code: u16,
    /// Event value (movement delta, key state).
    pub value: i32,
}

/// Relative-motion event type (`EV_REL`).
pub const EV_REL: u16 = 0x02;
/// Key/button event type (`EV_KEY`).
pub const EV_KEY: u16 = 0x01;
/// X-axis relative movement code.
pub const REL_X: u16 = 0x00;
/// Y-axis relative movement code.
pub const REL_Y: u16 = 0x01;
/// Left mouse button code.
pub const BTN_LEFT: u16 = 0x110;

#[derive(Default)]
struct InputDev {
    events: u64,
    last: Option<InputEvent>,
}

/// Input-subsystem state stored inside the kernel.
#[derive(Default)]
pub struct InputState {
    devices: HashMap<String, InputDev>,
}

impl Kernel {
    /// Registers an input device (like `input_register_device`).
    pub fn input_register_device(&self, name: impl Into<String>) -> KResult<()> {
        let name = name.into();
        let mut input = self.inner().input.borrow_mut();
        if input.devices.contains_key(&name) {
            return Err(KError::Busy);
        }
        input.devices.insert(name, InputDev::default());
        Ok(())
    }

    /// Unregisters an input device.
    pub fn input_unregister_device(&self, name: &str) {
        self.inner().input.borrow_mut().devices.remove(name);
    }

    /// Reports an event from a driver (like `input_report_rel` etc.).
    pub fn input_report(&self, name: &str, event: InputEvent) -> KResult<()> {
        let mut input = self.inner().input.borrow_mut();
        let d = input.devices.get_mut(name).ok_or(KError::NoDev)?;
        d.events += 1;
        d.last = Some(event);
        Ok(())
    }

    /// Number of events reported by `name`.
    pub fn input_event_count(&self, name: &str) -> u64 {
        self.inner()
            .input
            .borrow()
            .devices
            .get(name)
            .map_or(0, |d| d.events)
    }

    /// The most recent event reported by `name`.
    pub fn input_last_event(&self, name: &str) -> Option<InputEvent> {
        self.inner()
            .input
            .borrow()
            .devices
            .get(name)
            .and_then(|d| d.last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_count_and_remember_last() {
        let k = Kernel::new();
        k.input_register_device("psmouse").unwrap();
        k.input_report(
            "psmouse",
            InputEvent {
                ev_type: EV_REL,
                code: REL_X,
                value: 3,
            },
        )
        .unwrap();
        k.input_report(
            "psmouse",
            InputEvent {
                ev_type: EV_KEY,
                code: BTN_LEFT,
                value: 1,
            },
        )
        .unwrap();
        assert_eq!(k.input_event_count("psmouse"), 2);
        assert_eq!(
            k.input_last_event("psmouse"),
            Some(InputEvent {
                ev_type: EV_KEY,
                code: BTN_LEFT,
                value: 1
            })
        );
    }

    #[test]
    fn unknown_device_is_nodev() {
        let k = Kernel::new();
        assert_eq!(
            k.input_report(
                "nope",
                InputEvent {
                    ev_type: 0,
                    code: 0,
                    value: 0
                }
            ),
            Err(KError::NoDev)
        );
    }

    #[test]
    fn duplicate_registration_rejected() {
        let k = Kernel::new();
        k.input_register_device("m").unwrap();
        assert_eq!(k.input_register_device("m"), Err(KError::Busy));
        k.input_unregister_device("m");
        assert!(k.input_register_device("m").is_ok());
    }
}
