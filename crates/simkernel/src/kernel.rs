//! The kernel core: contexts, interrupts, timers, work queues, modules.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::clock::{Clock, ClockSnapshot, CpuClass};
use crate::costs;
use crate::error::{KError, KResult};
use crate::input::InputState;
use crate::net::NetState;
use crate::pci::PciState;
use crate::sound::SoundState;
use crate::usb::UsbState;

/// The execution context of the currently running code.
///
/// Mirrors the Linux distinction the paper leans on (§3.1.3): interrupt
/// handlers and timers run at high priority and must never block, so they
/// must never invoke the user-level decaf driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecContext {
    /// Ordinary process context: may block, may call up to user level.
    Process,
    /// Softirq context (timers): must not block.
    SoftIrq,
    /// Hardware interrupt context: must not block.
    HardIrq,
}

/// A rule violation observed by the simulated kernel.
///
/// The simulator records violations instead of crashing, so tests can
/// assert both that correct drivers produce none and that incorrect
/// constructions (e.g. calling a decaf driver from an IRQ handler) are
/// detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Classification of the violation.
    pub kind: ViolationKind,
    /// Execution context at the time.
    pub context: ExecContext,
    /// Virtual time at the time.
    pub at_ns: u64,
    /// Human-readable description.
    pub detail: String,
}

/// Kinds of kernel-rule violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A blocking operation was attempted in atomic context
    /// (IRQ/softirq context or while holding a spinlock).
    BlockingInAtomic,
    /// A lock was re-acquired by its holder (single-threaded deadlock).
    SelfDeadlock,
    /// A semaphore `down` found no available count (would deadlock).
    WouldDeadlock,
    /// A user-level upcall (XPC to the decaf driver) was attempted from
    /// atomic context.
    UpcallInAtomic,
}

/// Identifier of a kernel timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(usize);

struct TimerEntry {
    name: String,
    callback: Rc<dyn Fn(&Kernel)>,
    deadline_ns: Option<u64>,
    period_ns: Option<u64>,
    live: bool,
}

/// A registered interrupt handler: name plus callback.
pub type IrqHandler = Rc<dyn Fn(&Kernel)>;

#[derive(Default)]
struct IrqLine {
    handler: Option<(String, IrqHandler)>,
    disable_depth: u32,
    pending: bool,
}

type WorkFn = Box<dyn FnOnce(&Kernel)>;

#[derive(Default)]
struct WorkState {
    queue: VecDeque<(String, WorkFn)>,
    executed: u64,
}

/// A loaded kernel module record.
#[derive(Debug, Clone)]
pub struct LoadedModule {
    /// Module name.
    pub name: String,
    /// Virtual-time latency of `insmod` (module init), in nanoseconds.
    pub init_latency_ns: u64,
}

/// Counters exposed for tests and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Hardware interrupts delivered.
    pub irqs_delivered: u64,
    /// Timer callbacks fired.
    pub timers_fired: u64,
    /// Work items executed.
    pub work_executed: u64,
    /// Payload bytes moved by CPU copies ([`Kernel::charge_copy`]). Every
    /// driver build charges payload copies through this one entry point,
    /// so the counter audits copy accounting: a given workload must copy
    /// the same number of bytes whether the data path is native, decaf,
    /// or shmring-hosted.
    pub bytes_copied: u64,
}

pub(crate) struct Inner {
    pub(crate) clock: RefCell<Clock>,
    ctx: Cell<ExecContext>,
    atomic_depth: Cell<u32>,
    shard: Cell<Option<usize>>,
    shard_busy: RefCell<Vec<u64>>,
    irqs: RefCell<Vec<IrqLine>>,
    timers: RefCell<Vec<TimerEntry>>,
    work: RefCell<WorkState>,
    modules: RefCell<Vec<LoadedModule>>,
    violations: RefCell<Vec<Violation>>,
    stats: Cell<KernelStats>,
    dispatching: Cell<bool>,
    tracer: RefCell<Option<Rc<decaf_trace::Tracer>>>,
    pub(crate) net: RefCell<NetState>,
    pub(crate) sound: RefCell<SoundState>,
    pub(crate) usb: RefCell<UsbState>,
    pub(crate) input: RefCell<InputState>,
    pub(crate) pci: RefCell<PciState>,
}

/// A cheap-to-clone handle to the simulated kernel.
///
/// The kernel is single-threaded: driver code, interrupt handlers, timers
/// and work items all execute on the (virtual) CPU in a deterministic
/// order. Devices raise IRQs; delivery happens at *scheduling points*
/// ([`Kernel::schedule_point`], or implicitly inside [`Kernel::run_for`]).
///
/// # Examples
///
/// ```
/// use decaf_simkernel::Kernel;
/// let kernel = Kernel::new();
/// kernel.charge_kernel(1_000);
/// assert_eq!(kernel.now_ns(), 1_000);
/// ```
#[derive(Clone)]
pub struct Kernel {
    inner: Rc<Inner>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now_ns", &self.now_ns())
            .field("context", &self.context())
            .finish_non_exhaustive()
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

impl Kernel {
    /// Creates a fresh kernel at virtual time zero.
    pub fn new() -> Self {
        Kernel {
            inner: Rc::new(Inner {
                clock: RefCell::new(Clock::new()),
                ctx: Cell::new(ExecContext::Process),
                atomic_depth: Cell::new(0),
                shard: Cell::new(None),
                shard_busy: RefCell::new(Vec::new()),
                irqs: RefCell::new(Vec::new()),
                timers: RefCell::new(Vec::new()),
                work: RefCell::new(WorkState::default()),
                modules: RefCell::new(Vec::new()),
                violations: RefCell::new(Vec::new()),
                stats: Cell::new(KernelStats::default()),
                dispatching: Cell::new(false),
                tracer: RefCell::new(None),
                net: RefCell::new(NetState::default()),
                sound: RefCell::new(SoundState::default()),
                usb: RefCell::new(UsbState::default()),
                input: RefCell::new(InputState::default()),
                pci: RefCell::new(PciState::default()),
            }),
        }
    }

    // ---------------------------------------------------------- time

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.inner.clock.borrow().now_ns()
    }

    /// Charges `ns` of busy time to the kernel CPU class.
    pub fn charge_kernel(&self, ns: u64) {
        self.charge(CpuClass::Kernel, ns);
    }

    /// Charges `ns` of busy time to the user CPU class.
    pub fn charge_user(&self, ns: u64) {
        self.charge(CpuClass::User, ns);
    }

    /// Charges busy time to the class matching the current context:
    /// kernel time unless explicitly charged as user.
    ///
    /// When a [`Kernel::shard_scope`] is active, the charge is *also*
    /// attributed to that shard's busy counter — the per-CPU accounting
    /// behind the sharded-channel ablation.
    pub fn charge(&self, class: CpuClass, ns: u64) {
        self.inner.clock.borrow_mut().charge(class, ns);
        if let Some(shard) = self.inner.shard.get() {
            let mut busy = self.inner.shard_busy.borrow_mut();
            if busy.len() <= shard {
                busy.resize(shard + 1, 0);
            }
            busy[shard] += ns;
        }
        self.trace_attribute(class, ns);
    }

    // ---------------------------------------------- shard accounting

    /// Runs `f` with every busy-time charge additionally attributed to
    /// `shard` (per-CPU accounting for sharded data paths). Scopes nest;
    /// an inner scope overrides the outer for its duration.
    ///
    /// The simulation stays single-threaded: per-shard counters model
    /// work that *would* run on separate CPUs. The parallel wall-clock
    /// estimate for a run is `unattributed busy + max(shard busy)` —
    /// serial work plus the critical-path shard — which is what the
    /// shards=1/2/4/8 ablation reports as virtual-time throughput.
    pub fn shard_scope<R>(&self, shard: usize, f: impl FnOnce() -> R) -> R {
        // Drop guard, not a tail restore: handler panics inside a scope
        // are caught and survived at the XPC layer (fault containment),
        // and a scope left stuck would silently misattribute every later
        // charge in the simulation.
        struct Restore<'a> {
            cell: &'a Cell<Option<usize>>,
            prev: Option<usize>,
        }
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                self.cell.set(self.prev);
            }
        }
        let _restore = Restore {
            cell: &self.inner.shard,
            prev: self.inner.shard.replace(Some(shard)),
        };
        f()
    }

    /// The shard charges are currently attributed to, if any.
    pub fn current_shard(&self) -> Option<usize> {
        self.inner.shard.get()
    }

    /// Per-shard busy nanoseconds accumulated under [`Kernel::shard_scope`]
    /// (indexed by shard id; shards never scoped report 0).
    pub fn shard_busy_ns(&self) -> Vec<u64> {
        self.inner.shard_busy.borrow().clone()
    }

    /// Charges one CPU copy of `bytes` payload bytes and counts it in
    /// [`KernelStats::bytes_copied`].
    ///
    /// This is the single entry point for payload-copy accounting: driver
    /// transmit paths (skb → DMA buffer), `netif_rx` (DMA buffer → stack),
    /// PCM writes, URB data and the shmring buffer pool all charge through
    /// it, so no path can double-charge — and tests can assert that the
    /// native, decaf and shmring builds copy identical byte counts for
    /// the same workload.
    pub fn charge_copy(&self, class: CpuClass, bytes: u64) {
        self.charge(class, bytes * costs::COPY_BYTE_NS);
        self.bump_stats(|s| s.bytes_copied += bytes);
    }

    /// Takes a clock snapshot for interval measurements.
    pub fn snapshot(&self) -> ClockSnapshot {
        self.inner.clock.borrow().snapshot()
    }

    /// Advances virtual time by `ns` without charging any CPU class.
    ///
    /// Device models use this to represent real-time progress that keeps
    /// the CPU idle (e.g. a DAC draining a playback buffer).
    pub fn advance_idle(&self, ns: u64) {
        self.inner.clock.borrow_mut().advance_idle(ns);
    }

    // ------------------------------------------------------- context

    /// The current execution context.
    pub fn context(&self) -> ExecContext {
        self.inner.ctx.get()
    }

    /// Whether the CPU is in atomic context (IRQ/softirq or spinlock held).
    pub fn in_atomic(&self) -> bool {
        self.inner.ctx.get() != ExecContext::Process || self.inner.atomic_depth.get() > 0
    }

    /// Whether blocking operations are currently permitted.
    pub fn may_block(&self) -> bool {
        !self.in_atomic()
    }

    /// Records a violation if blocking is not permitted here.
    ///
    /// Returns `true` when the operation is legal.
    pub fn assert_may_block(&self, what: &str) -> bool {
        if self.may_block() {
            true
        } else {
            self.record_violation(ViolationKind::BlockingInAtomic, what);
            false
        }
    }

    /// Enters atomic context (used by spinlock-like primitives, including
    /// the XPC combolock in spin mode). Must be balanced by
    /// [`Kernel::leave_atomic`].
    pub fn enter_atomic(&self) {
        self.inner
            .atomic_depth
            .set(self.inner.atomic_depth.get() + 1);
    }

    /// Leaves atomic context.
    pub fn leave_atomic(&self) {
        let d = self.inner.atomic_depth.get();
        debug_assert!(d > 0, "atomic depth underflow");
        self.inner.atomic_depth.set(d.saturating_sub(1));
    }

    fn with_context<R>(&self, ctx: ExecContext, f: impl FnOnce() -> R) -> R {
        let prev = self.inner.ctx.replace(ctx);
        let r = f();
        self.inner.ctx.set(prev);
        r
    }

    /// Records a rule violation.
    pub fn record_violation(&self, kind: ViolationKind, detail: impl Into<String>) {
        self.inner.violations.borrow_mut().push(Violation {
            kind,
            context: self.context(),
            at_ns: self.now_ns(),
            detail: detail.into(),
        });
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> Vec<Violation> {
        self.inner.violations.borrow().clone()
    }

    /// Clears recorded violations (between test phases).
    pub fn clear_violations(&self) {
        self.inner.violations.borrow_mut().clear();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> KernelStats {
        self.inner.stats.get()
    }

    fn bump_stats(&self, f: impl FnOnce(&mut KernelStats)) {
        let mut s = self.inner.stats.get();
        f(&mut s);
        self.inner.stats.set(s);
    }

    // ---------------------------------------------------------- IRQs

    /// Registers `handler` on IRQ `line` (like `request_irq`).
    pub fn request_irq(
        &self,
        line: u32,
        name: impl Into<String>,
        handler: Rc<dyn Fn(&Kernel)>,
    ) -> KResult<()> {
        let mut irqs = self.inner.irqs.borrow_mut();
        let line = line as usize;
        if irqs.len() <= line {
            irqs.resize_with(line + 1, IrqLine::default);
        }
        if irqs[line].handler.is_some() {
            return Err(KError::Busy);
        }
        irqs[line].handler = Some((name.into(), handler));
        Ok(())
    }

    /// Unregisters the handler on IRQ `line` (like `free_irq`).
    pub fn free_irq(&self, line: u32) {
        if let Some(entry) = self.inner.irqs.borrow_mut().get_mut(line as usize) {
            entry.handler = None;
            entry.pending = false;
        }
    }

    /// Disables delivery on `line`; nests (like `disable_irq`).
    ///
    /// This is the mechanism the nuclear runtime uses to keep the driver
    /// from interrupting itself while its decaf driver runs (§3.1.3).
    pub fn disable_irq(&self, line: u32) {
        let mut irqs = self.inner.irqs.borrow_mut();
        let line = line as usize;
        if irqs.len() <= line {
            irqs.resize_with(line + 1, IrqLine::default);
        }
        irqs[line].disable_depth += 1;
    }

    /// Re-enables delivery on `line`; pending interrupts are delivered at
    /// the next scheduling point.
    pub fn enable_irq(&self, line: u32) {
        if let Some(entry) = self.inner.irqs.borrow_mut().get_mut(line as usize) {
            entry.disable_depth = entry.disable_depth.saturating_sub(1);
        }
    }

    /// Whether `line` currently has undelivered pending interrupts.
    pub fn irq_pending(&self, line: u32) -> bool {
        self.inner
            .irqs
            .borrow()
            .get(line as usize)
            .is_some_and(|l| l.pending)
    }

    /// Raises IRQ `line` (called by device models).
    ///
    /// Delivery is deferred to the next scheduling point, keeping driver
    /// code re-entrancy-free and the simulation deterministic.
    pub fn raise_irq(&self, line: u32) {
        let mut irqs = self.inner.irqs.borrow_mut();
        let line = line as usize;
        if irqs.len() <= line {
            irqs.resize_with(line + 1, IrqLine::default);
        }
        irqs[line].pending = true;
    }

    // -------------------------------------------------------- timers

    /// Creates a timer; it does not fire until armed.
    pub fn timer_create(&self, name: impl Into<String>, callback: Rc<dyn Fn(&Kernel)>) -> TimerId {
        let mut timers = self.inner.timers.borrow_mut();
        timers.push(TimerEntry {
            name: name.into(),
            callback,
            deadline_ns: None,
            period_ns: None,
            live: true,
        });
        TimerId(timers.len() - 1)
    }

    /// Arms `timer` to fire once, `delay_ns` from now (like `mod_timer`).
    pub fn timer_arm(&self, timer: TimerId, delay_ns: u64) {
        let now = self.now_ns();
        if let Some(t) = self.inner.timers.borrow_mut().get_mut(timer.0) {
            if t.live {
                t.deadline_ns = Some(now + delay_ns);
                t.period_ns = None;
            }
        }
    }

    /// Arms `timer` to fire once at absolute virtual time `deadline_ns`
    /// (like `mod_timer` with an absolute `expires`). A deadline already
    /// in the past fires at the next dispatch point — exactly how a late
    /// `mod_timer` behaves. Schedule-driven dispatchers (the open-loop
    /// load engine walking a precomputed arrival list) want this form:
    /// re-arming to `schedule[i]` directly cannot accumulate the off-by-
    /// one-dispatch drift that repeated `now + delta` arithmetic can.
    pub fn timer_arm_at(&self, timer: TimerId, deadline_ns: u64) {
        let now = self.now_ns();
        if let Some(t) = self.inner.timers.borrow_mut().get_mut(timer.0) {
            if t.live {
                t.deadline_ns = Some(deadline_ns.max(now));
                t.period_ns = None;
            }
        }
    }

    /// Arms `timer` to fire every `period_ns` (must be positive).
    pub fn timer_arm_periodic(&self, timer: TimerId, period_ns: u64) {
        assert!(period_ns > 0, "periodic timers require a positive period");
        let now = self.now_ns();
        if let Some(t) = self.inner.timers.borrow_mut().get_mut(timer.0) {
            if t.live {
                t.deadline_ns = Some(now + period_ns);
                t.period_ns = Some(period_ns);
            }
        }
    }

    /// Disarms and destroys `timer` (like `del_timer_sync`).
    pub fn timer_del(&self, timer: TimerId) {
        if let Some(t) = self.inner.timers.borrow_mut().get_mut(timer.0) {
            t.live = false;
            t.deadline_ns = None;
            t.period_ns = None;
        }
    }

    /// Whether `timer` is armed.
    pub fn timer_pending(&self, timer: TimerId) -> bool {
        self.inner
            .timers
            .borrow()
            .get(timer.0)
            .is_some_and(|t| t.live && t.deadline_ns.is_some())
    }

    fn next_timer_deadline(&self) -> Option<u64> {
        self.inner
            .timers
            .borrow()
            .iter()
            .filter(|t| t.live)
            .filter_map(|t| t.deadline_ns)
            .min()
    }

    // ---------------------------------------------------- work queue

    /// Schedules a work item to run in process context at the next
    /// scheduling point (like `schedule_work`).
    ///
    /// Work items may block — this is how high-priority code defers
    /// operations that must reach the decaf driver (§3.1.3).
    pub fn schedule_work(&self, name: impl Into<String>, f: impl FnOnce(&Kernel) + 'static) {
        self.inner
            .work
            .borrow_mut()
            .queue
            .push_back((name.into(), Box::new(f)));
    }

    /// Number of work items waiting.
    pub fn work_pending(&self) -> usize {
        self.inner.work.borrow().queue.len()
    }

    // ----------------------------------------------------- dispatch

    /// Runs one dispatch round: pending IRQs, due timers, queued work.
    ///
    /// Re-entrant calls (from inside a handler) are ignored; the outer
    /// dispatch loop picks up anything new.
    pub fn schedule_point(&self) {
        if self.inner.dispatching.replace(true) {
            return;
        }
        loop {
            let progressed = self.deliver_one_irq() || self.fire_one_timer() || self.run_one_work();
            if !progressed {
                break;
            }
        }
        self.inner.dispatching.set(false);
    }

    fn deliver_one_irq(&self) -> bool {
        let found = {
            let mut irqs = self.inner.irqs.borrow_mut();
            irqs.iter_mut().enumerate().find_map(|(line, entry)| {
                if entry.pending && entry.disable_depth == 0 {
                    if let Some((name, handler)) = &entry.handler {
                        entry.pending = false;
                        return Some((line, name.clone(), Rc::clone(handler)));
                    }
                    // Pending IRQ with no handler: drop it (spurious).
                    entry.pending = false;
                }
                None
            })
        };
        match found {
            Some((_line, _name, handler)) => {
                let _span = self.trace_span("kernel", "irq");
                self.charge_kernel(costs::IRQ_ENTRY_NS);
                self.bump_stats(|s| s.irqs_delivered += 1);
                self.with_context(ExecContext::HardIrq, || handler(self));
                true
            }
            None => false,
        }
    }

    fn fire_one_timer(&self) -> bool {
        let now = self.now_ns();
        let due = {
            let mut timers = self.inner.timers.borrow_mut();
            timers.iter_mut().find_map(|t| {
                if !t.live {
                    return None;
                }
                match t.deadline_ns {
                    Some(d) if d <= now => {
                        match t.period_ns {
                            Some(p) => t.deadline_ns = Some(now + p),
                            None => t.deadline_ns = None,
                        }
                        Some((t.name.clone(), Rc::clone(&t.callback)))
                    }
                    _ => None,
                }
            })
        };
        match due {
            Some((_name, cb)) => {
                let _span = self.trace_span("kernel", "timer");
                self.charge_kernel(costs::SOFTIRQ_DISPATCH_NS);
                self.bump_stats(|s| s.timers_fired += 1);
                self.with_context(ExecContext::SoftIrq, || cb(self));
                true
            }
            None => false,
        }
    }

    fn run_one_work(&self) -> bool {
        let item = self.inner.work.borrow_mut().queue.pop_front();
        match item {
            Some((_name, f)) => {
                let _span = self.trace_span("kernel", "work");
                self.charge_kernel(costs::SOFTIRQ_DISPATCH_NS);
                self.bump_stats(|s| s.work_executed += 1);
                self.inner.work.borrow_mut().executed += 1;
                self.with_context(ExecContext::Process, || f(self));
                true
            }
            None => false,
        }
    }

    /// Advances virtual time by `ns`, dispatching events as they come due.
    pub fn run_for(&self, ns: u64) {
        let end = self.now_ns() + ns;
        loop {
            self.schedule_point();
            let now = self.now_ns();
            if now >= end {
                break;
            }
            let next = self
                .next_timer_deadline()
                .map_or(end, |d| d.clamp(now, end));
            let step = next.saturating_sub(now);
            if step == 0 {
                // A timer is due exactly now; loop to dispatch it.
                continue;
            }
            self.inner.clock.borrow_mut().advance_idle(step);
        }
        self.schedule_point();
    }

    /// Dispatches until no IRQ, timer-due or work remains (bounded by
    /// `max_ns` of virtual time to guarantee termination).
    pub fn run_until_idle(&self, max_ns: u64) {
        let end = self.now_ns() + max_ns;
        loop {
            self.schedule_point();
            let has_work = self.work_pending() > 0;
            let now = self.now_ns();
            let next_timer = self.next_timer_deadline();
            if !has_work && next_timer.is_none() {
                break;
            }
            if now >= end {
                break;
            }
            if let Some(d) = next_timer {
                let step = d.clamp(now, end).saturating_sub(now);
                if step > 0 {
                    self.inner.clock.borrow_mut().advance_idle(step);
                }
            }
            if next_timer.is_none() && !has_work {
                break;
            }
        }
    }

    // -------------------------------------------------------- modules

    /// Loads a module, running `init` in process context and measuring the
    /// virtual-time latency of the whole `insmod` (paper §4.2 measures
    /// driver initialization this way).
    pub fn insmod(
        &self,
        name: impl Into<String>,
        init: impl FnOnce(&Kernel) -> KResult<()>,
    ) -> KResult<u64> {
        let name = name.into();
        let start = self.now_ns();
        self.with_context(ExecContext::Process, || init(self))?;
        let latency = self.now_ns() - start;
        self.inner.modules.borrow_mut().push(LoadedModule {
            name,
            init_latency_ns: latency,
        });
        Ok(latency)
    }

    /// Unloads a module, running `exit` in process context.
    pub fn rmmod(&self, name: &str, exit: impl FnOnce(&Kernel)) {
        self.with_context(ExecContext::Process, || exit(self));
        self.inner.modules.borrow_mut().retain(|m| m.name != name);
    }

    /// Currently loaded modules.
    pub fn modules(&self) -> Vec<LoadedModule> {
        self.inner.modules.borrow().clone()
    }

    pub(crate) fn inner(&self) -> &Inner {
        &self.inner
    }

    pub(crate) fn tracer_slot(&self) -> &RefCell<Option<Rc<decaf_trace::Tracer>>> {
        &self.inner.tracer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell as StdCell;

    #[test]
    fn irq_delivery_at_schedule_point() {
        let k = Kernel::new();
        let fired = Rc::new(StdCell::new(0));
        let f = Rc::clone(&fired);
        k.request_irq(9, "test", Rc::new(move |_k| f.set(f.get() + 1)))
            .unwrap();
        k.raise_irq(9);
        assert_eq!(fired.get(), 0, "delivery is deferred");
        k.schedule_point();
        assert_eq!(fired.get(), 1);
        assert_eq!(k.stats().irqs_delivered, 1);
    }

    #[test]
    fn irq_handler_runs_in_hardirq_context() {
        let k = Kernel::new();
        let seen = Rc::new(StdCell::new(ExecContext::Process));
        let s = Rc::clone(&seen);
        k.request_irq(3, "ctx", Rc::new(move |k| s.set(k.context())))
            .unwrap();
        k.raise_irq(3);
        k.schedule_point();
        assert_eq!(seen.get(), ExecContext::HardIrq);
        assert_eq!(k.context(), ExecContext::Process, "context restored");
    }

    #[test]
    fn disable_irq_defers_delivery_until_enable() {
        let k = Kernel::new();
        let fired = Rc::new(StdCell::new(0));
        let f = Rc::clone(&fired);
        k.request_irq(5, "nic", Rc::new(move |_| f.set(f.get() + 1)))
            .unwrap();
        k.disable_irq(5);
        k.disable_irq(5); // nesting
        k.raise_irq(5);
        k.schedule_point();
        assert_eq!(fired.get(), 0);
        k.enable_irq(5);
        k.schedule_point();
        assert_eq!(fired.get(), 0, "still disabled once");
        k.enable_irq(5);
        k.schedule_point();
        assert_eq!(fired.get(), 1, "pending IRQ delivered after enable");
    }

    #[test]
    fn duplicate_request_irq_is_busy() {
        let k = Kernel::new();
        k.request_irq(1, "a", Rc::new(|_| {})).unwrap();
        assert_eq!(k.request_irq(1, "b", Rc::new(|_| {})), Err(KError::Busy));
        k.free_irq(1);
        assert!(k.request_irq(1, "b", Rc::new(|_| {})).is_ok());
    }

    #[test]
    fn oneshot_timer_fires_once_at_deadline() {
        let k = Kernel::new();
        let fired = Rc::new(StdCell::new(0u32));
        let f = Rc::clone(&fired);
        let t = k.timer_create("oneshot", Rc::new(move |_| f.set(f.get() + 1)));
        k.timer_arm(t, 1_000_000);
        k.run_for(999_999);
        assert_eq!(fired.get(), 0);
        k.run_for(2);
        assert_eq!(fired.get(), 1);
        k.run_for(10_000_000);
        assert_eq!(fired.get(), 1, "one-shot does not refire");
        assert!(!k.timer_pending(t));
    }

    #[test]
    fn periodic_timer_fires_repeatedly_until_deleted() {
        let k = Kernel::new();
        let fired = Rc::new(StdCell::new(0u32));
        let f = Rc::clone(&fired);
        let t = k.timer_create("watchdog", Rc::new(move |_| f.set(f.get() + 1)));
        // The E1000 watchdog runs every two (virtual) seconds.
        k.timer_arm_periodic(t, 2_000_000_000);
        k.run_for(7_000_000_000);
        assert_eq!(fired.get(), 3);
        k.timer_del(t);
        k.run_for(4_000_000_000);
        assert_eq!(fired.get(), 3);
    }

    #[test]
    fn timers_run_in_softirq_context_and_cannot_block() {
        let k = Kernel::new();
        let ctx = Rc::new(StdCell::new(ExecContext::Process));
        let c = Rc::clone(&ctx);
        let t = k.timer_create(
            "t",
            Rc::new(move |k| {
                c.set(k.context());
                assert!(!k.may_block());
                k.assert_may_block("upcall from timer");
            }),
        );
        k.timer_arm(t, 10);
        k.run_for(20);
        assert_eq!(ctx.get(), ExecContext::SoftIrq);
        let v = k.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::BlockingInAtomic);
        assert_eq!(v[0].context, ExecContext::SoftIrq);
    }

    #[test]
    fn work_items_run_in_process_context() {
        let k = Kernel::new();
        let ok = Rc::new(StdCell::new(false));
        let o = Rc::clone(&ok);
        k.schedule_work("deferred", move |k| {
            o.set(k.may_block());
        });
        assert_eq!(k.work_pending(), 1);
        k.schedule_point();
        assert!(ok.get(), "work items may block");
        assert_eq!(k.work_pending(), 0);
        assert_eq!(k.stats().work_executed, 1);
    }

    #[test]
    fn timer_deferring_to_work_item_reaches_process_context() {
        // The paper's watchdog pattern: the timer (softirq) enqueues a work
        // item; the work item (process context) may block / call user mode.
        let k = Kernel::new();
        let ran_in = Rc::new(StdCell::new(None::<bool>));
        let r = Rc::clone(&ran_in);
        let t = k.timer_create(
            "watchdog",
            Rc::new(move |k| {
                let r2 = Rc::clone(&r);
                k.schedule_work("watchdog_task", move |k| r2.set(Some(k.may_block())));
            }),
        );
        k.timer_arm(t, 100);
        k.run_for(200);
        assert_eq!(ran_in.get(), Some(true));
    }

    #[test]
    fn timer_arm_at_fires_at_absolute_deadlines() {
        // The schedule-driven dispatch shape: one timer walked down a
        // precomputed arrival list by re-arming to each absolute time
        // from inside the callback. Late deadlines fire immediately
        // instead of underflowing.
        let k = Kernel::new();
        let fired = Rc::new(std::cell::RefCell::new(Vec::new()));
        let schedule = [10_000u64, 20_000, 20_000, 50_000];
        let idx = Rc::new(StdCell::new(0usize));
        let f = Rc::clone(&fired);
        let i = Rc::clone(&idx);
        let t_cell = Rc::new(StdCell::new(None::<TimerId>));
        let t_cb = Rc::clone(&t_cell);
        let t = k.timer_create(
            "arrivals",
            Rc::new(move |k| {
                f.borrow_mut().push(k.now_ns());
                let next = i.get() + 1;
                i.set(next);
                if next < schedule.len() {
                    k.timer_arm_at(t_cb.get().unwrap(), schedule[next]);
                }
            }),
        );
        t_cell.set(Some(t));
        k.timer_arm_at(t, schedule[0]);
        k.run_for(60_000);
        // Each fire observes its deadline plus the softirq dispatch
        // charge (busy time advances the clock on this one-CPU model).
        // The duplicate 20_000 deadline is already in the past when the
        // callback re-arms it, so it fires at the next dispatch point
        // rather than being lost — the lateness IS the queueing delay
        // an open-loop dispatcher wants to observe.
        assert_eq!(
            *fired.borrow(),
            vec![
                10_000 + costs::SOFTIRQ_DISPATCH_NS,
                20_000 + costs::SOFTIRQ_DISPATCH_NS,
                20_000 + 2 * costs::SOFTIRQ_DISPATCH_NS,
                50_000 + costs::SOFTIRQ_DISPATCH_NS,
            ]
        );
        assert!(!k.timer_pending(t));
    }

    #[test]
    fn insmod_measures_init_latency() {
        let k = Kernel::new();
        let latency = k
            .insmod("e1000", |k| {
                k.charge_kernel(400_000);
                Ok(())
            })
            .unwrap();
        assert_eq!(latency, 400_000);
        assert_eq!(k.modules().len(), 1);
        k.rmmod("e1000", |_| {});
        assert!(k.modules().is_empty());
    }

    #[test]
    fn insmod_propagates_init_errors() {
        let k = Kernel::new();
        let err = k.insmod("bad", |_| Err(KError::NoDev)).unwrap_err();
        assert_eq!(err, KError::NoDev);
        assert!(k.modules().is_empty());
    }

    #[test]
    fn shard_scope_attributes_charges() {
        let k = Kernel::new();
        k.charge_kernel(100); // unattributed
        k.shard_scope(2, || {
            k.charge_kernel(50);
            k.charge_user(30);
        });
        k.shard_scope(0, || k.charge_user(10));
        assert_eq!(k.current_shard(), None, "scope restored");
        let busy = k.shard_busy_ns();
        assert_eq!(busy, vec![10, 0, 80]);
        // Per-class totals include both attributed and unattributed time.
        let snap = k.snapshot();
        assert_eq!(snap.kernel_busy_ns, 150);
        assert_eq!(snap.user_busy_ns, 40);
    }

    #[test]
    fn shard_scope_restores_across_panics() {
        // XPC catches handler panics and keeps running (fault
        // containment), so a scope must unwind cleanly too.
        let k = Kernel::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            k.shard_scope(3, || panic!("handler died"));
        }));
        assert!(caught.is_err());
        assert_eq!(k.current_shard(), None, "scope stuck after a panic");
        k.charge_kernel(10);
        assert_eq!(k.shard_busy_ns().get(3).copied().unwrap_or(0), 0);
    }

    #[test]
    fn shard_scopes_nest_with_inner_override() {
        let k = Kernel::new();
        k.shard_scope(0, || {
            k.charge_kernel(10);
            k.shard_scope(1, || k.charge_kernel(7));
            assert_eq!(k.current_shard(), Some(0));
            k.charge_kernel(3);
        });
        assert_eq!(k.shard_busy_ns(), vec![13, 7]);
    }

    #[test]
    fn run_for_advances_exactly() {
        let k = Kernel::new();
        k.run_for(5_000);
        assert_eq!(k.now_ns(), 5_000);
    }

    #[test]
    fn irq_raised_by_timer_is_delivered_same_round() {
        let k = Kernel::new();
        let fired = Rc::new(StdCell::new(false));
        let f = Rc::clone(&fired);
        k.request_irq(2, "chained", Rc::new(move |_| f.set(true)))
            .unwrap();
        let t = k.timer_create("raiser", Rc::new(move |k| k.raise_irq(2)));
        k.timer_arm(t, 50);
        k.run_for(100);
        assert!(fired.get());
    }

    #[test]
    fn run_until_idle_drains_chained_work() {
        let k = Kernel::new();
        let count = Rc::new(StdCell::new(0));
        let c = Rc::clone(&count);
        k.schedule_work("a", move |k| {
            c.set(c.get() + 1);
            let c2 = Rc::clone(&c);
            k.schedule_work("b", move |_| c2.set(c2.get() + 1));
        });
        k.run_until_idle(1_000_000);
        assert_eq!(count.get(), 2);
    }
}
