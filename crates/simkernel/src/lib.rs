//! A deterministic simulated Linux-like kernel for the Decaf Drivers
//! reproduction.
//!
//! The original system runs inside Linux 2.6.18.1. This crate substitutes a
//! *simulated* kernel that reproduces the semantics the Decaf architecture
//! actually depends on:
//!
//! * **Execution contexts and priority rules** — process context, softirq
//!   (timers) and hardirq (interrupt handlers); code running at high
//!   priority or holding a spinlock must not block, and therefore must not
//!   call up to a user-level decaf driver (paper §3.1.3). Violations are
//!   recorded, not silently tolerated, so tests can assert the rules.
//! * **Interrupt management** — `request_irq`, `disable_irq`/`enable_irq`
//!   with nesting, pending-delivery semantics. The nuclear runtime disables
//!   the driver's IRQ while the decaf driver runs.
//! * **Deferred work** — timer wheel (softirq priority) and workqueues
//!   (process context), used to defer timer work to a thread that may block
//!   (the E1000 watchdog conversion, §3.1.3).
//! * **Virtual time and CPU accounting** — a nanosecond clock advanced by
//!   explicit cost charges, with per-class (kernel/user) busy accounting,
//!   which yields the CPU-utilization and latency numbers of Table 3.
//! * **Kernel subsystems** — module loader (`insmod` latency), network
//!   stack (`SkBuff`, netdevice ops), sound core (using *mutexes*, the
//!   kernel modification from §3.1.3), USB core, input core, and a PCI bus
//!   that maps BARs onto register-level device models.
//!
//! Everything is single-threaded and deterministic: devices raise IRQs,
//! drivers charge costs, and `run_for` advances virtual time delivering
//! events in order. Determinism is what lets the benchmark tables come out
//! reproducibly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod costs;
pub mod error;
pub mod input;
pub mod kernel;
pub mod mmio;
pub mod net;
pub mod pci;
pub mod sound;
pub mod sync;
pub mod trace;
pub mod usb;

/// The tracing/metrics crate, re-exported so downstream crates (xpc,
/// shmring, drivers, core) reach `Tracer`, `Histogram` and the Chrome
/// exporter through the kernel they already depend on, without their
/// own `decaf-trace` dependency edge.
pub use decaf_trace;

pub use clock::CpuClass;
pub use error::{KError, KResult};
pub use kernel::{ExecContext, Kernel, TimerId, Violation, ViolationKind};
pub use mmio::{DmaMemory, MmioDevice, MmioHandle, MmioRegion};
pub use net::SkBuff;
pub use trace::TraceSpan;
