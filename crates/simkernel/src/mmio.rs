//! Memory-mapped I/O and DMA memory shared between drivers and devices.

use std::cell::RefCell;
use std::rc::Rc;

use crate::costs;
use crate::kernel::Kernel;

/// A register-level device model.
///
/// Device models receive a kernel handle so they can raise interrupts and
/// charge device-side processing time.
pub trait MmioDevice {
    /// Reads a 32-bit register at byte `offset`.
    fn read32(&mut self, kernel: &Kernel, offset: u64) -> u32;
    /// Writes a 32-bit register at byte `offset`.
    fn write32(&mut self, kernel: &Kernel, offset: u64, value: u32);
}

/// Shared handle to a device model (one BAR or I/O port window).
pub type MmioHandle = Rc<RefCell<dyn MmioDevice>>;

/// Wraps an [`MmioHandle`] with cost-charging register accessors, the way
/// `readl`/`writel` wrap MMIO in Linux drivers.
#[derive(Clone)]
pub struct MmioRegion {
    handle: MmioHandle,
}

impl MmioRegion {
    /// Creates a region over a device handle.
    pub fn new(handle: MmioHandle) -> Self {
        MmioRegion { handle }
    }

    /// Reads a 32-bit register (charges MMIO read cost).
    pub fn read32(&self, kernel: &Kernel, offset: u64) -> u32 {
        kernel.charge_kernel(costs::MMIO_READ_NS);
        self.handle.borrow_mut().read32(kernel, offset)
    }

    /// Writes a 32-bit register (charges MMIO write cost).
    pub fn write32(&self, kernel: &Kernel, offset: u64, value: u32) {
        kernel.charge_kernel(costs::MMIO_WRITE_NS);
        self.handle.borrow_mut().write32(kernel, offset, value);
    }

    /// Reads as a port I/O access (slower; used by UHCI and psmouse).
    pub fn inl(&self, kernel: &Kernel, offset: u64) -> u32 {
        kernel.charge_kernel(costs::PORT_IO_NS);
        self.handle.borrow_mut().read32(kernel, offset)
    }

    /// Writes as a port I/O access.
    pub fn outl(&self, kernel: &Kernel, offset: u64, value: u32) {
        kernel.charge_kernel(costs::PORT_IO_NS);
        self.handle.borrow_mut().write32(kernel, offset, value);
    }

    /// The underlying shared handle.
    pub fn handle(&self) -> MmioHandle {
        Rc::clone(&self.handle)
    }
}

/// A DMA-capable memory region shared between a driver and a device model.
///
/// Values are little-endian, matching descriptor layouts of the real
/// hardware the models imitate.
#[derive(Debug, Clone)]
pub struct DmaMemory {
    bytes: Rc<RefCell<Vec<u8>>>,
}

impl DmaMemory {
    /// Allocates a zeroed region of `size` bytes.
    pub fn new(size: usize) -> Self {
        DmaMemory {
            bytes: Rc::new(RefCell::new(vec![0; size])),
        }
    }

    /// Size of the region in bytes.
    pub fn len(&self) -> usize {
        self.bytes.borrow().len()
    }

    /// Whether the region has zero size.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads a `u32` at byte `offset` (little-endian).
    ///
    /// # Panics
    /// Panics if the access is out of bounds — a DMA fault in real
    /// hardware, which is always a simulator-usage bug here.
    pub fn read_u32(&self, offset: usize) -> u32 {
        let b = self.bytes.borrow();
        assert!(
            offset + 4 <= b.len(),
            "dma read_u32 bounds: {offset}+4 > {}",
            b.len()
        );
        u32::from_le_bytes(b[offset..offset + 4].try_into().expect("length checked"))
    }

    /// Writes a `u32` at byte `offset` (little-endian).
    pub fn write_u32(&self, offset: usize, value: u32) {
        let mut b = self.bytes.borrow_mut();
        b[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a `u64` at byte `offset` (little-endian).
    pub fn read_u64(&self, offset: usize) -> u64 {
        let b = self.bytes.borrow();
        u64::from_le_bytes(
            b[offset..offset + 8]
                .try_into()
                .expect("dma read_u64 bounds"),
        )
    }

    /// Writes a `u64` at byte `offset` (little-endian).
    pub fn write_u64(&self, offset: usize, value: u64) {
        let mut b = self.bytes.borrow_mut();
        b[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Copies bytes out of the region.
    pub fn read_bytes(&self, offset: usize, len: usize) -> Vec<u8> {
        self.bytes.borrow()[offset..offset + len].to_vec()
    }

    /// Copies bytes into the region.
    pub fn write_bytes(&self, offset: usize, data: &[u8]) {
        self.bytes.borrow_mut()[offset..offset + data.len()].copy_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scratch {
        regs: [u32; 4],
    }

    impl MmioDevice for Scratch {
        fn read32(&mut self, _k: &Kernel, offset: u64) -> u32 {
            self.regs[(offset / 4) as usize]
        }
        fn write32(&mut self, _k: &Kernel, offset: u64, value: u32) {
            self.regs[(offset / 4) as usize] = value;
        }
    }

    #[test]
    fn mmio_region_reads_writes_and_charges() {
        let k = Kernel::new();
        let dev: MmioHandle = Rc::new(RefCell::new(Scratch { regs: [0; 4] }));
        let bar = MmioRegion::new(dev);
        let t0 = k.now_ns();
        bar.write32(&k, 8, 0xdead_beef);
        assert_eq!(bar.read32(&k, 8), 0xdead_beef);
        assert!(k.now_ns() > t0, "MMIO charges virtual time");
    }

    #[test]
    fn dma_little_endian_layout() {
        let m = DmaMemory::new(64);
        m.write_u32(0, 0x0102_0304);
        assert_eq!(m.read_bytes(0, 4), vec![0x04, 0x03, 0x02, 0x01]);
        m.write_u64(8, 0xa1b2_c3d4_e5f6_0708);
        assert_eq!(m.read_u64(8), 0xa1b2_c3d4_e5f6_0708);
        m.write_bytes(16, &[1, 2, 3]);
        assert_eq!(m.read_bytes(16, 3), vec![1, 2, 3]);
        assert_eq!(m.len(), 64);
    }

    #[test]
    #[should_panic(expected = "dma read_u32 bounds")]
    fn dma_out_of_bounds_panics() {
        let m = DmaMemory::new(4);
        let _ = m.read_u32(2);
    }
}
