//! Network stack: `sk_buff`s, netdevice registration, transmit/receive.

use std::collections::HashMap;
use std::rc::Rc;

use crate::error::{KError, KResult};
use crate::kernel::Kernel;

/// A socket buffer: the unit of packet data in the stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkBuff {
    /// Packet payload (includes the Ethernet header in this model).
    pub data: Vec<u8>,
    /// Ethernet protocol id (e.g. `0x0800` for IPv4).
    pub protocol: u16,
}

impl SkBuff {
    /// Builds a packet of `len` bytes with a repeating fill pattern.
    pub fn synthetic(len: usize, fill: u8, protocol: u16) -> Self {
        SkBuff {
            data: vec![fill; len],
            protocol,
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the packet is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A fallible driver callback taking only the kernel handle.
pub type KernelOp = Rc<dyn Fn(&Kernel) -> KResult<()>>;
/// The transmit callback: consumes one packet.
pub type XmitOp = Rc<dyn Fn(&Kernel, SkBuff) -> KResult<()>>;

/// Driver callbacks for a network device (`net_device_ops`).
#[derive(Clone)]
pub struct NetDeviceOps {
    /// Brings the interface up (`ndo_open`).
    pub open: KernelOp,
    /// Brings the interface down (`ndo_stop`).
    pub stop: KernelOp,
    /// Transmits one packet (`ndo_start_xmit`).
    pub xmit: XmitOp,
}

/// Per-device packet counters (`rtnl_link_stats`-alike).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Packets handed to the stack by the driver.
    pub rx_packets: u64,
    /// Bytes handed to the stack by the driver.
    pub rx_bytes: u64,
    /// Packets the driver reported as transmitted.
    pub tx_packets: u64,
    /// Bytes the driver reported as transmitted.
    pub tx_bytes: u64,
    /// Transmit attempts that failed.
    pub tx_errors: u64,
}

struct NetDev {
    ops: NetDeviceOps,
    stats: NetStats,
    carrier: bool,
    open: bool,
}

/// Network-subsystem state stored inside the kernel.
#[derive(Default)]
pub struct NetState {
    devices: HashMap<String, NetDev>,
}

impl Kernel {
    /// Registers a network device (like `register_netdev`).
    pub fn register_netdev(&self, name: impl Into<String>, ops: NetDeviceOps) -> KResult<()> {
        let name = name.into();
        let mut net = self.inner().net.borrow_mut();
        if net.devices.contains_key(&name) {
            return Err(KError::Busy);
        }
        net.devices.insert(
            name,
            NetDev {
                ops,
                stats: NetStats::default(),
                carrier: false,
                open: false,
            },
        );
        Ok(())
    }

    /// Unregisters a network device.
    pub fn unregister_netdev(&self, name: &str) {
        self.inner().net.borrow_mut().devices.remove(name);
    }

    /// Whether a device with this name is registered.
    pub fn netdev_exists(&self, name: &str) -> bool {
        self.inner().net.borrow().devices.contains_key(name)
    }

    fn netdev_ops(&self, name: &str) -> KResult<NetDeviceOps> {
        self.inner()
            .net
            .borrow()
            .devices
            .get(name)
            .map(|d| d.ops.clone())
            .ok_or(KError::NoDev)
    }

    /// Brings the interface up, invoking the driver's `open`.
    pub fn netdev_open(&self, name: &str) -> KResult<()> {
        let ops = self.netdev_ops(name)?;
        (ops.open)(self)?;
        if let Some(d) = self.inner().net.borrow_mut().devices.get_mut(name) {
            d.open = true;
        }
        Ok(())
    }

    /// Brings the interface down, invoking the driver's `stop`.
    pub fn netdev_stop(&self, name: &str) -> KResult<()> {
        let ops = self.netdev_ops(name)?;
        (ops.stop)(self)?;
        if let Some(d) = self.inner().net.borrow_mut().devices.get_mut(name) {
            d.open = false;
        }
        Ok(())
    }

    /// Transmits a packet through the driver (stack → driver).
    pub fn net_xmit(&self, name: &str, skb: SkBuff) -> KResult<()> {
        let (ops, open) = {
            let net = self.inner().net.borrow();
            let d = net.devices.get(name).ok_or(KError::NoDev)?;
            (d.ops.clone(), d.open)
        };
        if !open {
            return Err(KError::NoDev);
        }
        let result = (ops.xmit)(self, skb);
        if result.is_err() {
            if let Some(d) = self.inner().net.borrow_mut().devices.get_mut(name) {
                d.stats.tx_errors += 1;
            }
        }
        result
    }

    /// Delivers a received packet to the stack (driver → stack), like
    /// `netif_rx`. Charges per-byte copy cost.
    pub fn netif_rx(&self, name: &str, skb: SkBuff) -> KResult<()> {
        self.charge_copy(crate::CpuClass::Kernel, skb.len() as u64);
        let mut net = self.inner().net.borrow_mut();
        let d = net.devices.get_mut(name).ok_or(KError::NoDev)?;
        d.stats.rx_packets += 1;
        d.stats.rx_bytes += skb.len() as u64;
        Ok(())
    }

    /// Records completed transmissions (driver bookkeeping on TX IRQ).
    pub fn net_tx_done(&self, name: &str, packets: u64, bytes: u64) {
        if let Some(d) = self.inner().net.borrow_mut().devices.get_mut(name) {
            d.stats.tx_packets += packets;
            d.stats.tx_bytes += bytes;
        }
    }

    /// Sets link carrier state (like `netif_carrier_on`/`_off`).
    pub fn netif_carrier(&self, name: &str, on: bool) {
        if let Some(d) = self.inner().net.borrow_mut().devices.get_mut(name) {
            d.carrier = on;
        }
    }

    /// Reads link carrier state.
    pub fn carrier_ok(&self, name: &str) -> bool {
        self.inner()
            .net
            .borrow()
            .devices
            .get(name)
            .is_some_and(|d| d.carrier)
    }

    /// Reads the device's packet counters.
    pub fn net_stats(&self, name: &str) -> NetStats {
        self.inner()
            .net
            .borrow()
            .devices
            .get(name)
            .map(|d| d.stats)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn dummy_ops(sent: Rc<Cell<u64>>) -> NetDeviceOps {
        NetDeviceOps {
            open: Rc::new(|_| Ok(())),
            stop: Rc::new(|_| Ok(())),
            xmit: Rc::new(move |_, skb| {
                sent.set(sent.get() + skb.len() as u64);
                Ok(())
            }),
        }
    }

    #[test]
    fn register_open_xmit_flow() {
        let k = Kernel::new();
        let sent = Rc::new(Cell::new(0));
        k.register_netdev("eth0", dummy_ops(Rc::clone(&sent)))
            .unwrap();
        assert!(k.netdev_exists("eth0"));
        // Transmit before open fails.
        assert_eq!(
            k.net_xmit("eth0", SkBuff::synthetic(100, 0xab, 0x0800)),
            Err(KError::NoDev)
        );
        k.netdev_open("eth0").unwrap();
        k.net_xmit("eth0", SkBuff::synthetic(100, 0xab, 0x0800))
            .unwrap();
        assert_eq!(sent.get(), 100);
        k.netdev_stop("eth0").unwrap();
    }

    #[test]
    fn duplicate_registration_rejected() {
        let k = Kernel::new();
        let s = Rc::new(Cell::new(0));
        k.register_netdev("eth0", dummy_ops(Rc::clone(&s))).unwrap();
        assert_eq!(k.register_netdev("eth0", dummy_ops(s)), Err(KError::Busy));
    }

    #[test]
    fn stats_accumulate() {
        let k = Kernel::new();
        let s = Rc::new(Cell::new(0));
        k.register_netdev("eth0", dummy_ops(s)).unwrap();
        k.netif_rx("eth0", SkBuff::synthetic(60, 1, 0x0800))
            .unwrap();
        k.netif_rx("eth0", SkBuff::synthetic(1500, 2, 0x0800))
            .unwrap();
        k.net_tx_done("eth0", 3, 4500);
        let st = k.net_stats("eth0");
        assert_eq!(st.rx_packets, 2);
        assert_eq!(st.rx_bytes, 1560);
        assert_eq!(st.tx_packets, 3);
        assert_eq!(st.tx_bytes, 4500);
    }

    #[test]
    fn carrier_toggles() {
        let k = Kernel::new();
        let s = Rc::new(Cell::new(0));
        k.register_netdev("eth0", dummy_ops(s)).unwrap();
        assert!(!k.carrier_ok("eth0"));
        k.netif_carrier("eth0", true);
        assert!(k.carrier_ok("eth0"));
    }

    #[test]
    fn xmit_error_counts() {
        let k = Kernel::new();
        let ops = NetDeviceOps {
            open: Rc::new(|_| Ok(())),
            stop: Rc::new(|_| Ok(())),
            xmit: Rc::new(|_, _| Err(KError::Busy)),
        };
        k.register_netdev("eth0", ops).unwrap();
        k.netdev_open("eth0").unwrap();
        assert_eq!(
            k.net_xmit("eth0", SkBuff::synthetic(10, 0, 0)),
            Err(KError::Busy)
        );
        assert_eq!(k.net_stats("eth0").tx_errors, 1);
    }
}
