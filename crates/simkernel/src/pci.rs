//! PCI bus: device discovery and BAR mapping.

use crate::error::{KError, KResult};
use crate::kernel::Kernel;
use crate::mmio::MmioHandle;

/// A device present on the simulated PCI bus.
#[derive(Clone)]
pub struct PciDevice {
    /// Vendor id (e.g. `0x8086` for Intel).
    pub vendor: u16,
    /// Device id (e.g. `0x100e` for the 82540EM E1000).
    pub device: u16,
    /// Interrupt line assigned to the device.
    pub irq_line: u32,
    /// Base address registers: handles to the device's register windows.
    pub bars: Vec<MmioHandle>,
    /// Human-readable name.
    pub name: String,
}

impl std::fmt::Debug for PciDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PciDevice")
            .field("vendor", &format_args!("{:#06x}", self.vendor))
            .field("device", &format_args!("{:#06x}", self.device))
            .field("irq_line", &self.irq_line)
            .field("bars", &self.bars.len())
            .field("name", &self.name)
            .finish()
    }
}

/// PCI-subsystem state stored inside the kernel.
#[derive(Default)]
pub struct PciState {
    devices: Vec<PciDevice>,
}

impl Kernel {
    /// Plugs a device into the bus (platform/firmware side).
    pub fn pci_add_device(&self, device: PciDevice) {
        self.inner().pci.borrow_mut().devices.push(device);
    }

    /// Finds the first device matching `vendor:device` (like `pci_get_device`).
    pub fn pci_find(&self, vendor: u16, device: u16) -> KResult<PciDevice> {
        self.inner()
            .pci
            .borrow()
            .devices
            .iter()
            .find(|d| d.vendor == vendor && d.device == device)
            .cloned()
            .ok_or(KError::NoDev)
    }

    /// Lists all devices on the bus.
    pub fn pci_devices(&self) -> Vec<PciDevice> {
        self.inner().pci.borrow().devices.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmio::MmioDevice;
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Null;
    impl MmioDevice for Null {
        fn read32(&mut self, _k: &Kernel, _o: u64) -> u32 {
            0
        }
        fn write32(&mut self, _k: &Kernel, _o: u64, _v: u32) {}
    }

    #[test]
    fn find_by_vendor_device() {
        let k = Kernel::new();
        let bar: MmioHandle = Rc::new(RefCell::new(Null));
        k.pci_add_device(PciDevice {
            vendor: 0x8086,
            device: 0x100e,
            irq_line: 11,
            bars: vec![bar],
            name: "e1000".into(),
        });
        let d = k.pci_find(0x8086, 0x100e).unwrap();
        assert_eq!(d.irq_line, 11);
        assert_eq!(d.bars.len(), 1);
        assert_eq!(k.pci_find(0x10ec, 0x8139).unwrap_err(), KError::NoDev);
        assert_eq!(k.pci_devices().len(), 1);
    }
}
