//! Sound core with configurable locking.
//!
//! "We modified the kernel sound libraries to use mutexes, which allowed
//! more code to execute in user mode. In its original implementation, the
//! sound library would often acquire a spinlock before calling the driver"
//! (paper §3.1.3). The core here supports both modes so the repository can
//! demonstrate *why* that change was required: in spinlock mode any driver
//! callback that needs to block (i.e. any XPC to the decaf driver) records
//! a `BlockingInAtomic` violation.

use std::collections::HashMap;
use std::rc::Rc;

use crate::error::{KError, KResult};
use crate::kernel::Kernel;
use crate::sync::{KMutex, SpinLock};

/// Which lock the sound core takes around driver callbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoundLockMode {
    /// The original kernel behaviour: spinlock held across driver calls.
    Spinlock,
    /// The paper's modified kernel: mutex held across driver calls.
    Mutex,
}

/// A fallible stream-control callback.
pub type StreamOp = Rc<dyn Fn(&Kernel) -> KResult<()>>;
/// The PCM write callback: frames in, frames accepted out.
pub type PcmWriteOp = Rc<dyn Fn(&Kernel, &[i16]) -> KResult<usize>>;

/// Driver callbacks for a sound card.
#[derive(Clone)]
pub struct SoundCardOps {
    /// Opens the PCM playback stream.
    pub open: StreamOp,
    /// Writes interleaved 16-bit frames; returns frames accepted.
    pub write: PcmWriteOp,
    /// Closes the PCM playback stream.
    pub close: StreamOp,
}

struct SoundCard {
    ops: SoundCardOps,
    mode: SoundLockMode,
    spin: Rc<SpinLock>,
    mutex: Rc<KMutex>,
    open: bool,
}

/// Sound-subsystem state stored inside the kernel.
#[derive(Default)]
pub struct SoundState {
    cards: HashMap<String, SoundCard>,
}

impl Kernel {
    /// Registers a sound card (like `snd_card_register`); the core defaults
    /// to the paper's mutex locking.
    pub fn snd_card_register(&self, name: impl Into<String>, ops: SoundCardOps) -> KResult<()> {
        let name = name.into();
        let mut sound = self.inner().sound.borrow_mut();
        if sound.cards.contains_key(&name) {
            return Err(KError::Busy);
        }
        let spin = Rc::new(SpinLock::new(format!("{name}.pcm_spin")));
        let mutex = Rc::new(KMutex::new(format!("{name}.pcm_mutex")));
        sound.cards.insert(
            name,
            SoundCard {
                ops,
                mode: SoundLockMode::Mutex,
                spin,
                mutex,
                open: false,
            },
        );
        Ok(())
    }

    /// Unregisters a sound card.
    pub fn snd_card_unregister(&self, name: &str) {
        self.inner().sound.borrow_mut().cards.remove(name);
    }

    /// Selects the lock the core takes around this card's callbacks.
    pub fn snd_set_lock_mode(&self, name: &str, mode: SoundLockMode) -> KResult<()> {
        match self.inner().sound.borrow_mut().cards.get_mut(name) {
            Some(c) => {
                c.mode = mode;
                Ok(())
            }
            None => Err(KError::NoDev),
        }
    }

    #[allow(clippy::type_complexity)]
    fn snd_card(
        &self,
        name: &str,
    ) -> KResult<(SoundCardOps, SoundLockMode, Rc<SpinLock>, Rc<KMutex>)> {
        let sound = self.inner().sound.borrow();
        let c = sound.cards.get(name).ok_or(KError::NoDev)?;
        Ok((
            c.ops.clone(),
            c.mode,
            Rc::clone(&c.spin),
            Rc::clone(&c.mutex),
        ))
    }

    fn snd_locked<R>(&self, name: &str, f: impl FnOnce(&SoundCardOps) -> R) -> KResult<R> {
        let (ops, mode, spin, mutex) = self.snd_card(name)?;
        Ok(match mode {
            SoundLockMode::Spinlock => {
                let _g = spin.lock(self);
                f(&ops)
            }
            SoundLockMode::Mutex => {
                let _g = mutex.lock(self);
                f(&ops)
            }
        })
    }

    /// Opens the playback stream (like `snd_pcm_open`).
    pub fn snd_pcm_open(&self, name: &str) -> KResult<()> {
        self.snd_locked(name, |ops| (ops.open)(self))??;
        if let Some(c) = self.inner().sound.borrow_mut().cards.get_mut(name) {
            c.open = true;
        }
        Ok(())
    }

    /// Writes playback frames; returns frames accepted.
    pub fn snd_pcm_write(&self, name: &str, frames: &[i16]) -> KResult<usize> {
        let open = self
            .inner()
            .sound
            .borrow()
            .cards
            .get(name)
            .is_some_and(|c| c.open);
        if !open {
            return Err(KError::Inval);
        }
        self.snd_locked(name, |ops| (ops.write)(self, frames))?
    }

    /// Closes the playback stream.
    pub fn snd_pcm_close(&self, name: &str) -> KResult<()> {
        self.snd_locked(name, |ops| (ops.close)(self))??;
        if let Some(c) = self.inner().sound.borrow_mut().cards.get_mut(name) {
            c.open = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ViolationKind;
    use std::cell::Cell;

    fn ops(written: Rc<Cell<usize>>, blocking_driver: bool) -> SoundCardOps {
        SoundCardOps {
            open: Rc::new(|_| Ok(())),
            write: Rc::new(move |k, frames| {
                if blocking_driver {
                    // A decaf driver would block here (XPC to user mode).
                    k.assert_may_block("xpc to decaf driver");
                }
                written.set(written.get() + frames.len());
                Ok(frames.len())
            }),
            close: Rc::new(|_| Ok(())),
        }
    }

    #[test]
    fn open_write_close_under_mutex_mode() {
        let k = Kernel::new();
        let w = Rc::new(Cell::new(0));
        k.snd_card_register("ens1371", ops(Rc::clone(&w), true))
            .unwrap();
        k.snd_pcm_open("ens1371").unwrap();
        assert_eq!(k.snd_pcm_write("ens1371", &[0i16; 128]).unwrap(), 128);
        k.snd_pcm_close("ens1371").unwrap();
        assert_eq!(w.get(), 128);
        assert!(
            k.violations().is_empty(),
            "mutex mode lets the driver block: {:?}",
            k.violations()
        );
    }

    #[test]
    fn spinlock_mode_flags_blocking_drivers() {
        // Reproduces why the paper modified the sound libraries: with the
        // original spinlock, a driver callback that blocks is a bug.
        let k = Kernel::new();
        let w = Rc::new(Cell::new(0));
        k.snd_card_register("ens1371", ops(Rc::clone(&w), true))
            .unwrap();
        k.snd_set_lock_mode("ens1371", SoundLockMode::Spinlock)
            .unwrap();
        k.snd_pcm_open("ens1371").unwrap();
        k.clear_violations();
        let _ = k.snd_pcm_write("ens1371", &[0i16; 16]);
        assert!(k
            .violations()
            .iter()
            .any(|v| v.kind == ViolationKind::BlockingInAtomic));
    }

    #[test]
    fn write_requires_open() {
        let k = Kernel::new();
        let w = Rc::new(Cell::new(0));
        k.snd_card_register("c", ops(w, false)).unwrap();
        assert_eq!(k.snd_pcm_write("c", &[0i16; 4]), Err(KError::Inval));
    }

    #[test]
    fn missing_card_is_nodev() {
        let k = Kernel::new();
        assert_eq!(k.snd_pcm_open("nope"), Err(KError::NoDev));
    }
}
