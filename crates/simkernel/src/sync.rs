//! Kernel synchronization primitives with rule enforcement.
//!
//! These are *model* locks for a single-threaded deterministic simulation:
//! they charge virtual time, track atomic context, and record rule
//! violations (self-deadlock, blocking in atomic context) instead of
//! hanging. Data protection is provided by Rust ownership in driver state;
//! what these locks model is the *semantics* that force driver code into
//! the kernel — "driver functions called with a spinlock held would have to
//! remain in the kernel because invoking the decaf driver would require
//! invoking the scheduler" (paper §3.1.3).

use std::cell::Cell;

use crate::costs;
use crate::kernel::{Kernel, ViolationKind};

/// A kernel spinlock: acquisition enters atomic context.
#[derive(Debug)]
pub struct SpinLock {
    name: String,
    held: Cell<bool>,
}

impl SpinLock {
    /// Creates a named spinlock.
    pub fn new(name: impl Into<String>) -> Self {
        SpinLock {
            name: name.into(),
            held: Cell::new(false),
        }
    }

    /// Acquires the lock, entering atomic context until the guard drops.
    ///
    /// Re-acquiring a held lock records a [`ViolationKind::SelfDeadlock`]
    /// (a real kernel would hang).
    pub fn lock<'a>(&'a self, kernel: &'a Kernel) -> SpinGuard<'a> {
        kernel.charge_kernel(costs::SPINLOCK_NS);
        if self.held.replace(true) {
            kernel.record_violation(
                ViolationKind::SelfDeadlock,
                format!("spinlock `{}` re-acquired while held", self.name),
            );
        }
        kernel.enter_atomic();
        SpinGuard { kernel, lock: self }
    }

    /// Whether the lock is currently held.
    pub fn is_held(&self) -> bool {
        self.held.get()
    }

    /// The lock's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Guard for a held [`SpinLock`]; releases on drop.
pub struct SpinGuard<'a> {
    kernel: &'a Kernel,
    lock: &'a SpinLock,
}

impl Drop for SpinGuard<'_> {
    fn drop(&mut self) {
        self.lock.held.set(false);
        self.kernel.leave_atomic();
        self.kernel.charge_kernel(costs::SPINLOCK_NS);
    }
}

/// A kernel mutex: acquisition may block, so it is illegal in atomic
/// context (recorded as [`ViolationKind::BlockingInAtomic`]).
#[derive(Debug)]
pub struct KMutex {
    name: String,
    held: Cell<bool>,
}

impl KMutex {
    /// Creates a named mutex.
    pub fn new(name: impl Into<String>) -> Self {
        KMutex {
            name: name.into(),
            held: Cell::new(false),
        }
    }

    /// Acquires the mutex.
    pub fn lock<'a>(&'a self, kernel: &'a Kernel) -> MutexGuard<'a> {
        kernel.charge_kernel(costs::MUTEX_NS);
        kernel.assert_may_block(&format!("mutex `{}` lock", self.name));
        if self.held.replace(true) {
            kernel.record_violation(
                ViolationKind::SelfDeadlock,
                format!("mutex `{}` re-acquired while held", self.name),
            );
        }
        MutexGuard { kernel, lock: self }
    }

    /// Whether the mutex is currently held.
    pub fn is_held(&self) -> bool {
        self.held.get()
    }

    /// The mutex's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Guard for a held [`KMutex`]; releases on drop.
pub struct MutexGuard<'a> {
    kernel: &'a Kernel,
    lock: &'a KMutex,
}

impl Drop for MutexGuard<'_> {
    fn drop(&mut self) {
        self.lock.held.set(false);
        self.kernel.charge_kernel(costs::MUTEX_NS);
    }
}

/// A counting semaphore (`down` may block).
#[derive(Debug)]
pub struct KSemaphore {
    name: String,
    count: Cell<u32>,
}

impl KSemaphore {
    /// Creates a semaphore with an initial count.
    pub fn new(name: impl Into<String>, count: u32) -> Self {
        KSemaphore {
            name: name.into(),
            count: Cell::new(count),
        }
    }

    /// Decrements the count (`down`).
    ///
    /// In this single-threaded model a `down` on a zero count can never be
    /// satisfied by another runnable thread, so it records a
    /// [`ViolationKind::WouldDeadlock`] and proceeds.
    pub fn down(&self, kernel: &Kernel) {
        kernel.charge_kernel(costs::MUTEX_NS);
        kernel.assert_may_block(&format!("semaphore `{}` down", self.name));
        let c = self.count.get();
        if c == 0 {
            kernel.record_violation(
                ViolationKind::WouldDeadlock,
                format!("semaphore `{}` down with zero count", self.name),
            );
        } else {
            self.count.set(c - 1);
        }
    }

    /// Increments the count (`up`).
    pub fn up(&self, kernel: &Kernel) {
        kernel.charge_kernel(costs::MUTEX_NS);
        self.count.set(self.count.get() + 1);
    }

    /// Current count.
    pub fn count(&self) -> u32 {
        self.count.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ViolationKind;

    #[test]
    fn spinlock_enters_and_leaves_atomic() {
        let k = Kernel::new();
        let l = SpinLock::new("tx_lock");
        assert!(k.may_block());
        {
            let _g = l.lock(&k);
            assert!(!k.may_block());
            assert!(l.is_held());
        }
        assert!(k.may_block());
        assert!(!l.is_held());
        assert!(k.violations().is_empty());
    }

    #[test]
    fn spinlock_self_deadlock_detected() {
        let k = Kernel::new();
        let l = SpinLock::new("l");
        let _g1 = l.lock(&k);
        let _g2 = l.lock(&k);
        let v = k.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::SelfDeadlock);
    }

    #[test]
    fn mutex_illegal_under_spinlock() {
        let k = Kernel::new();
        let spin = SpinLock::new("s");
        let mutex = KMutex::new("m");
        let _g = spin.lock(&k);
        let _m = mutex.lock(&k);
        let v = k.violations();
        assert!(v.iter().any(|v| v.kind == ViolationKind::BlockingInAtomic));
    }

    #[test]
    fn mutex_legal_in_process_context() {
        let k = Kernel::new();
        let mutex = KMutex::new("m");
        {
            let _m = mutex.lock(&k);
            assert!(mutex.is_held());
            // A mutex does not enter atomic context: blocking is allowed.
            assert!(k.may_block());
        }
        assert!(k.violations().is_empty());
    }

    #[test]
    fn semaphore_counts_and_detects_deadlock() {
        let k = Kernel::new();
        let s = KSemaphore::new("sem", 1);
        s.down(&k);
        assert_eq!(s.count(), 0);
        s.down(&k); // would deadlock
        assert!(k
            .violations()
            .iter()
            .any(|v| v.kind == ViolationKind::WouldDeadlock));
        s.up(&k);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn locks_charge_time() {
        let k = Kernel::new();
        let l = SpinLock::new("t");
        let before = k.now_ns();
        drop(l.lock(&k));
        assert!(k.now_ns() > before);
    }
}
