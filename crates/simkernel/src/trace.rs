//! The kernel's tracing surface: virtual-time-stamped spans, instants,
//! request latencies and metrics, forwarded to an installed
//! [`Tracer`].
//!
//! This module is the *only* place the workspace touches `decaf-trace`
//! directly — every other crate emits through these `Kernel` wrapper
//! methods, which stamp events with `Kernel::now_ns()` (the
//! virtual-time-stamping rule: no other clock exists) and route charges
//! into span attribution. When no tracer is installed each wrapper is a
//! single `Option` check that charges **zero virtual time**, so a
//! tracing-disabled run is bit-identical to an untraced one.

use std::rc::Rc;

use decaf_trace::{CostClass, Tracer};

use crate::clock::CpuClass;
use crate::kernel::Kernel;

impl From<CpuClass> for CostClass {
    fn from(c: CpuClass) -> CostClass {
        match c {
            CpuClass::Kernel => CostClass::Kernel,
            CpuClass::User => CostClass::User,
        }
    }
}

/// An RAII guard for a sync trace span: opened by
/// [`Kernel::trace_span`], closed (with the then-current virtual time)
/// when dropped. Inert when no tracer was installed at open time.
#[must_use = "a span guard closes its span when dropped"]
pub struct TraceSpan {
    live: Option<(Kernel, Rc<Tracer>)>,
}

impl TraceSpan {
    /// A guard that does nothing on drop.
    pub fn disabled() -> Self {
        TraceSpan { live: None }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some((kernel, tracer)) = self.live.take() {
            tracer.end_span(kernel.now_ns());
        }
    }
}

impl Kernel {
    /// Installs `tracer` as the sink for spans, events and metrics
    /// (replacing any previous one). Pass `None` to disable tracing.
    pub fn set_tracer(&self, tracer: Option<Rc<Tracer>>) {
        *self.tracer_slot().borrow_mut() = tracer;
    }

    /// The installed tracer, if any.
    pub fn tracer(&self) -> Option<Rc<Tracer>> {
        self.tracer_slot().borrow().clone()
    }

    /// The track (Chrome `tid`) current events land on: shard id + 1
    /// inside a [`Kernel::shard_scope`], 0 for unsharded work.
    pub fn trace_track(&self) -> u32 {
        match self.current_shard() {
            Some(s) => s as u32 + 1,
            None => 0,
        }
    }

    /// Opens a sync span stamped with the current virtual time; the
    /// returned guard closes it when dropped. Charges made while the
    /// guard is the innermost open span are attributed to it.
    pub fn trace_span(&self, cat: &'static str, name: &'static str) -> TraceSpan {
        match self.tracer() {
            Some(t) => {
                t.begin_span(self.now_ns(), cat, name, self.trace_track());
                TraceSpan {
                    live: Some((self.clone(), t)),
                }
            }
            None => TraceSpan::disabled(),
        }
    }

    /// Records a point event with up to three numeric arguments.
    pub fn trace_instant(
        &self,
        cat: &'static str,
        name: &'static str,
        args: &[(&'static str, u64)],
    ) {
        if let Some(t) = self.tracer() {
            t.instant(self.now_ns(), cat, name, self.trace_track(), args);
        }
    }

    /// Opens request `(key, id)` — an id-keyed async span that may
    /// outlive the opening call stack (a URB completing later). Its
    /// latency lands in the registry histogram named `key` when the
    /// matching [`Kernel::trace_req_end`] runs.
    pub fn trace_req_begin(&self, key: &'static str, id: u64) {
        if let Some(t) = self.tracer() {
            t.req_begin(self.now_ns(), key, id, self.trace_track());
        }
    }

    /// Closes request `(key, id)`, recording its virtual-time latency.
    pub fn trace_req_end(&self, key: &'static str, id: u64) {
        if let Some(t) = self.tracer() {
            t.req_end(self.now_ns(), key, id, self.trace_track());
        }
    }

    /// Records one sample into the named metrics histogram.
    pub fn metric(&self, name: &str, value: u64) {
        if let Some(t) = self.tracer() {
            t.registry().record(name, value);
        }
    }

    /// Bumps the named metrics counter.
    pub fn metric_count(&self, name: &str, delta: u64) {
        if let Some(t) = self.tracer() {
            t.registry().count(name, delta);
        }
    }

    /// Forwards a charge to span attribution (called from
    /// [`Kernel::charge`]; never advances time itself).
    pub(crate) fn trace_attribute(&self, class: CpuClass, ns: u64) {
        if let Some(t) = self.tracer() {
            t.attribute(class.into(), ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs;

    #[test]
    fn spans_attribute_charges_and_reconcile_with_the_clock() {
        let k = Kernel::new();
        let t = Tracer::new();
        k.set_tracer(Some(Rc::clone(&t)));
        {
            let _run = k.trace_span("kernel", "run");
            k.charge_kernel(1_000);
            {
                let _inner = k.trace_span("xpc", "call");
                k.charge_user(250);
            }
            k.charge_kernel(50);
        }
        let cov = t.coverage();
        assert_eq!(cov.attributed, [1_050, 250]);
        assert_eq!(cov.unattributed, [0, 0]);
        // Leaf self-times reconcile exactly with the clock's busy time.
        let snap = k.snapshot();
        assert_eq!(t.leaf_self_ns(CostClass::Kernel), snap.kernel_busy_ns);
        assert_eq!(t.leaf_self_ns(CostClass::User), snap.user_busy_ns);
        decaf_trace::validate_nesting(&t.events()).unwrap();
    }

    #[test]
    fn disabled_tracing_charges_zero_virtual_time() {
        let traced = Kernel::new();
        traced.set_tracer(Some(Tracer::new()));
        let untraced = Kernel::new();
        for k in [&traced, &untraced] {
            let _span = k.trace_span("kernel", "run");
            k.trace_instant("ring", "post", &[("slot", 1)]);
            k.trace_req_begin("req", 7);
            k.charge_kernel(100);
            k.trace_req_end("req", 7);
        }
        assert_eq!(traced.now_ns(), untraced.now_ns(), "zero observer effect");
        assert!(untraced.tracer().is_none());
    }

    #[test]
    fn shard_scope_routes_events_to_shard_tracks() {
        let k = Kernel::new();
        let t = Tracer::new();
        k.set_tracer(Some(Rc::clone(&t)));
        k.trace_instant("x", "main", &[]);
        k.shard_scope(2, || k.trace_instant("x", "sharded", &[]));
        let evs = t.events();
        assert_eq!(evs[0].track, 0);
        assert_eq!(evs[1].track, 3);
    }

    #[test]
    fn dispatch_spans_cover_irq_timer_and_work() {
        let k = Kernel::new();
        let t = Tracer::new();
        k.set_tracer(Some(Rc::clone(&t)));
        k.request_irq(1, "nic", Rc::new(|_| {})).unwrap();
        k.raise_irq(1);
        let timer = k.timer_create("tick", Rc::new(|_| {}));
        k.timer_arm(timer, 10);
        k.schedule_work("job", |_| {});
        k.run_for(100);
        let names: Vec<String> = t.events().iter().map(|e| e.name.to_string()).collect();
        for expected in ["irq", "timer", "work"] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
        // Dispatch overhead lands inside the spans, not unattributed.
        let cov = t.coverage();
        assert_eq!(cov.unattributed, [0, 0]);
        assert!(
            cov.attributed[0] >= costs::IRQ_ENTRY_NS + 2 * costs::SOFTIRQ_DISPATCH_NS,
            "dispatch charges attributed to dispatch spans"
        );
        decaf_trace::validate_nesting(&t.events()).unwrap();
    }
}
