//! USB core: host controller registration and URB submission.

use std::collections::HashMap;
use std::rc::Rc;

use crate::error::{KError, KResult};
use crate::kernel::Kernel;

/// Transfer direction of a USB request block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UrbDir {
    /// Device-to-host.
    In,
    /// Host-to-device.
    Out,
}

/// A USB request block.
#[derive(Debug, Clone)]
pub struct Urb {
    /// Endpoint number.
    pub endpoint: u8,
    /// Transfer direction.
    pub dir: UrbDir,
    /// Data to send (Out) or expected length marker (In).
    pub data: Vec<u8>,
}

/// Completion callback: receives the transfer result (data for In URBs).
pub type UrbCompletion = Rc<dyn Fn(&Kernel, KResult<Vec<u8>>)>;

/// The URB submission callback.
pub type SubmitOp = Rc<dyn Fn(&Kernel, Urb, UrbCompletion) -> KResult<()>>;

/// Host-controller-driver callbacks.
#[derive(Clone)]
pub struct HcdOps {
    /// Submits an URB; completion is invoked when the transfer finishes.
    pub submit: SubmitOp,
}

struct Hcd {
    ops: HcdOps,
    submitted: u64,
}

/// USB-subsystem state stored inside the kernel.
#[derive(Default)]
pub struct UsbState {
    hcds: HashMap<String, Hcd>,
}

impl Kernel {
    /// Registers a host controller driver (like `usb_add_hcd`).
    pub fn usb_register_hcd(&self, name: impl Into<String>, ops: HcdOps) -> KResult<()> {
        let name = name.into();
        let mut usb = self.inner().usb.borrow_mut();
        if usb.hcds.contains_key(&name) {
            return Err(KError::Busy);
        }
        usb.hcds.insert(name, Hcd { ops, submitted: 0 });
        Ok(())
    }

    /// Unregisters a host controller.
    pub fn usb_unregister_hcd(&self, name: &str) {
        self.inner().usb.borrow_mut().hcds.remove(name);
    }

    /// Submits an URB to a host controller (like `usb_submit_urb`).
    pub fn usb_submit_urb(&self, hcd: &str, urb: Urb, completion: UrbCompletion) -> KResult<()> {
        let ops = {
            let mut usb = self.inner().usb.borrow_mut();
            let h = usb.hcds.get_mut(hcd).ok_or(KError::NoDev)?;
            h.submitted += 1;
            h.ops.clone()
        };
        (ops.submit)(self, urb, completion)
    }

    /// Number of URBs submitted to `hcd` so far.
    pub fn usb_urbs_submitted(&self, hcd: &str) -> u64 {
        self.inner()
            .usb
            .borrow()
            .hcds
            .get(hcd)
            .map_or(0, |h| h.submitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn submit_reaches_hcd_and_completion_fires() {
        let k = Kernel::new();
        let done = Rc::new(Cell::new(false));
        let ops = HcdOps {
            submit: Rc::new(|k, urb, completion| {
                assert_eq!(urb.dir, UrbDir::Out);
                completion(k, Ok(urb.data));
                Ok(())
            }),
        };
        k.usb_register_hcd("uhci", ops).unwrap();
        let d = Rc::clone(&done);
        k.usb_submit_urb(
            "uhci",
            Urb {
                endpoint: 2,
                dir: UrbDir::Out,
                data: vec![1, 2, 3],
            },
            Rc::new(move |_, result| {
                assert_eq!(result.unwrap().len(), 3);
                d.set(true);
            }),
        )
        .unwrap();
        assert!(done.get());
        assert_eq!(k.usb_urbs_submitted("uhci"), 1);
    }

    #[test]
    fn unknown_hcd_is_nodev() {
        let k = Kernel::new();
        let r = k.usb_submit_urb(
            "missing",
            Urb {
                endpoint: 0,
                dir: UrbDir::In,
                data: vec![],
            },
            Rc::new(|_, _| {}),
        );
        assert_eq!(r, Err(KError::NoDev));
    }

    #[test]
    fn duplicate_hcd_rejected() {
        let k = Kernel::new();
        let ops = HcdOps {
            submit: Rc::new(|_, _, _| Ok(())),
        };
        k.usb_register_hcd("uhci", ops.clone()).unwrap();
        assert_eq!(k.usb_register_hcd("uhci", ops), Err(KError::Busy));
    }
}
