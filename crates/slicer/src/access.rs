//! Field-access analysis: which fields does user-level code touch?
//!
//! This drives the field-selective marshaling masks: "structures defined
//! for the kernel's internal use but shared with drivers are passed with
//! only the driver-accessed fields" (paper §2.3). The analysis walks
//! every user-partition function, resolves `param->field` accesses to the
//! parameter's declared struct type, and classifies each as a read or a
//! write. Explicit `DECAF_XVAR` annotations (§3.2.4) are merged on top —
//! they exist precisely because fields referenced only from already-ported
//! managed code are invisible to the C analysis.

use std::collections::HashMap;

use decaf_xdr::mask::{Access, FieldMask, MaskSet};

use crate::ast::{FuncDef, Program};
use crate::lex::Tok;

/// Raw access kind as written in `DECAF_XVAR` annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawAccess {
    /// Read.
    R,
    /// Write.
    W,
    /// Read and write.
    RW,
}

impl RawAccess {
    /// Converts to the marshaling mask access kind.
    pub fn to_access(self) -> Access {
        match self {
            RawAccess::R => Access::Read,
            RawAccess::W => Access::Write,
            RawAccess::RW => Access::ReadWrite,
        }
    }
}

/// One observed field access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldAccess {
    /// Struct type accessed.
    pub struct_name: String,
    /// Field name.
    pub field: String,
    /// Read or write.
    pub access: Access,
    /// Function the access occurs in.
    pub function: String,
}

/// Scans one function for `param->field` accesses.
pub fn accesses_in(f: &FuncDef) -> Vec<FieldAccess> {
    let mut out = Vec::new();
    let body = &f.body;
    let mut i = 0;
    while i < body.len() {
        // `DECAF_XVAR(var->field)` annotations are handled separately
        // below; skip their tokens so the arrow inside is not double
        // counted as an implicit read.
        if let Some(Tok::Ident(name)) = body.get(i).map(|t| &t.tok) {
            if name.starts_with("DECAF_") {
                i += 6;
                continue;
            }
        }
        let (var, field) = match (
            body.get(i).map(|t| &t.tok),
            body.get(i + 1).map(|t| &t.tok),
            body.get(i + 2).map(|t| &t.tok),
        ) {
            (Some(Tok::Ident(v)), Some(Tok::Arrow), Some(Tok::Ident(fld))) => (v, fld),
            _ => {
                i += 1;
                continue;
            }
        };
        let Some(struct_name) = f.param_struct(var) else {
            i += 1;
            continue;
        };
        // Skip embedded-struct member chains (`a->hw.mac_type`): the
        // access classifies against the outermost field.
        let mut j = i + 3;
        while matches!(body.get(j).map(|t| &t.tok), Some(Tok::Punct('.')))
            && matches!(body.get(j + 1).map(|t| &t.tok), Some(Tok::Ident(_)))
        {
            j += 2;
        }
        // Writes: `p->f = ...` (not `==`), `p->f += ...`.
        let access = match body.get(j).map(|t| &t.tok) {
            Some(Tok::Punct('=')) => Access::Write,
            Some(Tok::OpAssign(_)) => Access::ReadWrite,
            _ => Access::Read,
        };
        out.push(FieldAccess {
            struct_name: struct_name.to_string(),
            field: field.clone(),
            access,
            function: f.name.clone(),
        });
        i += 1;
    }
    // Explicit annotations.
    for dv in &f.decaf_vars {
        if let Some(struct_name) = f.param_struct(&dv.var) {
            out.push(FieldAccess {
                struct_name: struct_name.to_string(),
                field: dv.field.clone(),
                access: dv.access.to_access(),
                function: f.name.clone(),
            });
        }
    }
    out
}

/// Builds the per-type field masks for the user partition.
///
/// Only fields accessed by some user function are marshaled; everything
/// else stays kernel-private.
pub fn build_masks(program: &Program, user_fns: &[String]) -> MaskSet {
    let mut per_type: HashMap<String, FieldMask> = HashMap::new();
    for name in user_fns {
        let Some(f) = program.find_function(name) else {
            continue;
        };
        for acc in accesses_in(f) {
            per_type
                .entry(acc.struct_name)
                .or_default()
                .record(acc.field, acc.access);
        }
    }
    let mut masks = MaskSet::selective();
    for (ty, mask) in per_type {
        masks.insert(ty, mask);
    }
    masks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use decaf_xdr::mask::Direction;

    const SRC: &str = r"
struct adapter { int msg_enable; int speed; int irq_count; int kernel_private; };
int user_configure(struct adapter *a, int v) @export {
    a->msg_enable = v;
    if (a->speed == 100) { a->msg_enable += 1; }
    return a->speed;
}
int kernel_isr(struct adapter *a) @irq {
    a->irq_count = a->irq_count + 1;
    return 0;
}
";

    #[test]
    fn reads_and_writes_classified() {
        let p = parse(SRC).unwrap();
        let f = p.find_function("user_configure").unwrap();
        let acc = accesses_in(f);
        assert!(acc
            .iter()
            .any(|a| a.field == "msg_enable" && a.access == Access::Write));
        assert!(acc
            .iter()
            .any(|a| a.field == "msg_enable" && a.access == Access::ReadWrite));
        assert!(acc
            .iter()
            .any(|a| a.field == "speed" && a.access == Access::Read));
    }

    #[test]
    fn masks_cover_only_user_accessed_fields() {
        let p = parse(SRC).unwrap();
        let masks = build_masks(&p, &["user_configure".to_string()]);
        // msg_enable written and read-modified → both directions.
        assert!(masks.includes("adapter", "msg_enable", Direction::In));
        assert!(masks.includes("adapter", "msg_enable", Direction::Out));
        // speed only read → into user only.
        assert!(masks.includes("adapter", "speed", Direction::In));
        assert!(!masks.includes("adapter", "speed", Direction::Out));
        // Fields only the kernel touches never cross.
        assert!(!masks.includes("adapter", "irq_count", Direction::In));
        assert!(!masks.includes("adapter", "kernel_private", Direction::In));
    }

    #[test]
    fn decaf_annotations_extend_masks() {
        let src = r"
struct adapter { int hidden; };
int entry(struct adapter *a) @export {
    DECAF_WVAR(a->hidden);
    return 0;
}
";
        let p = parse(src).unwrap();
        let masks = build_masks(&p, &["entry".to_string()]);
        assert!(masks.includes("adapter", "hidden", Direction::Out));
        assert!(!masks.includes("adapter", "hidden", Direction::In));
    }
}
