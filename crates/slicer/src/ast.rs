//! The mini-C abstract syntax: structures, functions, attributes.

use crate::lex::Token;

/// A C type as the slicer understands it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CType {
    /// `void`.
    Void,
    /// `int` (also stands in for `short`/`char` scalars).
    Int,
    /// `unsigned int` / `u32` / `uint32_t`.
    UInt,
    /// `long long`.
    LongLong,
    /// `unsigned long long` / `u64`.
    ULongLong,
    /// `u8`/`char` used as raw byte data.
    Byte,
    /// A struct by value: `struct X` embedded.
    Struct(String),
    /// A pointer to a struct: `struct X *`.
    StructPtr(String),
    /// A pointer to a scalar: `TYPE *` — requires an `@exp(LEN)`
    /// annotation to marshal (Figure 3's transformation target).
    ScalarPtr(Box<CType>),
    /// Fixed-size array: `TYPE name[N]`.
    Array(Box<CType>, usize),
}

impl CType {
    /// Whether this type is (or points to) a struct named `name`.
    pub fn struct_name(&self) -> Option<&str> {
        match self {
            CType::Struct(n) | CType::StructPtr(n) => Some(n),
            _ => None,
        }
    }

    /// Renders the type in C syntax (declarator name supplied separately).
    pub fn c_syntax(&self) -> String {
        match self {
            CType::Void => "void".into(),
            CType::Int => "int".into(),
            CType::UInt => "unsigned int".into(),
            CType::LongLong => "long long".into(),
            CType::ULongLong => "unsigned long long".into(),
            CType::Byte => "u8".into(),
            CType::Struct(n) => format!("struct {n}"),
            CType::StructPtr(n) => format!("struct {n} *"),
            CType::ScalarPtr(inner) => format!("{} *", inner.c_syntax()),
            CType::Array(inner, n) => format!("{}[{n}]", inner.c_syntax()),
        }
    }
}

/// A field of a mini-C struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: CType,
    /// `@exp(LEN)` marshaling annotation: the pointed-to array length, by
    /// constant name or literal value.
    pub exp_len: Option<usize>,
}

/// A mini-C struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields in order.
    pub fields: Vec<Field>,
    /// Number of annotated fields (contributes to Table 2's annotation
    /// count).
    pub annotation_count: usize,
}

/// Function attributes: the slicer's configuration surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attr {
    /// Interrupt handler: critical root, must stay in the kernel.
    Irq,
    /// Called with a spinlock held: critical root.
    SpinlockHeld,
    /// Timer callback (softirq priority): critical root.
    Timer,
    /// High-bandwidth/low-latency data path: critical root.
    Datapath,
    /// Explicitly pinned to the kernel (e.g. the paper's four ethtool
    /// functions with the interrupt data race, §5).
    KernelOnly,
    /// Driver-interface function invoked by the kernel (module init,
    /// netdev ops): an upcall entry point if it moves to user level.
    Export,
    /// Stays in C at user level (driver library), not converted to the
    /// managed language.
    Library,
}

impl Attr {
    /// Whether this attribute makes the function a critical root.
    pub fn is_critical_root(self) -> bool {
        matches!(
            self,
            Attr::Irq | Attr::SpinlockHeld | Attr::Timer | Attr::Datapath
        )
    }

    /// Parses the attribute name (without `@`).
    pub fn from_name(name: &str) -> Option<Attr> {
        Some(match name {
            "irq" => Attr::Irq,
            "spinlock_held" => Attr::SpinlockHeld,
            "timer" => Attr::Timer,
            "datapath" => Attr::Datapath,
            "kernel_only" => Attr::KernelOnly,
            "export" => Attr::Export,
            "library" => Attr::Library,
            _ => return None,
        })
    }
}

/// An explicit `DECAF_XVAR` marshaling annotation found in a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecafVar {
    /// `R`, `W` or `RW`.
    pub access: crate::access::RawAccess,
    /// Parameter variable name.
    pub var: String,
    /// Field accessed through the variable.
    pub field: String,
}

/// A mini-C function definition.
#[derive(Debug, Clone)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters in order.
    pub params: Vec<(CType, String)>,
    /// Attributes.
    pub attrs: Vec<Attr>,
    /// Body tokens (between, not including, the braces).
    pub body: Vec<Token>,
    /// The function's full source text (signature through closing brace,
    /// including the immediately preceding comment block).
    pub source: String,
    /// Non-blank source lines of the definition.
    pub loc: usize,
    /// 1-based line the definition starts on.
    pub line: usize,
    /// Explicit `DECAF_XVAR` annotations found in the body.
    pub decaf_vars: Vec<DecafVar>,
}

impl FuncDef {
    /// Whether the function carries `attr`.
    pub fn has_attr(&self, attr: Attr) -> bool {
        self.attrs.contains(&attr)
    }

    /// The declared struct type of a pointer parameter, if any.
    pub fn param_struct(&self, var: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(_, n)| n == var)
            .and_then(|(t, _)| match t {
                CType::StructPtr(s) => Some(s.as_str()),
                _ => None,
            })
    }
}

/// A parsed mini-C translation unit.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Struct definitions in order.
    pub structs: Vec<StructDef>,
    /// Function definitions in order.
    pub functions: Vec<FuncDef>,
    /// Named constants (`const NAME = N;`).
    pub consts: std::collections::HashMap<String, usize>,
    /// Total non-blank source lines.
    pub total_loc: usize,
}

impl Program {
    /// Finds a struct definition by name.
    pub fn find_struct(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Finds a function definition by name.
    pub fn find_function(&self, name: &str) -> Option<&FuncDef> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total annotations: field `@exp`s, function attributes and
    /// `DECAF_XVAR`s — the Table 2 "DriverSlicer Annotations" column.
    pub fn annotation_count(&self) -> usize {
        let fields: usize = self.structs.iter().map(|s| s.annotation_count).sum();
        let attrs: usize = self.functions.iter().map(|f| f.attrs.len()).sum();
        let decafs: usize = self.functions.iter().map(|f| f.decaf_vars.len()).sum();
        fields + attrs + decafs
    }
}
