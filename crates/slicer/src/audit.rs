//! Error-handling audit (paper §5.1, Figures 4 and 5).
//!
//! The paper's biggest concrete benefit from Java was error handling:
//! converting 92 functions to checked exceptions uncovered 28 cases of
//! ignored or mishandled error codes and deleted ~675 lines (~8%) of
//! `if (ret) return ret;` propagation boilerplate from `e1000_hw.c`.
//! This pass finds both populations statically:
//!
//! * **ignored returns** — a call to an error-returning function whose
//!   result is never tested (neither branched on nor propagated);
//! * **propagation lines** — `if (ret) return ret;` / `if (ret) goto
//!   out;` boilerplate that a `Result`/exception regime deletes outright.

use std::collections::HashSet;

use crate::ast::{CType, Program};
use crate::callgraph::CallGraph;
use crate::lex::{Tok, Token};

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// The function containing the problem.
    pub function: String,
    /// The callee whose return value is mishandled.
    pub callee: String,
    /// 1-based source line of the call.
    pub line: usize,
}

/// Results of the error-handling audit.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Calls whose error return is ignored (the paper found 28 in E1000).
    pub ignored_returns: Vec<AuditFinding>,
    /// `if (ret) return/goto` boilerplate lines removable by exceptions
    /// (the paper deleted ~675 from e1000_hw.c).
    pub propagation_lines: usize,
    /// Functions using goto-label cleanup (candidates for the Figure 4
    /// nested-cleanup conversion).
    pub goto_cleanup_functions: Vec<String>,
    /// Error-returning calls that were checked correctly.
    pub checked_calls: usize,
}

impl AuditReport {
    /// Percentage of lines deleted if the propagation boilerplate goes
    /// away (each `if (ret) ...` pattern is one line in the idiom).
    pub fn removable_fraction(&self, total_loc: usize) -> f64 {
        if total_loc == 0 {
            return 0.0;
        }
        self.propagation_lines as f64 / total_loc as f64
    }
}

/// The set of functions treated as error-returning: every defined
/// function returning `int` plus well-known kernel APIs.
pub fn error_returning_set(program: &Program) -> HashSet<String> {
    let mut set: HashSet<String> = program
        .functions
        .iter()
        .filter(|f| f.ret == CType::Int)
        .map(|f| f.name.clone())
        .collect();
    for api in [
        "pci_enable_device",
        "pci_request_regions",
        "request_irq",
        "register_netdev",
        "snd_card_register",
        "usb_submit_urb",
        "input_register_device",
        "dma_alloc",
        "kmalloc_checked",
    ] {
        set.insert(api.to_string());
    }
    set
}

/// Runs the audit over every function in the program.
pub fn audit(program: &Program) -> AuditReport {
    let error_fns = error_returning_set(program);
    let _graph = CallGraph::build(program);
    let mut report = AuditReport::default();

    for f in &program.functions {
        let body = &f.body;
        let mut has_goto = false;
        let mut has_label = false;
        let mut i = 0;
        while i < body.len() {
            match &body[i].tok {
                Tok::Ident(kw) if kw == "goto" => has_goto = true,
                Tok::Ident(_) if is_label(body, i) => has_label = true,
                Tok::Ident(kw) if kw == "if" && is_propagation(body, i) => {
                    report.propagation_lines += 1;
                }
                _ => {}
            }

            // Pattern: `var = callee ( ... )` or bare `callee ( ... ) ;`.
            if let Some((callee, ret_var, after)) = match_call(body, i, &error_fns) {
                let line = body[i].line;
                match ret_var {
                    None => {
                        // Bare call: result discarded outright...unless it
                        // is itself inside a condition or return.
                        if !in_condition_or_return(body, i) {
                            report.ignored_returns.push(AuditFinding {
                                function: f.name.clone(),
                                callee,
                                line,
                            });
                        } else {
                            report.checked_calls += 1;
                        }
                    }
                    Some(var) => {
                        if checked_later(body, after, &var) {
                            report.checked_calls += 1;
                        } else {
                            report.ignored_returns.push(AuditFinding {
                                function: f.name.clone(),
                                callee,
                                line,
                            });
                        }
                    }
                }
                i = after;
                continue;
            }
            i += 1;
        }
        if has_goto && has_label {
            report.goto_cleanup_functions.push(f.name.clone());
        }
    }
    report
}

/// Matches `IDENT :` at statement position (a label).
fn is_label(body: &[Token], i: usize) -> bool {
    matches!(body.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
        && (i == 0
            || matches!(
                body.get(i - 1).map(|t| &t.tok),
                Some(Tok::Punct(';')) | Some(Tok::Punct('{')) | Some(Tok::Punct('}'))
            ))
}

/// Matches the `if ( var <cmp>? ... ) return/goto` propagation idiom at
/// an `if` token.
fn is_propagation(body: &[Token], i: usize) -> bool {
    if !matches!(body.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
        return false;
    }
    // Find the closing paren of the condition.
    let mut depth = 0usize;
    let mut j = i + 1;
    let mut saw_ident = false;
    while let Some(t) = body.get(j) {
        match &t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Ident(_) => saw_ident = true,
            _ => {}
        }
        j += 1;
    }
    if !saw_ident {
        return false;
    }
    matches!(
        body.get(j + 1).map(|t| &t.tok),
        Some(Tok::Ident(kw)) if kw == "return" || kw == "goto"
    )
}

/// Matches a call to an error-returning function at `i`.
///
/// Returns `(callee, Some(assigned var) | None, index after the call)`.
fn match_call(
    body: &[Token],
    i: usize,
    error_fns: &HashSet<String>,
) -> Option<(String, Option<String>, usize)> {
    // `var = callee (`
    if let (
        Some(Tok::Ident(var)),
        Some(Tok::Punct('=')),
        Some(Tok::Ident(callee)),
        Some(Tok::Punct('(')),
    ) = (
        body.get(i).map(|t| &t.tok),
        body.get(i + 1).map(|t| &t.tok),
        body.get(i + 2).map(|t| &t.tok),
        body.get(i + 3).map(|t| &t.tok),
    ) {
        if error_fns.contains(callee) {
            let after = skip_call(body, i + 3);
            return Some((callee.clone(), Some(var.clone()), after));
        }
    }
    // `callee (` anywhere else: a call whose result is consumed in place
    // (condition, return) or discarded (bare statement). Classification
    // happens at the call site via `in_condition_or_return`.
    if let (Some(Tok::Ident(callee)), Some(Tok::Punct('('))) =
        (body.get(i).map(|t| &t.tok), body.get(i + 1).map(|t| &t.tok))
    {
        if error_fns.contains(callee) {
            let after = skip_call(body, i + 1);
            return Some((callee.clone(), None, after));
        }
    }
    None
}

/// Returns the index just past a call's closing parenthesis.
fn skip_call(body: &[Token], open_paren: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open_paren;
    while let Some(t) = body.get(j) {
        match &t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    body.len()
}

/// Whether the call at `i` sits inside an `if (...)` condition or a
/// `return` expression (both consume the result).
fn in_condition_or_return(body: &[Token], i: usize) -> bool {
    // Walk backwards past nothing-but-operators to find `if (` or
    // `return`.
    let mut j = i;
    while j > 0 {
        match &body[j - 1].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => return false,
            Tok::Ident(kw) if kw == "return" => return true,
            Tok::Ident(kw) if kw == "if" => return true,
            _ => j -= 1,
        }
    }
    false
}

/// Whether `var` is tested or propagated between `from` and either its
/// reassignment or the end of the function.
fn checked_later(body: &[Token], from: usize, var: &str) -> bool {
    let mut i = from;
    while i < body.len() {
        match &body[i].tok {
            Tok::Ident(kw) if kw == "if" => {
                // Is `var` inside the condition?
                let mut depth = 0usize;
                let mut j = i + 1;
                while let Some(t) = body.get(j) {
                    match &t.tok {
                        Tok::Punct('(') => depth += 1,
                        Tok::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Ident(id) if id == var => return true,
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
            }
            Tok::Ident(kw) if kw == "return" => {
                // `return var;` propagates the error upward: checked.
                if matches!(body.get(i + 1).map(|t| &t.tok), Some(Tok::Ident(id)) if id == var) {
                    return true;
                }
            }
            Tok::Ident(id) if id == var => {
                // Reassignment kills the pending value.
                if matches!(body.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('='))) {
                    return false;
                }
            }
            _ => {}
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const SRC: &str = r"
struct hw { int state; };

int read_phy_reg(struct hw *h, int reg) { return 0; }
int write_phy_reg(struct hw *h, int reg, int val) { return 0; }

/* The Figure 5 idiom: every call checked and propagated by hand. */
int config_dsp(struct hw *h) {
    int ret_val;
    ret_val = read_phy_reg(h, 47);
    if (ret_val) return ret_val;
    ret_val = write_phy_reg(h, 47, 3);
    if (ret_val) return ret_val;
    ret_val = write_phy_reg(h, 0, 9);
    if (ret_val) goto err;
    return 0;
err:
    h->state = 0;
    return ret_val;
}

/* The bug class the paper found 28 of: errors silently dropped. */
int sloppy_reset(struct hw *h) {
    int ret_val;
    write_phy_reg(h, 1, 2);
    ret_val = read_phy_reg(h, 5);
    h->state = 1;
    return 0;
}

int fine_direct(struct hw *h) {
    if (read_phy_reg(h, 9)) { return 1; }
    return write_phy_reg(h, 9, 1);
}
";

    #[test]
    fn finds_ignored_returns() {
        let p = parse(SRC).unwrap();
        let r = audit(&p);
        let in_sloppy: Vec<_> = r
            .ignored_returns
            .iter()
            .filter(|f| f.function == "sloppy_reset")
            .collect();
        assert_eq!(
            in_sloppy.len(),
            2,
            "bare call + never-tested ret_val: {in_sloppy:?}"
        );
        assert!(in_sloppy.iter().any(|f| f.callee == "write_phy_reg"));
        assert!(in_sloppy.iter().any(|f| f.callee == "read_phy_reg"));
    }

    #[test]
    fn counts_propagation_boilerplate() {
        let p = parse(SRC).unwrap();
        let r = audit(&p);
        // Three `if (ret_val) return/goto` lines in config_dsp.
        assert_eq!(r.propagation_lines, 3);
        assert!(r.removable_fraction(p.total_loc) > 0.0);
    }

    #[test]
    fn checked_and_propagated_calls_are_clean() {
        let p = parse(SRC).unwrap();
        let r = audit(&p);
        assert!(!r.ignored_returns.iter().any(|f| f.function == "config_dsp"));
        assert!(!r
            .ignored_returns
            .iter()
            .any(|f| f.function == "fine_direct"));
        assert!(r.checked_calls >= 5);
    }

    #[test]
    fn goto_cleanup_functions_identified() {
        let p = parse(SRC).unwrap();
        let r = audit(&p);
        assert_eq!(r.goto_cleanup_functions, vec!["config_dsp"]);
    }

    #[test]
    fn findings_carry_lines() {
        let p = parse(SRC).unwrap();
        let r = audit(&p);
        for f in &r.ignored_returns {
            assert!(f.line > 0);
        }
    }
}
