//! Call-graph construction over mini-C bodies.

use std::collections::{HashMap, HashSet};

use crate::ast::Program;
use crate::lex::Tok;

/// Control-flow keywords that look like calls but are not.
const KEYWORDS: &[&str] = &[
    "if",
    "else",
    "while",
    "for",
    "switch",
    "return",
    "sizeof",
    "goto",
    "do",
    "case",
    "break",
    "continue",
    "DECAF_RVAR",
    "DECAF_WVAR",
    "DECAF_RWVAR",
];

/// The call graph of a program.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// caller → callees (defined and undefined), in first-call order.
    pub calls: HashMap<String, Vec<String>>,
    /// callee → callers.
    pub callers: HashMap<String, Vec<String>>,
}

impl CallGraph {
    /// Builds the call graph by scanning every function body for
    /// `identifier (` call sites.
    pub fn build(program: &Program) -> Self {
        let mut graph = CallGraph::default();
        for f in &program.functions {
            let mut callees = Vec::new();
            let mut seen = HashSet::new();
            let body = &f.body;
            for i in 0..body.len() {
                if let Tok::Ident(name) = &body[i].tok {
                    if KEYWORDS.contains(&name.as_str()) {
                        continue;
                    }
                    if matches!(body.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
                        // Exclude declarations like `struct x (` (none in
                        // mini-C) and casts; identifier+paren is a call.
                        if seen.insert(name.clone()) {
                            callees.push(name.clone());
                        }
                        graph
                            .callers
                            .entry(name.clone())
                            .or_default()
                            .push(f.name.clone());
                    }
                }
            }
            graph.calls.insert(f.name.clone(), callees);
        }
        graph
    }

    /// The set of functions transitively reachable from `roots`, following
    /// only edges into *defined* functions.
    pub fn reachable_from(&self, roots: &[String], program: &Program) -> HashSet<String> {
        let defined: HashSet<&str> = program.functions.iter().map(|f| f.name.as_str()).collect();
        let mut visited: HashSet<String> = HashSet::new();
        let mut stack: Vec<String> = roots
            .iter()
            .filter(|r| defined.contains(r.as_str()))
            .cloned()
            .collect();
        while let Some(f) = stack.pop() {
            if !visited.insert(f.clone()) {
                continue;
            }
            if let Some(callees) = self.calls.get(&f) {
                for c in callees {
                    if defined.contains(c.as_str()) && !visited.contains(c) {
                        stack.push(c.clone());
                    }
                }
            }
        }
        visited
    }

    /// Callees of `f` that have no definition in the program (kernel API
    /// imports like `readl`, `pci_read_config_word`...).
    pub fn undefined_callees(&self, f: &str, program: &Program) -> Vec<String> {
        let defined: HashSet<&str> = program.functions.iter().map(|f| f.name.as_str()).collect();
        self.calls
            .get(f)
            .map(|cs| {
                cs.iter()
                    .filter(|c| !defined.contains(c.as_str()))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const SRC: &str = r"
struct d { int x; };
int isr(struct d *p) @irq { handle_rx(p); return 0; }
int handle_rx(struct d *p) { readl(p); refill(p); return 0; }
int refill(struct d *p) { return 0; }
int config(struct d *p) @export { set_speed(p); return 0; }
int set_speed(struct d *p) { return 0; }
";

    #[test]
    fn edges_found() {
        let p = parse(SRC).unwrap();
        let g = CallGraph::build(&p);
        assert_eq!(g.calls["isr"], vec!["handle_rx"]);
        assert_eq!(g.calls["handle_rx"], vec!["readl", "refill"]);
        assert_eq!(g.callers["refill"], vec!["handle_rx"]);
    }

    #[test]
    fn reachability_follows_defined_edges() {
        let p = parse(SRC).unwrap();
        let g = CallGraph::build(&p);
        let reach = g.reachable_from(&["isr".to_string()], &p);
        assert!(reach.contains("isr"));
        assert!(reach.contains("handle_rx"));
        assert!(reach.contains("refill"));
        assert!(!reach.contains("config"));
        assert!(!reach.contains("set_speed"));
        assert!(
            !reach.contains("readl"),
            "undefined callees are not functions"
        );
    }

    #[test]
    fn undefined_callees_are_kernel_imports() {
        let p = parse(SRC).unwrap();
        let g = CallGraph::build(&p);
        assert_eq!(g.undefined_callees("handle_rx", &p), vec!["readl"]);
        assert!(g.undefined_callees("refill", &p).is_empty());
    }

    #[test]
    fn keywords_are_not_calls() {
        let p = parse("int f(int x) { if (x) { return 0; } while (x) { g(); } return 1; }\nint g() { return 0; }").unwrap();
        let g = CallGraph::build(&p);
        assert_eq!(g.calls["f"], vec!["g"]);
    }
}
