//! DriverSlicer error type.

use std::fmt;

/// Result alias for slicer operations.
pub type SliceResult<T> = Result<T, SliceError>;

/// Errors raised while parsing or analysing driver source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceError {
    /// The source failed to tokenize or parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A referenced type or function is missing.
    Unknown(String),
    /// XDR generation failed.
    Xdr(String),
}

impl fmt::Display for SliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SliceError::Unknown(what) => write!(f, "unknown reference: {what}"),
            SliceError::Xdr(msg) => write!(f, "xdr generation: {msg}"),
        }
    }
}

impl std::error::Error for SliceError {}

impl From<decaf_xdr::XdrError> for SliceError {
    fn from(e: decaf_xdr::XdrError) -> Self {
        SliceError::Xdr(e.to_string())
    }
}
