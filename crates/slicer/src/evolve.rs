//! Driver evolution support (paper §3.2.4 and §5.2, Table 4).
//!
//! The paper applies all 320 patches between kernels 2.6.18.1 and 2.6.27
//! to the split E1000 driver and classifies where the changes land:
//! overwhelmingly in the decaf driver (4,690 lines) versus the nucleus
//! (381 lines), with only 23 changes touching the user/kernel interface.
//! New structure fields referenced by the decaf driver need a
//! `DECAF_XVAR` annotation so re-running DriverSlicer regenerates
//! marshaling code for them.

use crate::access::RawAccess;
use crate::ast::CType;
use crate::error::{SliceError, SliceResult};
use crate::partition::{Placement, SlicePlan};

/// One upstream patch, reduced to what the classifier needs.
#[derive(Debug, Clone)]
pub struct Patch {
    /// Patch identifier (sequence number).
    pub id: u32,
    /// Function whose body the patch modifies.
    pub target_fn: String,
    /// Lines added + removed in that function.
    pub lines_changed: usize,
    /// A structure field the patch adds, if any — an interface change
    /// when the field must cross the boundary.
    pub new_field: Option<NewField>,
}

/// A structure field added by a patch.
#[derive(Debug, Clone)]
pub struct NewField {
    /// Structure the field is added to.
    pub struct_name: String,
    /// Field name.
    pub field_name: String,
    /// Field type (mini-C).
    pub ty: CType,
    /// Whether the decaf driver accesses the field (requires annotation
    /// and marshaling regeneration).
    pub decaf_accessed: bool,
    /// Access direction if decaf-accessed.
    pub access: RawAccess,
}

/// Where patched lines landed (Table 4 rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvolveReport {
    /// Lines changed in nucleus functions.
    pub nucleus_lines: usize,
    /// Lines changed in decaf-driver functions.
    pub decaf_lines: usize,
    /// Lines changed in driver-library functions.
    pub library_lines: usize,
    /// Changes to the user/kernel interface (new marshaled fields).
    pub interface_changes: usize,
    /// Patches whose target function is unknown (e.g. brand-new
    /// functions; counted as decaf per the paper's observation that new
    /// development lands at user level).
    pub new_function_patches: usize,
    /// Total patches processed.
    pub patches_applied: usize,
}

/// Classifies a patch stream against a slicing plan.
pub fn classify(plan: &SlicePlan, patches: &[Patch]) -> EvolveReport {
    let mut report = EvolveReport::default();
    for p in patches {
        report.patches_applied += 1;
        match plan.placement_of(&p.target_fn) {
            Some(Placement::Nucleus) => report.nucleus_lines += p.lines_changed,
            Some(Placement::Decaf) => report.decaf_lines += p.lines_changed,
            Some(Placement::Library) => report.library_lines += p.lines_changed,
            None => {
                // A new function: new development happens in Java/user
                // level (paper §5.2).
                report.new_function_patches += 1;
                report.decaf_lines += p.lines_changed;
            }
        }
        if let Some(nf) = &p.new_field {
            if nf.decaf_accessed {
                report.interface_changes += 1;
            }
        }
    }
    report
}

/// Applies a new-field patch to mini-C source: inserts the field into the
/// struct and, when the decaf driver accesses it, adds the `DECAF_XVAR`
/// annotation to the first upcall entry point (paper §3.2.4: "These
/// annotations must be placed in entry-point functions through which new
/// fields are referenced").
pub fn apply_new_field(source: &str, plan: &SlicePlan, field: &NewField) -> SliceResult<String> {
    let marker = format!("struct {} {{", field.struct_name);
    let pos = source
        .find(&marker)
        .ok_or_else(|| SliceError::Unknown(format!("struct {}", field.struct_name)))?;
    let insert_at = pos + marker.len();
    let decl = format!("\n    {} {};", field.ty.c_syntax(), field.field_name);
    let mut out = String::with_capacity(source.len() + 64);
    out.push_str(&source[..insert_at]);
    out.push_str(&decl);
    out.push_str(&source[insert_at..]);

    if field.decaf_accessed {
        let entry = plan
            .user_entry_points
            .first()
            .ok_or_else(|| SliceError::Unknown("no upcall entry point".into()))?;
        // Find the entry function's body opening brace and inject the
        // annotation as its first statement.
        let fn_pos = out
            .find(&format!(" {}(", entry.name))
            .or_else(|| out.find(&format!("{}(", entry.name)))
            .ok_or_else(|| SliceError::Unknown(entry.name.clone()))?;
        let brace = out[fn_pos..]
            .find('{')
            .map(|o| fn_pos + o + 1)
            .ok_or_else(|| SliceError::Unknown(format!("{} body", entry.name)))?;
        let var = entry
            .object_params
            .iter()
            .find(|(_, s)| *s == field.struct_name)
            .map(|(p, _)| p.clone())
            .ok_or_else(|| {
                SliceError::Unknown(format!(
                    "entry `{}` has no parameter of struct {}",
                    entry.name, field.struct_name
                ))
            })?;
        let ann = match field.access {
            RawAccess::R => "DECAF_RVAR",
            RawAccess::W => "DECAF_WVAR",
            RawAccess::RW => "DECAF_RWVAR",
        };
        let inject = format!("\n    {ann}({var}->{});", field.field_name);
        let mut final_out = String::with_capacity(out.len() + inject.len());
        final_out.push_str(&out[..brace]);
        final_out.push_str(&inject);
        final_out.push_str(&out[brace..]);
        return Ok(final_out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::partition::{partition, SliceConfig};
    use decaf_xdr::mask::Direction;

    const SRC: &str = r"
struct adapter { int msg_enable; };
int isr(struct adapter *a) @irq { return 0; }
int open_dev(struct adapter *a) @export { a->msg_enable = 1; return 0; }
";

    #[test]
    fn classification_by_placement() {
        let p = parse(SRC).unwrap();
        let plan = partition(&p, &SliceConfig::default()).unwrap();
        let patches = vec![
            Patch {
                id: 1,
                target_fn: "isr".into(),
                lines_changed: 10,
                new_field: None,
            },
            Patch {
                id: 2,
                target_fn: "open_dev".into(),
                lines_changed: 50,
                new_field: None,
            },
            Patch {
                id: 3,
                target_fn: "brand_new_feature".into(),
                lines_changed: 30,
                new_field: None,
            },
        ];
        let report = classify(&plan, &patches);
        assert_eq!(report.nucleus_lines, 10);
        assert_eq!(report.decaf_lines, 80);
        assert_eq!(report.new_function_patches, 1);
        assert_eq!(report.patches_applied, 3);
        assert_eq!(report.interface_changes, 0);
    }

    #[test]
    fn new_field_patch_reslices_with_annotation() {
        let p = parse(SRC).unwrap();
        let plan = partition(&p, &SliceConfig::default()).unwrap();
        let nf = NewField {
            struct_name: "adapter".into(),
            field_name: "wol_enabled".into(),
            ty: CType::Int,
            decaf_accessed: true,
            access: RawAccess::RW,
        };
        let patched = apply_new_field(SRC, &plan, &nf).unwrap();
        assert!(patched.contains("int wol_enabled;"));
        assert!(patched.contains("DECAF_RWVAR(a->wol_enabled);"));

        // Re-running DriverSlicer regenerates marshaling for the field.
        let p2 = parse(&patched).unwrap();
        let plan2 = partition(&p2, &SliceConfig::default()).unwrap();
        assert!(plan2
            .masks
            .includes("adapter", "wol_enabled", Direction::In));
        assert!(plan2
            .masks
            .includes("adapter", "wol_enabled", Direction::Out));
        let fields = plan2.spec.struct_fields("adapter").unwrap();
        assert!(fields.iter().any(|(n, _)| n == "wol_enabled"));
        // One more annotation than before.
        assert_eq!(plan2.annotations, plan.annotations + 1);
    }

    #[test]
    fn interface_changes_counted() {
        let p = parse(SRC).unwrap();
        let plan = partition(&p, &SliceConfig::default()).unwrap();
        let patches = vec![Patch {
            id: 1,
            target_fn: "open_dev".into(),
            lines_changed: 5,
            new_field: Some(NewField {
                struct_name: "adapter".into(),
                field_name: "x".into(),
                ty: CType::Int,
                decaf_accessed: true,
                access: RawAccess::R,
            }),
        }];
        assert_eq!(classify(&plan, &patches).interface_changes, 1);
    }

    #[test]
    fn kernel_private_field_is_not_interface_change() {
        let p = parse(SRC).unwrap();
        let plan = partition(&p, &SliceConfig::default()).unwrap();
        let patches = vec![Patch {
            id: 1,
            target_fn: "isr".into(),
            lines_changed: 2,
            new_field: Some(NewField {
                struct_name: "adapter".into(),
                field_name: "irq_budget".into(),
                ty: CType::Int,
                decaf_accessed: false,
                access: RawAccess::R,
            }),
        }];
        assert_eq!(classify(&plan, &patches).interface_changes, 0);
    }
}
