//! Mini-C tokenizer.

use crate::error::{SliceError, SliceResult};

/// A mini-C token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Num(i64),
    /// String literal (contents only).
    Str(String),
    /// Single punctuation character.
    Punct(char),
    /// `->`.
    Arrow,
    /// `==`, `!=`, `<=`, `>=`, `&&`, `||`, `<<`, `>>`.
    Op2([char; 2]),
    /// Compound assignment: `+=`, `-=`, `|=`, `&=`, `^=`.
    OpAssign(char),
    /// `@attr` attribute marker (name without the `@`).
    AttrMark(String),
}

/// A token with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
    /// Byte offset of the token start in the source.
    pub offset: usize,
}

/// Tokenizes mini-C source. Comments are skipped (the parser recovers
/// comment text for emission from raw byte spans).
pub fn lex(src: &str) -> SliceResult<Vec<Token>> {
    let bytes: Vec<char> = src.chars().collect();
    // Byte offsets per char index (source is ASCII in practice, but stay
    // correct for UTF-8).
    let mut offsets = Vec::with_capacity(bytes.len() + 1);
    let mut off = 0;
    for c in &bytes {
        offsets.push(off);
        off += c.len_utf8();
    }
    offsets.push(off);

    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let start = offsets[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            '"' => {
                i += 1;
                let s0 = i;
                while i < bytes.len() && bytes[i] != '"' {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                let text: String = bytes[s0..i].iter().collect();
                i = (i + 1).min(bytes.len());
                toks.push(Token {
                    tok: Tok::Str(text),
                    line,
                    offset: start,
                });
            }
            '@' => {
                i += 1;
                let s0 = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let name: String = bytes[s0..i].iter().collect();
                if name.is_empty() {
                    return Err(SliceError::Parse {
                        line,
                        message: "empty attribute".into(),
                    });
                }
                toks.push(Token {
                    tok: Tok::AttrMark(name),
                    line,
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let s0 = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                toks.push(Token {
                    tok: Tok::Ident(bytes[s0..i].iter().collect()),
                    line,
                    offset: start,
                });
            }
            c if c.is_ascii_digit() => {
                let s0 = i;
                let hex = c == '0' && matches!(bytes.get(i + 1), Some('x') | Some('X'));
                if hex {
                    i += 2;
                }
                while i < bytes.len()
                    && (if hex {
                        bytes[i].is_ascii_hexdigit()
                    } else {
                        bytes[i].is_ascii_digit()
                    })
                {
                    i += 1;
                }
                let text: String = bytes[s0..i].iter().collect();
                let value = if hex {
                    i64::from_str_radix(&text[2..], 16)
                } else {
                    text.parse()
                }
                .map_err(|_| SliceError::Parse {
                    line,
                    message: format!("bad number `{text}`"),
                })?;
                toks.push(Token {
                    tok: Tok::Num(value),
                    line,
                    offset: start,
                });
            }
            '-' if bytes.get(i + 1) == Some(&'>') => {
                toks.push(Token {
                    tok: Tok::Arrow,
                    line,
                    offset: start,
                });
                i += 2;
            }
            '=' | '!' | '<' | '>' | '&' | '|'
                if bytes.get(i + 1) == Some(&'=')
                    || (bytes.get(i + 1) == Some(&c) && matches!(c, '&' | '|' | '<' | '>')) =>
            {
                let c2 = bytes[i + 1];
                if c2 == '=' && matches!(c, '&' | '|') {
                    toks.push(Token {
                        tok: Tok::OpAssign(c),
                        line,
                        offset: start,
                    });
                } else if c2 == '=' && c == '=' {
                    toks.push(Token {
                        tok: Tok::Op2(['=', '=']),
                        line,
                        offset: start,
                    });
                } else if c2 == '=' {
                    toks.push(Token {
                        tok: Tok::Op2([c, '=']),
                        line,
                        offset: start,
                    });
                } else {
                    toks.push(Token {
                        tok: Tok::Op2([c, c2]),
                        line,
                        offset: start,
                    });
                }
                i += 2;
            }
            '+' | '-' | '*' | '^' | '%' if bytes.get(i + 1) == Some(&'=') => {
                toks.push(Token {
                    tok: Tok::OpAssign(c),
                    line,
                    offset: start,
                });
                i += 2;
            }
            '{' | '}' | '(' | ')' | '[' | ']' | ';' | ',' | '=' | '*' | '&' | '!' | '<' | '>'
            | '+' | '-' | '/' | '%' | '^' | '|' | '~' | '?' | ':' | '.' => {
                toks.push(Token {
                    tok: Tok::Punct(c),
                    line,
                    offset: start,
                });
                i += 1;
            }
            other => {
                return Err(SliceError::Parse {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        assert_eq!(
            kinds("int x = 0x1f;"),
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Punct('='),
                Tok::Num(31),
                Tok::Punct(';'),
            ]
        );
    }

    #[test]
    fn arrow_and_compound_ops() {
        assert_eq!(
            kinds("a->b == c; a->b += 1; x |= 2; y && z;"),
            vec![
                Tok::Ident("a".into()),
                Tok::Arrow,
                Tok::Ident("b".into()),
                Tok::Op2(['=', '=']),
                Tok::Ident("c".into()),
                Tok::Punct(';'),
                Tok::Ident("a".into()),
                Tok::Arrow,
                Tok::Ident("b".into()),
                Tok::OpAssign('+'),
                Tok::Num(1),
                Tok::Punct(';'),
                Tok::Ident("x".into()),
                Tok::OpAssign('|'),
                Tok::Num(2),
                Tok::Punct(';'),
                Tok::Ident("y".into()),
                Tok::Op2(['&', '&']),
                Tok::Ident("z".into()),
                Tok::Punct(';'),
            ]
        );
    }

    #[test]
    fn attributes_and_comments() {
        assert_eq!(
            kinds("/* doc */ int f() @irq // trailing\n{ }"),
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("f".into()),
                Tok::Punct('('),
                Tok::Punct(')'),
                Tok::AttrMark("irq".into()),
                Tok::Punct('{'),
                Tok::Punct('}'),
            ]
        );
    }

    #[test]
    fn strings_and_lines() {
        let toks = lex("x;\n\"hello\";\ny;").unwrap();
        assert_eq!(toks[2].tok, Tok::Str("hello".into()));
        assert_eq!(toks[2].line, 2);
        assert_eq!(toks[4].tok, Tok::Ident("y".into()));
        assert_eq!(toks[4].line, 3);
    }

    #[test]
    fn shift_ops() {
        assert_eq!(
            kinds("a << 2 >> 1"),
            vec![
                Tok::Ident("a".into()),
                Tok::Op2(['<', '<']),
                Tok::Num(2),
                Tok::Op2(['>', '>']),
                Tok::Num(1),
            ]
        );
    }
}
