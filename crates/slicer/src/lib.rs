//! DriverSlicer: creating decaf drivers from annotated C driver source.
//!
//! DriverSlicer is the static-analysis half of Decaf Drivers (paper §2.4,
//! §3.2). Given an existing driver plus a small number of annotations, it
//!
//! 1. **partitions** the driver — functions reachable from *critical root
//!    functions* (interrupt handlers, code called with spinlocks held,
//!    data-path code) must stay in the kernel; everything else may move to
//!    user level;
//! 2. computes the **entry points** where control crosses between the
//!    driver nucleus and the user-level driver, in both directions;
//! 3. generates **stubs** and **XDR marshaling specifications** for every
//!    structure crossing the boundary, including the pointer-to-array →
//!    pointer-to-wrapped-struct rewrite of Figure 3;
//! 4. emits two **readable source trees** (nucleus and user) that preserve
//!    comments and code structure (§3.2.1), unlike the preprocessed output
//!    of the original Microdrivers slicer;
//! 5. supports **re-slicing as the driver evolves** — new fields are
//!    annotated with `DECAF_RVAR/WVAR/RWVAR` and the marshaling code is
//!    regenerated (§3.2.4, Table 4);
//! 6. **audits error handling** — the pass behind the paper's case-study
//!    numbers (28 ignored/incorrect error paths found, ~8% of
//!    `e1000_hw.c` deleted by converting to exceptions, §5.1).
//!
//! The original tool is CIL/OCaml operating on real C. Here the front end
//! is a *mini-C* dialect: C-like syntax with structured attributes
//! (`@irq`, `@spinlock_held`, `@timer`, `@datapath`, `@export`,
//! `@library`, `@kernel_only`) in place of the configuration files and
//! type signatures the paper's tool consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod ast;
pub mod audit;
pub mod callgraph;
pub mod emit;
pub mod error;
pub mod evolve;
pub mod lex;
pub mod parse;
pub mod partition;
pub mod stubgen;
pub mod xdrgen;

pub use ast::{Attr, CType, FuncDef, Program, StructDef};
pub use error::{SliceError, SliceResult};
pub use partition::{Placement, SliceConfig, SlicePlan};

/// Runs the complete slicing pipeline on mini-C source.
///
/// # Examples
///
/// ```
/// let src = r"
///     struct dev { int irqs; int opens; };
///     int dev_isr(struct dev *d) @irq { d->irqs = d->irqs + 1; return 0; }
///     int dev_open(struct dev *d) @export { d->opens = d->opens + 1; return 0; }
/// ";
/// let plan = decaf_slicer::slice(src, &decaf_slicer::SliceConfig::default()).unwrap();
/// assert!(plan.kernel_fns.contains(&"dev_isr".to_string()));
/// assert!(plan.user_fns.contains(&"dev_open".to_string()));
/// ```
pub fn slice(source: &str, config: &SliceConfig) -> SliceResult<SlicePlan> {
    let program = parse::parse(source)?;
    partition::partition(&program, config)
}
