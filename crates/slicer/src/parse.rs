//! Mini-C parser: structs, functions, constants.

use std::collections::HashMap;

use crate::access::RawAccess;
use crate::ast::{Attr, CType, DecafVar, Field, FuncDef, Program, StructDef};
use crate::error::{SliceError, SliceResult};
use crate::lex::{lex, Tok, Token};

/// Parses a mini-C translation unit.
pub fn parse(src: &str) -> SliceResult<Program> {
    let toks = lex(src)?;
    let mut p = Parser {
        src,
        toks,
        pos: 0,
        program: Program::default(),
    };
    p.program.total_loc = src.lines().filter(|l| !l.trim().is_empty()).count();
    p.parse_program()?;
    Ok(p.program)
}

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Token>,
    pos: usize,
    program: Program,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> SliceError {
        let line = self
            .toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(1, |t| t.line);
        SliceError::Parse {
            line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, n: usize) -> Option<&Tok> {
        self.toks.get(self.pos + n).map(|t| &t.tok)
    }

    fn next(&mut self) -> SliceResult<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t.tok)
    }

    fn eat_punct(&mut self, c: char) -> SliceResult<()> {
        match self.next()? {
            Tok::Punct(p) if p == c => Ok(()),
            other => Err(self.err(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn eat_ident(&mut self) -> SliceResult<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn try_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_program(&mut self) -> SliceResult<()> {
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Ident(kw) if kw == "const" => self.parse_const()?,
                Tok::Ident(kw) if kw == "struct" && self.is_struct_def() => self.parse_struct()?,
                Tok::Ident(_) => self.parse_function()?,
                other => return Err(self.err(format!("unexpected top-level {other:?}"))),
            }
        }
        Ok(())
    }

    /// Distinguishes `struct X { ... };` from `struct X *f(...) { ... }`.
    fn is_struct_def(&self) -> bool {
        matches!(self.peek_at(2), Some(Tok::Punct('{')))
    }

    fn parse_const(&mut self) -> SliceResult<()> {
        self.pos += 1; // const
        let name = self.eat_ident()?;
        self.eat_punct('=')?;
        let value = match self.next()? {
            Tok::Num(n) if n >= 0 => n as usize,
            other => return Err(self.err(format!("expected number, found {other:?}"))),
        };
        self.eat_punct(';')?;
        self.program.consts.insert(name, value);
        Ok(())
    }

    /// Parses a base type (no array suffix). `None` if the tokens at the
    /// cursor do not start a type.
    fn parse_type(&mut self) -> SliceResult<CType> {
        let base = match self.next()? {
            Tok::Ident(w) => match w.as_str() {
                "void" => CType::Void,
                "int" | "s32" | "i32" | "short" | "s16" => CType::Int,
                "unsigned" => match self.peek() {
                    Some(Tok::Ident(n)) if n == "int" => {
                        self.pos += 1;
                        CType::UInt
                    }
                    Some(Tok::Ident(n)) if n == "long" => {
                        self.pos += 1;
                        if matches!(self.peek(), Some(Tok::Ident(n2)) if n2 == "long") {
                            self.pos += 1;
                        }
                        CType::ULongLong
                    }
                    Some(Tok::Ident(n)) if n == "char" => {
                        self.pos += 1;
                        CType::Byte
                    }
                    _ => CType::UInt,
                },
                "long" => {
                    if matches!(self.peek(), Some(Tok::Ident(n)) if n == "long") {
                        self.pos += 1;
                    }
                    CType::LongLong
                }
                "u8" | "char" => CType::Byte,
                "u16" | "u32" | "uint32_t" | "uint16_t" | "uint8_t" => CType::UInt,
                "u64" | "uint64_t" => CType::ULongLong,
                "s64" | "i64" => CType::LongLong,
                "struct" => {
                    let name = self.eat_ident()?;
                    if self.try_punct('*') {
                        return Ok(CType::StructPtr(name));
                    }
                    return Ok(CType::Struct(name));
                }
                other => return Err(self.err(format!("unknown type `{other}`"))),
            },
            other => return Err(self.err(format!("expected type, found {other:?}"))),
        };
        if self.try_punct('*') {
            if base == CType::Void {
                // `void *` is marshaled as an opaque scalar pointer.
                return Ok(CType::ScalarPtr(Box::new(CType::Byte)));
            }
            return Ok(CType::ScalarPtr(Box::new(base)));
        }
        Ok(base)
    }

    fn resolve_len(&self, tok: Tok) -> SliceResult<usize> {
        match tok {
            Tok::Num(n) if n >= 0 => Ok(n as usize),
            Tok::Ident(name) => self
                .program
                .consts
                .get(&name)
                .copied()
                .ok_or_else(|| self.err(format!("unknown constant `{name}`"))),
            other => Err(self.err(format!("expected length, found {other:?}"))),
        }
    }

    fn parse_struct(&mut self) -> SliceResult<()> {
        let start_off = self.toks[self.pos].offset;
        self.pos += 1; // struct
        let name = self.eat_ident()?;
        self.eat_punct('{')?;
        let mut fields = Vec::new();
        let mut annotation_count = 0;
        while !self.try_punct('}') {
            let ty = self.parse_type()?;
            let fname = self.eat_ident()?;
            let mut ty = ty;
            if self.try_punct('[') {
                let len = {
                    let t = self.next()?;
                    self.resolve_len(t)?
                };
                self.eat_punct(']')?;
                ty = CType::Array(Box::new(ty), len);
            }
            let mut exp_len = None;
            if let Some(Tok::AttrMark(a)) = self.peek() {
                if a == "exp" {
                    self.pos += 1;
                    self.eat_punct('(')?;
                    let t = self.next()?;
                    exp_len = Some(self.resolve_len(t)?);
                    self.eat_punct(')')?;
                    annotation_count += 1;
                } else {
                    return Err(self.err(format!("unknown field attribute `@{a}`")));
                }
            }
            self.eat_punct(';')?;
            fields.push(Field {
                name: fname,
                ty,
                exp_len,
            });
        }
        self.eat_punct(';')?;
        let end_off = self.end_offset();
        let _source = &self.src[start_off..end_off];
        self.program.structs.push(StructDef {
            name,
            fields,
            annotation_count,
        });
        Ok(())
    }

    /// Byte offset just past the most recently consumed token.
    fn end_offset(&self) -> usize {
        match self.toks.get(self.pos) {
            Some(t) => t.offset,
            None => self.src.len(),
        }
    }

    fn parse_function(&mut self) -> SliceResult<()> {
        let sig_start_tok = self.pos;
        let line = self.toks[self.pos].line;
        let ret = self.parse_type()?;
        let name = self.eat_ident()?;
        self.eat_punct('(')?;
        let mut params = Vec::new();
        if !self.try_punct(')') {
            // `(void)` means no parameters.
            if self.peek() == Some(&Tok::Ident("void".into()))
                && self.peek_at(1) == Some(&Tok::Punct(')'))
            {
                self.pos += 2;
            } else {
                loop {
                    let pty = self.parse_type()?;
                    let pname = self.eat_ident()?;
                    params.push((pty, pname));
                    if !self.try_punct(',') {
                        break;
                    }
                }
                self.eat_punct(')')?;
            }
        }
        let mut attrs = Vec::new();
        while let Some(Tok::AttrMark(a)) = self.peek() {
            let attr =
                Attr::from_name(a).ok_or_else(|| self.err(format!("unknown attribute `@{a}`")))?;
            attrs.push(attr);
            self.pos += 1;
        }
        self.eat_punct('{')?;
        let body_start = self.pos;
        let mut depth = 1usize;
        while depth > 0 {
            match self.next()? {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => depth -= 1,
                _ => {}
            }
        }
        let body: Vec<Token> = self.toks[body_start..self.pos - 1].to_vec();

        // Source span: from the signature (including a directly preceding
        // comment block) to the closing brace.
        let sig_off = self.toks[sig_start_tok].offset;
        let start_off = extend_to_leading_comment(self.src, sig_off);
        let end_off = self.end_offset_of_prev();
        let source = self.src[start_off..end_off].to_string();
        let loc = source.lines().filter(|l| !l.trim().is_empty()).count();

        let decaf_vars = extract_decaf_vars(&body);
        self.program.functions.push(FuncDef {
            name,
            ret,
            params,
            attrs,
            body,
            source,
            loc,
            line,
            decaf_vars,
        });
        Ok(())
    }

    /// Byte offset just past the previous token (the closing brace).
    fn end_offset_of_prev(&self) -> usize {
        match self.toks.get(self.pos - 1) {
            Some(t) => t.offset + 1,
            None => self.src.len(),
        }
    }
}

/// Walks backwards from `offset` over whitespace and one attached comment
/// block, returning the extended start offset.
fn extend_to_leading_comment(src: &str, offset: usize) -> usize {
    let bytes = src.as_bytes();
    let mut i = offset;
    // Skip whitespace backwards, but remember where the non-space content
    // would start.
    let mut probe = i;
    while probe > 0 && (bytes[probe - 1] as char).is_whitespace() {
        probe -= 1;
    }
    if probe >= 2 && &src[probe - 2..probe] == "*/" {
        // Find the matching `/*`.
        if let Some(open) = src[..probe - 2].rfind("/*") {
            i = open;
        }
    } else {
        // Possibly a run of `//` lines directly above.
        let mut line_start = probe;
        loop {
            let upto = src[..line_start].rfind('\n').map(|p| p + 1).unwrap_or(0);
            let line = &src[upto..line_start];
            if line.trim_start().starts_with("//") {
                i = upto;
                if upto == 0 {
                    break;
                }
                line_start = upto - 1;
                while line_start > 0 && bytes[line_start - 1] as char != '\n' {
                    line_start -= 1;
                }
                // `line_start` now begins the previous line; loop continues
                // via recomputing `upto` from it.
                line_start = upto.saturating_sub(1);
                if line_start == 0 {
                    break;
                }
            } else {
                break;
            }
        }
    }
    i
}

/// Extracts `DECAF_RVAR/WVAR/RWVAR(var->field);` annotations from a body.
fn extract_decaf_vars(body: &[Token]) -> Vec<DecafVar> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if let Tok::Ident(name) = &body[i].tok {
            let access = match name.as_str() {
                "DECAF_RVAR" => Some(RawAccess::R),
                "DECAF_WVAR" => Some(RawAccess::W),
                "DECAF_RWVAR" => Some(RawAccess::RW),
                _ => None,
            };
            if let Some(access) = access {
                // Expect: ( var -> field )
                if let (
                    Some(Tok::Punct('(')),
                    Some(Tok::Ident(var)),
                    Some(Tok::Arrow),
                    Some(Tok::Ident(field)),
                    Some(Tok::Punct(')')),
                ) = (
                    body.get(i + 1).map(|t| &t.tok),
                    body.get(i + 2).map(|t| &t.tok),
                    body.get(i + 3).map(|t| &t.tok),
                    body.get(i + 4).map(|t| &t.tok),
                    body.get(i + 5).map(|t| &t.tok),
                ) {
                    out.push(DecafVar {
                        access,
                        var: var.clone(),
                        field: field.clone(),
                    });
                    i += 6;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Returns a map from function name to its index, for call resolution.
pub fn function_index(program: &Program) -> HashMap<&str, usize> {
    program
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r"
const RING = 256;

/* The per-adapter state. */
struct e1000_ring { int count; u8 buf[64]; };

struct e1000_adapter {
    int msg_enable;
    struct e1000_ring tx;
    struct e1000_ring *rx;
    u32 *config_space @exp(RING);
    unsigned long long stats_bytes;
};

/* Interrupt handler: must stay in the kernel. */
int e1000_intr(struct e1000_adapter *adapter) @irq {
    adapter->stats_bytes += 1;
    e1000_clean(adapter);
    return 0;
}

int e1000_clean(struct e1000_adapter *adapter) @datapath {
    return 0;
}

// Configuration path: moves to user level.
int e1000_check_options(struct e1000_adapter *adapter, int speed) @export {
    DECAF_RWVAR(adapter->msg_enable);
    adapter->msg_enable = speed;
    return 0;
}
";

    #[test]
    fn parses_consts_structs_functions() {
        let p = parse(SRC).unwrap();
        assert_eq!(p.consts["RING"], 256);
        assert_eq!(p.structs.len(), 2);
        assert_eq!(p.functions.len(), 3);
        let adapter = p.find_struct("e1000_adapter").unwrap();
        assert_eq!(adapter.fields.len(), 5);
        assert_eq!(adapter.fields[1].ty, CType::Struct("e1000_ring".into()));
        assert_eq!(adapter.fields[2].ty, CType::StructPtr("e1000_ring".into()));
        assert_eq!(adapter.fields[3].exp_len, Some(256));
        assert_eq!(adapter.fields[4].ty, CType::ULongLong);
        assert_eq!(adapter.annotation_count, 1);
    }

    #[test]
    fn function_attributes_and_params() {
        let p = parse(SRC).unwrap();
        let intr = p.find_function("e1000_intr").unwrap();
        assert!(intr.has_attr(Attr::Irq));
        assert_eq!(intr.params.len(), 1);
        assert_eq!(intr.param_struct("adapter"), Some("e1000_adapter"));
        let check = p.find_function("e1000_check_options").unwrap();
        assert!(check.has_attr(Attr::Export));
        assert_eq!(check.params[1].0, CType::Int);
    }

    #[test]
    fn decaf_var_annotations_extracted() {
        let p = parse(SRC).unwrap();
        let check = p.find_function("e1000_check_options").unwrap();
        assert_eq!(check.decaf_vars.len(), 1);
        assert_eq!(check.decaf_vars[0].var, "adapter");
        assert_eq!(check.decaf_vars[0].field, "msg_enable");
        assert_eq!(check.decaf_vars[0].access, RawAccess::RW);
    }

    #[test]
    fn function_source_includes_leading_comment() {
        let p = parse(SRC).unwrap();
        let intr = p.find_function("e1000_intr").unwrap();
        assert!(intr.source.starts_with("/* Interrupt handler"));
        assert!(intr.source.trim_end().ends_with('}'));
        assert!(intr.loc >= 5);
        let check = p.find_function("e1000_check_options").unwrap();
        assert!(check.source.starts_with("// Configuration path"));
    }

    #[test]
    fn annotation_count_sums_everything() {
        let p = parse(SRC).unwrap();
        // 1 @exp + 3 function attrs + 1 DECAF_RWVAR.
        assert_eq!(p.annotation_count(), 5);
    }

    #[test]
    fn bad_source_reports_line() {
        let err = parse("struct s {\n  $bad\n};").unwrap_err();
        match err {
            SliceError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn void_params_and_pointers() {
        let p = parse(
            "int probe(void) @export { return 0; }\nvoid f(struct s *x) { }\nstruct s { int a; };",
        )
        .unwrap();
        assert!(p.find_function("probe").unwrap().params.is_empty());
        assert_eq!(
            p.find_function("f").unwrap().params[0].0,
            CType::StructPtr("s".into())
        );
    }
}
