//! Partitioning: splitting a driver into nucleus and user-level halves.
//!
//! "As input, it takes an existing driver and type signatures for critical
//! root functions ... DriverSlicer outputs the set of functions reachable
//! from critical root functions, all of which must remain in the kernel.
//! The remaining functions can be moved to user level. In addition,
//! DriverSlicer outputs the set of entry-point functions, where control
//! transfers between kernel mode and user mode" (paper §2.4).

use std::collections::{HashMap, HashSet};

use decaf_xdr::mask::MaskSet;
use decaf_xdr::spec::XdrSpec;

use crate::access;
use crate::ast::{Attr, CType, FuncDef, Program};
use crate::callgraph::CallGraph;
use crate::error::SliceResult;
use crate::xdrgen;

/// Where a function ends up after slicing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Kernel mode: the driver nucleus.
    Nucleus,
    /// User mode, still C: the driver library.
    Library,
    /// User mode, managed language: the decaf driver.
    Decaf,
}

/// Slicer configuration beyond in-source attributes.
#[derive(Debug, Clone, Default)]
pub struct SliceConfig {
    /// Additional critical-root function names (the paper supplies these
    /// as type signatures in a config file).
    pub extra_roots: Vec<String>,
}

/// An entry point: a function invoked from the other partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryPoint {
    /// Function name.
    pub name: String,
    /// Struct-pointer parameters: `(param name, struct type)`.
    pub object_params: Vec<(String, String)>,
    /// Scalar parameters: `(param name, type)`.
    pub scalar_params: Vec<(String, CType)>,
    /// Return type.
    pub ret: CType,
}

impl EntryPoint {
    /// Builds the entry-point description of a function.
    pub fn from_func(f: &FuncDef) -> Self {
        let mut object_params = Vec::new();
        let mut scalar_params = Vec::new();
        for (ty, name) in &f.params {
            match ty {
                CType::StructPtr(s) => object_params.push((name.clone(), s.clone())),
                other => scalar_params.push((name.clone(), other.clone())),
            }
        }
        EntryPoint {
            name: f.name.clone(),
            object_params,
            scalar_params,
            ret: f.ret.clone(),
        }
    }
}

/// Line counts per partition (Table 2 columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionLoc {
    /// Lines in nucleus functions.
    pub kernel: usize,
    /// Lines in driver-library functions.
    pub library: usize,
    /// Lines in decaf-driver functions.
    pub decaf: usize,
    /// Lines in the whole source file.
    pub total: usize,
}

/// The complete output of one slicing run.
#[derive(Debug, Clone)]
pub struct SlicePlan {
    /// Functions that stay in the kernel, sorted.
    pub kernel_fns: Vec<String>,
    /// User-level functions kept in C (the driver library), sorted.
    pub library_fns: Vec<String>,
    /// User-level functions converted to the managed language, sorted.
    pub decaf_fns: Vec<String>,
    /// All user-level functions (library + decaf), sorted.
    pub user_fns: Vec<String>,
    /// Upcall entry points: user functions invoked from the kernel.
    pub user_entry_points: Vec<EntryPoint>,
    /// Downcall entry points: kernel driver functions invoked from user
    /// level.
    pub kernel_entry_points: Vec<EntryPoint>,
    /// Kernel API imports (undefined functions) called from user level;
    /// each needs a downcall stub in the nuclear runtime.
    pub kernel_imports_from_user: Vec<String>,
    /// Field-selective marshaling masks for boundary structures.
    pub masks: MaskSet,
    /// Generated XDR interface specification.
    pub spec: XdrSpec,
    /// Number of annotations in the source (Table 2 column).
    pub annotations: usize,
    /// Placement of every function.
    pub placement: HashMap<String, Placement>,
    /// Line counts per partition.
    pub loc: PartitionLoc,
    /// Struct types that cross the boundary, sorted.
    pub boundary_structs: Vec<String>,
}

impl SlicePlan {
    /// Fraction of functions that moved to user level.
    pub fn user_fraction(&self) -> f64 {
        let total = self.kernel_fns.len() + self.user_fns.len();
        if total == 0 {
            return 0.0;
        }
        self.user_fns.len() as f64 / total as f64
    }

    /// The placement of one function, if known.
    pub fn placement_of(&self, name: &str) -> Option<Placement> {
        self.placement.get(name).copied()
    }
}

/// Partitions `program` and derives all boundary artifacts.
pub fn partition(program: &Program, config: &SliceConfig) -> SliceResult<SlicePlan> {
    let graph = CallGraph::build(program);

    // 1. Critical roots: attribute-marked functions plus configured extras.
    let mut roots: Vec<String> = program
        .functions
        .iter()
        .filter(|f| f.attrs.iter().any(|a| a.is_critical_root()) || f.has_attr(Attr::KernelOnly))
        .map(|f| f.name.clone())
        .collect();
    roots.extend(config.extra_roots.iter().cloned());

    // 2. Everything reachable from a critical root stays in the kernel.
    let kernel_set = graph.reachable_from(&roots, program);

    // 3. The rest moves to user level; `@library` functions stay C.
    let mut kernel_fns = Vec::new();
    let mut library_fns = Vec::new();
    let mut decaf_fns = Vec::new();
    let mut placement = HashMap::new();
    let mut loc = PartitionLoc {
        total: program.total_loc,
        ..PartitionLoc::default()
    };
    for f in &program.functions {
        if kernel_set.contains(&f.name) {
            kernel_fns.push(f.name.clone());
            placement.insert(f.name.clone(), Placement::Nucleus);
            loc.kernel += f.loc;
        } else if f.has_attr(Attr::Library) {
            library_fns.push(f.name.clone());
            placement.insert(f.name.clone(), Placement::Library);
            loc.library += f.loc;
        } else {
            decaf_fns.push(f.name.clone());
            placement.insert(f.name.clone(), Placement::Decaf);
            loc.decaf += f.loc;
        }
    }
    kernel_fns.sort();
    library_fns.sort();
    decaf_fns.sort();
    let mut user_fns: Vec<String> = library_fns
        .iter()
        .chain(decaf_fns.iter())
        .cloned()
        .collect();
    user_fns.sort();
    let user_set: HashSet<&str> = user_fns.iter().map(String::as_str).collect();

    // 4. Upcall entry points: user functions that the kernel invokes —
    //    either exported driver-interface functions or callees of nucleus
    //    code.
    let mut user_entry_names: HashSet<String> = program
        .functions
        .iter()
        .filter(|f| user_set.contains(f.name.as_str()) && f.has_attr(Attr::Export))
        .map(|f| f.name.clone())
        .collect();
    for kfn in &kernel_fns {
        if let Some(callees) = graph.calls.get(kfn) {
            for c in callees {
                if user_set.contains(c.as_str()) {
                    user_entry_names.insert(c.clone());
                }
            }
        }
    }

    // 5. Downcall entry points: kernel driver functions called from user
    //    code, plus kernel API imports.
    let mut kernel_entry_names: HashSet<String> = HashSet::new();
    let mut kernel_imports: HashSet<String> = HashSet::new();
    for ufn in &user_fns {
        if let Some(callees) = graph.calls.get(ufn) {
            for c in callees {
                if kernel_set.contains(c) {
                    kernel_entry_names.insert(c.clone());
                }
            }
        }
        for import in graph.undefined_callees(ufn, program) {
            kernel_imports.insert(import);
        }
    }

    let mut user_entry_points: Vec<EntryPoint> = user_entry_names
        .iter()
        .filter_map(|n| program.find_function(n).map(EntryPoint::from_func))
        .collect();
    user_entry_points.sort_by(|a, b| a.name.cmp(&b.name));
    let mut kernel_entry_points: Vec<EntryPoint> = kernel_entry_names
        .iter()
        .filter_map(|n| program.find_function(n).map(EntryPoint::from_func))
        .collect();
    kernel_entry_points.sort_by(|a, b| a.name.cmp(&b.name));
    let mut kernel_imports_from_user: Vec<String> = kernel_imports.into_iter().collect();
    kernel_imports_from_user.sort();

    // 6. Boundary structures: everything passed at an entry point.
    let mut boundary: HashSet<String> = HashSet::new();
    for ep in user_entry_points.iter().chain(kernel_entry_points.iter()) {
        for (_, s) in &ep.object_params {
            boundary.insert(s.clone());
        }
    }
    let mut boundary_structs: Vec<String> = boundary.into_iter().collect();
    boundary_structs.sort();

    // 7. Masks from access analysis + annotations; XDR spec for the
    //    boundary closure.
    let masks = access::build_masks(program, &user_fns);
    let spec = xdrgen::generate_spec(program, &boundary_structs)?;

    Ok(SlicePlan {
        kernel_fns,
        library_fns,
        decaf_fns,
        user_fns,
        user_entry_points,
        kernel_entry_points,
        kernel_imports_from_user,
        masks,
        spec,
        annotations: program.annotation_count(),
        placement,
        loc,
        boundary_structs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const SRC: &str = r"
struct adapter { int msg_enable; int irqs; };

int drv_intr(struct adapter *a) @irq {
    a->irqs += 1;
    drv_clean(a);
    return 0;
}
int drv_clean(struct adapter *a) @datapath { return 0; }
int drv_refill(struct adapter *a) { return 0; }
int drv_xmit(struct adapter *a) @datapath { drv_refill(a); return 0; }

int drv_open(struct adapter *a) @export {
    drv_reset_hw(a);
    pci_enable_device(a);
    return 0;
}
int drv_reset_hw(struct adapter *a) {
    a->msg_enable = 1;
    return 0;
}
int drv_helper_c(struct adapter *a) @library { return 0; }
int drv_ethtool_race(struct adapter *a) @kernel_only { return 0; }
";

    fn plan() -> SlicePlan {
        let p = parse(SRC).unwrap();
        partition(&p, &SliceConfig::default()).unwrap()
    }

    #[test]
    fn critical_roots_and_reachability_stay_kernel() {
        let plan = plan();
        for f in [
            "drv_intr",
            "drv_clean",
            "drv_xmit",
            "drv_refill",
            "drv_ethtool_race",
        ] {
            assert_eq!(plan.placement_of(f), Some(Placement::Nucleus), "{f}");
        }
    }

    #[test]
    fn remaining_functions_move_to_user() {
        let plan = plan();
        assert_eq!(plan.placement_of("drv_open"), Some(Placement::Decaf));
        assert_eq!(plan.placement_of("drv_reset_hw"), Some(Placement::Decaf));
        assert_eq!(plan.placement_of("drv_helper_c"), Some(Placement::Library));
        assert_eq!(plan.user_fns.len(), 3);
    }

    #[test]
    fn entry_points_both_directions() {
        let plan = plan();
        let ups: Vec<_> = plan
            .user_entry_points
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(ups, vec!["drv_open"]);
        assert_eq!(
            plan.user_entry_points[0].object_params,
            vec![("a".to_string(), "adapter".to_string())]
        );
        // drv_open calls no kernel driver function, but it calls the
        // kernel import pci_enable_device.
        assert!(plan.kernel_entry_points.is_empty());
        assert_eq!(plan.kernel_imports_from_user, vec!["pci_enable_device"]);
    }

    #[test]
    fn boundary_structs_and_spec_generated() {
        let plan = plan();
        assert_eq!(plan.boundary_structs, vec!["adapter"]);
        assert!(plan.spec.struct_fields("adapter").is_ok());
    }

    #[test]
    fn masks_reflect_user_accesses_only() {
        use decaf_xdr::mask::Direction;
        let plan = plan();
        assert!(plan.masks.includes("adapter", "msg_enable", Direction::Out));
        assert!(!plan.masks.includes("adapter", "irqs", Direction::In));
    }

    #[test]
    fn user_fraction_counts() {
        let plan = plan();
        // 5 kernel, 3 user.
        assert!((plan.user_fraction() - 3.0 / 8.0).abs() < 1e-9);
        assert!(plan.loc.kernel > 0 && plan.loc.decaf > 0 && plan.loc.library > 0);
    }

    #[test]
    fn extra_roots_pull_functions_into_kernel() {
        let p = parse(SRC).unwrap();
        let plan = partition(
            &p,
            &SliceConfig {
                extra_roots: vec!["drv_reset_hw".to_string()],
            },
        )
        .unwrap();
        assert_eq!(plan.placement_of("drv_reset_hw"), Some(Placement::Nucleus));
    }
}
