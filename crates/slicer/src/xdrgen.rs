//! XDR interface-specification generation (paper §3.2.2, Figure 3).
//!
//! DriverSlicer "generates an XDR specification for the data types used in
//! user-level code from the original driver and kernel header files".
//! XDR cannot express every C shape, so the generator rewrites what it
//! must: a pointer to a fixed-length array becomes a pointer to a
//! generated wrapper struct containing that array (same memory layout),
//! and `long long` becomes `hyper`.

use std::collections::HashSet;

use decaf_xdr::schema::XdrType;
use decaf_xdr::spec::XdrSpec;

use crate::ast::{CType, Program, StructDef};
use crate::error::{SliceError, SliceResult};

/// Generates the XDR spec for `roots` and every struct reachable from
/// them through fields.
pub fn generate_spec(program: &Program, roots: &[String]) -> SliceResult<XdrSpec> {
    let mut spec = XdrSpec::empty();
    let mut visited: HashSet<String> = HashSet::new();
    let mut queue: Vec<String> = roots.to_vec();
    // Stable ordering: wrappers get defined before their first use.
    while let Some(name) = queue.pop() {
        if !visited.insert(name.clone()) {
            continue;
        }
        let def = program
            .find_struct(&name)
            .ok_or_else(|| SliceError::Unknown(format!("struct {name}")))?;
        let mut fields = Vec::with_capacity(def.fields.len());
        for field in &def.fields {
            let ty = lower_field(def, &field.name, &field.ty, field.exp_len, &mut spec)?;
            // Enqueue referenced structs.
            for referenced in referenced_structs(&field.ty) {
                if !visited.contains(&referenced) {
                    queue.push(referenced);
                }
            }
            fields.push((field.name.clone(), ty));
        }
        spec.define_struct(name, fields);
    }
    Ok(spec)
}

fn referenced_structs(ty: &CType) -> Vec<String> {
    match ty {
        CType::Struct(n) | CType::StructPtr(n) => vec![n.clone()],
        CType::Array(inner, _) => referenced_structs(inner),
        _ => Vec::new(),
    }
}

/// The XDR scalar corresponding to a mini-C scalar.
fn scalar_xdr(ty: &CType) -> Option<XdrType> {
    Some(match ty {
        CType::Int => XdrType::Int,
        CType::UInt => XdrType::UInt,
        CType::LongLong => XdrType::Hyper, // `long long` → `hyper`
        CType::ULongLong => XdrType::UHyper,
        CType::Byte => XdrType::Int, // single bytes widen to int on the wire
        _ => return None,
    })
}

/// The short type name used in generated wrapper names (Figure 3 style:
/// `array256_uint32_t`).
fn scalar_short_name(ty: &CType) -> &'static str {
    match ty {
        CType::Int => "int",
        CType::UInt => "uint32_t",
        CType::LongLong => "hyper",
        CType::ULongLong => "uhyper",
        CType::Byte => "u8",
        _ => "scalar",
    }
}

fn lower_field(
    owner: &StructDef,
    field_name: &str,
    ty: &CType,
    exp_len: Option<usize>,
    spec: &mut XdrSpec,
) -> SliceResult<XdrType> {
    Ok(match ty {
        CType::Void => XdrType::Void,
        CType::Struct(n) => XdrType::Struct(n.clone()),
        CType::StructPtr(n) => XdrType::Optional(Box::new(XdrType::Struct(n.clone()))),
        CType::Array(inner, n) => match inner.as_ref() {
            CType::Byte => XdrType::OpaqueFixed(*n),
            CType::Struct(s) => XdrType::ArrayFixed(Box::new(XdrType::Struct(s.clone())), *n),
            scalar => {
                let elem = scalar_xdr(scalar).ok_or_else(|| {
                    SliceError::Xdr(format!(
                        "unsupported array element in {}.{field_name}",
                        owner.name
                    ))
                })?;
                XdrType::ArrayFixed(Box::new(elem), *n)
            }
        },
        CType::ScalarPtr(inner) => {
            // Figure 3: a pointer to LEN scalars becomes a pointer to a
            // generated wrapper struct with the same memory layout.
            let len = exp_len.ok_or_else(|| {
                SliceError::Xdr(format!(
                    "field {}.{field_name} is a scalar pointer and needs an \
                     @exp(LEN) annotation for DriverSlicer to marshal it",
                    owner.name
                ))
            })?;
            let elem = scalar_xdr(inner).ok_or_else(|| {
                SliceError::Xdr(format!(
                    "unsupported pointee in {}.{field_name}",
                    owner.name
                ))
            })?;
            let short = scalar_short_name(inner);
            let wrapper = format!("array{len}_{short}");
            let alias = format!("array{len}_{short}_ptr");
            if spec.struct_fields(&wrapper).is_err() {
                let array_ty = match inner.as_ref() {
                    CType::Byte => XdrType::OpaqueFixed(len),
                    _ => XdrType::ArrayFixed(Box::new(elem), len),
                };
                spec.define_struct(wrapper.clone(), vec![("array".to_string(), array_ty)]);
                spec.define_alias(
                    alias.clone(),
                    XdrType::Optional(Box::new(XdrType::Struct(wrapper.clone()))),
                );
            }
            XdrType::Named(alias)
        }
        scalar => scalar_xdr(scalar).ok_or_else(|| {
            SliceError::Xdr(format!("unsupported type in {}.{field_name}", owner.name))
        })?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn figure3_transformation() {
        // The paper's example: `uint32_t *config_space @exp(PCI_LEN)`
        // becomes a pointer to a generated wrapper struct.
        let src = r"
const PCI_LEN = 256;
struct e1000_tx_ring { int count; };
struct e1000_adapter {
    struct e1000_tx_ring test_tx_ring;
    u32 *config_space @exp(PCI_LEN);
    int msg_enable;
};
";
        let p = parse(src).unwrap();
        let spec = generate_spec(&p, &["e1000_adapter".to_string()]).unwrap();
        let fields = spec.struct_fields("e1000_adapter").unwrap();
        assert_eq!(fields[0].1, XdrType::Struct("e1000_tx_ring".into()));
        assert_eq!(fields[1].1, XdrType::Named("array256_uint32_t_ptr".into()));
        assert_eq!(fields[2].1, XdrType::Int);
        // The wrapper struct exists with the fixed array inside.
        let wrapper = spec.struct_fields("array256_uint32_t").unwrap();
        assert_eq!(
            wrapper[0].1,
            XdrType::ArrayFixed(Box::new(XdrType::UInt), 256)
        );
        // The alias resolves to an optional pointer to the wrapper.
        assert_eq!(
            spec.resolve("array256_uint32_t_ptr").unwrap(),
            XdrType::Optional(Box::new(XdrType::Struct("array256_uint32_t".into())))
        );
        // And the rendered IDL parses back (valid XDR).
        let idl = spec.to_idl();
        assert!(
            decaf_xdr::XdrSpec::parse(&idl).is_ok(),
            "generated IDL invalid:\n{idl}"
        );
    }

    #[test]
    fn long_long_becomes_hyper() {
        let src = "struct s { long long a; unsigned long long b; };";
        let p = parse(src).unwrap();
        let spec = generate_spec(&p, &["s".to_string()]).unwrap();
        let f = spec.struct_fields("s").unwrap();
        assert_eq!(f[0].1, XdrType::Hyper);
        assert_eq!(f[1].1, XdrType::UHyper);
    }

    #[test]
    fn byte_arrays_become_opaque() {
        let src = "struct s { u8 mac[6]; char name[16]; };";
        let p = parse(src).unwrap();
        let spec = generate_spec(&p, &["s".to_string()]).unwrap();
        let f = spec.struct_fields("s").unwrap();
        assert_eq!(f[0].1, XdrType::OpaqueFixed(6));
        assert_eq!(f[1].1, XdrType::OpaqueFixed(16));
    }

    #[test]
    fn transitive_closure_follows_pointers() {
        let src = r"
struct ring { struct desc *descs; int n; };
struct desc { int flags; };
struct adapter { struct ring *tx; };
";
        let p = parse(src).unwrap();
        let spec = generate_spec(&p, &["adapter".to_string()]).unwrap();
        assert!(spec.struct_fields("ring").is_ok());
        assert!(spec.struct_fields("desc").is_ok());
    }

    #[test]
    fn missing_exp_annotation_is_reported() {
        let src = "struct s { u32 *raw; };";
        let p = parse(src).unwrap();
        let err = generate_spec(&p, &["s".to_string()]).unwrap_err();
        match err {
            SliceError::Xdr(msg) => {
                assert!(
                    msg.contains("@exp"),
                    "message should point at the fix: {msg}"
                )
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wrapper_structs_deduplicated() {
        let src = r"
const N = 8;
struct a { u32 *x @exp(N); };
struct b { u32 *y @exp(N); };
struct top { struct a *pa; struct b *pb; };
";
        let p = parse(src).unwrap();
        let spec = generate_spec(&p, &["top".to_string()]).unwrap();
        let wrappers: Vec<_> = spec
            .type_names()
            .filter(|n| n.starts_with("array8_"))
            .collect();
        assert_eq!(wrappers.len(), 2, "one struct + one alias: {wrappers:?}");
    }
}
