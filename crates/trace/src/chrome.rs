//! Chrome `trace_event` JSON export and a self-contained validator.
//!
//! [`chrome_trace_json`] serializes an event buffer into the JSON Array
//! Format understood by `chrome://tracing` and Perfetto. Everything is
//! rendered by hand (no serde in this workspace) with fixed formatting —
//! timestamps become `"<µs>.<3-digit-frac>"` decimal strings — so equal
//! event buffers serialize to byte-identical files, which is what the
//! determinism test diffs.
//!
//! [`validate_chrome_json`] is the matching checker the CI
//! `trace-validate` job runs: a minimal recursive-descent JSON parser
//! that confirms the file parses and that every event object carries
//! `ts`, `ph`, `pid` and `tid`.

use std::fmt::Write as _;

use crate::tracer::{Phase, TraceEvent};

/// The `pid` every event carries (the simulation is one process).
pub const TRACE_PID: u32 = 1;

fn phase_code(p: Phase) -> &'static str {
    match p {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Instant => "i",
        Phase::ReqBegin => "b",
        Phase::ReqEnd => "e",
    }
}

/// Escapes a string for a JSON literal. Names here are ASCII
/// identifiers, but escape defensively anyway.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats virtual nanoseconds as the microsecond decimal string Chrome
/// expects in `ts`, with a fixed three-digit fraction for byte-stable
/// output.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Serializes events into Chrome trace-event JSON (array format, one
/// event per line). `tid` is the event's track; request spans carry
/// their id; instant events get thread scope (`"s":"t"`).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 16);
    out.push_str("[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str("  {");
        let _ = write!(
            out,
            "\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
            json_escape(&ev.name),
            json_escape(ev.cat),
            phase_code(ev.phase),
            ts_us(ev.ts),
            TRACE_PID,
            ev.track,
        );
        match ev.phase {
            Phase::Instant => out.push_str(",\"s\":\"t\""),
            Phase::ReqBegin | Phase::ReqEnd => {
                let _ = write!(out, ",\"id\":{}", ev.id);
            }
            _ => {}
        }
        if !ev.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in ev.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", json_escape(k), v);
            }
            out.push('}');
        }
        out.push('}');
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// A parsed JSON value — just enough structure for validation.
enum Json {
    Null,
    Bool,
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool),
            Some(b'f') => self.literal("false", Json::Bool),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {s:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Copy the full UTF-8 sequence starting at b.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or("truncated utf8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

/// Parses a Chrome trace JSON document and checks every event: the
/// top level must be an array of objects, and each object must carry
/// `ts` (number), `ph` (string), `pid` (number) and `tid` (number).
/// Returns the number of validated events.
pub fn validate_chrome_json(s: &str) -> Result<usize, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    let Json::Arr(events) = v else {
        return Err("top level is not an array".into());
    };
    for (i, ev) in events.iter().enumerate() {
        let Json::Obj(fields) = ev else {
            return Err(format!("event {i} is not an object"));
        };
        for (key, want_num) in [("ts", true), ("ph", false), ("pid", true), ("tid", true)] {
            match fields.iter().find(|(k, _)| k == key) {
                None => return Err(format!("event {i} missing {key:?}")),
                Some((_, Json::Num(n))) if want_num => {
                    if !n.is_finite() || *n < 0.0 {
                        return Err(format!("event {i} field {key:?} is not a finite time"));
                    }
                }
                Some((_, Json::Str(s))) if !want_num => {
                    if s.is_empty() {
                        return Err(format!("event {i} has an empty {key:?}"));
                    }
                }
                Some(_) => return Err(format!("event {i} field {key:?} has wrong type")),
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    #[test]
    fn export_roundtrips_through_validator() {
        let t = Tracer::new();
        t.begin_span(1_500, "xpc", "call.batched", 0);
        t.instant(1_600, "ring", "post", 1, &[("slot", 3), ("bytes", 1500)]);
        t.end_span(2_000);
        t.req_begin(2_100, "net.pkt_ns", 42, 1);
        t.req_end(3_100, "net.pkt_ns", 42, 1);
        let json = chrome_trace_json(&t.events());
        let n = validate_chrome_json(&json).expect("valid trace");
        assert_eq!(n, 5);
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"id\":42"));
        assert!(json.contains("\"args\":{\"slot\":3,\"bytes\":1500}"));
    }

    #[test]
    fn identical_buffers_serialize_identically() {
        let mk = || {
            let t = Tracer::new();
            t.begin_span(0, "k", "run", 0);
            t.instant(10, "k", "tick", 0, &[("n", 1)]);
            t.end_span(20);
            chrome_trace_json(&t.events())
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_json("{\"not\":\"array\"}").is_err());
        assert!(
            validate_chrome_json("[{\"ph\":\"B\"}]").is_err(),
            "missing ts"
        );
        assert!(validate_chrome_json("[{\"ts\":1,\"ph\":2,\"pid\":1,\"tid\":0}]").is_err());
        assert!(validate_chrome_json("[").is_err());
        assert_eq!(validate_chrome_json("[]").unwrap(), 0);
    }
}
